// Package psrc holds the canonical PS source texts used across the test
// suite, the benchmarks and the figure-reproduction tool: the paper's
// Figure 1 relaxation module, its §4 Gauss–Seidel-style revision, and a
// set of auxiliary workloads exercising the same language surface.
package psrc

// Relaxation is the paper's Figure 1: Jacobi-style relaxation in which
// every element value is taken from the previous iteration (Equation 1).
// Its schedule is Figure 6: DOALL I/J around eq.1 and eq.2, and
// DO K (DOALL I (DOALL J (eq.3))) for the recurrence.
const Relaxation = `(*$m+v+x+t-*)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
    [newA: array [I,J] of real];
type
    I,J = 0 .. M+1;  K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
    (* A denotes the succession of grids *)
define
    (*eq.1*) A[1] = InitialA;  (* the first grid is input *)
    (*eq.2*) newA = A[maxK];   (* the grid returned is from the last iteration *)
    (*eq.3*) A[K,I,J] = if (I = 0)
                   or (J = 0)
                   or (I = M+1)
                   or (J = M+1)
                 then A[K-1,I,J]  (* carry over boundary points *)
                 else ( A[K-1,I,J-1]
                       +A[K-1,I-1,J]
                       +A[K-1,I,J+1]
                       +A[K-1,I+1,J] ) / 4;
end Relaxation;
`

// RelaxationGS is the §4 revision (the paper's Equation 2): the standard
// Gauss–Seidel-style relaxation whose left and upper neighbours come from
// the current iteration. Deleting the K-1 edges leaves two recursive
// edges, so every loop is iterative (Figure 7) until the hyperplane
// transformation is applied.
const RelaxationGS = `(*$m+v+x+t-*)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
    [newA: array [I,J] of real];
type
    I,J = 0 .. M+1;  K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
define
    (*eq.1*) A[1] = InitialA;
    (*eq.2*) newA = A[maxK];
    (*eq.3*) A[K,I,J] = if (I = 0)
                   or (J = 0)
                   or (I = M+1)
                   or (J = M+1)
                 then A[K-1,I,J]  (* carry over boundary points *)
                 else ( A[K,I,J-1]
                       +A[K,I-1,J]
                       +A[K-1,I,J+1]
                       +A[K-1,I+1,J] ) / 4;
end Relaxation;
`

// Heat1D is a one-dimensional explicit heat equation: the same
// DO-over-time / DOALL-over-space shape as the relaxation module on a
// smaller stencil, used by examples and property tests.
const Heat1D = `
Heat1D: module (U0: array[X] of real; N: int; steps: int; alpha: real):
    [U: array [X] of real];
type
    X = 0 .. N+1;  T = 2 .. steps;
var
    G: array [1 .. steps] of array[X] of real;
define
    G[1] = U0;
    U = G[steps];
    G[T,X] = if (X = 0) or (X = N+1)
             then G[T-1,X]
             else G[T-1,X] + alpha * (G[T-1,X-1] - 2.0*G[T-1,X] + G[T-1,X+1]);
end Heat1D;
`

// Prefix is a first-order linear recurrence (running sum): fully
// sequential in its single dimension, the minimal iterative schedule.
const Prefix = `
Prefix: module (Xs: array[I] of real; N: int): [S: array [I] of real];
type
    I = 1 .. N;  I2 = 2 .. N;
var
    P: array [1 .. N] of real;
define
    P[1] = Xs[1];
    P[I2] = P[I2-1] + Xs[I2];
    S[I] = P[I];
end Prefix;
`

// Smooth is a pure DOALL workload: a one-pass 3-point smoothing with no
// recurrence at all, so every loop is parallel.
const Smooth = `
Smooth: module (Xs: array[I] of real; N: int): [Ys: array [I] of real];
type
    I = 0 .. N+1;
define
    Ys[I] = if (I = 0) or (I = N+1)
            then Xs[I]
            else (Xs[I-1] + Xs[I] + Xs[I+1]) / 3.0;
end Smooth;
`

// Pipeline is a two-module program: Smooth invoked from a driver module,
// exercising cross-module calls.
const Pipeline = Smooth + `
Pipeline: module (Xs: array[I] of real; N: int): [Zs: array [I] of real];
type
    I = 0 .. N+1;
var
    Mid: array [0 .. N+1] of real;
define
    Mid = Smooth(Xs, N);
    Zs = Smooth(Mid, N);
end Pipeline;
`

// CoupledGrid is a two-equation strongly connected component scheduled
// into one DO I (DO J (...)) nest: U and V read each other at [I-1,J]
// and [I,J-1], so the cross dependences keep the component connected at
// every recursion level. The multi-equation §4 analysis solves one time
// vector pi = (1,1) for the union of the four dependence vectors, and
// the lowered plan carries both kernels in a single wavefront step. The
// module's (InitialA, M, maxK) signature and single newA result match
// the cc validation harness; maxK only scales the combined output.
const CoupledGrid = `
CoupledGrid: module (InitialA: array[I,J] of real; M: int; maxK: int):
    [newA: array [I,J] of real];
type
    I,J = 0 .. M+1;
var
    U: array [0 .. M+1, 0 .. M+1] of real;
    V: array [0 .. M+1, 0 .. M+1] of real;
define
    U[I,J] = if (I = 0) or (J = 0)
             then InitialA[I,J]
             else (U[I-1,J] + V[I,J-1]) / 2.0;
    V[I,J] = if (I = 0) or (J = 0)
             then 0.5 * InitialA[I,J]
             else (V[I-1,J] + U[I,J-1]) / 2.0;
    newA[I,J] = U[I,J] + 0.125 * V[I,J] * float(maxK);
end CoupledGrid;
`

// Wavefront2D is a 2-D recurrence with dependences inside the plane only
// (no time dimension): both loops iterative under §3.3, a classic
// hyperplane candidate.
const Wavefront2D = `
Wavefront2D: module (Seed: array[I,J] of real; N: int): [Out: array [I,J] of real];
type
    I,J = 0 .. N+1;
var
    W: array [0 .. N+1, 0 .. N+1] of real;
define
    W[I,J] = if (I = 0) or (J = 0)
             then Seed[I,J]
             else (W[I-1,J] + W[I,J-1]) / 2.0;
    Out[I,J] = W[I,J];
end Wavefront2D;
`

// Reflect is the pipeline-positive workload (also pinned as
// testdata/reflect.ps): the reflected previous-row read X[I-1, N+1-J]
// in eq.2 has no constant column offset, so the wavefront analysis
// refuses the recurrence nest — but its outer dimension still streams
// to the two DOALL output copies, so the lowering cascade decouples it
// into a PS-DSWP pipeline: the sequential DO I (DO J) producer stage
// feeding two replicated consumer stages.
const Reflect = `
Reflect: module (Seed: array[I,J] of real; N: int):
    [OutX: array [I,J] of real; OutY: array [I,J] of real];
type
    I,J = 1 .. N;
var
    X: array [1 .. N, 1 .. N] of real;
    Y: array [1 .. N, 1 .. N] of real;
define
    X[I,J] = if (I = 1) or (J = 1)
             then Seed[I,J]
             else (X[I-1,J] + Y[I,J-1]) / 2.0;
    Y[I,J] = if (I = 1) or (J = 1)
             then 0.5 * Seed[I,J]
             else (Y[I-1,J] + X[I,J-1] + X[I-1, N+1-J]) / 3.0;
    OutX[I,J] = X[I,J];
    OutY[I,J] = Y[I,J];
end Reflect;
`

// Mutual is the cascade-ordering workload (also pinned as
// testdata/mutual.ps): two mutually recursive arrays whose scheduler
// output is DO I (DO J (eq.2); DO J (eq.1)). The re-merge pre-pass
// rejoins the sibling nests and the union of dependence vectors
// {(1,0),(0,1)} admits pi = (1,1), so the auto cascade wavefronts it —
// while the pipeline-first cascade decouples the same nest into stages
// instead.
const Mutual = `
Mutual: module (Seed: array[I,J] of real; N: int):
    [OutX: array [I,J] of real; OutY: array [I,J] of real];
type
    I,J = 0 .. N+1;
var
    X: array [0 .. N+1, 0 .. N+1] of real;
    Y: array [0 .. N+1, 0 .. N+1] of real;
define
    X[I,J] = if (I = 0) or (J = 0)
             then Seed[I,J]
             else (Y[I-1,J] + X[I,J-1]) / 2.0;
    Y[I,J] = if (I = 0) or (J = 0)
             then 0.5 * Seed[I,J]
             else (X[I-1,J] + Y[I,J-1]) / 2.0;
    OutX[I,J] = X[I,J];
    OutY[I,J] = Y[I,J];
end Mutual;
`

// Heat3D is the three-dimensional wavefront workload (also pinned as
// testdata/heat3d.ps): a Gauss-Seidel-style sweep over a cube whose
// dependence vectors (1,0,0), (0,1,0), (0,0,1) force the hyperplane
// analysis to schedule planes of constant I+J+K — the time vector
// pi = (1,1,1) spans all three dimensions, so plane sizes grow and
// shrink as the sweep crosses the cube corner to corner.
const Heat3D = `
Heat3D: module (G: array[I,J,K] of real; N: int):
    [Out: array[I,J,K] of real];
type
    I = 0 .. N;  J = 0 .. N;  K = 0 .. N;
define
    Out[I,J,K] = if (I = 0) or (J = 0) or (K = 0)
                 then G[I,J,K]
                 else (Out[I-1,J,K] + Out[I,J-1,K] + Out[I,J,K-1]
                       + G[I,J,K]) / 4.0;
end Heat3D;
`

// EditDistance is the boundary-equation DP workload (also pinned as
// testdata/edit_distance.ps): Levenshtein distance with the first row
// and column defined by their own equations over the 1 .. N / 1 .. M2
// subranges rather than a guard inside the recurrence, so the plan
// carries two boundary DOALLs ahead of the pi = (1,1) interior
// wavefront.
const EditDistance = `
EditDistance: module (A: array[I1] of int; B: array[J1] of int;
                      N: int; M2: int):
    [Dist: array[I,J] of real];
type
    I = 0 .. N;   J = 0 .. M2;
    I1 = 1 .. N;  J1 = 1 .. M2;
var
    D: array[I,J] of real;
define
    D[0,0] = 0.0;
    D[I1,0] = float(I1);
    D[0,J1] = float(J1);
    D[I1,J1] = min(D[I1-1,J1] + 1.0,
              min(D[I1,J1-1] + 1.0,
                  D[I1-1,J1-1]
                    + (if A[I1] = B[J1] then 0.0 else 1.0)));
    Dist[I,J] = D[I,J];
end EditDistance;
`
