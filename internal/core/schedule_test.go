package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
)

// compile parses, checks, builds the graph and schedules one module.
func compile(t *testing.T, src string) (*sem.Module, *core.Schedule) {
	t.Helper()
	prog, err := parser.ParseProgram("test.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Modules[len(cp.Modules)-1]
	g := depgraph.Build(m)
	sched, err := core.Build(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return m, sched
}

// TestFigure6Schedule verifies that the Jacobi relaxation module of
// Figure 1 schedules exactly as the paper's Figure 6.
func TestFigure6Schedule(t *testing.T) {
	_, sched := compile(t, psrc.Relaxation)
	got := sched.Flowchart.Compact()
	want := "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
	if got != want {
		t.Errorf("Figure 6 schedule mismatch:\n got:  %s\n want: %s", got, want)
	}
}

// TestFigure7Schedule verifies that the Gauss–Seidel revision (the
// paper's Equation 2) schedules as the all-iterative nest of Figure 7.
func TestFigure7Schedule(t *testing.T) {
	_, sched := compile(t, psrc.RelaxationGS)
	got := sched.Flowchart.Compact()
	want := "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); DOALL I (DOALL J (eq.2))"
	if got != want {
		t.Errorf("Figure 7 schedule mismatch:\n got:  %s\n want: %s", got, want)
	}
}

// TestFigure5Components verifies the component decomposition of the
// relaxation dependency graph: seven MSCCs, with eq.3 and A forming the
// only multi-node component, and the per-component flowcharts of the
// paper's Figure 5 table.
func TestFigure5Components(t *testing.T) {
	_, sched := compile(t, psrc.Relaxation)
	if len(sched.Components) != 7 {
		for _, c := range sched.Components {
			t.Logf("component %d: {%s}", c.Index, c.NodeNames())
		}
		t.Fatalf("got %d components, want 7", len(sched.Components))
	}
	wantFlow := map[string]string{
		"InitialA": "",
		"M":        "",
		"maxK":     "",
		"newA":     "",
		"eq.1":     "DOALL I (DOALL J (eq.1))",
		"eq.2":     "DOALL I (DOALL J (eq.2))",
		"A, eq.3":  "DO K (DOALL I (DOALL J (eq.3)))",
	}
	seen := make(map[string]bool)
	for _, c := range sched.Components {
		names := c.NodeNames()
		want, ok := wantFlow[names]
		if !ok {
			t.Errorf("unexpected component {%s}", names)
			continue
		}
		seen[names] = true
		if got := c.Flowchart.Compact(); got != want {
			t.Errorf("component {%s}: flowchart %q, want %q", names, got, want)
		}
	}
	for names := range wantFlow {
		if !seen[names] {
			t.Errorf("missing component {%s}", names)
		}
	}
}

// TestVirtualWindowJacobi verifies §3.4: the first dimension of A is
// virtual with a window of two planes, and no other dimension is virtual.
func TestVirtualWindowJacobi(t *testing.T) {
	m, sched := compile(t, psrc.Relaxation)
	if len(sched.Virtual) != 1 {
		t.Fatalf("got %d virtual dimensions, want 1: %+v", len(sched.Virtual), sched.Virtual)
	}
	v := sched.Virtual[0]
	if v.Sym != m.Lookup("A") {
		t.Errorf("virtual dimension on %s, want A", v.Sym.Name)
	}
	if v.Dim != 0 {
		t.Errorf("virtual dimension index %d, want 0", v.Dim)
	}
	if v.Window != 2 {
		t.Errorf("window %d, want 2", v.Window)
	}
	if v.Subrange.Name != "K" {
		t.Errorf("virtual subrange %s, want K", v.Subrange.Name)
	}
}

// TestVirtualWindowGS verifies that the Gauss–Seidel version keeps the
// same single virtual dimension (window two), as stated in §4: "the
// virtual dimension analysis gives the same result as in the previous
// version".
func TestVirtualWindowGS(t *testing.T) {
	m, sched := compile(t, psrc.RelaxationGS)
	if len(sched.Virtual) != 1 {
		t.Fatalf("got %d virtual dimensions, want 1: %+v", len(sched.Virtual), sched.Virtual)
	}
	v := sched.Virtual[0]
	if v.Sym != m.Lookup("A") || v.Dim != 0 || v.Window != 2 {
		t.Errorf("got virtual %s dim %d window %d, want A dim 0 window 2", v.Sym.Name, v.Dim, v.Window)
	}
}

// TestScheduleSmallModules checks schedule shapes for the auxiliary
// workloads: pure-parallel, fully sequential, and wavefront programs.
func TestScheduleSmallModules(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"Smooth", psrc.Smooth, "DOALL I (eq.1)"},
		{"Heat1D", psrc.Heat1D, "DOALL X (eq.1); DO T (DOALL X (eq.3)); DOALL X (eq.2)"},
		{"Prefix", psrc.Prefix, "eq.1; DO I2 (eq.2); DOALL I (eq.3)"},
		{"Wavefront2D", psrc.Wavefront2D, "DO I (DO J (eq.1)); DOALL I (DOALL J (eq.2))"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, sched := compile(t, tc.src)
			if got := sched.Flowchart.Compact(); got != tc.want {
				t.Errorf("%s schedule:\n got:  %s\n want: %s", tc.name, got, tc.want)
			}
		})
	}
}

// TestEquationOrderInvariance checks the single-assignment property the
// paper relies on: "the equations may be entered in any order" (§2). All
// six permutations of the three relaxation equations produce the same
// flowchart.
func TestEquationOrderInvariance(t *testing.T) {
	eq1 := "(*eq.1*) A[1] = InitialA;"
	eq2 := "(*eq.2*) newA = A[maxK];"
	eq3 := `(*eq.3*) A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
        then A[K-1,I,J]
        else (A[K-1,I,J-1]+A[K-1,I-1,J]+A[K-1,I,J+1]+A[K-1,I+1,J]) / 4;`
	header := `Relaxation: module (InitialA: array[I,J] of real; M: int; maxK: int):
    [newA: array [I,J] of real];
type I,J = 0 .. M+1; K = 2 .. maxK;
var A: array [1 .. maxK] of array[I,J] of real;
define
`
	perms := [][]string{
		{eq1, eq2, eq3}, {eq1, eq3, eq2}, {eq2, eq1, eq3},
		{eq2, eq3, eq1}, {eq3, eq1, eq2}, {eq3, eq2, eq1},
	}
	want := ""
	for i, p := range perms {
		src := header + strings.Join(p, "\n") + "\nend Relaxation;"
		_, sched := compile(t, src)
		got := sched.Flowchart.Compact()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("permutation %d schedules differently:\n got:  %s\n want: %s", i, got, want)
		}
	}
	if want != "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))" {
		t.Errorf("unexpected canonical schedule %q", want)
	}
}

// TestUnschedulable verifies step 2a: a recurrence with forward and
// backward offsets in its only dimension cannot be scheduled.
func TestUnschedulable(t *testing.T) {
	src := `
Bad: module (N: int): [R: array [I] of real];
type I = 0 .. N;
var B: array [0 .. N] of real;
define
    B[I] = if (I = 0) or (I = N) then 1.0 else (B[I-1] + B[I+1]) / 2.0;
    R[I] = B[I];
end Bad;
`
	prog, err := parser.ParseProgram("bad.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	_, err = core.Build(depgraph.Build(cp.Modules[0]))
	if err == nil {
		t.Fatal("expected scheduling to fail, got success")
	}
	var ue *core.UnschedulableError
	if !asErr(err, &ue) {
		t.Fatalf("expected UnschedulableError, got %T: %v", err, err)
	}
}

// TestInconsistentPosition verifies the footnote-4 check: subscripts in
// inconsistent positions block a dimension.
func TestInconsistentPosition(t *testing.T) {
	src := `
Twist: module (N: int): [R: array [I,J] of real];
type I = 1 .. N; J = 1 .. N; I2 = 2 .. N;
var B: array [1 .. N, 1 .. N] of real;
define
    B[1,J] = 1.0;
    B[I2,J] = B[J,I2-1];
    R[I,J] = B[I,J];
end Twist;
`
	prog, err := parser.ParseProgram("twist.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	_, err = core.Build(depgraph.Build(cp.Modules[0]))
	if err == nil {
		t.Fatal("expected scheduling to fail for inconsistent subscript positions")
	}
}

func asErr(err error, target any) bool {
	switch t := target.(type) {
	case **core.UnschedulableError:
		u, ok := err.(*core.UnschedulableError)
		if ok {
			*t = u
		}
		return ok
	}
	return false
}

// TestVirtualWindowOuterReach pins the §3.4 soundness rule for nested
// windows: a per-dimension window certificate survives only if every
// consumer read stays at the current iteration of each enclosing
// scheduled dimension. Here X and Y are mutually recursive over DO I
// (DO J ...): Y is read at Y[I-1,J] (identity at J, offset at the
// enclosing I) and at Y[I,J-1]. The I dimension windows legitimately
// (window 2, reads offset only along I itself), but a J window would
// be unsound — by the time eq.2 at row I reads Y[I-1,J], a global
// two-plane J window has cycled through row I-1 and recycled the very
// plane it needs. The scheduler must certify Y's I window and refuse
// the J window (and refuse X entirely: its reflected read N+1-J is
// SubOther at J and reaches across rows at I).
func TestVirtualWindowOuterReach(t *testing.T) {
	src := `
Windows: module (Seed: array[I,J] of real; N: int):
    [Out: array[I,J] of real];
type
    I = 1 .. N;  J = 1 .. N;
var
    X: array[I,J] of real;
    Y: array[I,J] of real;
define
    X[I,J] = if (I = 1) or (J = 1) then Seed[I,J]
             else (X[I-1,J] + Y[I,J-1]) / 2.0;
    Y[I,J] = if (I = 1) or (J = 1) then 0.5 * Seed[I,J]
             else (Y[I-1,J] + X[I,J-1] + X[I-1, N+1-J]) / 3.0;
    Out[I,J] = 1.5 * X[I,J];
end Windows;
`
	m, sched := compile(t, src)
	var got []core.VirtualDim
	for _, v := range sched.Virtual {
		if v.Sym == m.Lookup("X") || v.Sym == m.Lookup("Y") {
			got = append(got, v)
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %d virtual dimensions on X/Y, want exactly Y's I window: %+v", len(got), got)
	}
	v := got[0]
	if v.Sym != m.Lookup("Y") || v.Dim != 0 || v.Window != 2 {
		t.Errorf("got virtual %s dim %d window %d, want Y dim 0 window 2", v.Sym.Name, v.Dim, v.Window)
	}
}
