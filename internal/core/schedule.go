package core

import (
	"fmt"
	"strings"

	"repro/internal/depgraph"
	"repro/internal/scc"
	"repro/internal/sem"
	"repro/internal/types"
)

// VirtualDim records that one dimension of a local array can be allocated
// as a sliding window (paper §3.4): only Window consecutive elements along
// the dimension are live at any time.
type VirtualDim struct {
	Sym      *sem.Symbol
	Dim      int // dimension index within the array
	Window   int // number of live planes (max back-offset + 1)
	Subrange *types.Subrange
}

// ComponentInfo reports one maximally strongly connected component and the
// flowchart Schedule-Component produced for it (paper Figure 5).
type ComponentInfo struct {
	Index     int
	Nodes     []*depgraph.Node
	Flowchart Flowchart
}

// NodeNames returns the component's node names joined with ", ".
func (ci *ComponentInfo) NodeNames() string {
	names := make([]string, len(ci.Nodes))
	for i, n := range ci.Nodes {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// Schedule is the scheduler's output for one module.
type Schedule struct {
	Graph     *depgraph.Graph
	Flowchart Flowchart
	// Components lists the top-level MSCCs in the order they were
	// scheduled, with each component's own flowchart (Figure 5).
	Components []ComponentInfo
	// Virtual lists the window-allocatable dimensions found (§3.4).
	Virtual []VirtualDim
}

// VirtualFor returns the virtual dimensions of one symbol.
func (s *Schedule) VirtualFor(sym *sem.Symbol) []VirtualDim {
	var out []VirtualDim
	for _, v := range s.Virtual {
		if v.Sym == sym {
			out = append(out, v)
		}
	}
	return out
}

// UnschedulableError reports that the algorithm of §3.3 cannot order the
// equations (step 2a).
type UnschedulableError struct {
	Module string
	Nodes  []string
	Reason string
}

// Error implements the error interface.
func (e *UnschedulableError) Error() string {
	return fmt.Sprintf("module %s: cannot schedule component {%s}: %s",
		e.Module, strings.Join(e.Nodes, ", "), e.Reason)
}

// scheduler carries state for one Build run.
type scheduler struct {
	g *depgraph.Graph
	// deleted marks edges removed by step 4 along the current recursion
	// path.
	deleted map[*depgraph.Edge]bool
	// scheduled marks dimensions already assigned to enclosing loops on
	// the current recursion path (step 5).
	scheduled map[*types.Subrange]bool
	virtual   []VirtualDim
	// virtSeen prevents duplicate reports when components re-scheduled in
	// recursion.
	virtSeen map[string]bool
	err      error
}

// Build runs the scheduling algorithm of §3.3 on a dependency graph and
// returns the flowchart, component table and virtual-dimension report.
func Build(g *depgraph.Graph) (*Schedule, error) {
	s := &scheduler{
		g:         g,
		deleted:   make(map[*depgraph.Edge]bool),
		scheduled: make(map[*types.Subrange]bool),
		virtSeen:  make(map[string]bool),
	}
	sched := &Schedule{Graph: g}

	all := make([]*depgraph.Node, len(g.Nodes))
	copy(all, g.Nodes)
	fc, comps := s.scheduleGraph(all, true)
	if s.err != nil {
		return nil, s.err
	}
	sched.Flowchart = fc
	sched.Components = comps
	sched.Virtual = s.virtual
	return sched, nil
}

// scheduleGraph is the paper's Schedule-Graph: find the MSCCs of the
// (sub)graph, schedule each in topological order, and concatenate the
// flowcharts.
func (s *scheduler) scheduleGraph(nodes []*depgraph.Node, top bool) (Flowchart, []ComponentInfo) {
	inSet := make(map[*depgraph.Node]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	// Adjacency over the live (non-deleted) edges restricted to nodes.
	idx := make(map[*depgraph.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	adj := make(scc.AdjGraph, len(nodes))
	for i, n := range nodes {
		for _, e := range n.Out {
			if s.deleted[e] || !inSet[e.To] {
				continue
			}
			adj[i] = append(adj[i], idx[e.To])
		}
	}
	comps := scc.Components(adj)

	var (
		fc    Flowchart
		infos []ComponentInfo
	)
	for ci, comp := range comps {
		members := make([]*depgraph.Node, len(comp))
		for j, v := range comp {
			members[j] = nodes[v]
		}
		cfc := s.scheduleComponent(members)
		if s.err != nil {
			return nil, nil
		}
		fc = append(fc, cfc...)
		if top {
			infos = append(infos, ComponentInfo{Index: ci + 1, Nodes: members, Flowchart: cfc})
		}
	}
	return fc, infos
}

// scheduleComponent is the paper's Schedule-Component (§3.3, steps 1-8).
func (s *scheduler) scheduleComponent(nodes []*depgraph.Node) Flowchart {
	// Step 1: a lone data node contributes nothing to the flowchart.
	if len(nodes) == 1 && nodes[0].Kind == depgraph.DataNode {
		return nil
	}

	inComp := make(map[*depgraph.Node]bool, len(nodes))
	for _, n := range nodes {
		inComp[n] = true
	}
	compEdges := s.liveEdgesWithin(nodes, inComp)

	// Step 2: pick an unscheduled node dimension usable as loop subscript.
	candidates := s.candidateDims(nodes)
	if len(candidates) == 0 {
		// Step 2a/2b: no dimensions left.
		if len(nodes) == 1 {
			return Flowchart{&NodeDesc{Node: nodes[0]}}
		}
		s.fail(nodes, "no unscheduled dimensions remain")
		return nil
	}

	var (
		chosen *types.Subrange
		posOf  map[*depgraph.Node]int
	)
	var reasons []string
	for _, cand := range candidates {
		p, reason := s.verifyDim(cand, nodes, inComp, compEdges)
		if reason == "" {
			chosen, posOf = cand, p
			break
		}
		reasons = append(reasons, fmt.Sprintf("%s: %s", cand.Name, reason))
	}
	if chosen == nil {
		// Step 3 failed for every dimension: the equations cannot be
		// scheduled by this algorithm (e.g. a recurrence with both
		// forward and backward offsets in every dimension).
		s.fail(nodes, "no dimension passes the subscript checks ("+strings.Join(reasons, "; ")+")")
		return nil
	}

	// Virtual-dimension analysis (§3.4) runs on the chosen dimension
	// before edge deletion, for each local array in the component.
	s.analyzeVirtual(chosen, nodes, inComp, posOf)

	// Step 4: delete in-component edges whose subscript at the chosen
	// dimension is "I - constant".
	var deleted []*depgraph.Edge
	for _, e := range compEdges {
		an := e.ArrayNode()
		pos, ok := posOf[an]
		if !ok {
			continue
		}
		if l, ok := e.LabelAt(pos); ok && l.Kind == depgraph.SubOffsetBack && l.Var == chosen {
			s.deleted[e] = true
			deleted = append(deleted, e)
		}
	}

	// Steps 5-8: mark the dimension scheduled, recurse on the remaining
	// subgraph, and wrap the result in the loop descriptor. An iterative
	// loop is generated exactly when offset edges were deleted.
	s.scheduled[chosen] = true
	body, _ := s.scheduleGraph(nodes, false)
	s.scheduled[chosen] = false
	for _, e := range deleted {
		delete(s.deleted, e)
	}
	if s.err != nil {
		return nil
	}
	return Flowchart{&LoopDesc{
		Subrange: chosen,
		Parallel: len(deleted) == 0,
		Body:     body,
		Deleted:  deleted,
	}}
}

// liveEdgesWithin returns the non-deleted data edges with both endpoints
// in the component. Bound edges never participate in dimension checks.
func (s *scheduler) liveEdgesWithin(nodes []*depgraph.Node, inComp map[*depgraph.Node]bool) []*depgraph.Edge {
	var out []*depgraph.Edge
	for _, n := range nodes {
		for _, e := range n.Out {
			if !s.deleted[e] && e.Kind == depgraph.DataDep && inComp[e.To] {
				out = append(out, e)
			}
		}
	}
	return out
}

// candidateDims lists the unscheduled index subranges of the component's
// equation nodes, in node order then dimension order — so "the first
// dimension" of the paper's worked example (K for the relaxation
// recurrence) is tried first.
func (s *scheduler) candidateDims(nodes []*depgraph.Node) []*types.Subrange {
	var out []*types.Subrange
	seen := make(map[*types.Subrange]bool)
	for _, n := range nodes {
		if n.Kind != depgraph.EquationNode {
			continue
		}
		for _, d := range n.Eq.Dims {
			if !seen[d] && !s.scheduled[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// verifyDim performs step 3 for candidate dimension r: the subrange must
// occupy a consistent position in every node of the component, and every
// in-component subscript at that position must be "I" or "I - constant".
// It returns the per-node positions on success, or a reason string.
func (s *scheduler) verifyDim(r *types.Subrange, nodes []*depgraph.Node, inComp map[*depgraph.Node]bool, compEdges []*depgraph.Edge) (map[*depgraph.Node]int, string) {
	posOf := make(map[*depgraph.Node]int)

	// Equation nodes: position in the equation's dimension list; every
	// equation in the component must iterate r.
	for _, n := range nodes {
		if n.Kind != depgraph.EquationNode {
			continue
		}
		p := n.Eq.DimPos(r)
		if p < 0 {
			return nil, fmt.Sprintf("equation %s does not iterate %s", n.Name, r.Name)
		}
		posOf[n] = p
	}

	// Array nodes: the position is implied by the edge labels; it must be
	// consistent across every in-component reference.
	for _, e := range compEdges {
		an := e.ArrayNode()
		if an.Kind != depgraph.DataNode || !inComp[an] {
			continue
		}
		for _, l := range e.Labels {
			if l.Var != r {
				continue
			}
			if prev, ok := posOf[an]; ok && prev != l.Pos {
				return nil, fmt.Sprintf("%s appears at positions %d and %d of %s", r.Name, prev+1, l.Pos+1, an.Name)
			}
			posOf[an] = l.Pos
		}
	}
	// Every multi-dimensional array in the component must bind r to some
	// position, or the loop cannot sweep it.
	for _, n := range nodes {
		if n.Kind == depgraph.DataNode && n.Rank() > 0 {
			if _, ok := posOf[n]; !ok {
				return nil, fmt.Sprintf("array %s has no dimension subscripted by %s", n.Name, r.Name)
			}
		}
	}

	// Subscript forms: at r's position, only "I" and "I - constant" are
	// permitted on in-component edges (paper step 3; "I + constant" and
	// arbitrary expressions block the dimension).
	for _, e := range compEdges {
		an := e.ArrayNode()
		pos, ok := posOf[an]
		if !ok {
			continue
		}
		l, ok := e.LabelAt(pos)
		if !ok {
			return nil, fmt.Sprintf("reference %s has no subscript at position %d", e, pos+1)
		}
		switch {
		case l.Var == r && l.Kind == depgraph.SubIdentity:
		case l.Var == r && l.Kind == depgraph.SubOffsetBack:
		default:
			return nil, fmt.Sprintf("reference %s uses subscript %q at the %s dimension", e, l.String(), r.Name)
		}
	}
	return posOf, ""
}

// analyzeVirtual applies the §3.4 rules for the dimension being scheduled:
// a local array's dimension is virtual when every outgoing edge either
// (1) stays in the component with an "I"/"I - constant" subscript, or
// (2) leaves the component reading only the subrange's upper bound.
// As a conservative extension, definitions arriving from outside the
// component must write a fixed plane (constant subscript) or follow the
// same forms — otherwise a window allocation would be overwritten out of
// order.
func (s *scheduler) analyzeVirtual(r *types.Subrange, nodes []*depgraph.Node, inComp map[*depgraph.Node]bool, posOf map[*depgraph.Node]int) {
	for _, n := range nodes {
		if !n.IsLocalArray() {
			continue
		}
		pos, ok := posOf[n]
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s.%d", n.Name, pos)
		if s.virtSeen[key] {
			continue
		}
		window := 1
		virtual := true
		for _, e := range n.Out {
			if e.Kind != depgraph.DataDep {
				continue
			}
			l, has := e.LabelAt(pos)
			if !has {
				virtual = false
				break
			}
			switch {
			case inComp[e.To] && l.Var == r && (l.Kind == depgraph.SubIdentity || l.Kind == depgraph.SubOffsetBack):
				if w := int(l.Offset) + 1; w > window {
					window = w
				}
			case !inComp[e.To] && l.Kind == depgraph.SubUpperBound:
				// Form 2: only the final plane escapes the loop.
			default:
				virtual = false
			}
			// A window of planes at this dimension survives only within
			// one iteration of every enclosing loop: by the time a read
			// reaches back (or to a fixed plane) along an outer scheduled
			// dimension, the window has cycled through this dimension's
			// full extent and recycled the plane it needs. Only reads
			// that stay at the current iteration of every enclosing
			// dimension keep the window.
			if virtual && !s.innerReach(e, pos, n.Rank()) {
				virtual = false
			}
			if !virtual {
				break
			}
		}
		if virtual {
			for _, e := range n.In {
				if e.Kind != depgraph.DataDep || inComp[e.From] {
					continue
				}
				l, has := e.LabelAt(pos)
				if !has || l.Kind == depgraph.SubOther || l.Kind == depgraph.SubOffsetFwd {
					virtual = false
					break
				}
			}
		}
		if virtual {
			s.virtSeen[key] = true
			s.virtual = append(s.virtual, VirtualDim{Sym: n.Sym, Dim: pos, Window: window, Subrange: r})
		}
	}
}

// innerReach reports whether a consumer edge's subscripts at every
// dimension other than pos keep the read inside the lifetime of a
// plane window at pos: identity subscripts anywhere, and offset
// subscripts only at dimensions whose loop is not currently enclosing
// the analyzed level (those iterate within one window lifetime).
// Constant-plane subscripts and offsets at enclosing (scheduled)
// dimensions reach a plane the window has already recycled.
func (s *scheduler) innerReach(e *depgraph.Edge, pos, rank int) bool {
	for d := 0; d < rank; d++ {
		if d == pos {
			continue
		}
		l, has := e.LabelAt(d)
		if !has || l.Kind == depgraph.SubIdentity {
			continue
		}
		if l.Var == nil || s.scheduled[l.Var] {
			return false
		}
	}
	return true
}

func (s *scheduler) fail(nodes []*depgraph.Node, reason string) {
	if s.err != nil {
		return
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	s.err = &UnschedulableError{Module: s.g.Module.Name, Nodes: names, Reason: reason}
}
