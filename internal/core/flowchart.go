// Package core implements the scheduling phase of the PS compiler — the
// paper's primary contribution (§3.2–3.4). The scheduler consumes a
// module's dependency graph and produces a flowchart: a recursive list of
// descriptors giving the execution order of equations and the loop nests
// (iterative DO or parallel DOALL) enclosing them. It also performs the
// virtual-dimension analysis that lets the code generator allocate a
// sliding window instead of a whole array dimension.
package core

import (
	"fmt"
	"strings"

	"repro/internal/depgraph"
	"repro/internal/types"
)

// Descriptor is one flowchart entry (paper Figure 4): either a dependency
// graph node or a subrange loop enclosing nested descriptors.
type Descriptor interface {
	fc(sb *strings.Builder, indent int)
}

// Flowchart is an ordered list of descriptors.
type Flowchart []Descriptor

// NodeDesc schedules one dependency-graph node: the code generator emits
// the data item's declaration or the equation's assignment.
type NodeDesc struct {
	Node *depgraph.Node
}

func (d *NodeDesc) fc(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString(d.Node.Name)
	sb.WriteByte('\n')
}

// LoopDesc schedules a for loop over a subrange. Parallel loops are
// DOALLs: every iteration is independent and may execute concurrently.
// Iterative loops are DOs: constant-offset recurrences force ascending
// order.
type LoopDesc struct {
	Subrange *types.Subrange
	Parallel bool
	Body     Flowchart
	// Deleted records the "I - constant" edges removed when this loop was
	// formed (paper §3.3 step 4); non-empty exactly when the loop is
	// iterative.
	Deleted []*depgraph.Edge
}

func (d *LoopDesc) fc(sb *strings.Builder, indent int) {
	pad(sb, indent)
	if d.Parallel {
		sb.WriteString("DOALL ")
	} else {
		sb.WriteString("DO ")
	}
	sb.WriteString(d.Subrange.Name)
	sb.WriteString(" (\n")
	for _, b := range d.Body {
		b.fc(sb, indent+1)
	}
	pad(sb, indent)
	sb.WriteString(")\n")
}

func pad(sb *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		sb.WriteString("    ")
	}
}

// String renders the flowchart in the paper's Figure 6/7 style.
func (f Flowchart) String() string {
	var sb strings.Builder
	for _, d := range f {
		d.fc(&sb, 0)
	}
	return sb.String()
}

// Compact renders the flowchart on one line, e.g.
// "DO K (DOALL I (DOALL J (eq.3)))".
func (f Flowchart) Compact() string {
	parts := make([]string, 0, len(f))
	for _, d := range f {
		parts = append(parts, compactDesc(d))
	}
	return strings.Join(parts, "; ")
}

func compactDesc(d Descriptor) string {
	switch x := d.(type) {
	case *NodeDesc:
		return x.Node.Name
	case *LoopDesc:
		kw := "DO"
		if x.Parallel {
			kw = "DOALL"
		}
		return fmt.Sprintf("%s %s (%s)", kw, x.Subrange.Name, x.Body.Compact())
	}
	return "?"
}

// Equations returns the equation nodes scheduled in f, in execution order.
func (f Flowchart) Equations() []*depgraph.Node {
	var out []*depgraph.Node
	var visit func(Flowchart)
	visit = func(fc Flowchart) {
		for _, d := range fc {
			switch x := d.(type) {
			case *NodeDesc:
				if x.Node.Kind == depgraph.EquationNode {
					out = append(out, x.Node)
				}
			case *LoopDesc:
				visit(x.Body)
			}
		}
	}
	visit(f)
	return out
}

// Loops returns every loop descriptor in f, outermost first.
func (f Flowchart) Loops() []*LoopDesc {
	var out []*LoopDesc
	var visit func(Flowchart)
	visit = func(fc Flowchart) {
		for _, d := range fc {
			if l, ok := d.(*LoopDesc); ok {
				out = append(out, l)
				visit(l.Body)
			}
		}
	}
	visit(f)
	return out
}
