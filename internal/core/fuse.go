package core

import (
	"repro/internal/depgraph"
	"repro/internal/sem"
)

// Fuse merges flowchart loops over the same subrange — the scheduler
// improvement the paper lists as future work (§5, after Lu's MODEL
// generator [11], which "does combine non-recursively related equations
// which depend on the same subscript(s)").
//
// A later loop over subrange r merges into an earlier one when
//
//  1. both iterate the same subrange with the same DO/DOALL kind,
//  2. the later loop reads the earlier loop's outputs only at the current
//     or earlier iterations of r ("I" or "I - constant" subscripts), and
//  3. the later loop consumes nothing produced by the descriptors it is
//     hoisted across (the flowchart is in dependence order, so the
//     intervening descriptors cannot consume the hoisted loop's outputs).
//
// Fusion applies recursively, so matching inner nests collapse as well.
func Fuse(fc Flowchart) Flowchart {
	// Fuse children first so inner nests are in canonical form.
	work := make([]Descriptor, 0, len(fc))
	for _, d := range fc {
		if loop, ok := d.(*LoopDesc); ok {
			d = &LoopDesc{
				Subrange: loop.Subrange,
				Parallel: loop.Parallel,
				Body:     Fuse(loop.Body),
				Deleted:  loop.Deleted,
			}
		}
		work = append(work, d)
	}

	consumed := make([]bool, len(work))
	var out Flowchart
	for i, d := range work {
		if consumed[i] {
			continue
		}
		cur, isLoop := d.(*LoopDesc)
		if !isLoop {
			out = append(out, d)
			continue
		}
		// Producers visible to later candidates: the values defined by
		// descriptors the candidate would be hoisted across.
		intervening := make(map[*depgraph.Node]bool)
		for j := i + 1; j < len(work); j++ {
			if consumed[j] {
				continue
			}
			cand, ok := work[j].(*LoopDesc)
			if ok && cand.Subrange == cur.Subrange && cand.Parallel == cur.Parallel &&
				fusionLegal(cur, cand) && !readsFrom(cand.Body, intervening) {
				cur = &LoopDesc{
					Subrange: cur.Subrange,
					Parallel: cur.Parallel,
					Body:     Fuse(append(append(Flowchart{}, cur.Body...), cand.Body...)),
					Deleted:  append(append([]*depgraph.Edge{}, cur.Deleted...), cand.Deleted...),
				}
				consumed[j] = true
				continue
			}
			addProducers(work[j], intervening)
		}
		out = append(out, cur)
	}
	return out
}

// addProducers records the equations of d and the data they define.
func addProducers(d Descriptor, set map[*depgraph.Node]bool) {
	var eqs []*depgraph.Node
	switch x := d.(type) {
	case *NodeDesc:
		if x.Node.Kind == depgraph.EquationNode {
			eqs = append(eqs, x.Node)
		}
	case *LoopDesc:
		eqs = x.Body.Equations()
	}
	for _, n := range eqs {
		set[n] = true
		for _, e := range n.Out {
			if e.IsLHS {
				set[e.To] = true
			}
		}
	}
}

// readsFrom reports whether any equation in fc consumes a value produced
// by the given set.
func readsFrom(fc Flowchart, producers map[*depgraph.Node]bool) bool {
	if len(producers) == 0 {
		return false
	}
	for _, n := range fc.Equations() {
		for _, e := range n.In {
			if e.Kind == depgraph.DataDep && producers[e.From] {
				return true
			}
		}
	}
	return false
}

// fusionLegal checks every dependence from the first loop's equations
// into the second loop's equations at the fused dimension.
func fusionLegal(la, lb *LoopDesc) bool {
	r := la.Subrange
	producers := make(map[*depgraph.Node]bool) // la's equations and the arrays they define
	for _, n := range la.Body.Equations() {
		producers[n] = true
		for _, e := range n.Out {
			if e.IsLHS {
				producers[e.To] = true
			}
		}
	}
	for _, n := range lb.Body.Equations() {
		for _, e := range n.In {
			if e.Kind != depgraph.DataDep || !producers[e.From] {
				continue
			}
			// The reference must access iteration r or earlier. A
			// reference that does not mention r at all (a scalar produced
			// inside la, or an opaque whole-array read) is conservative:
			// its value may not be final until la completes.
			okRef := false
			for _, l := range e.Labels {
				if l.Var == r && (l.Kind == depgraph.SubIdentity || l.Kind == depgraph.SubOffsetBack) {
					okRef = true
				}
				if l.Var == r && (l.Kind == depgraph.SubOffsetFwd || l.Kind == depgraph.SubOther) {
					return false
				}
			}
			if !okRef {
				return false
			}
		}
	}
	return true
}

// FusedEquationCount reports the number of equations per loop after
// fusion, a convenience for ablation reporting.
func FusedEquationCount(fc Flowchart) map[*sem.Equation]int {
	out := make(map[*sem.Equation]int)
	for _, l := range fc.Loops() {
		n := len(l.Body.Equations())
		for _, eqn := range l.Body.Equations() {
			out[eqn.Eq] = n
		}
	}
	return out
}
