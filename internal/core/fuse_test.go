package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/psrc"
)

// TestFuseIndependent merges two DOALL loops over the same subrange when
// the second reads the first at the current iteration.
func TestFuseIndependent(t *testing.T) {
	src := `
Two: module (Xs: array[I] of real; N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 0 .. N;
define
    Ys[I] = Xs[I] * 2.0;
    Zs[I] = Ys[I] + 1.0;
end Two;
`
	_, sched := compile(t, src)
	plain := sched.Flowchart.Compact()
	if plain != "DOALL I (eq.1); DOALL I (eq.2)" {
		t.Fatalf("unfused schedule %q", plain)
	}
	fused := core.Fuse(sched.Flowchart).Compact()
	if fused != "DOALL I (eq.1; eq.2)" {
		t.Errorf("fused schedule %q, want one loop", fused)
	}
}

// TestFuseBlockedByForwardRef keeps loops separate when the consumer
// reads a later iteration of the producer.
func TestFuseBlockedByForwardRef(t *testing.T) {
	src := `
Fwd: module (Xs: array[I] of real; N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 0 .. N;
define
    Ys[I] = Xs[I] * 2.0;
    Zs[I] = if I = N then Ys[I] else Ys[I+1];
end Fwd;
`
	_, sched := compile(t, src)
	fused := core.Fuse(sched.Flowchart).Compact()
	if fused != "DOALL I (eq.1); DOALL I (eq.2)" {
		t.Errorf("forward reference fused illegally: %q", fused)
	}
}

// TestFuseBackwardRefAllowed fuses when the consumer reads earlier
// iterations only.
func TestFuseBackwardRefAllowed(t *testing.T) {
	src := `
Back: module (Xs: array[I] of real; N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 0 .. N;
define
    Ys[I] = Xs[I] * 2.0;
    Zs[I] = if I = 0 then Ys[I] else Ys[I-1];
end Back;
`
	_, sched := compile(t, src)
	fused := core.Fuse(sched.Flowchart).Compact()
	if fused != "DOALL I (eq.1; eq.2)" {
		t.Errorf("backward reference did not fuse: %q", fused)
	}
}

// TestFuseNested collapses matching inner nests recursively.
func TestFuseNested(t *testing.T) {
	src := `
Nest: module (Xs: array[I,J] of real; N: int): [Ys: array [I,J] of real; Zs: array [I,J] of real];
type I = 0 .. N; J = 0 .. N;
define
    Ys[I,J] = Xs[I,J] * 2.0;
    Zs[I,J] = Ys[I,J] + 1.0;
end Nest;
`
	_, sched := compile(t, src)
	fused := core.Fuse(sched.Flowchart).Compact()
	if fused != "DOALL I (DOALL J (eq.1; eq.2))" {
		t.Errorf("nested fusion produced %q", fused)
	}
}

// TestFuseMixedKindsBlocked never merges a DO with a DOALL, or loops over
// different subranges.
func TestFuseMixedKindsBlocked(t *testing.T) {
	_, sched := compile(t, psrc.Relaxation)
	fused := core.Fuse(sched.Flowchart).Compact()
	// eq.1's DOALL I and the recurrence's DO K differ in subrange; the
	// final DOALL I (eq.2) is separated from eq.1 by the K loop. Nothing
	// fuses in the relaxation module.
	want := "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
	if fused != want {
		t.Errorf("relaxation fused to %q", fused)
	}
}

// TestFuseSameSubrangeIterative merges adjacent iterative loops too
// (the paper's explicit wish: "better merge iterative loops").
func TestFuseSameSubrangeIterative(t *testing.T) {
	src := `
It: module (N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 1 .. N; I0 = 1 .. N;
var P: array [1 .. N] of real; Q: array [1 .. N] of real;
define
    P[1] = 1.0;
    P[I] = if I = 1 then 1.0 else P[I-1] * 2.0;
    Q[I] = if I = 1 then P[I] else Q[I-1] + P[I-1];
    Ys[I] = P[I];
    Zs[I] = Q[I];
end It;
`
	// P has a double definition at index 1; drop eq.1 to keep it legal.
	src = `
It: module (N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 1 .. N;
var P: array [1 .. N] of real; Q: array [1 .. N] of real;
define
    P[I] = if I = 1 then 1.0 else P[I-1] * 2.0;
    Q[I] = if I = 1 then P[I] else Q[I-1] + P[I-1];
    Ys[I] = P[I];
    Zs[I] = Q[I];
end It;
`
	_, sched := compile(t, src)
	plain := sched.Flowchart.Compact()
	if plain != "DO I (eq.1); DOALL I (eq.3); DO I (eq.2); DOALL I (eq.4)" {
		t.Fatalf("unfused schedule %q", plain)
	}
	// Fusion hoists eq.2's DO across the independent DOALL (eq.3) and
	// merges both pairs.
	fused := core.Fuse(sched.Flowchart).Compact()
	if fused != "DO I (eq.1; eq.2); DOALL I (eq.3; eq.4)" {
		t.Errorf("fused schedule %q", fused)
	}
}
