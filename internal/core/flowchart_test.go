package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/psrc"
)

// TestFlowchartString pins the multi-line Figure 6/7 rendering: one
// descriptor per line, DOALL/DO keywords, four-space indentation per
// nesting level, and node lines for the scheduled data items.
func TestFlowchartString(t *testing.T) {
	_, sched := compile(t, psrc.RelaxationGS)
	got := sched.Flowchart.String()
	for _, want := range []string{
		"DOALL I (\n    DOALL J (\n        eq.1\n    )\n)",
		"DO K (\n    DO I (\n        DO J (\n            eq.3\n        )\n    )\n)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("flowchart missing block:\n%s\n\nfull rendering:\n%s", want, got)
		}
	}
	// Every line of the compact form appears in the long form too.
	if !strings.Contains(got, "eq.2") {
		t.Errorf("flowchart missing eq.2:\n%s", got)
	}
}

// TestFlowchartLoops pins the outermost-first loop enumeration.
func TestFlowchartLoops(t *testing.T) {
	_, sched := compile(t, psrc.RelaxationGS)
	loops := sched.Flowchart.Loops()
	var names []string
	var iterative int
	for _, l := range loops {
		names = append(names, l.Subrange.Name)
		if !l.Parallel {
			iterative++
		}
	}
	// Figure 7: DOALL I (DOALL J) ; DO K (DO I (DO J)) ; DOALL I (DOALL J)
	want := []string{"I", "J", "K", "I", "J", "I", "J"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("loop order %v, want %v", names, want)
	}
	if iterative != 3 {
		t.Errorf("%d iterative loops, want the K/I/J recurrence nest (3)", iterative)
	}
	// Iterative loops carry the deleted §3.3 step-4 edges that formed
	// them; parallel loops never do.
	for _, l := range loops {
		if l.Parallel != (len(l.Deleted) == 0) {
			t.Errorf("loop %s: parallel=%v with %d deleted edges", l.Subrange.Name, l.Parallel, len(l.Deleted))
		}
	}
}

// TestFusedEquationCount pins the ablation-reporting helper: after
// fusion the co-resident equations report the shared loop body size.
func TestFusedEquationCount(t *testing.T) {
	src := `
Two: module (Xs: array[I] of real; N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 0 .. N;
define
    Ys[I] = Xs[I] * 2.0;
    Zs[I] = Ys[I] + 1.0;
end Two;
`
	_, sched := compile(t, src)
	for eq, n := range core.FusedEquationCount(sched.Flowchart) {
		if n != 1 {
			t.Errorf("unfused equation %v reports body size %d, want 1", eq, n)
		}
	}
	counts := core.FusedEquationCount(core.Fuse(sched.Flowchart))
	if len(counts) != 2 {
		t.Fatalf("%d equations counted, want 2", len(counts))
	}
	for eq, n := range counts {
		if n != 2 {
			t.Errorf("fused equation %v reports body size %d, want 2", eq, n)
		}
	}
}

// TestVirtualFor pins the per-symbol filter over the §3.4 window list.
func TestVirtualFor(t *testing.T) {
	m, sched := compile(t, psrc.Relaxation)
	sym := m.Lookup("A")
	if sym == nil {
		t.Fatal("no symbol A")
	}
	vs := sched.VirtualFor(sym)
	if len(vs) != 1 || vs[0].Dim != 0 || vs[0].Window != 2 {
		t.Fatalf("VirtualFor(A) = %+v, want the K dimension with window 2", vs)
	}
	out := m.Lookup("newA")
	if out == nil {
		t.Fatal("no symbol newA")
	}
	if vs := sched.VirtualFor(out); len(vs) != 0 {
		t.Errorf("VirtualFor(newA) = %+v, want none", vs)
	}
}

// TestUnschedulableErrorMessage pins the diagnostic format.
func TestUnschedulableErrorMessage(t *testing.T) {
	err := &core.UnschedulableError{
		Module: "Bad",
		Nodes:  []string{"eq.1", "X"},
		Reason: "cyclic at equal positions",
	}
	got := err.Error()
	for _, want := range []string{"module Bad", "{eq.1, X}", "cyclic at equal positions"} {
		if !strings.Contains(got, want) {
			t.Errorf("error %q missing %q", got, want)
		}
	}
}

// TestFlowchartEquationsOrder pins execution-order equation listing
// against the compact rendering.
func TestFlowchartEquationsOrder(t *testing.T) {
	_, sched := compile(t, psrc.Relaxation)
	var names []string
	for _, n := range sched.Flowchart.Equations() {
		if n.Kind != depgraph.EquationNode {
			t.Fatalf("non-equation node %s in Equations()", n.Name)
		}
		names = append(names, n.Name)
	}
	if strings.Join(names, ",") != "eq.1,eq.3,eq.2" {
		t.Errorf("equation order %v, want eq.1,eq.3,eq.2 (Figure 6)", names)
	}
}
