package intmat_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/intmat"
)

// TestDet covers determinants including pivoting cases.
func TestDet(t *testing.T) {
	cases := []struct {
		rows [][]int64
		want int64
	}{
		{[][]int64{{1}}, 1},
		{[][]int64{{2, 0}, {0, 3}}, 6},
		{[][]int64{{0, 1}, {1, 0}}, -1},
		{[][]int64{{1, 2}, {3, 4}}, -2},
		{[][]int64{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}}, 1}, // the paper's T
		{[][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, 0},
		{[][]int64{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}}, -1},
		{[][]int64{{3, 1, 0, 2}, {0, 2, 1, 1}, {1, 0, 2, 0}, {2, 1, 1, 3}}, 22},
	}
	for _, tc := range cases {
		m := intmat.FromRows(tc.rows)
		if got := m.Det(); got != tc.want {
			t.Errorf("det(%s) = %d, want %d", m, got, tc.want)
		}
	}
}

// TestInverseUnimodular checks exact inverses.
func TestInverseUnimodular(t *testing.T) {
	m := intmat.FromRows([][]int64{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}})
	inv, err := m.InverseUnimodular()
	if err != nil {
		t.Fatal(err)
	}
	if got := inv.String(); got != "[0 1 0]; [0 0 1]; [1 -2 -1]" {
		t.Errorf("inverse = %s", got)
	}
	prod := m.Mul(inv)
	if prod.String() != intmat.Identity(3).String() {
		t.Errorf("m·inv = %s, want identity", prod)
	}

	if _, err := intmat.FromRows([][]int64{{2, 0}, {0, 2}}).InverseUnimodular(); err == nil {
		t.Error("non-unimodular matrix inverted without error")
	}
}

// TestCompleteUnimodularPaper reproduces the paper's completion.
func TestCompleteUnimodularPaper(t *testing.T) {
	tm, err := intmat.CompleteUnimodular([]int64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.String(); got != "[2 1 1]; [1 0 0]; [0 1 0]" {
		t.Errorf("completion = %s, want the paper's [2 1 1]; [1 0 0]; [0 1 0]", got)
	}
}

// TestCompleteUnimodularGeneral exercises the extended-Euclid path where
// no coefficient is ±1.
func TestCompleteUnimodularGeneral(t *testing.T) {
	for _, pi := range [][]int64{
		{2, 3},
		{3, 5, 7},
		{6, 10, 15},
		{4, 9},
		{5, 7, 9, 11},
	} {
		tm, err := intmat.CompleteUnimodular(pi)
		if err != nil {
			t.Errorf("complete(%v): %v", pi, err)
			continue
		}
		for j, c := range pi {
			if tm.At(0, j) != c {
				t.Errorf("complete(%v): first row %v", pi, tm.Row(0))
				break
			}
		}
		if d := tm.Det(); d != 1 && d != -1 {
			t.Errorf("complete(%v): det %d", pi, d)
		}
	}
	if _, err := intmat.CompleteUnimodular([]int64{2, 4}); err == nil {
		t.Error("gcd 2 vector completed without error")
	}
}

// TestCompleteUnimodularProperty is a property test: random coprime
// vectors complete to a unimodular matrix with the vector as first row
// and an exact integer inverse.
func TestCompleteUnimodularProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%4) + 2
		pi := make([]int64, n)
		for {
			for i := range pi {
				pi[i] = int64(r.Intn(30))
			}
			if intmat.GcdVec(pi) == 1 {
				break
			}
			// Force progress toward coprimality.
			pi[r.Intn(n)] = 1
		}
		tm, err := intmat.CompleteUnimodular(pi)
		if err != nil {
			return false
		}
		for j, c := range pi {
			if tm.At(0, j) != c {
				return false
			}
		}
		if d := tm.Det(); d != 1 && d != -1 {
			return false
		}
		inv, err := tm.InverseUnimodular()
		if err != nil {
			return false
		}
		return tm.Mul(inv).String() == intmat.Identity(n).String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMulVec checks matrix-vector products used for dependence
// transformation.
func TestMulVec(t *testing.T) {
	tm := intmat.FromRows([][]int64{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}})
	got := tm.MulVec([]int64{1, 0, -1})
	if got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Errorf("T·(1,0,-1) = %v, want [1 1 0]", got)
	}
}

// TestGcd covers the gcd helpers.
func TestGcd(t *testing.T) {
	cases := [][3]int64{{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {-4, 6, 2}, {0, 0, 0}}
	for _, c := range cases {
		if got := intmat.Gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	if got := intmat.GcdVec([]int64{6, 10, 15}); got != 1 {
		t.Errorf("gcdvec = %d, want 1", got)
	}
}
