// Package intmat provides exact integer matrix arithmetic for the
// hyperplane coordinate transformation of paper §4: determinants,
// unimodular completion of a time vector to a full coordinate change, and
// exact inverses of unimodular matrices.
package intmat

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major integer matrix.
type Matrix struct {
	R, C int
	A    []int64
}

// New returns an R×C zero matrix.
func New(r, c int) *Matrix {
	return &Matrix{R: r, C: c, A: make([]int64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices (which must be equal length).
func FromRows(rows [][]int64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.C {
			panic("intmat: ragged rows")
		}
		copy(m.A[i*m.C:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) int64 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v int64) { m.A[i*m.C+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []int64 {
	out := make([]int64, m.C)
	copy(out, m.A[i*m.C:(i+1)*m.C])
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.R, m.C)
	copy(out.A, m.A)
	return out
}

// String renders the matrix in bracketed rows.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.R; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteByte('[')
		for j := 0; j < m.C; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", m.At(i, j))
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.C != n.R {
		panic("intmat: dimension mismatch")
	}
	out := New(m.R, n.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.C; j++ {
				out.A[i*out.C+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []int64) []int64 {
	if m.C != len(v) {
		panic("intmat: dimension mismatch")
	}
	out := make([]int64, m.R)
	for i := 0; i < m.R; i++ {
		var s int64
		for j := 0; j < m.C; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Det computes the determinant by fraction-free (Bareiss) elimination.
func (m *Matrix) Det() int64 {
	if m.R != m.C {
		panic("intmat: determinant of non-square matrix")
	}
	n := m.R
	if n == 0 {
		return 1
	}
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			// Pivot: find a row below with nonzero entry.
			swapped := false
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					for j := 0; j < n; j++ {
						a, b := w.At(k, j), w.At(i, j)
						w.Set(k, j, b)
						w.Set(i, j, a)
					}
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := w.At(i, j)*w.At(k, k) - w.At(i, k)*w.At(k, j)
				w.Set(i, j, num/prev)
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return sign * w.At(n-1, n-1)
}

// InverseUnimodular inverts a matrix with determinant ±1 exactly, via the
// adjugate. It returns an error for other determinants.
func (m *Matrix) InverseUnimodular() (*Matrix, error) {
	if m.R != m.C {
		return nil, fmt.Errorf("intmat: cannot invert %dx%d matrix", m.R, m.C)
	}
	d := m.Det()
	if d != 1 && d != -1 {
		return nil, fmt.Errorf("intmat: matrix is not unimodular (det %d)", d)
	}
	n := m.R
	inv := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := m.cofactor(j, i) // adjugate is the transposed cofactor matrix
			inv.Set(i, j, c/d)
		}
	}
	return inv, nil
}

// cofactor returns (-1)^(i+j) times the (i,j) minor.
func (m *Matrix) cofactor(i, j int) int64 {
	n := m.R
	sub := New(n-1, n-1)
	for r, sr := 0, 0; r < n; r++ {
		if r == i {
			continue
		}
		for c, sc := 0, 0; c < n; c++ {
			if c == j {
				continue
			}
			sub.Set(sr, sc, m.At(r, c))
			sc++
		}
		sr++
	}
	d := sub.Det()
	if (i+j)%2 == 1 {
		d = -d
	}
	return d
}

// Gcd returns the non-negative greatest common divisor of a and b.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GcdVec returns the gcd of all entries (0 for the empty or zero vector).
func GcdVec(v []int64) int64 {
	var g int64
	for _, x := range v {
		g = Gcd(g, x)
	}
	return g
}

// CompleteUnimodular returns a square matrix T with first row pi and
// |det T| = 1. gcd(pi) must be 1.
//
// When some coefficient pi[j] is ±1, the completion uses standard basis
// rows for every other index — the paper's construction, which for
// pi = (2,1,1) yields T = [[2,1,1],[1,0,0],[0,1,0]], i.e. K' = 2K+I+J,
// I' = K, J' = I. The omitted index is the last unit coefficient, matching
// the paper's choice. Otherwise a general completion is built by running
// extended-Euclid column operations on pi and inverting them.
func CompleteUnimodular(pi []int64) (*Matrix, error) {
	n := len(pi)
	if n == 0 {
		return nil, fmt.Errorf("intmat: empty time vector")
	}
	if g := GcdVec(pi); g != 1 {
		return nil, fmt.Errorf("intmat: time vector %v has gcd %d, want 1", pi, g)
	}
	// Preferred: omit the last index with a unit coefficient and use
	// standard basis rows for the remaining indices in order.
	for j := n - 1; j >= 0; j-- {
		if pi[j] == 1 || pi[j] == -1 {
			t := New(n, n)
			copy(t.A[:n], pi)
			row := 1
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				t.Set(row, i, 1)
				row++
			}
			if d := t.Det(); d != 1 && d != -1 {
				return nil, fmt.Errorf("intmat: internal: basis completion det %d", d)
			}
			return t, nil
		}
	}
	return completeGeneral(pi)
}

// completeGeneral builds the completion when no coefficient is ±1:
// column operations reduce pi to (1,0,...,0); the same operations applied
// to the identity give U with pi·U = e1; then T = U^{-1} has first row pi.
func completeGeneral(pi []int64) (*Matrix, error) {
	n := len(pi)
	v := make([]int64, n)
	copy(v, pi)
	uInv := Identity(n) // maintained so that uInv's first row stays pi·(ops)⁻¹... see below

	// We apply column ops to v; for each we apply the inverse row op to
	// uInv, preserving the invariant  (current v) = pi · U  and
	// uInv = U^{-1}. At the end v = e1·g, so U^{-1}'s first row is pi/g.
	// Column op: v[i] -= q*v[j]  ⇔  U ← U·E(j,i,-q) ⇔ U⁻¹ ← E(j,i,q)·U⁻¹,
	// which is the row op  row_j += q·row_i  on U⁻¹.
	for {
		// Find the two smallest-magnitude nonzero entries.
		p := -1
		for i := 0; i < n; i++ {
			if v[i] != 0 && (p < 0 || abs64(v[i]) < abs64(v[p])) {
				p = i
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("intmat: zero time vector")
		}
		done := true
		for i := 0; i < n; i++ {
			if i == p || v[i] == 0 {
				continue
			}
			q := v[i] / v[p]
			if q != 0 {
				v[i] -= q * v[p]
				// Row op on uInv: row_p += q·row_i.
				for c := 0; c < n; c++ {
					uInv.Set(p, c, uInv.At(p, c)+q*uInv.At(i, c))
				}
			}
			if v[i] != 0 {
				done = false
			}
		}
		if done {
			// v has a single nonzero entry v[p] = ±1 (gcd is 1).
			if v[p] != 1 && v[p] != -1 {
				return nil, fmt.Errorf("intmat: reduction reached %d, want ±1", v[p])
			}
			if v[p] == -1 {
				for c := 0; c < n; c++ {
					uInv.Set(p, c, -uInv.At(p, c))
				}
			}
			// Move the pivot row first.
			if p != 0 {
				for c := 0; c < n; c++ {
					a, b := uInv.At(0, c), uInv.At(p, c)
					uInv.Set(0, c, b)
					uInv.Set(p, c, a)
				}
			}
			if d := uInv.Det(); d != 1 && d != -1 {
				return nil, fmt.Errorf("intmat: internal: general completion det %d", d)
			}
			return uInv, nil
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
