package plan_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sched"
	"repro/internal/sem"
)

func lower(t *testing.T, src, modName string, opts plan.Options) *plan.Program {
	t.Helper()
	prog, err := parser.ParseProgram("t.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Module(modName)
	if modName == "" {
		m = cp.Modules[len(cp.Modules)-1]
	}
	sched, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return plan.Lower(m, sched, opts)
}

// TestLowerRelaxation checks the Figure 6 schedule lowers to collapsed
// DOALL planes inside a sequential K loop, with resolved slots.
func TestLowerRelaxation(t *testing.T) {
	p := lower(t, psrc.Relaxation, "Relaxation", plan.Options{})
	got := p.Compact()
	want := "DOALL I×J (eq.1); DO K (DOALL I×J (eq.3)); DOALL I×J (eq.2)"
	if got != want {
		t.Errorf("Compact = %q, want %q", got, want)
	}
	// I, J, K plus the subrange synthesized for A's anonymous 1..maxK
	// dimension.
	if p.NSlots() != 4 {
		t.Errorf("NSlots = %d, want 4", p.NSlots())
	}
	// The DOALL plane inside DO K must be a collapsed 2-dim leaf.
	var inner *plan.Step
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op == plan.OpDoAll && len(st.Dims) == 2 {
			inner = st
			break
		}
	}
	if inner == nil {
		t.Fatal("no collapsed 2-dim DOALL step")
	}
	if !inner.Leaf {
		t.Error("collapsed DOALL plane not marked leaf")
	}
	// Slots must be distinct and in range.
	seen := map[int]bool{}
	for _, s := range inner.Dims {
		if s < 0 || s >= p.NSlots() || seen[s] {
			t.Errorf("bad slot %d in %v", s, inner.Dims)
		}
		seen[s] = true
	}
	// Virtual dimension report is carried through.
	if len(p.Virtual) == 0 {
		t.Error("plan lost the virtual-dimension report")
	}
}

// TestLowerGaussSeidel checks the Figure 7 recurrence lowers to three
// nested sequential DO loops (its in-plane dependences forbid DOALLs).
func TestLowerGaussSeidel(t *testing.T) {
	p := lower(t, psrc.RelaxationGS, "Relaxation", plan.Options{})
	if got, want := p.Compact(), "DO K (DO I (DO J (eq.3)))"; !strings.Contains(got, want) {
		t.Errorf("Compact = %q, want substring %q", got, want)
	}
}

// TestLowerFused checks fusion is applied at lowering time: the four
// element-wise chain loops merge into one collapsed DOALL.
func TestLowerFused(t *testing.T) {
	const src = `
Chain: module (Xs: array[I] of real; N: int):
    [As: array [I] of real; Bs: array [I] of real];
type I = 0 .. N;
define
    As[I] = Xs[I] * 2.0 + 1.0;
    Bs[I] = As[I] * As[I];
end Chain;
`
	base := lower(t, src, "Chain", plan.Options{})
	fused := lower(t, src, "Chain", plan.Options{Fuse: true})
	if !fused.Fused {
		t.Error("fused plan not marked Fused")
	}
	countLoops := func(p *plan.Program) int {
		n := 0
		for _, st := range p.Steps {
			if st.Op != plan.OpEq {
				n++
			}
		}
		return n
	}
	if b, f := countLoops(base), countLoops(fused); f >= b {
		t.Errorf("fusion did not reduce loop count: base %d, fused %d", b, f)
	}
	if got, want := fused.Compact(), "DOALL I (eq.1; eq.2)"; got != want {
		t.Errorf("fused Compact = %q, want %q", got, want)
	}
}

// TestLowerWavefront checks the automatic §4 restructuring at the plan
// level: the Gauss–Seidel DO nest becomes a wavefront step carrying the
// paper's time vector, transformation and window, the virtual window on
// the transformed subrange is dropped (wavefront order interleaves K
// planes, so a 2-plane window would be clobbered while live), and
// T·T⁻¹ = I.
func TestLowerWavefront(t *testing.T) {
	base := lower(t, psrc.RelaxationGS, "Relaxation", plan.Options{})
	p := lower(t, psrc.RelaxationGS, "Relaxation", plan.Options{Hyperplane: true})
	if !p.HasWavefront() {
		t.Fatalf("no wavefront step in %s", p.Compact())
	}
	var wf *plan.Step
	for i := range p.Steps {
		if p.Steps[i].Op == plan.OpWavefront {
			wf = &p.Steps[i]
			break
		}
	}
	hy := wf.Hyper
	if got, want := fmt.Sprintf("%v", hy.Pi), "[2 1 1]"; got != want {
		t.Errorf("Pi = %s, want %s", got, want)
	}
	if hy.Window != 3 {
		t.Errorf("Window = %d, want 3", hy.Window)
	}
	if wf.End != indexOf(t, p, wf)+2 {
		t.Errorf("wavefront body is not the single recurrence step (End %d)", wf.End)
	}
	// T·T⁻¹ = I.
	n := len(hy.Pi)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += hy.T[i][k] * hy.TInv[k][j]
			}
			want := int64(0)
			if i == j {
				want = 1
			}
			if s != want {
				t.Fatalf("T·TInv[%d][%d] = %d, want %d", i, j, s, want)
			}
		}
	}
	// Row 1 of the paper's T is e_0 (I' = K): Basis must record it.
	if hy.Basis[0] != -1 || hy.Basis[1] != 0 {
		t.Errorf("Basis = %v", hy.Basis)
	}
	// Window drop: the base plan reports A's K window, the wavefront
	// variant must not.
	if len(base.Virtual) == 0 {
		t.Fatal("base plan lost the virtual report")
	}
	if len(p.Virtual) != 0 {
		t.Errorf("wavefront plan still reports virtual windows on transformed dims: %v", p.Virtual)
	}
	if got, want := p.Compact(), "DOALL I×J (eq.1); WAVEFRONT[pi=(2,1,1)] K×I×J (eq.3); DOALL I×J (eq.2)"; got != want {
		t.Errorf("Compact = %q, want %q", got, want)
	}
}

// TestWavefrontSchedMetadata checks the doacross schedule metadata baked
// onto the wavefront step: the transformed dependence vectors T·d (the
// paper's (1,0,0),(1,0,1),(1,1,0),(1,1,-1),(2,1,0) for Gauss–Seidel) and
// the predecessor-offset table folded per plane coordinate and plane
// distance.
func TestWavefrontSchedMetadata(t *testing.T) {
	p := lower(t, psrc.RelaxationGS, "Relaxation", plan.Options{Hyperplane: true})
	var hy *plan.Hyper
	for i := range p.Steps {
		if p.Steps[i].Op == plan.OpWavefront {
			hy = p.Steps[i].Hyper
			break
		}
	}
	if hy == nil {
		t.Fatal("no wavefront step")
	}
	if len(hy.TDeps) != 5 {
		t.Fatalf("TDeps = %v, want 5 vectors", hy.TDeps)
	}
	for _, d := range hy.TDeps {
		if d[0] < 1 {
			t.Errorf("transformed dependence %v has first component < 1", d)
		}
		if int(d[0]) > hy.Window-1 {
			t.Errorf("transformed dependence %v exceeds window %d", d, hy.Window)
		}
	}
	// Plane coordinates are (K, I); window 3 gives offsets for dt 1 and 2.
	if len(hy.Pred) != 2 || len(hy.Pred[0]) != 2 {
		t.Fatalf("Pred shape = %dx%d, want 2x2", len(hy.Pred), len(hy.Pred[0]))
	}
	// dt=1 deps are (1,0,0),(1,0,1),(1,1,0),(1,1,-1): K shifts in [0,1],
	// I shifts in [-1,1]. dt=2 dep is (2,1,0): K shift 1, I shift 0.
	check := func(pr sched.PredRange, lo, hi int64, what string) {
		if !pr.Has || pr.Lo != lo || pr.Hi != hi {
			t.Errorf("%s = %+v, want [%d,%d]", what, pr, lo, hi)
		}
	}
	check(hy.Pred[0][0], 0, 1, "Pred[K][dt=1]")
	check(hy.Pred[0][1], 1, 1, "Pred[K][dt=2]")
	check(hy.Pred[1][0], -1, 1, "Pred[I][dt=1]")
	check(hy.Pred[1][1], 0, 0, "Pred[I][dt=2]")
	// The listing surfaces the schedule metadata for the golden files.
	if !strings.Contains(p.String(), "tdeps (2,1,0)(1,0,0)(1,0,1)(1,1,0)(1,1,-1)") {
		t.Errorf("plan listing missing tdeps:\n%s", p.String())
	}
}

func indexOf(t *testing.T, p *plan.Program, st *plan.Step) int {
	t.Helper()
	for i := range p.Steps {
		if &p.Steps[i] == st {
			return i
		}
	}
	t.Fatal("step not in plan")
	return -1
}

// TestLowerWavefrontIneligible checks the pass leaves untransformable
// shapes alone: a 1-D recurrence (no plane) and an already-parallel
// nest lower identically with the option on.
func TestLowerWavefrontIneligible(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"Prefix", psrc.Prefix},
		{"Relaxation", psrc.Relaxation},
		{"Heat1D", psrc.Heat1D},
	} {
		base := lower(t, tc.src, "", plan.Options{})
		auto := lower(t, tc.src, "", plan.Options{Hyperplane: true})
		if auto.HasWavefront() {
			t.Errorf("%s: ineligible program transformed: %s", tc.name, auto.Compact())
		}
		if got, want := auto.Compact(), base.Compact(); got != want {
			t.Errorf("%s: auto plan %q differs from base %q", tc.name, got, want)
		}
	}
}

// TestStepRanges verifies the flat encoding invariants: loop bodies are
// contiguous, properly nested, and End always moves forward.
func TestStepRanges(t *testing.T) {
	for _, src := range []string{psrc.Relaxation, psrc.RelaxationGS, psrc.Prefix, psrc.Wavefront2D} {
		p := lower(t, src, "", plan.Options{})
		for i, st := range p.Steps {
			if st.Op == plan.OpEq {
				if st.Eq < 0 || st.Eq >= len(p.Eqs) {
					t.Errorf("step %d: kernel index %d out of range", i, st.Eq)
				}
				continue
			}
			if st.End <= i || st.End > len(p.Steps) {
				t.Errorf("step %d: End %d out of range", i, st.End)
			}
			if len(st.Dims) == 0 {
				t.Errorf("step %d: loop with no dims", i)
			}
		}
	}
}

// TestLowerMultiEquationWavefront checks the multi-equation tentpole at
// the plan level: a strongly connected two-recurrence component lowers
// to a single OpWavefront step whose body is one OpEq per equation, the
// Hyper block carries the union of both equations' transformed
// dependence vectors, and the predecessor-tile table folds the union.
func TestLowerMultiEquationWavefront(t *testing.T) {
	p := lower(t, psrc.CoupledGrid, "CoupledGrid", plan.Options{Hyperplane: true})
	var wf *plan.Step
	wfIdx := -1
	for i := range p.Steps {
		if p.Steps[i].Op == plan.OpWavefront {
			if wf != nil {
				t.Fatal("more than one wavefront step")
			}
			wf = &p.Steps[i]
			wfIdx = i
		}
	}
	if wf == nil {
		t.Fatalf("no wavefront step in plan:\n%s", p)
	}
	body := p.Steps[wfIdx+1 : wf.End]
	if len(body) != 2 {
		t.Fatalf("wavefront body has %d steps, want 2:\n%s", len(body), p)
	}
	for _, st := range body {
		if st.Op != plan.OpEq {
			t.Fatalf("wavefront body step is %s, want eq", st.Op)
		}
	}
	hy := wf.Hyper
	if want := []int64{1, 1}; hy.Pi[0] != want[0] || hy.Pi[1] != want[1] {
		t.Errorf("pi = %v, want %v", hy.Pi, want)
	}
	// Union of both recurrences: two (1,0) and two (0,1), transformed by
	// T = [[1,1],[1,0]] to (1,1) and (1,0).
	if len(hy.TDeps) != 4 {
		t.Errorf("TDeps carries %d vectors, want the 4-vector union", len(hy.TDeps))
	}
	for _, d := range hy.TDeps {
		if d[0] < 1 {
			t.Errorf("transformed dependence %v has non-positive time component", d)
		}
	}
	if hy.Window != 2 {
		t.Errorf("window = %d, want 2", hy.Window)
	}
	// The predecessor table must span the union: on the one plane
	// coordinate, offsets from both (1,*) transformed vectors.
	if len(hy.Pred) != 1 || len(hy.Pred[0]) != 1 || !hy.Pred[0][0].Has {
		t.Fatalf("Pred = %v, want one coordinate with a window-1 range", hy.Pred)
	}
	if pr := hy.Pred[0][0]; pr.Lo != 0 || pr.Hi != 1 {
		t.Errorf("Pred range = [%d,%d], want [0,1] (union of both equations' shifts)", pr.Lo, pr.Hi)
	}
	// The listing and the compact form surface the group.
	if s := p.String(); !strings.Contains(s, "kernels 2") {
		t.Errorf("listing missing kernel count:\n%s", s)
	}
	if c := p.Compact(); !strings.Contains(c, "WAVEFRONT[pi=(1,1)]") || !strings.Contains(c, ";") {
		t.Errorf("compact form missing multi-kernel wavefront: %q", c)
	}
}

// TestLowerMultiEquationIneligible pins the negative shapes: a body
// with a non-constant-offset group reference keeps its DO nest, and a
// two-loop body (a component the scheduler split) is not a group.
func TestLowerMultiEquationIneligible(t *testing.T) {
	const reflectSrc = `
Reflect: module (Seed: array[I,J] of real; N: int):
    [OutX: array [I,J] of real; OutY: array [I,J] of real];
type
    I,J = 1 .. N;
var
    X: array [1 .. N, 1 .. N] of real;
    Y: array [1 .. N, 1 .. N] of real;
define
    X[I,J] = if (I = 1) or (J = 1) then Seed[I,J]
             else (X[I-1,J] + Y[I,J-1]) / 2.0;
    Y[I,J] = if (I = 1) or (J = 1) then 0.5 * Seed[I,J]
             else (Y[I-1,J] + X[I,J-1] + X[I-1, N+1-J]) / 3.0;
    OutX[I,J] = X[I,J];
    OutY[I,J] = Y[I,J];
end Reflect;
`
	p := lower(t, reflectSrc, "Reflect", plan.Options{Hyperplane: true})
	if p.HasWavefront() {
		t.Errorf("non-constant-offset group was transformed:\n%s", p)
	}
	// Wavefront-ineligible is no longer sequential: the cascade falls
	// through to the PS-DSWP pipeline backend, which decouples the
	// recurrence nest from its downstream DOALL consumers.
	if !p.HasPipeline() {
		t.Errorf("wavefront-ineligible nest with DOALL consumers did not pipeline:\n%s", p)
	}
	if got, want := p.Compact(), "PIPELINE[I] (DO J (eq.2; eq.1) | DOALL J (eq.3) | DOALL J (eq.4))"; got != want {
		t.Errorf("compact pipeline plan = %q, want %q", got, want)
	}
	// With the cascade disabled the nest keeps its sequential DO chain.
	base := lower(t, reflectSrc, "Reflect", plan.Options{})
	if base.HasWavefront() || base.HasPipeline() {
		t.Errorf("base plan restructured:\n%s", base)
	}
	if got, want := base.Compact(), "DO I (DO J (eq.2; eq.1)); DOALL I×J (eq.3); DOALL I×J (eq.4)"; got != want {
		t.Errorf("compact base plan = %q, want %q", got, want)
	}
}
