package plan_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sem"
)

func lower(t *testing.T, src, modName string, opts plan.Options) *plan.Program {
	t.Helper()
	prog, err := parser.ParseProgram("t.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Module(modName)
	if modName == "" {
		m = cp.Modules[len(cp.Modules)-1]
	}
	sched, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return plan.Lower(m, sched, opts)
}

// TestLowerRelaxation checks the Figure 6 schedule lowers to collapsed
// DOALL planes inside a sequential K loop, with resolved slots.
func TestLowerRelaxation(t *testing.T) {
	p := lower(t, psrc.Relaxation, "Relaxation", plan.Options{})
	got := p.Compact()
	want := "DOALL I×J (eq.1); DO K (DOALL I×J (eq.3)); DOALL I×J (eq.2)"
	if got != want {
		t.Errorf("Compact = %q, want %q", got, want)
	}
	// I, J, K plus the subrange synthesized for A's anonymous 1..maxK
	// dimension.
	if p.NSlots() != 4 {
		t.Errorf("NSlots = %d, want 4", p.NSlots())
	}
	// The DOALL plane inside DO K must be a collapsed 2-dim leaf.
	var inner *plan.Step
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op == plan.OpDoAll && len(st.Dims) == 2 {
			inner = st
			break
		}
	}
	if inner == nil {
		t.Fatal("no collapsed 2-dim DOALL step")
	}
	if !inner.Leaf {
		t.Error("collapsed DOALL plane not marked leaf")
	}
	// Slots must be distinct and in range.
	seen := map[int]bool{}
	for _, s := range inner.Dims {
		if s < 0 || s >= p.NSlots() || seen[s] {
			t.Errorf("bad slot %d in %v", s, inner.Dims)
		}
		seen[s] = true
	}
	// Virtual dimension report is carried through.
	if len(p.Virtual) == 0 {
		t.Error("plan lost the virtual-dimension report")
	}
}

// TestLowerGaussSeidel checks the Figure 7 recurrence lowers to three
// nested sequential DO loops (its in-plane dependences forbid DOALLs).
func TestLowerGaussSeidel(t *testing.T) {
	p := lower(t, psrc.RelaxationGS, "Relaxation", plan.Options{})
	if got, want := p.Compact(), "DO K (DO I (DO J (eq.3)))"; !strings.Contains(got, want) {
		t.Errorf("Compact = %q, want substring %q", got, want)
	}
}

// TestLowerFused checks fusion is applied at lowering time: the four
// element-wise chain loops merge into one collapsed DOALL.
func TestLowerFused(t *testing.T) {
	const src = `
Chain: module (Xs: array[I] of real; N: int):
    [As: array [I] of real; Bs: array [I] of real];
type I = 0 .. N;
define
    As[I] = Xs[I] * 2.0 + 1.0;
    Bs[I] = As[I] * As[I];
end Chain;
`
	base := lower(t, src, "Chain", plan.Options{})
	fused := lower(t, src, "Chain", plan.Options{Fuse: true})
	if !fused.Fused {
		t.Error("fused plan not marked Fused")
	}
	countLoops := func(p *plan.Program) int {
		n := 0
		for _, st := range p.Steps {
			if st.Op != plan.OpEq {
				n++
			}
		}
		return n
	}
	if b, f := countLoops(base), countLoops(fused); f >= b {
		t.Errorf("fusion did not reduce loop count: base %d, fused %d", b, f)
	}
	if got, want := fused.Compact(), "DOALL I (eq.1; eq.2)"; got != want {
		t.Errorf("fused Compact = %q, want %q", got, want)
	}
}

// TestStepRanges verifies the flat encoding invariants: loop bodies are
// contiguous, properly nested, and End always moves forward.
func TestStepRanges(t *testing.T) {
	for _, src := range []string{psrc.Relaxation, psrc.RelaxationGS, psrc.Prefix, psrc.Wavefront2D} {
		p := lower(t, src, "", plan.Options{})
		for i, st := range p.Steps {
			if st.Op == plan.OpEq {
				if st.Eq < 0 || st.Eq >= len(p.Eqs) {
					t.Errorf("step %d: kernel index %d out of range", i, st.Eq)
				}
				continue
			}
			if st.End <= i || st.End > len(p.Steps) {
				t.Errorf("step %d: End %d out of range", i, st.End)
			}
			if len(st.Dims) == 0 {
				t.Errorf("step %d: loop with no dims", i)
			}
		}
	}
}
