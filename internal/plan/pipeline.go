package plan

import (
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/types"
)

// The PS-DSWP pipeline backend (cascade stage 3). A nest whose SCC
// carries references no constant-offset dependence vector describes
// (reflect.ps's X[I-1, N+1-J]) can never wavefront — but the region's
// dependence SCC DAG still decouples: the recurrence nest is one
// sequential stage, and the downstream DOALL nests consuming its
// outputs at the same or earlier iterations of the outer dimension are
// parallel stages that may start row t as soon as the producer finishes
// row t. The recognizer below partitions a flowchart region into those
// stages; the runtime (internal/pipe) connects them with bounded
// channels and replicates the parallel stages.

// pipeConsumer is one recognized downstream DOALL stage.
type pipeConsumer struct {
	loop *core.LoopDesc
	// dims is the collapsed parallel dimension chain, including the
	// streamed dimension (stripped at emission: the token pins it).
	dims []*types.Subrange
	// body is the innermost body below the collapse chain.
	body core.Flowchart
	deps []PipeDep
}

// pipePlan is a recognized pipeline partition for one region.
type pipePlan struct {
	consumers []pipeConsumer
	window    int
}

// tryPipeline recognizes a pipeline rooted at the sequential loop
// fc[i]: the producer nest must be fully sequential (a nest already
// containing DOALL dimensions keeps its parallelism instead of being
// serialized into one stage), and the following sibling descriptors
// qualify as consumer stages while they are DOALL nests whose collapse
// chain includes the streamed dimension and whose reads of earlier
// stages' outputs reach only the same or earlier stream iterations. On
// ineligibility it returns nil and the reason the cascade records.
func (lw *lowerer) tryPipeline(fc core.Flowchart, i int) (*pipePlan, string) {
	l := fc[i].(*core.LoopDesc)
	if hasParallelLoop(core.Flowchart{l}) {
		return nil, "producer nest already contains DOALL parallelism"
	}
	stream := l.Subrange
	stageProducers := []map[*depgraph.Node]bool{producerSet(l.Body)}
	pp := &pipePlan{window: 1}
	for j := i + 1; j < len(fc); j++ {
		cand, ok := fc[j].(*core.LoopDesc)
		if !ok || !cand.Parallel {
			break
		}
		dims, body := collapseChain(cand)
		if !containsDim(dims, stream) {
			break
		}
		deps, ok := stageDeps(cand, stream, stageProducers)
		if !ok || len(deps) == 0 {
			// A read reaching forward (or opaquely) along the stream, or
			// a nest independent of the pipeline: the stage chain ends.
			break
		}
		for _, d := range deps {
			if w := int(d.Dist) + 1; w > pp.window {
				pp.window = w
			}
		}
		pp.consumers = append(pp.consumers, pipeConsumer{loop: cand, dims: dims, body: body, deps: deps})
		stageProducers = append(stageProducers, producerSet(cand.Body))
	}
	if len(pp.consumers) == 0 {
		return nil, "no downstream DOALL consumer streams dimension " + stream.Name
	}
	return pp, ""
}

// stageDeps resolves the dependences of cand on the earlier stages'
// producer sets. Every read of a pipeline-produced value must carry an
// identity or backward-offset subscript on the streamed dimension; a
// forward or non-affine stream subscript (or a read that does not
// mention the stream at all, e.g. a whole-array or upper-bound
// reference needing the producer to finish) disqualifies the stage.
func stageDeps(cand *core.LoopDesc, stream *types.Subrange, stages []map[*depgraph.Node]bool) ([]PipeDep, bool) {
	dist := make([]int64, len(stages))
	has := make([]bool, len(stages))
	for _, n := range cand.Body.Equations() {
		for _, e := range n.In {
			if e.Kind != depgraph.DataDep {
				continue
			}
			s := -1
			for k := range stages {
				if stages[k][e.From] {
					s = k
					break
				}
			}
			if s < 0 {
				continue
			}
			okRef := false
			d := int64(0)
			for _, lb := range e.Labels {
				if lb.Var != stream {
					continue
				}
				switch lb.Kind {
				case depgraph.SubIdentity, depgraph.SubOffsetBack:
					okRef = true
					if lb.Offset > d {
						d = lb.Offset
					}
				default:
					return nil, false
				}
			}
			if !okRef {
				return nil, false
			}
			if !has[s] || d > dist[s] {
				dist[s] = d
			}
			has[s] = true
		}
	}
	var deps []PipeDep
	for s := range stages {
		if has[s] {
			deps = append(deps, PipeDep{Stage: s, Dist: dist[s]})
		}
	}
	return deps, true
}

// emitPipeline lowers the recognized partition: an OpPipeline step
// whose body concatenates the stage bodies. Stage 0 is the producer
// nest's body lowered as-is (the token pins the stream slot, so per
// token it executes exactly the original iteration's work, in order);
// each consumer stage is its DOALL nest with the streamed dimension
// stripped from the collapse. Virtual windows on arrays written inside
// the pipeline are dropped: a parallel stage may lag the producer, so a
// window sized for strictly ascending execution could be overwritten
// while still live.
func (lw *lowerer) emitPipeline(l *core.LoopDesc, pp *pipePlan) {
	stream := l.Subrange
	self := len(lw.p.Steps)
	pi := &Pipe{Stream: lw.slotOf(stream), Window: pp.window}
	lw.p.Steps = append(lw.p.Steps, Step{Op: OpPipeline, Dims: []int{pi.Stream}, Pipe: pi})

	first := len(lw.p.Steps)
	lw.lower(l.Body)
	pi.Stages = append(pi.Stages, PipeStage{First: first, End: len(lw.p.Steps)})

	for _, c := range pp.consumers {
		first := len(lw.p.Steps)
		var dims []int
		for _, d := range c.dims {
			if d != stream {
				dims = append(dims, lw.slotOf(d))
			}
		}
		if len(dims) > 0 {
			dself := len(lw.p.Steps)
			lw.p.Steps = append(lw.p.Steps, Step{Op: OpDoAll, Dims: dims})
			lw.lower(c.body)
			st := &lw.p.Steps[dself]
			st.End = len(lw.p.Steps)
			if st.End > dself+1 {
				st.Leaf = true
				for k := dself + 1; k < st.End; k++ {
					if lw.p.Steps[k].Op != OpEq {
						st.Leaf = false
						break
					}
				}
			}
		} else {
			lw.lower(c.body)
		}
		pi.Stages = append(pi.Stages, PipeStage{
			First:    first,
			End:      len(lw.p.Steps),
			Parallel: true,
			Deps:     c.deps,
		})
	}
	lw.p.Steps[self].End = len(lw.p.Steps)

	// Arrays written by any pipeline stage lose their §3.4 windows.
	written := make(map[string]bool)
	collect := func(fc core.Flowchart) {
		for _, n := range fc.Equations() {
			if n.Eq == nil {
				continue
			}
			for _, t := range n.Eq.Targets {
				written[t.Sym.Name] = true
			}
		}
	}
	collect(l.Body)
	for _, c := range pp.consumers {
		collect(c.loop.Body)
	}
	kept := lw.p.Virtual[:0:0]
	for _, v := range lw.p.Virtual {
		if !written[v.Sym.Name] {
			kept = append(kept, v)
		}
	}
	lw.p.Virtual = kept
}

// producerSet collects the equation nodes of fc and the data nodes they
// define — the values later stages might consume.
func producerSet(fc core.Flowchart) map[*depgraph.Node]bool {
	set := make(map[*depgraph.Node]bool)
	for _, n := range fc.Equations() {
		set[n] = true
		for _, e := range n.Out {
			if e.IsLHS {
				set[e.To] = true
			}
		}
	}
	return set
}

// collapseChain mirrors lowerLoop's DOALL collapse walk: the singleton
// chain of nested parallel loops under l, up to MaxCollapse dimensions.
func collapseChain(l *core.LoopDesc) ([]*types.Subrange, core.Flowchart) {
	dims := []*types.Subrange{l.Subrange}
	body := l.Body
	for len(body) == 1 && len(dims) < MaxCollapse {
		inner, ok := body[0].(*core.LoopDesc)
		if !ok || !inner.Parallel {
			break
		}
		dims = append(dims, inner.Subrange)
		body = inner.Body
	}
	return dims, body
}

// hasParallelLoop reports whether fc contains any DOALL descriptor.
func hasParallelLoop(fc core.Flowchart) bool {
	for _, l := range fc.Loops() {
		if l.Parallel {
			return true
		}
	}
	return false
}

// containsDim reports whether dims includes d.
func containsDim(dims []*types.Subrange, d *types.Subrange) bool {
	for _, x := range dims {
		if x == d {
			return true
		}
	}
	return false
}
