package plan

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/types"
)

// Op is a plan instruction opcode.
type Op uint8

const (
	// OpEq executes one equation kernel at the current index frame.
	OpEq Op = iota
	// OpDo is a sequential (iterative) loop over one subrange.
	OpDo
	// OpDoAll is a parallel loop: one or more collapsed DOALL dimensions
	// forming a single linear iteration space.
	OpDoAll
	// OpWavefront is a §4 hyperplane-restructured loop nest: an outer
	// sequential sweep over hyperplanes t = π·x wrapping a parallel
	// (DOALL) traversal of each plane, with the T⁻¹ remap back to the
	// original index frame baked into the step (see Hyper).
	OpWavefront
	// OpPipeline is a PS-DSWP decoupled software pipeline: a fully
	// sequential producer nest and the downstream DOALL nests that
	// consume its outputs at the same or earlier iterations of the
	// nest's outer dimension, partitioned into stages that stream that
	// dimension's iterations ("tokens") through bounded channels. The
	// sequential stage keeps one goroutine; parallel stages replicate.
	// See Pipe.
	OpPipeline
)

// String names the opcode.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "eq"
	case OpDo:
		return "do"
	case OpDoAll:
		return "doall"
	case OpWavefront:
		return "wavefront"
	case OpPipeline:
		return "pipeline"
	}
	return "?"
}

// Bound is one subrange of the module: its inclusive lo/hi bound
// expressions (the "bound thunks" backends compile once) and, by its
// position in Program.Bounds, the frame slot its index variable occupies.
type Bound struct {
	Subrange *types.Subrange
	Lo, Hi   ast.Expr
}

// Step is one flat plan instruction. Loop steps own the contiguous range
// of body steps Steps[i+1:End]; executors iterate a step slice and skip
// to End after running a loop, so the program needs no pointer chasing.
type Step struct {
	Op Op
	// Eq indexes Program.Eqs for OpEq steps.
	Eq int
	// Dims lists the frame slots this loop iterates, outermost first.
	// OpDo always has exactly one; OpDoAll has one per collapsed
	// dimension of the nest.
	Dims []int
	// End is one past the last body step for loop ops (body is
	// Steps[i+1:End]); meaningless for OpEq.
	End int
	// Leaf marks a DOALL whose body is equation steps only, letting
	// executors run the collapsed iteration space without re-entering the
	// step dispatcher per point.
	Leaf bool
	// Hyper carries the §4 restructuring data for OpWavefront steps; nil
	// for every other op.
	Hyper *Hyper
	// Pipe carries the stage partition for OpPipeline steps; nil for
	// every other op.
	Pipe *Pipe
}

// Pipe is the stage partition of one OpPipeline step. The dependence
// SCC DAG of the region — the producer nest plus its downstream DOALL
// consumers — is grouped into stages; the streamed dimension's
// iterations are the pipeline tokens, and every cross-stage dependence
// reaches only the same or earlier tokens, so a stage may start token t
// as soon as each upstream stage has finished token t (the backward
// distances in Deps relax that to t - Dist).
type Pipe struct {
	// Stream is the frame slot of the streamed (outer sequential)
	// dimension.
	Stream int
	// Window is 1 + the largest backward token distance any cross-stage
	// dependence carries — the channel capacity bound, playing the role
	// Hyper.Window plays for wavefronts.
	Window int
	// Stages partitions the step's body: stage k's body is
	// Steps[Stages[k].First:Stages[k].End], executed once per token with
	// the stream slot pinned.
	Stages []PipeStage
}

// PipeStage is one pipeline stage.
type PipeStage struct {
	// First, End bound the stage's body steps.
	First, End int
	// Parallel marks a DOALL-able stage the runtime replicates
	// PS-DSWP-style; the sequential producer stage (always stage 0) gets
	// exactly one goroutine.
	Parallel bool
	// Deps lists the upstream stages whose outputs this stage reads,
	// with the largest backward distance along the streamed dimension:
	// token t of this stage needs token t - Dist … t of stage Stage.
	Deps []PipeDep
}

// PipeDep is one cross-stage dependence.
type PipeDep struct {
	Stage int
	// Dist is the largest backward distance along the streamed
	// dimension (0 = same token).
	Dist int64
}

// Hyper is the hyperplane restructuring of one sequential loop nest
// (paper §4), attached to an OpWavefront step. The step's Dims list the
// original frame slots in equation-dimension order; executors sweep the
// transformed coordinates x' = T·x plane by plane (x'₀ = π·x is the
// time axis), recover x = T⁻¹·x' per point, skip points whose preimage
// falls outside the original iteration box, and run the body at the
// original frame — so equation kernels are shared untouched with the
// untransformed plan variants.
type Hyper struct {
	// Pi is the least time vector with π·d ≥ 1 for every dependence d;
	// it is row 0 of T.
	Pi []int64
	// T is the unimodular coordinate change, TInv its exact inverse,
	// stored as dense rows.
	T, TInv [][]int64
	// Basis[r] = j when row r of T is the standard basis vector e_j (so
	// transformed coordinate r is exactly original dimension j), else
	// -1. Executors use it to tighten each plane coordinate's range per
	// time step — π·x = t bounds a basis coordinate to
	// [⌈(t−maxOthers)/π_j⌉, ⌊(t−minOthers)/π_j⌋] — which keeps the
	// bounding-box slack linear instead of quadratic in the time span.
	// Basis[0] is always -1 (row 0 is π).
	Basis []int
	// Window is 1 + the largest transformed first dependence component —
	// the number of consecutive hyperplanes a plane's inputs span.
	Window int
	// TDeps are the transformed dependence vectors T·d, one per
	// constant-offset self-reference of the recurrence; every first
	// component is ≥ 1 (π·d ≥ 1). They are the doacross schedule's raw
	// material: the `depend(sink:)` vectors of the generated C and the
	// source of the predecessor-tile offsets below.
	TDeps [][]int64
	// Pred[r-1][dt-1] bounds the coordinate-r shift of the dependences
	// reaching dt hyperplanes back (r = 1..n-1 plane coordinates,
	// dt = 1..Window-1): a point with plane coordinate c on plane t
	// reads coordinates [c-Hi, c-Lo] on plane t-dt. The doacross
	// executor blocks one plane coordinate into tiles and waits only on
	// the predecessor tiles this table implies.
	Pred [][]sched.PredRange
}

// predRanges folds the transformed dependence vectors into the
// per-coordinate predecessor-offset table.
func predRanges(tdeps [][]int64, n, window int) [][]sched.PredRange {
	pred := make([][]sched.PredRange, n-1)
	for r := 1; r < n; r++ {
		pred[r-1] = make([]sched.PredRange, window-1)
		for _, d := range tdeps {
			dt := int(d[0])
			if dt < 1 || dt > window-1 {
				continue
			}
			pr := &pred[r-1][dt-1]
			if !pr.Has {
				*pr = sched.PredRange{Has: true, Lo: d[r], Hi: d[r]}
				continue
			}
			if d[r] < pr.Lo {
				pr.Lo = d[r]
			}
			if d[r] > pr.Hi {
				pr.Hi = d[r]
			}
		}
	}
	return pred
}

// piString renders the time function over the step's dimension names,
// e.g. "2K + I + J".
func (h *Hyper) piString(names []string) string {
	var terms []string
	for i, c := range h.Pi {
		switch {
		case c == 0:
		case c == 1:
			terms = append(terms, names[i])
		default:
			terms = append(terms, fmt.Sprintf("%d%s", c, names[i]))
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}

// vecString renders an integer vector like "(2,1,1)".
func vecString(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Program is the lowered loop program for one module variant.
type Program struct {
	// Module is the source module's name.
	Module string
	// Fused records whether §5 loop fusion was applied at lowering.
	Fused bool
	// Bounds lists every subrange of the module in declaration order.
	// The index of a bound is the frame slot of its loop variable, so a
	// frame is []int64 of length len(Bounds).
	Bounds []Bound
	// Steps is the flat loop program in pre-order.
	Steps []Step
	// Eqs is the kernel table: OpEq steps index it.
	Eqs []*sem.Equation
	// Virtual carries the §3.4 window-allocatable dimensions through to
	// the backends.
	Virtual []core.VirtualDim
	// Cascade records one Decision per lowered loop nest when the
	// scheduler cascade ran (Options.Hyperplane); nil otherwise.
	Cascade []Decision
}

// Rejection records why one cascade backend declined a nest.
type Rejection struct {
	Backend string // "doall", "wavefront", "pipeline"
	Reason  string
}

// Decision is the scheduler cascade's record for one lowered loop nest:
// which backend won and why each earlier backend in the cascade order
// was rejected. Runner.Explain renders the list.
type Decision struct {
	// Step indexes the step the nest lowered to.
	Step int
	// Nest names the nest's dimensions, outermost first.
	Nest string
	// Choice is the winning backend: "doall", "wavefront", "pipeline"
	// or "sequential".
	Choice string
	// Detail is backend-specific: the chosen π for wavefronts, the
	// stage split for pipelines.
	Detail string
	// Merged marks a nest the re-merge pre-pass rebuilt from sibling
	// nests the scheduler had split.
	Merged bool
	// Rejections lists the backends tried before Choice, in cascade
	// order, with the reason each declined.
	Rejections []Rejection
}

// CascadeReport renders the cascade decisions as an indented block, or
// "" when the cascade did not run:
//
//	cascade:
//	  step 0: nest I, J -> doall
//	  step 4: nest I -> pipeline (3 stages: 1 seq + 2 par, window 1)
//	          doall rejected: 2 loop-carried dependence edge(s)
//	          wavefront rejected: hyperplane: ...
func (p *Program) CascadeReport() string {
	if len(p.Cascade) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("cascade:\n")
	for _, d := range p.Cascade {
		fmt.Fprintf(&sb, "  step %d: nest %s -> %s", d.Step, d.Nest, d.Choice)
		if d.Detail != "" {
			fmt.Fprintf(&sb, " (%s)", d.Detail)
		}
		if d.Merged {
			sb.WriteString(" [re-merged sibling nests]")
		}
		sb.WriteByte('\n')
		for _, r := range d.Rejections {
			fmt.Fprintf(&sb, "          %s rejected: %s\n", r.Backend, r.Reason)
		}
	}
	return sb.String()
}

// NSlots returns the index-frame length plans of this module require.
func (p *Program) NSlots() int { return len(p.Bounds) }

// Windows resolves the Virtual report into a per-symbol window table
// (dimension index → plane count), the form both backends consume when
// allocating arrays.
func (p *Program) Windows() map[*sem.Symbol]map[int]int {
	win := make(map[*sem.Symbol]map[int]int)
	for _, v := range p.Virtual {
		if win[v.Sym] == nil {
			win[v.Sym] = make(map[int]int)
		}
		win[v.Sym][v.Dim] = v.Window
	}
	return win
}

// MaxCollapse bounds the number of dimensions folded into one DOALL
// step, matching the executors' fixed-size per-dimension buffers.
const MaxCollapse = 8

// Options select the plan variant to lower.
type Options struct {
	// Fuse applies §5 loop fusion to the flowchart before lowering.
	Fuse bool
	// Hyperplane runs the scheduler selection cascade: each nest tries
	// DOALL first, then the automatic §4 wavefront restructuring, then
	// the PS-DSWP pipeline backend, and falls back to a sequential DO
	// nest only when every backend declines. It also enables the
	// re-merge pre-pass rejoining sibling nests whose unioned
	// dependence vectors admit a π.
	Hyperplane bool
	// PipelineFirst flips the cascade's tie-break to prefer the
	// pipeline backend over the wavefront transform (the
	// WithSchedule(SchedulePipeline) variant). Meaningless without
	// Hyperplane.
	PipelineFirst bool
}

// Lower flattens a module's schedule into an executable plan. It is the
// single point where flowchart descriptors are interpreted; backends
// must consume the returned Program instead of the flowchart.
func Lower(m *sem.Module, sched *core.Schedule, opts Options) *Program {
	p := &Program{Module: m.Name, Fused: opts.Fuse, Virtual: sched.Virtual}
	lw := &lowerer{p: p, m: m, opts: opts, slot: make(map[*types.Subrange]int, len(m.Subranges))}
	for i, info := range m.Subranges {
		lw.slot[info.Type] = i
		p.Bounds = append(p.Bounds, Bound{Subrange: info.Type, Lo: info.Type.Lo, Hi: info.Type.Hi})
	}
	fc := sched.Flowchart
	if opts.Fuse {
		fc = core.Fuse(fc)
	}
	if opts.Hyperplane {
		fc = lw.remerge(fc)
	}
	lw.lower(fc)
	return p
}

// HasWavefront reports whether the plan contains a §4 wavefront step.
func (p *Program) HasWavefront() bool {
	for i := range p.Steps {
		if p.Steps[i].Op == OpWavefront {
			return true
		}
	}
	return false
}

// HasPipeline reports whether the plan contains a PS-DSWP pipeline step.
func (p *Program) HasPipeline() bool {
	for i := range p.Steps {
		if p.Steps[i].Op == OpPipeline {
			return true
		}
	}
	return false
}

// lowerer carries lowering state for one Lower call.
type lowerer struct {
	p      *Program
	m      *sem.Module
	opts   Options
	slot   map[*types.Subrange]int
	eqIdx  map[*sem.Equation]int
	merged map[*core.LoopDesc]bool
}

func (lw *lowerer) lower(fc core.Flowchart) {
	for i := 0; i < len(fc); i++ {
		switch x := fc[i].(type) {
		case *core.NodeDesc:
			if x.Node.Eq != nil {
				lw.p.Steps = append(lw.p.Steps, Step{Op: OpEq, Eq: lw.kernel(x.Node.Eq)})
			}
		case *core.LoopDesc:
			if lw.opts.Hyperplane {
				// The cascade may absorb downstream siblings into a
				// pipeline step.
				i += lw.lowerCascade(fc, i) - 1
			} else {
				lw.lowerLoop(x)
			}
		}
	}
}

// remerge is the cascade pre-pass: when a sequential loop's body was
// split by the scheduler into sibling DO nests over one common subrange
// (deleting the cross edges of a strongly connected component splits it
// into per-equation loops), re-merge the siblings with the §5 fusion
// rules and keep the merged nest exactly when the unioned dependence
// vectors of the rejoined body admit a time vector — so the base
// schedule of a program like mutual.ps wavefronts the way its fused
// variant does.
func (lw *lowerer) remerge(fc core.Flowchart) core.Flowchart {
	out := make(core.Flowchart, 0, len(fc))
	for _, d := range fc {
		l, ok := d.(*core.LoopDesc)
		if !ok {
			out = append(out, d)
			continue
		}
		nl := &core.LoopDesc{
			Subrange: l.Subrange,
			Parallel: l.Parallel,
			Body:     lw.remerge(l.Body),
			Deleted:  l.Deleted,
		}
		if cand, ok := lw.tryRemerge(nl); ok {
			if lw.merged == nil {
				lw.merged = make(map[*core.LoopDesc]bool)
			}
			lw.merged[cand] = true
			nl = cand
		}
		out = append(out, nl)
	}
	return out
}

// tryRemerge rebuilds l with its sibling body nests fused, keeping the
// result only when the merged nest admits a π.
func (lw *lowerer) tryRemerge(l *core.LoopDesc) (*core.LoopDesc, bool) {
	if l.Parallel || len(l.Body) < 2 {
		return nil, false
	}
	var sub *types.Subrange
	for _, d := range l.Body {
		inner, ok := d.(*core.LoopDesc)
		if !ok || inner.Parallel {
			return nil, false
		}
		if sub == nil {
			sub = inner.Subrange
		} else if inner.Subrange != sub {
			return nil, false
		}
	}
	fused := core.Fuse(l.Body)
	if len(fused) != 1 {
		return nil, false
	}
	cand := &core.LoopDesc{Subrange: l.Subrange, Body: fused, Deleted: l.Deleted}
	if _, _, err := lw.wavefrontAnalysis(cand); err != nil {
		return nil, false
	}
	return cand, true
}

// lowerCascade lowers the loop at fc[i] through the backend selection
// cascade — DOALL, then wavefront, then pipeline (the last two swap
// under Options.PipelineFirst) — records the Decision, and returns how
// many region descriptors it consumed (a pipeline absorbs the
// downstream sibling nests it stages).
func (lw *lowerer) lowerCascade(fc core.Flowchart, i int) int {
	l := fc[i].(*core.LoopDesc)
	step := len(lw.p.Steps)
	if l.Parallel {
		lw.lowerLoop(l)
		lw.p.Cascade = append(lw.p.Cascade, Decision{
			Step:   step,
			Nest:   lw.p.dimNames(&lw.p.Steps[step]),
			Choice: "doall",
		})
		return 1
	}
	d := Decision{Step: step, Nest: l.Subrange.Name, Merged: lw.merged[l]}
	d.Rejections = append(d.Rejections, Rejection{"doall", doallReason(l)})
	consumed := 0
	try := func(backend string) bool {
		switch backend {
		case "wavefront":
			an, eqs, err := lw.wavefrontAnalysis(l)
			if err != nil {
				d.Rejections = append(d.Rejections, Rejection{"wavefront", err.Error()})
				return false
			}
			lw.emitWavefront(an, eqs)
			names := make([]string, len(an.Dims))
			for k, dim := range an.Dims {
				names[k] = dim.Name
			}
			d.Nest = strings.Join(names, ", ")
			d.Choice = "wavefront"
			d.Detail = fmt.Sprintf("pi = %s, window %d", vecString(an.Pi), an.Window)
			consumed = 1
			return true
		case "pipeline":
			pp, reason := lw.tryPipeline(fc, i)
			if pp == nil {
				d.Rejections = append(d.Rejections, Rejection{"pipeline", reason})
				return false
			}
			lw.emitPipeline(l, pp)
			d.Choice = "pipeline"
			d.Detail = fmt.Sprintf("%d stages: 1 seq + %d par, window %d, stream %s",
				1+len(pp.consumers), len(pp.consumers), pp.window, l.Subrange.Name)
			consumed = 1 + len(pp.consumers)
			return true
		}
		return false
	}
	order := []string{"wavefront", "pipeline"}
	if lw.opts.PipelineFirst {
		order = []string{"pipeline", "wavefront"}
	}
	for _, b := range order {
		if try(b) {
			lw.p.Cascade = append(lw.p.Cascade, d)
			return consumed
		}
	}
	lw.lowerLoop(l)
	d.Choice = "sequential"
	lw.p.Cascade = append(lw.p.Cascade, d)
	return 1
}

// doallReason explains why a sequential loop cannot be a DOALL.
func doallReason(l *core.LoopDesc) string {
	if n := len(l.Deleted); n > 0 {
		return fmt.Sprintf("%d loop-carried dependence edge(s) force ascending order", n)
	}
	return "loop-carried dependences force ascending order"
}

// slotOf resolves a scheduled subrange to its frame slot; every loop
// dimension must come from the module's subrange table.
func (lw *lowerer) slotOf(sr *types.Subrange) int {
	s, ok := lw.slot[sr]
	if !ok {
		panic(fmt.Sprintf("plan: module %s schedules unknown subrange %s", lw.p.Module, sr.Name))
	}
	return s
}

// kernel interns an equation into the kernel table.
func (lw *lowerer) kernel(eq *sem.Equation) int {
	if lw.eqIdx == nil {
		lw.eqIdx = make(map[*sem.Equation]int)
	}
	if i, ok := lw.eqIdx[eq]; ok {
		return i
	}
	i := len(lw.p.Eqs)
	lw.eqIdx[eq] = i
	lw.p.Eqs = append(lw.p.Eqs, eq)
	return i
}

// lowerLoop emits one loop step. A parallel loop whose body is exactly
// one nested parallel loop collapses into a single multi-dimensional
// DOALL — the dimension flattening the interpreter used to rediscover on
// every activation. PS subrange bounds depend only on module scalars, so
// inner bounds are loop-invariant and the collapse is always legal.
func (lw *lowerer) lowerLoop(l *core.LoopDesc) {
	dims := []int{lw.slotOf(l.Subrange)}
	body := l.Body
	op := OpDo
	if l.Parallel {
		op = OpDoAll
		for len(body) == 1 && len(dims) < MaxCollapse {
			inner, ok := body[0].(*core.LoopDesc)
			if !ok || !inner.Parallel {
				break
			}
			dims = append(dims, lw.slotOf(inner.Subrange))
			body = inner.Body
		}
	}
	self := len(lw.p.Steps)
	lw.p.Steps = append(lw.p.Steps, Step{Op: op, Dims: dims})
	lw.lower(body)
	st := &lw.p.Steps[self]
	st.End = len(lw.p.Steps)
	if op == OpDoAll && st.End > self+1 {
		st.Leaf = true
		for i := self + 1; i < st.End; i++ {
			if lw.p.Steps[i].Op != OpEq {
				st.Leaf = false
				break
			}
		}
	}
}

// wavefrontAnalysis recognizes the §4-eligible shape under l — a
// maximal nest of fully sequential singleton loops whose innermost body
// is one or more recurrence equations iterating exactly the nest's
// dimensions (one equation, a strongly connected component the
// scheduler put into one nest, or a §5-fused group) — and runs the
// hyperplane analysis on the union of the group's dependence vectors.
// On any ineligibility it returns an error naming the reason, which the
// cascade records as the wavefront backend's rejection; the transform
// stays a pure win-or-no-change.
func (lw *lowerer) wavefrontAnalysis(l *core.LoopDesc) (*hyperplane.Analysis, []*sem.Equation, error) {
	var dims []*types.Subrange
	cur := l
	for {
		if cur.Parallel {
			return nil, nil, fmt.Errorf("nest has a DOALL dimension (%s)", cur.Subrange.Name)
		}
		dims = append(dims, cur.Subrange)
		if len(cur.Body) == 1 {
			if inner, ok := cur.Body[0].(*core.LoopDesc); ok {
				cur = inner
				continue
			}
		}
		eqs := equationBody(cur.Body)
		if eqs == nil {
			return nil, nil, fmt.Errorf("innermost body is not a pure equation group")
		}
		// A 1-D nest has no plane to parallelize; every equation must
		// iterate the nest's full dimension set so one time vector covers
		// every scheduled subscript of the group.
		if len(dims) < 2 {
			return nil, nil, fmt.Errorf("1-D nest has no plane to parallelize")
		}
		if len(dims) > MaxCollapse {
			return nil, nil, fmt.Errorf("nest exceeds the %d-dimension collapse bound", MaxCollapse)
		}
		for _, eq := range eqs {
			covers := len(eq.Dims) == len(dims)
			if covers {
				for _, d := range eq.Dims {
					found := false
					for _, nd := range dims {
						if nd == d {
							found = true
							break
						}
					}
					if !found {
						covers = false
						break
					}
				}
			}
			if !covers {
				return nil, nil, fmt.Errorf("equation %s does not iterate the nest's dimension set", eq.Label)
			}
		}
		an, err := hyperplane.AnalyzeGroup(lw.m, eqs)
		if err != nil {
			return nil, nil, err
		}
		return an, eqs, nil
	}
}

// equationBody returns the equations of an innermost loop body in
// scheduled order, or nil when the body contains anything but equation
// nodes (nested loops, data declarations).
func equationBody(fc core.Flowchart) []*sem.Equation {
	var eqs []*sem.Equation
	for _, d := range fc {
		nd, ok := d.(*core.NodeDesc)
		if !ok || nd.Node.Eq == nil {
			return nil
		}
		eqs = append(eqs, nd.Node.Eq)
	}
	return eqs
}

// emitWavefront lowers one analyzed recurrence group as a wavefront
// step whose body is one OpEq step per equation, in group (scheduled)
// order — executors run every kernel at each plane point, so in-plane
// zero-distance dependences between group equations stay satisfied. The
// step's Dims are the frame slots of the group's dimensions in analysis
// order (the order π, T and T⁻¹ are expressed in). Virtual windows
// keyed on the transformed subranges are dropped from the plan: the
// wavefront sweep interleaves original-coordinate planes, so a window
// sized for ascending-order execution would be overwritten while still
// live.
func (lw *lowerer) emitWavefront(an *hyperplane.Analysis, eqs []*sem.Equation) {
	n := len(an.Dims)
	hy := &Hyper{Pi: an.Pi, Window: an.Window}
	for _, d := range an.TransformedDeps {
		td := make([]int64, len(d.Vec))
		copy(td, d.Vec)
		hy.TDeps = append(hy.TDeps, td)
	}
	hy.Pred = predRanges(hy.TDeps, n, an.Window)
	for r := 0; r < n; r++ {
		hy.T = append(hy.T, an.T.Row(r))
		hy.TInv = append(hy.TInv, an.TInv.Row(r))
		b := -1
		if r > 0 {
			b = basisIndex(hy.T[r])
		}
		hy.Basis = append(hy.Basis, b)
	}
	slots := make([]int, n)
	transformed := make(map[*types.Subrange]bool, n)
	for i, d := range an.Dims {
		slots[i] = lw.slotOf(d)
		transformed[d] = true
	}
	self := len(lw.p.Steps)
	lw.p.Steps = append(lw.p.Steps, Step{Op: OpWavefront, Dims: slots, Hyper: hy})
	for _, eq := range eqs {
		lw.p.Steps = append(lw.p.Steps, Step{Op: OpEq, Eq: lw.kernel(eq)})
	}
	lw.p.Steps[self].End = len(lw.p.Steps)

	kept := lw.p.Virtual[:0:0]
	for _, v := range lw.p.Virtual {
		if !transformed[v.Subrange] {
			kept = append(kept, v)
		}
	}
	lw.p.Virtual = kept
}

// basisIndex returns j when row is the standard basis vector e_j, else -1.
func basisIndex(row []int64) int {
	j := -1
	for i, c := range row {
		switch c {
		case 0:
		case 1:
			if j >= 0 {
				return -1
			}
			j = i
		default:
			return -1
		}
	}
	return j
}

// dimNames joins the subrange names of a loop step's dimensions.
func (p *Program) dimNames(st *Step) string {
	names := make([]string, len(st.Dims))
	for i, s := range st.Dims {
		names[i] = p.Bounds[s].Subrange.Name
	}
	return strings.Join(names, ", ")
}

// String renders the plan as an indented listing — the artifact
// `psrun -explain` and Runner.Explain print:
//
//	plan Relaxation (5 steps, 3 slots)
//	  bounds: I = 0 .. M+1 [slot 0]; ...
//	  virtual: A dim 1 window 2 (K)
//	   0: doall I, J collapse(2) leaf
//	   1:   eq.1 -> A  [kernel 0]
//	   ...
func (p *Program) String() string {
	var sb strings.Builder
	variant := ""
	if p.Fused {
		variant = ", fused"
	}
	if p.HasWavefront() {
		variant += ", auto-hyperplane"
	}
	if p.HasPipeline() {
		variant += ", pipelined"
	}
	fmt.Fprintf(&sb, "plan %s (%d steps, %d slots%s)\n", p.Module, len(p.Steps), len(p.Bounds), variant)
	for i, b := range p.Bounds {
		fmt.Fprintf(&sb, "  bound %s = %s .. %s [slot %d]\n",
			b.Subrange.Name, ast.ExprString(b.Lo), ast.ExprString(b.Hi), i)
	}
	for _, v := range p.Virtual {
		fmt.Fprintf(&sb, "  virtual %s dim %d window %d (%s)\n",
			v.Sym.Name, v.Dim+1, v.Window, v.Subrange.Name)
	}
	depth := make([]int, 0, 4) // stack of End indices for indentation
	for i, st := range p.Steps {
		for len(depth) > 0 && i >= depth[len(depth)-1] {
			depth = depth[:len(depth)-1]
		}
		fmt.Fprintf(&sb, "%4d: %s", i, strings.Repeat("    ", len(depth)))
		switch st.Op {
		case OpEq:
			eq := p.Eqs[st.Eq]
			targets := make([]string, len(eq.Targets))
			for j, t := range eq.Targets {
				targets[j] = t.Sym.Name
			}
			fmt.Fprintf(&sb, "%s -> %s  [kernel %d]\n", eq.Label, strings.Join(targets, ", "), st.Eq)
		case OpDo:
			fmt.Fprintf(&sb, "do %s\n", p.dimNames(&st))
			depth = append(depth, st.End)
		case OpDoAll:
			fmt.Fprintf(&sb, "doall %s", p.dimNames(&st))
			if len(st.Dims) > 1 {
				fmt.Fprintf(&sb, " collapse(%d)", len(st.Dims))
			}
			if st.Leaf {
				sb.WriteString(" leaf")
			}
			sb.WriteByte('\n')
			depth = append(depth, st.End)
		case OpWavefront:
			names := make([]string, len(st.Dims))
			for j, s := range st.Dims {
				names[j] = p.Bounds[s].Subrange.Name
			}
			tdeps := make([]string, len(st.Hyper.TDeps))
			for j, d := range st.Hyper.TDeps {
				tdeps[j] = vecString(d)
			}
			fmt.Fprintf(&sb, "wavefront %s  t = %s, pi = %s, window %d, tdeps %s",
				strings.Join(names, ", "), st.Hyper.piString(names), vecString(st.Hyper.Pi), st.Hyper.Window,
				strings.Join(tdeps, ""))
			if nk := st.End - i - 1; nk > 1 {
				// A multi-equation group: the indented body lists the
				// kernels sharing this π, executed in order per point.
				fmt.Fprintf(&sb, ", kernels %d", nk)
			}
			sb.WriteByte('\n')
			depth = append(depth, st.End)
		case OpPipeline:
			pp := st.Pipe
			npar := 0
			for _, sg := range pp.Stages {
				if sg.Parallel {
					npar++
				}
			}
			fmt.Fprintf(&sb, "pipeline %s  stages %d (%d seq + %d par), window %d\n",
				p.Bounds[pp.Stream].Subrange.Name, len(pp.Stages), len(pp.Stages)-npar, npar, pp.Window)
			// The stage table: which body steps each stage owns and
			// which upstream stages (with backward token distance) gate
			// its tokens.
			pad := strings.Repeat("    ", len(depth))
			for k, sg := range pp.Stages {
				kind := "seq"
				if sg.Parallel {
					kind = "par"
				}
				fmt.Fprintf(&sb, "      %sstage %d: %s steps %d..%d", pad, k, kind, sg.First, sg.End-1)
				for di, dep := range sg.Deps {
					if di == 0 {
						sb.WriteString("  after")
					}
					fmt.Fprintf(&sb, " s%d+%d", dep.Stage, dep.Dist)
				}
				sb.WriteByte('\n')
			}
			depth = append(depth, st.End)
		}
	}
	return sb.String()
}

// Compact renders the loop program on one line in the flowchart's
// Figure 6 style, with collapsed DOALL nests joined by "×":
// "DOALL I×J (eq.1); DO K (DOALL I×J (eq.3)); ...".
func (p *Program) Compact() string {
	s, _ := p.compactRange(0, len(p.Steps))
	return s
}

func (p *Program) compactRange(lo, hi int) (string, int) {
	var parts []string
	i := lo
	for i < hi {
		st := &p.Steps[i]
		switch st.Op {
		case OpEq:
			parts = append(parts, p.Eqs[st.Eq].Label)
			i++
		case OpPipeline:
			// Stage bodies joined by "|" — the decoupled stages of one
			// PS-DSWP step.
			stages := make([]string, len(st.Pipe.Stages))
			for k, sg := range st.Pipe.Stages {
				stages[k], _ = p.compactRange(sg.First, sg.End)
			}
			parts = append(parts, fmt.Sprintf("PIPELINE[%s] (%s)",
				p.Bounds[st.Pipe.Stream].Subrange.Name, strings.Join(stages, " | ")))
			i = st.End
		default:
			kw := "DO"
			switch st.Op {
			case OpDoAll:
				kw = "DOALL"
			case OpWavefront:
				kw = fmt.Sprintf("WAVEFRONT[pi=%s]", vecString(st.Hyper.Pi))
			}
			names := make([]string, len(st.Dims))
			for j, s := range st.Dims {
				names[j] = p.Bounds[s].Subrange.Name
			}
			body, _ := p.compactRange(i+1, st.End)
			parts = append(parts, fmt.Sprintf("%s %s (%s)", kw, strings.Join(names, "×"), body))
			i = st.End
		}
	}
	return strings.Join(parts, "; "), i
}
