// Package plan defines the flat loop-program IR both execution backends
// consume — the keystone between the paper's scheduler (internal/core)
// and the executors (internal/interp, internal/cgen).
//
// # Contract
//
// A plan is lowered exactly once per (module, Options) pair from the
// core scheduler's flowchart. Lowering is the single point where
// flowchart descriptors are interpreted; backends must consume the
// returned Program and never re-analyze core.Flowchart at run time.
// Lowering resolves loops to frame slots (Bounds order), collapses
// directly nested DOALL loops into one multi-dimensional parallel step,
// applies §5 loop fusion (Options.Fuse) before lowering, assigns every
// equation a kernel index, and — under Options.Hyperplane — replaces
// every eligible fully sequential nest with an OpWavefront step via
// internal/hyperplane.
//
// A wavefront step covers a singleton recurrence or a multi-equation
// group (a strongly connected component scheduled into one body, or a
// §5-fused group): the step's body is one OpEq step per equation in
// scheduled order, and its Hyper block carries one π/T/T⁻¹ solved for
// the union of the group's dependence vectors.
//
// # Plan-variant matrix
//
// The interpreter compiles all four [fuse][hyperplane] variants up
// front; variants that lower identically share one compiled plan. Every
// variant of a module shares the same Bounds order (and therefore the
// same frame-slot assignment), and equation kernels are compiled once
// and shared across variants — which is why all variants are bitwise
// identical: they run the same kernels at the same points in
// dependence-respecting orders.
//
// # Invariants
//
//   - Steps is a pre-order flat array; a loop step's body is
//     Steps[i+1:End], so executors iterate with index skips and no
//     pointer chasing.
//   - An OpWavefront body consists of OpEq steps only, in group order;
//     executors may dispatch the kernels directly (the leaf fast path).
//   - Hyper.Pi is the least time vector for the dependence union;
//     Hyper.T is unimodular with Pi as row 0 and TInv its exact integer
//     inverse.
//   - Hyper.TDeps lists T·d for every union dependence (first component
//     ≥ 1); Hyper.Window is 1 + the largest first component.
//   - Hyper.Pred folds TDeps into per-coordinate predecessor-offset
//     ranges: Pred[r-1][dt-1] bounds the coordinate-r shift of the
//     dependences reaching dt hyperplanes back, the exact tile-wait
//     metadata of the doacross executor (internal/sched) — a point with
//     plane coordinate c on plane t reads [c-Hi, c-Lo] on plane t-dt.
//   - Virtual windows keyed on transformed subranges are dropped from
//     wavefront variants: the sweep interleaves original-coordinate
//     planes, so a window sized for ascending order would be
//     overwritten while still live.
package plan
