// Package sem implements semantic analysis for PS programs: symbol
// resolution, type checking of declarations and equations, and the
// extraction of the per-equation iteration dimensions (index variables)
// that the scheduler reasons about.
//
// PS identifies loop index variables with subrange *types*: the equation
// A[K,I,J] = ... iterates the declared subranges K, I and J (paper §2).
// An equation's dimension list is its explicit left-hand-side index
// variables, in order of appearance, followed by the implicit dimensions of
// an array-valued assignment (A[1] = InitialA copies a whole I×J plane and
// therefore has implicit dimensions I and J — paper Figure 5, component 4).
package sem

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	ParamSym SymKind = iota
	ResultSym
	LocalSym
	TypeSym
	EnumConstSym
)

// String names the symbol kind.
func (k SymKind) String() string {
	switch k {
	case ParamSym:
		return "parameter"
	case ResultSym:
		return "result"
	case LocalSym:
		return "local"
	case TypeSym:
		return "type"
	case EnumConstSym:
		return "enum constant"
	}
	return "symbol"
}

// Symbol is a named entity in a module scope.
type Symbol struct {
	Name  string
	Kind  SymKind
	Type  types.Type // for TypeSym, the denoted type
	Pos   source.Pos
	Index int // ordinal among symbols of the same kind
	// BoundDeps lists the scalar symbols appearing in this symbol's array
	// dimension bounds (e.g. M for InitialA: array[I,J] with I = 0..M+1);
	// the dependency graph draws bound edges from them (paper §3.1).
	BoundDeps []*Symbol
}

// IsData reports whether the symbol denotes a runtime value.
func (s *Symbol) IsData() bool {
	return s.Kind == ParamSym || s.Kind == ResultSym || s.Kind == LocalSym
}

// Program is a checked PS compilation unit.
type Program struct {
	Modules []*Module
	byName  map[string]*Module
}

// Module looks up a checked module by name (case-insensitive).
func (p *Program) Module(name string) *Module {
	return p.byName[strings.ToLower(name)]
}

// Module is a checked PS module.
type Module struct {
	Name    string
	AST     *ast.Module
	Params  []*Symbol
	Results []*Symbol
	Locals  []*Symbol
	// Subranges lists every subrange type in declaration order, including
	// those synthesized for anonymous array dimensions.
	Subranges []*Subrange
	Eqs       []*Equation

	Prog      *Program
	scope     map[string]*Symbol
	exprTypes map[ast.Expr]types.Type
	subByType map[*types.Subrange]*Subrange
}

// Subrange pairs a subrange type with its defining symbol information.
type Subrange struct {
	Type *types.Subrange
	Pos  source.Pos
	// BoundDeps are the scalar symbols referenced by the bounds.
	BoundDeps []*Symbol
}

// Equation is a checked defining equation.
type Equation struct {
	Index   int    // position in the define section
	Label   string // display label, e.g. "eq.3"
	AST     *ast.Equation
	Targets []*Target
	// Dims is the equation's iteration space: explicit LHS index variables
	// in order of first appearance, then implicit dimensions.
	Dims        []*types.Subrange
	NumExplicit int
	RHS         ast.Expr
	// MultiCall is set when the RHS is a single call to a module with
	// multiple results, matched positionally against Targets.
	MultiCall *ast.Call
	// WholeCall is set when the RHS is a module call: the equation
	// executes once, assigning whole result values, rather than
	// element-wise over implicit dimensions.
	WholeCall *ast.Call
}

// String renders the equation's source form.
func (e *Equation) String() string { return ast.EquationString(e.AST) }

// HasDim reports whether v is one of the equation's iteration dimensions.
func (e *Equation) HasDim(v *types.Subrange) bool {
	for _, d := range e.Dims {
		if d == v {
			return true
		}
	}
	return false
}

// DimPos returns the position of v in the equation's dimension list, or -1.
func (e *Equation) DimPos(v *types.Subrange) int {
	for i, d := range e.Dims {
		if d == v {
			return i
		}
	}
	return -1
}

// Target is one left-hand-side item of an equation.
type Target struct {
	Sym  *Symbol
	Subs []ast.Expr // explicit subscript expressions
	// Implicit lists the trailing array dimensions covered implicitly when
	// the assigned value is array-typed.
	Implicit []*types.Subrange
}

// Rank returns the total number of dimensions the target covers
// (explicit subscripts plus implicit trailing dimensions).
func (t *Target) Rank() int { return len(t.Subs) + len(t.Implicit) }

// TypeOf returns the checked type of an expression, or nil when unknown.
func (m *Module) TypeOf(e ast.Expr) types.Type { return m.exprTypes[e] }

// Lookup resolves a name in the module scope.
func (m *Module) Lookup(name string) *Symbol { return m.scope[name] }

// SubrangeInfo returns bound-dependency info for a subrange type.
func (m *Module) SubrangeInfo(s *types.Subrange) *Subrange { return m.subByType[s] }

// IndexVar resolves name to a subrange type usable as an index variable,
// or nil.
func (m *Module) IndexVar(name string) *types.Subrange {
	sym := m.scope[name]
	if sym == nil || sym.Kind != TypeSym {
		return nil
	}
	if sr, ok := sym.Type.(*types.Subrange); ok {
		return sr
	}
	return nil
}

// DataSymbols returns params, results and locals in declaration order.
func (m *Module) DataSymbols() []*Symbol {
	out := make([]*Symbol, 0, len(m.Params)+len(m.Results)+len(m.Locals))
	out = append(out, m.Params...)
	out = append(out, m.Results...)
	out = append(out, m.Locals...)
	return out
}

// checker carries state for checking one module.
type checker struct {
	prog    *Program
	mod     *Module
	errs    *source.ErrorList
	anonSeq int
	// deferredBounds holds bound identifiers whose symbols were untyped
	// when the bound was checked; they are re-validated once parameter
	// types resolve.
	deferredBounds []*ast.Ident
}

// Check type-checks a parsed program.
func Check(prog *ast.Program) (*Program, error) {
	return CheckNamed("", prog)
}

// CheckNamed is Check with a file name used in diagnostics.
func CheckNamed(file string, prog *ast.Program) (*Program, error) {
	errs := source.NewErrorList(file)
	p := &Program{byName: make(map[string]*Module)}
	for _, am := range prog.Modules {
		key := strings.ToLower(am.Name.Name)
		if p.byName[key] != nil {
			errs.Addf(am.Name.Pos(), "duplicate module %s", am.Name.Name)
			continue
		}
		m := &Module{
			Name:      am.Name.Name,
			AST:       am,
			Prog:      p,
			scope:     make(map[string]*Symbol),
			exprTypes: make(map[ast.Expr]types.Type),
			subByType: make(map[*types.Subrange]*Subrange),
		}
		p.Modules = append(p.Modules, m)
		p.byName[key] = m
	}
	// Two phases: all module signatures (parameters, types, results,
	// locals) resolve before any define section is checked, so module
	// calls can validate against their callee's declared interface
	// regardless of declaration order.
	checkers := make([]*checker, len(p.Modules))
	for i, m := range p.Modules {
		checkers[i] = &checker{prog: p, mod: m, errs: errs}
		checkers[i].checkSignature()
	}
	for _, c := range checkers {
		c.checkBody()
	}
	if err := errs.Err(); err != nil {
		return nil, err
	}
	if err := checkCallCycles(p, errs); err != nil {
		return nil, err
	}
	return p, nil
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Addf(pos, format, args...)
}

func (c *checker) declare(sym *Symbol) {
	if old := c.mod.scope[sym.Name]; old != nil {
		c.errorf(sym.Pos, "%s redeclares %s (previous declaration at %s)", sym.Name, old.Kind, old.Pos)
		return
	}
	c.mod.scope[sym.Name] = sym
}

// checkSignature resolves the module's interface and declarations.
func (c *checker) checkSignature() {
	m := c.mod
	am := m.AST

	// Parameters first: subrange bounds may reference them. Builtin-named
	// scalar types (M: int) resolve immediately so bound expressions can
	// be validated during the type section; array parameter types resolve
	// after the type section, since they may reference declared subranges.
	for _, p := range am.Params {
		var early types.Type
		if tn, ok := p.Type.(*ast.TypeName); ok {
			switch strings.ToLower(tn.Name.Name) {
			case "int", "integer":
				early = types.Int
			case "real":
				early = types.Real
			case "bool", "boolean":
				early = types.Bool
			case "char":
				early = types.Char
			case "string":
				early = types.String
			}
		}
		for _, n := range p.Names {
			sym := &Symbol{Name: n.Name, Kind: ParamSym, Type: early, Pos: n.Pos(), Index: len(m.Params)}
			m.Params = append(m.Params, sym)
			c.declare(sym)
		}
	}
	// Type declarations next (they may use parameters in bounds).
	for _, d := range am.Types {
		c.checkTypeDecl(d)
	}
	// Parameter types may reference declared subranges, so resolve them
	// after the type section.
	i := 0
	for _, p := range am.Params {
		t := c.resolveType(p.Type)
		for range p.Names {
			m.Params[i].Type = t
			c.addBoundDeps(m.Params[i])
			i++
		}
	}
	// Bounds referencing parameters that were untyped during the type
	// section are now checkable.
	for _, n := range c.deferredBounds {
		if sym := m.scope[n.Name]; sym != nil && !types.IsInteger(sym.Type) {
			c.errorf(n.Pos(), "subrange bound must use integer values; %s has type %s", n.Name, sym.Type)
		}
	}
	for _, p := range am.Results {
		t := c.resolveType(p.Type)
		for _, n := range p.Names {
			sym := &Symbol{Name: n.Name, Kind: ResultSym, Type: t, Pos: n.Pos(), Index: len(m.Results)}
			m.Results = append(m.Results, sym)
			c.declare(sym)
			c.addBoundDeps(sym)
		}
	}
	for _, d := range am.Vars {
		t := c.resolveType(d.Type)
		for _, n := range d.Names {
			sym := &Symbol{Name: n.Name, Kind: LocalSym, Type: t, Pos: n.Pos(), Index: len(m.Locals)}
			m.Locals = append(m.Locals, sym)
			c.declare(sym)
			c.addBoundDeps(sym)
		}
	}
	if len(m.Results) == 0 {
		c.errorf(am.Name.Pos(), "module %s declares no results", m.Name)
	}
}

// checkBody checks the define section; every module signature in the
// program has been resolved by this point.
func (c *checker) checkBody() {
	m := c.mod
	am := m.AST
	defined := make(map[*Symbol]int)
	for i, aeq := range am.Eqs {
		eq := c.checkEquation(i, aeq)
		if eq == nil {
			continue
		}
		m.Eqs = append(m.Eqs, eq)
		for _, t := range eq.Targets {
			if t.Sym != nil {
				defined[t.Sym]++
				if len(t.Subs) == 0 && defined[t.Sym] > 1 {
					c.errorf(aeq.Pos(), "%s is fully defined by more than one equation", t.Sym.Name)
				}
			}
		}
	}
	for _, sym := range append(append([]*Symbol{}, m.Results...), m.Locals...) {
		if defined[sym] == 0 {
			c.errorf(sym.Pos, "%s %s has no defining equation", sym.Kind, sym.Name)
		}
	}
}

// addBoundDeps records the scalar symbols used in sym's array bounds.
func (c *checker) addBoundDeps(sym *Symbol) {
	arr, ok := sym.Type.(*types.Array)
	if !ok {
		return
	}
	seen := make(map[*Symbol]bool)
	for _, d := range arr.Dims {
		info := c.mod.subByType[d]
		if info == nil {
			continue
		}
		for _, dep := range info.BoundDeps {
			if !seen[dep] {
				seen[dep] = true
				sym.BoundDeps = append(sym.BoundDeps, dep)
			}
		}
	}
}

func (c *checker) checkTypeDecl(d *ast.TypeDecl) {
	// Subrange declarations create one distinct subrange type per name:
	// `I,J = 0 .. M+1` declares two index domains, not one.
	if sr, ok := d.Type.(*ast.SubrangeType); ok {
		for _, n := range d.Names {
			t := c.newSubrange(n.Name, sr, n.Pos(), false)
			sym := &Symbol{Name: n.Name, Kind: TypeSym, Type: t, Pos: n.Pos()}
			c.declare(sym)
		}
		return
	}
	t := c.resolveType(d.Type)
	if e, ok := t.(*types.Enum); ok && len(d.Names) > 0 {
		e.Name = d.Names[0].Name
	}
	for _, n := range d.Names {
		sym := &Symbol{Name: n.Name, Kind: TypeSym, Type: t, Pos: n.Pos()}
		c.declare(sym)
	}
}

// newSubrange builds a subrange type, validating and recording its bound
// dependencies.
func (c *checker) newSubrange(name string, sr *ast.SubrangeType, pos source.Pos, anon bool) *types.Subrange {
	t := &types.Subrange{Name: name, Lo: sr.Lo, Hi: sr.Hi, Anonymous: anon}
	info := &Subrange{Type: t, Pos: pos}
	for _, e := range []ast.Expr{sr.Lo, sr.Hi} {
		c.checkBoundExpr(e, info)
	}
	c.mod.Subranges = append(c.mod.Subranges, info)
	c.mod.subByType[t] = info
	return t
}

// checkBoundExpr validates a subrange bound: an integer expression over
// literals and scalar parameters.
func (c *checker) checkBoundExpr(e ast.Expr, info *Subrange) {
	seen := make(map[*Symbol]bool)
	for _, d := range info.BoundDeps {
		seen[d] = true
	}
	valid := true
	ast.Inspect(e, func(x ast.Expr) bool {
		switch n := x.(type) {
		case *ast.Ident:
			sym := c.mod.scope[n.Name]
			if sym == nil {
				c.errorf(n.Pos(), "undefined name %s in subrange bound", n.Name)
				valid = false
				return false
			}
			if !sym.IsData() || (sym.Type != nil && !types.IsInteger(sym.Type)) {
				c.errorf(n.Pos(), "subrange bound must use integer values; %s is a %s", n.Name, sym.Kind)
				valid = false
				return false
			}
			if sym.Type == nil {
				c.deferredBounds = append(c.deferredBounds, n)
			}
			if !seen[sym] {
				seen[sym] = true
				info.BoundDeps = append(info.BoundDeps, sym)
			}
		case *ast.RealLit, *ast.StringLit, *ast.CharLit, *ast.BoolLit, *ast.IfExpr, *ast.Call, *ast.Index, *ast.Field:
			c.errorf(x.Pos(), "invalid subrange bound expression")
			valid = false
			return false
		}
		return true
	})
	_ = valid
}

func (c *checker) resolveType(te ast.TypeExpr) types.Type {
	switch t := te.(type) {
	case *ast.TypeName:
		switch strings.ToLower(t.Name.Name) {
		case "int", "integer":
			return types.Int
		case "real":
			return types.Real
		case "bool", "boolean":
			return types.Bool
		case "char":
			return types.Char
		case "string":
			return types.String
		}
		sym := c.mod.scope[t.Name.Name]
		if sym == nil || sym.Kind != TypeSym {
			c.errorf(t.Pos(), "undefined type %s", t.Name.Name)
			return types.Int
		}
		return sym.Type
	case *ast.SubrangeType:
		c.anonSeq++
		return c.newSubrange(fmt.Sprintf("_r%d", c.anonSeq), t, t.Pos(), true)
	case *ast.ArrayType:
		var dims []*types.Subrange
		for _, d := range t.Dims {
			dims = append(dims, c.resolveDim(d))
		}
		elem := c.resolveType(t.Elem)
		// Flatten nested arrays: array [K] of array [I,J] of real is a
		// three-dimensional node (paper §3.1).
		if inner, ok := elem.(*types.Array); ok {
			dims = append(dims, inner.Dims...)
			elem = inner.Elem
		}
		if elem.Kind() == types.ArrayKind {
			c.errorf(t.Pos(), "internal: unflattened nested array")
		}
		return &types.Array{Dims: dims, Elem: elem}
	case *ast.RecordType:
		rec := &types.Record{}
		seen := make(map[string]bool)
		for _, f := range t.Fields {
			ft := c.resolveType(f.Type)
			if ft.Kind() == types.ArrayKind {
				c.errorf(f.Type.Pos(), "array-typed record fields are not supported")
			}
			for _, n := range f.Names {
				if seen[n.Name] {
					c.errorf(n.Pos(), "duplicate record field %s", n.Name)
					continue
				}
				seen[n.Name] = true
				rec.Fields = append(rec.Fields, &types.RecField{Name: n.Name, Type: ft})
			}
		}
		return rec
	case *ast.EnumType:
		en := &types.Enum{}
		for _, n := range t.Names {
			en.Consts = append(en.Consts, n.Name)
		}
		for i, n := range t.Names {
			sym := &Symbol{Name: n.Name, Kind: EnumConstSym, Type: en, Pos: n.Pos(), Index: i}
			c.declare(sym)
		}
		return en
	}
	c.errorf(te.Pos(), "invalid type expression")
	return types.Int
}

// resolveDim resolves one array dimension to a subrange.
func (c *checker) resolveDim(te ast.TypeExpr) *types.Subrange {
	t := c.resolveType(te)
	if sr, ok := t.(*types.Subrange); ok {
		return sr
	}
	c.errorf(te.Pos(), "array dimension must be a subrange, not %s", t)
	zero := &ast.IntLit{Value: 0, Lit: "0"}
	return &types.Subrange{Name: "_err", Lo: zero, Hi: zero, Anonymous: true}
}
