package sem

import (
	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// EvalConstInt evaluates an integer expression built from literals only
// (constant folding for subscript offsets such as K-(1+1)). It reports
// false for anything symbolic.
func EvalConstInt(e ast.Expr) (int64, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Unary:
		v, ok := EvalConstInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.MINUS:
			return -v, true
		case token.PLUS:
			return v, true
		}
	case *ast.Binary:
		a, ok1 := EvalConstInt(x.X)
		b, ok2 := EvalConstInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.PLUS:
			return a + b, true
		case token.MINUS:
			return a - b, true
		case token.STAR:
			return a * b, true
		case token.DIV:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.MOD:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}
	}
	return 0, false
}

// Affine is the decomposition of an integer expression into a linear
// combination of index variables plus a constant:
//
//	expr = Σ Coeffs[v]·v + Const        (all coefficients integer literals)
//
// Symbolic reports that the expression also contains non-index scalar
// names (module parameters), in which case Const is meaningless but the
// variable structure is still valid for classification purposes.
type Affine struct {
	Coeffs   map[*types.Subrange]int64
	Const    int64
	Symbolic bool
}

// SingleVar reports whether the form is v + c for exactly one index
// variable with coefficient 1 and a literal constant, returning them.
func (a *Affine) SingleVar() (*types.Subrange, int64, bool) {
	if a == nil || a.Symbolic || len(a.Coeffs) != 1 {
		return nil, 0, false
	}
	for v, coef := range a.Coeffs {
		if coef == 1 {
			return v, a.Const, true
		}
	}
	return nil, 0, false
}

// IsConst reports whether the expression has no index variables at all
// (it may still be symbolic in module parameters).
func (a *Affine) IsConst() bool {
	if a == nil {
		return false
	}
	for _, coef := range a.Coeffs {
		if coef != 0 {
			return false
		}
	}
	return true
}

// AnalyzeAffine decomposes e as an affine combination of the module's
// index variables. It returns nil when the expression is not affine
// (conditionals, multiplication of two variable terms, calls, subscripts).
func (m *Module) AnalyzeAffine(e ast.Expr) *Affine {
	a := &Affine{Coeffs: make(map[*types.Subrange]int64)}
	if !m.affine(e, 1, a) {
		return nil
	}
	return a
}

func (m *Module) affine(e ast.Expr, scale int64, a *Affine) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		a.Const += scale * x.Value
		return true
	case *ast.Ident:
		if iv := m.IndexVar(x.Name); iv != nil {
			a.Coeffs[iv] += scale
			return true
		}
		sym := m.scope[x.Name]
		if sym != nil && sym.IsData() && types.IsInteger(sym.Type) {
			a.Symbolic = true
			return true
		}
		return false
	case *ast.Unary:
		switch x.Op {
		case token.MINUS:
			return m.affine(x.X, -scale, a)
		case token.PLUS:
			return m.affine(x.X, scale, a)
		}
		return false
	case *ast.Binary:
		switch x.Op {
		case token.PLUS:
			return m.affine(x.X, scale, a) && m.affine(x.Y, scale, a)
		case token.MINUS:
			return m.affine(x.X, scale, a) && m.affine(x.Y, -scale, a)
		case token.STAR:
			// Allow literal·affine and affine·literal.
			if k, ok := EvalConstInt(x.X); ok {
				return m.affine(x.Y, scale*k, a)
			}
			if k, ok := EvalConstInt(x.Y); ok {
				return m.affine(x.X, scale*k, a)
			}
			return false
		}
		return false
	}
	return false
}
