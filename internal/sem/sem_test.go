package sem_test

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
	"repro/internal/types"
)

func check(t *testing.T, src string) (*sem.Program, error) {
	t.Helper()
	prog, err := parser.ParseProgram("test.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sem.Check(prog)
}

func mustCheck(t *testing.T, src string) *sem.Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Errorf("expected error containing %q, got none", fragment)
		return
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not contain %q", err, fragment)
	}
}

// TestRelaxationSymbols verifies the checked structure of Figure 1.
func TestRelaxationSymbols(t *testing.T) {
	p := mustCheck(t, psrc.Relaxation)
	m := p.Module("Relaxation")
	if m == nil {
		t.Fatal("module lookup failed")
	}
	if len(m.Params) != 3 || len(m.Results) != 1 || len(m.Locals) != 1 {
		t.Fatalf("params/results/locals = %d/%d/%d", len(m.Params), len(m.Results), len(m.Locals))
	}
	a := m.Lookup("A")
	arr, ok := a.Type.(*types.Array)
	if !ok {
		t.Fatalf("A has type %s", a.Type)
	}
	// Nested array declaration flattened to three dimensions (§3.1).
	if len(arr.Dims) != 3 {
		t.Errorf("A has %d dimensions, want 3", len(arr.Dims))
	}
	// I and J are distinct subranges despite a shared declaration.
	if m.IndexVar("I") == m.IndexVar("J") {
		t.Error("I and J resolved to the same subrange identity")
	}
	// Bound dependencies: A depends on maxK (dim 1) and M (dims 2, 3).
	var deps []string
	for _, d := range a.BoundDeps {
		deps = append(deps, d.Name)
	}
	if len(deps) != 2 || deps[0] != "maxK" || deps[1] != "M" {
		t.Errorf("A bound deps %v, want [maxK M]", deps)
	}
}

// TestEquationDims verifies explicit and implicit dimension derivation.
func TestEquationDims(t *testing.T) {
	p := mustCheck(t, psrc.Relaxation)
	m := p.Module("Relaxation")
	dims := func(label string) []string {
		for _, eq := range m.Eqs {
			if eq.Label == label {
				var out []string
				for _, d := range eq.Dims {
					out = append(out, d.Name)
				}
				return out
			}
		}
		return nil
	}
	if got := dims("eq.1"); strings.Join(got, ",") != "I,J" {
		t.Errorf("eq.1 dims %v, want [I J] (implicit plane copy)", got)
	}
	if got := dims("eq.2"); strings.Join(got, ",") != "I,J" {
		t.Errorf("eq.2 dims %v, want [I J]", got)
	}
	if got := dims("eq.3"); strings.Join(got, ",") != "K,I,J" {
		t.Errorf("eq.3 dims %v, want [K I J]", got)
	}
	// eq.1's explicit count is zero: both dims are implicit.
	for _, eq := range m.Eqs {
		if eq.Label == "eq.1" && eq.NumExplicit != 0 {
			t.Errorf("eq.1 NumExplicit = %d, want 0", eq.NumExplicit)
		}
		if eq.Label == "eq.3" && eq.NumExplicit != 3 {
			t.Errorf("eq.3 NumExplicit = %d, want 3", eq.NumExplicit)
		}
	}
}

// TestScopeErrors covers undefined and misused names.
func TestScopeErrors(t *testing.T) {
	wantError(t, `
M1: module (x: int): [y: int];
define y = nosuch; end M1;`, "undefined name nosuch")

	wantError(t, `
M1: module (x: int): [y: int];
define x = 1; y = x; end M1;`, "cannot be defined")

	wantError(t, `
M1: module (x: int): [y: int];
define y = x; y = x + 1; end M1;`, "more than one equation")

	wantError(t, `
M1: module (x: int): [y: int; z: int];
define y = x; end M1;`, "no defining equation")

	wantError(t, `
M1: module (x: int; x: real): [y: int];
define y = 1; end M1;`, "redeclares")
}

// TestTypeErrors covers operator and assignment type checking.
func TestTypeErrors(t *testing.T) {
	wantError(t, `
M1: module (b: bool): [y: int];
define y = b + 1; end M1;`, "numeric operands")

	wantError(t, `
M1: module (x: real): [y: int];
define y = x; end M1;`, "does not match")

	wantError(t, `
M1: module (x: real): [y: bool];
define y = if x then true else false; end M1;`, "condition must be bool")

	wantError(t, `
M1: module (x: real): [y: real];
define y = if x > 0.0 then 1.0 else false; end M1;`, "mismatched types")

	wantError(t, `
M1: module (x: real): [y: real];
define y = x div 2; end M1;`, "integer operands")

	wantError(t, `
M1: module (x: real): [y: real];
define y = x[1]; end M1;`, "cannot subscript")
}

// TestIndexVarRules covers the LHS-introduces-dimension rule.
func TestIndexVarRules(t *testing.T) {
	// Index variable used on the RHS without appearing on the LHS.
	wantError(t, `
M1: module (N: int): [y: real];
type I = 1 .. N;
define y = float(I); end M1;`, "not a dimension of this equation")

	// Subscripting with a dimension is fine.
	mustCheck(t, `
M1: module (N: int): [y: array [I] of real];
type I = 1 .. N;
define y[I] = float(I); end M1;`)
}

// TestSubscriptArity covers dimension count validation.
func TestSubscriptArity(t *testing.T) {
	wantError(t, `
M1: module (A: array[I,J] of real; N: int): [y: real];
type I = 1 .. N; J = 1 .. N;
define y = A[1,2,3]; end M1;`, "2 dimensions but 3 subscripts")

	wantError(t, `
M1: module (N: int): [y: array [I] of real];
type I = 1 .. N;
define y[1,2] = 1.0; end M1;`, "1 dimensions but 2 subscripts")
}

// TestBuiltins checks builtin signatures.
func TestBuiltins(t *testing.T) {
	mustCheck(t, `
M1: module (x: real; n: int): [y: real; k: int];
define
    y = sqrt(abs(x)) + sin(x) * cos(x) + exp(ln(abs(x) + 1.0)) + pow(x, 2.0)
        + min(x, 1.0) + max(x, float(n));
    k = trunc(x) + round(x) + abs(n) + min(n, 3) + max(n, ord(true));
end M1;`)

	wantError(t, `
M1: module (x: real): [y: real];
define y = sqrt(x, x); end M1;`, "requires 1 argument")

	wantError(t, `
M1: module (x: real): [y: real];
define y = float(x); end M1;`, "integer argument")
}

// TestModuleCalls covers cross-module invocation checking.
func TestModuleCalls(t *testing.T) {
	mustCheck(t, psrc.Pipeline)

	wantError(t, `
A1: module (x: real): [y: real];
define y = B1(x, x); end A1;
B1: module (x: real): [y: real];
define y = x; end B1;`, "takes 1 parameter")

	wantError(t, `
A1: module (x: real): [y: real];
define y = A1(x); end A1;`, "cannot invoke itself")

	// Mutual recursion between modules is a cycle.
	wantError(t, `
A1: module (x: real): [y: real];
define y = B1(x); end A1;
B1: module (x: real): [y: real];
define y = A1(x); end B1;`, "cycle")
}

// TestMultiTargetChecking covers multi-value equations.
func TestMultiTargetChecking(t *testing.T) {
	mustCheck(t, `
Main: module (x: real): [a: real; b: real];
define a, b = Split(x); end Main;
Split: module (x: real): [p: real; q: real];
define p = x + 1.0; q = x - 1.0; end Split;`)

	wantError(t, `
Main: module (x: real): [a: real; b: real];
define a, b = x; end Main;`, "requires a module call")
}

// TestEnumsAndRecords covers the remaining declared type surface.
func TestEnumsAndRecords(t *testing.T) {
	p := mustCheck(t, `
M1: module (c: Color; pt: Point): [bright: bool; mag: real];
type
    Color = (red, green, blue);
    Point = record x, y: real end;
define
    bright = (c = red) or (c = blue);
    mag = sqrt(pt.x * pt.x + pt.y * pt.y);
end M1;`)
	m := p.Module("M1")
	if m.Lookup("red") == nil || m.Lookup("red").Kind != sem.EnumConstSym {
		t.Error("enum constant red not in scope")
	}

	wantError(t, `
M1: module (pt: Point): [y: real];
type Point = record x: real end;
define y = pt.z; end M1;`, "no field z")
}

// TestAffineAnalysis checks the subscript decomposition helper.
func TestAffineAnalysis(t *testing.T) {
	p := mustCheck(t, psrc.RelaxationGS)
	m := p.Module("Relaxation")
	k := m.IndexVar("K")

	parse := func(s string) *sem.Affine {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return m.AnalyzeAffine(e)
	}
	if a := parse("K"); a == nil {
		t.Fatal("K not affine")
	} else if v, c, ok := a.SingleVar(); !ok || v != k || c != 0 {
		t.Errorf("K decomposed to (%v, %d, %v)", v, c, ok)
	}
	if a := parse("K - 2"); a == nil {
		t.Fatal("K-2 not affine")
	} else if _, c, ok := a.SingleVar(); !ok || c != -2 {
		t.Errorf("K-2 constant %d, want -2", c)
	}
	if a := parse("2*K + I + J - 1"); a == nil {
		t.Error("2K+I+J-1 not affine")
	} else if _, _, ok := a.SingleVar(); ok {
		t.Error("multi-variable form reported as single variable")
	}
	if a := parse("K * I"); a != nil {
		t.Error("K*I incorrectly accepted as affine")
	}
	if a := parse("maxK"); a == nil || !a.IsConst() || !a.Symbolic {
		t.Error("maxK should be a symbolic constant")
	}
}

// TestEvalConstInt checks literal folding.
func TestEvalConstInt(t *testing.T) {
	cases := map[string]int64{
		"1 + 2":       3,
		"2 * (3 + 4)": 14,
		"-(5 - 2)":    -3,
		"7 div 2":     3,
		"7 mod 2":     1,
		"1 + 2 * 3":   7,
	}
	for src, want := range cases {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got, ok := sem.EvalConstInt(e)
		if !ok || got != want {
			t.Errorf("%q folded to (%d, %v), want %d", src, got, ok, want)
		}
	}
	e, _ := parser.ParseExpr("x + 1")
	if _, ok := sem.EvalConstInt(e); ok {
		t.Error("symbolic expression folded as constant")
	}
}

// TestWholeCallNoImplicitDims verifies that array-returning module calls
// execute as whole values, not element-wise.
func TestWholeCallNoImplicitDims(t *testing.T) {
	p := mustCheck(t, psrc.Pipeline)
	m := p.Module("Pipeline")
	for _, eq := range m.Eqs {
		if eq.WholeCall == nil {
			t.Errorf("%s: expected WholeCall", eq.Label)
		}
		if len(eq.Dims) != 0 {
			t.Errorf("%s has dims %v, want none", eq.Label, eq.Dims)
		}
	}
}
