package sem

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
)

// checkEquation validates one defining equation and derives its iteration
// dimensions.
func (c *checker) checkEquation(index int, aeq *ast.Equation) *Equation {
	eq := &Equation{Index: index, AST: aeq, RHS: aeq.RHS, Label: aeq.Label}
	if eq.Label == "" {
		eq.Label = fmt.Sprintf("eq.%d", index+1)
	}

	// Resolve targets and collect explicit index variables in order of
	// first appearance across the LHS subscripts.
	ok := true
	for _, at := range aeq.Targets {
		t := c.checkTarget(eq, at)
		if t == nil {
			ok = false
			continue
		}
		eq.Targets = append(eq.Targets, t)
	}
	if !ok || len(eq.Targets) == 0 {
		return nil
	}
	eq.NumExplicit = len(eq.Dims)

	// A right hand side that is a module call produces its results as
	// whole values: the equation executes once rather than element-wise,
	// so no implicit dimensions are derived.
	if call, isCall := ast.Unparen(aeq.RHS).(*ast.Call); isCall {
		if callee := c.prog.Module(call.Fun.Name); callee != nil {
			eq.WholeCall = call
		}
	}

	// Implicit dimensions: when the first target's assigned value is
	// array-typed, the remaining declared dimensions become implicit
	// iteration variables (A[1] = InitialA iterates I and J).
	first := eq.Targets[0]
	if arr, isArr := first.Sym.Type.(*types.Array); isArr && eq.WholeCall == nil && len(first.Subs) < len(arr.Dims) {
		for _, d := range arr.Dims[len(first.Subs):] {
			if eq.HasDim(d) {
				c.errorf(aeq.Pos(), "implicit dimension %s of %s repeats an explicit index variable; subscript it explicitly", d.Name, first.Sym.Name)
				return nil
			}
			first.Implicit = append(first.Implicit, d)
			eq.Dims = append(eq.Dims, d)
		}
	}
	// Remaining targets must cover the same implicit dimensions.
	for _, t := range eq.Targets[1:] {
		if arr, isArr := t.Sym.Type.(*types.Array); isArr && len(t.Subs) < len(arr.Dims) {
			rem := arr.Dims[len(t.Subs):]
			if len(rem) != len(first.Implicit) {
				c.errorf(aeq.Pos(), "targets of multi-value equation cover different implicit ranks")
				return nil
			}
			t.Implicit = rem
		} else if len(first.Implicit) > 0 {
			c.errorf(aeq.Pos(), "targets of multi-value equation cover different implicit ranks")
			return nil
		}
	}

	// Type-check the right hand side under the equation's index variables.
	rhsType := c.checkExpr(eq, aeq.RHS)

	// A multi-target equation needs a multi-result module call as its RHS.
	if len(eq.Targets) > 1 {
		call, isCall := ast.Unparen(aeq.RHS).(*ast.Call)
		var callee *Module
		if isCall {
			callee = c.prog.Module(call.Fun.Name)
		}
		if callee == nil || len(callee.Results) != len(eq.Targets) {
			c.errorf(aeq.Pos(), "multi-target equation requires a module call returning %d results", len(eq.Targets))
			return nil
		}
		eq.MultiCall = call
		for i, t := range eq.Targets {
			c.checkAssignable(aeq, callee.Results[i].Type, c.targetValueType(t), t.Sym.Name)
		}
		return eq
	}

	c.checkAssignable(aeq, rhsType, c.targetValueType(first), first.Sym.Name)
	return eq
}

// targetValueType is the type of the value an equation must produce for
// target t: the element type after explicit subscripts, re-wrapped in the
// implicit dimensions if any.
func (c *checker) targetValueType(t *Target) types.Type {
	arr, isArr := t.Sym.Type.(*types.Array)
	if !isArr {
		return t.Sym.Type
	}
	return arr.Slice(len(t.Subs))
}

func (c *checker) checkAssignable(aeq *ast.Equation, src, dst types.Type, name string) {
	if src == nil || dst == nil {
		return
	}
	if !types.AssignableTo(src, dst) {
		c.errorf(aeq.Pos(), "cannot define %s: value type %s does not match %s", name, src, dst)
	}
}

// checkTarget resolves one LHS target and registers its explicit index
// variables into eq.Dims in order of first appearance.
func (c *checker) checkTarget(eq *Equation, at *ast.Target) *Target {
	sym := c.mod.scope[at.Name.Name]
	if sym == nil {
		c.errorf(at.Name.Pos(), "undefined name %s", at.Name.Name)
		return nil
	}
	if sym.Kind != ResultSym && sym.Kind != LocalSym {
		c.errorf(at.Name.Pos(), "%s cannot be defined: it is a %s", sym.Name, sym.Kind)
		return nil
	}
	t := &Target{Sym: sym, Subs: at.Subs}
	if len(at.Subs) == 0 {
		return t
	}
	arr, isArr := sym.Type.(*types.Array)
	if !isArr {
		c.errorf(at.Name.Pos(), "%s is not an array but is subscripted", sym.Name)
		return nil
	}
	if len(at.Subs) > len(arr.Dims) {
		c.errorf(at.Name.Pos(), "%s has %d dimensions but %d subscripts", sym.Name, len(arr.Dims), len(at.Subs))
		return nil
	}
	// Each LHS subscript is an expression over index variables, literals
	// and scalar parameters. Index variables encountered are registered as
	// equation dimensions. (Affine forms such as A'[2+I+J, 1, I] are
	// permitted; they arise from the §4 restructuring transformation.)
	for _, sub := range at.Subs {
		bad := false
		ast.Inspect(sub, func(x ast.Expr) bool {
			switch n := x.(type) {
			case *ast.Ident:
				if iv := c.mod.IndexVar(n.Name); iv != nil {
					if !eq.HasDim(iv) {
						eq.Dims = append(eq.Dims, iv)
					}
					c.mod.exprTypes[n] = iv
					return false
				}
				s := c.mod.scope[n.Name]
				if s == nil {
					c.errorf(n.Pos(), "undefined name %s in subscript", n.Name)
					bad = true
					return false
				}
				if !s.IsData() || !types.IsInteger(s.Type) {
					c.errorf(n.Pos(), "subscript must be integer-valued; %s is a %s", n.Name, s.Kind)
					bad = true
					return false
				}
				c.mod.exprTypes[n] = s.Type
			case *ast.IfExpr, *ast.Index, *ast.Field, *ast.Call, *ast.RealLit, *ast.StringLit, *ast.CharLit, *ast.BoolLit:
				c.errorf(x.Pos(), "left-hand-side subscripts must be affine integer expressions")
				bad = true
				return false
			}
			return true
		})
		if bad {
			return nil
		}
		c.mod.exprTypes[sub] = types.Int
	}
	return t
}

// --- expression checking -----------------------------------------------------

func (c *checker) checkExpr(eq *Equation, e ast.Expr) types.Type {
	t := c.exprType(eq, e)
	c.mod.exprTypes[e] = t
	return t
}

func (c *checker) exprType(eq *Equation, e ast.Expr) types.Type {
	switch x := e.(type) {
	case *ast.Ident:
		return c.identType(eq, x)
	case *ast.IntLit:
		return types.Int
	case *ast.RealLit:
		return types.Real
	case *ast.BoolLit:
		return types.Bool
	case *ast.StringLit:
		return types.String
	case *ast.CharLit:
		return types.Char
	case *ast.Paren:
		return c.checkExpr(eq, x.X)
	case *ast.Unary:
		return c.unaryType(eq, x)
	case *ast.Binary:
		return c.binaryType(eq, x)
	case *ast.IfExpr:
		return c.ifType(eq, x)
	case *ast.Index:
		return c.indexType(eq, x)
	case *ast.Field:
		return c.fieldType(eq, x)
	case *ast.Call:
		return c.callType(eq, x)
	}
	c.errorf(e.Pos(), "invalid expression")
	return nil
}

func (c *checker) identType(eq *Equation, x *ast.Ident) types.Type {
	if iv := c.mod.IndexVar(x.Name); iv != nil {
		if !eq.HasDim(iv) {
			c.errorf(x.Pos(), "index variable %s is not a dimension of this equation (it does not appear on the left hand side)", x.Name)
		}
		return iv
	}
	sym := c.mod.scope[x.Name]
	if sym == nil {
		c.errorf(x.Pos(), "undefined name %s", x.Name)
		return nil
	}
	switch sym.Kind {
	case EnumConstSym:
		return sym.Type
	case ParamSym, ResultSym, LocalSym:
		return sym.Type
	}
	c.errorf(x.Pos(), "%s is a %s, not a value", x.Name, sym.Kind)
	return nil
}

func (c *checker) unaryType(eq *Equation, x *ast.Unary) types.Type {
	t := c.checkExpr(eq, x.X)
	if t == nil {
		return nil
	}
	switch x.Op {
	case token.MINUS, token.PLUS:
		if !types.IsNumeric(t) {
			c.errorf(x.Pos(), "operator %s requires a numeric operand, not %s", x.Op, t)
			return nil
		}
		if types.IsInteger(t) {
			return types.Int
		}
		return types.Real
	case token.NOT:
		if t.Kind() != types.BoolKind {
			c.errorf(x.Pos(), "operator not requires a bool operand, not %s", t)
			return nil
		}
		return types.Bool
	}
	c.errorf(x.Pos(), "invalid unary operator %s", x.Op)
	return nil
}

func (c *checker) binaryType(eq *Equation, x *ast.Binary) types.Type {
	lt := c.checkExpr(eq, x.X)
	rt := c.checkExpr(eq, x.Y)
	if lt == nil || rt == nil {
		return nil
	}
	switch x.Op {
	case token.PLUS, token.MINUS, token.STAR:
		if !types.IsNumeric(lt) || !types.IsNumeric(rt) {
			c.errorf(x.Pos(), "operator %s requires numeric operands, not %s and %s", x.Op, lt, rt)
			return nil
		}
		if types.IsInteger(lt) && types.IsInteger(rt) {
			return types.Int
		}
		return types.Real
	case token.SLASH:
		if !types.IsNumeric(lt) || !types.IsNumeric(rt) {
			c.errorf(x.Pos(), "operator / requires numeric operands, not %s and %s", lt, rt)
			return nil
		}
		return types.Real
	case token.DIV, token.MOD:
		if !types.IsInteger(lt) || !types.IsInteger(rt) {
			c.errorf(x.Pos(), "operator %s requires integer operands, not %s and %s", x.Op, lt, rt)
			return nil
		}
		return types.Int
	case token.AND, token.OR:
		if lt.Kind() != types.BoolKind || rt.Kind() != types.BoolKind {
			c.errorf(x.Pos(), "operator %s requires bool operands, not %s and %s", x.Op, lt, rt)
			return nil
		}
		return types.Bool
	case token.EQ, token.NEQ:
		if !types.Equal(lt, rt) && !(types.IsNumeric(lt) && types.IsNumeric(rt)) {
			c.errorf(x.Pos(), "cannot compare %s with %s", lt, rt)
			return nil
		}
		return types.Bool
	case token.LT, token.LE, token.GT, token.GE:
		okNum := types.IsNumeric(lt) && types.IsNumeric(rt)
		okOrd := types.Equal(lt, rt) && types.IsOrdered(lt)
		if !okNum && !okOrd {
			c.errorf(x.Pos(), "cannot order %s with %s", lt, rt)
			return nil
		}
		return types.Bool
	}
	c.errorf(x.Pos(), "invalid binary operator %s", x.Op)
	return nil
}

func (c *checker) ifType(eq *Equation, x *ast.IfExpr) types.Type {
	ct := c.checkExpr(eq, x.Cond)
	if ct != nil && ct.Kind() != types.BoolKind {
		c.errorf(x.Cond.Pos(), "if condition must be bool, not %s", ct)
	}
	t := c.checkExpr(eq, x.Then)
	arms := []types.Type{t}
	for _, arm := range x.Elifs {
		act := c.checkExpr(eq, arm.Cond)
		if act != nil && act.Kind() != types.BoolKind {
			c.errorf(arm.Cond.Pos(), "elsif condition must be bool, not %s", act)
		}
		arms = append(arms, c.checkExpr(eq, arm.Then))
	}
	arms = append(arms, c.checkExpr(eq, x.Else))
	var unified types.Type
	for _, at := range arms {
		if at == nil {
			continue
		}
		switch {
		case unified == nil:
			unified = at
		case types.IsNumeric(unified) && types.IsNumeric(at):
			if unified.Kind() == types.RealKind || at.Kind() == types.RealKind {
				unified = types.Real
			} else {
				unified = types.Int
			}
		case !types.Equal(unified, at):
			c.errorf(x.Pos(), "if arms have mismatched types %s and %s", unified, at)
			return nil
		}
	}
	return unified
}

func (c *checker) indexType(eq *Equation, x *ast.Index) types.Type {
	bt := c.checkExpr(eq, x.Base)
	if bt == nil {
		return nil
	}
	arr, isArr := bt.(*types.Array)
	if !isArr {
		c.errorf(x.Pos(), "cannot subscript non-array type %s", bt)
		return nil
	}
	if len(x.Subs) > len(arr.Dims) {
		c.errorf(x.Pos(), "array has %d dimensions but %d subscripts", len(arr.Dims), len(x.Subs))
		return nil
	}
	for _, s := range x.Subs {
		st := c.checkExpr(eq, s)
		if st != nil && !types.IsInteger(st) {
			c.errorf(s.Pos(), "subscript must be an integer, not %s", st)
		}
	}
	return arr.Slice(len(x.Subs))
}

func (c *checker) fieldType(eq *Equation, x *ast.Field) types.Type {
	bt := c.checkExpr(eq, x.Base)
	if bt == nil {
		return nil
	}
	rec, isRec := bt.(*types.Record)
	if !isRec {
		c.errorf(x.Pos(), "cannot select field of non-record type %s", bt)
		return nil
	}
	f := rec.Field(x.Sel.Name)
	if f == nil {
		c.errorf(x.Sel.Pos(), "record has no field %s", x.Sel.Name)
		return nil
	}
	return f.Type
}

// Builtin describes one builtin function.
type Builtin struct {
	Name  string
	Arity int
	// Check validates argument types and returns the result type.
	Check func(c *checker, call *ast.Call, args []types.Type) types.Type
}

func numericToReal(c *checker, call *ast.Call, args []types.Type) types.Type {
	for _, a := range args {
		if a != nil && !types.IsNumeric(a) {
			c.errorf(call.Pos(), "%s requires numeric arguments", call.Fun.Name)
			return nil
		}
	}
	return types.Real
}

// Builtins is the table of PS builtin functions.
var Builtins = map[string]*Builtin{
	"abs": {Name: "abs", Arity: 1, Check: func(c *checker, call *ast.Call, args []types.Type) types.Type {
		if args[0] != nil && !types.IsNumeric(args[0]) {
			c.errorf(call.Pos(), "abs requires a numeric argument")
			return nil
		}
		if types.IsInteger(args[0]) {
			return types.Int
		}
		return types.Real
	}},
	"min":  {Name: "min", Arity: 2, Check: checkMinMax},
	"max":  {Name: "max", Arity: 2, Check: checkMinMax},
	"sqrt": {Name: "sqrt", Arity: 1, Check: numericToReal},
	"sin":  {Name: "sin", Arity: 1, Check: numericToReal},
	"cos":  {Name: "cos", Arity: 1, Check: numericToReal},
	"exp":  {Name: "exp", Arity: 1, Check: numericToReal},
	"ln":   {Name: "ln", Arity: 1, Check: numericToReal},
	"pow":  {Name: "pow", Arity: 2, Check: numericToReal},
	"trunc": {Name: "trunc", Arity: 1, Check: func(c *checker, call *ast.Call, args []types.Type) types.Type {
		if args[0] != nil && !types.IsNumeric(args[0]) {
			c.errorf(call.Pos(), "trunc requires a numeric argument")
			return nil
		}
		return types.Int
	}},
	"round": {Name: "round", Arity: 1, Check: func(c *checker, call *ast.Call, args []types.Type) types.Type {
		if args[0] != nil && !types.IsNumeric(args[0]) {
			c.errorf(call.Pos(), "round requires a numeric argument")
			return nil
		}
		return types.Int
	}},
	"float": {Name: "float", Arity: 1, Check: func(c *checker, call *ast.Call, args []types.Type) types.Type {
		if args[0] != nil && !types.IsInteger(args[0]) {
			c.errorf(call.Pos(), "float requires an integer argument")
			return nil
		}
		return types.Real
	}},
	"ord": {Name: "ord", Arity: 1, Check: func(c *checker, call *ast.Call, args []types.Type) types.Type {
		if args[0] != nil {
			switch args[0].Kind() {
			case types.EnumKind, types.CharKind, types.BoolKind, types.IntKind, types.SubrangeKind:
			default:
				c.errorf(call.Pos(), "ord requires an ordinal argument, not %s", args[0])
				return nil
			}
		}
		return types.Int
	}},
}

func checkMinMax(c *checker, call *ast.Call, args []types.Type) types.Type {
	for _, a := range args {
		if a != nil && !types.IsNumeric(a) {
			c.errorf(call.Pos(), "%s requires numeric arguments", call.Fun.Name)
			return nil
		}
	}
	if types.IsInteger(args[0]) && types.IsInteger(args[1]) {
		return types.Int
	}
	return types.Real
}

func (c *checker) callType(eq *Equation, x *ast.Call) types.Type {
	var args []types.Type
	for _, a := range x.Args {
		args = append(args, c.checkExpr(eq, a))
	}
	if b, ok := Builtins[strings.ToLower(x.Fun.Name)]; ok {
		if len(args) != b.Arity {
			c.errorf(x.Pos(), "%s requires %d argument(s), got %d", b.Name, b.Arity, len(args))
			return nil
		}
		return b.Check(c, x, args)
	}
	callee := c.prog.Module(x.Fun.Name)
	if callee == nil {
		c.errorf(x.Fun.Pos(), "undefined function or module %s", x.Fun.Name)
		return nil
	}
	if callee == c.mod {
		c.errorf(x.Fun.Pos(), "module %s cannot invoke itself", c.mod.Name)
		return nil
	}
	if len(args) != len(callee.Params) {
		c.errorf(x.Pos(), "module %s takes %d parameter(s), got %d", callee.Name, len(callee.Params), len(args))
		return nil
	}
	for i, at := range args {
		pt := callee.Params[i].Type
		// The callee may not be checked yet; skip unresolved types.
		if at == nil || pt == nil {
			continue
		}
		if !types.AssignableTo(at, pt) {
			c.errorf(x.Args[i].Pos(), "argument %d of %s: cannot use %s as %s", i+1, callee.Name, at, pt)
		}
	}
	if len(callee.Results) == 1 {
		return callee.Results[0].Type
	}
	// Multi-result calls are validated by checkEquation against the
	// target list; give the call no single type.
	return nil
}

// checkCallCycles rejects mutually recursive module invocation.
func checkCallCycles(p *Program, errs *source.ErrorList) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Module]int)
	var visit func(m *Module) bool
	visit = func(m *Module) bool {
		color[m] = gray
		for _, callee := range p.calleesOf(m) {
			switch color[callee] {
			case gray:
				errs.Addf(m.AST.Name.Pos(), "module call cycle involving %s and %s", m.Name, callee.Name)
				return false
			case white:
				if !visit(callee) {
					return false
				}
			}
		}
		color[m] = black
		return true
	}
	for _, m := range p.Modules {
		if color[m] == white {
			if !visit(m) {
				break
			}
		}
	}
	return errs.Err()
}

// calleesOf returns the modules m invokes.
func (p *Program) calleesOf(m *Module) []*Module {
	var out []*Module
	seen := make(map[*Module]bool)
	for _, eq := range m.Eqs {
		ast.Inspect(eq.RHS, func(x ast.Expr) bool {
			if call, ok := x.(*ast.Call); ok {
				if callee := p.Module(call.Fun.Name); callee != nil && callee != m && !seen[callee] {
					seen[callee] = true
					out = append(out, callee)
				}
			}
			return true
		})
	}
	return out
}
