package ast

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// ExprString renders an expression as PS source text. The output reparses
// to an equivalent tree (module position information).
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *Ident:
		sb.WriteString(x.Name)
	case *IntLit:
		fmt.Fprintf(sb, "%d", x.Value)
	case *RealLit:
		s := x.Lit
		if s == "" {
			s = fmt.Sprintf("%g", x.Value)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
		}
		sb.WriteString(s)
	case *BoolLit:
		if x.Value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *StringLit:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(x.Value, "'", "''"))
		sb.WriteByte('\'')
	case *CharLit:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(string(x.Value), "'", "''"))
		sb.WriteByte('\'')
	case *Binary:
		writeOperand(sb, x.X, x.Op, false)
		sb.WriteByte(' ')
		sb.WriteString(x.Op.String())
		sb.WriteByte(' ')
		writeOperand(sb, x.Y, x.Op, true)
	case *Unary:
		sb.WriteString(x.Op.String())
		if x.Op == token.NOT {
			sb.WriteByte(' ')
		}
		// Binary and conditional operands must be parenthesized: the
		// operator would otherwise capture only their first term, and a
		// trailing binary after "-if c then a else b" would be absorbed
		// into the else arm on reparse.
		switch Unparen(x.X).(type) {
		case *Binary, *IfExpr:
			sb.WriteByte('(')
			writeExpr(sb, Unparen(x.X))
			sb.WriteByte(')')
		default:
			writeExpr(sb, x.X)
		}
	case *Paren:
		sb.WriteByte('(')
		writeExpr(sb, x.X)
		sb.WriteByte(')')
	case *IfExpr:
		sb.WriteString("if ")
		writeExpr(sb, x.Cond)
		sb.WriteString(" then ")
		writeExpr(sb, x.Then)
		for _, arm := range x.Elifs {
			sb.WriteString(" elsif ")
			writeExpr(sb, arm.Cond)
			sb.WriteString(" then ")
			writeExpr(sb, arm.Then)
		}
		sb.WriteString(" else ")
		writeExpr(sb, x.Else)
	case *Index:
		writeExpr(sb, x.Base)
		sb.WriteByte('[')
		for i, s := range x.Subs {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeExpr(sb, s)
		}
		sb.WriteByte(']')
	case *Field:
		writeExpr(sb, x.Base)
		sb.WriteByte('.')
		sb.WriteString(x.Sel.Name)
	case *Call:
		sb.WriteString(x.Fun.Name)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "<%T>", e)
	}
}

// writeOperand emits a binary operand, parenthesizing when the child binds
// looser than the parent operator (or equally, on the right, to preserve
// left associativity).
func writeOperand(sb *strings.Builder, e Expr, parent token.Kind, right bool) {
	need := false
	if b, ok := Unparen(e).(*Binary); ok {
		pp, cp := parent.Precedence(), b.Op.Precedence()
		need = cp < pp || (cp == pp && right)
	}
	if _, ok := Unparen(e).(*IfExpr); ok {
		need = true
	}
	if need {
		sb.WriteByte('(')
		writeExpr(sb, Unparen(e))
		sb.WriteByte(')')
	} else {
		writeExpr(sb, Unparen(e))
	}
}

// TypeString renders a type expression as PS source text.
func TypeString(t TypeExpr) string {
	var sb strings.Builder
	writeType(&sb, t)
	return sb.String()
}

func writeType(sb *strings.Builder, t TypeExpr) {
	switch x := t.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *TypeName:
		sb.WriteString(x.Name.Name)
	case *SubrangeType:
		writeExpr(sb, x.Lo)
		sb.WriteString(" .. ")
		writeExpr(sb, x.Hi)
	case *ArrayType:
		sb.WriteString("array [")
		for i, d := range x.Dims {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeType(sb, d)
		}
		sb.WriteString("] of ")
		writeType(sb, x.Elem)
	case *RecordType:
		sb.WriteString("record ")
		for i, f := range x.Fields {
			if i > 0 {
				sb.WriteString("; ")
			}
			for j, n := range f.Names {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(n.Name)
			}
			sb.WriteString(": ")
			writeType(sb, f.Type)
		}
		sb.WriteString(" end")
	case *EnumType:
		sb.WriteByte('(')
		for i, n := range x.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n.Name)
		}
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "<%T>", t)
	}
}

// EquationString renders an equation as PS source text (without the
// trailing semicolon).
func EquationString(e *Equation) string {
	var sb strings.Builder
	for i, t := range e.Targets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name.Name)
		if len(t.Subs) > 0 {
			sb.WriteByte('[')
			for j, s := range t.Subs {
				if j > 0 {
					sb.WriteByte(',')
				}
				writeExpr(&sb, s)
			}
			sb.WriteByte(']')
		}
	}
	sb.WriteString(" = ")
	writeExpr(&sb, e.RHS)
	return sb.String()
}

// ModuleString renders an entire module as formatted PS source.
func ModuleString(m *Module) string {
	var sb strings.Builder
	sb.WriteString(m.Name.Name)
	sb.WriteString(": module (")
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString("; ")
		}
		writeParam(&sb, p)
	}
	sb.WriteString("):\n    [")
	for i, p := range m.Results {
		if i > 0 {
			sb.WriteString("; ")
		}
		writeParam(&sb, p)
	}
	sb.WriteString("];\n")
	if len(m.Types) > 0 {
		sb.WriteString("type\n")
		for _, d := range m.Types {
			sb.WriteString("    ")
			for i, n := range d.Names {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(n.Name)
			}
			sb.WriteString(" = ")
			writeType(&sb, d.Type)
			sb.WriteString(";\n")
		}
	}
	if len(m.Vars) > 0 {
		sb.WriteString("var\n")
		for _, d := range m.Vars {
			sb.WriteString("    ")
			for i, n := range d.Names {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(n.Name)
			}
			sb.WriteString(": ")
			writeType(&sb, d.Type)
			sb.WriteString(";\n")
		}
	}
	sb.WriteString("define\n")
	for _, eq := range m.Eqs {
		sb.WriteString("    ")
		if eq.Label != "" {
			fmt.Fprintf(&sb, "(*%s*) ", eq.Label)
		}
		sb.WriteString(EquationString(eq))
		sb.WriteString(";\n")
	}
	sb.WriteString("end ")
	sb.WriteString(m.Name.Name)
	sb.WriteString(";\n")
	return sb.String()
}

func writeParam(sb *strings.Builder, p *Param) {
	for i, n := range p.Names {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(n.Name)
	}
	sb.WriteString(": ")
	writeType(sb, p.Type)
}
