package ast

// Inspect traverses an expression tree in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
func Inspect(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Unary:
		Inspect(x.X, f)
	case *Paren:
		Inspect(x.X, f)
	case *IfExpr:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		for _, arm := range x.Elifs {
			Inspect(arm.Cond, f)
			Inspect(arm.Then, f)
		}
		Inspect(x.Else, f)
	case *Index:
		Inspect(x.Base, f)
		for _, s := range x.Subs {
			Inspect(s, f)
		}
	case *Field:
		Inspect(x.Base, f)
	case *Call:
		for _, a := range x.Args {
			Inspect(a, f)
		}
	}
}

// Unparen strips any number of surrounding Paren nodes.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// FreeIdents returns the distinct identifier names referenced by e, in
// first-use order. Subscript expressions and call arguments are included;
// record field selector names are not (only the base expression is data).
func FreeIdents(e Expr) []string {
	var names []string
	seen := make(map[string]bool)
	Inspect(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		if f, ok := x.(*Field); ok {
			Inspect(f.Base, func(y Expr) bool {
				if id, ok := y.(*Ident); ok && !seen[id.Name] {
					seen[id.Name] = true
					names = append(names, id.Name)
				}
				return true
			})
			return false
		}
		return true
	})
	return names
}
