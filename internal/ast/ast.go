// Package ast declares the abstract syntax tree for PS programs.
//
// A PS program is a set of module declarations. A module has typed input
// parameters and results, Pascal-like type and var sections, and a define
// section of order-free equations (paper §2, Figure 1):
//
//	Relaxation: module (InitialA: array[I,J] of real; M: int; maxK: int):
//	    [newA: array[I,J] of real];
//	type
//	    I,J = 0 .. M+1;  K = 2 .. maxK;
//	var A: array [1 .. maxK] of array[I,J] of real;
//	define
//	    A[1] = InitialA;
//	    newA = A[maxK];
//	    A[K,I,J] = if ... then ... else ...;
//	end Relaxation;
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
	End() source.Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// TypeExpr is implemented by type-denoting nodes.
type TypeExpr interface {
	Node
	typeExprNode()
}

// ---------------------------------------------------------------- Expressions

// Ident is a use of a name.
type Ident struct {
	Name    string
	NamePos source.Pos
	NameEnd source.Pos
}

func (x *Ident) Pos() source.Pos { return x.NamePos }
func (x *Ident) End() source.Pos { return x.NameEnd }
func (x *Ident) exprNode()       {}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	Lit    string
	LitPos source.Pos
	LitEnd source.Pos
}

func (x *IntLit) Pos() source.Pos { return x.LitPos }
func (x *IntLit) End() source.Pos { return x.LitEnd }
func (x *IntLit) exprNode()       {}

// RealLit is a floating point literal.
type RealLit struct {
	Value  float64
	Lit    string
	LitPos source.Pos
	LitEnd source.Pos
}

func (x *RealLit) Pos() source.Pos { return x.LitPos }
func (x *RealLit) End() source.Pos { return x.LitEnd }
func (x *RealLit) exprNode()       {}

// BoolLit is `true` or `false`.
type BoolLit struct {
	Value  bool
	LitPos source.Pos
	LitEnd source.Pos
}

func (x *BoolLit) Pos() source.Pos { return x.LitPos }
func (x *BoolLit) End() source.Pos { return x.LitEnd }
func (x *BoolLit) exprNode()       {}

// StringLit is a quoted string literal; CharLit a single-character one.
type StringLit struct {
	Value  string
	LitPos source.Pos
	LitEnd source.Pos
}

func (x *StringLit) Pos() source.Pos { return x.LitPos }
func (x *StringLit) End() source.Pos { return x.LitEnd }
func (x *StringLit) exprNode()       {}

// CharLit is a single character literal.
type CharLit struct {
	Value  rune
	LitPos source.Pos
	LitEnd source.Pos
}

func (x *CharLit) Pos() source.Pos { return x.LitPos }
func (x *CharLit) End() source.Pos { return x.LitEnd }
func (x *CharLit) exprNode()       {}

// Binary is a binary operation X op Y.
type Binary struct {
	Op token.Kind
	X  Expr
	Y  Expr
}

func (x *Binary) Pos() source.Pos { return x.X.Pos() }
func (x *Binary) End() source.Pos { return x.Y.End() }
func (x *Binary) exprNode()       {}

// Unary is a unary operation op X (-, +, not).
type Unary struct {
	Op    token.Kind
	OpPos source.Pos
	X     Expr
}

func (x *Unary) Pos() source.Pos { return x.OpPos }
func (x *Unary) End() source.Pos { return x.X.End() }
func (x *Unary) exprNode()       {}

// Paren is a parenthesized expression.
type Paren struct {
	LP source.Pos
	X  Expr
	RP source.Pos
}

func (x *Paren) Pos() source.Pos { return x.LP }
func (x *Paren) End() source.Pos { return x.RP }
func (x *Paren) exprNode()       {}

// IfExpr is a conditional expression: if c then a [elsif c2 then b]... else z.
// PS if is an expression, not a statement; the else arm is mandatory.
type IfExpr struct {
	IfPos source.Pos
	Cond  Expr
	Then  Expr
	Elifs []ElseIf
	Else  Expr
}

// ElseIf is one `elsif cond then expr` arm.
type ElseIf struct {
	Cond Expr
	Then Expr
}

func (x *IfExpr) Pos() source.Pos { return x.IfPos }
func (x *IfExpr) End() source.Pos { return x.Else.End() }
func (x *IfExpr) exprNode()       {}

// Index is a subscripted reference A[e1, e2, ...]. Multi-dimensional
// subscripts may also be written A[e1][e2]; the parser flattens both forms.
type Index struct {
	Base   Expr
	Lbrack source.Pos
	Subs   []Expr
	Rbrack source.Pos
}

func (x *Index) Pos() source.Pos { return x.Base.Pos() }
func (x *Index) End() source.Pos { return x.Rbrack }
func (x *Index) exprNode()       {}

// Field is a record field selection base.field.
type Field struct {
	Base Expr
	Sel  *Ident
}

func (x *Field) Pos() source.Pos { return x.Base.Pos() }
func (x *Field) End() source.Pos { return x.Sel.End() }
func (x *Field) exprNode()       {}

// Call is a function application f(args): a builtin (abs, min, sqrt, ...)
// or an invocation of another module.
type Call struct {
	Fun    *Ident
	Lparen source.Pos
	Args   []Expr
	Rparen source.Pos
}

func (x *Call) Pos() source.Pos { return x.Fun.Pos() }
func (x *Call) End() source.Pos { return x.Rparen }
func (x *Call) exprNode()       {}

// ------------------------------------------------------------- Type syntax

// TypeName refers to a declared or builtin type by name.
type TypeName struct {
	Name *Ident
}

func (t *TypeName) Pos() source.Pos { return t.Name.Pos() }
func (t *TypeName) End() source.Pos { return t.Name.End() }
func (t *TypeName) typeExprNode()   {}

// SubrangeType is lo .. hi. Bounds are expressions over constants and
// scalar module parameters (e.g. 0 .. M+1).
type SubrangeType struct {
	Lo Expr
	Hi Expr
}

func (t *SubrangeType) Pos() source.Pos { return t.Lo.Pos() }
func (t *SubrangeType) End() source.Pos { return t.Hi.End() }
func (t *SubrangeType) typeExprNode()   {}

// ArrayType is array [d1, d2, ...] of Elem. Each dimension is either a
// named subrange type (array [I,J] of real) or an anonymous subrange
// (array [1 .. maxK] of ...).
type ArrayType struct {
	ArrayPos source.Pos
	Dims     []TypeExpr
	Elem     TypeExpr
}

func (t *ArrayType) Pos() source.Pos { return t.ArrayPos }
func (t *ArrayType) End() source.Pos { return t.Elem.End() }
func (t *ArrayType) typeExprNode()   {}

// RecordType is record f1: T1; f2, f3: T2 end.
type RecordType struct {
	RecordPos source.Pos
	Fields    []*FieldDecl
	EndPos    source.Pos
}

// FieldDecl declares one or more record fields of a common type.
type FieldDecl struct {
	Names []*Ident
	Type  TypeExpr
}

func (t *RecordType) Pos() source.Pos { return t.RecordPos }
func (t *RecordType) End() source.Pos { return t.EndPos }
func (t *RecordType) typeExprNode()   {}

// EnumType is an enumeration (red, green, blue).
type EnumType struct {
	Lparen source.Pos
	Names  []*Ident
	Rparen source.Pos
}

func (t *EnumType) Pos() source.Pos { return t.Lparen }
func (t *EnumType) End() source.Pos { return t.Rparen }
func (t *EnumType) typeExprNode()   {}

// ------------------------------------------------------------ Declarations

// Program is a compilation unit: one or more modules.
type Program struct {
	Modules []*Module
}

func (p *Program) Pos() source.Pos {
	if len(p.Modules) > 0 {
		return p.Modules[0].Pos()
	}
	return source.Pos{}
}

func (p *Program) End() source.Pos {
	if n := len(p.Modules); n > 0 {
		return p.Modules[n-1].End()
	}
	return source.Pos{}
}

// Module is one PS module declaration.
type Module struct {
	Name    *Ident
	Params  []*Param // inputs
	Results []*Param // outputs, written in brackets in the header
	Types   []*TypeDecl
	Vars    []*VarDecl
	Eqs     []*Equation
	EndPos  source.Pos
}

func (m *Module) Pos() source.Pos { return m.Name.Pos() }
func (m *Module) End() source.Pos { return m.EndPos }

// Param declares one or more parameters or results of a common type.
type Param struct {
	Names []*Ident
	Type  TypeExpr
}

func (p *Param) Pos() source.Pos { return p.Names[0].Pos() }
func (p *Param) End() source.Pos { return p.Type.End() }

// TypeDecl declares one or more named types of a common definition,
// e.g. `I,J = 0 .. M+1;`.
type TypeDecl struct {
	Names []*Ident
	Type  TypeExpr
}

func (d *TypeDecl) Pos() source.Pos { return d.Names[0].Pos() }
func (d *TypeDecl) End() source.Pos { return d.Type.End() }

// VarDecl declares one or more local variables of a common type.
type VarDecl struct {
	Names []*Ident
	Type  TypeExpr
}

func (d *VarDecl) Pos() source.Pos { return d.Names[0].Pos() }
func (d *VarDecl) End() source.Pos { return d.Type.End() }

// Equation is one defining equation LHS = RHS. The left hand side is a
// single target or a list of targets (for multi-valued right hand sides);
// each target may be subscripted (A[K,I,J] = ...).
type Equation struct {
	Targets []*Target
	RHS     Expr
	// Label is an optional display name such as "eq.3"; the parser fills
	// it from a preceding (*eq.N*) comment if present, else the scheduler
	// assigns eq.<ordinal>.
	Label string
}

func (e *Equation) Pos() source.Pos { return e.Targets[0].Pos() }
func (e *Equation) End() source.Pos { return e.RHS.End() }

// Target is one left-hand-side item: a variable with optional subscripts.
type Target struct {
	Name      *Ident
	Subs      []Expr // nil for unsubscripted targets
	RbrackEnd source.Pos
}

func (t *Target) Pos() source.Pos { return t.Name.Pos() }

func (t *Target) End() source.Pos {
	if len(t.Subs) > 0 {
		return t.RbrackEnd
	}
	return t.Name.End()
}
