package token_test

import (
	"testing"

	"repro/internal/token"
)

// TestLookup covers keyword recognition and case folding.
func TestLookup(t *testing.T) {
	cases := map[string]token.Kind{
		"module": token.MODULE, "MODULE": token.MODULE,
		"define": token.DEFINE, "Array": token.ARRAY,
		"and": token.AND, "Or": token.OR, "NOT": token.NOT,
		"div": token.DIV, "mod": token.MOD,
		"true": token.TRUE, "false": token.FALSE,
		"elsif": token.ELSIF, "record": token.RECORD,
		"myname": token.IDENT, "modules": token.IDENT,
	}
	for s, want := range cases {
		if got := token.Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestPrecedence covers the Pascal operator hierarchy.
func TestPrecedence(t *testing.T) {
	rel := []token.Kind{token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE}
	add := []token.Kind{token.PLUS, token.MINUS, token.OR}
	mul := []token.Kind{token.STAR, token.SLASH, token.DIV, token.MOD, token.AND}
	for _, k := range rel {
		if k.Precedence() != 1 {
			t.Errorf("%v precedence %d, want 1", k, k.Precedence())
		}
	}
	for _, k := range add {
		if k.Precedence() != 2 {
			t.Errorf("%v precedence %d, want 2", k, k.Precedence())
		}
	}
	for _, k := range mul {
		if k.Precedence() != token.HighestPrec {
			t.Errorf("%v precedence %d, want %d", k, k.Precedence(), token.HighestPrec)
		}
	}
	if token.IDENT.Precedence() != 0 || token.LPAREN.Precedence() != 0 {
		t.Error("non-operators must have precedence 0")
	}
}

// TestClassification covers the kind predicates and names.
func TestClassification(t *testing.T) {
	if !token.MODULE.IsKeyword() || token.IDENT.IsKeyword() || token.PLUS.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
	for _, k := range []token.Kind{token.IDENT, token.INT, token.REAL, token.STRING, token.CHAR} {
		if !k.IsLiteral() {
			t.Errorf("%v should be literal", k)
		}
	}
	if token.SEMI.IsLiteral() {
		t.Error("';' is not a literal")
	}
	if token.DOTDOT.String() != ".." || token.MODULE.String() != "module" {
		t.Error("token spellings wrong")
	}
}
