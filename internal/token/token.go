// Package token defines the lexical tokens of the PS language.
//
// PS (Problem Specification) is the very high level nonprocedural dataflow
// language of Gokhale (ICASE 87-23). Its lexical structure is Pascal-like:
// case-insensitive keywords, (* ... *) comments, and the usual operator set
// plus '..' for subranges and '=' for both equations and equality.
package token

import "strings"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Literal and identifier kinds carry text; operator and
// keyword kinds are fully identified by the kind alone.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // InitialA
	INT    // 42
	REAL   // 3.14, 1e-6
	STRING // 'hello'
	CHAR   // 'a' (single character string literal used in char context)

	// Operators and delimiters.
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	EQ     // =
	NEQ    // <>
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	COLON  // :
	SEMI   // ;
	DOT    // .
	DOTDOT // ..

	// Keywords.
	kwStart
	MODULE
	TYPE
	VAR
	DEFINE
	END
	IF
	THEN
	ELSE
	ELSIF
	ARRAY
	OF
	RECORD
	AND
	OR
	NOT
	DIV
	MOD
	TRUE
	FALSE
	kwEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",
	IDENT:   "IDENT",
	INT:     "INT",
	REAL:    "REAL",
	STRING:  "STRING",
	CHAR:    "CHAR",
	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	EQ:      "=",
	NEQ:     "<>",
	LT:      "<",
	LE:      "<=",
	GT:      ">",
	GE:      ">=",
	LPAREN:  "(",
	RPAREN:  ")",
	LBRACK:  "[",
	RBRACK:  "]",
	COMMA:   ",",
	COLON:   ":",
	SEMI:    ";",
	DOT:     ".",
	DOTDOT:  "..",
	MODULE:  "module",
	TYPE:    "type",
	VAR:     "var",
	DEFINE:  "define",
	END:     "end",
	IF:      "if",
	THEN:    "then",
	ELSE:    "else",
	ELSIF:   "elsif",
	ARRAY:   "array",
	OF:      "of",
	RECORD:  "record",
	AND:     "and",
	OR:      "or",
	NOT:     "not",
	DIV:     "div",
	MOD:     "mod",
	TRUE:    "true",
	FALSE:   "false",
}

// String returns the token kind's display name (the literal spelling for
// operators and keywords).
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "UNKNOWN"
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwStart && k < kwEnd }

// IsLiteral reports whether k carries literal text (identifier or constant).
func (k Kind) IsLiteral() bool {
	switch k {
	case IDENT, INT, REAL, STRING, CHAR:
		return true
	}
	return false
}

var keywords map[string]Kind

func init() {
	keywords = make(map[string]Kind, int(kwEnd-kwStart))
	for k := kwStart + 1; k < kwEnd; k++ {
		keywords[names[k]] = k
	}
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
// PS keywords are case-insensitive, following Pascal.
func Lookup(ident string) Kind {
	if k, ok := keywords[strings.ToLower(ident)]; ok {
		return k
	}
	return IDENT
}

// Precedence levels for binary operators, Pascal-style: relational ops bind
// loosest, then additive (including OR), then multiplicative (including
// AND). Returns 0 for non-operators.
func (k Kind) Precedence() int {
	switch k {
	case EQ, NEQ, LT, LE, GT, GE:
		return 1
	case PLUS, MINUS, OR:
		return 2
	case STAR, SLASH, DIV, MOD, AND:
		return 3
	}
	return 0
}

// HighestPrec is the precedence of the tightest-binding binary operators.
const HighestPrec = 3
