package scc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/scc"
)

// TestKnownGraphs covers hand-checked component structures.
func TestKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    scc.AdjGraph
		want [][]int // topological component order
	}{
		{
			name: "chain",
			g:    scc.AdjGraph{{1}, {2}, {}},
			want: [][]int{{0}, {1}, {2}},
		},
		{
			name: "cycle",
			g:    scc.AdjGraph{{1}, {2}, {0}},
			want: [][]int{{0, 1, 2}},
		},
		{
			name: "two cycles bridged",
			g:    scc.AdjGraph{{1}, {0, 2}, {3}, {2}},
			want: [][]int{{0, 1}, {2, 3}},
		},
		{
			name: "self loop",
			g:    scc.AdjGraph{{0, 1}, {}},
			want: [][]int{{0}, {1}},
		},
		{
			name: "empty",
			g:    scc.AdjGraph{},
			want: nil,
		},
		{
			name: "isolated",
			g:    scc.AdjGraph{{}, {}, {}},
			want: [][]int{{0}, {1}, {2}},
		},
		{
			// The relaxation condensation shape: sources feeding a cycle
			// feeding sinks.
			name: "diamond with cycle",
			g:    scc.AdjGraph{{2}, {2}, {3}, {2, 4}, {}},
			want: [][]int{{0}, {1}, {2, 3}, {4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := scc.Components(tc.g)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			// Components must match set-wise and respect edge order.
			seen := make(map[int]int)
			for ci, comp := range got {
				for _, v := range comp {
					seen[v] = ci
				}
			}
			for ci, comp := range tc.want {
				_ = ci
				first := seen[comp[0]]
				for _, v := range comp {
					if seen[v] != first {
						t.Errorf("nodes %v not in one component: %v", comp, got)
					}
				}
			}
			// Topological property: every edge goes to the same or a
			// later component.
			for u := range tc.g {
				for _, v := range tc.g[u] {
					if seen[u] > seen[v] {
						t.Errorf("edge %d->%d goes backwards across components %d->%d",
							u, v, seen[u], seen[v])
					}
				}
			}
		})
	}
}

// TestComponentsProperty is a property test on random digraphs: the
// components partition the nodes; every edge respects topological order;
// and within-component reachability is mutual.
func TestComponentsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, density uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 1
		p := float64(density%70)/100.0 + 0.02
		g := make(scc.AdjGraph, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Float64() < p {
					g[u] = append(g[u], v)
				}
			}
		}
		comps := scc.Components(g)
		id := scc.Condense(n, comps)

		// Partition: every node appears exactly once.
		count := make([]int, n)
		for _, comp := range comps {
			for _, v := range comp {
				count[v]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		// Topological order of the condensation.
		for u := 0; u < n; u++ {
			for _, v := range g[u] {
				if id[u] > id[v] {
					return false
				}
			}
		}
		// Mutual reachability within components.
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = make([]bool, n)
			stack := []int{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range g[x] {
					if !reach[u][v] {
						reach[u][v] = true
						stack = append(stack, v)
					}
				}
			}
		}
		for _, comp := range comps {
			for _, a := range comp {
				for _, b := range comp {
					if a != b && (!reach[a][b] || !reach[b][a]) {
						return false
					}
				}
			}
		}
		// Maximality: distinct components are not mutually reachable.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if id[u] != id[v] && reach[u][v] && reach[v][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeepChain guards the iterative Tarjan against stack overflows.
func TestDeepChain(t *testing.T) {
	const n = 200_000
	g := make(scc.AdjGraph, n)
	for i := 0; i < n-1; i++ {
		g[i] = []int{i + 1}
	}
	comps := scc.Components(g)
	if len(comps) != n {
		t.Fatalf("got %d components, want %d", len(comps), n)
	}
	if comps[0][0] != 0 || comps[n-1][0] != n-1 {
		t.Error("chain components out of topological order")
	}
}
