// Package scc computes maximally strongly connected components (MSCCs) of
// a directed graph and orders them topologically, as required by the
// paper's Schedule-Graph procedure (§3.3 step 1).
package scc

// Graph is the adjacency-list view consumed by Components: Succ(i) lists
// the successors of node i, for i in [0, n).
type Graph interface {
	Len() int
	Succ(i int) []int
}

// AdjGraph is a simple slice-backed Graph.
type AdjGraph [][]int

// Len returns the number of nodes.
func (g AdjGraph) Len() int { return len(g) }

// Succ returns the successors of node i.
func (g AdjGraph) Succ(i int) []int { return g[i] }

// Components returns the MSCCs of g using Tarjan's algorithm, ordered so
// that every edge runs from an earlier component to a later one
// (producers before consumers). Within a component, nodes keep ascending
// index order of discovery.
func Components(g Graph) [][]int {
	n := g.Len()
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		nextID int
	)

	// Iterative Tarjan to survive deep graphs without growing the Go
	// stack for every node.
	type frame struct {
		v    int
		succ []int
		si   int
	}
	var frames []frame

	push := func(v int) {
		index[v] = nextID
		lowlink[v] = nextID
		nextID++
		stack = append(stack, v)
		onStack[v] = true
		frames = append(frames, frame{v: v, succ: g.Succ(v)})
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.si < len(f.succ) {
				w := f.succ[f.si]
				f.si++
				if index[w] == unvisited {
					push(w)
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			if lowlink[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				// Tarjan pops components in reverse topological order;
				// collect now, reverse at the end.
				sortInts(comp)
				comps = append(comps, comp)
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if lowlink[v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[v]
				}
			}
		}
	}

	// Reverse to obtain topological (producer-first) order.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	return comps
}

// Condense returns, for each node, the index of its component in comps.
func Condense(n int, comps [][]int) []int {
	id := make([]int, n)
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	return id
}

func sortInts(a []int) {
	// Insertion sort: components are typically tiny.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
