package parser_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/token"
)

// TestParseRelaxation parses the paper's Figure 1 module and checks its
// structure.
func TestParseRelaxation(t *testing.T) {
	m, err := parser.ParseModule("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Name.Name != "Relaxation" {
		t.Errorf("module name %s", m.Name.Name)
	}
	if len(m.Params) != 2 { // InitialA; M, maxK share a group? No: (InitialA) (M) (maxK)
		// Params groups: "InitialA: ..." and "M: int; maxK: int" are
		// separate groups; the source declares three names in three
		// groups.
		if len(m.Params) != 3 {
			t.Errorf("got %d parameter groups", len(m.Params))
		}
	}
	names := 0
	for _, p := range m.Params {
		names += len(p.Names)
	}
	if names != 3 {
		t.Errorf("got %d parameter names, want 3", names)
	}
	if len(m.Results) != 1 || m.Results[0].Names[0].Name != "newA" {
		t.Error("result newA not parsed")
	}
	if len(m.Types) != 2 {
		t.Errorf("got %d type decls, want 2", len(m.Types))
	}
	if len(m.Types[0].Names) != 2 { // I, J
		t.Errorf("first type decl has %d names", len(m.Types[0].Names))
	}
	if len(m.Vars) != 1 || m.Vars[0].Names[0].Name != "A" {
		t.Error("var A not parsed")
	}
	if len(m.Eqs) != 3 {
		t.Fatalf("got %d equations, want 3", len(m.Eqs))
	}
	// Labels from (*eq.N*) comments.
	for i, want := range []string{"eq.1", "eq.2", "eq.3"} {
		if m.Eqs[i].Label != want {
			t.Errorf("equation %d label %q, want %q", i, m.Eqs[i].Label, want)
		}
	}
	// eq.3's LHS has three subscripts; its RHS is an if expression.
	eq3 := m.Eqs[2]
	if len(eq3.Targets[0].Subs) != 3 {
		t.Errorf("eq.3 has %d LHS subscripts", len(eq3.Targets[0].Subs))
	}
	if _, ok := eq3.RHS.(*ast.IfExpr); !ok {
		t.Errorf("eq.3 RHS is %T, want *ast.IfExpr", eq3.RHS)
	}
}

// TestExprPrecedence checks Pascal precedence and associativity.
func TestExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a - b - c", "a - b - c"},
		{"a - (b - c)", "a - (b - c)"},
		{"a = b or c = d", "a = b or c = d"}, // Pascal: or binds tighter than =, so this is (a = (b or c)) = d
		{"not a", "not a"},
		{"-x + y", "-x + y"},
		{"a and b or c", "a and b or c"},
		{"if x > 0 then 1 else 2", "if x > 0 then 1 else 2"},
		{"A[i-1, j+1]", "A[i - 1,j + 1]"},
		{"A[i][j]", "A[i,j]"}, // flattened form
		{"r.f + 1", "r.f + 1"},
		{"min(a, max(b, c))", "min(a, max(b, c))"},
		{"x / y / z", "x / y / z"},
		{"1 + if b then 2 else 3", "1 + (if b then 2 else 3)"},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got := ast.ExprString(e); got != tc.want {
			t.Errorf("%q printed as %q, want %q", tc.src, got, tc.want)
		}
	}
}

// TestElsifChain checks multi-arm conditional expressions.
func TestElsifChain(t *testing.T) {
	e, err := parser.ParseExpr("if a then 1 elsif b then 2 elsif c then 3 else 4")
	if err != nil {
		t.Fatal(err)
	}
	ife := e.(*ast.IfExpr)
	if len(ife.Elifs) != 2 {
		t.Errorf("got %d elsif arms, want 2", len(ife.Elifs))
	}
}

// TestEnumAndRecord parses declarations beyond the relaxation module.
func TestEnumAndRecord(t *testing.T) {
	src := `
Shapes: module (N: int): [Area: array [I] of real];
type
    I = 1 .. N;
    Kind = (circle, square, diamond);
    Point = record x, y: real; tag: Kind end;
var
    P: array [1 .. N] of real;
define
    P[I] = float(I);
    Area[I] = P[I] * 2.0;
end Shapes;
`
	m, err := parser.ParseModule("shapes.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(m.Types) != 3 {
		t.Fatalf("got %d type decls", len(m.Types))
	}
	if _, ok := m.Types[1].Type.(*ast.EnumType); !ok {
		t.Errorf("Kind parsed as %T, want enum", m.Types[1].Type)
	}
	rec, ok := m.Types[2].Type.(*ast.RecordType)
	if !ok {
		t.Fatalf("Point parsed as %T, want record", m.Types[2].Type)
	}
	if len(rec.Fields) != 2 || len(rec.Fields[0].Names) != 2 {
		t.Error("record fields misparsed")
	}
}

// TestEnumVsParenSubrange disambiguates "(a, b)" from "(lo) .. hi".
func TestEnumVsParenSubrange(t *testing.T) {
	src := `
M1: module (N: int): [R: array [I] of real];
type
    I = (N - 1) * 0 .. N;
    C = (red, green);
define
    R[I] = 1.0;
end M1;
`
	m, err := parser.ParseModule("m1.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := m.Types[0].Type.(*ast.SubrangeType); !ok {
		t.Errorf("I parsed as %T, want subrange", m.Types[0].Type)
	}
	if _, ok := m.Types[1].Type.(*ast.EnumType); !ok {
		t.Errorf("C parsed as %T, want enum", m.Types[1].Type)
	}
}

// TestMultiTarget parses multi-value equations.
func TestMultiTarget(t *testing.T) {
	src := `
M2: module (x: real): [a: real; b: real];
define
    a, b = Helper(x);
end M2;
Helper: module (x: real): [p: real; q: real];
define
    p = x + 1.0;
    q = x - 1.0;
end Helper;
`
	prog, err := parser.ParseProgram("m2.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Modules) != 2 {
		t.Fatalf("got %d modules", len(prog.Modules))
	}
	eq := prog.Modules[0].Eqs[0]
	if len(eq.Targets) != 2 {
		t.Errorf("got %d targets, want 2", len(eq.Targets))
	}
}

// TestParseErrors checks diagnostics for malformed source.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"Bad: module",         // truncated header
		"Bad: module (): [];", // no body
		"Bad: module (x: int): [y: real]; define y = ; end Bad;", // missing expr
		"Bad: module (x: int): [y: real]; define y x; end Bad;",  // missing =
	}
	for _, src := range cases {
		if _, err := parser.ParseProgram("bad.ps", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestClosingNameMismatch checks the `end <name>` validation.
func TestClosingNameMismatch(t *testing.T) {
	src := "A: module (x: int): [y: int]; define y = x; end B;"
	if _, err := parser.ParseProgram("x.ps", src); err == nil {
		t.Error("mismatched closing name not reported")
	}
	// Case-insensitive match is accepted.
	src = "A: module (x: int): [y: int]; define y = x; end a;"
	if _, err := parser.ParseProgram("x.ps", src); err != nil {
		t.Errorf("case-insensitive closing name rejected: %v", err)
	}
}

// --- printer/parser round trip property ------------------------------------

// randExpr builds a random well-formed expression tree.
func randExpr(r *rand.Rand, depth int) ast.Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &ast.IntLit{Value: int64(r.Intn(100))}
		case 1:
			return &ast.Ident{Name: string(rune('a' + r.Intn(4)))}
		default:
			return &ast.RealLit{Value: float64(r.Intn(100)) / 4, Lit: ""}
		}
	}
	switch r.Intn(6) {
	case 0, 1:
		ops := []token.Kind{token.PLUS, token.MINUS, token.STAR, token.SLASH}
		return &ast.Binary{Op: ops[r.Intn(len(ops))],
			X: randExpr(r, depth-1), Y: randExpr(r, depth-1)}
	case 2:
		return &ast.Unary{Op: token.MINUS, X: randExpr(r, depth-1)}
	case 3:
		cmp := []token.Kind{token.EQ, token.LT, token.GE}
		cond := &ast.Binary{Op: cmp[r.Intn(len(cmp))],
			X: randExpr(r, depth-1), Y: randExpr(r, depth-1)}
		return &ast.IfExpr{Cond: cond, Then: randExpr(r, depth-1), Else: randExpr(r, depth-1)}
	case 4:
		subs := []ast.Expr{randExpr(r, depth-1)}
		if r.Intn(2) == 0 {
			subs = append(subs, randExpr(r, depth-1))
		}
		return &ast.Index{Base: &ast.Ident{Name: "A"}, Subs: subs}
	default:
		return &ast.Paren{X: randExpr(r, depth-1)}
	}
}

// TestPrintParseRoundTrip is the printer/parser fixpoint property: for
// random expression trees, print → parse → print is the identity on the
// printed form.
func TestPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e := randExpr(r, 4)
		s1 := ast.ExprString(e)
		parsed, err := parser.ParseExpr(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		s2 := ast.ExprString(parsed)
		if s1 != s2 {
			t.Fatalf("round trip changed %q to %q", s1, s2)
		}
	}
}

// TestModuleRoundTrip prints the relaxation module and reparses it.
func TestModuleRoundTrip(t *testing.T) {
	m, err := parser.ParseModule("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	s1 := ast.ModuleString(m)
	m2, err := parser.ParseModule("relax2.ps", s1)
	if err != nil {
		t.Fatalf("reparse printed module: %v\n%s", err, s1)
	}
	s2 := ast.ModuleString(m2)
	if s1 != s2 {
		t.Errorf("module round trip not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
}

// TestAllWorkloadsParse parses every bundled PS source.
func TestAllWorkloadsParse(t *testing.T) {
	for name, src := range map[string]string{
		"Relaxation": psrc.Relaxation, "RelaxationGS": psrc.RelaxationGS,
		"Heat1D": psrc.Heat1D, "Prefix": psrc.Prefix, "Smooth": psrc.Smooth,
		"Pipeline": psrc.Pipeline, "Wavefront2D": psrc.Wavefront2D,
	} {
		if _, err := parser.ParseProgram(name, src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// quick.Check keeps the testing/quick import referenced in builds
	// where other property tests are filtered out.
	_ = quick.Config{}
	_ = strings.TrimSpace
}
