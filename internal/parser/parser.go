// Package parser implements a recursive-descent parser for PS source text.
//
// The grammar follows the paper's Figure 1 and §2 prose:
//
//	Program    = { Module } .
//	Module     = ident ":" "module" "(" [ Params ] ")" ":"
//	             "[" Params "]" ";" Sections "end" ident ";" .
//	Params     = Param { ";" Param } ;  Param = IdentList ":" Type .
//	Sections   = [ "type" { IdentList "=" Type ";" } ]
//	             [ "var" { IdentList ":" Type ";" } ]
//	             "define" { Equation } .
//	Equation   = Target { "," Target } "=" Expr ";" .
//	Target     = ident [ "[" Expr { "," Expr } "]" ] .
//	Type       = "array" "[" Dim {","Dim} "]" "of" Type | "record" ... "end"
//	           | "(" IdentList ")" | Expr [ ".." Expr ] .
//
// Expressions use Pascal precedence (relational < additive|or <
// multiplicative|and) with an `if ... then ... elsif ... else ...`
// conditional expression form.
package parser

import (
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parser holds parsing state for one source file.
type Parser struct {
	toks []lexer.Token
	pos  int
	errs *source.ErrorList
	file *source.File

	// pendingLabel is a label comment such as (*eq.1*) awaiting the next
	// equation in a define section.
	pendingLabel string
}

// ParseProgram parses a whole PS compilation unit.
func ParseProgram(name, src string) (*ast.Program, error) {
	p := newParser(name, src)
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		m := p.parseModule()
		if m != nil {
			prog.Modules = append(prog.Modules, m)
		}
		if p.errs.Len() > 20 {
			break
		}
	}
	if len(prog.Modules) == 0 && p.errs.Len() == 0 {
		p.errs.Addf(p.peek().Pos, "source contains no modules")
	}
	return prog, p.errs.Err()
}

// ParseModule parses a single module (convenience for sources holding one).
func ParseModule(name, src string) (*ast.Module, error) {
	prog, err := ParseProgram(name, src)
	if err != nil {
		return nil, err
	}
	return prog.Modules[0], nil
}

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	p := newParser("<expr>", src)
	e := p.parseExpr()
	if !p.at(token.EOF) {
		p.errs.Addf(p.peek().Pos, "unexpected %s after expression", p.peek())
	}
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func newParser(name, src string) *Parser {
	errs := source.NewErrorList(name)
	lx := lexer.New(name, src, errs, lexer.KeepComments())
	p := &Parser{errs: errs, file: lx.File()}
	for {
		t := lx.Next()
		p.toks = append(p.toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	p.skipComments()
	return p
}

// --- token stream helpers -------------------------------------------------

func (p *Parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peekN(n int) lexer.Token {
	i := p.pos
	for n > 0 && i < len(p.toks)-1 {
		i++
		for p.toks[i].Kind == token.COMMENT && i < len(p.toks)-1 {
			i++
		}
		n--
	}
	return p.toks[i]
}

func (p *Parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	p.skipComments()
	return t
}

// skipComments advances over comment tokens, remembering label comments
// like (*eq.1*) so the next equation can adopt the label.
func (p *Parser) skipComments() {
	for p.toks[p.pos].Kind == token.COMMENT {
		text := strings.TrimSuffix(strings.TrimPrefix(p.toks[p.pos].Lit, "(*"), "*)")
		text = strings.TrimSpace(text)
		if text != "" && !strings.ContainsAny(text, " \t\n") && !strings.HasPrefix(text, "$") && len(text) <= 24 {
			p.pendingLabel = text
		}
		if p.pos < len(p.toks)-1 {
			p.pos++
		} else {
			break
		}
	}
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %q, found %s", k.String(), p.peek())
	return lexer.Token{Kind: k, Pos: p.peek().Pos, End: p.peek().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs.Addf(p.peek().Pos, format, args...)
}

// sync skips tokens until after the next semicolon (or a section keyword),
// for error recovery.
func (p *Parser) sync() {
	for {
		switch p.peek().Kind {
		case token.EOF, token.TYPE, token.VAR, token.DEFINE, token.END:
			return
		case token.SEMI:
			p.next()
			return
		}
		p.next()
	}
}

// --- declarations -----------------------------------------------------------

func (p *Parser) parseModule() *ast.Module {
	name := p.parseIdent()
	p.expect(token.COLON)
	p.expect(token.MODULE)
	m := &ast.Module{Name: name}

	p.expect(token.LPAREN)
	if !p.at(token.RPAREN) {
		m.Params = p.parseParamList(token.RPAREN)
	}
	p.expect(token.RPAREN)
	p.expect(token.COLON)
	p.expect(token.LBRACK)
	if !p.at(token.RBRACK) {
		m.Results = p.parseParamList(token.RBRACK)
	}
	p.expect(token.RBRACK)
	p.expect(token.SEMI)

	if p.at(token.TYPE) {
		p.next()
		for p.at(token.IDENT) {
			m.Types = append(m.Types, p.parseTypeDecl())
		}
	}
	if p.at(token.VAR) {
		p.next()
		for p.at(token.IDENT) {
			m.Vars = append(m.Vars, p.parseVarDecl())
		}
	}
	p.expect(token.DEFINE)
	for p.at(token.IDENT) {
		eq := p.parseEquation()
		if eq != nil {
			m.Eqs = append(m.Eqs, eq)
		}
	}
	endTok := p.expect(token.END)
	m.EndPos = endTok.End
	if p.at(token.IDENT) {
		closing := p.parseIdent()
		if !strings.EqualFold(closing.Name, name.Name) {
			p.errs.Addf(closing.Pos(), "module %s closed with 'end %s'", name.Name, closing.Name)
		}
		m.EndPos = closing.End()
	}
	if p.at(token.SEMI) {
		p.next()
	}
	return m
}

func (p *Parser) parseParamList(stop token.Kind) []*ast.Param {
	var params []*ast.Param
	for {
		names := p.parseIdentList()
		p.expect(token.COLON)
		typ := p.parseType()
		params = append(params, &ast.Param{Names: names, Type: typ})
		if !p.at(token.SEMI) {
			return params
		}
		p.next()
		if p.at(stop) { // tolerate trailing separator
			return params
		}
	}
}

func (p *Parser) parseTypeDecl() *ast.TypeDecl {
	names := p.parseIdentList()
	p.expect(token.EQ)
	typ := p.parseType()
	p.expect(token.SEMI)
	return &ast.TypeDecl{Names: names, Type: typ}
}

func (p *Parser) parseVarDecl() *ast.VarDecl {
	names := p.parseIdentList()
	p.expect(token.COLON)
	typ := p.parseType()
	p.expect(token.SEMI)
	return &ast.VarDecl{Names: names, Type: typ}
}

func (p *Parser) parseIdentList() []*ast.Ident {
	list := []*ast.Ident{p.parseIdent()}
	for p.at(token.COMMA) {
		p.next()
		list = append(list, p.parseIdent())
	}
	return list
}

func (p *Parser) parseIdent() *ast.Ident {
	t := p.expect(token.IDENT)
	return &ast.Ident{Name: t.Lit, NamePos: t.Pos, NameEnd: t.End}
}

// --- types -------------------------------------------------------------------

func (p *Parser) parseType() ast.TypeExpr {
	switch p.peek().Kind {
	case token.ARRAY:
		return p.parseArrayType()
	case token.RECORD:
		return p.parseRecordType()
	case token.LPAREN:
		if p.isEnumAhead() {
			return p.parseEnumType()
		}
	}
	// Subrange (lo .. hi) or a plain type name.
	lo := p.parseSimpleExpr()
	if p.at(token.DOTDOT) {
		p.next()
		hi := p.parseSimpleExpr()
		return &ast.SubrangeType{Lo: lo, Hi: hi}
	}
	if id, ok := lo.(*ast.Ident); ok {
		return &ast.TypeName{Name: id}
	}
	p.errorf("expected type, found expression %q", ast.ExprString(lo))
	return &ast.TypeName{Name: &ast.Ident{Name: "<error>", NamePos: lo.Pos(), NameEnd: lo.End()}}
}

// isEnumAhead reports whether the upcoming '(' begins an enumeration type
// rather than a parenthesized subrange bound: "( ident {, ident} )" not
// followed by "..", an operator, or "." .
func (p *Parser) isEnumAhead() bool {
	i := 1
	if p.peekN(i).Kind != token.IDENT {
		return false
	}
	i++
	for p.peekN(i).Kind == token.COMMA {
		i++
		if p.peekN(i).Kind != token.IDENT {
			return false
		}
		i++
	}
	if p.peekN(i).Kind != token.RPAREN {
		return false
	}
	after := p.peekN(i + 1).Kind
	switch after {
	case token.DOTDOT, token.PLUS, token.MINUS, token.STAR, token.SLASH, token.DIV, token.MOD:
		return false
	}
	return true
}

func (p *Parser) parseArrayType() *ast.ArrayType {
	arr := p.expect(token.ARRAY)
	p.expect(token.LBRACK)
	var dims []ast.TypeExpr
	dims = append(dims, p.parseType())
	for p.at(token.COMMA) {
		p.next()
		dims = append(dims, p.parseType())
	}
	p.expect(token.RBRACK)
	p.expect(token.OF)
	elem := p.parseType()
	return &ast.ArrayType{ArrayPos: arr.Pos, Dims: dims, Elem: elem}
}

func (p *Parser) parseRecordType() *ast.RecordType {
	rec := p.expect(token.RECORD)
	var fields []*ast.FieldDecl
	for p.at(token.IDENT) {
		names := p.parseIdentList()
		p.expect(token.COLON)
		typ := p.parseType()
		fields = append(fields, &ast.FieldDecl{Names: names, Type: typ})
		if p.at(token.SEMI) {
			p.next()
		} else {
			break
		}
	}
	end := p.expect(token.END)
	return &ast.RecordType{RecordPos: rec.Pos, Fields: fields, EndPos: end.End}
}

func (p *Parser) parseEnumType() *ast.EnumType {
	lp := p.expect(token.LPAREN)
	names := p.parseIdentList()
	rp := p.expect(token.RPAREN)
	return &ast.EnumType{Lparen: lp.Pos, Names: names, Rparen: rp.End}
}

// --- equations ----------------------------------------------------------------

func (p *Parser) parseEquation() *ast.Equation {
	label := p.pendingLabel
	p.pendingLabel = ""
	targets := []*ast.Target{p.parseTarget()}
	for p.at(token.COMMA) {
		p.next()
		targets = append(targets, p.parseTarget())
	}
	if !p.at(token.EQ) {
		p.errorf("expected '=' in equation, found %s", p.peek())
		p.sync()
		return nil
	}
	p.next()
	rhs := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.Equation{Targets: targets, RHS: rhs, Label: label}
}

func (p *Parser) parseTarget() *ast.Target {
	name := p.parseIdent()
	t := &ast.Target{Name: name}
	if p.at(token.LBRACK) {
		p.next()
		t.Subs = append(t.Subs, p.parseExpr())
		for p.at(token.COMMA) {
			p.next()
			t.Subs = append(t.Subs, p.parseExpr())
		}
		rb := p.expect(token.RBRACK)
		t.RbrackEnd = rb.End
	}
	return t
}

// --- expressions ----------------------------------------------------------------

// parseExpr parses a full expression including conditional expressions.
func (p *Parser) parseExpr() ast.Expr {
	if p.at(token.IF) {
		return p.parseIfExpr()
	}
	return p.parseBinary(1)
}

// parseSimpleExpr parses an expression that cannot be a conditional; used
// for subrange bounds where `..` follows.
func (p *Parser) parseSimpleExpr() ast.Expr {
	return p.parseBinary(1)
}

func (p *Parser) parseIfExpr() ast.Expr {
	ifTok := p.expect(token.IF)
	cond := p.parseBinary(1)
	p.expect(token.THEN)
	then := p.parseExpr()
	x := &ast.IfExpr{IfPos: ifTok.Pos, Cond: cond, Then: then}
	for p.at(token.ELSIF) {
		p.next()
		c := p.parseBinary(1)
		p.expect(token.THEN)
		t := p.parseExpr()
		x.Elifs = append(x.Elifs, ast.ElseIf{Cond: c, Then: t})
	}
	p.expect(token.ELSE)
	x.Else = p.parseExpr()
	return x
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.peek().Kind
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.peek().Kind {
	case token.MINUS, token.PLUS, token.NOT:
		t := p.next()
		x := p.parseUnary()
		return &ast.Unary{Op: t.Kind, OpPos: t.Pos, X: x}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.peek().Kind {
		case token.LBRACK:
			lb := p.next()
			var subs []ast.Expr
			subs = append(subs, p.parseExpr())
			for p.at(token.COMMA) {
				p.next()
				subs = append(subs, p.parseExpr())
			}
			rb := p.expect(token.RBRACK)
			// Flatten A[i][j] into a single Index with two subscripts so
			// subscript positions match array dimensions.
			if prev, ok := x.(*ast.Index); ok {
				prev.Subs = append(prev.Subs, subs...)
				prev.Rbrack = rb.End
				x = prev
			} else {
				x = &ast.Index{Base: x, Lbrack: lb.Pos, Subs: subs, Rbrack: rb.End}
			}
		case token.DOT:
			p.next()
			sel := p.parseIdent()
			x = &ast.Field{Base: x, Sel: sel}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case token.IDENT:
		id := p.parseIdent()
		if p.at(token.LPAREN) {
			lp := p.next()
			call := &ast.Call{Fun: id, Lparen: lp.Pos}
			if !p.at(token.RPAREN) {
				call.Args = append(call.Args, p.parseExpr())
				for p.at(token.COMMA) {
					p.next()
					call.Args = append(call.Args, p.parseExpr())
				}
			}
			rp := p.expect(token.RPAREN)
			call.Rparen = rp.End
			return call
		}
		return id
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errs.Addf(t.Pos, "invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{Value: v, Lit: t.Lit, LitPos: t.Pos, LitEnd: t.End}
	case token.REAL:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errs.Addf(t.Pos, "invalid real literal %q: %v", t.Lit, err)
		}
		return &ast.RealLit{Value: v, Lit: t.Lit, LitPos: t.Pos, LitEnd: t.End}
	case token.TRUE, token.FALSE:
		p.next()
		return &ast.BoolLit{Value: t.Kind == token.TRUE, LitPos: t.Pos, LitEnd: t.End}
	case token.STRING:
		p.next()
		return &ast.StringLit{Value: t.Lit, LitPos: t.Pos, LitEnd: t.End}
	case token.CHAR:
		p.next()
		return &ast.CharLit{Value: []rune(t.Lit)[0], LitPos: t.Pos, LitEnd: t.End}
	case token.LPAREN:
		lp := p.next()
		x := p.parseExpr()
		rp := p.expect(token.RPAREN)
		return &ast.Paren{LP: lp.Pos, X: x, RP: rp.End}
	case token.IF:
		return p.parseIfExpr()
	}
	p.errorf("expected expression, found %s", t)
	p.next()
	return &ast.IntLit{Value: 0, Lit: "0", LitPos: t.Pos, LitEnd: t.End}
}
