package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
)

// addTestdataSeeds seeds f with every checked-in .ps program:
// testdata/ proper and the testdata/fuzz/ differential-fuzzing corpus.
// New corpus programs become front-end fuzz seeds automatically.
func addTestdataSeeds(f *testing.F) {
	f.Helper()
	for _, pattern := range []string{"../../testdata/*.ps", "../../testdata/fuzz/*.ps"} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
}

// FuzzParse feeds arbitrary source text through the full front end:
// lexing, parsing and — when a program parses — semantic checking. The
// invariant is purely "no panic, no hang": malformed input must come
// back as diagnostics, never as a crash. The seed corpus covers the
// whole psrc corpus, every checked-in testdata/ program, plus inputs
// shaped like the historical sharp edges (unterminated strings and
// comments, stray pragmas, deep nesting, half-finished declarations).
func FuzzParse(f *testing.F) {
	addTestdataSeeds(f)
	for _, seed := range []string{
		psrc.Relaxation,
		psrc.RelaxationGS,
		psrc.Heat1D,
		psrc.Prefix,
		psrc.Smooth,
		psrc.Pipeline,
		psrc.Wavefront2D,
		"",
		"M: module (x: real): [y: real];\ndefine y = x; end M;",
		"(* unterminated comment",
		`S: module (c: string): [d: string]; define d = "unterminated`,
		"(*$m+v+x+t-*)\nP: module",
		"A: module (): [b: array [I] of real];\ntype I = 0 .. ;",
		"X: module (n: int): [m: int]; define m = ((((((((((n))))))))));\nend X;",
		"type I = 0 .. 10; define",
		"B: module (n: int): [r: real];\ndefine r = if n = 0 then 1.0 else 2.0; end B;",
		"\x00\x01\xff",
		"C: module (n: int): [r: int]; define r = n div 0; end C;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram("fuzz.ps", src)
		if err != nil || prog == nil {
			return
		}
		// Anything that parses must also survive the checker without
		// panicking (diagnostics are fine).
		_, _ = sem.Check(prog)
	})
}

// FuzzParseExpr exercises the expression sub-grammar directly.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"1 + 2 * x",
		"if a then b else c",
		"A[K-1,I,J]",
		"sqrt(abs(x)) / (y - 1.0)",
		"f(g(h(1)), 'c', \"s\")",
		"-(-(-x))",
		"a and not b or c <= d",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = parser.ParseExpr(src)
	})
}
