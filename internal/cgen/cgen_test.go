package cgen_test

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

func generate(t *testing.T, src, modName string, opts cgen.Options) (string, *sem.Module, *core.Schedule) {
	t.Helper()
	prog, err := parser.ParseProgram("t.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Module(modName)
	sched, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	c, err := cgen.Generate(m, plan.Lower(m, sched, plan.Options{}), opts)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return c, m, sched
}

// TestGeneratedCShape checks the structural properties the paper
// describes: annotated DO/DOALL loops and the window-2 allocation.
func TestGeneratedCShape(t *testing.T) {
	c, _, _ := generate(t, psrc.Relaxation, "Relaxation", cgen.Options{OpenMP: true})
	for _, want := range []string{
		"Relaxation_result Relaxation(const double *InitialA, long M, long maxK)",
		"/* DOALL I */",
		"/* DOALL J */",
		"/* DO K */",
		"#pragma omp parallel for",
		"const long A_d0_n = 2; /* virtual: window of 2 planes */",
		"for (long K = K_lo; K <= K_hi; K++) {",
		"%% A_d0_n", // modular window addressing
	} {
		probe := strings.ReplaceAll(want, "%%", "%")
		if !strings.Contains(c, probe) {
			t.Errorf("generated C missing %q\n%s", probe, c)
		}
	}
	// The iterative K loop must contain the two parallel loops.
	kAt := strings.Index(c, "/* DO K */")
	iAt := strings.Index(c[kAt:], "/* DOALL I */")
	if kAt < 0 || iAt < 0 {
		t.Error("DO K does not enclose DOALL I")
	}
}

// TestGeneratedCNoVirtual checks the ablation path: full allocation.
func TestGeneratedCNoVirtual(t *testing.T) {
	c, _, _ := generate(t, psrc.Relaxation, "Relaxation", cgen.Options{NoVirtual: true})
	if strings.Contains(c, "virtual: window") {
		t.Error("NoVirtual output still contains a window allocation")
	}
	if !strings.Contains(c, "const long A_d0_n = A_d0_hi - A_d0_lo + 1;") {
		t.Error("NoVirtual output missing physical plane count")
	}
}

// ccValidate is the shared compile-run-compare harness for the cc
// validation tests: it generates C for the (M, maxK)-shaped module
// modName of src under planOpts and genOpts, appends a main that seeds
// the standard (M+2)² grid, builds it with every cc flag set, runs the
// binaries, and requires every printed element to be bitwise equal to
// the interpreter's sequential result. A flag set containing -fopenmp
// that fails to compile is logged and skipped (old compilers); every
// other build failure is fatal. Skipped entirely when no C compiler is
// installed.
func ccValidate(t *testing.T, src, modName string, planOpts plan.Options, genOpts cgen.Options, flagSets [][]string, m, maxK int64, requireWavefront bool) {
	t.Helper()
	ccPath, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	prog, err := parser.ParseProgram("t.ps", src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod := cp.Module(modName)
	schd, err := core.Build(depgraph.Build(mod))
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Lower(mod, schd, planOpts)
	if requireWavefront && !pl.HasWavefront() {
		t.Fatal("auto-hyperplane lowering produced no wavefront step")
	}
	cSrc, err := cgen.Generate(mod, pl, genOpts)
	if err != nil {
		t.Fatal(err)
	}

	main := fmt.Sprintf(`
#include <stdio.h>
int main(void) {
    long M = %d, maxK = %d;
    long n = (M+2)*(M+2);
    double *in = malloc(sizeof(double)*n);
    for (long i = 0; i <= M+1; i++)
        for (long j = 0; j <= M+1; j++) {
            double v = 0;
            if (i > 0 && i <= M && j > 0 && j <= M) v = (double)((i*31+j*17)%%19)/19.0;
            in[i*(M+2)+j] = v;
        }
    %s_result r = %s(in, M, maxK);
    for (long i = 0; i < n; i++) printf("%%.17g\n", r.newA[i]);
    return 0;
}
`, m, maxK, modName, modName)

	ip, err := interp.Compile(cp)
	if err != nil {
		t.Fatal(err)
	}
	in := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: m + 1}, {Lo: 0, Hi: m + 1}})
	for i := int64(0); i <= m+1; i++ {
		for j := int64(0); j <= m+1; j++ {
			var v float64
			if i > 0 && i <= m && j > 0 && j <= m {
				v = float64((i*31+j*17)%19) / 19.0
			}
			in.SetF([]int64{i, j}, v)
		}
	}
	res, err := ip.Run(modName, []any{in, m, maxK}, interp.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	want := res[0].(*value.Array)

	dir := t.TempDir()
	cFile := filepath.Join(dir, "mod.c")
	if err := os.WriteFile(cFile, []byte(cSrc+main), 0o644); err != nil {
		t.Fatal(err)
	}
	for vi, flags := range flagSets {
		bin := filepath.Join(dir, fmt.Sprintf("mod_%d", vi))
		args := append(append([]string{}, flags...), "-o", bin, cFile, "-lm")
		if out, err := exec.Command(ccPath, args...).CombinedOutput(); err != nil {
			if slices.Contains(flags, "-fopenmp") {
				t.Logf("cc has no -fopenmp (%v); skipping that variant\n%s", err, out)
				continue
			}
			t.Fatalf("cc %v failed: %v\n%s\n--- generated C ---\n%s", flags, err, out, cSrc)
		}
		got, err := exec.Command(bin).Output()
		if err != nil {
			t.Fatalf("run (%v): %v", flags, err)
		}
		lines := strings.Fields(strings.TrimSpace(string(got)))
		if len(lines) != int((m+2)*(m+2)) {
			t.Fatalf("C binary printed %d values, want %d", len(lines), (m+2)*(m+2))
		}
		k := 0
		for i := int64(0); i <= m+1; i++ {
			for j := int64(0); j <= m+1; j++ {
				cv, err := strconv.ParseFloat(lines[k], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", lines[k], err)
				}
				if iv := want.GetF([]int64{i, j}); cv != iv {
					t.Fatalf("cc %v element [%d,%d]: C %g, interpreter %g", flags, i, j, cv, iv)
				}
				k++
			}
		}
	}
}

// TestCompiledCMatchesInterpreter generates C for the relaxation module,
// compiles it with the system C compiler, runs it, and compares every
// element against the interpreter — validating the paper's actual
// artifact end to end.
func TestCompiledCMatchesInterpreter(t *testing.T) {
	ccValidate(t, psrc.Relaxation, "Relaxation", plan.Options{}, cgen.Options{},
		[][]string{{"-O2"}}, 8, 5, false)
}

// TestGeneratedCWavefrontShape checks the auto-hyperplane C output: the
// skewed nest with the plane loops under the OpenMP pragma, per-plane
// bound tightening, the T⁻¹ remap and the preimage guard.
func TestGeneratedCWavefrontShape(t *testing.T) {
	prog, err := parser.ParseProgram("t.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Module("Relaxation")
	sched, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Lower(m, sched, plan.Options{Hyperplane: true})
	if !pl.HasWavefront() {
		t.Fatal("auto-hyperplane lowering produced no wavefront step")
	}
	c, err := cgen.Generate(m, pl, cgen.Options{OpenMP: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"/* WAVEFRONT K, I, J: t = 2*K + I + J (pi = (2,1,1), window 3) */",
		"for (long wf_0 = wf_box_lo_0; wf_0 <= wf_box_hi_0; wf_0++)",
		"#pragma omp parallel for collapse(2)",
		"const long J = wf_0 - 2*wf_1 - wf_2;",
		"if (K >= K_lo && K <= K_hi && I >= I_lo && I <= I_hi && J >= J_lo && J <= J_hi)",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("wavefront C missing %q\n%s", want, c)
		}
	}
	// The transformed subrange's window must be dropped: the wavefront
	// interleaves K planes, so A is allocated physically.
	if strings.Contains(c, "virtual: window") {
		t.Errorf("wavefront C still window-allocates the transformed array:\n%s", c)
	}
}

// TestCompiledCWavefrontMatchesInterpreter compiles the auto-hyperplane
// C for the Gauss-Seidel module with the system C compiler, runs it,
// and compares every element against the interpreter's sequential run -
// the barrier wavefront nest validated end to end through the C
// backend.
func TestCompiledCWavefrontMatchesInterpreter(t *testing.T) {
	ccValidate(t, psrc.RelaxationGS, "Relaxation", plan.Options{Hyperplane: true},
		cgen.Options{}, [][]string{{"-O2"}}, 9, 6, true)
}

// TestGeneratedCDoacrossShape checks the doacross wavefront form: the
// whole transformed box as one perfectly nested rectangular nest under
// "#pragma omp for ordered(n)", one depend(sink:) vector per distinct
// transformed dependence, and the depend(source) completion mark.
func TestGeneratedCDoacrossShape(t *testing.T) {
	prog, err := parser.ParseProgram("t.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Module("Relaxation")
	schd, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Lower(m, schd, plan.Options{Hyperplane: true})
	c, err := cgen.Generate(m, pl, cgen.Options{OpenMP: true, Schedule: sched.PolicyDoacross})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"/* WAVEFRONT K, I, J: t = 2*K + I + J (pi = (2,1,1), window 3, doacross) */",
		"#pragma omp for ordered(3) schedule(static, 1)",
		// GS transformed deps: (2,1,0),(1,0,0),(1,0,1),(1,1,0),(1,1,-1).
		"depend(sink: wf_0-2,wf_1-1,wf_2)",
		"depend(sink: wf_0-1,wf_1,wf_2)",
		"depend(sink: wf_0-1,wf_1,wf_2-1)",
		"depend(sink: wf_0-1,wf_1-1,wf_2)",
		"depend(sink: wf_0-1,wf_1-1,wf_2+1)",
		"#pragma omp ordered depend(source)",
		"const long J = wf_0 - 2*wf_1 - wf_2;",
		"if (K >= K_lo && K <= K_hi && I >= I_lo && I <= I_hi && J >= J_lo && J <= J_hi)",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("doacross C missing %q\n%s", want, c)
		}
	}
	// The doacross nest is rectangular: no per-plane tightening locals.
	if strings.Contains(c, "wf_lo_") {
		t.Errorf("doacross C still tightens plane bounds (non-rectangular ordered nest):\n%s", c)
	}
	// Without the doacross schedule the barrier form is unchanged.
	barrier, err := cgen.Generate(m, pl, cgen.Options{OpenMP: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(barrier, "ordered(") {
		t.Errorf("barrier C contains doacross pragmas:\n%s", barrier)
	}
}

// TestCompiledCDoacrossMatchesInterpreter compiles the doacross form
// (omp ordered/depend) and compares every element against the
// interpreter. Without -fopenmp the pragmas are inert and the nest runs
// the sweep sequentially in wavefront order; the -fopenmp variant
// validates the parallel doacross binary when the compiler supports it.
func TestCompiledCDoacrossMatchesInterpreter(t *testing.T) {
	ccValidate(t, psrc.RelaxationGS, "Relaxation", plan.Options{Hyperplane: true},
		cgen.Options{OpenMP: true, Schedule: sched.PolicyDoacross},
		[][]string{{"-O2"}, {"-fopenmp", "-O2"}}, 9, 6, true)
}

// TestGeneratedCPipeline checks module-call code generation.
func TestGeneratedCPipeline(t *testing.T) {
	prog, err := parser.ParseProgram("t.ps", psrc.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	var full strings.Builder
	for _, name := range []string{"Smooth", "Pipeline"} {
		m := cp.Module(name)
		sched, err := core.Build(depgraph.Build(m))
		if err != nil {
			t.Fatal(err)
		}
		c, err := cgen.Generate(m, plan.Lower(m, sched, plan.Options{}), cgen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		full.WriteString(c)
	}
	out := full.String()
	if !strings.Contains(out, "Smooth_result") || !strings.Contains(out, "= Smooth(") {
		t.Errorf("pipeline C missing module call:\n%s", out)
	}
}

// TestGeneratedCMultiKernelWavefrontShape checks the multi-equation
// wavefront C: both group assignments appear inside one skewed nest —
// under the same preimage guard, in group order — for the barrier form,
// and under the same ordered(n)/depend(sink:) pragmas for the doacross
// form.
func TestGeneratedCMultiKernelWavefrontShape(t *testing.T) {
	prog, err := parser.ParseProgram("t.ps", psrc.CoupledGrid)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Module("CoupledGrid")
	schd, err := core.Build(depgraph.Build(m))
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Lower(m, schd, plan.Options{Hyperplane: true})
	if !pl.HasWavefront() {
		t.Fatal("auto-hyperplane lowering produced no wavefront step")
	}

	barrier, err := cgen.Generate(m, pl, cgen.Options{OpenMP: true})
	if err != nil {
		t.Fatal(err)
	}
	doacross, err := cgen.Generate(m, pl, cgen.Options{OpenMP: true, Schedule: sched.PolicyDoacross})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]string{"barrier": barrier, "doacross": doacross} {
		// One wavefront comment, two assignments inside it, exactly one
		// preimage guard: the group shares the nest.
		if n := strings.Count(c, "/* WAVEFRONT"); n != 1 {
			t.Errorf("%s C has %d wavefront nests, want 1:\n%s", name, n, c)
		}
		guardAt := strings.Index(c, "if (I >= I_lo && I <= I_hi && J >= J_lo && J <= J_hi)")
		if guardAt < 0 {
			t.Fatalf("%s C missing the preimage guard:\n%s", name, c)
		}
		inGuard := c[guardAt:]
		va := strings.Index(inGuard, "/* eq.2 */") // V's assignment (group order first)
		ua := strings.Index(inGuard, "/* eq.1 */")
		if va < 0 || ua < 0 || va > ua {
			t.Errorf("%s C does not run both kernels in group order inside the guard (eq.2 at %d, eq.1 at %d)", name, va, ua)
		}
	}
	if !strings.Contains(doacross, "#pragma omp for ordered(2) schedule(static, 1)") {
		t.Errorf("doacross C missing the ordered pragma:\n%s", doacross)
	}
	// The union's two distinct transformed dependences, deduplicated.
	for _, want := range []string{"depend(sink: wf_0-1,wf_1)", "depend(sink: wf_0-1,wf_1-1)"} {
		if !strings.Contains(doacross, want) {
			t.Errorf("doacross C missing %q", want)
		}
	}
}

// TestCompiledCMultiKernelWavefrontMatchesInterpreter compiles the
// multi-equation wavefront C — barrier form plain, doacross form with
// and without -fopenmp — and compares every element against the
// interpreter's sequential run (the ISSUE 5 acceptance artifact).
func TestCompiledCMultiKernelWavefrontMatchesInterpreter(t *testing.T) {
	ccValidate(t, psrc.CoupledGrid, "CoupledGrid", plan.Options{Hyperplane: true},
		cgen.Options{}, [][]string{{"-O2"}}, 9, 3, true)
	ccValidate(t, psrc.CoupledGrid, "CoupledGrid", plan.Options{Hyperplane: true},
		cgen.Options{OpenMP: true, Schedule: sched.PolicyDoacross},
		[][]string{{"-O2"}, {"-fopenmp", "-O2"}}, 9, 3, true)
}

// TestGeneratedCMinMaxNaN pins the NaN and signed-zero semantics of
// real min/max in the generated C. The interpreter evaluates them with
// Go's math.Min/math.Max, which propagate NaN and order -0 below +0;
// C's fmin/fmax ignore NaN operands, so the generator must emit its
// own ps_fmin/ps_fmax helpers instead of calling libm. Structurally
// the output must define the helpers and never call bare fmin/fmax;
// behaviourally the compiled code must return NaN for min(x, NaN) and
// +0 for max(+0, -0), bitwise-matching the interpreter.
func TestGeneratedCMinMaxNaN(t *testing.T) {
	src := `
MinMax: module (A: array[I] of real; N: int):
    [Lo2: array[I] of real; Hi2: array[I] of real];
type I = 1 .. N;
define
    Lo2[I] = min(A[I], (A[I] - A[I]) / (A[I] - A[I]));
    Hi2[I] = max(A[I] * 0.0, -(A[I] * 0.0));
end MinMax;
`
	c, _, _ := generate(t, src, "MinMax", cgen.Options{})
	for _, want := range []string{
		"static inline double ps_fmin(double a, double b)",
		"static inline double ps_fmax(double a, double b)",
		"ps_fmin(", "ps_fmax(",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	for _, banned := range []string{" fmin(", " fmax(", "=fmin(", "=fmax(", " = fmin", " = fmax"} {
		if strings.Contains(c, banned) {
			t.Errorf("generated C calls libm %q, which drops NaN operands", strings.TrimLeft(banned, " ="))
		}
	}

	ccPath, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	const n = int64(6)
	prog, err := parser.ParseProgram("t.ps", src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := interp.Compile(cp)
	if err != nil {
		t.Fatal(err)
	}
	in := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: n}})
	for i := int64(1); i <= n; i++ {
		in.SetF([]int64{i}, float64(i-3)/4.0)
	}
	res, err := ip.Run("MinMax", []any{in, n}, interp.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}

	main := fmt.Sprintf(`
#include <stdio.h>
int main(void) {
    long N = %d;
    double in[%d];
    for (long i = 0; i < N; i++) in[i] = (double)(i - 2) / 4.0;
    MinMax_result r = MinMax(in, N);
    for (long i = 0; i < N; i++)
        if (isnan(r.Lo2[i])) printf("NaN\n"); else printf("%%.17g\n", r.Lo2[i]);
    for (long i = 0; i < N; i++)
        if (isnan(r.Hi2[i])) printf("NaN\n"); else printf("%%.17g\n", r.Hi2[i]);
    return 0;
}
`, n, n)
	dir := t.TempDir()
	cFile := filepath.Join(dir, "minmax.c")
	if err := os.WriteFile(cFile, []byte(c+main), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "minmax")
	if out, err := exec.Command(ccPath, "-O2", "-o", bin, cFile, "-lm").CombinedOutput(); err != nil {
		t.Fatalf("cc: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).Output()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(out)))
	if len(lines) != int(2*n) {
		t.Fatalf("C binary printed %d values, want %d", len(lines), 2*n)
	}
	for ri, name := range []string{"Lo2", "Hi2"} {
		want := res[ri].(*value.Array)
		for i := int64(1); i <= n; i++ {
			line := lines[int64(ri)*n+i-1]
			iv := want.GetF([]int64{i})
			if line == "NaN" {
				if !math.IsNaN(iv) {
					t.Errorf("%s[%d]: C NaN, interpreter %g", name, i, iv)
				}
				continue
			}
			cv, err := strconv.ParseFloat(line, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if math.IsNaN(iv) || math.Float64bits(cv) != math.Float64bits(iv) {
				t.Errorf("%s[%d]: C %g (%#x), interpreter %g (%#x)", name, i, cv, math.Float64bits(cv), iv, math.Float64bits(iv))
			}
		}
	}
}
