package source_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/source"
)

// TestPosFor verifies offset→line/column mapping.
func TestPosFor(t *testing.T) {
	f := source.NewFile("t.ps", "abc\ndef\n\nx")
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 1, 4}, // newline belongs to line 1
		{4, 2, 1}, {7, 2, 4},
		{8, 3, 1},
		{9, 4, 1},
	}
	for _, tc := range cases {
		p := f.PosFor(tc.off)
		if p.Line != tc.line || p.Column != tc.col {
			t.Errorf("PosFor(%d) = %d:%d, want %d:%d", tc.off, p.Line, p.Column, tc.line, tc.col)
		}
	}
	// Clamping.
	if p := f.PosFor(-5); p.Offset != 0 {
		t.Error("negative offset not clamped")
	}
	if p := f.PosFor(1000); p.Offset != len(f.Content) {
		t.Error("overlong offset not clamped")
	}
}

// TestLine verifies line extraction.
func TestLine(t *testing.T) {
	f := source.NewFile("t.ps", "first\nsecond\nthird")
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d", f.NumLines())
	}
	for i, want := range []string{"first", "second", "third"} {
		if got := f.Line(i + 1); got != want {
			t.Errorf("Line(%d) = %q, want %q", i+1, got, want)
		}
	}
	if f.Line(0) != "" || f.Line(9) != "" {
		t.Error("out-of-range lines not empty")
	}
}

// TestPosForProperty: for any content and valid offset, the returned
// position round-trips (the offset of line start + column - 1 == offset).
func TestPosForProperty(t *testing.T) {
	f := func(content string, offRaw uint16) bool {
		file := source.NewFile("f", content)
		if len(content) == 0 {
			return true
		}
		off := int(offRaw) % len(content)
		p := file.PosFor(off)
		if p.Offset != off || p.Line < 1 || p.Column < 1 {
			return false
		}
		// Count newlines before off to verify the line number.
		wantLine := 1 + strings.Count(content[:off], "\n")
		return p.Line == wantLine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestErrorList verifies ordering and formatting.
func TestErrorList(t *testing.T) {
	l := source.NewErrorList("file.ps")
	if l.Err() != nil {
		t.Error("empty list returned an error")
	}
	l.Addf(source.Pos{Offset: 30, Line: 3, Column: 1}, "later")
	l.Addf(source.Pos{Offset: 2, Line: 1, Column: 3}, "earlier %d", 7)
	err := l.Err()
	if err == nil {
		t.Fatal("non-empty list returned nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "file.ps:1:3: earlier 7") {
		t.Errorf("message %q missing formatted diagnostic", msg)
	}
	if strings.Index(msg, "earlier") > strings.Index(msg, "later") {
		t.Error("diagnostics not sorted by position")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

// TestPos covers the position primitives.
func TestPos(t *testing.T) {
	var zero source.Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Error("zero Pos misbehaves")
	}
	p := source.Pos{Offset: 5, Line: 2, Column: 1}
	q := source.Pos{Offset: 9, Line: 2, Column: 5}
	if !p.Before(q) || q.Before(p) {
		t.Error("Before ordering wrong")
	}
	if p.String() != "2:1" {
		t.Errorf("String = %q", p.String())
	}
	s := source.Span{Start: p, End: q}
	if s.String() != "2:1-2:5" {
		t.Errorf("Span = %q", s.String())
	}
}
