// Package source provides source positions, spans and diagnostic error
// lists shared by the lexer, parser and semantic analyzer.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a PS source file. Line and Column are 1-based;
// Offset is the 0-based byte offset. The zero Pos is "no position".
type Pos struct {
	Offset int
	Line   int
	Column int
}

// IsValid reports whether p denotes a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col" (or "-" if invalid).
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}

// Before reports whether p is strictly before q in the file.
func (p Pos) Before(q Pos) bool { return p.Offset < q.Offset }

// Span is a half-open region [Start, End) of source text.
type Span struct {
	Start Pos
	End   Pos
}

// String renders the span as "start-end".
func (s Span) String() string {
	return s.Start.String() + "-" + s.End.String()
}

// Diagnostic is a single compiler message attached to a position.
type Diagnostic struct {
	Pos  Pos
	Msg  string
	File string // optional file name for display
}

// Error implements the error interface.
func (d *Diagnostic) Error() string {
	if d.File != "" {
		return fmt.Sprintf("%s:%s: %s", d.File, d.Pos, d.Msg)
	}
	return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
}

// ErrorList accumulates diagnostics during a compilation phase. The zero
// value is ready to use.
type ErrorList struct {
	diags []*Diagnostic
	file  string
}

// NewErrorList returns an ErrorList that prefixes messages with file.
func NewErrorList(file string) *ErrorList {
	return &ErrorList{file: file}
}

// Addf records a formatted diagnostic at pos.
func (l *ErrorList) Addf(pos Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), File: l.file})
}

// Add records a pre-built diagnostic.
func (l *ErrorList) Add(d *Diagnostic) { l.diags = append(l.diags, d) }

// Len returns the number of recorded diagnostics.
func (l *ErrorList) Len() int { return len(l.diags) }

// Diagnostics returns the recorded diagnostics sorted by position.
func (l *ErrorList) Diagnostics() []*Diagnostic {
	out := make([]*Diagnostic, len(l.diags))
	copy(out, l.diags)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos.Before(out[j].Pos) })
	return out
}

// Err returns nil if the list is empty, otherwise an error whose message
// joins every diagnostic, one per line, in source order.
func (l *ErrorList) Err() error {
	if l == nil || len(l.diags) == 0 {
		return nil
	}
	return l
}

// Error implements the error interface for a non-empty list.
func (l *ErrorList) Error() string {
	ds := l.Diagnostics()
	msgs := make([]string, len(ds))
	for i, d := range ds {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// File wraps source text and maps byte offsets back to positions; it is
// used by tools that only retain offsets.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile indexes content for position lookups.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a full Pos.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Binary search for the line containing offset.
	lo, hi := 0, len(f.lines)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.lines[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Pos{Offset: offset, Line: lo + 1, Column: offset - f.lines[lo] + 1}
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Line returns the text of 1-based line n without its trailing newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1
	}
	if end < start {
		end = start
	}
	return f.Content[start:end]
}
