package psgen

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/sem"
	"repro/internal/value"
	"repro/ps"
)

// Options configure one differential check.
type Options struct {
	// CC is the C compiler path; "" skips the C parity leg.
	CC string
	// OpenMP also compiles the C leg with -fopenmp.
	OpenMP bool
	// Timeout is the per-run watchdog (default 10s). A run that
	// neither finishes nor honours cancellation within 2×Timeout is
	// reported as a hang.
	Timeout time.Duration
	// Quick restricts the variant matrix to one row per executor path
	// (the fuzz-engine configuration, where throughput buys coverage).
	Quick bool
}

// Finding is one divergence, invariant violation, panic or hang.
type Finding struct {
	Stage   string // "compile", "run", "compare", "stats", "cc", "hang"
	Variant string
	Detail  string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Stage, f.Variant, f.Detail)
}

// Outcome is the result of checking one generated program: which
// cascade backends its lowering reached, whether any kernel fell back
// to the generic evaluator, and every divergence found.
type Outcome struct {
	Spec Spec
	// Backends marks cascade backends this program's lowering reached:
	// "doall", "wavefront", "multi-wavefront", "pipeline",
	// "sequential-reject", plus the runtime-observed "doacross".
	Backends map[string]bool
	// SpecFallback reports that a non-strict parallel run executed at
	// least one equation instance on the generic checked kernel.
	SpecFallback bool
	Findings     []Finding
}

// Failed reports whether any finding was recorded.
func (o *Outcome) Failed() bool { return len(o.Findings) > 0 }

func (o *Outcome) addf(stage, variant, format string, args ...any) {
	o.Findings = append(o.Findings, Finding{Stage: stage, Variant: variant, Detail: fmt.Sprintf(format, args...)})
}

// variant is one row of the execution matrix.
type variant struct {
	name     string
	opts     []ps.RunOption
	traced   bool
	strict   bool // SpecializedKernels must be 0
	planes   bool // wavefront plane-count invariant applies
	doacross bool // forced doacross schedule
}

// matrix builds the variant rows. The first row is always the
// sequential reference.
func matrix(quick bool) []variant {
	if quick {
		return []variant{
			{name: "seq", opts: []ps.RunOption{ps.Sequential()}},
			{name: "w2", opts: []ps.RunOption{ps.Workers(2)}, planes: true},
			{name: "w2-fused", opts: []ps.RunOption{ps.Workers(2), ps.Fused()}},
			{name: "w2-doacross", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleDoacross)}, doacross: true},
			{name: "w2-pipeline", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.SchedulePipeline)}},
			{name: "w2-strict", opts: []ps.RunOption{ps.Workers(2), ps.Strict()}, strict: true},
			{name: "w2-traced", opts: []ps.RunOption{ps.Workers(2)}, traced: true},
		}
	}
	return []variant{
		{name: "seq", opts: []ps.RunOption{ps.Sequential()}},
		{name: "seq-fused", opts: []ps.RunOption{ps.Sequential(), ps.Fused()}},
		{name: "w1", opts: []ps.RunOption{ps.Workers(1)}},
		{name: "w2", opts: []ps.RunOption{ps.Workers(2)}, planes: true},
		{name: "w4", opts: []ps.RunOption{ps.Workers(4)}, planes: true},
		{name: "w2-hpoff", opts: []ps.RunOption{ps.Workers(2), ps.WithHyperplane(ps.HyperplaneOff)}},
		{name: "w2-fused", opts: []ps.RunOption{ps.Workers(2), ps.Fused()}},
		{name: "w2-barrier", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleBarrier)}, planes: true},
		{name: "w2-doacross", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleDoacross)}, planes: true, doacross: true},
		{name: "w4-doacross", opts: []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.ScheduleDoacross)}, planes: true, doacross: true},
		{name: "w2-pipeline", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.SchedulePipeline)}},
		{name: "w2-strict", opts: []ps.RunOption{ps.Workers(2), ps.Strict()}, strict: true},
		{name: "w2-nospec", opts: []ps.RunOption{ps.Workers(2), ps.NoSpecialize()}, strict: true},
		{name: "w2-noarena", opts: []ps.RunOption{ps.Workers(2), ps.NoArena()}},
		{name: "w2-novirtual", opts: []ps.RunOption{ps.Workers(2), ps.NoVirtual()}},
		{name: "w4-grain1", opts: []ps.RunOption{ps.Workers(4), ps.Grain(1)}},
		{name: "seq-traced", opts: []ps.RunOption{ps.Sequential()}, traced: true},
		{name: "w2-traced", opts: []ps.RunOption{ps.Workers(2)}, traced: true},
		{name: "w2-doacross-traced", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleDoacross)}, traced: true, doacross: true},
		{name: "w2-pipeline-traced", opts: []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.SchedulePipeline)}, traced: true},
	}
}

// runResult is one watched run.
type runResult struct {
	out   []any
	stats *ps.RunStats
	err   error
	hang  bool
}

// watchedRun executes one variant under the per-run watchdog. A run
// that ignores cancellation past the grace period is abandoned (its
// goroutine leaks — the caller reports the hang and moves on).
func watchedRun(ctx context.Context, prog *ps.Program, v variant, args []any, timeout time.Duration) runResult {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	done := make(chan runResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- runResult{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		run, err := prog.Prepare(ModuleName, v.opts...)
		if err != nil {
			done <- runResult{err: err}
			return
		}
		var r runResult
		if v.traced {
			r.out, r.stats, _, r.err = run.TraceRun(rctx, args)
		} else {
			r.out, r.stats, r.err = run.Run(rctx, args)
		}
		done <- r
	}()
	select {
	case r := <-done:
		return r
	case <-time.After(2 * timeout):
		return runResult{hang: true}
	}
}

// Check generates, lowers, runs and cross-checks one spec. It never
// returns a Go error: every failure mode is a Finding so campaigns can
// aggregate.
func Check(ctx context.Context, sp Spec, o Options) *Outcome {
	out := &Outcome{Spec: sp, Backends: map[string]bool{}}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	src := sp.Render()

	prog, err := ps.CompileProgram("psgen.ps", src)
	if err != nil {
		out.addf("compile", "-", "%v", err)
		return out
	}

	fe, perr := frontend(src)
	if perr != nil {
		out.addf("compile", "cascade", "%v", perr)
		return out
	}
	pl := plan.Lower(fe.mod, fe.schd, plan.Options{Hyperplane: true})
	classify(pl, out)

	args := sp.Inputs()
	rows := matrix(o.Quick)
	ref := watchedRun(ctx, prog, rows[0], args, o.Timeout)
	switch {
	case ref.hang:
		out.addf("hang", rows[0].name, "sequential reference did not finish in %s", 2*o.Timeout)
		return out
	case ref.err != nil:
		out.addf("run", rows[0].name, "%v", ref.err)
		return out
	}

	pi, planes := wavefrontGeometry(&sp, pl)
	for _, v := range rows[1:] {
		if ctx.Err() != nil {
			return out
		}
		r := watchedRun(ctx, prog, v, args, o.Timeout)
		switch {
		case r.hang:
			out.addf("hang", v.name, "run did not finish in %s", 2*o.Timeout)
			continue
		case r.err != nil:
			out.addf("run", v.name, "%v", r.err)
			continue
		}
		if diff := compareResults(ref.out, r.out); diff != "" {
			out.addf("compare", v.name, "diverges from sequential reference: %s", diff)
		}
		checkStats(out, &sp, v, ref.stats, r.stats, pl, pi, planes)
		if r.stats.DoacrossTiles > 0 {
			out.Backends["doacross"] = true
		}
		if !v.strict && r.stats.SpecializedKernels < r.stats.EquationInstances {
			out.SpecFallback = true
		}
	}

	if o.CC != "" {
		ccCheck(ctx, out, &sp, fe, pl, ref.out, o)
	}
	return out
}

// frontendResult is the front half of the pipeline, kept so the
// harness can inspect the scheduler cascade's Decision records and
// hand the same module to the C generator.
type frontendResult struct {
	mod  *sem.Module
	schd *core.Schedule
}

func frontend(src string) (*frontendResult, error) {
	parsed, err := parser.ParseProgram("psgen.ps", src)
	if err != nil {
		return nil, err
	}
	cp, err := sem.Check(parsed)
	if err != nil {
		return nil, err
	}
	m := cp.Module(ModuleName)
	if m == nil {
		return nil, fmt.Errorf("no module %s", ModuleName)
	}
	schd, err := core.Build(depgraph.Build(m))
	if err != nil {
		return nil, err
	}
	return &frontendResult{mod: m, schd: schd}, nil
}

// classify folds the cascade decisions into the outcome's backend set.
func classify(pl *plan.Program, out *Outcome) {
	for _, d := range pl.Cascade {
		switch d.Choice {
		case "doall":
			out.Backends["doall"] = true
		case "wavefront":
			st := &pl.Steps[d.Step]
			if kernels(pl, st) >= 2 {
				out.Backends["multi-wavefront"] = true
			} else {
				out.Backends["wavefront"] = true
			}
		case "pipeline":
			out.Backends["pipeline"] = true
		case "sequential":
			if len(d.Rejections) > 0 {
				out.Backends["sequential-reject"] = true
			}
		}
	}
}

// kernels counts the equation steps in a loop step's body.
func kernels(pl *plan.Program, st *plan.Step) int {
	n := 0
	for i := stepIndex(pl, st) + 1; i < st.End; i++ {
		if pl.Steps[i].Op == plan.OpEq {
			n++
		}
	}
	return n
}

func stepIndex(pl *plan.Program, st *plan.Step) int {
	for i := range pl.Steps {
		if &pl.Steps[i] == st {
			return i
		}
	}
	return -1
}

// wavefrontGeometry extracts the lowered plan's time vector and the
// exact plane count the spec's box implies. It applies only to the
// single-wavefront-nest shapes the generator emits (one wavefront
// step, not enclosed by any loop); anything else disables the plane
// invariant.
func wavefrontGeometry(sp *Spec, pl *plan.Program) (pi []int64, planes int64) {
	var steps []*plan.Step
	for i := range pl.Steps {
		if pl.Steps[i].Op == plan.OpWavefront {
			steps = append(steps, &pl.Steps[i])
		}
	}
	if len(steps) != 1 || steps[0].Hyper == nil {
		return nil, 0
	}
	pi = steps[0].Hyper.Pi
	n, err := sp.PlanesFor(pi)
	if err != nil {
		return nil, 0
	}
	return pi, n
}

// checkStats enforces the cross-variant counter invariants.
func checkStats(out *Outcome, sp *Spec, v variant, ref, st *ps.RunStats, pl *plan.Program, pi []int64, planes int64) {
	if st.EquationInstances != ref.EquationInstances {
		out.addf("stats", v.name, "EquationInstances = %d, sequential reference executed %d",
			st.EquationInstances, ref.EquationInstances)
	}
	if st.SpecializedKernels > st.EquationInstances {
		out.addf("stats", v.name, "SpecializedKernels = %d exceeds EquationInstances = %d",
			st.SpecializedKernels, st.EquationInstances)
	}
	if v.strict && st.SpecializedKernels != 0 {
		out.addf("stats", v.name, "SpecializedKernels = %d under a no-specialize variant", st.SpecializedKernels)
	}
	if v.planes && pi != nil && pl.HasWavefront() {
		if st.WavefrontPlanes != planes {
			out.addf("stats", v.name, "WavefrontPlanes = %d, geometry pi=%v over the box implies %d",
				st.WavefrontPlanes, pi, planes)
		}
		if v.doacross && st.DoacrossTiles < st.WavefrontPlanes {
			out.addf("stats", v.name, "DoacrossTiles = %d below WavefrontPlanes = %d",
				st.DoacrossTiles, st.WavefrontPlanes)
		}
	}
	if v.traced {
		checkTiming(out, v, st)
	}
}

// checkTiming enforces the per-worker accounting identity of traced
// runs: IdleNs is exactly the non-negative remainder of
// Workers×Wall − Compute − Stall − BarrierIdle.
func checkTiming(out *Outcome, v variant, st *ps.RunStats) {
	b := st.Timing
	if b == nil {
		out.addf("stats", v.name, "traced run returned no timing breakdown")
		return
	}
	for name, ns := range map[string]int64{
		"ComputeNs": b.ComputeNs, "DoacrossStallNs": b.DoacrossStallNs,
		"PipelineStallNs": b.PipelineStallNs, "BarrierIdleNs": b.BarrierIdleNs,
		"IdleNs": b.IdleNs, "WallNs": b.WallNs,
	} {
		if ns < 0 {
			out.addf("stats", v.name, "timing %s = %d is negative", name, ns)
		}
	}
	want := int64(b.Workers)*b.WallNs - b.ComputeNs - b.StallNs() - b.BarrierIdleNs
	if want < 0 {
		want = 0
	}
	if b.IdleNs != want {
		out.addf("stats", v.name, "timing identity broken: IdleNs = %d, want max(0, workers×wall − compute − stall − barrier_idle) = %d",
			b.IdleNs, want)
	}
}

// compareResults compares two result lists bitwise (NaNs of any
// payload compare equal). Empty string means identical.
func compareResults(want, got []any) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d results vs %d", len(want), len(got))
	}
	for i := range want {
		wa, wok := want[i].(*value.Array)
		ga, gok := got[i].(*value.Array)
		if wok != gok {
			return fmt.Sprintf("result %d: kind mismatch", i)
		}
		if !wok {
			if d := diffScalar(want[i], got[i]); d != "" {
				return fmt.Sprintf("result %d: %s", i, d)
			}
			continue
		}
		if d := diffArray(wa, ga); d != "" {
			return fmt.Sprintf("result %d: %s", i, d)
		}
	}
	return ""
}

func diffScalar(w, g any) string {
	wf, wok := w.(float64)
	gf, gok := g.(float64)
	if wok && gok {
		if !bitsEqual(wf, gf) {
			return fmt.Sprintf("%v != %v", wf, gf)
		}
		return ""
	}
	if w != g {
		return fmt.Sprintf("%v != %v", w, g)
	}
	return ""
}

func diffArray(w, g *value.Array) string {
	if len(w.Axes) != len(g.Axes) {
		return fmt.Sprintf("rank %d vs %d", len(w.Axes), len(g.Axes))
	}
	for d := range w.Axes {
		if w.Axes[d].Lo != g.Axes[d].Lo || w.Axes[d].Hi != g.Axes[d].Hi {
			return fmt.Sprintf("dim %d bounds [%d,%d] vs [%d,%d]", d, w.Axes[d].Lo, w.Axes[d].Hi, g.Axes[d].Lo, g.Axes[d].Hi)
		}
	}
	var diff string
	eachIndex(w.Axes, func(idx []int64) {
		if diff != "" {
			return
		}
		switch {
		case w.F != nil:
			a, b := w.GetF(idx), g.GetF(idx)
			if !bitsEqual(a, b) {
				diff = fmt.Sprintf("[%s]: %v (%#x) != %v (%#x)", idxString(idx), a, math.Float64bits(a), b, math.Float64bits(b))
			}
		case w.I != nil:
			if a, b := w.GetI(idx), g.GetI(idx); a != b {
				diff = fmt.Sprintf("[%s]: %d != %d", idxString(idx), a, b)
			}
		default:
			if a, b := w.Get(idx), g.Get(idx); a != b {
				diff = fmt.Sprintf("[%s]: %v != %v", idxString(idx), a, b)
			}
		}
	})
	return diff
}

// bitsEqual is bitwise float equality with all NaN payloads identified.
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func eachIndex(axes []value.Axis, f func(idx []int64)) {
	idx := make([]int64, len(axes))
	for i, ax := range axes {
		idx[i] = ax.Lo
	}
	if len(axes) == 0 {
		return
	}
	for {
		f(idx)
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] <= axes[k].Hi {
				break
			}
			idx[k] = axes[k].Lo
		}
		if k < 0 {
			return
		}
	}
}

func idxString(idx []int64) string {
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}
