package psgen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/ps"
)

// backendTarget maps each class to the Outcome.Backends key its
// programs must reach.
var backendTarget = map[Class]string{
	ClassDOALL:          "doall",
	ClassWavefront:      "wavefront",
	ClassMultiWavefront: "multi-wavefront",
	ClassDoacross:       "doacross",
	ClassPipeline:       "pipeline",
	ClassSequential:     "sequential-reject",
}

// TestGenerateDeterministic pins the generator's repro contract: the
// same (seed, class) renders the same source and the same inputs.
func TestGenerateDeterministic(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		a, b := Generate(7, c), Generate(7, c)
		if a.Render() != b.Render() {
			t.Errorf("%s: Render not deterministic", c)
		}
		ja, _ := a.InputsJSON()
		jb, _ := b.InputsJSON()
		if string(ja) != string(jb) {
			t.Errorf("%s: inputs not deterministic", c)
		}
	}
}

// TestEveryClassCompiles requires every generated program over a seed
// sweep to pass the full front end — the generator's "well-typed by
// construction" contract.
func TestEveryClassCompiles(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		for seed := uint64(0); seed < 25; seed++ {
			sp := Generate(seed, c)
			src := sp.Render()
			if _, err := ps.CompileProgram("gen.ps", src); err != nil {
				t.Fatalf("%s seed %d does not compile: %v\n%s", c, seed, err, src)
			}
		}
	}
}

// TestClassesLandInTargetBackend checks eligibility-awareness: each
// class's programs must deterministically reach their cascade backend
// (ClassDoacross lands via the wavefront lowering; its runtime tile
// counter is covered by TestCheckCleanAcrossClasses).
func TestClassesLandInTargetBackend(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c == ClassDoacross {
			continue
		}
		for seed := uint64(0); seed < 25; seed++ {
			sp := Generate(seed, c)
			fe, err := frontend(sp.Render())
			if err != nil {
				t.Fatalf("%s seed %d: %v", c, seed, err)
			}
			pl := plan.Lower(fe.mod, fe.schd, plan.Options{Hyperplane: true})
			out := &Outcome{Backends: map[string]bool{}}
			classify(pl, out)
			if !out.Backends[backendTarget[c]] {
				t.Errorf("%s seed %d did not reach %q; cascade:\n%s\n%s",
					c, seed, backendTarget[c], pl.CascadeReport(), sp.Render())
			}
		}
	}
}

// TestDoacrossClassLowersToWavefront pins the doacross class's
// geometry: wavefront-eligible, so the forced doacross schedule has
// planes to pipeline.
func TestDoacrossClassLowersToWavefront(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		sp := Generate(seed, ClassDoacross)
		fe, err := frontend(sp.Render())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pl := plan.Lower(fe.mod, fe.schd, plan.Options{Hyperplane: true})
		if !pl.HasWavefront() {
			t.Errorf("seed %d: doacross-class program has no wavefront step:\n%s", seed, sp.Render())
		}
	}
}

// TestCheckCleanAcrossClasses runs the quick differential matrix on a
// seed sweep of every class and expects zero findings — the harness's
// own no-false-positive bar. It also requires the sweep to observe
// runtime doacross tiles and at least one specializer fallback.
func TestCheckCleanAcrossClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	ctx := context.Background()
	sawDoacross, sawFallback := false, false
	for c := Class(0); c < NumClasses; c++ {
		for seed := uint64(0); seed < 6; seed++ {
			sp := Generate(seed, c)
			out := Check(ctx, sp, Options{Quick: true})
			for _, f := range out.Findings {
				t.Errorf("%s seed %d: %s\n%s", c, seed, f, sp.Render())
			}
			if out.Backends["doacross"] {
				sawDoacross = true
			}
			if out.SpecFallback {
				sawFallback = true
			}
		}
	}
	if !sawDoacross {
		t.Error("no program in the sweep executed doacross tiles")
	}
	if !sawFallback {
		t.Error("no program in the sweep fell back to the generic kernel")
	}
}

// TestShrinkIsSafeOnPassingSpec pins the shrinker's contract that a
// spec whose check passes is returned unchanged (nothing "fails
// smaller").
func TestShrinkIsSafeOnPassingSpec(t *testing.T) {
	sp := Generate(3, ClassDOALL)
	got := Shrink(context.Background(), sp, Options{Quick: true}, 10)
	if got.Render() != sp.Render() {
		t.Errorf("shrink changed a passing spec:\n%s\nvs\n%s", sp.Render(), got.Render())
	}
}

// TestReductionsShrinkTheProgram sanity-checks that every proposed
// reduction renders a program no larger than the original.
func TestReductionsShrinkTheProgram(t *testing.T) {
	sp := Generate(11, ClassPipeline)
	sp.Sibling, sp.Consumers = true, 2
	n := len(sp.Render())
	for _, c := range reductions(sp) {
		if len(c.Render()) > n {
			t.Errorf("reduction grew the program:\n%s", c.Render())
		}
	}
}

// TestGuardCoversOffsets pins the boundary-initializer math: every
// dependence read in a rendered recurrence stays inside the declared
// box, which the strict variant would catch dynamically — here we just
// check the guard mentions each boundary point.
func TestGuardCoversOffsets(t *testing.T) {
	sp := Spec{Dims: []Dim{{Name: "I", Lo: 1, Hi: 6}, {Name: "J", Lo: 1, Hi: 7}}}
	g := sp.guard([][]int64{{2, 1}, {0, 1}, {1, -1}})
	for _, want := range []string{"(I = 1)", "(I = 2)", "(J = 1)", "(J = 7)"} {
		if !strings.Contains(g, want) {
			t.Errorf("guard %q missing %q", g, want)
		}
	}
}
