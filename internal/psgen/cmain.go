package psgen

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cgen"
	"repro/internal/plan"
	"repro/internal/value"
)

// ccCheck compiles the cgen output for the spec with each flag set,
// runs it on the same inputs, and compares every printed element
// bitwise against the interpreter's sequential reference.
func ccCheck(ctx context.Context, out *Outcome, sp *Spec, fe *frontendResult, pl *plan.Program, ref []any, o Options) {
	cSrc, err := cgen.Generate(fe.mod, pl, cgen.Options{OpenMP: o.OpenMP})
	if err != nil {
		out.addf("cc", "cgen", "%v", err)
		return
	}
	mainSrc, err := sp.CMain()
	if err != nil {
		out.addf("cc", "cgen", "%v", err)
		return
	}
	want, err := flattenReal(ref)
	if err != nil {
		out.addf("cc", "cgen", "reference: %v", err)
		return
	}

	dir, err := os.MkdirTemp("", "psgen-cc")
	if err != nil {
		out.addf("cc", "cgen", "tempdir: %v", err)
		return
	}
	defer os.RemoveAll(dir)
	cPath := filepath.Join(dir, "gen.c")
	if err := os.WriteFile(cPath, []byte(cSrc+mainSrc), 0o644); err != nil {
		out.addf("cc", "cgen", "write: %v", err)
		return
	}

	flagSets := [][]string{{"-O2"}}
	if o.OpenMP {
		flagSets = append(flagSets, []string{"-O2", "-fopenmp"})
	}
	for _, flags := range flagSets {
		name := "cc " + strings.Join(flags, " ")
		bin := filepath.Join(dir, "gen-"+strings.ReplaceAll(strings.Join(flags, ""), "-", ""))
		args := append(append([]string{}, flags...), "-o", bin, cPath, "-lm")
		if msg, err := exec.CommandContext(ctx, o.CC, args...).CombinedOutput(); err != nil {
			// A missing -fopenmp runtime is an environment gap, not a
			// divergence; a failure on the base flags is a real cgen bug.
			if len(flags) > 1 {
				continue
			}
			out.addf("cc", name, "compile failed: %v\n%s", err, msg)
			continue
		}
		raw, err := exec.CommandContext(ctx, bin).Output()
		if err != nil {
			out.addf("cc", name, "run failed: %v", err)
			continue
		}
		got, err := parseReals(raw)
		if err != nil {
			out.addf("cc", name, "output: %v", err)
			continue
		}
		if len(got) != len(want) {
			out.addf("cc", name, "printed %d elements, interpreter produced %d", len(got), len(want))
			continue
		}
		for i := range want {
			if !bitsEqual(want[i], got[i]) {
				out.addf("cc", name, "element %d: interpreter %v (%#x) != C %v (%#x)",
					i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
				break
			}
		}
	}
}

// CMain emits the C driver for the generated module: inputs as static
// arrays initialized from the spec's deterministic values (printed
// %.17g, which round-trips float64 exactly), a call, and one canonical
// line per result element ("NaN" for any NaN, %.17g otherwise, so the
// comparison is spelling-independent).
func (sp *Spec) CMain() (string, error) {
	args := sp.Inputs()
	var b strings.Builder
	b.WriteString("\n#include <stdio.h>\n#include <math.h>\n")
	b.WriteString("static void ps_print(double v) { if (isnan(v)) printf(\"NaN\\n\"); else printf(\"%.17g\\n\", v); }\n")
	b.WriteString("int main(void) {\n")

	callArgs := make([]string, 0, len(args))
	for i, name := range sp.ParamNames() {
		arr, ok := args[i].(*value.Array)
		if !ok {
			return "", fmt.Errorf("param %s: expected an array input", name)
		}
		if arr.F != nil {
			fmt.Fprintf(&b, "    static const double %s_data[] = {", name)
			writeCSV(&b, len(arr.F), func(k int) string {
				return formatC(arr.F[k])
			})
		} else {
			fmt.Fprintf(&b, "    static const long %s_data[] = {", name)
			writeCSV(&b, len(arr.I), func(k int) string {
				return strconv.FormatInt(arr.I[k], 10) + "L"
			})
		}
		b.WriteString("};\n")
		callArgs = append(callArgs, name+"_data")
	}

	fmt.Fprintf(&b, "    %s_result r = %s(%s);\n", ModuleName, ModuleName, strings.Join(callArgs, ", "))
	for _, res := range sp.ResultNames() {
		fmt.Fprintf(&b, "    for (long i = 0; i < %dL; i++) ps_print(r.%s[i]);\n", sp.Box(), res)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String(), nil
}

// ResultNames lists the generated module's result names in
// declaration order (every result spans the full nest).
func (sp *Spec) ResultNames() []string {
	names := []string{"Out"}
	if sp.Sibling {
		names = append(names, "Out2")
	}
	if sp.Class == ClassPipeline && sp.Consumers > 1 {
		names = append(names, "Out3")
	}
	return names
}

func writeCSV(b *strings.Builder, n int, elem func(int) string) {
	for k := 0; k < n; k++ {
		if k > 0 {
			b.WriteString(", ")
		}
		if k%8 == 0 && k > 0 {
			b.WriteString("\n        ")
		}
		b.WriteString(elem(k))
	}
}

// formatC renders a float64 as a C double literal that parses back to
// the same bits.
func formatC(v float64) string {
	s := strconv.FormatFloat(v, 'g', 17, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// flattenReal flattens real result arrays in declaration order,
// row-major — the order the C driver prints.
func flattenReal(results []any) ([]float64, error) {
	var flat []float64
	for i, r := range results {
		arr, ok := r.(*value.Array)
		if !ok || arr.F == nil {
			return nil, fmt.Errorf("result %d is not a real array", i)
		}
		eachIndex(arr.Axes, func(idx []int64) {
			flat = append(flat, arr.GetF(idx))
		})
	}
	return flat, nil
}

// parseReals parses the driver's one-value-per-line output.
func parseReals(raw []byte) ([]float64, error) {
	var vals []float64
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "NaN" || line == "-NaN" {
			vals = append(vals, math.NaN())
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	return vals, sc.Err()
}
