package psgen

import (
	"encoding/json"
	"fmt"

	"repro/internal/types"
	"repro/internal/value"
)

// Inputs builds the generated module's argument list (declaration
// order: Seed, then W when IntInput). Values are a pure function of
// the spec's seed, finite, sign-varied and dyadic-scaled so the
// decimal round-trip through the repro sidecar is exact.
func (sp *Spec) Inputs() []any {
	r := &rng{s: sp.Seed ^ 0xda3e39cb94b95bdb}
	axes := make([]value.Axis, len(sp.Dims))
	for i, d := range sp.Dims {
		axes[i] = value.Axis{Lo: d.Lo, Hi: d.Hi}
	}
	seed := value.NewArray(types.RealKind, axes)
	sp.eachPoint(func(idx []int64) {
		// Dyadic values in [-4, 4): exact in decimal and float64.
		seed.SetF(idx, float64(int64(r.next()%256))/32.0-4.0)
	})
	args := []any{seed}
	if sp.IntInput {
		d := sp.Dims[0]
		w := value.NewArray(types.IntKind, []value.Axis{{Lo: d.Lo, Hi: d.Hi}})
		for i := d.Lo; i <= d.Hi; i++ {
			w.SetI([]int64{i}, int64(r.next()%7)-3)
		}
		args = append(args, w)
	}
	return args
}

// eachPoint visits the full iteration box in row-major order.
func (sp *Spec) eachPoint(f func(idx []int64)) {
	idx := make([]int64, len(sp.Dims))
	for i, d := range sp.Dims {
		idx[i] = d.Lo
	}
	for {
		f(idx)
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] <= sp.Dims[k].Hi {
				break
			}
			idx[k] = sp.Dims[k].Lo
		}
		if k < 0 {
			return
		}
	}
}

// InputsJSON encodes the inputs as the nested-list JSON ps.ArgsFromJSON
// accepts, keyed by parameter name — the repro sidecar format written
// next to minimized programs in testdata/fuzz/.
func (sp *Spec) InputsJSON() ([]byte, error) {
	args := sp.Inputs()
	m := map[string]any{"Seed": arrayToNested(args[0].(*value.Array))}
	if sp.IntInput {
		m["W"] = arrayToNested(args[1].(*value.Array))
	}
	return json.MarshalIndent(m, "", "  ")
}

// arrayToNested converts an array to nested lists, outer dimension
// first.
func arrayToNested(a *value.Array) any {
	var build func(prefix []int64, dim int) any
	build = func(prefix []int64, dim int) any {
		ax := a.Axes[dim]
		out := make([]any, 0, ax.Hi-ax.Lo+1)
		for i := ax.Lo; i <= ax.Hi; i++ {
			idx := append(append([]int64{}, prefix...), i)
			if dim == len(a.Axes)-1 {
				switch {
				case a.F != nil:
					out = append(out, a.GetF(idx))
				case a.I != nil:
					out = append(out, a.GetI(idx))
				default:
					out = append(out, a.Get(idx))
				}
			} else {
				out = append(out, build(idx, dim+1))
			}
		}
		return out
	}
	if len(a.Axes) == 0 {
		return nil
	}
	return build(nil, 0)
}

// ParamNames lists the generated module's parameter names in order.
func (sp *Spec) ParamNames() []string {
	if sp.IntInput {
		return []string{"Seed", "W"}
	}
	return []string{"Seed"}
}

// Box returns the iteration box volume.
func (sp *Spec) Box() int64 {
	n := int64(1)
	for _, d := range sp.Dims {
		n *= d.extent()
	}
	return n
}

// PlanesFor counts the distinct hyperplane values pi·x over the spec's
// iteration box — the exact WavefrontPlanes a barrier sweep of the
// nest must report (every plane of a contiguous box with these pools
// is non-empty).
func (sp *Spec) PlanesFor(pi []int64) (int64, error) {
	if len(pi) != len(sp.Dims) {
		return 0, fmt.Errorf("pi has %d components, nest has %d dims", len(pi), len(sp.Dims))
	}
	seen := make(map[int64]struct{})
	sp.eachPoint(func(idx []int64) {
		var t int64
		for i, x := range idx {
			t += pi[i] * x
		}
		seen[t] = struct{}{}
	})
	return int64(len(seen)), nil
}
