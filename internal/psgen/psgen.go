// Package psgen is a seeded, eligibility-aware random generator of
// well-typed PS programs, plus the differential harness that
// cross-checks every execution variant (and the emitted C) on the
// programs it generates.
//
// "Eligibility-aware" means generation is organized by target backend:
// each Class composes DO nests, constant-offset recurrences and
// boundary initializers whose dependence-vector sets deterministically
// land the scheduler selection cascade in one backend — DOALL,
// single-equation wavefront, multi-equation wavefront, doacross-
// favoured wavefront geometry, PS-DSWP pipeline, or rejected/
// sequential — so a bounded campaign provably reaches every executor
// path. Orthogonal knobs add §5-fusable sibling pairs, integer inputs,
// and deliberate escapes from the specializer's recognized body grammar
// (reflected subscripts, non-finite arithmetic) so the generic checked
// kernels and the non-finite JSON/C conventions are exercised too.
//
// Everything is a pure function of (Seed, Class): Generate is
// deterministic, and Render emits the same source for the same Spec,
// which is what makes shrunken counterexamples reproducible from a
// one-line seed.
package psgen

import (
	"fmt"
	"strconv"
	"strings"
)

// Class selects the scheduler-cascade backend a generated program is
// constructed to reach.
type Class int

const (
	// ClassDOALL generates pointwise programs with no loop-carried
	// dependence: every nest lowers to a (possibly fused) DOALL.
	ClassDOALL Class = iota
	// ClassWavefront generates a single-equation constant-offset
	// recurrence whose dependence vectors make every dimension of the
	// nest sequential and admit a hyperplane time vector.
	ClassWavefront
	// ClassMultiWavefront generates two mutually recursive equations
	// whose union dependence set admits one time vector — the §4
	// multi-equation analysis (and, for the split-nest pattern, the
	// sibling re-merge pre-pass).
	ClassMultiWavefront
	// ClassDoacross is wavefront-eligible geometry with wider planes,
	// generated for runs pinned to the doacross (pipelined tile)
	// schedule.
	ClassDoacross
	// ClassPipeline generates a recurrence with a reflected-column read
	// (not a constant offset, so the wavefront analysis refuses) plus
	// downstream DOALL consumers streaming its rows: the PS-DSWP
	// pipeline backend's shape.
	ClassPipeline
	// ClassSequential generates a 1-D first-order recurrence with a
	// boundary initializer equation and a consumer iterating a
	// different subrange: every backend declines and the DO loop
	// survives (the cascade's rejected/sequential witness).
	ClassSequential
	// NumClasses is the number of generator classes.
	NumClasses
)

// String names the class the way the generation report counts it.
func (c Class) String() string {
	switch c {
	case ClassDOALL:
		return "doall"
	case ClassWavefront:
		return "wavefront"
	case ClassMultiWavefront:
		return "multi-wavefront"
	case ClassDoacross:
		return "doacross"
	case ClassPipeline:
		return "pipeline"
	case ClassSequential:
		return "sequential"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Escape selects a deliberate exit from the specializer's recognized
// body grammar (or from finite arithmetic), applied to a consumer
// equation so the class's backend eligibility is preserved.
type Escape int

const (
	// EscapeNone leaves every body inside the specializable grammar.
	EscapeNone Escape = iota
	// EscapeReflect reads the seed through a reflected subscript
	// (lo+hi-J): affine but not unit-stride, so the specializer bails
	// and the equation runs on the generic checked kernel.
	EscapeReflect
	// EscapeNaN adds a (s-s)/(s-s) term: NaN at every point,
	// exercising the non-finite JSON spellings and C printf parity.
	EscapeNaN
	// EscapeMinMaxNaN feeds a NaN operand to min(): the regression
	// witness for Go math.Min (NaN-propagating) vs C fmin
	// (NaN-ignoring) semantics in generated code.
	EscapeMinMaxNaN
	// NumEscapes is the number of escape kinds.
	NumEscapes
)

// String names the escape for reports.
func (e Escape) String() string {
	switch e {
	case EscapeNone:
		return "none"
	case EscapeReflect:
		return "reflect"
	case EscapeNaN:
		return "nan"
	case EscapeMinMaxNaN:
		return "minmax-nan"
	}
	return fmt.Sprintf("escape(%d)", int(e))
}

// Dim is one iteration dimension of the generated nest, with literal
// bounds (literal bounds keep the C-side geometry static and make the
// shrinker a pure Spec rewrite).
type Dim struct {
	Name   string
	Lo, Hi int64
}

func (d Dim) extent() int64 { return d.Hi - d.Lo + 1 }

// Spec is the full description of one generated program: rendering it
// (Render) and building its inputs (Inputs) are deterministic, so a
// Spec — or just its (Seed, Class) pair — is a complete repro.
type Spec struct {
	Seed  uint64
	Class Class
	// Dims are the main nest's dimensions, outermost first.
	Dims []Dim
	// Deps are the recurrence's dependence distance vectors (one per
	// self-read), in the Dims order. Empty for ClassDOALL.
	Deps [][]int64
	// Coefs are the body's dyadic constants (k/8, exact in decimal and
	// in float64, so source round-trips bitwise).
	Coefs [4]float64
	// Pattern selects among the class's body shapes.
	Pattern int
	// Sibling adds a §5-fusable sibling output equation over the same
	// nest.
	Sibling bool
	// IntInput adds an integer array parameter read through float()
	// (ClassDOALL only).
	IntInput bool
	// Consumers is the number of downstream DOALL consumer equations
	// (ClassPipeline: 1 or 2; the recurrence classes always have 1).
	Consumers int
	// Escape is the specializer/finite-arithmetic escape applied to a
	// consumer equation.
	Escape Escape
}

// rng is splitmix64: tiny, seedable, and stable across Go versions —
// the properties a repro seed needs (math/rand makes no cross-version
// stream guarantee).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeI returns a value in [lo, hi] inclusive.
func (r *rng) rangeI(lo, hi int64) int64 { return lo + int64(r.next()%uint64(hi-lo+1)) }

// coef returns a dyadic constant in (0, 2] with denominator 8.
func (r *rng) coef() float64 { return float64(1+r.intn(16)) / 8.0 }

var dimNames = []string{"I", "J", "K"}

// depPools2D are the 2-D dependence-vector sets known to keep both
// nest levels sequential (every dimension carries a dependence) while
// admitting a hyperplane time vector; the harness reads the actual π
// back from the lowered plan rather than predicting it.
var depPools2D = [][][]int64{
	{{1, 0}, {0, 1}},
	{{1, 0}, {0, 1}, {1, 1}},
	{{1, -1}, {0, 1}},
	{{1, 1}, {0, 1}},
	{{2, 1}, {0, 1}},
	{{1, -1}, {1, 1}, {0, 1}},
}

// depPools3D is the 3-D analogue: each dimension k has a vector whose
// first nonzero component is at k, so the §3.3 recursion keeps the
// whole nest iterative.
var depPools3D = [][][]int64{
	{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
	{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}},
	{{1, 0, 0}, {0, 1, -1}, {0, 0, 1}},
}

// Generate builds the Spec for one (seed, class) pair. The same pair
// always yields the same Spec.
func Generate(seed uint64, class Class) Spec {
	r := &rng{s: seed ^ uint64(class)*0xa5a5a5a5a5a5a5a5}
	sp := Spec{Seed: seed, Class: class, Consumers: 1}
	for i := range sp.Coefs {
		sp.Coefs[i] = r.coef()
	}
	sp.Pattern = r.intn(4)
	sp.Sibling = r.intn(3) == 0
	lo := int64(r.intn(2)) // 0 or 1

	dims := func(n int, minExt, maxExt int64) {
		for k := 0; k < n; k++ {
			sp.Dims = append(sp.Dims, Dim{Name: dimNames[k], Lo: lo, Hi: lo + r.rangeI(minExt, maxExt) - 1})
		}
	}

	switch class {
	case ClassDOALL:
		dims(1+r.intn(3), 4, 7)
		sp.IntInput = r.intn(2) == 0
		sp.Escape = Escape(r.intn(int(NumEscapes)))
	case ClassWavefront, ClassDoacross:
		n := 2
		if class == ClassWavefront && r.intn(3) == 0 {
			n = 3
		}
		if n == 2 {
			if class == ClassDoacross {
				dims(2, 8, 12) // wider planes: several tiles per plane
			} else {
				dims(2, 4, 7)
			}
			sp.Deps = depPools2D[r.intn(len(depPools2D))]
		} else {
			dims(3, 4, 5)
			sp.Deps = depPools3D[r.intn(len(depPools3D))]
		}
		sp.Escape = consumerEscape(r)
	case ClassMultiWavefront:
		dims(2, 4, 7)
		sp.Pattern = r.intn(2) // 0: coupled cross-reads; 1: split-nest re-merge
		sp.Escape = consumerEscape(r)
	case ClassPipeline:
		dims(2, 4, 7)
		sp.Consumers = 1 + r.intn(2)
		sp.Escape = consumerEscape(r)
	case ClassSequential:
		dims(1, 6, 10)
		sp.Escape = consumerEscape(r)
	}
	return sp
}

// consumerEscape picks the escape for recurrence classes; weighted
// toward none so most programs stay on the specialized kernels.
func consumerEscape(r *rng) Escape {
	if r.intn(2) == 0 {
		return EscapeNone
	}
	return Escape(1 + r.intn(int(NumEscapes)-1))
}

// RandomSpec derives both the class and the knobs from one seed.
func RandomSpec(seed uint64) Spec {
	r := rng{s: seed}
	return Generate(seed, Class(r.intn(int(NumClasses))))
}

// ModuleName is the module every generated program declares.
const ModuleName = "Gen"

// lit renders a real constant as a PS real literal (the coefficient
// pool is dyadic, so the decimal form is exact).
func lit(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// sub renders an index term Name±offset for a dependence component.
func sub(name string, off int64) string {
	switch {
	case off > 0:
		return fmt.Sprintf("%s-%d", name, off)
	case off < 0:
		return fmt.Sprintf("%s+%d", name, -off)
	}
	return name
}

// idxList renders "I,J,K" for the spec's dims.
func (sp *Spec) idxList() string {
	names := make([]string, len(sp.Dims))
	for i, d := range sp.Dims {
		names[i] = d.Name
	}
	return strings.Join(names, ",")
}

// readAt renders Arr[I-d0, J-d1, ...] for a dependence vector.
func (sp *Spec) readAt(arr string, dep []int64) string {
	terms := make([]string, len(sp.Dims))
	for i, d := range sp.Dims {
		terms[i] = sub(d.Name, dep[i])
	}
	return fmt.Sprintf("%s[%s]", arr, strings.Join(terms, ","))
}

// guard renders the boundary predicate covering every read of the
// given dependence vectors: for each dimension, equality disjuncts for
// the first maxPositive points (reads at D-p) and the last maxNegative
// points (reads at D+n). The bounds are literal, so the disjuncts are
// literal comparisons.
func (sp *Spec) guard(deps [][]int64) string {
	var terms []string
	for k, d := range sp.Dims {
		var pos, neg int64
		for _, dep := range deps {
			if dep[k] > pos {
				pos = dep[k]
			}
			if -dep[k] > neg {
				neg = -dep[k]
			}
		}
		for o := int64(0); o < pos; o++ {
			terms = append(terms, fmt.Sprintf("(%s = %d)", d.Name, d.Lo+o))
		}
		for o := int64(0); o < neg; o++ {
			terms = append(terms, fmt.Sprintf("(%s = %d)", d.Name, d.Hi-o))
		}
	}
	if len(terms) == 0 {
		return "false"
	}
	return strings.Join(terms, " or ")
}

// escapeTerm renders the escape's contribution to a consumer body
// whose base expression is base (a real-valued expression over the
// full nest).
func (sp *Spec) escapeTerm(base string) string {
	switch sp.Escape {
	case EscapeReflect:
		last := sp.Dims[len(sp.Dims)-1]
		terms := make([]string, len(sp.Dims))
		for i, d := range sp.Dims {
			terms[i] = d.Name
		}
		terms[len(terms)-1] = fmt.Sprintf("%d-%s", last.Lo+last.Hi, last.Name)
		return fmt.Sprintf("%s + %s * Seed[%s]", base, lit(sp.Coefs[3]), strings.Join(terms, ","))
	case EscapeNaN:
		nan := fmt.Sprintf("(%s - %s) / (%s - %s)", base, base, base, base)
		return fmt.Sprintf("%s + %s", base, nan)
	case EscapeMinMaxNaN:
		nan := fmt.Sprintf("(%s - %s) / (%s - %s)", base, base, base, base)
		return fmt.Sprintf("min(%s, %s)", base, nan)
	}
	return base
}

// Render emits the program source for the spec.
func (sp *Spec) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(* psgen seed=%d class=%s escape=%s *)\n", sp.Seed, sp.Class, sp.Escape)
	idx := sp.idxList()

	// Header: params, results.
	params := []string{fmt.Sprintf("Seed: array[%s] of real", idx)}
	if sp.IntInput {
		params = append(params, fmt.Sprintf("W: array[%s] of int", sp.Dims[0].Name))
	}
	results := []string{fmt.Sprintf("Out: array[%s] of real", idx)}
	if sp.Sibling {
		results = append(results, fmt.Sprintf("Out2: array[%s] of real", idx))
	}
	if sp.Class == ClassPipeline && sp.Consumers > 1 {
		results = append(results, fmt.Sprintf("Out3: array[%s] of real", idx))
	}
	fmt.Fprintf(&b, "%s: module (%s):\n    [%s];\n", ModuleName, strings.Join(params, "; "), strings.Join(results, "; "))

	// Subranges. ClassSequential adds the shifted consumer subrange.
	b.WriteString("type\n")
	for _, d := range sp.Dims {
		fmt.Fprintf(&b, "    %s = %d .. %d;\n", d.Name, d.Lo, d.Hi)
	}
	if sp.Class == ClassSequential {
		d := sp.Dims[0]
		fmt.Fprintf(&b, "    I2 = %d .. %d;\n", d.Lo+1, d.Hi)
	}

	// Locals.
	locals := sp.localArrays()
	if len(locals) > 0 {
		b.WriteString("var\n")
		for _, v := range locals {
			fmt.Fprintf(&b, "    %s: array[%s] of real;\n", v, idx)
		}
	}

	b.WriteString("define\n")
	sp.renderBody(&b)
	fmt.Fprintf(&b, "end %s;\n", ModuleName)
	return b.String()
}

// localArrays names the spec's local recurrence arrays.
func (sp *Spec) localArrays() []string {
	switch sp.Class {
	case ClassWavefront, ClassDoacross, ClassSequential:
		return []string{"X"}
	case ClassMultiWavefront, ClassPipeline:
		return []string{"X", "Y"}
	}
	return nil
}

// renderBody emits the define section per class.
func (sp *Spec) renderBody(b *strings.Builder) {
	idx := sp.idxList()
	c := sp.Coefs
	seed := fmt.Sprintf("Seed[%s]", idx)

	switch sp.Class {
	case ClassDOALL:
		var body string
		switch sp.Pattern {
		case 0:
			body = fmt.Sprintf("%s * %s + %s", lit(c[0]), seed, lit(c[1]))
		case 1:
			body = fmt.Sprintf("sqrt(abs(%s)) + %s", seed, lit(c[0]))
		case 2:
			body = fmt.Sprintf("min(%s, %s) + max(%s, %s)", seed, lit(c[0]), seed, lit(c[1]))
		default:
			body = fmt.Sprintf("if %s > %s then %s * %s else %s - %s",
				seed, lit(c[0]), lit(c[1]), seed, seed, lit(c[2]))
		}
		if sp.IntInput {
			body = fmt.Sprintf("%s + float(W[%s]) * %s", body, sp.Dims[0].Name, lit(c[3]))
		}
		fmt.Fprintf(b, "    Out[%s] = %s;\n", idx, sp.escapeTerm(body))

	case ClassWavefront, ClassDoacross:
		reads := make([]string, 0, len(sp.Deps)+1)
		for _, dep := range sp.Deps {
			reads = append(reads, sp.readAt("X", dep))
		}
		reads = append(reads, seed)
		rec := fmt.Sprintf("(%s) / %s.0", strings.Join(reads, " + "), strconv.Itoa(len(reads)))
		if sp.Pattern%2 == 1 {
			// Weighted variant: coefficients instead of the mean.
			parts := make([]string, len(reads))
			for i, rd := range reads {
				parts[i] = fmt.Sprintf("%s * %s", lit(c[i%3]/2), rd)
			}
			rec = strings.Join(parts, " + ")
		}
		fmt.Fprintf(b, "    X[%s] = if %s\n             then %s\n             else %s;\n",
			idx, sp.guard(sp.Deps), seed, rec)
		fmt.Fprintf(b, "    Out[%s] = %s;\n", idx, sp.escapeTerm(fmt.Sprintf("X[%s]", idx)))

	case ClassMultiWavefront:
		var uDeps, vDeps [][]int64
		var uReads, vReads []string
		if sp.Pattern == 0 {
			// Coupled cross-reads: union {(1,-1),(0,1)}, both equations
			// in one inner body.
			uDeps = [][]int64{{1, -1}, {0, 1}}
			vDeps = uDeps
			uReads = []string{sp.readAt("X", []int64{1, -1}), sp.readAt("Y", []int64{0, 1})}
			vReads = []string{sp.readAt("Y", []int64{1, -1}), sp.readAt("X", []int64{0, 1})}
		} else {
			// Mutual split-nest: each equation self-depends at the inner
			// level and cross-reads the other at (1,0), so the scheduler
			// splits the component into sibling sequential nests; the
			// re-merge pre-pass rejoins them and the union {(1,0),(0,1)}
			// admits a π.
			uDeps = [][]int64{{1, 0}, {0, 1}}
			vDeps = uDeps
			uReads = []string{sp.readAt("Y", []int64{1, 0}), sp.readAt("X", []int64{0, 1})}
			vReads = []string{sp.readAt("X", []int64{1, 0}), sp.readAt("Y", []int64{0, 1})}
		}
		guard := sp.guard(append(append([][]int64{}, uDeps...), vDeps...))
		fmt.Fprintf(b, "    X[%s] = if %s then %s\n             else (%s + %s) / %d.0;\n",
			idx, guard, seed, strings.Join(uReads, " + "), seed, len(uReads)+1)
		fmt.Fprintf(b, "    Y[%s] = if %s then %s * %s\n             else (%s + %s) / %d.0;\n",
			idx, guard, lit(c[0]), seed, strings.Join(vReads, " + "), seed, len(vReads)+1)
		fmt.Fprintf(b, "    Out[%s] = %s;\n", idx, sp.escapeTerm(fmt.Sprintf("X[%s] + Y[%s]", idx, idx)))

	case ClassPipeline:
		last := sp.Dims[1]
		reflect := fmt.Sprintf("X[%s, %d-%s]", sub(sp.Dims[0].Name, 1), last.Lo+last.Hi, last.Name)
		guard := sp.guard([][]int64{{1, 0}, {0, 1}})
		fmt.Fprintf(b, "    X[%s] = if %s then %s\n             else (%s + %s) / 2.0;\n",
			idx, guard, seed, sp.readAt("X", []int64{1, 0}), sp.readAt("Y", []int64{0, 1}))
		fmt.Fprintf(b, "    Y[%s] = if %s then %s * %s\n             else (%s + %s + %s) / 3.0;\n",
			idx, guard, lit(c[0]), seed, sp.readAt("Y", []int64{1, 0}), sp.readAt("X", []int64{0, 1}), reflect)
		fmt.Fprintf(b, "    Out[%s] = %s;\n", idx, sp.escapeTerm(fmt.Sprintf("%s * X[%s]", lit(c[1]), idx)))
		if sp.Consumers > 1 {
			fmt.Fprintf(b, "    Out3[%s] = Y[%s] + %s;\n", idx, idx, lit(c[2]))
		}

	case ClassSequential:
		d := sp.Dims[0]
		fmt.Fprintf(b, "    X[%d] = Seed[%d];\n", d.Lo, d.Lo)
		fmt.Fprintf(b, "    X[I2] = %s * X[I2-1] + Seed[I2];\n", lit(c[0]))
		fmt.Fprintf(b, "    Out[%s] = %s;\n", d.Name, sp.escapeTerm(fmt.Sprintf("X[%s]", d.Name)))
	}

	if sp.Sibling {
		idx := sp.idxList()
		fmt.Fprintf(b, "    Out2[%s] = %s * Seed[%s] - %s;\n", idx, lit(sp.Coefs[2]), idx, lit(sp.Coefs[3]))
	}
}
