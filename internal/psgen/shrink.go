package psgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Shrink minimizes a failing spec: it greedily applies the reductions
// below, keeping each one only if the reduced program still fails the
// differential check, and repeats to a fixpoint (or until budget check
// runs are spent). Reductions, in order of how much program they
// remove: drop the sibling pair and extra consumers, drop equations'
// optional inputs, drop dependence vectors, shrink dimension extents,
// simplify the body pattern, and finally remove the escape.
func Shrink(ctx context.Context, sp Spec, o Options, budget int) Spec {
	if budget <= 0 {
		budget = 120
	}
	fails := func(c Spec) bool {
		if budget <= 0 || ctx.Err() != nil {
			return false
		}
		budget--
		return Check(ctx, c, o).Failed()
	}

	for changed := true; changed; {
		changed = false
		for _, cand := range reductions(sp) {
			if fails(cand) {
				sp = cand
				changed = true
				break
			}
		}
	}
	return sp
}

// reductions proposes one-step-smaller specs.
func reductions(sp Spec) []Spec {
	var cands []Spec
	add := func(f func(*Spec)) {
		c := sp
		c.Dims = append([]Dim{}, sp.Dims...)
		c.Deps = append([][]int64{}, sp.Deps...)
		f(&c)
		cands = append(cands, c)
	}

	if sp.Sibling {
		add(func(c *Spec) { c.Sibling = false })
	}
	if sp.Consumers > 1 {
		add(func(c *Spec) { c.Consumers = 1 })
	}
	if sp.IntInput {
		add(func(c *Spec) { c.IntInput = false })
	}
	if len(sp.Deps) > 1 {
		for i := range sp.Deps {
			i := i
			add(func(c *Spec) { c.Deps = append(c.Deps[:i:i], c.Deps[i+1:]...) })
		}
	}
	for k := range sp.Dims {
		if sp.Dims[k].extent() > sp.minExtent(k) {
			k := k
			add(func(c *Spec) { c.Dims[k].Hi-- })
		}
	}
	if sp.Pattern != 0 {
		add(func(c *Spec) { c.Pattern = 0 })
	}
	if sp.Escape != EscapeNone {
		add(func(c *Spec) { c.Escape = EscapeNone })
	}
	return cands
}

// minExtent is the smallest extent dimension k can shrink to while the
// rendered guards stay well-formed: one interior point beyond every
// boundary disjunct the dependence set needs.
func (sp *Spec) minExtent(k int) int64 {
	var pos, neg int64
	for _, dep := range sp.allDeps() {
		if int(len(dep)) <= k {
			continue
		}
		if dep[k] > pos {
			pos = dep[k]
		}
		if -dep[k] > neg {
			neg = -dep[k]
		}
	}
	min := pos + neg + 2
	if min < 3 {
		min = 3
	}
	return min
}

// allDeps is the dependence set the renderer will guard for,
// including the hard-shaped classes' implicit vectors.
func (sp *Spec) allDeps() [][]int64 {
	switch sp.Class {
	case ClassMultiWavefront:
		if sp.Pattern == 0 {
			return [][]int64{{1, -1}, {0, 1}}
		}
		return [][]int64{{1, 0}, {0, 1}}
	case ClassPipeline:
		return [][]int64{{1, 0}, {0, 1}}
	case ClassSequential:
		return [][]int64{{1}}
	}
	return sp.Deps
}

// ReproName is the base filename a spec's repro artifacts use.
func (sp *Spec) ReproName() string {
	return fmt.Sprintf("seed%d_%s", sp.Seed, sp.Class)
}

// WriteRepro writes the spec's repro artifacts into dir
// (testdata/fuzz/ in campaigns) and returns the program path: the
// rendered .ps (human-readable, and a parser-fuzz seed), the
// .inputs.json sidecar, and the .spec.json the corpus regression test
// loads to replay the program through the full differential matrix.
func (sp *Spec) WriteRepro(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := filepath.Join(dir, sp.ReproName())
	if err := os.WriteFile(base+".ps", []byte(sp.Render()), 0o644); err != nil {
		return "", err
	}
	inputs, err := sp.InputsJSON()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(base+".inputs.json", inputs, 0o644); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(base+".spec.json", append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	return base + ".ps", nil
}

// LoadSpec reads a .spec.json repro sidecar back into a Spec.
func LoadSpec(path string) (Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var sp Spec
	if err := json.Unmarshal(blob, &sp); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}
