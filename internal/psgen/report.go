package psgen

import (
	"fmt"
	"sort"
	"strings"
)

// AllBackends lists every scheduler-cascade backend (plus the runtime
// doacross schedule) a campaign is expected to reach — the acceptance
// counters of a generation report.
var AllBackends = []string{
	"doall", "wavefront", "multi-wavefront", "doacross", "pipeline", "sequential-reject",
}

// Report aggregates the outcomes of a campaign: how many programs
// were generated, which backends their lowerings reached, how many
// fell back to generic kernels, and every failure.
type Report struct {
	Programs      int
	Backends      map[string]int
	Escapes       map[string]int
	SpecFallbacks int
	Failed        []*Outcome
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{Backends: map[string]int{}, Escapes: map[string]int{}}
}

// Add folds one outcome in.
func (r *Report) Add(out *Outcome) {
	r.Programs++
	for b := range out.Backends {
		r.Backends[b]++
	}
	r.Escapes[out.Spec.Escape.String()]++
	if out.SpecFallback {
		r.SpecFallbacks++
	}
	if out.Failed() {
		r.Failed = append(r.Failed, out)
	}
}

// CoverageGaps names the acceptance counters still at zero: cascade
// backends no program lowered to, and the specializer fallback if no
// program exercised a generic kernel.
func (r *Report) CoverageGaps() []string {
	var gaps []string
	for _, b := range AllBackends {
		if r.Backends[b] == 0 {
			gaps = append(gaps, "backend "+b)
		}
	}
	if r.SpecFallbacks == 0 {
		gaps = append(gaps, "specializer fallback")
	}
	return gaps
}

// String renders the generation report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "psfuzz: %d programs, %d divergent\n", r.Programs, len(r.Failed))
	b.WriteString("backends reached:\n")
	for _, name := range AllBackends {
		fmt.Fprintf(&b, "  %-17s %d\n", name, r.Backends[name])
	}
	fmt.Fprintf(&b, "specializer fallbacks: %d\n", r.SpecFallbacks)
	keys := make([]string, 0, len(r.Escapes))
	for k := range r.Escapes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("escapes: ")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", k, r.Escapes[k])
	}
	b.WriteByte('\n')
	return b.String()
}
