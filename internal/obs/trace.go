package obs

import (
	"bufio"
	"fmt"
	"io"
)

// kindMeta is the Chrome-export spelling of each kind: the event name,
// its category (Perfetto groups and colors by category), and how the
// two payload args are labeled.
var kindMeta = [numKinds]struct {
	name, cat  string
	arg0, arg1 string
}{
	KActivation:   {name: "activation", cat: "run"},
	KDoAll:        {name: "doall", cat: "doall", arg0: "points"},
	KChunk:        {name: "chunk", cat: "doall", arg0: "points", arg1: "wavefront"},
	KPlane:        {name: "plane", cat: "wavefront", arg0: "t", arg1: "dispatched"},
	KTile:         {name: "tile", cat: "doacross", arg0: "t", arg1: "k"},
	KTileWait:     {name: "tile-wait", cat: "doacross"},
	KStage:        {name: "stage", cat: "pipeline", arg0: "stage", arg1: "token"},
	KStageStall:   {name: "stage-stall", cat: "pipeline", arg0: "stage", arg1: "send"},
	KSpecFallback: {name: "spec-fallback", cat: "kernel", arg0: "eq", arg1: "points"},
	KArenaReuse:   {name: "arena-reuse", cat: "memory", arg0: "slot"},
}

// WriteChrome renders the recorded events as Chrome trace-event JSON
// (the "traceEvents" array format), loadable in Perfetto and
// chrome://tracing. Each ring becomes one thread of pid 1; spans are
// complete ("X") events with microsecond timestamps, instants are "i"
// events. process names the run in the viewer (e.g. "program/module").
// Call it only after the traced run has returned.
func (r *Recorder) WriteChrome(w io.Writer, process string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":%q}}", process)
	for id, evs := range r.Snapshot() {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"worker %d\"}}", id, id)
		for _, ev := range evs {
			meta := kindMeta[ev.Kind]
			if ev.Kind.Instant() {
				// Thread-scoped instant: a tick mark on the worker row.
				fmt.Fprintf(bw, ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":%q,\"cat\":%q",
					id, float64(ev.Start)/1e3, meta.name, meta.cat)
			} else {
				fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":%q,\"cat\":%q",
					id, float64(ev.Start)/1e3, float64(ev.Dur)/1e3, meta.name, meta.cat)
			}
			switch {
			case meta.arg0 != "" && meta.arg1 != "":
				a1 := ev.Arg1
				if ev.Kind == KTile {
					// Arg1 packs k<<1 | stolen; unpack for the viewer.
					fmt.Fprintf(bw, ",\"args\":{%q:%d,%q:%d,\"stolen\":%d}}", meta.arg0, ev.Arg0, meta.arg1, a1>>1, a1&1)
					continue
				}
				fmt.Fprintf(bw, ",\"args\":{%q:%d,%q:%d}}", meta.arg0, ev.Arg0, meta.arg1, a1)
			case meta.arg0 != "":
				fmt.Fprintf(bw, ",\"args\":{%q:%d}}", meta.arg0, ev.Arg0)
			default:
				fmt.Fprintf(bw, "}")
			}
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
