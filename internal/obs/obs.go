// Package obs is the execution recorder behind `psrun -trace` and
// Runner.TraceRun: per-goroutine, cache-padded ring buffers of
// timestamped span events emitted from the executors' hot paths
// (activations, DOALL chunks, wavefront planes, doacross tiles and
// waits, pipeline stages and stalls, specialization fallbacks, arena
// reuses).
//
// The design optimizes for the disabled case and the single-writer
// case. Disabled tracing is a nil check on the executor's ring pointer
// — one predictable branch per emission site, no call. Enabled tracing
// gives each worker goroutine exclusive ownership of one Ring for the
// duration of its dispatch (Recorder.Acquire / Release), so Emit is a
// plain slice store and increment with no atomics or locks. A ring
// wraps, overwriting its oldest events, so a fixed per-ring budget
// bounds arbitrarily long runs; Dropped reports the loss. Drain the
// recorder after the run with Snapshot, WriteChrome or Breakdown —
// none of them synchronize with in-flight emitters, so they are
// defined only once the traced run has returned.
package obs

import (
	"sync"
	"time"
)

// Kind tags one recorded event with the executor site that emitted it.
type Kind uint8

const (
	// KActivation spans one module activation (runModule entry to
	// exit), the root of every other span of the run.
	KActivation Kind = iota
	// KDoAll spans one sequentially executed DOALL step on the
	// activation goroutine. Arg0 is the collapsed point count.
	KDoAll
	// KChunk spans one parallel chunk on a pool worker. Arg0 is the
	// chunk's point count; Arg1 is 0 for a plain DOALL chunk, 1 for a
	// chunk carved out of a wavefront plane.
	KChunk
	// KPlane spans one wavefront hyperplane under the barrier schedule.
	// Arg0 is the plane time t; Arg1 is 0 when the plane ran inline on
	// the sweeping goroutine, 1 when it was dispatched to the pool (the
	// span then covers the fork/join, with the member chunks appearing
	// as KChunk spans on worker rings).
	KPlane
	// KTile spans one doacross tile instance. Arg0 is the plane time t;
	// Arg1 packs the tile index and the steal flag as k<<1 | stolen.
	KTile
	// KTileWait spans one parked wait of a doacross worker: no tile was
	// ready and the worker blocked until a completion woke it.
	KTileWait
	// KStage spans one pipeline stage body invocation (one token
	// through one stage). Arg0 is the stage index, Arg1 the token.
	KStage
	// KStageStall spans one blocking pipeline wait. Arg0 is the stage
	// index; Arg1 is 0 for a starved receive, 1 for a backpressured
	// send.
	KStageStall
	// KSpecFallback is an instant event: a specialized span kernel fell
	// back to the generic evaluator for its un-certified prefix/suffix
	// points. Arg0 is the equation index, Arg1 the fallback point count.
	KSpecFallback
	// KArenaReuse is an instant event: an activation array's backing
	// was recycled from the arena. Arg0 is the array's symbol slot.
	KArenaReuse

	numKinds = int(KArenaReuse) + 1
)

// String names the kind the way the Chrome trace export spells it.
func (k Kind) String() string {
	if int(k) < len(kindMeta) {
		return kindMeta[k].name
	}
	return "?"
}

// Instant reports whether the kind is a point event (no duration).
func (k Kind) Instant() bool { return k == KSpecFallback || k == KArenaReuse }

// Event is one recorded span or instant. Start is nanoseconds since
// the recorder's epoch; Dur is the span length in nanoseconds (0 for
// instants). Arg0/Arg1 carry per-kind payload (see the Kind docs).
type Event struct {
	Start int64
	Dur   int64
	Arg0  int64
	Arg1  int64
	Kind  Kind
}

// DefaultRingEvents is the per-ring capacity when NewRecorder is given
// zero: 4096 events (~160 KiB per worker ring).
const DefaultRingEvents = 4096

// Ring is one goroutine's event buffer. A ring has exactly one writer
// at a time — the goroutine holding it between Acquire and Release —
// so Emit is lock-free and atomic-free by construction.
type Ring struct {
	rec *Recorder
	id  int
	ev  []Event
	n   uint64 // total events ever emitted; n & mask is the write slot
	// pad keeps concurrently written rings off each other's cache
	// lines (the Ring headers are reachable from the recorder's slice).
	_ [64]byte
}

// ID is the ring's stable index, used as the thread id of its events
// in the Chrome export.
func (g *Ring) ID() int { return g.id }

// Now returns the recorder's clock: nanoseconds since its epoch.
func (g *Ring) Now() int64 { return g.rec.Now() }

// Emit records one event. The caller must own the ring (be between
// Acquire and Release for it).
func (g *Ring) Emit(k Kind, start, dur, arg0, arg1 int64) {
	g.ev[g.n&uint64(len(g.ev)-1)] = Event{Start: start, Dur: dur, Arg0: arg0, Arg1: arg1, Kind: k}
	g.n++
}

// events returns the retained events oldest first.
func (g *Ring) events() []Event {
	cap64 := uint64(len(g.ev))
	if g.n <= cap64 {
		out := make([]Event, g.n)
		copy(out, g.ev[:g.n])
		return out
	}
	out := make([]Event, cap64)
	head := g.n & (cap64 - 1)
	copy(out, g.ev[head:])
	copy(out[cap64-head:], g.ev[:head])
	return out
}

// Recorder owns the rings of one traced run. Acquire hands a goroutine
// exclusive ownership of a ring (reusing released ones, so the ring
// count tracks peak concurrency, not total dispatches); Release
// returns it. The zero Recorder is not usable — construct with
// NewRecorder.
type Recorder struct {
	epoch   time.Time
	ringCap int

	mu    sync.Mutex
	rings []*Ring // every ring ever created, in id order
	free  []*Ring // released rings available for reuse
}

// NewRecorder builds a recorder whose rings hold eventsPerRing events
// each (<= 0 selects DefaultRingEvents; other values round up to a
// power of two so the write index masks instead of dividing).
func NewRecorder(eventsPerRing int) *Recorder {
	if eventsPerRing <= 0 {
		eventsPerRing = DefaultRingEvents
	}
	capPow := 1
	for capPow < eventsPerRing {
		capPow <<= 1
	}
	return &Recorder{epoch: time.Now(), ringCap: capPow}
}

// Now returns nanoseconds since the recorder's epoch — the timestamp
// base of every emitted event.
func (r *Recorder) Now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Acquire hands the caller exclusive ownership of a ring until the
// matching Release. Rings are recycled across dispatches, so one
// ring's event sequence can interleave work from successive owners;
// within a ring, timestamps stay monotone (Release happens-before the
// next Acquire).
func (r *Recorder) Acquire() *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		g := r.free[n-1]
		r.free = r.free[:n-1]
		return g
	}
	g := &Ring{rec: r, id: len(r.rings), ev: make([]Event, r.ringCap)}
	r.rings = append(r.rings, g)
	return g
}

// Release returns a ring to the recorder's free list. nil is a no-op,
// so callers can release unconditionally.
func (r *Recorder) Release(g *Ring) {
	if g == nil {
		return
	}
	r.mu.Lock()
	r.free = append(r.free, g)
	r.mu.Unlock()
}

// Rings reports how many rings the recorder created — the peak number
// of concurrent emitters the run reached.
func (r *Recorder) Rings() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rings)
}

// Events reports the total number of events emitted, including ones a
// wrapped ring has since overwritten.
func (r *Recorder) Events() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, g := range r.rings {
		n += int64(g.n)
	}
	return n
}

// Dropped reports how many events were overwritten by ring wraparound.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, g := range r.rings {
		if g.n > uint64(len(g.ev)) {
			n += int64(g.n - uint64(len(g.ev)))
		}
	}
	return n
}

// Snapshot copies out every ring's retained events, oldest first,
// indexed by ring id. Call it only after the traced run has returned.
func (r *Recorder) Snapshot() [][]Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]Event, len(r.rings))
	for i, g := range r.rings {
		out[i] = g.events()
	}
	return out
}
