package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingEmitAndSnapshot(t *testing.T) {
	r := NewRecorder(8)
	g := r.Acquire()
	if g.ID() != 0 {
		t.Fatalf("first ring id = %d, want 0", g.ID())
	}
	g.Emit(KDoAll, 10, 5, 100, 0)
	g.Emit(KChunk, 20, 7, 50, 1)
	r.Release(g)

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("rings = %d, want 1", len(snap))
	}
	evs := snap[0]
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != KDoAll || evs[0].Start != 10 || evs[0].Dur != 5 || evs[0].Arg0 != 100 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KChunk || evs[1].Arg1 != 1 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if r.Events() != 2 || r.Dropped() != 0 {
		t.Errorf("Events=%d Dropped=%d, want 2, 0", r.Events(), r.Dropped())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	g := r.Acquire()
	for i := 0; i < 10; i++ {
		g.Emit(KTile, int64(i), 1, int64(i), 0)
	}
	r.Release(g)

	if got := r.Events(); got != 10 {
		t.Errorf("Events = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := r.Snapshot()[0]
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest first: events 6..9 survive.
	for i, ev := range evs {
		if want := int64(6 + i); ev.Start != want {
			t.Errorf("retained[%d].Start = %d, want %d (oldest-first order)", i, ev.Start, want)
		}
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultRingEvents}, {-1, DefaultRingEvents}, {1, 1}, {3, 4}, {4, 4}, {100, 128},
	} {
		r := NewRecorder(tc.in)
		g := r.Acquire()
		if len(g.ev) != tc.want {
			t.Errorf("NewRecorder(%d) ring cap = %d, want %d", tc.in, len(g.ev), tc.want)
		}
	}
}

func TestAcquireReuseAndPeak(t *testing.T) {
	r := NewRecorder(8)
	a := r.Acquire()
	b := r.Acquire()
	if a.ID() == b.ID() {
		t.Fatalf("concurrent rings share id %d", a.ID())
	}
	r.Release(b)
	c := r.Acquire()
	if c != b {
		t.Errorf("Acquire did not reuse the released ring")
	}
	r.Release(a)
	r.Release(c)
	r.Release(nil) // no-op
	if got := r.Rings(); got != 2 {
		t.Errorf("Rings = %d, want peak 2", got)
	}
}

func TestConcurrentEmit(t *testing.T) {
	// Many goroutines acquire, emit, release in a loop; run under -race
	// this checks the exclusive-ownership protocol end to end.
	r := NewRecorder(64)
	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				g := r.Acquire()
				t0 := g.Now()
				g.Emit(KChunk, t0, g.Now()-t0, int64(i), 0)
				g.Emit(KArenaReuse, g.Now(), 0, int64(j), 0)
				r.Release(g)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Events(); got != goroutines*rounds*2 {
		t.Errorf("Events = %d, want %d", got, goroutines*rounds*2)
	}
	if r.Rings() > goroutines {
		t.Errorf("Rings = %d, want <= %d (peak concurrency)", r.Rings(), goroutines)
	}
	var kept int
	for _, evs := range r.Snapshot() {
		kept += len(evs)
	}
	if int64(kept) != r.Events()-r.Dropped() {
		t.Errorf("retained %d != emitted %d - dropped %d", kept, r.Events(), r.Dropped())
	}
}

func TestKindStringAndInstant(t *testing.T) {
	for k, want := range map[Kind]string{
		KActivation: "activation", KDoAll: "doall", KChunk: "chunk",
		KPlane: "plane", KTile: "tile", KTileWait: "tile-wait",
		KStage: "stage", KStageStall: "stage-stall",
		KSpecFallback: "spec-fallback", KArenaReuse: "arena-reuse",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(250).String() != "?" {
		t.Errorf("out-of-range kind should stringify as ?")
	}
	if !KSpecFallback.Instant() || !KArenaReuse.Instant() || KTile.Instant() {
		t.Errorf("Instant classification wrong")
	}
}

func TestBreakdownAggregation(t *testing.T) {
	r := NewRecorder(64)
	g := r.Acquire()
	g.Emit(KDoAll, 0, 100, 10, 0)       // sequential DOALL: DOALL compute
	g.Emit(KChunk, 100, 50, 5, 0)       // plain chunk: DOALL compute
	g.Emit(KChunk, 150, 30, 3, 1)       // wavefront chunk
	g.Emit(KPlane, 180, 40, 1, 0)       // inline plane: wavefront compute
	g.Emit(KPlane, 220, 90, 2, 1)       // dispatched plane: barrier-idle input
	g.Emit(KTile, 310, 60, 3, 4<<1|1)   // stolen tile
	g.Emit(KTile, 370, 40, 3, 5<<1)     // home tile
	g.Emit(KTileWait, 410, 25, 0, 0)    // doacross stall
	g.Emit(KStage, 435, 80, 0, 7)       // pipeline body
	g.Emit(KStageStall, 515, 15, 0, 1)  // pipeline stall
	g.Emit(KSpecFallback, 530, 0, 2, 9) // 9 fallback points of eq 2
	g.Emit(KArenaReuse, 530, 0, 1, 0)
	r.Release(g)

	workers := 2
	b := r.Breakdown(workers, time.Microsecond) // wall = 1000ns
	if b.DOALLNs != 150 {
		t.Errorf("DOALLNs = %d, want 150", b.DOALLNs)
	}
	if b.WavefrontNs != 70 {
		t.Errorf("WavefrontNs = %d, want 70 (chunk 30 + inline plane 40)", b.WavefrontNs)
	}
	if b.DoacrossNs != 100 || b.StolenNs != 60 {
		t.Errorf("DoacrossNs = %d StolenNs = %d, want 100, 60", b.DoacrossNs, b.StolenNs)
	}
	if b.PipelineNs != 80 {
		t.Errorf("PipelineNs = %d, want 80", b.PipelineNs)
	}
	if b.ComputeNs != 150+70+100+80 {
		t.Errorf("ComputeNs = %d, want %d", b.ComputeNs, 150+70+100+80)
	}
	if b.DoacrossStallNs != 25 || b.PipelineStallNs != 15 || b.StallNs() != 40 {
		t.Errorf("stalls = %d/%d, want 25/15", b.DoacrossStallNs, b.PipelineStallNs)
	}
	// Dispatched plane 90ns × 2 workers minus the 30ns wavefront chunk.
	if b.BarrierIdleNs != 2*90-30 {
		t.Errorf("BarrierIdleNs = %d, want %d", b.BarrierIdleNs, 2*90-30)
	}
	wantIdle := int64(workers)*1000 - b.ComputeNs - b.StallNs() - b.BarrierIdleNs
	if b.IdleNs != wantIdle {
		t.Errorf("IdleNs = %d, want %d", b.IdleNs, wantIdle)
	}
	if b.SpecFallbacks != 9 || b.ArenaReuses != 1 {
		t.Errorf("SpecFallbacks = %d ArenaReuses = %d, want 9, 1", b.SpecFallbacks, b.ArenaReuses)
	}
	if b.Events != 12 || b.Dropped != 0 {
		t.Errorf("Events = %d Dropped = %d, want 12, 0", b.Events, b.Dropped)
	}
	s := b.String()
	for _, want := range []string{"wall=1µs", "workers=2", "compute=400ns", "stall=40ns", "stolen=60ns", "spec_fallback_points=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
	if strings.Contains(s, "dropped=") {
		t.Errorf("String() shows dropped with none lost: %q", s)
	}
}

func TestBreakdownIdleClamp(t *testing.T) {
	// Pipeline replicas can oversubscribe workers: compute beyond
	// workers × wall must clamp idle at zero, not go negative.
	r := NewRecorder(8)
	g := r.Acquire()
	g.Emit(KStage, 0, 5000, 0, 0)
	r.Release(g)
	b := r.Breakdown(1, time.Microsecond) // wall 1000ns < compute 5000ns
	if b.IdleNs != 0 {
		t.Errorf("IdleNs = %d, want clamped 0", b.IdleNs)
	}
	if b.Workers != 1 {
		t.Errorf("Workers = %d, want 1", b.Workers)
	}
}

func TestBreakdownWorkerFloorAndDropped(t *testing.T) {
	r := NewRecorder(2)
	g := r.Acquire()
	for i := 0; i < 5; i++ {
		g.Emit(KDoAll, int64(i), 1, 1, 0)
	}
	r.Release(g)
	b := r.Breakdown(0, time.Millisecond)
	if b.Workers != 1 {
		t.Errorf("Workers = %d, want floor 1", b.Workers)
	}
	if b.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", b.Dropped)
	}
	if !strings.Contains(b.String(), "dropped=3") {
		t.Errorf("String() should report dropped events: %q", b.String())
	}
}

// chromeTrace mirrors the JSON shape WriteChrome emits.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder(16)
	g0 := r.Acquire()
	g0.Emit(KActivation, 0, 2000, 0, 0)
	g0.Emit(KPlane, 100, 500, 3, 1)
	g0.Emit(KSpecFallback, 700, 0, 2, 11)
	r.Release(g0)
	g1 := r.Acquire() // reuses ring 0; acquire a second concurrently
	g2 := r.Acquire()
	g2.Emit(KTile, 1000, 250, 4, 9<<1|1)
	g2.Emit(KStageStall, 1300, 40, 1, 0)
	r.Release(g1)
	r.Release(g2)

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, "prog/mod"); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}

	byName := map[string]int{}
	for _, ev := range tr.TraceEvents {
		byName[ev.Name]++
		switch ev.Name {
		case "process_name":
			if ev.Args["name"] != "prog/mod" {
				t.Errorf("process name = %v, want prog/mod", ev.Args["name"])
			}
		case "activation":
			if ev.Ph != "X" || ev.Ts != 0 || ev.Dur != 2.0 {
				t.Errorf("activation span = %+v (want X, ts 0, dur 2µs)", ev)
			}
		case "plane":
			if ev.Args["t"] != 3.0 || ev.Args["dispatched"] != 1.0 {
				t.Errorf("plane args = %v", ev.Args)
			}
		case "tile":
			if ev.Args["t"] != 4.0 || ev.Args["k"] != 9.0 || ev.Args["stolen"] != 1.0 {
				t.Errorf("tile args = %v (want unpacked k and stolen)", ev.Args)
			}
			if ev.Tid != 1 {
				t.Errorf("tile tid = %d, want ring 1", ev.Tid)
			}
		case "spec-fallback":
			if ev.Ph != "i" || ev.S != "t" {
				t.Errorf("instant = %+v (want ph i, scope t)", ev)
			}
			if ev.Args["eq"] != 2.0 || ev.Args["points"] != 11.0 {
				t.Errorf("spec-fallback args = %v", ev.Args)
			}
		case "stage-stall":
			if ev.Args["stage"] != 1.0 || ev.Args["send"] != 0.0 {
				t.Errorf("stage-stall args = %v", ev.Args)
			}
		}
	}
	if byName["thread_name"] != 2 {
		t.Errorf("thread_name metadata = %d, want one per ring (2)", byName["thread_name"])
	}
	if byName["process_name"] != 1 {
		t.Errorf("process_name metadata = %d, want 1", byName["process_name"])
	}
	if !strings.Contains(buf.String(), `"prog/mod"`) {
		t.Errorf("process name missing from output")
	}
	if !strings.Contains(buf.String(), `"worker 1"`) {
		t.Errorf("thread names missing from output")
	}
}
