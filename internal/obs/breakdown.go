package obs

import (
	"fmt"
	"strings"
	"time"
)

// Breakdown is the aggregated timing of one traced run: where the
// workers' time went, split by schedule and by cost class (compute vs.
// the residual synchronization each schedule pays). All durations are
// nanoseconds summed across workers, so the per-worker identity is
//
//	ComputeNs + StallNs() + BarrierIdleNs + IdleNs = Workers × WallNs
//
// whenever the clamp notes below don't fire.
type Breakdown struct {
	// Workers is the worker count the run was configured with; WallNs
	// the activation's elapsed wall time. Both are supplied by the
	// caller — the recorder only sees spans.
	Workers int
	WallNs  int64

	// ComputeNs sums the executors' working spans: sequential DOALL
	// steps, parallel chunks (plain and wavefront), inline planes,
	// doacross tiles and pipeline stage bodies.
	ComputeNs int64
	// Per-schedule slices of ComputeNs.
	DOALLNs     int64 // sequential DOALL steps + plain chunks
	WavefrontNs int64 // inline planes + plane chunks (barrier schedule)
	DoacrossNs  int64 // tile instances
	PipelineNs  int64 // stage body invocations
	// StolenNs is the subset of DoacrossNs run by non-home workers.
	StolenNs int64

	// DoacrossStallNs sums parked doacross waits; PipelineStallNs sums
	// blocking channel waits of pipeline stages.
	DoacrossStallNs int64
	PipelineStallNs int64
	// BarrierIdleNs estimates the fork/join slack of dispatched
	// wavefront planes: workers × the planes' dispatch spans, minus the
	// compute the member chunks actually did (clamped at zero). Inline
	// planes contribute nothing — they have no join.
	BarrierIdleNs int64
	// IdleNs is the unattributed remainder, workers × wall minus
	// everything above, clamped at zero (pipeline runs can oversubscribe
	// — replicas + the sequential stage can exceed the worker count — in
	// which case compute legitimately exceeds workers × wall).
	IdleNs int64

	// SpecFallbacks counts points that fell back from a specialized
	// kernel to the generic evaluator; ArenaReuses counts recycled
	// activation arrays.
	SpecFallbacks int64
	ArenaReuses   int64

	// Events and Dropped report the recorder's volume: spans emitted
	// and spans lost to ring wraparound (a non-zero Dropped undercounts
	// every sum above).
	Events  int64
	Dropped int64
}

// StallNs is the run's total attributed synchronization time.
func (b *Breakdown) StallNs() int64 { return b.DoacrossStallNs + b.PipelineStallNs }

// Breakdown aggregates the recorded events. workers is the run's
// configured worker count, wall its elapsed time; both come from the
// caller since the recorder only sees spans. Call it only after the
// traced run has returned.
func (r *Recorder) Breakdown(workers int, wall time.Duration) Breakdown {
	if workers < 1 {
		workers = 1
	}
	b := Breakdown{Workers: workers, WallNs: wall.Nanoseconds(), Events: r.Events(), Dropped: r.Dropped()}
	var planeDispatchNs, planeChunkNs int64
	for _, evs := range r.Snapshot() {
		for _, ev := range evs {
			switch ev.Kind {
			case KDoAll:
				b.DOALLNs += ev.Dur
			case KChunk:
				if ev.Arg1 != 0 {
					b.WavefrontNs += ev.Dur
					planeChunkNs += ev.Dur
				} else {
					b.DOALLNs += ev.Dur
				}
			case KPlane:
				if ev.Arg1 != 0 {
					// Dispatched plane: the span covers the fork/join on
					// the sweeping goroutine; the compute is counted by
					// the member KChunk spans, so this only feeds the
					// barrier-idle estimate.
					planeDispatchNs += ev.Dur
				} else {
					b.WavefrontNs += ev.Dur
				}
			case KTile:
				b.DoacrossNs += ev.Dur
				if ev.Arg1&1 != 0 {
					b.StolenNs += ev.Dur
				}
			case KTileWait:
				b.DoacrossStallNs += ev.Dur
			case KStage:
				b.PipelineNs += ev.Dur
			case KStageStall:
				b.PipelineStallNs += ev.Dur
			case KSpecFallback:
				b.SpecFallbacks += ev.Arg1
			case KArenaReuse:
				b.ArenaReuses++
			}
		}
	}
	b.ComputeNs = b.DOALLNs + b.WavefrontNs + b.DoacrossNs + b.PipelineNs
	if idle := int64(workers)*planeDispatchNs - planeChunkNs; idle > 0 {
		b.BarrierIdleNs = idle
	}
	if idle := int64(workers)*b.WallNs - b.ComputeNs - b.StallNs() - b.BarrierIdleNs; idle > 0 {
		b.IdleNs = idle
	}
	return b
}

// String renders the breakdown on a few lines, durations humanized —
// what `psrun -stats` and Explain print.
func (b *Breakdown) String() string {
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	var sb strings.Builder
	fmt.Fprintf(&sb, "wall=%v workers=%d compute=%v stall=%v barrier_idle=%v idle=%v",
		d(b.WallNs), b.Workers, d(b.ComputeNs), d(b.StallNs()), d(b.BarrierIdleNs), d(b.IdleNs))
	fmt.Fprintf(&sb, "\n  compute: doall=%v wavefront=%v doacross=%v (stolen=%v) pipeline=%v",
		d(b.DOALLNs), d(b.WavefrontNs), d(b.DoacrossNs), d(b.StolenNs), d(b.PipelineNs))
	fmt.Fprintf(&sb, "\n  stalls: doacross=%v pipeline=%v; spec_fallback_points=%d arena_reuses=%d events=%d",
		d(b.DoacrossStallNs), d(b.PipelineStallNs), b.SpecFallbacks, b.ArenaReuses, b.Events)
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, " dropped=%d", b.Dropped)
	}
	return sb.String()
}
