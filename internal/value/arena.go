package value

import (
	"math/bits"
	"sync"

	"repro/internal/types"
)

// arenaClasses bounds the size-class table: class c holds backings of
// capacity 1<<c elements, so 40 classes cover every array the 64-bit
// address space can hold with room to spare.
const arenaClasses = 40

// arenaMaxClass caps which classes are actually pooled. Arrays at or
// beyond 1<<24 elements (128 MiB of float64) are allocated at exact
// size and never recycled: rounding such an array up to its class
// capacity can nearly double a multi-hundred-megabyte commitment, and
// the first-touch page-fault cost of a backing that large dwarfs the
// per-activation allocation savings pooling exists to avoid.
const arenaMaxClass = 24

// Arena recycles activation arrays across runs. Repeated runs of the
// same module allocate identically-shaped recurrence arrays every time;
// without pooling each activation pays five allocations per array
// (descriptor, layout slices, backing) plus zeroing. The arena keeps
// per-kind, size-classed free lists of whole *Array objects (sync.Pool,
// so idle memory is still reclaimable by the GC) and hands back a
// previous activation's array — descriptor, layout slices and backing
// store together — when one fits. Pooling the object rather than the
// bare backing also avoids the interface boxing a slice-valued
// sync.Pool would pay on every Put.
//
// Correctness contract: a reused backing still holds the previous run's
// values, so the caller must pass zero=true for any array whose garbage
// could be observed — the interpreter derives that from its
// write-coverage analysis and always zeroes when it cannot prove every
// element is written before being read. Strict-mode arrays bypass the
// arena entirely (definedness tracking wants virgin storage), as do
// boxed (string/record) arrays.
//
// An Arena is safe for concurrent use.
type Arena struct {
	f [arenaClasses]sync.Pool // real arrays, backing capacity 1<<c
	i [arenaClasses]sync.Pool // int-backed arrays (int, subrange, char, enum)
	b [arenaClasses]sync.Pool // bool arrays
}

// sizeClass returns the smallest class whose capacity 1<<c holds n
// elements.
func sizeClass(n int64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// layout (re)builds a's strides and physical dimensions for axes,
// reusing the layout slices when the rank matches, and returns the
// physical element count.
func (a *Array) layout(axes []Axis) int64 {
	a.Axes = axes
	if len(a.Strides) != len(axes) {
		a.Strides = make([]int64, len(axes))
		a.PhysDims = make([]int64, len(axes))
	}
	size := int64(1)
	for i := len(axes) - 1; i >= 0; i-- {
		a.Strides[i] = size
		a.PhysDims[i] = axes[i].Phys()
		size *= a.PhysDims[i]
	}
	if size < 0 {
		panic("value: negative array size")
	}
	return size
}

// NewArrayIn allocates an array like NewArray, drawing the whole array
// object from the arena when a recycled one fits. zero forces the
// recycled backing to be cleared; fresh allocations are always zero.
// reused reports whether a pooled array was actually recycled (the
// arena's hit counter).
func (ar *Arena) NewArrayIn(kind types.Kind, axes []Axis, zero bool) (a *Array, reused bool) {
	if ar == nil {
		return NewArray(kind, axes), false
	}
	var pool *[arenaClasses]sync.Pool
	switch kind {
	case types.RealKind:
		pool = &ar.f
	case types.BoolKind:
		pool = &ar.b
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		pool = &ar.i
	default:
		// Boxed backings hold pointers the GC must trace; recycling them
		// is not worth the retention risk.
		return NewArray(kind, axes), false
	}
	size := int64(1)
	for i := range axes {
		size *= axes[i].Phys()
	}
	if size < 0 {
		panic("value: negative array size")
	}
	class := sizeClass(size)
	if class >= arenaMaxClass {
		return NewArray(kind, axes), false
	}
	if v := pool[class].Get(); v != nil {
		a = v.(*Array)
		a.Kind = kind
		a.layout(axes)
		switch {
		case a.F != nil:
			a.F = a.F[:size]
			if zero {
				clear(a.F)
			}
		case a.I != nil:
			a.I = a.I[:size]
			if zero {
				clear(a.I)
			}
		default:
			a.B = a.B[:size]
			if zero {
				clear(a.B)
			}
		}
		a.pooled = true
		return a, true
	}
	// Fresh array, allocated at the full class capacity so it can serve
	// any same-class request after release.
	a = &Array{Kind: kind}
	a.layout(axes)
	capacity := int64(1) << class
	switch pool {
	case &ar.f:
		a.F = make([]float64, size, capacity)
	case &ar.b:
		a.B = make([]bool, size, capacity)
	default:
		a.I = make([]int64, size, capacity)
	}
	a.pooled = true
	return a, false
}

// Release returns a — descriptor and backing store — to the arena for
// reuse. Only arrays handed out by NewArrayIn are recycled; Release is
// a no-op for every other array, so callers may release
// unconditionally. The axes are detached, so a stale reference to a
// released array fails fast on its next subscript instead of silently
// aliasing a later activation's storage.
func (ar *Arena) Release(a *Array) {
	if ar == nil || a == nil || !a.pooled {
		return
	}
	a.pooled = false
	a.defined = nil
	a.Axes = nil
	var capacity int64
	var pool *[arenaClasses]sync.Pool
	switch {
	case a.F != nil:
		capacity, pool = int64(cap(a.F)), &ar.f
	case a.I != nil:
		capacity, pool = int64(cap(a.I)), &ar.i
	case a.B != nil:
		capacity, pool = int64(cap(a.B)), &ar.b
	default:
		return
	}
	if c := sizeClass(capacity); capacity == 1<<c && c < arenaMaxClass {
		pool[c].Put(a)
	}
}
