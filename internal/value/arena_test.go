package value_test

import (
	"testing"

	"repro/internal/types"
	"repro/internal/value"
)

func axes2(n int64) []value.Axis {
	return []value.Axis{{Lo: 1, Hi: n}, {Lo: 1, Hi: n}}
}

// reuseIn keeps allocating and releasing until the arena hands back a
// recycled backing. Under the race detector sync.Pool drops a fraction
// of Puts by design, so a single release/request round trip is not
// guaranteed to recycle; retrying makes the reuse assertions exact
// without weakening them.
func reuseIn(t *testing.T, ar *value.Arena, k types.Kind, axes []value.Axis, zero bool, prep func(*value.Array)) *value.Array {
	t.Helper()
	for i := 0; i < 64; i++ {
		a, reused := ar.NewArrayIn(k, axes, zero)
		if reused {
			return a
		}
		if prep != nil {
			prep(a)
		}
		ar.Release(a)
	}
	t.Fatal("arena never reused a released backing")
	return nil
}

// TestArenaRoundTrip pins the reuse contract: a released array comes
// back on the next same-class request — same backing store — and the
// zero flag decides whether the previous activation's values survive.
func TestArenaRoundTrip(t *testing.T) {
	var ar value.Arena
	a, reused := ar.NewArrayIn(types.RealKind, axes2(8), false)
	if reused {
		t.Fatal("fresh arena reported a reuse")
	}
	var backing *float64
	stamp := func(x *value.Array) {
		x.SetF([]int64{3, 4}, 42.5)
		backing = &x.F[0]
	}
	stamp(a)
	ar.Release(a)

	b := reuseIn(t, &ar, types.RealKind, axes2(8), false, stamp)
	if &b.F[0] != backing {
		t.Error("reuse did not return the released backing store")
	}
	if got := b.GetF([]int64{3, 4}); got != 42.5 {
		t.Errorf("unzeroed reuse lost the previous value: got %v", got)
	}
	ar.Release(b)

	c := reuseIn(t, &ar, types.RealKind, axes2(8), true, stamp)
	if got := c.GetF([]int64{3, 4}); got != 0 {
		t.Errorf("zero=true left garbage: got %v", got)
	}
}

// TestArenaReshape reuses one class across different shapes and ranks:
// the layout is rebuilt per request, so a released 2-D array can serve
// a later 1-D activation of the same size class.
func TestArenaReshape(t *testing.T) {
	var ar value.Arena
	a, _ := ar.NewArrayIn(types.RealKind, axes2(8), false) // 64 elements
	ar.Release(a)
	// 50 elements lands in the same 64-capacity class.
	b := reuseIn(t, &ar, types.RealKind, []value.Axis{{Lo: 0, Hi: 49}}, true, nil)
	if b.Rank() != 1 || b.Len() != 50 {
		t.Fatalf("reshaped array has rank %d len %d", b.Rank(), b.Len())
	}
	b.SetF([]int64{49}, 1) // the last logical element must be addressable
	if b.GetF([]int64{49}) != 1 {
		t.Error("reshaped array misaddresses")
	}
}

// TestArenaKinds pins the per-kind pools: int-backed kinds share one
// pool, bool and real have their own, and boxed kinds bypass the arena.
func TestArenaKinds(t *testing.T) {
	var ar value.Arena
	a, _ := ar.NewArrayIn(types.IntKind, axes2(4), false)
	ar.Release(a)
	if _, reused := ar.NewArrayIn(types.RealKind, axes2(4), false); reused {
		t.Error("real request reused an int backing")
	}
	charReused := false
	for i := 0; i < 64 && !charReused; i++ {
		ia, _ := ar.NewArrayIn(types.IntKind, axes2(4), false)
		ar.Release(ia)
		_, charReused = ar.NewArrayIn(types.CharKind, axes2(4), false)
	}
	if !charReused {
		t.Error("char request did not reuse the int-backed pool")
	}
	s, reused := ar.NewArrayIn(types.StringKind, axes2(4), false)
	if reused {
		t.Error("boxed array reported a reuse")
	}
	ar.Release(s) // must be a no-op, not a panic
	if _, reused := ar.NewArrayIn(types.StringKind, axes2(4), false); reused {
		t.Error("boxed array was recycled")
	}
}

// TestArenaRelease pins the safety edges: releasing nil, double
// release, arrays from NewArray (never pooled), and the fail-fast
// detach — a released array's axes are gone, so stale subscripting
// panics instead of silently aliasing a later activation.
func TestArenaRelease(t *testing.T) {
	var ar value.Arena
	ar.Release(nil)
	plain := value.NewArray(types.RealKind, axes2(4))
	ar.Release(plain) // no-op
	if _, reused := ar.NewArrayIn(types.RealKind, axes2(4), false); reused {
		t.Error("NewArray allocation leaked into the arena")
	}

	a, _ := ar.NewArrayIn(types.RealKind, axes2(4), false)
	ar.Release(a)
	ar.Release(a) // double release must not double-pool
	b, _ := ar.NewArrayIn(types.RealKind, axes2(4), false)
	c, reused := ar.NewArrayIn(types.RealKind, axes2(4), false)
	if reused && &b.F[0] == &c.F[0] {
		t.Error("double release handed the same backing out twice")
	}

	d, _ := ar.NewArrayIn(types.RealKind, axes2(4), false)
	ar.Release(d)
	// d now sits in the pool with its axes detached; touching it through
	// the stale reference must fail fast rather than read pooled storage.
	defer func() {
		if recover() == nil {
			t.Error("stale access to a released array did not panic")
		}
	}()
	d.GetF([]int64{1, 1})
}

// TestArenaNil pins the nil-arena fallback used by strict and NoArena
// runs: plain allocation, never pooled.
func TestArenaNil(t *testing.T) {
	var ar *value.Arena
	a, reused := ar.NewArrayIn(types.RealKind, axes2(4), true)
	if reused || a == nil {
		t.Fatal("nil arena must fall back to plain allocation")
	}
	ar.Release(a) // no-op on nil receiver
}

// BenchmarkArenaActivation measures the repeated-activation allocation
// path with and without the arena; the arena variant must run
// allocation-free after warm-up.
func BenchmarkArenaActivation(b *testing.B) {
	axes := axes2(64)
	b.Run("Arena", func(b *testing.B) {
		var ar value.Arena
		warm, _ := ar.NewArrayIn(types.RealKind, axes, false)
		ar.Release(warm)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, _ := ar.NewArrayIn(types.RealKind, axes, false)
			ar.Release(a)
		}
	})
	b.Run("NoArena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = value.NewArray(types.RealKind, axes)
		}
	})
}
