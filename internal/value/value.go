// Package value implements PS runtime values: scalars, records, and
// multi-dimensional arrays whose dimensions may be *virtual* — allocated
// as a sliding window of planes (paper §3.4) instead of in full. A window
// of w planes stores logical plane x at physical plane (x-lo) mod w, which
// is exactly safe when the scheduler has proven that no reference reaches
// back more than w-1 planes.
package value

import (
	"fmt"
	"math"

	"repro/internal/types"
)

// Error is the panic payload for runtime value errors (subscripts out of
// range, strict-mode violations); executors recover it at module
// boundaries and surface it as an ordinary error.
type Error string

// Error implements the error interface.
func (e Error) Error() string { return string(e) }

func errf(format string, args ...any) Error {
	return Error(fmt.Sprintf(format, args...))
}

// Axis describes one array dimension at run time.
type Axis struct {
	Lo, Hi int64 // inclusive logical bounds
	// Window is 0 for a physically allocated dimension, else the number
	// of live planes.
	Window int
}

// Extent is the logical number of elements along the axis.
func (ax Axis) Extent() int64 { return ax.Hi - ax.Lo + 1 }

// Phys is the allocated number of planes along the axis.
func (ax Axis) Phys() int64 {
	if ax.Window > 0 && int64(ax.Window) < ax.Extent() {
		return int64(ax.Window)
	}
	return ax.Extent()
}

// Array is an n-dimensional PS array. The element kind selects the typed
// backing store; only one of F, I, B, S is non-nil.
type Array struct {
	Kind types.Kind
	Axes []Axis
	// Strides and PhysDims are the physical layout, exported for the
	// interpreter's inlined element addressing.
	Strides  []int64
	PhysDims []int64
	F        []float64
	I        []int64 // also backs char and enum ordinals
	B        []bool
	S        []any // strings and records (boxed)

	// defined, when non-nil, tracks definedness per element to detect
	// reads of undefined elements and single-assignment violations.
	defined []bool

	// pooled marks a backing slice handed out by an Arena, so Release
	// knows the storage may be recycled.
	pooled bool
}

// NewArray allocates an array of the given element kind and axes.
func NewArray(kind types.Kind, axes []Axis) *Array {
	a := &Array{Kind: kind, Axes: axes}
	size := int64(1)
	a.Strides = make([]int64, len(axes))
	a.PhysDims = make([]int64, len(axes))
	for i := len(axes) - 1; i >= 0; i-- {
		a.Strides[i] = size
		a.PhysDims[i] = axes[i].Phys()
		size *= axes[i].Phys()
	}
	if size < 0 {
		panic("value: negative array size")
	}
	switch kind {
	case types.RealKind:
		a.F = make([]float64, size)
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind, types.BoolKind:
		if kind == types.BoolKind {
			a.B = make([]bool, size)
		} else {
			a.I = make([]int64, size)
		}
	default:
		a.S = make([]any, size)
	}
	return a
}

// EnableStrict turns on definedness tracking (single-assignment checking).
func (a *Array) EnableStrict() {
	if a.defined == nil {
		a.defined = make([]bool, a.Len())
	}
}

// Strict reports whether definedness tracking is active.
func (a *Array) Strict() bool { return a.defined != nil }

// Len returns the allocated element count.
func (a *Array) Len() int64 {
	n := int64(1)
	for _, ax := range a.Axes {
		n *= ax.Phys()
	}
	return n
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Axes) }

// Offset maps logical indices to the physical element offset, applying
// window wrap-around on virtual axes. It panics with a descriptive error
// on out-of-range indices.
func (a *Array) Offset(idx []int64) int64 {
	if len(idx) != len(a.Axes) {
		panic(errf("value: %d subscripts for rank-%d array", len(idx), len(a.Axes)))
	}
	var off int64
	for d, x := range idx {
		ax := a.Axes[d]
		if x < ax.Lo || x > ax.Hi {
			panic(errf("value: subscript %d out of range %d..%d in dimension %d", x, ax.Lo, ax.Hi, d+1))
		}
		p := x - ax.Lo
		if w := ax.Phys(); p >= w {
			p %= w
		}
		off += p * a.Strides[d]
	}
	return off
}

// OffsetChecked is Offset returning an error instead of panicking.
func (a *Array) OffsetChecked(idx []int64) (int64, error) {
	if len(idx) != len(a.Axes) {
		return 0, fmt.Errorf("value: %d subscripts for rank-%d array", len(idx), len(a.Axes))
	}
	for d, x := range idx {
		ax := a.Axes[d]
		if x < ax.Lo || x > ax.Hi {
			return 0, fmt.Errorf("value: subscript %d out of range %d..%d in dimension %d", x, ax.Lo, ax.Hi, d+1)
		}
	}
	return a.Offset(idx), nil
}

// GetF reads a real element.
func (a *Array) GetF(idx []int64) float64 { return a.F[a.checkedRead(idx)] }

// SetF writes a real element.
func (a *Array) SetF(idx []int64, v float64) { a.F[a.checkedWrite(idx)] = v }

// GetI reads an integer-backed element (int, subrange, char, enum).
func (a *Array) GetI(idx []int64) int64 { return a.I[a.checkedRead(idx)] }

// SetI writes an integer-backed element.
func (a *Array) SetI(idx []int64, v int64) { a.I[a.checkedWrite(idx)] = v }

// GetB reads a bool element.
func (a *Array) GetB(idx []int64) bool { return a.B[a.checkedRead(idx)] }

// SetB writes a bool element.
func (a *Array) SetB(idx []int64, v bool) { a.B[a.checkedWrite(idx)] = v }

// Get reads an element as a boxed value.
func (a *Array) Get(idx []int64) any {
	off := a.checkedRead(idx)
	switch {
	case a.F != nil:
		return a.F[off]
	case a.I != nil:
		return a.I[off]
	case a.B != nil:
		return a.B[off]
	default:
		return a.S[off]
	}
}

// Set writes a boxed value, converting integers to reals when needed.
func (a *Array) Set(idx []int64, v any) {
	off := a.checkedWrite(idx)
	switch {
	case a.F != nil:
		a.F[off] = ToFloat(v)
	case a.I != nil:
		a.I[off] = ToInt(v)
	case a.B != nil:
		a.B[off] = v.(bool)
	default:
		a.S[off] = v
	}
}

func (a *Array) checkedRead(idx []int64) int64 {
	off := a.Offset(idx)
	if a.defined != nil && !a.defined[off] {
		// The message deliberately omits idx: formatting the slice would
		// force every caller's subscript buffer onto the heap, even on
		// the never-panicking path (escape analysis is static).
		panic(errf("value: read of undefined element (physical offset %d)", off))
	}
	return off
}

func (a *Array) checkedWrite(idx []int64) int64 {
	off := a.Offset(idx)
	if a.defined != nil {
		if a.defined[off] && !a.windowed() {
			panic(errf("value: element defined twice (single assignment violated; physical offset %d)", off))
		}
		a.defined[off] = true
	}
	return off
}

// windowed reports whether any axis is virtual (window reuse makes
// re-writing a physical slot legal).
func (a *Array) windowed() bool {
	for _, ax := range a.Axes {
		if ax.Window > 0 && int64(ax.Window) < ax.Extent() {
			return true
		}
	}
	return false
}

// Fill sets every element of a real array (test helper).
func (a *Array) Fill(v float64) {
	for i := range a.F {
		a.F[i] = v
	}
	if a.defined != nil {
		for i := range a.defined {
			a.defined[i] = true
		}
	}
}

// FillNaN marks every real element as not-a-number, for debugging reads
// of undefined elements without strict mode.
func (a *Array) FillNaN() {
	nan := math.NaN()
	for i := range a.F {
		a.F[i] = nan
	}
}

// Equal reports element-wise equality of two arrays of identical shape.
func (a *Array) Equal(b *Array) bool {
	if a.Kind != b.Kind || len(a.Axes) != len(b.Axes) {
		return false
	}
	for i := range a.Axes {
		if a.Axes[i].Lo != b.Axes[i].Lo || a.Axes[i].Hi != b.Axes[i].Hi {
			return false
		}
	}
	idx := make([]int64, len(a.Axes))
	for d := range idx {
		idx[d] = a.Axes[d].Lo
	}
	for {
		if a.Get(idx) != b.Get(idx) {
			return false
		}
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= a.Axes[d].Hi {
				break
			}
			idx[d] = a.Axes[d].Lo
			d--
		}
		if d < 0 {
			return true
		}
	}
}

// MaxAbsDiff returns the maximum absolute element difference of two real
// arrays of identical shape (for numerical comparisons).
func (a *Array) MaxAbsDiff(b *Array) float64 {
	var worst float64
	for i := range a.F {
		d := math.Abs(a.F[i] - b.F[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Record is a PS record value: field values in declaration order.
type Record struct {
	Type   *types.Record
	Fields []any
}

// Field returns the named field's value.
func (r *Record) Field(name string) any {
	for i, f := range r.Type.Fields {
		if f.Name == name {
			return r.Fields[i]
		}
	}
	panic(errf("value: record has no field %s", name))
}

// ToFloat converts a numeric boxed value to float64.
func ToFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int:
		return float64(x)
	}
	panic(errf("value: cannot convert %T to real", v))
}

// ToInt converts a numeric boxed value to int64.
func ToInt(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	panic(errf("value: cannot convert %T to int", v))
}
