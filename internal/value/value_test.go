package value_test

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/value"
)

// TestPhysicalArray covers plain allocation and addressing.
func TestPhysicalArray(t *testing.T) {
	a := value.NewArray(types.RealKind, []value.Axis{
		{Lo: 0, Hi: 3}, {Lo: 1, Hi: 2},
	})
	if a.Len() != 8 {
		t.Fatalf("len %d, want 8", a.Len())
	}
	v := 0.0
	for i := int64(0); i <= 3; i++ {
		for j := int64(1); j <= 2; j++ {
			a.SetF([]int64{i, j}, v)
			v++
		}
	}
	v = 0.0
	for i := int64(0); i <= 3; i++ {
		for j := int64(1); j <= 2; j++ {
			if got := a.GetF([]int64{i, j}); got != v {
				t.Errorf("a[%d,%d] = %g, want %g", i, j, got, v)
			}
			v++
		}
	}
}

// TestWindowedArray verifies §3.4 window semantics: plane x aliases plane
// x-w, and the most recent w planes are always intact.
func TestWindowedArray(t *testing.T) {
	const w = 2
	a := value.NewArray(types.RealKind, []value.Axis{
		{Lo: 1, Hi: 10, Window: w}, {Lo: 0, Hi: 4},
	})
	if a.Len() != int64(w*5) {
		t.Fatalf("windowed len %d, want %d", a.Len(), w*5)
	}
	for k := int64(1); k <= 10; k++ {
		for j := int64(0); j <= 4; j++ {
			a.SetF([]int64{k, j}, float64(100*k)+float64(j))
		}
		// The current and previous planes must be readable.
		for back := int64(0); back < w && k-back >= 1; back++ {
			for j := int64(0); j <= 4; j++ {
				want := float64(100*(k-back)) + float64(j)
				if got := a.GetF([]int64{k - back, j}); got != want {
					t.Fatalf("after writing plane %d: a[%d,%d] = %g, want %g", k, k-back, j, got, want)
				}
			}
		}
	}
}

// TestWindowAliasing is a property test: with window w, logical planes x
// and y share storage exactly when (x-lo) ≡ (y-lo) mod w.
func TestWindowAliasing(t *testing.T) {
	f := func(loRaw int8, extentRaw, wRaw uint8, xOff, yOff uint8) bool {
		lo := int64(loRaw)
		extent := int64(extentRaw%40) + 2
		w := int(wRaw%5) + 1
		a := value.NewArray(types.RealKind, []value.Axis{{Lo: lo, Hi: lo + extent - 1, Window: w}})
		x := lo + int64(xOff)%extent
		y := lo + int64(yOff)%extent
		ox := a.Offset([]int64{x})
		oy := a.Offset([]int64{y})
		wEff := int64(w)
		if wEff > extent {
			wEff = extent
		}
		alias := (x-lo)%wEff == (y-lo)%wEff
		return (ox == oy) == alias
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOutOfRange covers subscript validation.
func TestOutOfRange(t *testing.T) {
	a := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: 3}})
	if _, err := a.OffsetChecked([]int64{0}); err == nil {
		t.Error("below-lo subscript accepted")
	}
	if _, err := a.OffsetChecked([]int64{4}); err == nil {
		t.Error("above-hi subscript accepted")
	}
	if _, err := a.OffsetChecked([]int64{1, 1}); err == nil {
		t.Error("wrong-rank subscript accepted")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("Offset did not panic out of range")
		} else if _, ok := r.(value.Error); !ok {
			t.Errorf("panic payload %T, want value.Error", r)
		}
	}()
	a.Offset([]int64{7})
}

// TestStrictMode covers single-assignment and undefined-read detection.
func TestStrictMode(t *testing.T) {
	a := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: 3}})
	a.EnableStrict()
	a.SetF([]int64{1}, 5)
	if got := a.GetF([]int64{1}); got != 5 {
		t.Errorf("got %g", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double write not detected")
			}
		}()
		a.SetF([]int64{1}, 6)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("undefined read not detected")
			}
		}()
		a.GetF([]int64{2})
	}()
	// Windowed arrays may legally rewrite physical slots.
	w := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: 8, Window: 2}})
	w.EnableStrict()
	for k := int64(1); k <= 8; k++ {
		w.SetF([]int64{k}, float64(k))
	}
}

// TestIntBoolBackings covers the non-real element kinds.
func TestIntBoolBackings(t *testing.T) {
	ai := value.NewArray(types.IntKind, []value.Axis{{Lo: 0, Hi: 2}})
	ai.SetI([]int64{1}, 42)
	if ai.GetI([]int64{1}) != 42 {
		t.Error("int array roundtrip failed")
	}
	ab := value.NewArray(types.BoolKind, []value.Axis{{Lo: 0, Hi: 2}})
	ab.SetB([]int64{2}, true)
	if !ab.GetB([]int64{2}) {
		t.Error("bool array roundtrip failed")
	}
	if ai.Get([]int64{1}).(int64) != 42 {
		t.Error("boxed int read failed")
	}
	ai.Set([]int64{0}, int64(7))
	if ai.GetI([]int64{0}) != 7 {
		t.Error("boxed int write failed")
	}
}

// TestEqualAndDiff covers the comparison helpers.
func TestEqualAndDiff(t *testing.T) {
	mk := func() *value.Array {
		a := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}})
		a.SetF([]int64{0, 0}, 1)
		a.SetF([]int64{0, 1}, 2)
		a.SetF([]int64{1, 0}, 3)
		a.SetF([]int64{1, 1}, 4)
		return a
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Error("identical arrays unequal")
	}
	b.SetF([]int64{1, 1}, 6.5)
	if a.Equal(b) {
		t.Error("different arrays equal")
	}
	if d := a.MaxAbsDiff(b); d != 2.5 {
		t.Errorf("max diff %g, want 2.5", d)
	}
	c := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: 2}})
	if a.Equal(c) {
		t.Error("shape-mismatched arrays equal")
	}
}

// TestRecord covers record field access.
func TestRecord(t *testing.T) {
	rt := &types.Record{Fields: []*types.RecField{
		{Name: "x", Type: types.Real}, {Name: "y", Type: types.Real},
	}}
	r := &value.Record{Type: rt, Fields: []any{1.5, 2.5}}
	if r.Field("y").(float64) != 2.5 {
		t.Error("field access failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("missing field access did not panic")
		}
	}()
	r.Field("z")
}

// TestConversions covers the boxing helpers.
func TestConversions(t *testing.T) {
	if value.ToFloat(int64(3)) != 3.0 || value.ToFloat(2.5) != 2.5 || value.ToFloat(4) != 4.0 {
		t.Error("ToFloat failed")
	}
	if value.ToInt(3.9) != 3 || value.ToInt(int64(5)) != 5 || value.ToInt(6) != 6 {
		t.Error("ToInt failed")
	}
}
