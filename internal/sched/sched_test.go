package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

// refGrid fills a (planes × span) grid sequentially with the recurrence
// cell(t,c) = 1 + Σ_d cell(t-d.dt, c-d.shift) (0 outside the grid) — the
// reference every doacross execution must reproduce exactly.
type dep struct {
	dt    int
	shift int64
}

func refGrid(tlo, thi, clo, chi int64, deps []dep) map[[2]int64]int64 {
	g := make(map[[2]int64]int64)
	for t := tlo; t <= thi; t++ {
		for c := clo; c <= chi; c++ {
			v := int64(1)
			for _, d := range deps {
				v += g[[2]int64{t - int64(d.dt), c - d.shift}]
			}
			g[[2]int64{t, c}] = v
		}
	}
	return g
}

// nestFor derives the Nest dependence metadata from explicit deps.
func nestFor(tlo, thi, clo, chi int64, deps []dep, workers int, tileW int64) Nest {
	window := 1
	for _, d := range deps {
		if d.dt+1 > window {
			window = d.dt + 1
		}
	}
	preds := make([]PredRange, window-1)
	for _, d := range deps {
		pr := &preds[d.dt-1]
		if !pr.Has {
			*pr = PredRange{Has: true, Lo: d.shift, Hi: d.shift}
			continue
		}
		if d.shift < pr.Lo {
			pr.Lo = d.shift
		}
		if d.shift > pr.Hi {
			pr.Hi = d.shift
		}
	}
	return Nest{TLo: tlo, THi: thi, CoordLo: clo, CoordHi: chi,
		Window: window, Preds: preds, Workers: workers, TileWidth: tileW}
}

// runGrid executes the recurrence through the doacross executor into a
// flat array (no locks: correctness of the schedule IS the test, and
// -race verifies the happens-before edges of the completion counters).
func runGrid(t *testing.T, tlo, thi, clo, chi int64, deps []dep, workers int, tileW int64, stats *Stats) map[[2]int64]int64 {
	t.Helper()
	span := chi - clo + 1
	cells := make([]int64, (thi-tlo+1)*span)
	at := func(tt, c int64) *int64 { return &cells[(tt-tlo)*span+(c-clo)] }
	get := func(tt, c int64) int64 {
		if tt < tlo || tt > thi || c < clo || c > chi {
			return 0
		}
		return *at(tt, c)
	}
	pool := par.NewPool(workers)
	defer pool.Close()
	nest := nestFor(tlo, thi, clo, chi, deps, workers, tileW)
	completed := Run(nest, pool, nil, func(_ int, tt int64, _ int, lo, hi int64) bool {
		for c := lo; c <= hi; c++ {
			v := int64(1)
			for _, d := range deps {
				v += get(tt-int64(d.dt), c-d.shift)
			}
			*at(tt, c) = v
		}
		return true
	}, stats, nil)
	if !completed {
		t.Fatal("doacross run did not complete")
	}
	out := make(map[[2]int64]int64)
	for tt := tlo; tt <= thi; tt++ {
		for c := clo; c <= chi; c++ {
			out[[2]int64{tt, c}] = get(tt, c)
		}
	}
	return out
}

// TestDoacrossMatchesSequential sweeps dependence shapes, worker counts
// and tile widths; every execution must be bitwise identical to the
// sequential reference. Run under -race this also checks that the
// completion counters publish every cross-tile read.
func TestDoacrossMatchesSequential(t *testing.T) {
	shapes := []struct {
		name string
		deps []dep
	}{
		{"window2_right", []dep{{1, 0}, {1, 1}}},
		{"window2_both", []dep{{1, -1}, {1, 1}}},
		{"window3_gs", []dep{{1, 0}, {1, 1}, {2, 1}}}, // Gauss–Seidel shape
		{"window4_far", []dep{{1, -2}, {3, 5}}},
		{"window2_wide", []dep{{1, -7}, {1, 7}}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			const tlo, thi, clo, chi = 2, 33, -5, 40
			want := refGrid(tlo, thi, clo, chi, sh.deps)
			for _, workers := range []int{1, 2, 3, 8} {
				for _, tileW := range []int64{0, 1, 5, 46} {
					got := runGrid(t, tlo, thi, clo, chi, sh.deps, workers, tileW, nil)
					for k, w := range want {
						if got[k] != w {
							t.Fatalf("workers=%d tileW=%d: cell(%d,%d) = %d, want %d",
								workers, tileW, k[0], k[1], got[k], w)
						}
					}
				}
			}
		})
	}
}

// TestDoacrossStats pins the tile accounting: every (plane, tile)
// instance is counted once, and a pipeline whose tiles serialize behind
// one slow tile must record stalls.
func TestDoacrossStats(t *testing.T) {
	var stats Stats
	const tlo, thi, clo, chi = 0, 9, 0, 19
	deps := []dep{{1, 1}}
	runGrid(t, tlo, thi, clo, chi, deps, 4, 5, &stats)
	ntiles, tileW := int64(4), int64(5)
	_ = tileW
	if got, want := stats.Tiles.Load(), (thi-tlo+1)*ntiles; got != want {
		t.Errorf("Tiles = %d, want %d", got, want)
	}

	// A full-span predecessor range makes every tile wait on the whole
	// previous plane; with tile 0 artificially slow, the other worker
	// runs out of ready instances and must park.
	var slow Stats
	pool := par.NewPool(2)
	defer pool.Close()
	nest := Nest{TLo: 0, THi: 5, CoordLo: 0, CoordHi: 19, Window: 2,
		Preds: []PredRange{{Has: true, Lo: -20, Hi: 20}}, Workers: 2, TileWidth: 10}
	completed := Run(nest, pool, nil, func(_ int, tt int64, k int, _, _ int64) bool {
		if k == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return true
	}, &slow, nil)
	if !completed {
		t.Fatal("slow-tile run did not complete")
	}
	if slow.Stalls.Load() == 0 {
		t.Error("serialized pipeline recorded no stalls")
	}
}

// TestDoacrossSteals forces imbalance: one home set finishes early and
// its worker must steal the remaining tiles' instances.
func TestDoacrossSteals(t *testing.T) {
	var stats Stats
	pool := par.NewPool(4)
	defer pool.Close()
	nest := Nest{TLo: 0, THi: 40, CoordLo: 0, CoordHi: 39, Window: 2,
		Preds: []PredRange{{Has: true, Lo: 0, Hi: 0}}, Workers: 4, TileWidth: 5}
	var slowTile atomic.Int64
	slowTile.Store(7)
	completed := Run(nest, pool, nil, func(_ int, tt int64, k int, _, _ int64) bool {
		if int64(k) == slowTile.Load() {
			time.Sleep(50 * time.Microsecond)
		}
		return true
	}, &stats, nil)
	if !completed {
		t.Fatal("run did not complete")
	}
	if stats.Steals.Load() == 0 {
		t.Error("imbalanced run recorded no steals (work stealing inactive)")
	}
}

// TestDoacrossCancel closes the cancel channel mid-run: Run must stop
// claiming instances promptly — including parked workers — and report
// !completed.
func TestDoacrossCancel(t *testing.T) {
	pool := par.NewPool(2)
	defer pool.Close()
	cancel := make(chan struct{})
	started := make(chan struct{})
	var once atomic.Bool
	nest := Nest{TLo: 0, THi: 1 << 20, CoordLo: 0, CoordHi: 63, Window: 2,
		Preds: []PredRange{{Has: true, Lo: -64, Hi: 64}}, Workers: 2, TileWidth: 32}
	go func() {
		<-started
		close(cancel)
	}()
	start := time.Now()
	completed := Run(nest, pool, cancel, func(_ int, tt int64, _ int, _, _ int64) bool {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		time.Sleep(20 * time.Microsecond)
		return true
	}, nil, nil)
	if completed {
		t.Fatal("cancelled run reported completion")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestDoacrossBodyAbort checks that a body returning false (the
// interpreter's panic/cancel path) stops the run.
func TestDoacrossBodyAbort(t *testing.T) {
	pool := par.NewPool(3)
	defer pool.Close()
	var ran atomic.Int64
	nest := Nest{TLo: 0, THi: 999, CoordLo: 0, CoordHi: 29, Window: 2,
		Preds: []PredRange{{Has: true, Lo: 0, Hi: 0}}, Workers: 3, TileWidth: 10}
	completed := Run(nest, pool, nil, func(_ int, tt int64, _ int, _, _ int64) bool {
		return ran.Add(1) < 10
	}, nil, nil)
	if completed {
		t.Fatal("aborted run reported completion")
	}
	if n := ran.Load(); n >= 3000 {
		t.Fatalf("abort did not stop the run: %d instances executed", n)
	}
}

// TestDoacrossEmpty covers degenerate nests: empty time range and empty
// coordinate span complete trivially.
func TestDoacrossEmpty(t *testing.T) {
	pool := par.NewPool(2)
	defer pool.Close()
	body := func(_ int, _ int64, _ int, _, _ int64) bool { t.Error("body called"); return true }
	if !Run(Nest{TLo: 5, THi: 4, CoordLo: 0, CoordHi: 9, Window: 2, Workers: 2}, pool, nil, body, nil, nil) {
		t.Error("empty time range did not complete")
	}
	if !Run(Nest{TLo: 0, THi: 4, CoordLo: 9, CoordHi: 0, Window: 2, Workers: 2}, pool, nil, body, nil, nil) {
		t.Error("empty span did not complete")
	}
}

// TestTiles pins the blocking arithmetic Explain reports.
func TestTiles(t *testing.T) {
	cases := []struct {
		nest   Nest
		ntiles int
		tileW  int64
	}{
		{Nest{CoordLo: 0, CoordHi: 99, Workers: 2}, 9, 12},        // width span/(w*4) = 12
		{Nest{CoordLo: 0, CoordHi: 9, Workers: 4}, 10, 1},         // narrow span: unit tiles
		{Nest{CoordLo: 0, CoordHi: 99, TileWidth: 40}, 3, 40},     // explicit width
		{Nest{CoordLo: 0, CoordHi: 9, TileWidth: 1 << 20}, 1, 10}, // clamped to span
		{Nest{CoordLo: 3, CoordHi: 2}, 0, 0},                      // empty
		{Nest{CoordLo: -10, CoordHi: 10, Workers: 1}, 5, 5},       // 21/(1*4)=5
	}
	for i, tc := range cases {
		n, w := tc.nest.Tiles()
		if n != tc.ntiles || w != tc.tileW {
			t.Errorf("case %d: Tiles() = (%d, %d), want (%d, %d)", i, n, w, tc.ntiles, tc.tileW)
		}
	}
}

// TestHomeWorker checks the steal-attribution mapping is the inverse of
// the worker scan assignment: every worker's scan-start tile — and every
// tile in its contiguous home span — must map back to that worker, so a
// worker executing its own tiles is never counted as stealing.
func TestHomeWorker(t *testing.T) {
	for _, tc := range []struct{ ntiles, workers int }{
		{8, 3}, {5, 4}, {4, 2}, {7, 7}, {12, 5}, {3, 2}, {16, 4},
	} {
		r := &run{ntiles: tc.ntiles}
		for w := 0; w < tc.workers; w++ {
			lo := w * tc.ntiles / tc.workers
			hi := (w + 1) * tc.ntiles / tc.workers
			for k := lo; k < hi; k++ {
				if got := r.homeWorker(k, tc.workers); got != w {
					t.Errorf("ntiles=%d workers=%d: homeWorker(%d) = %d, want %d (home span [%d,%d))",
						tc.ntiles, tc.workers, k, got, w, lo, hi)
				}
			}
		}
	}
}

// TestPredTiles pins the predecessor-tile arithmetic, including negative
// shifts and grid clamping.
func TestPredTiles(t *testing.T) {
	r := &run{nest: Nest{CoordLo: 0, CoordHi: 39}, tileW: 10, ntiles: 4}
	cases := []struct {
		k      int
		pr     PredRange
		lo, hi int
	}{
		{1, PredRange{Has: true, Lo: 0, Hi: 0}, 1, 1},    // aligned
		{1, PredRange{Has: true, Lo: 1, Hi: 1}, 0, 1},    // reads one left
		{1, PredRange{Has: true, Lo: -1, Hi: -1}, 1, 2},  // reads one right
		{0, PredRange{Has: true, Lo: -25, Hi: 25}, 0, 3}, // wide, clamped low
		{3, PredRange{Has: true, Lo: -25, Hi: 25}, 0, 3}, // wide, clamped high
		{2, PredRange{Has: true, Lo: -10, Hi: 10}, 1, 3}, // exactly one tile each way
	}
	for i, tc := range cases {
		lo, hi := r.predTiles(tc.k, tc.pr)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("case %d: predTiles(%d, %+v) = (%d, %d), want (%d, %d)",
				i, tc.k, tc.pr, lo, hi, tc.lo, tc.hi)
		}
	}
}

// TestPolicy pins the flag spellings.
func TestPolicy(t *testing.T) {
	for _, tc := range []struct {
		s string
		p Policy
	}{{"auto", PolicyAuto}, {"barrier", PolicyBarrier}, {"doacross", PolicyDoacross}} {
		p, err := ParsePolicy(tc.s)
		if err != nil || p != tc.p {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.s, p, err)
		}
		if p.String() != tc.s {
			t.Errorf("Policy(%d).String() = %q, want %q", p, p.String(), tc.s)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted a bogus mode")
	}
	if Policy(99).String() != "?" {
		t.Error("unknown policy String")
	}
}

// TestFloorDiv pins the rounding helper.
func TestFloorDiv(t *testing.T) {
	cases := [][3]int64{{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 10, -1}}
	for _, c := range cases {
		if got := floorDiv(c[0], c[1]); got != c[2] {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
