package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Policy selects the wavefront execution strategy.
type Policy uint8

const (
	// PolicyAuto (the default) picks per activation: doacross when the
	// measured plane width per worker is small relative to the kernel
	// cost (barrier overhead would dominate), barrier otherwise.
	PolicyAuto Policy = iota
	// PolicyBarrier always runs the per-plane fork/join sweep.
	PolicyBarrier
	// PolicyDoacross always runs the pipelined tile schedule.
	PolicyDoacross
	// PolicyPipeline prefers the PS-DSWP pipeline backend in the plan
	// cascade: nests with downstream DOALL consumer stages lower as
	// decoupled pipeline steps even when a wavefront transform would
	// also apply. Wavefront steps that remain fall back to the auto
	// barrier/doacross choice.
	PolicyPipeline
)

// String names the policy the way flags and Explain spell it.
func (p Policy) String() string {
	switch p {
	case PolicyAuto:
		return "auto"
	case PolicyBarrier:
		return "barrier"
	case PolicyDoacross:
		return "doacross"
	case PolicyPipeline:
		return "pipeline"
	}
	return "?"
}

// ParsePolicy resolves a -schedule flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "auto":
		return PolicyAuto, nil
	case "barrier":
		return PolicyBarrier, nil
	case "doacross":
		return PolicyDoacross, nil
	case "pipeline":
		return PolicyPipeline, nil
	}
	return PolicyAuto, fmt.Errorf("invalid schedule %q (want auto, barrier, doacross or pipeline)", s)
}

// PredRange bounds the blocked-coordinate shift of the dependences that
// reach a fixed number of hyperplanes back: a point with blocked
// coordinate c on plane t reads coordinates [c-Hi, c-Lo] on plane t-dt.
// Has is false when no dependence spans that plane offset.
type PredRange struct {
	Has    bool
	Lo, Hi int64
}

// Stats accumulates doacross counters; fields are updated atomically so
// one Stats value may observe concurrent runs.
type Stats struct {
	// Tiles counts executed tile instances (one per tile per hyperplane,
	// including instances the per-plane tightening leaves empty).
	Tiles atomic.Int64
	// Stalls counts the times a worker found no ready tile instance and
	// parked until a completion woke it.
	Stalls atomic.Int64
	// Steals counts tile instances executed by a worker other than the
	// tile's home worker.
	Steals atomic.Int64
}

// Nest describes one wavefront iteration space for the doacross
// executor: the hyperplane (time) range, the global range of the
// blocked plane coordinate, and the dependence structure in transformed
// coordinates.
type Nest struct {
	// TLo, THi is the inclusive hyperplane range of the sweep.
	TLo, THi int64
	// CoordLo, CoordHi is the inclusive global range of the blocked
	// plane coordinate; tiles partition it on a fixed grid shared by
	// every plane.
	CoordLo, CoordHi int64
	// Window is the §3.4 dependence window: dependences reach at most
	// Window-1 planes back.
	Window int
	// Preds[dt-1] bounds the blocked-coordinate shifts of the
	// dependences reaching dt planes back, dt = 1..Window-1.
	Preds []PredRange
	// Workers is the concurrency the run loop is dispatched at.
	Workers int
	// TileWidth is the blocked-coordinate width per tile; <= 0 derives
	// it from the span and worker count (TilesPerWorker tiles each).
	TileWidth int64
}

// TilesPerWorker is the default tile surplus per worker: enough slack
// for stealing to rebalance without making tile bookkeeping dominate.
const TilesPerWorker = 4

// Body executes tile k's slice of hyperplane t: every point of the
// plane whose blocked coordinate lies in [lo, hi]. It returns false to
// abort the whole run (the caller observed cancellation or captured a
// panic); sched then stops scheduling and Run reports !completed.
type Body func(worker int, t int64, k int, lo, hi int64) bool

// Looper dispatches the executor's worker loops; *par.Pool satisfies it.
type Looper interface {
	ForRangesOpts(cancel <-chan struct{}, lo, hi, grain int64, body func(start, end int64)) bool
	Workers() int
}

// padded keeps per-tile counters on distinct cache lines: done and
// claimed are the contention points of the whole schedule.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// run is the state of one doacross execution.
type run struct {
	nest   Nest
	body   Body
	tileW  int64
	ntiles int
	// done[k] is the last hyperplane tile k completed; claimed[k] the
	// last one claimed. claimed leads done by at most one plane, so a
	// tile column executes its planes in order and done is monotone.
	done    []padded
	claimed []padded
	// remaining counts unfinished tile instances; 0 terminates workers.
	remaining atomic.Int64
	aborted   atomic.Bool
	stats     *Stats
	cancel    <-chan struct{}
	// waiters counts parked (or about-to-park) workers; completions skip
	// the wake machinery entirely while it is zero — the common case,
	// since workers spin briefly before parking.
	waiters atomic.Int64
	// wakeMu guards wakeCh, the generation channel stalled workers park
	// on; a completion observing waiters > 0 closes the current
	// generation.
	wakeMu sync.Mutex
	wakeCh chan struct{}
	// rec, when non-nil, records per-worker tile and wait spans.
	rec *obs.Recorder
}

// Tiles reports how the nest is blocked: the tile count and width the
// executor would use. It is what Explain prints.
func (n *Nest) Tiles() (ntiles int, tileW int64) {
	span := n.CoordHi - n.CoordLo + 1
	if span <= 0 {
		return 0, 0
	}
	w := n.TileWidth
	if w <= 0 {
		workers := n.Workers
		if workers < 1 {
			workers = 1
		}
		w = span / int64(workers*TilesPerWorker)
		if w < 1 {
			w = 1
		}
	}
	if w > span {
		w = span
	}
	return int((span + w - 1) / w), w
}

// Run executes the nest's tile instances in dependence order on the
// looper's workers, calling body once per (plane, tile). It reports
// whether every instance completed: false means the run was cancelled
// (via the cancel channel or a body returning false) with instances
// unvisited. A nest with an empty time range or coordinate span
// completes trivially. rec, when non-nil, records each worker's tile
// spans (obs.KTile, with the steal flag) and parked waits
// (obs.KTileWait) on a per-worker ring.
func Run(nest Nest, lp Looper, cancel <-chan struct{}, body Body, stats *Stats, rec *obs.Recorder) bool {
	nplanes := nest.THi - nest.TLo + 1
	if nplanes <= 0 {
		return true
	}
	ntiles, tileW := nest.Tiles()
	if ntiles == 0 {
		return true
	}
	if nest.Workers <= 0 {
		nest.Workers = lp.Workers()
	}
	r := &run{
		nest:    nest,
		body:    body,
		tileW:   tileW,
		ntiles:  ntiles,
		done:    make([]padded, ntiles),
		claimed: make([]padded, ntiles),
		stats:   stats,
		cancel:  cancel,
		wakeCh:  make(chan struct{}),
		rec:     rec,
	}
	for k := 0; k < ntiles; k++ {
		r.done[k].v.Store(nest.TLo - 1)
		r.claimed[k].v.Store(nest.TLo - 1)
	}
	r.remaining.Store(nplanes * int64(ntiles))
	workers := nest.Workers
	if workers > ntiles {
		// More workers than tiles cannot all make progress at once, but
		// extra loops still help when pipelined planes open up; cap at
		// one loop per tile to bound spinning on tiny nests.
		workers = ntiles
	}
	// Each range chunk is one worker loop; grain 1 pins one loop per
	// pool slot. Cancellation is handled inside the loops (parked
	// workers select on the channel), so the pool-level cancel is nil.
	lp.ForRangesOpts(nil, 0, int64(workers)-1, 1, func(start, end int64) {
		for w := start; w <= end; w++ {
			r.worker(int(w), workers)
		}
	})
	return !r.aborted.Load() && r.remaining.Load() == 0
}

// tileSpan returns tile k's inclusive blocked-coordinate range.
func (r *run) tileSpan(k int) (lo, hi int64) {
	lo = r.nest.CoordLo + int64(k)*r.tileW
	hi = lo + r.tileW - 1
	if hi > r.nest.CoordHi {
		hi = r.nest.CoordHi
	}
	return lo, hi
}

// homeWorker maps a tile to the worker that owns it under the static
// block assignment; instances run elsewhere count as steals. Worker w
// scans from tile w·ntiles/workers, so its home span is
// [w·ntiles/workers, (w+1)·ntiles/workers) and this is that mapping's
// inverse: the unique w whose span contains k.
func (r *run) homeWorker(k, workers int) int {
	return (k*workers + workers - 1) / r.ntiles
}

// predTiles returns the tile range tile k reads on an earlier plane
// under pr, clamped to the grid.
func (r *run) predTiles(k int, pr PredRange) (int, int) {
	lo, hi := r.tileSpan(k)
	readLo := lo - pr.Hi
	readHi := hi - pr.Lo
	jlo := int(floorDiv(readLo-r.nest.CoordLo, r.tileW))
	jhi := int(floorDiv(readHi-r.nest.CoordLo, r.tileW))
	if jlo < 0 {
		jlo = 0
	}
	if jhi > r.ntiles-1 {
		jhi = r.ntiles - 1
	}
	return jlo, jhi
}

// ready reports whether tile k's next instance can run, and which plane
// it is. An instance (t, k) is ready when the tile's previous plane has
// completed (so claims stay in order and at most one instance per tile
// is in flight) and every predecessor tile implied by the dependence
// window has completed the plane the instance reads.
func (r *run) ready(k int) (int64, bool) {
	t := r.done[k].v.Load() + 1
	if t > r.nest.THi {
		return 0, false // tile column finished
	}
	if r.claimed[k].v.Load() != t-1 {
		return 0, false // instance already in flight
	}
	for dt := 1; dt < r.nest.Window; dt++ {
		if dt-1 >= len(r.nest.Preds) {
			break
		}
		pr := r.nest.Preds[dt-1]
		if !pr.Has {
			continue
		}
		pt := t - int64(dt)
		if pt < r.nest.TLo {
			continue // reads precede the sweep: inputs, not instances
		}
		jlo, jhi := r.predTiles(k, pr)
		for j := jlo; j <= jhi; j++ {
			// j == k is implied by done[k] == t-1 (pt <= t-1).
			if j != k && r.done[j].v.Load() < pt {
				return 0, false
			}
		}
	}
	return t, true
}

// worker is one doacross loop: scan the tiles from the home offset for
// a ready instance, claim it with a CAS, execute, publish completion,
// and wake stalled peers. With nothing ready it spins briefly, then
// parks on the generation channel.
func (r *run) worker(w, workers int) {
	var ring *obs.Ring
	if r.rec != nil {
		ring = r.rec.Acquire()
		defer r.rec.Release(ring)
	}
	home := w * r.ntiles / workers
	const spinLimit = 64
	spins := 0
	for r.remaining.Load() > 0 && !r.aborted.Load() {
		claimedOne := false
		for s := 0; s < r.ntiles; s++ {
			k := home + s
			if k >= r.ntiles {
				k -= r.ntiles
			}
			t, ok := r.ready(k)
			if !ok {
				continue
			}
			if !r.claimed[k].v.CompareAndSwap(t-1, t) {
				continue // another worker won the claim
			}
			lo, hi := r.tileSpan(k)
			var t0 int64
			if ring != nil {
				t0 = ring.Now()
			}
			ok = r.body(w, t, k, lo, hi)
			// Publish after the body's writes so a predecessor check
			// (atomic load of done) orders the data reads behind them.
			r.done[k].v.Store(t)
			r.remaining.Add(-1)
			stolen := r.homeWorker(k, workers) != w
			if r.stats != nil {
				r.stats.Tiles.Add(1)
				if stolen {
					r.stats.Steals.Add(1)
				}
			}
			if ring != nil {
				flags := int64(k) << 1
				if stolen {
					flags |= 1
				}
				ring.Emit(obs.KTile, t0, ring.Now()-t0, t, flags)
			}
			r.wake()
			if !ok {
				r.abort()
				return
			}
			claimedOne = true
			break // rescan from home for locality
		}
		if claimedOne {
			spins = 0
			continue
		}
		if r.cancelled() {
			r.abort()
			return
		}
		if spins++; spins < spinLimit {
			runtime.Gosched()
			continue
		}
		spins = 0
		if !r.park(ring) {
			return
		}
	}
}

// cancelled polls the external cancel channel.
func (r *run) cancelled() bool {
	if r.cancel == nil {
		return false
	}
	select {
	case <-r.cancel:
		return true
	default:
		return false
	}
}

// abort stops every worker: no further instances are claimed and parked
// workers are released.
func (r *run) abort() {
	r.aborted.Store(true)
	r.wakeAll()
}

// wake releases parked workers after a completion; it is a single
// atomic load (and nothing else) while no worker is parked. The
// publish order — done.Store, then waiters.Load — pairs with park's
// waiters.Add-then-recheck so a registering parker either sees the new
// completion in its re-check or is seen here and woken.
func (r *run) wake() {
	if r.waiters.Load() > 0 {
		r.wakeAll()
	}
}

// wakeAll closes the current generation channel, releasing every
// parked worker; the next generation is armed under the same lock.
func (r *run) wakeAll() {
	r.wakeMu.Lock()
	close(r.wakeCh)
	r.wakeCh = make(chan struct{})
	r.wakeMu.Unlock()
}

// park blocks until any tile instance completes (or the run aborts or
// is cancelled), counting one stall. The worker registers as a waiter
// and samples the generation channel before the final readiness
// re-check, so a completion between the sample and the select either
// shows up in the re-check or observes the registration and closes the
// sampled channel — no lost wakeups. It returns false when the worker
// should exit. The blocked interval is recorded on ring as a
// KTileWait span.
func (r *run) park(ring *obs.Ring) bool {
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	r.wakeMu.Lock()
	ch := r.wakeCh
	r.wakeMu.Unlock()
	// Re-check after registering: progress published before the
	// registration is visible here, progress after it closes ch.
	if r.remaining.Load() == 0 || r.aborted.Load() {
		return false
	}
	for k := 0; k < r.ntiles; k++ {
		if _, ok := r.ready(k); ok {
			return true // something became ready while sampling
		}
	}
	if r.stats != nil {
		r.stats.Stalls.Add(1)
	}
	var t0 int64
	if ring != nil {
		t0 = ring.Now()
		defer func() { ring.Emit(obs.KTileWait, t0, ring.Now()-t0, 0, 0) }()
	}
	if r.cancel == nil {
		<-ch
		return true
	}
	select {
	case <-ch:
		return true
	case <-r.cancel:
		r.abort()
		return false
	}
}

// floorDiv divides rounding toward −∞; b must be positive.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
