// Package sched implements the doacross pipelined executor for §4
// wavefront nests. The barrier executor (internal/interp's default)
// sweeps hyperplanes t = π·x one at a time, paying one pool-wide
// fork/join barrier per plane; for narrow planes — the leading and
// trailing diagonals of every sweep, and any nest whose plane width per
// worker is small relative to the kernel cost — that barrier dominates.
//
// The doacross schedule removes it. One plane coordinate is blocked
// into tiles with a fixed global grid; each tile carries an atomic
// completion counter (the last hyperplane it finished), and a worker
// entering tile k on plane t waits point-to-point only on the
// predecessor tiles implied by the transformed dependence vectors —
// bounded by the plan's dependence window — instead of on the whole
// pool. Successive hyperplanes pipeline: while one tile is still on
// plane t, its already-satisfied neighbours run planes t+1, t+2, …,
// the way nested-dataflow schedulers (Dinh & Simhadri) execute fine
// dependence chains without global synchronization.
//
// Tiles are claimed with a CAS so any worker may run any ready tile
// instance (work stealing); a worker that finds nothing ready spins
// briefly, then parks on a generation channel that every completion
// closes. Stalls, executed tiles and steals are counted for RunStats.
//
// # Contract
//
// The package is geometry-agnostic: Run is handed a Nest — the time
// range, the blocked coordinate's range, the dependence Window and the
// per-offset PredRange table — plus a worker pool and a callback that
// executes one (plane, tile) instance. The caller owns all kernel
// state; Run owns only the ordering.
//
// # Predecessor-tile math
//
// A point with blocked coordinate c on plane t reads coordinates
// [c-Hi(dt), c-Lo(dt)] on plane t-dt for each dt = 1..Window-1 (the
// PredRange table folds every transformed dependence with that time
// distance). A tile instance covering [blo, bhi] may therefore start
// once, for every dt, the predecessor tiles covering
// [blo-Hi(dt), bhi-Lo(dt)] have finished plane t-dt. The grid is fixed
// across planes, so that predecessor set is a contiguous tile range
// computed with two divisions; an instance whose predecessors are done
// can run even while distant tiles lag many planes behind.
//
// # Invariants
//
// Every (plane, tile) instance executes exactly once (CAS-claimed), and
// no instance starts before all its predecessor instances completed —
// so a wavefront nest executed through Run computes bitwise-identical
// results to the barrier sweep: same points, same kernels, every
// cross-plane dependence satisfied point-to-point rather than by a
// barrier. Cancellation (the caller's abort channel, or the callback
// returning false) stops further claims and Run reports completion as
// false.
package sched
