package par_test

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

// TestRunnerForCoverage verifies that every index is visited exactly once
// across worker counts and ranges.
func TestRunnerForCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int64{0, 1, 2, 7, 100, 1023} {
			r := par.New(workers)
			counts := make([]atomic.Int32, n+1)
			r.For(0, n-1, func(i int64) { counts[i].Add(1) })
			for i := int64(0); i < n; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestRunnerEmptyRange verifies lo > hi is a no-op.
func TestRunnerEmptyRange(t *testing.T) {
	r := par.New(4)
	called := atomic.Int32{}
	r.For(5, 4, func(i int64) { called.Add(1) })
	if called.Load() != 0 {
		t.Error("body called on empty range")
	}
}

// TestRunnerForRanges verifies chunked dispatch covers the range with
// disjoint, ordered chunks.
func TestRunnerForRanges(t *testing.T) {
	r := par.New(4)
	var mask [512]atomic.Int32
	r.ForRanges(0, 511, func(start, end int64) {
		if start > end {
			t.Error("inverted chunk")
		}
		for i := start; i <= end; i++ {
			mask[i].Add(1)
		}
	})
	for i := range mask {
		if mask[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, mask[i].Load())
		}
	}
}

// TestPoolCoverage verifies the persistent pool across many reuses —
// the wavefront dispatch pattern.
func TestPoolCoverage(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	for round := 0; round < 200; round++ {
		n := int64(round%17 + 1)
		counts := make([]atomic.Int32, n)
		p.For(0, n-1, func(i int64) { counts[i].Add(1) })
		for i := int64(0); i < n; i++ {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("round %d: index %d visited %d times", round, i, c)
			}
		}
	}
}

// TestPoolSingleWorker verifies the degenerate pool runs inline.
func TestPoolSingleWorker(t *testing.T) {
	p := par.NewPool(1)
	defer p.Close()
	sum := int64(0) // no atomics needed: single worker runs inline
	p.For(1, 100, func(i int64) { sum += i })
	if sum != 5050 {
		t.Errorf("sum = %d, want 5050", sum)
	}
}

// TestPoolGrain verifies grain settings do not lose iterations.
func TestPoolGrain(t *testing.T) {
	p := par.NewPool(3)
	defer p.Close()
	p.SetGrain(64)
	var count atomic.Int64
	p.For(0, 999, func(i int64) { count.Add(1) })
	if count.Load() != 1000 {
		t.Errorf("visited %d, want 1000", count.Load())
	}
}

// TestPoolCloseIdempotent verifies Close can be called twice.
func TestPoolCloseIdempotent(t *testing.T) {
	p := par.NewPool(2)
	p.Close()
	p.Close()
}

// TestForProperty is a property test: arbitrary ranges sum correctly
// under parallel execution.
func TestForProperty(t *testing.T) {
	r := par.New(0)
	f := func(loRaw int16, span uint16) bool {
		lo := int64(loRaw)
		hi := lo + int64(span%2000)
		var sum atomic.Int64
		r.For(lo, hi, func(i int64) { sum.Add(i) })
		n := hi - lo + 1
		want := n * (lo + hi) / 2
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDefaultWorkers sanity-checks the default.
func TestDefaultWorkers(t *testing.T) {
	if par.DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
	var r *par.Runner // nil runner uses defaults
	var sum atomic.Int64
	r.For(1, 10, func(i int64) { sum.Add(i) })
	if sum.Load() != 55 {
		t.Errorf("nil runner sum %d", sum.Load())
	}
}
