package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for repeated parallel loops. Unlike
// Runner.For, which spawns goroutines per call, a Pool keeps its workers
// parked between loops — essential for wavefront execution, where one
// outer iterative loop dispatches hundreds of small DOALL planes
// (paper §4's transformed schedules).
type Pool struct {
	workers int
	grain   int64
	wake    chan *loopJob
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// loopJob is one parallel loop in flight.
type loopJob struct {
	lo, hi int64
	chunk  int64
	next   atomic.Int64
	body   func(start, end int64)
	done   sync.WaitGroup
	// cancel, when non-nil, is checked between chunks: once closed, no
	// further chunks are claimed (the chunk in flight completes).
	cancel <-chan struct{}
}

// NewPool starts a pool with the given worker count (<= 0 uses all CPUs).
// The calling goroutine also executes loop chunks, so workers-1
// goroutines are spawned.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	// The wake channel is buffered to the worker count so dispatch never
	// blocks; a worker receiving a job that has already been fully
	// consumed simply finds no chunk and signals done.
	p := &Pool{workers: workers, grain: 1, wake: make(chan *loopJob, workers)}
	for i := 0; i < workers-1; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			// Loops arrive in bursts (e.g. one DOALL per hyperplane of an
			// iterative outer loop), and parking between bursts costs an
			// OS-level wakeup. Spin briefly for the next job before
			// blocking.
			for {
				job, ok := p.take()
				if !ok {
					return
				}
				job.run()
				job.done.Done()
			}
		}()
	}
	return p
}

// take returns the next job, spinning briefly before parking on the
// channel. ok=false means the pool is closed.
func (p *Pool) take() (*loopJob, bool) {
	const spins = 256
	for s := 0; s < spins; s++ {
		select {
		case job, ok := <-p.wake:
			return job, ok
		default:
			runtime.Gosched()
		}
	}
	job, ok := <-p.wake
	return job, ok
}

// SetGrain sets the minimum iterations per chunk.
func (p *Pool) SetGrain(g int64) {
	if g > 0 {
		p.grain = g
	}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Close parks the pool permanently. Pending loops must have completed.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.wake)
		p.wg.Wait()
	}
}

func (j *loopJob) run() {
	for {
		if j.cancel != nil {
			select {
			case <-j.cancel:
				return
			default:
			}
		}
		start := j.next.Add(j.chunk) - j.chunk
		if start > j.hi {
			return
		}
		end := start + j.chunk - 1
		if end > j.hi {
			end = j.hi
		}
		j.body(start, end)
	}
}

// ForRanges executes body over [lo, hi] in chunks distributed across the
// pool's workers and the calling goroutine.
func (p *Pool) ForRanges(lo, hi int64, body func(start, end int64)) {
	p.ForRangesOpts(nil, lo, hi, p.grain, body)
}

// ForRangesOpts is ForRanges with per-call options, letting concurrent
// activations share one pool without racing on its configuration: grain
// is this loop's minimum chunk size (<= 0 uses the pool default), and
// cancel, when non-nil, stops workers from claiming further chunks once
// closed. It reports whether the loop ran to completion; false means it
// was cancelled with iterations unvisited. A Pool is safe for concurrent
// ForRangesOpts calls from multiple goroutines: each loop is an
// independent job, and every caller executes chunks of its own loop, so
// progress never depends on another loop finishing.
func (p *Pool) ForRangesOpts(cancel <-chan struct{}, lo, hi, grain int64, body func(start, end int64)) bool {
	n := hi - lo + 1
	if n <= 0 {
		return true
	}
	if grain <= 0 {
		grain = p.grain
	}
	if p.workers == 1 || n == 1 {
		if cancel != nil {
			job := &loopJob{lo: lo, hi: hi, chunk: grain, body: body, cancel: cancel}
			job.next.Store(lo)
			job.run()
			return job.next.Load() > hi
		}
		body(lo, hi)
		return true
	}
	chunk := n / int64(p.workers*4)
	if chunk < grain {
		chunk = grain
	}
	job := &loopJob{lo: lo, hi: hi, chunk: chunk, body: body, cancel: cancel}
	job.next.Store(lo)
	// Wake only as many workers as can possibly get a chunk; the caller
	// takes one share itself.
	helpers := p.workers - 1
	if int64(helpers) > (n+chunk-1)/chunk-1 {
		helpers = int((n+chunk-1)/chunk - 1)
	}
	job.done.Add(helpers)
	for s := 0; s < helpers; s++ {
		p.wake <- job
	}
	job.run()
	job.done.Wait()
	return job.next.Load() > hi
}

// For executes body(i) for every i in [lo, hi] on the pool.
func (p *Pool) For(lo, hi int64, body func(i int64)) {
	p.ForRanges(lo, hi, func(start, end int64) {
		for i := start; i <= end; i++ {
			body(i)
		}
	})
}
