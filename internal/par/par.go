// Package par is the parallel loop runtime executing the scheduler's
// DOALL descriptors: a chunked parallel-for over goroutine workers. It
// plays the role the target MIMD machine's loop scheduler played for the
// paper's generated C.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a Runner is created with
// workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Runner executes parallel loops on a fixed number of workers.
// The zero value runs with DefaultWorkers.
type Runner struct {
	Workers int
	// Grain is the minimum number of iterations per chunk (default 1).
	// Larger grains amortize dispatch overhead for cheap loop bodies.
	Grain int64
}

// New returns a Runner with the given worker count (<=0 means all CPUs).
func New(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return DefaultWorkers()
	}
	return r.Workers
}

func (r *Runner) grain() int64 {
	if r == nil || r.Grain <= 0 {
		return 1
	}
	return r.Grain
}

// For executes body(i) for every i in [lo, hi] (inclusive), distributing
// chunks over the workers. body must be safe for concurrent invocation on
// distinct i. For small trip counts or one worker it degrades to a plain
// loop.
func (r *Runner) For(lo, hi int64, body func(i int64)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	w := r.workers()
	if w == 1 || n == 1 {
		for i := lo; i <= hi; i++ {
			body(i)
		}
		return
	}
	// Chunk size balances load (several chunks per worker) against
	// dispatch overhead (respecting the grain).
	chunk := n / int64(w*4)
	if g := r.grain(); chunk < g {
		chunk = g
	}
	var next atomic.Int64
	next.Store(lo)
	var wg sync.WaitGroup
	nw := w
	if int64(nw) > (n+chunk-1)/chunk {
		nw = int((n + chunk - 1) / chunk)
	}
	wg.Add(nw)
	for g := 0; g < nw; g++ {
		go func() {
			defer wg.Done()
			for {
				start := next.Add(chunk) - chunk
				if start > hi {
					return
				}
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				for i := start; i <= end; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForRanges is For with a range-based body, letting callers hoist
// per-chunk state (e.g. index frames) out of the element loop.
func (r *Runner) ForRanges(lo, hi int64, body func(start, end int64)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	w := r.workers()
	if w == 1 || n == 1 {
		body(lo, hi)
		return
	}
	chunk := n / int64(w*4)
	if g := r.grain(); chunk < g {
		chunk = g
	}
	var next atomic.Int64
	next.Store(lo)
	var wg sync.WaitGroup
	nw := w
	if int64(nw) > (n+chunk-1)/chunk {
		nw = int((n + chunk - 1) / chunk)
	}
	wg.Add(nw)
	for g := 0; g < nw; g++ {
		go func() {
			defer wg.Done()
			for {
				start := next.Add(chunk) - chunk
				if start > hi {
					return
				}
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				body(start, end)
			}
		}()
	}
	wg.Wait()
}
