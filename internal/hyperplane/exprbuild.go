package hyperplane

import (
	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/token"
)

// Expression-construction helpers for the rewriter. Built nodes carry no
// positions; the printed module is reparsed before further analysis.

func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

func intLit(v int64) *ast.IntLit {
	return &ast.IntLit{Value: v}
}

func paren(e ast.Expr) ast.Expr {
	switch e.(type) {
	case *ast.Ident, *ast.IntLit, *ast.RealLit, *ast.Paren, *ast.Index, *ast.Call:
		return e
	}
	return &ast.Paren{X: e}
}

var opByName = map[string]token.Kind{
	"+": token.PLUS, "-": token.MINUS, "*": token.STAR, "/": token.SLASH,
	"<": token.LT, "<=": token.LE, ">": token.GT, ">=": token.GE,
	"=": token.EQ, "<>": token.NEQ, "or": token.OR, "and": token.AND,
}

func binary(x ast.Expr, op string, y ast.Expr) ast.Expr {
	return &ast.Binary{Op: opByName[op], X: x, Y: y}
}

// term is one coef·expr summand of a linear combination.
type term struct {
	coef int64
	e    ast.Expr
}

// lincomb builds Σ coef·expr + konst with literal folding: constant
// summands fold into konst, coefficient ±1 drops the multiplication, and
// the constant appears last ("2*K + I - 1" rather than "-1 + 2*K + I").
func lincomb(terms []term, konst int64) ast.Expr {
	var acc ast.Expr
	add := func(e ast.Expr, negative bool) {
		if acc == nil {
			if negative {
				acc = &ast.Unary{Op: token.MINUS, X: paren(e)}
			} else {
				acc = e
			}
			return
		}
		op := token.PLUS
		if negative {
			op = token.MINUS
		}
		acc = &ast.Binary{Op: op, X: acc, Y: mulOperand(e)}
	}
	for _, t := range terms {
		if t.coef == 0 {
			continue
		}
		if k, ok := sem.EvalConstInt(t.e); ok {
			konst += t.coef * k
			continue
		}
		c, neg := t.coef, false
		if c < 0 {
			c, neg = -c, true
		}
		e := t.e
		if c != 1 {
			e = &ast.Binary{Op: token.STAR, X: intLit(c), Y: mulOperand(t.e)}
		}
		add(e, neg)
	}
	if acc == nil {
		return intLit(konst)
	}
	if konst > 0 {
		acc = &ast.Binary{Op: token.PLUS, X: acc, Y: intLit(konst)}
	} else if konst < 0 {
		acc = &ast.Binary{Op: token.MINUS, X: acc, Y: intLit(-konst)}
	}
	return acc
}

// mulOperand parenthesizes additive expressions used as factors or
// subtrahends so the printed form keeps its meaning.
func mulOperand(e ast.Expr) ast.Expr {
	if b, ok := e.(*ast.Binary); ok {
		if b.Op.Precedence() < token.STAR.Precedence() {
			return &ast.Paren{X: e}
		}
	}
	if _, ok := e.(*ast.Unary); ok {
		return &ast.Paren{X: e}
	}
	return e
}

// boundRange computes symbolic interval bounds of row·x where each x_j
// ranges over [lo(j), hi(j)]: positive coefficients take the matching
// bound, negative coefficients the opposite one.
func boundRange(row []int64, lo, hi func(j int) ast.Expr) (ast.Expr, ast.Expr) {
	var loTerms, hiTerms []term
	for j, c := range row {
		if c == 0 {
			continue
		}
		if c > 0 {
			loTerms = append(loTerms, term{coef: c, e: lo(j)})
			hiTerms = append(hiTerms, term{coef: c, e: hi(j)})
		} else {
			loTerms = append(loTerms, term{coef: c, e: hi(j)})
			hiTerms = append(hiTerms, term{coef: c, e: lo(j)})
		}
	}
	return lincomb(loTerms, 0), lincomb(hiTerms, 0)
}

// rewriteExpr returns a copy of e in which identifiers named by subst are
// replaced and Index nodes accepted by rewriteRef are substituted.
// Unchanged subtrees are shared with the input.
func rewriteExpr(e ast.Expr, subst func(string) ast.Expr, rewriteRef func(*ast.Index) (ast.Expr, bool)) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if r := subst(x.Name); r != nil {
			return paren(r)
		}
		return x
	case *ast.Paren:
		return &ast.Paren{X: rewriteExpr(x.X, subst, rewriteRef)}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: rewriteExpr(x.X, subst, rewriteRef)}
	case *ast.Binary:
		return &ast.Binary{Op: x.Op,
			X: rewriteExpr(x.X, subst, rewriteRef),
			Y: rewriteExpr(x.Y, subst, rewriteRef)}
	case *ast.IfExpr:
		out := &ast.IfExpr{
			Cond: rewriteExpr(x.Cond, subst, rewriteRef),
			Then: rewriteExpr(x.Then, subst, rewriteRef),
			Else: rewriteExpr(x.Else, subst, rewriteRef),
		}
		for _, arm := range x.Elifs {
			out.Elifs = append(out.Elifs, ast.ElseIf{
				Cond: rewriteExpr(arm.Cond, subst, rewriteRef),
				Then: rewriteExpr(arm.Then, subst, rewriteRef),
			})
		}
		return out
	case *ast.Index:
		if r, ok := rewriteRef(x); ok {
			return r
		}
		out := &ast.Index{Base: rewriteExpr(x.Base, subst, rewriteRef)}
		for _, s := range x.Subs {
			out.Subs = append(out.Subs, rewriteExpr(s, subst, rewriteRef))
		}
		return out
	case *ast.Field:
		return &ast.Field{Base: rewriteExpr(x.Base, subst, rewriteRef), Sel: x.Sel}
	case *ast.Call:
		out := &ast.Call{Fun: x.Fun}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteExpr(a, subst, rewriteRef))
		}
		return out
	}
	return e
}

// rewriteAligned rewrites e bottom-up while tracking the "top level"
// property: positions where an array-typed value aligns with the
// equation's implicit dimensions (the expression spine and conditional
// arms, per depgraph's reference walk).
func rewriteAligned(e ast.Expr, topLevel bool, f func(ast.Expr, bool) (ast.Expr, bool)) ast.Expr {
	if e == nil {
		return nil
	}
	if r, ok := f(e, topLevel); ok {
		return r
	}
	switch x := e.(type) {
	case *ast.Paren:
		return &ast.Paren{X: rewriteAligned(x.X, topLevel, f)}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: rewriteAligned(x.X, false, f)}
	case *ast.Binary:
		return &ast.Binary{Op: x.Op,
			X: rewriteAligned(x.X, false, f),
			Y: rewriteAligned(x.Y, false, f)}
	case *ast.IfExpr:
		out := &ast.IfExpr{
			Cond: rewriteAligned(x.Cond, false, f),
			Then: rewriteAligned(x.Then, topLevel, f),
			Else: rewriteAligned(x.Else, topLevel, f),
		}
		for _, arm := range x.Elifs {
			out.Elifs = append(out.Elifs, ast.ElseIf{
				Cond: rewriteAligned(arm.Cond, false, f),
				Then: rewriteAligned(arm.Then, topLevel, f),
			})
		}
		return out
	case *ast.Index:
		out := &ast.Index{Base: x.Base}
		for _, s := range x.Subs {
			out.Subs = append(out.Subs, rewriteAligned(s, false, f))
		}
		return out
	case *ast.Field:
		return &ast.Field{Base: rewriteAligned(x.Base, false, f), Sel: x.Sel}
	case *ast.Call:
		out := &ast.Call{Fun: x.Fun}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteAligned(a, false, f))
		}
		return out
	}
	return e
}
