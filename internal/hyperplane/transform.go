package hyperplane

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// TransformResult carries the rewritten module and its display form.
type TransformResult struct {
	Analysis *Analysis
	// Module is the rewritten module AST (shares expression subtrees with
	// the original; print and reparse it before further analysis).
	Module *ast.Module
	// Source is the pretty-printed PS text of Module.
	Source string
	// ArrayName and TimeVar are the chosen names for the transformed
	// array and the new outer (time) index variable.
	ArrayName string
	TimeVar   string
}

// Transform rewrites the analyzed module in the transformed coordinates
// (paper §4): the recursively defined array A is replaced by A' indexed by
// x' = T·x, the recurrence is rewritten with a domain guard so that its
// references become constant offsets with strictly positive first
// component, and every other equation defining or reading A is rewritten
// through the same coordinate change (the paper's "rotate in / unrotate"
// alternative). Rescheduling the result yields an outer DO over the new
// first dimension with inner DOALLs.
func Transform(an *Analysis) (*TransformResult, error) {
	m := an.Module
	n := len(an.Dims)

	tr := &transformer{an: an, m: m, n: n}
	if err := tr.prepare(); err != nil {
		return nil, err
	}

	newMod := &ast.Module{
		Name:    ident(m.Name + "H"),
		Params:  m.AST.Params,
		Results: m.AST.Results,
	}
	// Type section: original declarations plus the new time subrange.
	newMod.Types = append(newMod.Types, m.AST.Types...)
	newMod.Types = append(newMod.Types, &ast.TypeDecl{
		Names: []*ast.Ident{ident(tr.timeVar)},
		Type:  &ast.SubrangeType{Lo: tr.eqLo0, Hi: tr.eqHi0},
	})
	for r := 1; r < n; r++ {
		if tr.basis[r] < 0 {
			newMod.Types = append(newMod.Types, &ast.TypeDecl{
				Names: []*ast.Ident{ident(tr.eqVarNames[r])},
				Type:  &ast.SubrangeType{Lo: tr.eqLos[r], Hi: tr.eqHis[r]},
			})
		}
	}

	// Var section: replace A's declaration, keep other locals.
	for _, vd := range m.AST.Vars {
		var keep []*ast.Ident
		for _, nm := range vd.Names {
			if nm.Name != an.Array.Name {
				keep = append(keep, nm)
			}
		}
		if len(keep) > 0 {
			newMod.Vars = append(newMod.Vars, &ast.VarDecl{Names: keep, Type: vd.Type})
		}
	}
	newMod.Vars = append(newMod.Vars, &ast.VarDecl{
		Names: []*ast.Ident{ident(tr.arrayName)},
		Type:  tr.newArrayType(),
	})

	// Equations.
	for _, eq := range m.Eqs {
		neq, err := tr.rewriteEquation(eq)
		if err != nil {
			return nil, err
		}
		newMod.Eqs = append(newMod.Eqs, neq)
	}

	res := &TransformResult{
		Analysis:  an,
		Module:    newMod,
		Source:    ast.ModuleString(newMod),
		ArrayName: tr.arrayName,
		TimeVar:   tr.timeVar,
	}
	return res, nil
}

// transformer holds naming and bound information for one rewrite.
type transformer struct {
	an *Analysis
	m  *sem.Module
	n  int

	arrayName string
	timeVar   string
	// basis[r] = j when row r of T is the standard basis vector e_j
	// (so the new dimension r is exactly old dimension j); -1 otherwise.
	basis []int
	// eqVarNames[r] is the index variable name iterating new dimension r
	// in the rewritten recurrence.
	eqVarNames []string
	// eqLo0/eqHi0 bound Pi·x over the recurrence's iteration box; for
	// non-basis rows r ≥ 1, eqLos/eqHis bound row_r·x similarly.
	eqLo0, eqHi0 ast.Expr
	eqLos, eqHis []ast.Expr
	// preimages[i] is the expression for old variable i in terms of the
	// new index variables (x = T⁻¹·x'); identity[i] marks rows where the
	// preimage is exactly a reused variable, needing no domain guard.
	preimages []ast.Expr
	identity  []bool
}

func (tr *transformer) prepare() error {
	an, m, n := tr.an, tr.m, tr.n

	if len(an.Eqs) > 1 {
		return fmt.Errorf("hyperplane: the source-to-source transform rewrites a single recurrence; group {%s} has %d equations",
			groupLabel(an.Eqs), len(an.Eqs))
	}
	if _, basic := an.Array.Type.(*types.Array).Elem.(*types.Basic); !basic {
		return fmt.Errorf("hyperplane: transform requires a basic element type, %s has %s",
			an.Array.Name, an.Array.Type.(*types.Array).Elem)
	}

	tr.arrayName = freshName(m, an.Array.Name+"t")
	tr.timeVar = freshName(m, an.Dims[0].Name+"t")

	tr.basis = make([]int, n)
	tr.eqVarNames = make([]string, n)
	tr.eqVarNames[0] = tr.timeVar
	tr.basis[0] = -1
	for r := 1; r < n; r++ {
		tr.basis[r] = basisIndex(an.T.Row(r))
		if j := tr.basis[r]; j >= 0 {
			tr.eqVarNames[r] = an.Dims[j].Name
		} else {
			tr.eqVarNames[r] = freshName(m, fmt.Sprintf("T%d", r))
		}
	}

	// Iteration-box bounds of the recurrence in the new coordinates.
	eqLo := func(j int) ast.Expr { return an.Dims[j].Lo }
	eqHi := func(j int) ast.Expr { return an.Dims[j].Hi }
	tr.eqLo0, tr.eqHi0 = boundRange(an.T.Row(0), eqLo, eqHi)
	tr.eqLos = make([]ast.Expr, n)
	tr.eqHis = make([]ast.Expr, n)
	for r := 1; r < n; r++ {
		if tr.basis[r] < 0 {
			tr.eqLos[r], tr.eqHis[r] = boundRange(an.T.Row(r), eqLo, eqHi)
		}
	}

	// Preimages P_i = Σ_j TInv[i][j]·x'_j.
	tr.preimages = make([]ast.Expr, n)
	tr.identity = make([]bool, n)
	for i := 0; i < n; i++ {
		row := an.TInv.Row(i)
		var terms []term
		for j, c := range row {
			if c != 0 {
				terms = append(terms, term{coef: c, e: ident(tr.eqVarNames[j])})
			}
		}
		tr.preimages[i] = lincomb(terms, 0)
		if r := basisIndex(row); r >= 0 && tr.basis[r] == i {
			tr.identity[i] = true
		}
	}
	return nil
}

// newArrayType declares the transformed array: dimension 0 bounds Pi·x
// over the *array's* declared box; basis rows reuse the old dimension's
// subrange; general rows get bounding subranges over the array box.
func (tr *transformer) newArrayType() *ast.ArrayType {
	arr := tr.an.Array.Type.(*types.Array)
	aLo := func(j int) ast.Expr { return arr.Dims[j].Lo }
	aHi := func(j int) ast.Expr { return arr.Dims[j].Hi }

	dims := make([]ast.TypeExpr, tr.n)
	lo0, hi0 := boundRange(tr.an.T.Row(0), aLo, aHi)
	dims[0] = &ast.SubrangeType{Lo: lo0, Hi: hi0}
	for r := 1; r < tr.n; r++ {
		if j := tr.basis[r]; j >= 0 {
			sr := arr.Dims[j]
			if sr.Anonymous {
				dims[r] = &ast.SubrangeType{Lo: sr.Lo, Hi: sr.Hi}
			} else {
				dims[r] = &ast.TypeName{Name: ident(sr.Name)}
			}
		} else {
			lo, hi := boundRange(tr.an.T.Row(r), aLo, aHi)
			dims[r] = &ast.SubrangeType{Lo: lo, Hi: hi}
		}
	}
	elemName := arr.Elem.String()
	return &ast.ArrayType{Dims: dims, Elem: &ast.TypeName{Name: ident(elemName)}}
}

// rewriteEquation dispatches between the recurrence itself and the other
// equations of the module.
func (tr *transformer) rewriteEquation(eq *sem.Equation) (*ast.Equation, error) {
	if eq == tr.an.Eq {
		return tr.rewriteRecurrence(eq)
	}
	return tr.rewriteOther(eq)
}

// rewriteRecurrence produces
//
//	A'[x'] = if x' has no preimage in the iteration box then 0
//	         else <RHS with old vars substituted and refs offset by T·d>
func (tr *transformer) rewriteRecurrence(eq *sem.Equation) (*ast.Equation, error) {
	an := tr.an

	// Transformed offsets per original reference.
	offsets := make(map[ast.Expr][]int64, len(an.TransformedDeps))
	for _, d := range an.TransformedDeps {
		offsets[d.Ref] = d.Vec
	}

	subst := func(name string) ast.Expr {
		for i, dim := range an.Dims {
			if dim.Name == name && !tr.identity[i] {
				return tr.preimages[i]
			}
		}
		return nil
	}
	rewriteRef := func(x *ast.Index) (ast.Expr, bool) {
		d, ok := offsets[ast.Expr(x)]
		if !ok {
			return nil, false
		}
		subs := make([]ast.Expr, tr.n)
		for r := 0; r < tr.n; r++ {
			subs[r] = lincomb([]term{{coef: 1, e: ident(tr.eqVarNames[r])}}, -d[r])
		}
		return &ast.Index{Base: ident(tr.arrayName), Subs: subs}, true
	}
	body := rewriteExpr(eq.RHS, subst, rewriteRef)

	// Domain guard for every dimension whose preimage is not an exactly
	// reused variable.
	var guard ast.Expr
	for i := 0; i < tr.n; i++ {
		if tr.identity[i] {
			continue
		}
		p := tr.preimages[i]
		below := binary(p, "<", an.Dims[i].Lo)
		above := binary(p, ">", an.Dims[i].Hi)
		cond := binary(paren(below), "or", paren(above))
		if guard == nil {
			guard = cond
		} else {
			guard = binary(paren(guard), "or", paren(cond))
		}
	}
	if guard != nil {
		body = &ast.IfExpr{Cond: guard, Then: tr.filler(), Else: body}
	}

	lhsSubs := make([]ast.Expr, tr.n)
	for r := 0; r < tr.n; r++ {
		lhsSubs[r] = ident(tr.eqVarNames[r])
	}
	return &ast.Equation{
		Label:   eq.Label,
		Targets: []*ast.Target{{Name: ident(tr.arrayName), Subs: lhsSubs}},
		RHS:     body,
	}, nil
}

// filler is the value written at sweep points with no preimage in the
// original iteration box; such elements are never read by in-box points.
func (tr *transformer) filler() ast.Expr {
	elem := tr.an.Array.Type.(*types.Array).Elem
	switch elem.Kind() {
	case types.RealKind:
		return &ast.RealLit{Value: 0, Lit: "0.0"}
	case types.BoolKind:
		return &ast.BoolLit{}
	default:
		return &ast.IntLit{Value: 0, Lit: "0"}
	}
}

// rewriteOther rewrites a non-recurrence equation: implicit dimensions are
// materialized as explicit subscripts and every reference to A (now full
// rank) is re-indexed through T.
func (tr *transformer) rewriteOther(eq *sem.Equation) (*ast.Equation, error) {
	an := tr.an
	target := eq.Targets[0]
	if len(eq.Targets) != 1 {
		for _, t := range eq.Targets {
			if t.Sym == an.Array {
				return nil, fmt.Errorf("hyperplane: multi-target equation %s defines %s", eq.Label, an.Array.Name)
			}
		}
	}

	implicit := target.Implicit
	implicitIdents := func() []ast.Expr {
		out := make([]ast.Expr, len(implicit))
		for i, v := range implicit {
			out[i] = ident(v.Name)
		}
		return out
	}

	// transformIndex maps a full-rank old index vector to T·y.
	transformIndex := func(y []ast.Expr) []ast.Expr {
		subs := make([]ast.Expr, tr.n)
		for r := 0; r < tr.n; r++ {
			row := an.T.Row(r)
			var terms []term
			var konst int64
			for j, c := range row {
				if c == 0 {
					continue
				}
				if k, ok := sem.EvalConstInt(y[j]); ok {
					konst += c * k
				} else {
					terms = append(terms, term{coef: c, e: y[j]})
				}
			}
			subs[r] = lincomb(terms, konst)
		}
		return subs
	}

	touched := false
	var rerr error
	rewriteRef := func(x ast.Expr, topLevel bool) (ast.Expr, bool) {
		switch ref := x.(type) {
		case *ast.Ident:
			if tr.m.Lookup(ref.Name) != an.Array {
				return nil, false
			}
			if !topLevel || len(implicit) != tr.n {
				rerr = fmt.Errorf("hyperplane: opaque whole-array reference to %s in %s", an.Array.Name, eq.Label)
				return nil, false
			}
			touched = true
			return &ast.Index{Base: ident(tr.arrayName), Subs: transformIndex(implicitIdents())}, true
		case *ast.Index:
			base, ok := ast.Unparen(ref.Base).(*ast.Ident)
			if !ok || tr.m.Lookup(base.Name) != an.Array {
				return nil, false
			}
			y := make([]ast.Expr, 0, tr.n)
			y = append(y, ref.Subs...)
			if len(y) < tr.n {
				if !topLevel || len(implicit) != tr.n-len(y) {
					rerr = fmt.Errorf("hyperplane: partial reference to %s in %s is not implicitly aligned", an.Array.Name, eq.Label)
					return nil, false
				}
				y = append(y, implicitIdents()...)
			}
			touched = true
			return &ast.Index{Base: ident(tr.arrayName), Subs: transformIndex(y)}, true
		}
		return nil, false
	}

	rhs := rewriteAligned(eq.RHS, true, rewriteRef)
	if rerr != nil {
		return nil, rerr
	}

	// Left hand side.
	newTargets := make([]*ast.Target, len(eq.Targets))
	for ti, t := range eq.Targets {
		nt := &ast.Target{Name: ident(t.Sym.Name), Subs: t.Subs}
		if t.Sym == an.Array {
			y := make([]ast.Expr, 0, tr.n)
			y = append(y, t.Subs...)
			for _, v := range t.Implicit {
				y = append(y, ident(v.Name))
			}
			if len(y) != tr.n {
				return nil, fmt.Errorf("hyperplane: equation %s defines %s with rank %d, want %d", eq.Label, an.Array.Name, len(y), tr.n)
			}
			nt = &ast.Target{Name: ident(tr.arrayName), Subs: transformIndex(y)}
			touched = true
		} else if touched && len(t.Implicit) > 0 {
			// Materialize implicit dimensions: the equation is now
			// element-wise over them.
			subs := append(append([]ast.Expr{}, t.Subs...), implicitIdents()...)
			nt = &ast.Target{Name: ident(t.Sym.Name), Subs: subs}
		}
		newTargets[ti] = nt
	}

	// When the equation became element-wise, every remaining top-level
	// array-valued reference must also be materialized.
	if touched && len(implicit) > 0 {
		rhs = rewriteAligned(rhs, true, func(x ast.Expr, topLevel bool) (ast.Expr, bool) {
			if !topLevel {
				return nil, false
			}
			switch ref := x.(type) {
			case *ast.Ident:
				sym := tr.m.Lookup(ref.Name)
				if sym == nil || !sym.IsData() || types.Rank(sym.Type) != len(implicit) {
					return nil, false
				}
				return &ast.Index{Base: ident(ref.Name), Subs: implicitIdents()}, true
			case *ast.Index:
				base, ok := ast.Unparen(ref.Base).(*ast.Ident)
				if !ok || base.Name == tr.arrayName {
					return nil, false
				}
				sym := tr.m.Lookup(base.Name)
				if sym == nil || types.Rank(sym.Type) != len(ref.Subs)+len(implicit) {
					return nil, false
				}
				subs := append(append([]ast.Expr{}, ref.Subs...), implicitIdents()...)
				return &ast.Index{Base: ident(base.Name), Subs: subs}, true
			}
			return nil, false
		})
	}

	return &ast.Equation{Label: eq.Label, Targets: newTargets, RHS: rhs}, nil
}

func freshName(m *sem.Module, want string) string {
	name := want
	for m.Lookup(name) != nil || m.IndexVar(name) != nil {
		name += "t"
	}
	return name
}

// basisIndex returns j when row is the standard basis vector e_j, else -1.
func basisIndex(row []int64) int {
	j := -1
	for i, c := range row {
		switch c {
		case 0:
		case 1:
			if j >= 0 {
				return -1
			}
			j = i
		default:
			return -1
		}
	}
	return j
}
