package hyperplane_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/hyperplane"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
)

func analyzeGS(t *testing.T) (*sem.Module, *hyperplane.Analysis) {
	t.Helper()
	prog, err := parser.ParseProgram("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Modules[0]
	var eq *sem.Equation
	for _, e := range m.Eqs {
		if e.Label == "eq.3" {
			eq = e
		}
	}
	an, err := hyperplane.Analyze(m, eq)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return m, an
}

// TestDependenceVectors checks the five dependence vectors of the §4
// recurrence: (1,0,0), (0,0,1), (0,1,0), (1,0,-1), (1,-1,0).
func TestDependenceVectors(t *testing.T) {
	_, an := analyzeGS(t)
	want := map[string]bool{
		"(1,0,0)": true, "(0,0,1)": true, "(0,1,0)": true,
		"(1,0,-1)": true, "(1,-1,0)": true,
	}
	if len(an.Deps) != 5 {
		t.Fatalf("got %d dependences, want 5", len(an.Deps))
	}
	for _, d := range an.Deps {
		if !want[d.String()] {
			t.Errorf("unexpected dependence %s", d)
		}
		delete(want, d.String())
	}
	for s := range want {
		t.Errorf("missing dependence %s", s)
	}
}

// TestTimeVectorCoefficients checks the paper's least solution a=2, b=c=1
// for the five dependence inequalities.
func TestTimeVectorCoefficients(t *testing.T) {
	_, an := analyzeGS(t)
	if len(an.Pi) != 3 || an.Pi[0] != 2 || an.Pi[1] != 1 || an.Pi[2] != 1 {
		t.Errorf("time vector %v, want [2 1 1]", an.Pi)
	}
	if got := an.TimeEquation(); got != "t(A[K,I,J]) = 2K + I + J" {
		t.Errorf("time equation %q", got)
	}
	ineqs := strings.Join(an.Inequalities(), "; ")
	for _, want := range []string{"a > 0", "c > 0", "b > 0", "a > c", "a > b"} {
		if !strings.Contains(ineqs, want) {
			t.Errorf("inequalities %q missing %q", ineqs, want)
		}
	}
}

// TestUnimodularCompletion checks T = [[2,1,1],[1,0,0],[0,1,0]] (K'=2K+I+J,
// I'=K, J'=I) and its inverse (K=I', I=J', J=K'-2I'-J').
func TestUnimodularCompletion(t *testing.T) {
	_, an := analyzeGS(t)
	if got := an.T.String(); got != "[2 1 1]; [1 0 0]; [0 1 0]" {
		t.Errorf("T = %s, want [2 1 1]; [1 0 0]; [0 1 0]", got)
	}
	if got := an.TInv.String(); got != "[0 1 0]; [0 0 1]; [1 -2 -1]" {
		t.Errorf("T⁻¹ = %s, want [0 1 0]; [0 0 1]; [1 -2 -1]", got)
	}
}

// TestTransformedOffsets checks the §4 rewritten recurrence: the boundary
// reference becomes offset (2,1,0) and the interior references (1,0,0),
// (1,0,1), (1,1,0) and (1,1,-1) — i.e. A'[K'-2,I'-1,J'], A'[K'-1,I',J'],
// A'[K'-1,I',J'-1], A'[K'-1,I'-1,J'], A'[K'-1,I'-1,J'+1].
func TestTransformedOffsets(t *testing.T) {
	_, an := analyzeGS(t)
	want := map[string]bool{
		"(2,1,0)": true, "(1,0,0)": true, "(1,0,1)": true,
		"(1,1,0)": true, "(1,1,-1)": true,
	}
	for _, d := range an.TransformedDeps {
		if !want[d.String()] {
			t.Errorf("unexpected transformed dependence %s", d)
		}
		delete(want, d.String())
	}
	for s := range want {
		t.Errorf("missing transformed dependence %s", s)
	}
	if an.Window != 3 {
		t.Errorf("window %d, want 3 (references reach K'-2)", an.Window)
	}
}

// TestRescheduleAfterTransform applies the full §4 transformation and
// verifies that rescheduling recovers the Figure 6 shape: the recurrence
// becomes DO <time> (DOALL (DOALL)), where the untransformed program was
// the all-iterative Figure 7.
func TestRescheduleAfterTransform(t *testing.T) {
	_, an := analyzeGS(t)
	res, err := hyperplane.Transform(an)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	prog, err := parser.ParseProgram("gsh.ps", res.Source)
	if err != nil {
		t.Fatalf("reparse transformed module: %v\nsource:\n%s", err, res.Source)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("recheck transformed module: %v\nsource:\n%s", err, res.Source)
	}
	sched, err := core.Build(depgraph.Build(cp.Modules[0]))
	if err != nil {
		t.Fatalf("reschedule: %v\nsource:\n%s", err, res.Source)
	}
	got := sched.Flowchart.Compact()
	want := "DOALL I (DOALL J (eq.1)); DO Kt (DOALL K (DOALL I (eq.3))); DOALL I (DOALL J (eq.2))"
	if got != want {
		t.Errorf("transformed schedule:\n got:  %s\n want: %s\nsource:\n%s", got, want, res.Source)
	}
}

// TestTransformedSourceShape spot-checks the printed transformed module
// against the paper's rewritten equation.
func TestTransformedSourceShape(t *testing.T) {
	_, an := analyzeGS(t)
	res, err := hyperplane.Transform(an)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	for _, want := range []string{
		"At[Kt,K,I]",                  // transformed recurrence LHS
		"At[Kt - 2,K - 1,I]",          // boundary carry A'[K'-2,I'-1,J']
		"At[Kt - 1,K,I]",              // interior A'[K'-1,I',J']
		"At[Kt - 1,K,I - 1]",          // A'[K'-1,I',J'-1]
		"At[Kt - 1,K - 1,I]",          // A'[K'-1,I'-1,J']
		"At[Kt - 1,K - 1,I + 1]",      // A'[K'-1,I'-1,J'+1]
		"At[I + J + 2,1,I]",           // rotation of the input plane (K'=2·1+I+J)
		"At[2 * maxK + I + J,maxK,I]", // unrotation into the result
	} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("transformed source missing %q\nsource:\n%s", want, res.Source)
		}
	}
}

// TestSolveTimeVector exercises the solver on hand-checked systems.
func TestSolveTimeVector(t *testing.T) {
	cases := []struct {
		name string
		deps [][]int64
		want []int64
	}{
		{"paper", [][]int64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}}, []int64{2, 1, 1}},
		{"forward-only", [][]int64{{1, 0}, {0, 1}}, []int64{1, 1}},
		{"single-dim", [][]int64{{2}}, []int64{1}},
		{"skewed", [][]int64{{1, -2}}, []int64{1, 0}},
		{"wavefront", [][]int64{{1, 0}, {0, 1}, {1, 1}}, []int64{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := hyperplane.SolveTimeVector(tc.deps)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestSolveInfeasible checks error reporting for unsatisfiable systems.
func TestSolveInfeasible(t *testing.T) {
	if _, err := hyperplane.SolveTimeVector([][]int64{{1, 0}, {-1, 0}}); err == nil {
		t.Error("opposing dependences: expected error")
	}
	if _, err := hyperplane.SolveTimeVector([][]int64{{0, 0}}); err == nil {
		t.Error("zero dependence: expected error")
	}
}

// TestAnalyzeRejects verifies diagnostics for non-transformable equations.
func TestAnalyzeRejects(t *testing.T) {
	prog, err := parser.ParseProgram("jacobi.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Modules[0]
	// eq.2 (newA = A[maxK]) has no self-references.
	var eq2 *sem.Equation
	for _, e := range m.Eqs {
		if e.Label == "eq.2" {
			eq2 = e
		}
	}
	if _, err := hyperplane.Analyze(m, eq2); err == nil {
		t.Error("expected Analyze to reject an equation without self-references")
	}
	_ = ast.ExprString // keep import for doc reference
}
