package hyperplane_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/hyperplane"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
)

func analyzeGS(t *testing.T) (*sem.Module, *hyperplane.Analysis) {
	t.Helper()
	prog, err := parser.ParseProgram("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Modules[0]
	var eq *sem.Equation
	for _, e := range m.Eqs {
		if e.Label == "eq.3" {
			eq = e
		}
	}
	an, err := hyperplane.Analyze(m, eq)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return m, an
}

// TestDependenceVectors checks the five dependence vectors of the §4
// recurrence: (1,0,0), (0,0,1), (0,1,0), (1,0,-1), (1,-1,0).
func TestDependenceVectors(t *testing.T) {
	_, an := analyzeGS(t)
	want := map[string]bool{
		"(1,0,0)": true, "(0,0,1)": true, "(0,1,0)": true,
		"(1,0,-1)": true, "(1,-1,0)": true,
	}
	if len(an.Deps) != 5 {
		t.Fatalf("got %d dependences, want 5", len(an.Deps))
	}
	for _, d := range an.Deps {
		if !want[d.String()] {
			t.Errorf("unexpected dependence %s", d)
		}
		delete(want, d.String())
	}
	for s := range want {
		t.Errorf("missing dependence %s", s)
	}
}

// TestTimeVectorCoefficients checks the paper's least solution a=2, b=c=1
// for the five dependence inequalities.
func TestTimeVectorCoefficients(t *testing.T) {
	_, an := analyzeGS(t)
	if len(an.Pi) != 3 || an.Pi[0] != 2 || an.Pi[1] != 1 || an.Pi[2] != 1 {
		t.Errorf("time vector %v, want [2 1 1]", an.Pi)
	}
	if got := an.TimeEquation(); got != "t(A[K,I,J]) = 2K + I + J" {
		t.Errorf("time equation %q", got)
	}
	ineqs := strings.Join(an.Inequalities(), "; ")
	for _, want := range []string{"a > 0", "c > 0", "b > 0", "a > c", "a > b"} {
		if !strings.Contains(ineqs, want) {
			t.Errorf("inequalities %q missing %q", ineqs, want)
		}
	}
}

// TestUnimodularCompletion checks T = [[2,1,1],[1,0,0],[0,1,0]] (K'=2K+I+J,
// I'=K, J'=I) and its inverse (K=I', I=J', J=K'-2I'-J').
func TestUnimodularCompletion(t *testing.T) {
	_, an := analyzeGS(t)
	if got := an.T.String(); got != "[2 1 1]; [1 0 0]; [0 1 0]" {
		t.Errorf("T = %s, want [2 1 1]; [1 0 0]; [0 1 0]", got)
	}
	if got := an.TInv.String(); got != "[0 1 0]; [0 0 1]; [1 -2 -1]" {
		t.Errorf("T⁻¹ = %s, want [0 1 0]; [0 0 1]; [1 -2 -1]", got)
	}
}

// TestTransformedOffsets checks the §4 rewritten recurrence: the boundary
// reference becomes offset (2,1,0) and the interior references (1,0,0),
// (1,0,1), (1,1,0) and (1,1,-1) — i.e. A'[K'-2,I'-1,J'], A'[K'-1,I',J'],
// A'[K'-1,I',J'-1], A'[K'-1,I'-1,J'], A'[K'-1,I'-1,J'+1].
func TestTransformedOffsets(t *testing.T) {
	_, an := analyzeGS(t)
	want := map[string]bool{
		"(2,1,0)": true, "(1,0,0)": true, "(1,0,1)": true,
		"(1,1,0)": true, "(1,1,-1)": true,
	}
	for _, d := range an.TransformedDeps {
		if !want[d.String()] {
			t.Errorf("unexpected transformed dependence %s", d)
		}
		delete(want, d.String())
	}
	for s := range want {
		t.Errorf("missing transformed dependence %s", s)
	}
	if an.Window != 3 {
		t.Errorf("window %d, want 3 (references reach K'-2)", an.Window)
	}
}

// TestRescheduleAfterTransform applies the full §4 transformation and
// verifies that rescheduling recovers the Figure 6 shape: the recurrence
// becomes DO <time> (DOALL (DOALL)), where the untransformed program was
// the all-iterative Figure 7.
func TestRescheduleAfterTransform(t *testing.T) {
	_, an := analyzeGS(t)
	res, err := hyperplane.Transform(an)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	prog, err := parser.ParseProgram("gsh.ps", res.Source)
	if err != nil {
		t.Fatalf("reparse transformed module: %v\nsource:\n%s", err, res.Source)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("recheck transformed module: %v\nsource:\n%s", err, res.Source)
	}
	sched, err := core.Build(depgraph.Build(cp.Modules[0]))
	if err != nil {
		t.Fatalf("reschedule: %v\nsource:\n%s", err, res.Source)
	}
	got := sched.Flowchart.Compact()
	want := "DOALL I (DOALL J (eq.1)); DO Kt (DOALL K (DOALL I (eq.3))); DOALL I (DOALL J (eq.2))"
	if got != want {
		t.Errorf("transformed schedule:\n got:  %s\n want: %s\nsource:\n%s", got, want, res.Source)
	}
}

// TestTransformedSourceShape spot-checks the printed transformed module
// against the paper's rewritten equation.
func TestTransformedSourceShape(t *testing.T) {
	_, an := analyzeGS(t)
	res, err := hyperplane.Transform(an)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	for _, want := range []string{
		"At[Kt,K,I]",                  // transformed recurrence LHS
		"At[Kt - 2,K - 1,I]",          // boundary carry A'[K'-2,I'-1,J']
		"At[Kt - 1,K,I]",              // interior A'[K'-1,I',J']
		"At[Kt - 1,K,I - 1]",          // A'[K'-1,I',J'-1]
		"At[Kt - 1,K - 1,I]",          // A'[K'-1,I'-1,J']
		"At[Kt - 1,K - 1,I + 1]",      // A'[K'-1,I'-1,J'+1]
		"At[I + J + 2,1,I]",           // rotation of the input plane (K'=2·1+I+J)
		"At[2 * maxK + I + J,maxK,I]", // unrotation into the result
	} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("transformed source missing %q\nsource:\n%s", want, res.Source)
		}
	}
}

// TestSolveTimeVector exercises the solver on hand-checked systems.
func TestSolveTimeVector(t *testing.T) {
	cases := []struct {
		name string
		deps [][]int64
		want []int64
	}{
		{"paper", [][]int64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}}, []int64{2, 1, 1}},
		{"forward-only", [][]int64{{1, 0}, {0, 1}}, []int64{1, 1}},
		{"single-dim", [][]int64{{2}}, []int64{1}},
		{"skewed", [][]int64{{1, -2}}, []int64{1, 0}},
		{"wavefront", [][]int64{{1, 0}, {0, 1}, {1, 1}}, []int64{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := hyperplane.SolveTimeVector(tc.deps)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestSolveInfeasible checks error reporting for unsatisfiable systems.
func TestSolveInfeasible(t *testing.T) {
	if _, err := hyperplane.SolveTimeVector([][]int64{{1, 0}, {-1, 0}}); err == nil {
		t.Error("opposing dependences: expected error")
	}
	if _, err := hyperplane.SolveTimeVector([][]int64{{0, 0}}); err == nil {
		t.Error("zero dependence: expected error")
	}
}

// TestAnalyzeRejects verifies diagnostics for non-transformable equations.
func TestAnalyzeRejects(t *testing.T) {
	prog, err := parser.ParseProgram("jacobi.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Modules[0]
	// eq.2 (newA = A[maxK]) has no self-references.
	var eq2 *sem.Equation
	for _, e := range m.Eqs {
		if e.Label == "eq.2" {
			eq2 = e
		}
	}
	if _, err := hyperplane.Analyze(m, eq2); err == nil {
		t.Error("expected Analyze to reject an equation without self-references")
	}
	_ = ast.ExprString // keep import for doc reference
}

// groupModule compiles a two-recurrence module and returns it with the
// labeled equations in the requested order.
func groupModule(t *testing.T, src string, labels ...string) (*sem.Module, []*sem.Equation) {
	t.Helper()
	prog, err := parser.ParseProgram("group.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m := cp.Modules[0]
	eqs := make([]*sem.Equation, len(labels))
	for i, l := range labels {
		for _, e := range m.Eqs {
			if e.Label == l {
				eqs[i] = e
			}
		}
		if eqs[i] == nil {
			t.Fatalf("no equation %s", l)
		}
	}
	return m, eqs
}

const coupledSrc = `
Coupled: module (Seed: array[I,J] of real; N: int):
    [OutU: array [I,J] of real; OutV: array [I,J] of real];
type
    I,J = 1 .. N;
var
    U: array [1 .. N, 1 .. N] of real;
    V: array [1 .. N, 1 .. N] of real;
define
    (*eq.1*) U[I,J] = if (I = 1) or (J = 1) or (J = N)
             then Seed[I,J]
             else (U[I-1,J+1] + V[I,J-1]) / 2.0;
    (*eq.2*) V[I,J] = if (I = 1) or (J = 1) or (J = N)
             then 0.5 * Seed[I,J]
             else (V[I-1,J+1] + U[I,J-1]) / 2.0;
    (*eq.3*) OutU[I,J] = U[I,J];
    (*eq.4*) OutV[I,J] = V[I,J];
end Coupled;
`

// TestAnalyzeGroupUnion checks the multi-equation analysis: the union
// of both equations' dependence vectors — self references and cross
// references alike — feeds one time-vector solve.
func TestAnalyzeGroupUnion(t *testing.T) {
	m, eqs := groupModule(t, coupledSrc, "eq.1", "eq.2")
	an, err := hyperplane.AnalyzeGroup(m, eqs)
	if err != nil {
		t.Fatalf("AnalyzeGroup: %v", err)
	}
	if len(an.Eqs) != 2 || len(an.Arrays) != 2 {
		t.Fatalf("group carries %d eqs / %d arrays, want 2 / 2", len(an.Eqs), len(an.Arrays))
	}
	// Four dependences: U self (1,-1), V->U (0,1), V self (1,-1), U->V (0,1).
	got := map[string]int{}
	for _, d := range an.Deps {
		got[d.String()]++
	}
	if got["(1,-1)"] != 2 || got["(0,1)"] != 2 || len(an.Deps) != 4 {
		t.Errorf("dependence union = %v, want two (1,-1) and two (0,1)", got)
	}
	// Cross dependences must record writer and reader group indices.
	cross := 0
	for _, d := range an.Deps {
		if d.From != d.To {
			cross++
		}
	}
	if cross != 2 {
		t.Errorf("%d cross dependences recorded, want 2", cross)
	}
	if want := []int64{2, 1}; an.Pi[0] != want[0] || an.Pi[1] != want[1] {
		t.Errorf("pi = %v, want %v", an.Pi, want)
	}
	if an.Window != 2 {
		t.Errorf("window = %d, want 2", an.Window)
	}
}

// TestAnalyzeGroupZeroDistance checks the in-plane ordering rule: a
// zero-distance reference is legal exactly when the producer runs
// earlier in group order.
func TestAnalyzeGroupZeroDistance(t *testing.T) {
	src := `
Pair: module (Seed: array[I,J] of real; N: int):
    [OutA: array [I,J] of real; OutB: array [I,J] of real];
type
    I,J = 0 .. N+1;
var
    A: array [0 .. N+1, 0 .. N+1] of real;
    B: array [0 .. N+1, 0 .. N+1] of real;
define
    (*eq.1*) A[I,J] = if (I = 0) or (J = 0) then Seed[I,J]
             else (A[I-1,J] + A[I,J-1]) / 2.0;
    (*eq.2*) B[I,J] = if (I = 0) or (J = 0) then Seed[I,J]
             else (B[I-1,J] + B[I,J-1]) / 2.0 + A[I,J];
    (*eq.3*) OutA[I,J] = A[I,J];
    (*eq.4*) OutB[I,J] = B[I,J];
end Pair;
`
	m, eqs := groupModule(t, src, "eq.1", "eq.2")
	an, err := hyperplane.AnalyzeGroup(m, eqs)
	if err != nil {
		t.Fatalf("forward zero-distance reference rejected: %v", err)
	}
	// The A[I,J] read contributes no dependence vector; only the four
	// self dependences constrain pi.
	if len(an.Deps) != 4 {
		t.Errorf("got %d dependences, want 4 (zero-distance read excluded)", len(an.Deps))
	}
	if want := []int64{1, 1}; an.Pi[0] != want[0] || an.Pi[1] != want[1] {
		t.Errorf("pi = %v, want %v", an.Pi, want)
	}
	// Reversed group order: the zero-distance read now flows backward
	// (B would read A before A's kernel ran at the point).
	if _, err := hyperplane.AnalyzeGroup(m, []*sem.Equation{eqs[1], eqs[0]}); err == nil {
		t.Error("backward zero-distance reference accepted")
	}
}

// TestAnalyzeGroupRejects pins the remaining group-eligibility rules.
func TestAnalyzeGroupRejects(t *testing.T) {
	m, eqs := groupModule(t, coupledSrc, "eq.1", "eq.2")
	if _, err := hyperplane.AnalyzeGroup(m, nil); err == nil {
		t.Error("empty group accepted")
	}
	// A group member defining a second group member's array is
	// impossible; but duplicating one equation reuses its target.
	if _, err := hyperplane.AnalyzeGroup(m, []*sem.Equation{eqs[0], eqs[0]}); err == nil {
		t.Error("duplicate-target group accepted")
	}
	// eq.3 iterates the same dims but OutU has no recurrence; grouping
	// it with eq.1 leaves U's cross reference V unresolved — V is not
	// defined in the group, so only U's self dependence remains and the
	// analysis still succeeds. Grouping eq.3 with eq.4 alone has no
	// dependences at all and must be refused.
	om, out := groupModule(t, coupledSrc, "eq.3", "eq.4")
	if _, err := hyperplane.AnalyzeGroup(om, out); err == nil {
		t.Error("dependence-free group accepted")
	}

	// A non-constant-offset cross reference (reflected column) must be
	// refused even though the nest schedules sequentially.
	reflSrc := `
Reflect: module (Seed: array[I,J] of real; N: int):
    [OutX: array [I,J] of real; OutY: array [I,J] of real];
type
    I,J = 1 .. N;
var
    X: array [1 .. N, 1 .. N] of real;
    Y: array [1 .. N, 1 .. N] of real;
define
    (*eq.1*) X[I,J] = if (I = 1) or (J = 1) then Seed[I,J]
             else (X[I-1,J] + Y[I,J-1]) / 2.0;
    (*eq.2*) Y[I,J] = if (I = 1) or (J = 1) then 0.5 * Seed[I,J]
             else (Y[I-1,J] + X[I,J-1] + X[I-1, N+1-J]) / 3.0;
    (*eq.3*) OutX[I,J] = X[I,J];
    (*eq.4*) OutY[I,J] = Y[I,J];
end Reflect;
`
	rm, reqs := groupModule(t, reflSrc, "eq.1", "eq.2")
	if _, err := hyperplane.AnalyzeGroup(rm, reqs); err == nil {
		t.Error("non-constant-offset group reference accepted")
	}
	if !strings.Contains(fmt.Sprint(mustErr(t, rm, reqs)), "constant-offset") {
		t.Errorf("rejection should name the constant-offset rule: %v", mustErr(t, rm, reqs))
	}
}

func mustErr(t *testing.T, m *sem.Module, eqs []*sem.Equation) error {
	t.Helper()
	_, err := hyperplane.AnalyzeGroup(m, eqs)
	if err == nil {
		t.Fatal("expected error")
	}
	return err
}
