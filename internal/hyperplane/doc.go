// Package hyperplane implements the restructuring transformation of paper
// §4: given a recurrence — or a group of recurrences scheduled into one
// loop nest — whose schedule is fully iterative, it extracts the
// constant-offset dependence vectors, solves the strict dependence
// inequalities for the least integer time vector (Lamport's hyperplane
// method), completes the time vector to a unimodular coordinate change,
// and hands both to the consumers: the plan lowering (which bakes π, T
// and T⁻¹ into an executable wavefront step) and the §4 source-to-source
// transform (which rewrites the module so the standard scheduling
// algorithm recovers an outer iterative loop with inner parallel loops).
//
// # Contract
//
// Analyze handles one equation; AnalyzeGroup generalizes it to a group
// in scheduled (body) order — a strongly connected component the §3.3
// scheduler placed into one nest, or a §5-fused pair. Eligibility for a
// group:
//
//   - every equation defines a distinct array via the identity subscript
//     map over one common dimension set (so offsets are element
//     distances in a shared coordinate system);
//   - every group-internal reference is a full-rank constant-offset
//     subscript in the defining equation's dimension order;
//   - zero-distance references flow forward in group order only (at each
//     plane point the kernels execute in that order, so the value is
//     already written); they contribute no dependence vector;
//   - the union of all non-zero distance vectors admits a time vector π
//     with π·d ≥ 1 for every d, which places every producer on a
//     strictly earlier hyperplane for every equation at once.
//
// Any violation returns an error and the caller keeps the untransformed
// nest, so the analysis is always a pure win-or-no-change decision.
//
// # Invariants
//
// SolveTimeVector returns the least non-negative π (minimal coefficient
// sum, ties broken lexicographically), so the chosen schedule is
// deterministic across hosts and runs. T is unimodular with π as row 0
// and TInv is its exact integer inverse, so the transformed lattice is
// exactly the original lattice (no points created or lost) and the
// preimage map is exact integer arithmetic. Every transformed
// dependence T·d has first component ≥ 1; Window = 1 + max first
// component bounds how many consecutive hyperplanes a plane's inputs
// span.
//
// For the paper's revised relaxation (Equation 2) the analysis yields the
// five inequalities a>0, b>0, c>0, a>b, a>c, the least solution
// a=2, b=c=1, the transformation K'=2K+I+J, I'=K, J'=I with inverse
// K=I', I=J', J=K'−2I'−J', and a transformed recurrence whose references
// are A'[K'−1,I',J'], A'[K'−1,I',J'−1], A'[K'−1,I'−1,J'],
// A'[K'−1,I'−1,J'+1] (boundary: A'[K'−2,I'−1,J']) — reproduced verbatim
// by the tests.
package hyperplane
