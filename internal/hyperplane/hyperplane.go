// Package hyperplane implements the restructuring transformation of paper
// §4: given a recurrence whose schedule is fully iterative, it extracts
// the constant-offset dependence vectors, solves the strict dependence
// inequalities for the least integer time vector (Lamport's hyperplane
// method), completes the time vector to a unimodular coordinate change,
// and rewrites the module so that the standard scheduling algorithm
// recovers an outer iterative loop with inner parallel loops.
//
// For the paper's revised relaxation (Equation 2) the analysis yields the
// five inequalities a>0, b>0, c>0, a>b, a>c, the least solution
// a=2, b=c=1, the transformation K'=2K+I+J, I'=K, J'=I with inverse
// K=I', I=J', J=K'−2I'−J', and a transformed recurrence whose references
// are A'[K'−1,I',J'], A'[K'−1,I',J'−1], A'[K'−1,I'−1,J'],
// A'[K'−1,I'−1,J'+1] (boundary: A'[K'−2,I'−1,J']) — reproduced verbatim
// by the tests.
package hyperplane

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/intmat"
	"repro/internal/sem"
	"repro/internal/types"
)

// Dependence is one data dependence of the recurrence: the element
// distance between the defined element and a referenced element, as a
// vector over the equation's dimensions (LHS index minus RHS index).
type Dependence struct {
	Vec []int64
	// Ref is the originating reference expression.
	Ref ast.Expr
}

// String renders the vector like "(1,0,-1)".
func (d Dependence) String() string { return vecString(d.Vec) }

func vecString(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Analysis is the result of the §4 dependence analysis of one recurrence
// equation.
type Analysis struct {
	Module *sem.Module
	Eq     *sem.Equation
	// Array is the recursively defined array (the equation's target).
	Array *sem.Symbol
	// Dims are the equation's iteration dimensions, in order.
	Dims []*types.Subrange
	Deps []Dependence
	// Pi is the least non-negative integer time vector with Pi·d ≥ 1 for
	// every dependence d: element A[x] is computed at time Pi·x.
	Pi []int64
	// T is the unimodular coordinate change whose first row is Pi; TInv
	// its exact integer inverse.
	T    *intmat.Matrix
	TInv *intmat.Matrix
	// TransformedDeps are T·d for each dependence; their first components
	// are ≥ 1, so the transformed schedule is DO over the new first
	// dimension and DOALL inside.
	TransformedDeps []Dependence
	// Window is the §3.4 window of the transformed array's first
	// dimension: 1 + max first component of the transformed dependences
	// (3 for the paper's example).
	Window int
}

// Inequalities renders the strict dependence inequalities in the paper's
// coefficient form, e.g. "2K+I+J > 2(K-1)+I+J  =>  a > 0" reduced to the
// coefficient side only: one string per dependence like "a > c".
func (an *Analysis) Inequalities() []string {
	names := make([]string, len(an.Dims))
	for i := range an.Dims {
		// Coefficient names a, b, c, ... in dimension order.
		names[i] = string(rune('a' + i))
	}
	out := make([]string, len(an.Deps))
	for k, d := range an.Deps {
		var pos, neg []string
		for i, x := range d.Vec {
			switch {
			case x == 1:
				pos = append(pos, names[i])
			case x > 1:
				pos = append(pos, fmt.Sprintf("%d%s", x, names[i]))
			case x == -1:
				neg = append(neg, names[i])
			case x < -1:
				neg = append(neg, fmt.Sprintf("%d%s", -x, names[i]))
			}
		}
		lhs := strings.Join(pos, " + ")
		if lhs == "" {
			lhs = "0"
		}
		rhs := strings.Join(neg, " + ")
		if rhs == "" {
			rhs = "0"
		}
		out[k] = fmt.Sprintf("%s > %s", lhs, rhs)
	}
	return out
}

// TimeEquation renders the time function, e.g. "t(A[K,I,J]) = 2K + I + J".
func (an *Analysis) TimeEquation() string {
	var terms []string
	for i, c := range an.Pi {
		name := an.Dims[i].Name
		switch {
		case c == 0:
		case c == 1:
			terms = append(terms, name)
		default:
			terms = append(terms, fmt.Sprintf("%d%s", c, name))
		}
	}
	names := make([]string, len(an.Dims))
	for i, d := range an.Dims {
		names[i] = d.Name
	}
	return fmt.Sprintf("t(%s[%s]) = %s", an.Array.Name, strings.Join(names, ","), strings.Join(terms, " + "))
}

// Analyze extracts the dependence vectors of eq's self-references and
// solves for the time vector and coordinate transformation. The equation
// must define an array and reference it only with constant-offset
// subscripts.
func Analyze(m *sem.Module, eq *sem.Equation) (*Analysis, error) {
	if len(eq.Targets) != 1 {
		return nil, fmt.Errorf("hyperplane: equation %s has %d targets, want 1", eq.Label, len(eq.Targets))
	}
	target := eq.Targets[0].Sym
	if _, ok := target.Type.(*types.Array); !ok {
		return nil, fmt.Errorf("hyperplane: %s is not an array", target.Name)
	}
	an := &Analysis{Module: m, Eq: eq, Array: target, Dims: eq.Dims}

	// The LHS must be the identity map over the equation's dimensions so
	// that offsets are element distances.
	if len(eq.Targets[0].Subs)+len(eq.Targets[0].Implicit) != len(eq.Dims) {
		return nil, fmt.Errorf("hyperplane: %s does not subscript every dimension", eq.Label)
	}
	for i, sub := range eq.Targets[0].Subs {
		aff := m.AnalyzeAffine(sub)
		v, k, ok := affSingle(aff)
		if !ok || k != 0 || v != eq.Dims[i] {
			return nil, fmt.Errorf("hyperplane: LHS subscript %d of %s is not the identity index %s",
				i+1, eq.Label, eq.Dims[i].Name)
		}
	}

	// Collect self-references.
	var badRef ast.Expr
	ast.Inspect(eq.RHS, func(x ast.Expr) bool {
		ix, ok := x.(*ast.Index)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(ix.Base).(*ast.Ident)
		if !ok || m.Lookup(base.Name) != target {
			return true
		}
		if len(ix.Subs) != len(eq.Dims) {
			badRef = ix
			return false
		}
		vec := make([]int64, len(eq.Dims))
		for i, sub := range ix.Subs {
			aff := m.AnalyzeAffine(sub)
			v, k, ok := affSingle(aff)
			if !ok || v != eq.Dims[i] {
				badRef = ix
				return false
			}
			vec[i] = -k // subscript = dim + k ⇒ distance = -k
		}
		an.Deps = append(an.Deps, Dependence{Vec: vec, Ref: ix})
		return false
	})
	if badRef != nil {
		return nil, fmt.Errorf("hyperplane: reference %s is not a constant-offset self-reference",
			ast.ExprString(badRef))
	}
	if len(an.Deps) == 0 {
		return nil, fmt.Errorf("hyperplane: %s has no self-references; nothing to transform", eq.Label)
	}

	deps := make([][]int64, len(an.Deps))
	for i, d := range an.Deps {
		deps[i] = d.Vec
	}
	pi, err := SolveTimeVector(deps)
	if err != nil {
		return nil, err
	}
	an.Pi = pi

	t, err := intmat.CompleteUnimodular(pi)
	if err != nil {
		return nil, err
	}
	an.T = t
	an.TInv, err = t.InverseUnimodular()
	if err != nil {
		return nil, err
	}

	an.Window = 1
	for _, d := range an.Deps {
		td := t.MulVec(d.Vec)
		an.TransformedDeps = append(an.TransformedDeps, Dependence{Vec: td, Ref: d.Ref})
		if w := int(td[0]) + 1; w > an.Window {
			an.Window = w
		}
	}
	return an, nil
}

func affSingle(a *sem.Affine) (*types.Subrange, int64, bool) {
	if a == nil {
		return nil, 0, false
	}
	return a.SingleVar()
}

// SolveTimeVector finds the least non-negative integer vector pi with
// pi·d ≥ 1 for every dependence d: minimal coefficient sum, ties broken
// lexicographically. It reports an error when no vector with sum ≤ the
// search bound exists (e.g. when some dependence is the zero vector or
// two dependences oppose).
func SolveTimeVector(deps [][]int64) ([]int64, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("hyperplane: no dependences")
	}
	n := len(deps[0])
	for _, d := range deps {
		if len(d) != n {
			return nil, fmt.Errorf("hyperplane: ragged dependence vectors")
		}
		zero := true
		for _, x := range d {
			if x != 0 {
				zero = false
				break
			}
		}
		if zero {
			return nil, fmt.Errorf("hyperplane: zero dependence vector (element depends on itself)")
		}
	}
	// Iterative deepening on the coefficient sum; within a sum, candidates
	// are enumerated in lexicographic order so the first feasible vector
	// is the canonical least solution.
	const maxSum = 512
	pi := make([]int64, n)
	for sum := int64(1); sum <= maxSum; sum++ {
		if enumerate(deps, pi, 0, sum) {
			out := make([]int64, n)
			copy(out, pi)
			return out, nil
		}
	}
	return nil, fmt.Errorf("hyperplane: no time vector with coefficient sum ≤ %d satisfies the dependences", maxSum)
}

// enumerate assigns non-negative coefficients summing to rem to pi[i:],
// lexicographically, returning true when a feasible assignment is found.
func enumerate(deps [][]int64, pi []int64, i int, rem int64) bool {
	if i == len(pi)-1 {
		pi[i] = rem
		return feasible(deps, pi)
	}
	for v := int64(0); v <= rem; v++ {
		pi[i] = v
		if enumerate(deps, pi, i+1, rem-v) {
			return true
		}
	}
	pi[i] = 0
	return false
}

func feasible(deps [][]int64, pi []int64) bool {
	for _, d := range deps {
		var s int64
		for i, x := range d {
			s += pi[i] * x
		}
		if s < 1 {
			return false
		}
	}
	return true
}
