package hyperplane

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/intmat"
	"repro/internal/sem"
	"repro/internal/types"
)

// Dependence is one data dependence of the recurrence group: the element
// distance between the defined element and a referenced element, as a
// vector over the group's dimensions (LHS index minus RHS index).
type Dependence struct {
	Vec []int64
	// Ref is the originating reference expression.
	Ref ast.Expr
	// From and To are the indices (within Analysis.Eqs) of the writing
	// and reading equations; both 0 for a singleton analysis.
	From, To int
}

// String renders the vector like "(1,0,-1)".
func (d Dependence) String() string { return vecString(d.Vec) }

func vecString(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Analysis is the result of the §4 dependence analysis of one recurrence
// group: one equation, or several equations scheduled into the same loop
// nest (a strongly connected component, or a §5-fused pair), for which a
// single time vector is solved over the union of their dependence
// vectors.
type Analysis struct {
	Module *sem.Module
	// Eqs is the analyzed group in body (textual/topological) order; a
	// zero-distance dependence is legal exactly when it flows forward in
	// this order, because every plane point executes the kernels in it.
	Eqs []*sem.Equation
	// Eq is Eqs[0], kept for the singleton consumers (Transform).
	Eq *sem.Equation
	// Arrays are the recursively defined arrays, one per equation in
	// group order; Array is Arrays[0].
	Arrays []*sem.Symbol
	Array  *sem.Symbol
	// Dims are the group's iteration dimensions in analysis order
	// (Eqs[0]'s dimension order); every equation of the group iterates
	// exactly this set.
	Dims []*types.Subrange
	// Deps is the union of the constant-offset dependence vectors of
	// every group-internal reference, excluding the zero-distance
	// forward references satisfied by in-plane body order.
	Deps []Dependence
	// Pi is the least non-negative integer time vector with Pi·d ≥ 1 for
	// every dependence d: element A[x] is computed at time Pi·x.
	Pi []int64
	// T is the unimodular coordinate change whose first row is Pi; TInv
	// its exact integer inverse.
	T    *intmat.Matrix
	TInv *intmat.Matrix
	// TransformedDeps are T·d for each dependence; their first components
	// are ≥ 1, so the transformed schedule is DO over the new first
	// dimension and DOALL inside.
	TransformedDeps []Dependence
	// Window is the §3.4 window of the transformed array's first
	// dimension: 1 + max first component of the transformed dependences
	// (3 for the paper's example).
	Window int
}

// Inequalities renders the strict dependence inequalities in the paper's
// coefficient form, e.g. "2K+I+J > 2(K-1)+I+J  =>  a > 0" reduced to the
// coefficient side only: one string per dependence like "a > c".
func (an *Analysis) Inequalities() []string {
	names := make([]string, len(an.Dims))
	for i := range an.Dims {
		// Coefficient names a, b, c, ... in dimension order.
		names[i] = string(rune('a' + i))
	}
	out := make([]string, len(an.Deps))
	for k, d := range an.Deps {
		var pos, neg []string
		for i, x := range d.Vec {
			switch {
			case x == 1:
				pos = append(pos, names[i])
			case x > 1:
				pos = append(pos, fmt.Sprintf("%d%s", x, names[i]))
			case x == -1:
				neg = append(neg, names[i])
			case x < -1:
				neg = append(neg, fmt.Sprintf("%d%s", -x, names[i]))
			}
		}
		lhs := strings.Join(pos, " + ")
		if lhs == "" {
			lhs = "0"
		}
		rhs := strings.Join(neg, " + ")
		if rhs == "" {
			rhs = "0"
		}
		out[k] = fmt.Sprintf("%s > %s", lhs, rhs)
	}
	return out
}

// TimeEquation renders the time function, e.g. "t(A[K,I,J]) = 2K + I + J".
func (an *Analysis) TimeEquation() string {
	var terms []string
	for i, c := range an.Pi {
		name := an.Dims[i].Name
		switch {
		case c == 0:
		case c == 1:
			terms = append(terms, name)
		default:
			terms = append(terms, fmt.Sprintf("%d%s", c, name))
		}
	}
	names := make([]string, len(an.Dims))
	for i, d := range an.Dims {
		names[i] = d.Name
	}
	return fmt.Sprintf("t(%s[%s]) = %s", an.Array.Name, strings.Join(names, ","), strings.Join(terms, " + "))
}

// Analyze extracts the dependence vectors of eq's self-references and
// solves for the time vector and coordinate transformation. The equation
// must define an array and reference it only with constant-offset
// subscripts. It is the singleton form of AnalyzeGroup.
func Analyze(m *sem.Module, eq *sem.Equation) (*Analysis, error) {
	return AnalyzeGroup(m, []*sem.Equation{eq})
}

// AnalyzeGroup runs the §4 dependence analysis on a group of equations
// scheduled into one loop nest — one recurrence, a strongly connected
// component, or a §5-fused pair — and solves a single time vector π for
// the union of their dependence vectors.
//
// Eligibility: every equation defines a distinct array with the identity
// subscript map over a common dimension set, and every group-internal
// reference (a read of any group array) is a constant-offset full-rank
// subscript in the defining equation's dimension order. Zero-distance
// references are legal only when they flow forward in group (body)
// order: at each plane point the kernels execute in that order, so the
// value is already written. Every non-zero distance joins the union that
// π must respect (π·d ≥ 1 places the producer on a strictly earlier
// hyperplane), so one schedule is valid for the whole group.
func AnalyzeGroup(m *sem.Module, eqs []*sem.Equation) (*Analysis, error) {
	if len(eqs) == 0 {
		return nil, fmt.Errorf("hyperplane: empty equation group")
	}
	dims := eqs[0].Dims
	an := &Analysis{Module: m, Eqs: eqs, Eq: eqs[0], Dims: dims}
	dimPos := make(map[*types.Subrange]int, len(dims))
	for i, d := range dims {
		dimPos[d] = i
	}

	// writerOf maps each group-defined array to its equation's group
	// index; the index order is the in-plane execution order.
	writerOf := make(map[*sem.Symbol]int, len(eqs))
	for gi, eq := range eqs {
		if len(eq.Targets) != 1 {
			return nil, fmt.Errorf("hyperplane: equation %s has %d targets, want 1", eq.Label, len(eq.Targets))
		}
		target := eq.Targets[0].Sym
		if _, ok := target.Type.(*types.Array); !ok {
			return nil, fmt.Errorf("hyperplane: %s is not an array", target.Name)
		}
		if _, dup := writerOf[target]; dup {
			return nil, fmt.Errorf("hyperplane: %s is defined by two equations of the group", target.Name)
		}
		// Every equation must iterate exactly the group's dimension set
		// so one time vector covers every scheduled subscript.
		if len(eq.Dims) != len(dims) {
			return nil, fmt.Errorf("hyperplane: %s iterates %d dimensions, group iterates %d",
				eq.Label, len(eq.Dims), len(dims))
		}
		for _, d := range eq.Dims {
			if _, ok := dimPos[d]; !ok {
				return nil, fmt.Errorf("hyperplane: %s iterates %s outside the group's dimensions", eq.Label, d.Name)
			}
		}
		// The LHS must be the identity map over the equation's dimensions
		// so that offsets are element distances.
		if len(eq.Targets[0].Subs)+len(eq.Targets[0].Implicit) != len(eq.Dims) {
			return nil, fmt.Errorf("hyperplane: %s does not subscript every dimension", eq.Label)
		}
		for i, sub := range eq.Targets[0].Subs {
			v, k, ok := affSingle(m.AnalyzeAffine(sub))
			if !ok || k != 0 || v != eq.Dims[i] {
				return nil, fmt.Errorf("hyperplane: LHS subscript %d of %s is not the identity index %s",
					i+1, eq.Label, eq.Dims[i].Name)
			}
		}
		writerOf[target] = gi
		an.Arrays = append(an.Arrays, target)
	}
	an.Array = an.Arrays[0]

	// Collect group-internal references: reads of any group array from
	// any group equation, self-references included.
	for ri, eq := range eqs {
		ri, eq := ri, eq
		var refErr error
		ast.Inspect(eq.RHS, func(x ast.Expr) bool {
			if refErr != nil {
				return false
			}
			switch r := x.(type) {
			case *ast.Index:
				base, ok := ast.Unparen(r.Base).(*ast.Ident)
				if !ok {
					return true
				}
				sym := m.Lookup(base.Name)
				wi, isGroup := writerOf[sym]
				if !isGroup {
					return true
				}
				wEq := eqs[wi]
				if len(r.Subs) != len(dims) {
					refErr = fmt.Errorf("hyperplane: reference %s is not a constant-offset reference to %s",
						ast.ExprString(r), sym.Name)
					return false
				}
				vec := make([]int64, len(dims))
				zero := true
				for p, sub := range r.Subs {
					// Array position p of the defining equation's target is
					// dimension wEq.Dims[p] (its LHS is the identity map).
					v, k, ok := affSingle(m.AnalyzeAffine(sub))
					if !ok || v != wEq.Dims[p] {
						refErr = fmt.Errorf("hyperplane: reference %s is not a constant-offset reference to %s",
							ast.ExprString(r), sym.Name)
						return false
					}
					vec[dimPos[v]] = -k // subscript = dim + k ⇒ distance = -k
					if k != 0 {
						zero = false
					}
				}
				if zero {
					// A zero-distance reference is an in-plane dependence:
					// legal when the producer runs earlier at every point.
					if wi >= ri {
						refErr = fmt.Errorf("hyperplane: %s reads %s at the same point before it is computed",
							eq.Label, sym.Name)
					}
					return false
				}
				an.Deps = append(an.Deps, Dependence{Vec: vec, Ref: r, From: wi, To: ri})
				return false
			case *ast.Ident:
				// A whole-array element read of a group array is a
				// zero-distance reference; same in-plane order rule.
				if wi, isGroup := writerOf[m.Lookup(r.Name)]; isGroup && wi >= ri {
					refErr = fmt.Errorf("hyperplane: %s reads %s at the same point before it is computed",
						eq.Label, r.Name)
					return false
				}
			}
			return true
		})
		if refErr != nil {
			return nil, refErr
		}
	}
	if len(an.Deps) == 0 {
		return nil, fmt.Errorf("hyperplane: %s has no cross-iteration dependences; nothing to transform",
			groupLabel(eqs))
	}

	deps := make([][]int64, len(an.Deps))
	for i, d := range an.Deps {
		deps[i] = d.Vec
	}
	pi, err := SolveTimeVector(deps)
	if err != nil {
		return nil, err
	}
	an.Pi = pi

	t, err := intmat.CompleteUnimodular(pi)
	if err != nil {
		return nil, err
	}
	an.T = t
	an.TInv, err = t.InverseUnimodular()
	if err != nil {
		return nil, err
	}

	an.Window = 1
	for _, d := range an.Deps {
		td := t.MulVec(d.Vec)
		an.TransformedDeps = append(an.TransformedDeps, Dependence{Vec: td, Ref: d.Ref, From: d.From, To: d.To})
		if w := int(td[0]) + 1; w > an.Window {
			an.Window = w
		}
	}
	return an, nil
}

// groupLabel joins the group's equation labels for diagnostics.
func groupLabel(eqs []*sem.Equation) string {
	labels := make([]string, len(eqs))
	for i, eq := range eqs {
		labels[i] = eq.Label
	}
	return strings.Join(labels, ", ")
}

func affSingle(a *sem.Affine) (*types.Subrange, int64, bool) {
	if a == nil {
		return nil, 0, false
	}
	return a.SingleVar()
}

// SolveTimeVector finds the least non-negative integer vector pi with
// pi·d ≥ 1 for every dependence d: minimal coefficient sum, ties broken
// lexicographically. It reports an error when no vector with sum ≤ the
// search bound exists (e.g. when some dependence is the zero vector or
// two dependences oppose).
func SolveTimeVector(deps [][]int64) ([]int64, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("hyperplane: no dependences")
	}
	n := len(deps[0])
	for _, d := range deps {
		if len(d) != n {
			return nil, fmt.Errorf("hyperplane: ragged dependence vectors")
		}
		zero := true
		for _, x := range d {
			if x != 0 {
				zero = false
				break
			}
		}
		if zero {
			return nil, fmt.Errorf("hyperplane: zero dependence vector (element depends on itself)")
		}
	}
	// Iterative deepening on the coefficient sum; within a sum, candidates
	// are enumerated in lexicographic order so the first feasible vector
	// is the canonical least solution.
	const maxSum = 512
	pi := make([]int64, n)
	for sum := int64(1); sum <= maxSum; sum++ {
		if enumerate(deps, pi, 0, sum) {
			out := make([]int64, n)
			copy(out, pi)
			return out, nil
		}
	}
	return nil, fmt.Errorf("hyperplane: no time vector with coefficient sum ≤ %d satisfies the dependences", maxSum)
}

// enumerate assigns non-negative coefficients summing to rem to pi[i:],
// lexicographically, returning true when a feasible assignment is found.
func enumerate(deps [][]int64, pi []int64, i int, rem int64) bool {
	if i == len(pi)-1 {
		pi[i] = rem
		return feasible(deps, pi)
	}
	for v := int64(0); v <= rem; v++ {
		pi[i] = v
		if enumerate(deps, pi, i+1, rem-v) {
			return true
		}
	}
	pi[i] = 0
	return false
}

func feasible(deps [][]int64, pi []int64) bool {
	for _, d := range deps {
		var s int64
		for i, x := range d {
			s += pi[i] * x
		}
		if s < 1 {
			return false
		}
	}
	return true
}
