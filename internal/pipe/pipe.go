// Package pipe is the PS-DSWP stage runtime behind plan.OpPipeline
// steps. A pipeline is a DAG of stages streaming the iterations of one
// loop dimension ("tokens" 0..Tokens-1) through bounded channels: a
// sequential stage runs on exactly one goroutine and processes every
// token in ascending order; a parallel stage is replicated, replica r
// of R processing tokens t ≡ r (mod R). A stage may start token t only
// after every upstream stage it depends on has completed token t, so
// cross-stage reads that reach the same or earlier tokens are always
// satisfied — the contract the planner's stage partition guarantees.
//
// Decoupling is bounded: each dependence edge is a channel whose
// capacity derives from the dependence's backward token distance
// (Dep.Window = 1 + distance, the same sizing rule as Hyper.Window), so
// a fast producer gets at most that much lead before backpressure
// blocks it. Blocking waits on either side are counted as stalls; the
// executor surfaces them as RunStats.StageStalls. Cancellation (context
// or first body error) aborts every blocked send/receive.
package pipe

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Dep names an upstream stage and the channel capacity its dependence
// distance implies.
type Dep struct {
	Stage int
	// Window is the bounded-channel capacity: 1 + the largest backward
	// distance along the streamed dimension. Values below 1 are
	// clamped to 1.
	Window int
}

// Stage describes one pipeline stage.
type Stage struct {
	// Parallel stages are replicated across the worker count;
	// sequential stages get one goroutine.
	Parallel bool
	// Deps lists the upstream stages whose token completions gate this
	// stage's tokens.
	Deps []Dep
}

// Stats counts runtime events; fields are updated atomically.
type Stats struct {
	// Stalls is the number of blocking waits: a stage starved on an
	// empty input channel or backpressured on a full output channel.
	Stalls atomic.Int64
}

// ErrCanceled is returned by Run when the external cancel channel fired
// before the pipeline drained.
var ErrCanceled = errors.New("pipe: pipeline canceled")

// edge is one dependence channel bundle: the producer routes the
// completion of token t to chs[t mod len(chs)], so consumer replica r
// receives exactly its own tokens' completions, in order.
type edge struct {
	chs []chan struct{}
}

// Run executes tokens 0..tokens-1 through the stage pipeline, calling
// body(stage, replica, token) for the actual work. It returns the first
// body error, ErrCanceled when cancel fires first, or nil. A panicking
// body aborts the pipeline and the panic is re-raised from Run after
// every goroutine has stopped. rec, when non-nil, records each stage
// goroutine's body spans (obs.KStage) and blocking channel waits
// (obs.KStageStall, starved receives and backpressured sends) on
// per-goroutine rings.
func Run(stages []Stage, tokens int64, workers int, cancel <-chan struct{}, body func(stage, replica int, token int64) error, stats *Stats, rec *obs.Recorder) error {
	if tokens <= 0 || len(stages) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	replicas := make([]int, len(stages))
	for s := range stages {
		replicas[s] = 1
		if stages[s].Parallel {
			replicas[s] = workers
		}
	}

	// Build the dependence channels, grouped by consumer then by
	// producer, and the per-producer fan-out lists.
	in := make([][]*edge, len(stages))  // in[s][d] for stages[s].Deps[d]
	out := make([][]*edge, len(stages)) // edges produced by stage s, consumer order
	for s := range stages {
		for _, d := range stages[s].Deps {
			cap := d.Window
			if cap < 1 {
				cap = 1
			}
			e := &edge{chs: make([]chan struct{}, replicas[s])}
			for r := range e.chs {
				e.chs[r] = make(chan struct{}, cap)
			}
			in[s] = append(in[s], e)
			out[d.Stage] = append(out[d.Stage], e)
		}
	}

	abort := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	var panicked atomic.Value
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}
	if cancel != nil {
		drained := make(chan struct{})
		defer close(drained)
		go func() {
			select {
			case <-cancel:
				fail(ErrCanceled)
			case <-drained:
			}
		}()
	}

	stall := func() {
		if stats != nil {
			stats.Stalls.Add(1)
		}
	}
	// recv waits for one completion; reports false on abort. The
	// blocking slow path is recorded on ring as a starved-receive stall.
	recv := func(ch chan struct{}, ring *obs.Ring, stage int) bool {
		select {
		case <-ch:
			return true
		default:
		}
		stall()
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
			defer func() { ring.Emit(obs.KStageStall, t0, ring.Now()-t0, int64(stage), 0) }()
		}
		select {
		case <-ch:
			return true
		case <-abort:
			return false
		}
	}
	// send publishes one completion; reports false on abort. The
	// blocking slow path is recorded as a backpressured-send stall.
	send := func(ch chan struct{}, ring *obs.Ring, stage int) bool {
		select {
		case ch <- struct{}{}:
			return true
		default:
		}
		stall()
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
			defer func() { ring.Emit(obs.KStageStall, t0, ring.Now()-t0, int64(stage), 1) }()
		}
		select {
		case ch <- struct{}{}:
			return true
		case <-abort:
			return false
		}
	}
	// forward routes the completion of token t to every consumer edge.
	forward := func(edges []*edge, t int64, ring *obs.Ring, stage int) bool {
		for _, e := range edges {
			if !send(e.chs[int(t%int64(len(e.chs)))], ring, stage) {
				return false
			}
		}
		return true
	}

	var wg sync.WaitGroup
	for s := range stages {
		s := s
		// A replicated stage completes tokens out of order; when later
		// stages consume it, an emitter goroutine restores token order
		// before forwarding.
		var doneCh chan int64
		if len(out[s]) > 0 && replicas[s] > 1 {
			doneCh = make(chan int64, replicas[s])
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ring *obs.Ring
				if rec != nil {
					ring = rec.Acquire()
					defer rec.Release(ring)
				}
				pending := make(map[int64]bool)
				next := int64(0)
				for next < tokens {
					var t int64
					select {
					case t = <-doneCh:
					case <-abort:
						return
					}
					pending[t] = true
					for pending[next] {
						delete(pending, next)
						if !forward(out[s], next, ring, s) {
							return
						}
						next++
					}
				}
			}()
		}
		for r := 0; r < replicas[s]; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ring *obs.Ring
				if rec != nil {
					ring = rec.Acquire()
					defer rec.Release(ring)
				}
				defer func() {
					if v := recover(); v != nil {
						panicked.Store(v)
						fail(errors.New("pipe: stage body panicked"))
					}
				}()
				step := int64(replicas[s])
				for t := int64(r); t < tokens; t += step {
					for _, e := range in[s] {
						if !recv(e.chs[r], ring, s) {
							return
						}
					}
					var t0 int64
					if ring != nil {
						t0 = ring.Now()
					}
					err := body(s, r, t)
					if ring != nil {
						ring.Emit(obs.KStage, t0, ring.Now()-t0, int64(s), t)
					}
					if err != nil {
						fail(err)
						return
					}
					switch {
					case doneCh != nil:
						select {
						case doneCh <- t:
						case <-abort:
							return
						}
					case len(out[s]) > 0:
						if !forward(out[s], t, ring, s) {
							return
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	if v := panicked.Load(); v != nil {
		panic(v)
	}
	return firstErr
}
