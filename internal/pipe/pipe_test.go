package pipe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderingContract checks the core guarantee: a stage starts token
// t only after every upstream stage completed token t, across replica
// counts and backward distances.
func TestOrderingContract(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const tokens = 64
			var mu sync.Mutex
			done := make([]map[int64]bool, 3) // per stage: completed tokens
			for i := range done {
				done[i] = make(map[int64]bool)
			}
			stages := []Stage{
				{},
				{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
				{Parallel: true, Deps: []Dep{{Stage: 0, Window: 2}, {Stage: 1, Window: 1}}},
			}
			var stats Stats
			err := Run(stages, tokens, workers, nil, func(stage, replica int, token int64) error {
				mu.Lock()
				for _, d := range stages[stage].Deps {
					if !done[d.Stage][token] {
						mu.Unlock()
						return fmt.Errorf("stage %d token %d started before stage %d completed it", stage, token, d.Stage)
					}
				}
				mu.Unlock()
				mu.Lock()
				done[stage][token] = true
				mu.Unlock()
				return nil
			}, &stats, nil)
			if err != nil {
				t.Fatal(err)
			}
			for s := range done {
				if len(done[s]) != tokens {
					t.Errorf("stage %d completed %d tokens, want %d", s, len(done[s]), tokens)
				}
			}
		})
	}
}

// TestSequentialStageOrder checks the sequential stage processes every
// token ascending on a single goroutine.
func TestSequentialStageOrder(t *testing.T) {
	var seq []int64
	stages := []Stage{
		{},
		{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
	}
	err := Run(stages, 32, 4, nil, func(stage, replica int, token int64) error {
		if stage == 0 {
			if replica != 0 {
				t.Errorf("sequential stage ran on replica %d", replica)
			}
			seq = append(seq, token) // single goroutine: no race
		}
		return nil
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seq {
		if v != int64(i) {
			t.Fatalf("sequential stage order %v", seq)
		}
	}
}

// TestReplicaTokenAssignment checks replica r of a parallel stage gets
// exactly the tokens t ≡ r (mod R).
func TestReplicaTokenAssignment(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	byReplica := make(map[int][]int64)
	stages := []Stage{
		{},
		{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
	}
	err := Run(stages, 30, workers, nil, func(stage, replica int, token int64) error {
		if stage == 1 {
			mu.Lock()
			byReplica[replica] = append(byReplica[replica], token)
			mu.Unlock()
		}
		return nil
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r, ts := range byReplica {
		for _, tok := range ts {
			if tok%workers != int64(r) {
				t.Errorf("replica %d got token %d", r, tok)
			}
		}
	}
}

// TestBackpressure checks the producer's lead over a slow consumer is
// bounded by the edge window and that the blocking shows up as stalls.
func TestBackpressure(t *testing.T) {
	const window = 2
	var produced, consumed atomic.Int64
	var maxLead atomic.Int64
	stages := []Stage{
		{},
		{Deps: []Dep{{Stage: 0, Window: window}}}, // sequential slow consumer
	}
	var stats Stats
	err := Run(stages, 48, 2, nil, func(stage, replica int, token int64) error {
		if stage == 0 {
			p := produced.Add(1)
			if lead := p - consumed.Load(); lead > maxLead.Load() {
				maxLead.Store(lead)
			}
			return nil
		}
		time.Sleep(200 * time.Microsecond)
		consumed.Add(1)
		return nil
	}, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The producer may be at most window tokens past the consumer, plus
	// the one token in flight on each side.
	if got := maxLead.Load(); got > window+2 {
		t.Errorf("producer lead %d exceeds window bound %d", got, window+2)
	}
	if stats.Stalls.Load() == 0 {
		t.Error("expected stalls from backpressure against the slow consumer")
	}
}

// TestBodyError checks the first body error aborts the pipeline and is
// returned.
func TestBodyError(t *testing.T) {
	boom := errors.New("boom")
	stages := []Stage{
		{},
		{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
	}
	err := Run(stages, 1000, 2, nil, func(stage, replica int, token int64) error {
		if stage == 1 && token == 5 {
			return boom
		}
		return nil
	}, nil, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestCancel checks an external cancellation unblocks the pipeline and
// returns ErrCanceled.
func TestCancel(t *testing.T) {
	cancel := make(chan struct{})
	var once sync.Once
	stages := []Stage{
		{},
		{Deps: []Dep{{Stage: 0, Window: 1}}},
	}
	err := Run(stages, 1_000_000, 2, cancel, func(stage, replica int, token int64) error {
		if stage == 1 && token == 3 {
			once.Do(func() { close(cancel) })
			// Park so only cancellation can finish the run.
			time.Sleep(time.Millisecond)
		}
		return nil
	}, nil, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestBodyPanic checks a panicking body re-raises from Run after every
// goroutine stopped.
func TestBodyPanic(t *testing.T) {
	defer func() {
		if v := recover(); v != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", v)
		}
	}()
	stages := []Stage{
		{},
		{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
	}
	_ = Run(stages, 100, 2, nil, func(stage, replica int, token int64) error {
		if stage == 1 && token == 7 {
			panic("kaboom")
		}
		return nil
	}, nil, nil)
	t.Fatal("Run returned instead of panicking")
}

// TestEmptyAndDegenerate covers the no-op shapes.
func TestEmptyAndDegenerate(t *testing.T) {
	if err := Run(nil, 10, 2, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := Run([]Stage{{}}, 0, 2, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Zero workers clamp to one.
	ran := 0
	err := Run([]Stage{{}}, 3, 0, nil, func(stage, replica int, token int64) error {
		ran++
		return nil
	}, nil, nil)
	if err != nil || ran != 3 {
		t.Fatalf("err=%v ran=%d", err, ran)
	}
}

// TestMidChainReplication checks a parallel stage feeding a later
// stage: the emitter must restore token order before forwarding.
func TestMidChainReplication(t *testing.T) {
	const tokens = 96
	var mu sync.Mutex
	mid := make(map[int64]bool)
	var lastSink int64 = -1
	stages := []Stage{
		{},
		{Parallel: true, Deps: []Dep{{Stage: 0, Window: 1}}},
		{Deps: []Dep{{Stage: 1, Window: 3}}}, // sequential sink
	}
	err := Run(stages, tokens, 4, nil, func(stage, replica int, token int64) error {
		switch stage {
		case 1:
			// Jitter the replicas so completions arrive out of order.
			time.Sleep(time.Duration(token%5) * 50 * time.Microsecond)
			mu.Lock()
			mid[token] = true
			mu.Unlock()
		case 2:
			mu.Lock()
			defer mu.Unlock()
			if !mid[token] {
				return fmt.Errorf("sink token %d before mid stage completed it", token)
			}
			if token != lastSink+1 {
				return fmt.Errorf("sink token %d after %d: order broken", token, lastSink)
			}
			lastSink = token
		}
		return nil
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastSink != tokens-1 {
		t.Fatalf("sink stopped at %d", lastSink)
	}
}
