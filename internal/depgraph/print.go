package depgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Listing renders the graph as a deterministic text table, one node per
// block with its outgoing edges — the textual form of the paper's hand-
// drawn Figure 3.
func (g *Graph) Listing() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dependency graph for module %s: %d nodes, %d edges\n",
		g.Module.Name, len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  [%d] %s %s", n.ID, n.Kind, n.Name)
		if n.Kind == EquationNode && n.Eq != nil {
			fmt.Fprintf(&sb, ": %s", n.Eq)
		} else if n.Sym != nil && n.Sym.Type != nil {
			fmt.Fprintf(&sb, ": %s", n.Sym.Type)
		}
		sb.WriteByte('\n')
		for _, e := range n.Out {
			fmt.Fprintf(&sb, "      %s\n", e)
		}
	}
	return sb.String()
}

// DOT renders the graph in Graphviz format. Equation nodes are boxes,
// data nodes ellipses; bound edges are dashed.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Module.Name)
	for _, n := range g.Nodes {
		shape := "ellipse"
		if n.Kind == EquationNode {
			shape = "box"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s];\n", n.ID, n.Name, shape)
	}
	for _, e := range g.Edges {
		attrs := []string{}
		if e.Kind == BoundDep {
			attrs = append(attrs, "style=dashed")
		}
		if len(e.Labels) > 0 {
			parts := make([]string, len(e.Labels))
			for i, l := range e.Labels {
				parts[i] = l.String()
			}
			attrs = append(attrs, fmt.Sprintf("label=%q", "["+strings.Join(parts, ",")+"]"))
		}
		fmt.Fprintf(&sb, "  n%d -> n%d", e.From.ID, e.To.ID)
		if len(attrs) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(attrs, ", "))
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// EdgeStrings returns the sorted string forms of all edges, for tests.
func (g *Graph) EdgeStrings() []string {
	out := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}
