package depgraph_test

import (
	"strings"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
)

func build(t *testing.T, src, module string) *depgraph.Graph {
	t.Helper()
	prog, err := parser.ParseProgram("test.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return depgraph.Build(cp.Module(module))
}

// TestRelaxationGraphStructure verifies the Figure 3 dependency graph:
// node inventory and the full edge set with labels.
func TestRelaxationGraphStructure(t *testing.T) {
	g := build(t, psrc.Relaxation, "Relaxation")
	if len(g.Nodes) != 8 {
		t.Errorf("got %d nodes, want 8 (4 data + 1 result + 1 local is 6... params InitialA, M, maxK + newA + A + 3 equations)", len(g.Nodes))
	}

	edges := g.EdgeStrings()
	want := []string{
		// Data dependencies of the equations.
		"InitialA -[I,J]-> eq.1",
		"eq.1 -[1,I,J]-> A",
		"A -[maxK,I,J]-> eq.2",
		"eq.2 -[I,J]-> newA",
		"A -[K-1,I,J]-> eq.3",
		"A -[K-1,I,J-1]-> eq.3",
		"A -[K-1,I-1,J]-> eq.3",
		"A -[K-1,I,J+1]-> eq.3",
		"A -[K-1,I+1,J]-> eq.3",
		"eq.3 -[K,I,J]-> A",
		// Subrange bound dependencies (paper: M → InitialA, A, newA;
		// maxK → A).
		"M -(bound)-> InitialA",
		"M -(bound)-> A",
		"M -(bound)-> newA",
		"maxK -(bound)-> A",
	}
	joined := strings.Join(edges, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("missing edge %q\nhave:\n%s", w, joined)
		}
	}
}

// TestEdgeLabels verifies the Figure 2 label classification on the
// Jacobi references.
func TestEdgeLabels(t *testing.T) {
	g := build(t, psrc.Relaxation, "Relaxation")
	a := g.NodeFor("A")
	eq3 := g.NodeFor("e:eq.3")
	eq2 := g.NodeFor("e:eq.2")

	var sawUpper, sawOffsets, sawFwd bool
	for _, e := range a.Out {
		if e.To == eq2 {
			l, ok := e.LabelAt(0)
			if !ok || l.Kind != depgraph.SubUpperBound {
				t.Errorf("A[maxK] label kind %v, want N (upper bound)", l.Kind)
			}
			sawUpper = true
		}
		if e.To == eq3 {
			l0, _ := e.LabelAt(0)
			if l0.Kind != depgraph.SubOffsetBack || l0.Offset != 1 || l0.Var.Name != "K" {
				t.Errorf("K-dimension label %v (offset %d)", l0.Kind, l0.Offset)
			}
			sawOffsets = true
			l1, _ := e.LabelAt(1)
			if l1.Kind == depgraph.SubOffsetFwd {
				if l1.Offset != -1 {
					t.Errorf("I+1 offset %d, want -1", l1.Offset)
				}
				sawFwd = true
			}
		}
	}
	if !sawUpper || !sawOffsets || !sawFwd {
		t.Errorf("label coverage: upper=%v offsets=%v fwd=%v", sawUpper, sawOffsets, sawFwd)
	}
}

// TestLHSEdge verifies the equation→variable edge and its labels.
func TestLHSEdge(t *testing.T) {
	g := build(t, psrc.Relaxation, "Relaxation")
	eq1 := g.NodeFor("e:eq.1")
	var lhs *depgraph.Edge
	for _, e := range eq1.Out {
		if e.IsLHS {
			lhs = e
		}
	}
	if lhs == nil {
		t.Fatal("eq.1 has no LHS edge")
	}
	if lhs.To.Name != "A" {
		t.Errorf("LHS edge targets %s", lhs.To.Name)
	}
	l0, _ := lhs.LabelAt(0)
	if l0.Kind != depgraph.SubConst {
		t.Errorf("A[1] label kind %v, want const", l0.Kind)
	}
	l1, _ := lhs.LabelAt(1)
	if l1.Kind != depgraph.SubIdentity || l1.Var.Name != "I" {
		t.Errorf("implicit label %v var %v", l1.Kind, l1.Var)
	}
}

// TestScalarRefEdges verifies data edges from scalars used in
// expressions and subscripts (M in the boundary conditions, maxK in
// A[maxK]).
func TestScalarRefEdges(t *testing.T) {
	g := build(t, psrc.Relaxation, "Relaxation")
	joined := strings.Join(g.EdgeStrings(), "\n")
	if !strings.Contains(joined, "M --> eq.3") {
		t.Error("missing data edge M -> eq.3 (boundary conditions reference M)")
	}
	if !strings.Contains(joined, "maxK --> eq.2") {
		t.Error("missing data edge maxK -> eq.2 (subscript references maxK)")
	}
}

// TestDOTOutput sanity-checks the Graphviz export.
func TestDOTOutput(t *testing.T) {
	g := build(t, psrc.Relaxation, "Relaxation")
	dot := g.DOT()
	for _, w := range []string{
		"digraph \"Relaxation\"",
		"shape=box",     // equation nodes
		"shape=ellipse", // data nodes
		"style=dashed",  // bound edges
		"label=\"[K-1,I,J]\"",
	} {
		if !strings.Contains(dot, w) {
			t.Errorf("DOT output missing %q", w)
		}
	}
}

// TestWholeCallEdges verifies call-argument references.
func TestWholeCallEdges(t *testing.T) {
	g := build(t, psrc.Pipeline, "Pipeline")
	joined := strings.Join(g.EdgeStrings(), "\n")
	// Xs feeds the first call, Mid the second; Mid is produced by eq.1.
	for _, w := range []string{"Xs -", "Mid -", "-> Mid", "-> Zs"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing %q in pipeline edges:\n%s", w, joined)
		}
	}
}
