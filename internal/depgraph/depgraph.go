// Package depgraph builds the data dependency graph of a PS module
// (paper §3.1). Nodes are data items and equations; a directed edge runs
// from node i to node j when data produced in i is used in j. Edges carry
// per-dimension labels classifying each subscript expression of the array
// endpoint (paper Figure 2): "I", "I - constant", or any other expression,
// plus the offset amount for constant-offset forms.
//
// Bound dependency edges are also drawn from each scalar variable used in
// a subrange bound to the variables (and equations) whose shape or
// iteration depends on that subrange — e.g. M → InitialA, A, newA and
// maxK → A in the relaxation module.
package depgraph

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// NodeKind discriminates data nodes from equation nodes.
type NodeKind int

// Node kinds.
const (
	DataNode NodeKind = iota
	EquationNode
)

// String names the node kind.
func (k NodeKind) String() string {
	if k == DataNode {
		return "data"
	}
	return "equation"
}

// Node is one vertex of the dependency graph.
type Node struct {
	ID   int
	Kind NodeKind
	Name string
	Sym  *sem.Symbol   // for data nodes
	Eq   *sem.Equation // for equation nodes
	Out  []*Edge
	In   []*Edge
}

// IsLocalArray reports whether the node is a local array variable, the
// only candidates for virtual dimensions (paper §3.4).
func (n *Node) IsLocalArray() bool {
	return n.Kind == DataNode && n.Sym != nil && n.Sym.Kind == sem.LocalSym &&
		n.Sym.Type != nil && n.Sym.Type.Kind() == types.ArrayKind
}

// Rank returns the number of array dimensions of a data node (0 for
// scalars and equation nodes).
func (n *Node) Rank() int {
	if n.Kind == DataNode && n.Sym != nil {
		return types.Rank(n.Sym.Type)
	}
	return 0
}

// EdgeKind discriminates data dependency edges from subrange bound edges.
type EdgeKind int

// Edge kinds. The paper also mentions hierarchical edges between records
// and their fields; we model records as indivisible values (fields are not
// separately defined), so no hierarchical edges arise.
const (
	DataDep EdgeKind = iota
	BoundDep
)

// String names the edge kind.
func (k EdgeKind) String() string {
	if k == BoundDep {
		return "bound"
	}
	return "data"
}

// SubKind classifies one subscript expression (paper Figure 2).
type SubKind int

// Subscript expression kinds. Identity is the paper's "I"; OffsetBack is
// "I - constant" (a reference to an element produced in an earlier
// iteration, deletable when forming an iterative loop); OffsetFwd is
// "I + constant", which the paper folds into "any other expression" for
// scheduling but which the hyperplane transformation distinguishes;
// UpperBound is a constant subscript equal to the dimension's declared
// upper bound (the form the virtual-dimension rule 2 recognizes); Const is
// any other constant; Other is everything else.
const (
	SubIdentity SubKind = iota
	SubOffsetBack
	SubOffsetFwd
	SubUpperBound
	SubConst
	SubOther
)

// String names the subscript kind.
func (k SubKind) String() string {
	switch k {
	case SubIdentity:
		return "I"
	case SubOffsetBack:
		return "I-c"
	case SubOffsetFwd:
		return "I+c"
	case SubUpperBound:
		return "N"
	case SubConst:
		return "const"
	}
	return "other"
}

// SubLabel is the classification of the subscript used at one dimension of
// the array endpoint of an edge.
type SubLabel struct {
	// Pos is the dimension position in the referenced array (the paper's
	// "position in target of this source subscript").
	Pos  int
	Kind SubKind
	// Var is the index variable for Identity/OffsetBack/OffsetFwd labels.
	Var *types.Subrange
	// Offset is the back-distance: the subscript is Var - Offset.
	// Positive values reference earlier iterations (A[K-1] has Offset 1);
	// negative values reference later ones (A[I+1] has Offset -1).
	Offset int64
	// Expr is the original subscript expression (nil for the implicit
	// dimensions of array-valued assignments).
	Expr ast.Expr
}

// String renders the label like "K-1", "I", "maxK", or "other".
func (l SubLabel) String() string {
	switch l.Kind {
	case SubIdentity:
		return l.Var.Name
	case SubOffsetBack:
		return fmt.Sprintf("%s-%d", l.Var.Name, l.Offset)
	case SubOffsetFwd:
		return fmt.Sprintf("%s+%d", l.Var.Name, -l.Offset)
	case SubUpperBound, SubConst:
		if l.Expr != nil {
			return ast.ExprString(l.Expr)
		}
		return "const"
	}
	if l.Expr != nil {
		return ast.ExprString(l.Expr)
	}
	return "other"
}

// Edge is one directed dependency.
type Edge struct {
	ID   int
	From *Node
	To   *Node
	Kind EdgeKind
	// Labels classifies the subscripts of the array endpoint, one entry
	// per array dimension (full rank). Nil for scalar references, whole-
	// array references passed opaquely (e.g. module call arguments), and
	// bound edges.
	Labels []SubLabel
	// IsLHS marks the equation→variable edge produced by a left hand
	// side; Labels then describe the LHS subscripts.
	IsLHS bool
	// Ref is the originating reference expression, when one exists.
	Ref ast.Expr
}

// ArrayNode returns the array endpoint the labels describe: To for LHS
// edges, From otherwise.
func (e *Edge) ArrayNode() *Node {
	if e.IsLHS {
		return e.To
	}
	return e.From
}

// LabelAt returns the label for dimension pos of the array endpoint and
// whether one exists.
func (e *Edge) LabelAt(pos int) (SubLabel, bool) {
	for _, l := range e.Labels {
		if l.Pos == pos {
			return l, true
		}
	}
	return SubLabel{}, false
}

// String renders the edge for diagnostics: "A -[K-1,I,J+1]-> eq.3".
func (e *Edge) String() string {
	s := e.From.Name + " -"
	if e.Kind == BoundDep {
		s += "(bound)"
	} else if len(e.Labels) > 0 {
		s += "["
		for i, l := range e.Labels {
			if i > 0 {
				s += ","
			}
			s += l.String()
		}
		s += "]"
	}
	return s + "-> " + e.To.Name
}

// Graph is the dependency graph of one module.
type Graph struct {
	Module *sem.Module
	Nodes  []*Node
	Edges  []*Edge
	byName map[string]*Node
}

// NodeFor returns the node for a data symbol name or equation label.
func (g *Graph) NodeFor(name string) *Node { return g.byName[name] }

// DataNodeOf returns the node of a data symbol.
func (g *Graph) DataNodeOf(sym *sem.Symbol) *Node { return g.byName["v:"+sym.Name] }

// EquationNodeOf returns the node of an equation.
func (g *Graph) EquationNodeOf(eq *sem.Equation) *Node { return g.byName["e:"+eq.Label] }

func (g *Graph) addNode(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	key := "v:" + n.Name
	if n.Kind == EquationNode {
		key = "e:" + n.Name
	}
	g.byName[key] = n
	if _, dup := g.byName[n.Name]; !dup {
		g.byName[n.Name] = n
	}
	return n
}

func (g *Graph) addEdge(e *Edge) *Edge {
	e.ID = len(g.Edges)
	g.Edges = append(g.Edges, e)
	e.From.Out = append(e.From.Out, e)
	e.To.In = append(e.To.In, e)
	return e
}

// Build constructs the dependency graph for a checked module.
func Build(m *sem.Module) *Graph {
	g := &Graph{Module: m, byName: make(map[string]*Node)}

	// Data nodes for every parameter, result and local, in declaration
	// order; then equation nodes in define-section order.
	for _, sym := range m.DataSymbols() {
		g.addNode(&Node{Kind: DataNode, Name: sym.Name, Sym: sym})
	}
	for _, eq := range m.Eqs {
		g.addNode(&Node{Kind: EquationNode, Name: eq.Label, Eq: eq})
	}

	// Bound dependency edges: scalar → shaped variable.
	for _, sym := range m.DataSymbols() {
		to := g.DataNodeOf(sym)
		for _, dep := range sym.BoundDeps {
			g.addEdge(&Edge{From: g.DataNodeOf(dep), To: to, Kind: BoundDep})
		}
	}

	for _, eq := range m.Eqs {
		en := g.EquationNodeOf(eq)
		b := &edgeBuilder{g: g, m: m, eq: eq, en: en}
		// Bound edges from scalars defining the equation's iteration
		// subranges, so loops never run before computed bounds exist.
		b.addDimBoundEdges()
		// LHS edges: equation → defined variable.
		for _, t := range eq.Targets {
			b.addLHSEdge(t)
		}
		// RHS reference edges: variable → equation.
		if eq.MultiCall != nil {
			for _, arg := range eq.MultiCall.Args {
				b.walk(arg, false)
			}
		} else {
			b.walk(eq.RHS, true)
		}
	}
	return g
}

// edgeBuilder accumulates edges for one equation.
type edgeBuilder struct {
	g  *Graph
	m  *sem.Module
	eq *sem.Equation
	en *Node
}

func (b *edgeBuilder) addDimBoundEdges() {
	seen := make(map[*sem.Symbol]bool)
	for _, d := range b.eq.Dims {
		info := b.m.SubrangeInfo(d)
		if info == nil {
			continue
		}
		for _, dep := range info.BoundDeps {
			if !seen[dep] {
				seen[dep] = true
				b.g.addEdge(&Edge{From: b.g.DataNodeOf(dep), To: b.en, Kind: BoundDep})
			}
		}
	}
}

func (b *edgeBuilder) addLHSEdge(t *sem.Target) {
	to := b.g.DataNodeOf(t.Sym)
	e := &Edge{From: b.en, To: to, Kind: DataDep, IsLHS: true}
	if arr, ok := t.Sym.Type.(*types.Array); ok {
		e.Labels = b.classifySubs(arr, t.Subs, t.Implicit)
	}
	b.g.addEdge(e)
	// Subscript expressions on the LHS may themselves reference scalar
	// data (A[maxK] = ... would use maxK); draw those reference edges.
	for _, sub := range t.Subs {
		b.walkSubexprs(sub)
	}
}

// classifySubs builds full-rank labels for a reference to an array: the
// explicit subscripts classified by affine analysis, then the implicit
// trailing dimensions as Identity labels of the given index variables.
func (b *edgeBuilder) classifySubs(arr *types.Array, subs []ast.Expr, implicit []*types.Subrange) []SubLabel {
	labels := make([]SubLabel, 0, len(arr.Dims))
	for i, sub := range subs {
		labels = append(labels, b.classifyOne(arr, i, sub))
	}
	for j, v := range implicit {
		labels = append(labels, SubLabel{Pos: len(subs) + j, Kind: SubIdentity, Var: v})
	}
	// Any remaining dimensions (opaque partial references) are unknown.
	for p := len(labels); p < len(arr.Dims); p++ {
		labels = append(labels, SubLabel{Pos: p, Kind: SubOther})
	}
	return labels
}

// classifyOne classifies a single subscript expression against dimension
// pos of arr, per paper Figure 2.
func (b *edgeBuilder) classifyOne(arr *types.Array, pos int, sub ast.Expr) SubLabel {
	l := SubLabel{Pos: pos, Expr: sub, Kind: SubOther}
	aff := b.m.AnalyzeAffine(sub)
	if aff == nil {
		return l
	}
	if v, k, ok := aff.SingleVar(); ok {
		l.Var = v
		l.Offset = -k
		switch {
		case k == 0:
			l.Kind = SubIdentity
		case k < 0:
			l.Kind = SubOffsetBack
		default:
			l.Kind = SubOffsetFwd
		}
		return l
	}
	if aff.IsConst() {
		l.Kind = SubConst
		// Recognize the "N" form of virtual-dimension rule 2: the
		// subscript is textually the declared upper bound of this
		// dimension's subrange (e.g. A[maxK] for A: array [1 .. maxK]).
		if pos < len(arr.Dims) {
			if ast.ExprString(sub) == ast.ExprString(arr.Dims[pos].Hi) {
				l.Kind = SubUpperBound
			}
		}
	}
	return l
}

// walk visits an RHS expression, drawing a reference edge for each data
// use. topLevel is true only along the spine where an array-typed value
// aligns positionally with the equation's implicit dimensions.
func (b *edgeBuilder) walk(e ast.Expr, topLevel bool) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Paren:
		b.walk(x.X, topLevel)
	case *ast.Ident:
		b.refIdent(x, topLevel)
	case *ast.Index:
		b.refIndex(x, topLevel)
	case *ast.Field:
		b.walk(x.Base, false)
	case *ast.Unary:
		b.walk(x.X, false)
	case *ast.Binary:
		b.walk(x.X, false)
		b.walk(x.Y, false)
	case *ast.IfExpr:
		b.walk(x.Cond, false)
		// Conditional arms yield the equation's value, so array-typed
		// arms still align with the implicit dimensions.
		b.walk(x.Then, topLevel)
		for _, arm := range x.Elifs {
			b.walk(arm.Cond, false)
			b.walk(arm.Then, topLevel)
		}
		b.walk(x.Else, topLevel)
	case *ast.Call:
		for _, a := range x.Args {
			b.walk(a, false)
		}
	}
}

// walkSubexprs draws edges for scalar data referenced inside subscript
// expressions (index variables draw no edges; they are loop counters).
func (b *edgeBuilder) walkSubexprs(e ast.Expr) {
	ast.Inspect(e, func(x ast.Expr) bool {
		if id, ok := x.(*ast.Ident); ok {
			if b.m.IndexVar(id.Name) == nil {
				b.refIdent(id, false)
			}
		}
		return true
	})
}

// refIdent draws an edge for a whole-variable reference.
func (b *edgeBuilder) refIdent(x *ast.Ident, topLevel bool) {
	if b.m.IndexVar(x.Name) != nil {
		return // index variable, not data
	}
	sym := b.m.Lookup(x.Name)
	if sym == nil || !sym.IsData() {
		return // enum constant or unresolved
	}
	from := b.g.DataNodeOf(sym)
	e := &Edge{From: from, To: b.en, Kind: DataDep, Ref: x}
	if arr, ok := sym.Type.(*types.Array); ok {
		if topLevel && len(b.implicitVars()) == len(arr.Dims) {
			e.Labels = b.classifySubs(arr, nil, b.implicitVars())
		} else {
			e.Labels = b.classifySubs(arr, nil, nil) // opaque: all Other
		}
	}
	b.g.addEdge(e)
}

// refIndex draws an edge for a subscripted reference A[s1,...,sm].
func (b *edgeBuilder) refIndex(x *ast.Index, topLevel bool) {
	base, ok := ast.Unparen(x.Base).(*ast.Ident)
	if !ok {
		// Subscripting a computed value (e.g. a call result): reference
		// edges come from the base's own data uses.
		b.walk(x.Base, false)
		for _, s := range x.Subs {
			b.walkSubexprs(s)
		}
		return
	}
	sym := b.m.Lookup(base.Name)
	if sym == nil || !sym.IsData() {
		return
	}
	arr, isArr := sym.Type.(*types.Array)
	from := b.g.DataNodeOf(sym)
	e := &Edge{From: from, To: b.en, Kind: DataDep, Ref: x}
	if isArr {
		var implicit []*types.Subrange
		if topLevel && len(x.Subs) < len(arr.Dims) &&
			len(b.implicitVars()) == len(arr.Dims)-len(x.Subs) {
			implicit = b.implicitVars()
		}
		e.Labels = b.classifySubs(arr, x.Subs, implicit)
	}
	b.g.addEdge(e)
	for _, s := range x.Subs {
		b.walkSubexprs(s)
	}
}

// implicitVars returns the equation's implicit dimension variables.
func (b *edgeBuilder) implicitVars() []*types.Subrange {
	return b.eq.Dims[b.eq.NumExplicit:]
}
