package interp

// Kernel specialization (the perf core of the §3–§4 reproduction): when
// an equation body is a recognized shape — unit-stride affine reads of
// flat float64/int64 arrays combined with +,−,×,÷, literals, loop
// indices and builtins — the compiler emits a *direct kernel* alongside
// the checked closure tree: a closure over raw backing slices whose
// operand offsets are maintained incrementally along a run of
// consecutive points (strength reduction), with array bounds certified
// once per run so the per-point path is branch-free. Executors hand
// kernels contiguous spans instead of single points; points the
// certification cannot cover (span edges, windowed axes in motion,
// strict mode) fall back to the checked kernel, so specialized and
// generic execution are bitwise identical.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sem"
	"repro/internal/types"
)

// spanFn executes n consecutive points of one equation. The span starts
// at the frame's current coordinates and advances fr[slots[j]] += dir[j]
// between points (a wavefront row moves every original coordinate by a
// T⁻¹ column; a DOALL row moves the innermost dimension by one). The
// frame is restored to the span's first point before returning, so
// multi-equation bodies replay the same run per kernel. en.eqCount is
// incremented per executed point.
type spanFn func(en *env, fr []int64, slots []int, dir []int64, n int64)

// eqSpan pairs one equation's span executor with its specialization
// report (surfaced through Program.Kernels and Runner.Explain).
type eqSpan struct {
	fn          spanFn
	specialized bool
	// why is the reason the equation stayed generic ("" when specialized).
	why string
}

// runSpanGeneric walks a span point-by-point through the checked kernel:
// the fallback for strict mode, non-specializable equations, and the
// uncertified edges of specialized spans.
func runSpanGeneric(gen kernelFn, en *env, fr []int64, slots []int, dir []int64, n int64) {
	for c := int64(0); c < n; c++ {
		en.eqCount++
		gen(en, fr)
		for j, s := range slots {
			fr[s] += dir[j]
		}
	}
	for j, s := range slots {
		fr[s] -= n * dir[j]
	}
}

// genericSpanFn wraps a checked kernel as a span executor.
func genericSpanFn(gen kernelFn) spanFn {
	return func(en *env, fr []int64, slots []int, dir []int64, n int64) {
		runSpanGeneric(gen, en, fr, slots, dir, n)
	}
}

// kctx is the runtime state of one specialized span: raw backing slices
// and current flat offsets per access, plus scalars hoisted once at span
// entry. Specialized evaluators close over access indices into these
// tables, so the per-point path is slice reads and arithmetic only.
type kctx struct {
	en    *env
	fr    []int64
	offs  []int64     // current flat offset per access
	slope []int64     // per-point offset increment per access
	fs    [][]float64 // float64 backing per access (nil for int-backed)
	is    [][]int64   // int64 backing per access
	sf    []float64   // hoisted real scalars
	sn    []int64     // hoisted integer scalars
	sb    []bool      // hoisted bool scalars
}

// Specialized evaluators: the direct-kernel mirror of evalF/evalI/evalB.
type (
	kevF func(k *kctx) float64
	kevI func(k *kctx) int64
	kevB func(k *kctx) bool
)

// specAbort is the bail panic of the specializing compiler: the
// equation shape is outside the recognized fragment, so the checked
// closure tree remains the only kernel.
type specAbort struct{ reason string }

// specSub is one dimension of a specialized array access.
type specSub struct {
	// base evaluates the subscript at the span's first point (the
	// checked compiler's own evaluator, run once per span).
	base evalI
	// dimVar is the frame slot of the subscript's unit-coefficient
	// index variable, or -1 for a constant subscript. Eligibility
	// guarantees the subscript is dimVar + c, so its per-point motion
	// along a span is exactly the slot's direction.
	dimVar int
}

// specAccess is one distinct array reference of a specialized equation.
type specAccess struct {
	si   int // symbol slot
	isF  bool
	subs []specSub
}

// speccer compiles one equation into a specialized kernel, sharing the
// checked compiler's symbol resolution.
type speccer struct {
	c     *compiler
	accs  []*specAccess
	byKey map[string]int
	// Hoisted scalar tables: symbol slot → position in kctx.sf/sn/sb.
	sfIdx, snIdx, sbIdx map[int]int
	sfSlots, snSlots    []int
	sbSlots             []int
}

func (s *speccer) bail(format string, args ...any) {
	panic(specAbort{reason: fmt.Sprintf(format, args...)})
}

// access registers an array reference (explicit subscripts plus
// implicit trailing alignment) and returns its index in the access
// tables. Identical references share one table slot, which is safe even
// across the write target: offsets are positions, not values.
func (s *speccer) access(sym *sem.Symbol, explicit []ast.Expr, nImplicit int) int {
	arr, isArr := sym.Type.(*types.Array)
	if !isArr {
		s.bail("%s is not an array", sym.Name)
	}
	var isF bool
	switch arr.Elem.Kind() {
	case types.RealKind:
		isF = true
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		isF = false
	default:
		s.bail("array %s has %s elements", sym.Name, arr.Elem)
	}
	if len(explicit)+nImplicit != len(arr.Dims) {
		s.bail("reference to %s covers %d of %d dimensions", sym.Name, len(explicit)+nImplicit, len(arr.Dims))
	}
	var imp []int
	if nImplicit > 0 {
		imp = s.c.implicitSlots(nImplicit)
	}
	key := fmt.Sprintf("%d", s.c.cm.symIdx[sym])
	for _, e := range explicit {
		key += "|" + ast.ExprString(e)
	}
	for _, slot := range imp {
		key += fmt.Sprintf("|@%d", slot)
	}
	if ai, ok := s.byKey[key]; ok {
		return ai
	}
	ac := &specAccess{si: s.c.cm.symIdx[sym], isF: isF}
	for _, e := range explicit {
		ac.subs = append(ac.subs, s.subscript(e))
	}
	for _, slot := range imp {
		sl := slot
		ac.subs = append(ac.subs, specSub{
			base:   func(en *env, fr []int64) int64 { return fr[sl] },
			dimVar: sl,
		})
	}
	ai := len(s.accs)
	s.accs = append(s.accs, ac)
	s.byKey[key] = ai
	return ai
}

// subscript classifies one explicit subscript: constant (possibly
// symbolic in module scalars) or index variable + literal constant with
// coefficient exactly 1. Anything else — negated or scaled variables
// (reflect's N+1-J), multi-variable sums — bails, keeping the checked
// kernel.
func (s *speccer) subscript(e ast.Expr) specSub {
	af := s.c.m.AnalyzeAffine(e)
	if af == nil {
		s.bail("non-affine subscript %s", ast.ExprString(e))
	}
	nz := 0
	var v *types.Subrange
	var coef int64
	for vv, cc := range af.Coeffs {
		if cc != 0 {
			nz++
			v, coef = vv, cc
		}
	}
	sub := specSub{base: s.c.compileI(e), dimVar: -1}
	switch {
	case nz == 0:
		// constant subscript; base evaluates it (symbolic terms included).
	case nz == 1 && coef == 1:
		slot, ok := s.c.cm.slotOf[v]
		if !ok {
			s.bail("no frame slot for subscript variable in %s", ast.ExprString(e))
		}
		sub.dimVar = slot
	default:
		s.bail("subscript %s is not unit-stride", ast.ExprString(e))
	}
	return sub
}

// elemF reads access ai as float64 through the certified offset.
func elemF(ai int) kevF { return func(k *kctx) float64 { return k.fs[ai][k.offs[ai]] } }

// elemI reads access ai as int64 through the certified offset.
func elemI(ai int) kevI { return func(k *kctx) int64 { return k.is[ai][k.offs[ai]] } }

// hoistF interns a real scalar slot, returning its kctx.sf position.
func (s *speccer) hoistF(si int) int {
	if i, ok := s.sfIdx[si]; ok {
		return i
	}
	i := len(s.sfSlots)
	s.sfIdx[si] = i
	s.sfSlots = append(s.sfSlots, si)
	return i
}

func (s *speccer) hoistI(si int) int {
	if i, ok := s.snIdx[si]; ok {
		return i
	}
	i := len(s.snSlots)
	s.snIdx[si] = i
	s.snSlots = append(s.snSlots, si)
	return i
}

func (s *speccer) hoistB(si int) int {
	if i, ok := s.sbIdx[si]; ok {
		return i
	}
	i := len(s.sbSlots)
	s.sbIdx[si] = i
	s.sbSlots = append(s.sbSlots, si)
	return i
}

// --- the specializing expression compiler -----------------------------------
//
// Each kcompile* mirrors its compile* counterpart operator-for-operator
// (same widening, same short-circuit order, same division-by-zero
// panics), differing only in operand addressing: array elements read
// through certified incremental offsets, scalars through span-entry
// hoists. Shapes outside the fragment bail to the checked kernel.

func (s *speccer) kcompileF(e ast.Expr) kevF {
	c := s.c
	t := c.typeOf(e)
	if types.IsInteger(t) || t.Kind() == types.CharKind || t.Kind() == types.EnumKind {
		f := s.kcompileI(e)
		return func(k *kctx) float64 { return float64(f(k)) }
	}
	if t.Kind() == types.ArrayKind {
		return s.kelemAccessF(e)
	}
	if t.Kind() != types.RealKind {
		s.bail("expression %s has type %s, want real", ast.ExprString(e), t)
	}
	switch x := e.(type) {
	case *ast.RealLit:
		v := x.Value
		return func(*kctx) float64 { return v }
	case *ast.Paren:
		return s.kcompileF(x.X)
	case *ast.Ident:
		hi := s.hoistF(c.scalarSlot(x.Name))
		return func(k *kctx) float64 { return k.sf[hi] }
	case *ast.Unary:
		f := s.kcompileF(x.X)
		if x.Op.String() == "-" {
			return func(k *kctx) float64 { return -f(k) }
		}
		return f
	case *ast.Binary:
		l, r := s.kcompileF(x.X), s.kcompileF(x.Y)
		switch x.Op.String() {
		case "+":
			return func(k *kctx) float64 { return l(k) + r(k) }
		case "-":
			return func(k *kctx) float64 { return l(k) - r(k) }
		case "*":
			return func(k *kctx) float64 { return l(k) * r(k) }
		case "/":
			return func(k *kctx) float64 { return l(k) / r(k) }
		}
		s.bail("invalid real operator %s", x.Op)
	case *ast.IfExpr:
		conds, thens := s.kcompileConds(x)
		thenF := make([]kevF, len(thens))
		for i, a := range thens {
			thenF[i] = s.kcompileF(a)
		}
		elseF := s.kcompileF(x.Else)
		return func(k *kctx) float64 {
			for i, cond := range conds {
				if cond(k) {
					return thenF[i](k)
				}
			}
			return elseF(k)
		}
	case *ast.Index:
		return s.kelemAccessF(x)
	case *ast.Call:
		return s.kcompileCallF(x)
	}
	s.bail("cannot specialize real expression %s", ast.ExprString(e))
	return nil
}

// kelemAccessF compiles an array reference in real element context.
func (s *speccer) kelemAccessF(e ast.Expr) kevF {
	sym, explicit, nImp := s.resolveRef(e)
	ai := s.access(sym, explicit, nImp)
	if !s.accs[ai].isF {
		f := elemI(ai)
		return func(k *kctx) float64 { return float64(f(k)) }
	}
	return elemF(ai)
}

// kelemAccessI compiles an array reference in integer element context.
func (s *speccer) kelemAccessI(e ast.Expr) kevI {
	sym, explicit, nImp := s.resolveRef(e)
	ai := s.access(sym, explicit, nImp)
	if s.accs[ai].isF {
		s.bail("real array %s read in integer context", sym.Name)
	}
	return elemI(ai)
}

// resolveRef decomposes an array-valued expression into its base symbol,
// explicit subscripts, and implicit trailing dimension count.
func (s *speccer) resolveRef(e ast.Expr) (*sem.Symbol, []ast.Expr, int) {
	c := s.c
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sym := c.m.Lookup(x.Name)
		if sym == nil || !sym.IsData() {
			s.bail("unknown array %s", x.Name)
		}
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			s.bail("%s is not an array", x.Name)
		}
		return sym, nil, len(arr.Dims)
	case *ast.Index:
		base, ok := ast.Unparen(x.Base).(*ast.Ident)
		if !ok {
			s.bail("subscripted value %s is not a named array", ast.ExprString(x.Base))
		}
		sym := c.m.Lookup(base.Name)
		if sym == nil || !sym.IsData() {
			s.bail("unknown array %s", base.Name)
		}
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			s.bail("%s is not an array", base.Name)
		}
		return sym, x.Subs, len(arr.Dims) - len(x.Subs)
	}
	s.bail("array-valued expression %s cannot be read element-wise", ast.ExprString(e))
	return nil, nil, 0
}

func (s *speccer) kcompileI(e ast.Expr) kevI {
	c := s.c
	if t := c.m.TypeOf(e); t != nil && t.Kind() == types.ArrayKind {
		return s.kelemAccessI(e)
	}
	switch x := e.(type) {
	case *ast.IntLit:
		v := x.Value
		return func(*kctx) int64 { return v }
	case *ast.CharLit:
		v := int64(x.Value)
		return func(*kctx) int64 { return v }
	case *ast.Paren:
		return s.kcompileI(x.X)
	case *ast.Ident:
		if iv := c.m.IndexVar(x.Name); iv != nil {
			slot, ok := c.cm.slotOf[iv]
			if !ok {
				s.bail("no frame slot for index %s", x.Name)
			}
			return func(k *kctx) int64 { return k.fr[slot] }
		}
		if sym := c.m.Lookup(x.Name); sym != nil && sym.Kind == sem.EnumConstSym {
			v := int64(sym.Index)
			return func(*kctx) int64 { return v }
		}
		hi := s.hoistI(c.scalarSlot(x.Name))
		return func(k *kctx) int64 { return k.sn[hi] }
	case *ast.Unary:
		f := s.kcompileI(x.X)
		if x.Op.String() == "-" {
			return func(k *kctx) int64 { return -f(k) }
		}
		return f
	case *ast.Binary:
		l, r := s.kcompileI(x.X), s.kcompileI(x.Y)
		switch x.Op.String() {
		case "+":
			return func(k *kctx) int64 { return l(k) + r(k) }
		case "-":
			return func(k *kctx) int64 { return l(k) - r(k) }
		case "*":
			return func(k *kctx) int64 { return l(k) * r(k) }
		case "div":
			return func(k *kctx) int64 {
				d := r(k)
				if d == 0 {
					panic(runtimeError{err: fmt.Errorf("division by zero")})
				}
				return l(k) / d
			}
		case "mod":
			return func(k *kctx) int64 {
				d := r(k)
				if d == 0 {
					panic(runtimeError{err: fmt.Errorf("division by zero")})
				}
				return l(k) % d
			}
		}
		s.bail("invalid integer operator %s", x.Op)
	case *ast.IfExpr:
		conds, thens := s.kcompileConds(x)
		thenF := make([]kevI, len(thens))
		for i, a := range thens {
			thenF[i] = s.kcompileI(a)
		}
		elseF := s.kcompileI(x.Else)
		return func(k *kctx) int64 {
			for i, cond := range conds {
				if cond(k) {
					return thenF[i](k)
				}
			}
			return elseF(k)
		}
	case *ast.Index:
		return s.kelemAccessI(x)
	case *ast.Call:
		return s.kcompileCallI(x)
	}
	s.bail("cannot specialize integer expression %s", ast.ExprString(e))
	return nil
}

func (s *speccer) kcompileB(e ast.Expr) kevB {
	c := s.c
	if t := c.m.TypeOf(e); t != nil && t.Kind() == types.ArrayKind {
		s.bail("array %s read in boolean context", ast.ExprString(e))
	}
	switch x := e.(type) {
	case *ast.BoolLit:
		v := x.Value
		return func(*kctx) bool { return v }
	case *ast.Paren:
		return s.kcompileB(x.X)
	case *ast.Ident:
		hi := s.hoistB(c.scalarSlot(x.Name))
		return func(k *kctx) bool { return k.sb[hi] }
	case *ast.Unary:
		f := s.kcompileB(x.X)
		return func(k *kctx) bool { return !f(k) }
	case *ast.Binary:
		return s.kcompileBinaryB(x)
	case *ast.IfExpr:
		conds, thens := s.kcompileConds(x)
		thenF := make([]kevB, len(thens))
		for i, a := range thens {
			thenF[i] = s.kcompileB(a)
		}
		elseF := s.kcompileB(x.Else)
		return func(k *kctx) bool {
			for i, cond := range conds {
				if cond(k) {
					return thenF[i](k)
				}
			}
			return elseF(k)
		}
	}
	s.bail("cannot specialize boolean expression %s", ast.ExprString(e))
	return nil
}

func (s *speccer) kcompileBinaryB(x *ast.Binary) kevB {
	c := s.c
	op := x.Op.String()
	switch op {
	case "and":
		l, r := s.kcompileB(x.X), s.kcompileB(x.Y)
		return func(k *kctx) bool { return l(k) && r(k) }
	case "or":
		l, r := s.kcompileB(x.X), s.kcompileB(x.Y)
		return func(k *kctx) bool { return l(k) || r(k) }
	}
	lt := c.typeOf(x.X)
	rt := c.typeOf(x.Y)
	switch {
	case lt.Kind() == types.RealKind || rt.Kind() == types.RealKind:
		l, r := s.kcompileF(x.X), s.kcompileF(x.Y)
		switch op {
		case "=":
			return func(k *kctx) bool { return l(k) == r(k) }
		case "<>":
			return func(k *kctx) bool { return l(k) != r(k) }
		case "<":
			return func(k *kctx) bool { return l(k) < r(k) }
		case "<=":
			return func(k *kctx) bool { return l(k) <= r(k) }
		case ">":
			return func(k *kctx) bool { return l(k) > r(k) }
		case ">=":
			return func(k *kctx) bool { return l(k) >= r(k) }
		}
	case types.IsInteger(lt) || lt.Kind() == types.CharKind || lt.Kind() == types.EnumKind:
		l, r := s.kcompileI(x.X), s.kcompileI(x.Y)
		switch op {
		case "=":
			return func(k *kctx) bool { return l(k) == r(k) }
		case "<>":
			return func(k *kctx) bool { return l(k) != r(k) }
		case "<":
			return func(k *kctx) bool { return l(k) < r(k) }
		case "<=":
			return func(k *kctx) bool { return l(k) <= r(k) }
		case ">":
			return func(k *kctx) bool { return l(k) > r(k) }
		case ">=":
			return func(k *kctx) bool { return l(k) >= r(k) }
		}
	case lt.Kind() == types.BoolKind:
		l, r := s.kcompileB(x.X), s.kcompileB(x.Y)
		switch op {
		case "=":
			return func(k *kctx) bool { return l(k) == r(k) }
		case "<>":
			return func(k *kctx) bool { return l(k) != r(k) }
		}
	}
	s.bail("cannot specialize comparison %s", ast.ExprString(x))
	return nil
}

func (s *speccer) kcompileConds(x *ast.IfExpr) ([]kevB, []ast.Expr) {
	conds := []kevB{s.kcompileB(x.Cond)}
	thens := []ast.Expr{x.Then}
	for _, e := range x.Elifs {
		conds = append(conds, s.kcompileB(e.Cond))
		thens = append(thens, e.Then)
	}
	return conds, thens
}

func (s *speccer) kcompileCallF(x *ast.Call) kevF {
	name := strings.ToLower(x.Fun.Name)
	switch name {
	case "sqrt", "sin", "cos", "exp", "ln":
		f := s.kcompileF(x.Args[0])
		var fn func(float64) float64
		switch name {
		case "sqrt":
			fn = math.Sqrt
		case "sin":
			fn = math.Sin
		case "cos":
			fn = math.Cos
		case "exp":
			fn = math.Exp
		case "ln":
			fn = math.Log
		}
		return func(k *kctx) float64 { return fn(f(k)) }
	case "pow":
		l, r := s.kcompileF(x.Args[0]), s.kcompileF(x.Args[1])
		return func(k *kctx) float64 { return math.Pow(l(k), r(k)) }
	case "abs":
		f := s.kcompileF(x.Args[0])
		return func(k *kctx) float64 { return math.Abs(f(k)) }
	case "min":
		l, r := s.kcompileF(x.Args[0]), s.kcompileF(x.Args[1])
		return func(k *kctx) float64 { return math.Min(l(k), r(k)) }
	case "max":
		l, r := s.kcompileF(x.Args[0]), s.kcompileF(x.Args[1])
		return func(k *kctx) float64 { return math.Max(l(k), r(k)) }
	case "float":
		f := s.kcompileI(x.Args[0])
		return func(k *kctx) float64 { return float64(f(k)) }
	}
	s.bail("call %s is not a specializable builtin", x.Fun.Name)
	return nil
}

func (s *speccer) kcompileCallI(x *ast.Call) kevI {
	name := strings.ToLower(x.Fun.Name)
	switch name {
	case "abs":
		f := s.kcompileI(x.Args[0])
		return func(k *kctx) int64 {
			v := f(k)
			if v < 0 {
				return -v
			}
			return v
		}
	case "min":
		l, r := s.kcompileI(x.Args[0]), s.kcompileI(x.Args[1])
		return func(k *kctx) int64 {
			a, b := l(k), r(k)
			if a < b {
				return a
			}
			return b
		}
	case "max":
		l, r := s.kcompileI(x.Args[0]), s.kcompileI(x.Args[1])
		return func(k *kctx) int64 {
			a, b := l(k), r(k)
			if a > b {
				return a
			}
			return b
		}
	case "trunc":
		f := s.kcompileF(x.Args[0])
		return func(k *kctx) int64 { return int64(math.Trunc(f(k))) }
	case "round":
		f := s.kcompileF(x.Args[0])
		return func(k *kctx) int64 { return int64(math.Round(f(k))) }
	case "ord":
		return s.kcompileI(x.Args[0])
	}
	s.bail("call %s is not a specializable builtin", x.Fun.Name)
	return nil
}

// --- building the specialized span -------------------------------------------

// specializeEquation compiles eq's span executor: the specialized
// direct kernel when the body fits the recognized fragment, the checked
// kernel gen otherwise. The caller must have c.eq set.
func (c *compiler) specializeEquation(eq *sem.Equation, gen kernelFn) (sp eqSpan) {
	sp = eqSpan{fn: genericSpanFn(gen)}
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case specAbort:
				sp = eqSpan{fn: genericSpanFn(gen), why: e.reason}
			case compileError:
				sp = eqSpan{fn: genericSpanFn(gen), why: e.err.Error()}
			default:
				panic(r)
			}
		}
	}()
	if eq.MultiCall != nil || eq.WholeCall != nil {
		sp.why = "module call"
		return sp
	}
	target := eq.Targets[0]
	if target.Rank() == 0 {
		sp.why = "scalar target"
		return sp
	}
	s := &speccer{
		c:     c,
		byKey: make(map[string]int),
		sfIdx: make(map[int]int),
		snIdx: make(map[int]int),
		sbIdx: make(map[int]int),
	}
	// The write target is access 0 unless a read deduplicates onto it;
	// either way tai addresses the stored element.
	tai := s.access(target.Sym, target.Subs, len(target.Implicit))
	var store func(k *kctx)
	switch target.Sym.Type.(*types.Array).Elem.Kind() {
	case types.RealKind:
		rhs := s.kcompileF(eq.RHS)
		ti := tai
		store = func(k *kctx) { k.fs[ti][k.offs[ti]] = rhs(k) }
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		rhs := s.kcompileI(eq.RHS)
		ti := tai
		store = func(k *kctx) { k.is[ti][k.offs[ti]] = rhs(k) }
	default:
		sp.why = fmt.Sprintf("target %s has %s elements", target.Sym.Name, target.Sym.Type.(*types.Array).Elem)
		return sp
	}

	accs := s.accs
	sfSlots, snSlots, sbSlots := s.sfSlots, s.snSlots, s.sbSlots
	nacc := len(accs)
	pool := &sync.Pool{New: func() any {
		return &kctx{
			offs:  make([]int64, nacc),
			slope: make([]int64, nacc),
			fs:    make([][]float64, nacc),
			is:    make([][]int64, nacc),
			sf:    make([]float64, len(sfSlots)),
			sn:    make([]int64, len(snSlots)),
			sb:    make([]bool, len(sbSlots)),
		}
	}}

	sp.specialized = true
	eqIdx := int64(eq.Index)
	sp.fn = func(en *env, fr []int64, slots []int, dir []int64, n int64) {
		if n <= 0 {
			return
		}
		if en.strict || en.noSpec {
			runSpanGeneric(gen, en, fr, slots, dir, n)
			return
		}
		k := pool.Get().(*kctx)
		k.en, k.fr = en, fr
		// Certify the span: resolve each access's backing, entry offset
		// and per-point slope, and intersect the sub-interval [cLo,cHi]
		// of points where every access is provably in bounds. Offsets
		// are meaningful inside the certified interval only.
		cLo, cHi := int64(0), n-1
		ok := true
	setup:
		for ai, ac := range accs {
			a := en.arrays[ac.si]
			if ac.isF {
				k.fs[ai] = a.F
			} else {
				k.is[ai] = a.I
			}
			var off, slope int64
			for d, sb := range ac.subs {
				x0 := sb.base(en, fr)
				ax := a.Axes[d]
				var sl int64
				if sb.dimVar >= 0 {
					for j, sv := range slots {
						if sv == sb.dimVar {
							sl = dir[j]
							break
						}
					}
				}
				if sl == 0 {
					// Stationary dimension: one range check covers the
					// span; window wrap folds into the base offset.
					if x0 < ax.Lo || x0 > ax.Hi {
						ok = false
						break setup
					}
					p := x0 - ax.Lo
					if ph := a.PhysDims[d]; p >= ph {
						p %= ph
					}
					off += p * a.Strides[d]
					continue
				}
				if ph := a.PhysDims[d]; ph < ax.Hi-ax.Lo+1 {
					// A windowed axis in motion makes offsets non-affine
					// (mod wrap mid-span); keep the checked kernel.
					ok = false
					break setup
				}
				if sl > 0 {
					if q := ceilDiv(ax.Lo-x0, sl); q > cLo {
						cLo = q
					}
					if q := floorDiv(ax.Hi-x0, sl); q < cHi {
						cHi = q
					}
				} else {
					if q := ceilDiv(x0-ax.Hi, -sl); q > cLo {
						cLo = q
					}
					if q := floorDiv(x0-ax.Lo, -sl); q < cHi {
						cHi = q
					}
				}
				off += (x0 - ax.Lo) * a.Strides[d]
				slope += sl * a.Strides[d]
			}
			k.offs[ai], k.slope[ai] = off, slope
		}
		if !ok || cLo > cHi {
			cLo, cHi = n, n-1 // nothing certified: all points generic
		}
		if cLo < 0 {
			cLo = 0
		}
		if cHi > n-1 {
			cHi = n - 1
		}
		for i, si := range sfSlots {
			k.sf[i] = en.scalars[si].(float64)
		}
		for i, si := range snSlots {
			k.sn[i] = en.scalars[si].(int64)
		}
		for i, si := range sbSlots {
			k.sb[i] = en.scalars[si].(bool)
		}
		// Generic prefix: points before the certified interval.
		if cLo > 0 && en.ring != nil {
			// One instant per fallback segment, not per point: the span's
			// leading points ran the checked kernel instead of the
			// specialized stores.
			en.ring.Emit(obs.KSpecFallback, en.ring.Now(), 0, eqIdx, cLo)
		}
		for p := int64(0); p < cLo; p++ {
			en.eqCount++
			gen(en, fr)
			for j, sv := range slots {
				fr[sv] += dir[j]
			}
		}
		// Certified run: branch-free stores with incremental offsets.
		if cLo <= cHi {
			for ai := range accs {
				k.offs[ai] += k.slope[ai] * cLo
			}
			cnt := cHi - cLo + 1
			en.eqCount += cnt
			en.specCount += cnt
			for p := int64(0); p < cnt; p++ {
				store(k)
				for ai := range accs {
					k.offs[ai] += k.slope[ai]
				}
				for j, sv := range slots {
					fr[sv] += dir[j]
				}
			}
		}
		// Generic suffix: points past the certified interval.
		if cHi+1 < n && en.ring != nil {
			en.ring.Emit(obs.KSpecFallback, en.ring.Now(), 0, eqIdx, n-cHi-1)
		}
		for p := cHi + 1; p < n; p++ {
			en.eqCount++
			gen(en, fr)
			for j, sv := range slots {
				fr[sv] += dir[j]
			}
		}
		for j, sv := range slots {
			fr[sv] -= n * dir[j]
		}
		k.en, k.fr = nil, nil
		pool.Put(k)
	}
	return sp
}

// --- reporting ---------------------------------------------------------------

// KernelSpec describes one equation's kernel-specialization outcome, in
// plan order; Runner.Explain renders it.
type KernelSpec struct {
	Eq          string // equation label
	Target      string // target symbol name(s)
	Specialized bool
	Reason      string // why the equation stayed generic ("" when specialized)
}

// Kernels reports the specialization outcome per equation of the named
// module's selected plan variant.
func (p *Program) Kernels(name string, opts plan.Options) []KernelSpec {
	m := p.Prog.Module(name)
	if m == nil {
		return nil
	}
	cm := p.mods[m]
	if cm == nil {
		return nil
	}
	cp := cm.variant(opts.Fuse, planMode(opts))
	specs := make([]KernelSpec, len(cp.pl.Eqs))
	for i, eq := range cp.pl.Eqs {
		names := make([]string, len(eq.Targets))
		for j, t := range eq.Targets {
			names[j] = t.Sym.Name
		}
		specs[i] = KernelSpec{
			Eq:          eq.Label,
			Target:      strings.Join(names, ", "),
			Specialized: cp.spans[i].specialized,
			Reason:      cp.spans[i].why,
		}
	}
	return specs
}

// --- write-coverage analysis -------------------------------------------------

// writeCovered reports whether the module's equations provably define
// every element of sym before any could be read: the condition under
// which an arena-recycled backing may skip zeroing. The analysis is
// conservative — false means "must zero", never "may skip wrongly".
// Coverage holds when some equation writes the full index space of
// every dimension, or when the equations split exactly one dimension
// into constant slices tiling upward from the dimension's lower bound
// plus a ranged slice covering the rest (the boundary-plus-interior
// shape of relaxation recurrences).
func writeCovered(m *sem.Module, sym *sem.Symbol) bool {
	arr, isArr := sym.Type.(*types.Array)
	if !isArr {
		return true
	}
	nd := len(arr.Dims)
	type dimPiece struct {
		full    bool
		isConst bool
		constV  int64
		ranged  bool
		rangeLo int64
	}
	var rows [][]dimPiece
	for _, eq := range m.Eqs {
		for _, t := range eq.Targets {
			if t.Sym != sym {
				continue
			}
			if eq.WholeCall != nil || eq.MultiCall != nil || len(t.Subs) == 0 {
				// Whole-value assignment covers every element.
				return true
			}
			row := make([]dimPiece, nd)
			for d := 0; d < nd; d++ {
				if d >= len(t.Subs) {
					row[d] = dimPiece{full: true} // implicit: full dimension
					continue
				}
				dim := arr.Dims[d]
				af := m.AnalyzeAffine(t.Subs[d])
				if af == nil {
					continue // unknown piece
				}
				if af.IsConst() && !af.Symbolic {
					row[d] = dimPiece{isConst: true, constV: af.Const}
					continue
				}
				v, cst, ok := af.SingleVar()
				if !ok || cst != 0 {
					continue
				}
				switch {
				case v == dim,
					ast.ExprString(v.Lo) == ast.ExprString(dim.Lo) &&
						ast.ExprString(v.Hi) == ast.ExprString(dim.Hi):
					row[d] = dimPiece{full: true}
				case ast.ExprString(v.Hi) == ast.ExprString(dim.Hi):
					if lo, isLit := sem.EvalConstInt(v.Lo); isLit {
						row[d] = dimPiece{ranged: true, rangeLo: lo}
					}
				}
			}
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return false
	}
	for _, row := range rows {
		full := true
		for d := 0; d < nd; d++ {
			if !row[d].full {
				full = false
				break
			}
		}
		if full {
			return true
		}
	}
	// Single-dimension split: constant slices from the dimension's
	// literal lower bound, then a ranged slice through the upper bound.
	for d := 0; d < nd; d++ {
		dimLo, loLit := sem.EvalConstInt(arr.Dims[d].Lo)
		if !loLit {
			continue
		}
		var consts []int64
		haveRange := false
		rangeLo := int64(0)
		for _, row := range rows {
			fullElse := true
			for e := 0; e < nd; e++ {
				if e != d && !row[e].full {
					fullElse = false
					break
				}
			}
			if !fullElse {
				continue
			}
			switch p := row[d]; {
			case p.isConst:
				consts = append(consts, p.constV)
			case p.ranged:
				if !haveRange || p.rangeLo < rangeLo {
					haveRange, rangeLo = true, p.rangeLo
				}
			}
		}
		if !haveRange {
			continue
		}
		sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
		next := dimLo
		for _, cv := range consts {
			if cv == next {
				next++
			}
		}
		if rangeLo >= dimLo && rangeLo <= next {
			return true
		}
	}
	return false
}
