// Package interp executes scheduled PS modules — the execution
// substrate standing in for the paper's MIMD target. Each module is
// compiled once: equations become typed closure kernels, the core
// schedule is lowered into every variant of the flat loop-plan IR
// (internal/plan), and activations execute plan instructions with
// virtual dimensions allocated as sliding windows.
//
// # Contract
//
// A compiled Program is immutable and safe for concurrent Run/RunCtx
// calls: every activation builds its own environment, and pooled
// per-worker state (env copies and index frames) is reused across DOALL
// chunks without sharing mutable state between concurrent activations.
// Cancellation aborts sequential loops within one iteration and
// in-flight parallel work within one chunk/tile, and Stats counters are
// valid up to the abort.
//
// # Plan-variant matrix
//
// Options select among the four compiled [fuse][hyperplane] plan
// variants at activation time (variants that lower identically share a
// compiled plan); equation kernels are compiled once and shared by all
// of them. Wavefront steps additionally choose an execution strategy
// per activation: the per-plane barrier sweep or the doacross tile
// pipeline (internal/sched), forced by Options.Schedule or chosen
// automatically from the measured kernel cost.
//
// # Bitwise-identical results
//
// Every variant × strategy combination runs the same kernel closures at
// exactly the original iteration points in a dependence-respecting
// order, so results are bitwise identical to the sequential reference:
//
//   - DOALL steps permute independent points only;
//   - wavefront steps execute hyperplanes t = π·x in ascending order
//     with π·d ≥ 1 for every dependence d of the nest's equation group,
//     and each in-box plane point runs the group's kernels in scheduled
//     order, preserving in-plane zero-distance dependences;
//   - both wavefront strategies share one geometry (wfSpace): the same
//     per-plane tightened bounds, the same T⁻¹ preimages, the same
//     guard against bounding-box slack.
//
// The variants parity matrix (variants_test.go at the repo root)
// enforces this across the corpus under -race.
//
// # Calibration
//
// The first activation that times a plane writes the plan's one-shot
// wavefront kernel cost (ns per executed point — for a multi-equation
// group, the combined cost of every kernel the point runs). The
// calibrated cost derives the inline-plane threshold and sharpens the
// auto barrier/doacross decision; until then a fixed default applies.
package interp
