package interp_test

import (
	"math"
	"testing"

	"repro/internal/hyperplane"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/psrc"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// compileSrc builds a runnable program from PS source.
func compileSrc(t testing.TB, src string) *interp.Program {
	t.Helper()
	prog, err := parser.ParseProgram("test.ps", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	ip, err := interp.Compile(cp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return ip
}

// grid builds an (M+2)×(M+2) real array with boundary 0 and interior
// values seeded deterministically.
func grid(m int64) *value.Array {
	a := value.NewArray(types.RealKind, []value.Axis{
		{Lo: 0, Hi: m + 1}, {Lo: 0, Hi: m + 1},
	})
	for i := int64(0); i <= m+1; i++ {
		for j := int64(0); j <= m+1; j++ {
			var v float64
			if i > 0 && i <= m && j > 0 && j <= m {
				v = float64((i*31+j*17)%19) / 19.0
			}
			a.SetF([]int64{i, j}, v)
		}
	}
	return a
}

// jacobiRef computes the relaxation result directly in Go.
func jacobiRef(in *value.Array, m, maxK int64) *value.Array {
	cur := in
	for k := int64(2); k <= maxK; k++ {
		next := value.NewArray(types.RealKind, in.Axes)
		for i := int64(0); i <= m+1; i++ {
			for j := int64(0); j <= m+1; j++ {
				if i == 0 || j == 0 || i == m+1 || j == m+1 {
					next.SetF([]int64{i, j}, cur.GetF([]int64{i, j}))
				} else {
					v := (cur.GetF([]int64{i, j - 1}) + cur.GetF([]int64{i - 1, j}) +
						cur.GetF([]int64{i, j + 1}) + cur.GetF([]int64{i + 1, j})) / 4
					next.SetF([]int64{i, j}, v)
				}
			}
		}
		cur = next
	}
	return cur
}

// gsRef computes the Gauss–Seidel variant (Equation 2) directly in Go.
func gsRef(in *value.Array, m, maxK int64) *value.Array {
	prev := in
	for k := int64(2); k <= maxK; k++ {
		next := value.NewArray(types.RealKind, in.Axes)
		for i := int64(0); i <= m+1; i++ {
			for j := int64(0); j <= m+1; j++ {
				if i == 0 || j == 0 || i == m+1 || j == m+1 {
					next.SetF([]int64{i, j}, prev.GetF([]int64{i, j}))
				} else {
					v := (next.GetF([]int64{i, j - 1}) + next.GetF([]int64{i - 1, j}) +
						prev.GetF([]int64{i, j + 1}) + prev.GetF([]int64{i + 1, j})) / 4
					next.SetF([]int64{i, j}, v)
				}
			}
		}
		prev = next
	}
	return prev
}

func runRelaxation(t testing.TB, ip *interp.Program, in *value.Array, m, maxK int64, opts interp.Options) *value.Array {
	t.Helper()
	res, err := ip.Run("Relaxation", []any{in, m, maxK}, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res[0].(*value.Array)
}

// TestJacobiMatchesReference checks the interpreted Figure 1 module
// against a direct Go implementation, bit for bit.
func TestJacobiMatchesReference(t *testing.T) {
	const m, maxK = 9, 6
	ip := compileSrc(t, psrc.Relaxation)
	in := grid(m)
	got := runRelaxation(t, ip, in, m, maxK, interp.Options{Workers: 1})
	want := jacobiRef(in, m, maxK)
	if !got.Equal(want) {
		t.Errorf("Jacobi result differs from reference (max diff %g)", got.MaxAbsDiff(want))
	}
}

// TestJacobiParallelEqualsSequential checks that DOALL execution is
// bitwise identical to sequential execution.
func TestJacobiParallelEqualsSequential(t *testing.T) {
	const m, maxK = 17, 9
	ip := compileSrc(t, psrc.Relaxation)
	in := grid(m)
	seq := runRelaxation(t, ip, in, m, maxK, interp.Options{Sequential: true})
	for _, workers := range []int{2, 4, 8} {
		par := runRelaxation(t, ip, in, m, maxK, interp.Options{Workers: workers})
		if !seq.Equal(par) {
			t.Errorf("parallel (%d workers) differs from sequential (max diff %g)",
				workers, seq.MaxAbsDiff(par))
		}
	}
}

// TestJacobiWindowEqualsPhysical checks §3.4: executing with the window-2
// virtual dimension produces exactly the full-allocation result.
func TestJacobiWindowEqualsPhysical(t *testing.T) {
	const m, maxK = 13, 8
	ip := compileSrc(t, psrc.Relaxation)
	in := grid(m)
	win := runRelaxation(t, ip, in, m, maxK, interp.Options{Workers: 2})
	phys := runRelaxation(t, ip, in, m, maxK, interp.Options{Workers: 2, NoVirtual: true})
	if !win.Equal(phys) {
		t.Errorf("windowed execution differs from physical (max diff %g)", win.MaxAbsDiff(phys))
	}
}

// TestGaussSeidelMatchesReference checks the Equation 2 module.
func TestGaussSeidelMatchesReference(t *testing.T) {
	const m, maxK = 9, 6
	ip := compileSrc(t, psrc.RelaxationGS)
	in := grid(m)
	got := runRelaxation(t, ip, in, m, maxK, interp.Options{Workers: 1})
	want := gsRef(in, m, maxK)
	if !got.Equal(want) {
		t.Errorf("Gauss–Seidel result differs from reference (max diff %g)", got.MaxAbsDiff(want))
	}
}

// TestTransformedEqualsOriginal is the §4 end-to-end check: the
// hyperplane-transformed module, executed with its DO/DOALL wavefront
// schedule, computes exactly the same result as the original all-DO
// Gauss–Seidel module.
func TestTransformedEqualsOriginal(t *testing.T) {
	const m, maxK = 11, 7
	prog, err := parser.ParseProgram("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod := cp.Modules[0]
	var eq3 *sem.Equation
	for _, e := range mod.Eqs {
		if e.Label == "eq.3" {
			eq3 = e
		}
	}
	an, err := hyperplane.Analyze(mod, eq3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyperplane.Transform(an)
	if err != nil {
		t.Fatal(err)
	}

	orig := compileSrc(t, psrc.RelaxationGS)
	xform := compileSrc(t, res.Source)

	in := grid(m)
	want := runRelaxation(t, orig, in, m, maxK, interp.Options{Sequential: true})
	got, err := xform.Run("RelaxationH", []any{in, int64(m), int64(maxK)}, interp.Options{Workers: 4})
	if err != nil {
		t.Fatalf("run transformed: %v", err)
	}
	if !got[0].(*value.Array).Equal(want) {
		t.Errorf("transformed result differs from original (max diff %g)",
			got[0].(*value.Array).MaxAbsDiff(want))
	}
}

// TestStrictDetectsDoubleDefinition checks that strict mode catches
// single-assignment violations.
func TestStrictDetectsDoubleDefinition(t *testing.T) {
	src := `
Dup: module (N: int): [R: array [I] of real];
type I = 1 .. N; I0 = 1 .. N;
define
    R[I] = 1.0;
    R[I0] = 2.0;
end Dup;
`
	ip := compileSrc(t, src)
	_, err := ip.Run("Dup", []any{4}, interp.Options{Strict: true, Workers: 1})
	if err == nil {
		t.Error("expected strict mode to detect a double definition")
	}
}

// TestSubscriptRangeError checks runtime bounds diagnostics.
func TestSubscriptRangeError(t *testing.T) {
	src := `
Oob: module (N: int): [R: array [I] of real];
type I = 1 .. N;
var B: array [1 .. N] of real;
define
    B[I] = float(I);
    R[I] = B[I+1];
end Oob;
`
	ip := compileSrc(t, src)
	_, err := ip.Run("Oob", []any{4}, interp.Options{Workers: 1})
	if err == nil {
		t.Error("expected out-of-range subscript error")
	}
}

// TestSmallModules runs the auxiliary workloads and checks their values.
func TestSmallModules(t *testing.T) {
	t.Run("Prefix", func(t *testing.T) {
		ip := compileSrc(t, psrc.Prefix)
		xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: 5}})
		for i := int64(1); i <= 5; i++ {
			xs.SetF([]int64{i}, float64(i))
		}
		res, err := ip.Run("Prefix", []any{xs, 5}, interp.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		s := res[0].(*value.Array)
		want := []float64{1, 3, 6, 10, 15}
		for i := int64(1); i <= 5; i++ {
			if got := s.GetF([]int64{i}); got != want[i-1] {
				t.Errorf("S[%d] = %g, want %g", i, got, want[i-1])
			}
		}
	})

	t.Run("Smooth", func(t *testing.T) {
		ip := compileSrc(t, psrc.Smooth)
		n := int64(6)
		xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n + 1}})
		for i := int64(0); i <= n+1; i++ {
			xs.SetF([]int64{i}, float64(i*i))
		}
		res, err := ip.Run("Smooth", []any{xs, n}, interp.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ys := res[0].(*value.Array)
		for i := int64(1); i <= n; i++ {
			want := (xs.GetF([]int64{i - 1}) + xs.GetF([]int64{i}) + xs.GetF([]int64{i + 1})) / 3
			if got := ys.GetF([]int64{i}); math.Abs(got-want) > 1e-15 {
				t.Errorf("Ys[%d] = %g, want %g", i, got, want)
			}
		}
		if ys.GetF([]int64{0}) != 0 || ys.GetF([]int64{n + 1}) != float64((n+1)*(n+1)) {
			t.Error("boundary values not carried over")
		}
	})

	t.Run("Pipeline", func(t *testing.T) {
		ip := compileSrc(t, psrc.Pipeline)
		n := int64(6)
		xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n + 1}})
		for i := int64(0); i <= n+1; i++ {
			xs.SetF([]int64{i}, float64(i))
		}
		res, err := ip.Run("Pipeline", []any{xs, n}, interp.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		zs := res[0].(*value.Array)
		// Smoothing a linear ramp twice leaves the interior unchanged.
		for i := int64(2); i < n; i++ {
			if got := zs.GetF([]int64{i}); math.Abs(got-float64(i)) > 1e-12 {
				t.Errorf("Zs[%d] = %g, want %g", i, got, float64(i))
			}
		}
	})

	t.Run("Wavefront2D", func(t *testing.T) {
		ip := compileSrc(t, psrc.Wavefront2D)
		n := int64(5)
		seed := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n + 1}, {Lo: 0, Hi: n + 1}})
		for i := int64(0); i <= n+1; i++ {
			seed.SetF([]int64{i, 0}, 1)
			seed.SetF([]int64{0, i}, 1)
		}
		res, err := ip.Run("Wavefront2D", []any{seed, n}, interp.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := res[0].(*value.Array)
		// W[i,j] = (W[i-1,j]+W[i,j-1])/2 from all-ones boundary stays 1.
		for i := int64(0); i <= n+1; i++ {
			for j := int64(0); j <= n+1; j++ {
				if got := out.GetF([]int64{i, j}); got != 1 {
					t.Errorf("Out[%d,%d] = %g, want 1", i, j, got)
					return
				}
			}
		}
	})
}

// TestHeat1DConservation checks that the explicit heat step preserves a
// constant field.
func TestHeat1DConservation(t *testing.T) {
	ip := compileSrc(t, psrc.Heat1D)
	n := int64(16)
	u0 := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n + 1}})
	u0.Fill(3.5)
	res, err := ip.Run("Heat1D", []any{u0, n, 10, 0.25}, interp.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := res[0].(*value.Array)
	for i := int64(0); i <= n+1; i++ {
		if got := u.GetF([]int64{i}); math.Abs(got-3.5) > 1e-12 {
			t.Errorf("U[%d] = %g, want 3.5", i, got)
		}
	}
}
