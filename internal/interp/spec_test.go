package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/types"
	"repro/internal/value"
)

// reflectedRead is a recurrence whose group reference reads a
// reflected column: the subscript N + 1 - J has coefficient -1, so the
// specializer must keep the generic checked kernel for it.
const reflectedRead = `
Mirror: module (Seed: array[I,J] of real; N: int): [Out: array[I,J] of real];
type
    I, J = 1 .. N;
var
    X: array [1 .. N, 1 .. N] of real;
define
    (*eq.1*) X[I,J] = if I = 1 then Seed[I,J]
             else X[I-1, N+1-J] + Seed[I,J];
    (*eq.2*) Out[I,J] = X[I,J];
end Mirror;
`

// TestKernelEligibility pins which corpus equations compile to a
// specialized kernel and why the negatives stay generic. The positive
// set is deliberately broad — every wavefront corpus equation must
// specialize, and so do degenerate single-point spans like Prefix's
// P[1] — while the pinned negatives cover the bail-outs: module calls
// and non-unit-stride subscripts.
func TestKernelEligibility(t *testing.T) {
	cases := []struct {
		name, src, module string
		want              map[string]bool // equation label -> specialized
		reasons           map[string]string
	}{
		{"RelaxationGS", psrc.RelaxationGS, "Relaxation",
			map[string]bool{"eq.1": true, "eq.2": true, "eq.3": true}, nil},
		{"Wavefront2D", psrc.Wavefront2D, "Wavefront2D",
			map[string]bool{"eq.1": true, "eq.2": true}, nil},
		{"Heat1D", psrc.Heat1D, "Heat1D",
			map[string]bool{"eq.1": true, "eq.2": true, "eq.3": true}, nil},
		{"CoupledGrid", psrc.CoupledGrid, "CoupledGrid",
			map[string]bool{"eq.1": true, "eq.2": true, "eq.3": true}, nil},
		{"Prefix", psrc.Prefix, "Prefix",
			map[string]bool{"eq.1": true, "eq.2": true, "eq.3": true}, nil},
		{"Pipeline", psrc.Pipeline, "Pipeline",
			map[string]bool{"eq.1": false, "eq.2": false},
			map[string]string{"eq.1": "module call"}},
		{"Mirror", reflectedRead, "Mirror",
			map[string]bool{"eq.1": false, "eq.2": true},
			map[string]string{"eq.1": "subscript N + 1 - J is not unit-stride"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ip := compileSrc(t, tc.src)
			got := map[string]bool{}
			reasons := map[string]string{}
			for _, ks := range ip.Kernels(tc.module, plan.Options{Hyperplane: true}) {
				got[ks.Eq] = ks.Specialized
				reasons[ks.Eq] = ks.Reason
			}
			for eq, want := range tc.want {
				if got[eq] != want {
					t.Errorf("%s specialized=%v (reason %q), want %v", eq, got[eq], reasons[eq], want)
				}
			}
			for eq, want := range tc.reasons {
				if reasons[eq] != want {
					t.Errorf("%s reason = %q, want %q", eq, reasons[eq], want)
				}
			}
		})
	}
}

// TestSpanDispatchParity runs the wavefront corpus programs with the
// specialized kernels enabled and disabled across every executor path —
// sequential leaf spans, barrier plane sweeps, doacross tiles — and
// demands bitwise-identical results, plus honest Specialized counters:
// positive by default, zero under NoSpecialize and Strict (the
// certified fast path must never claim checked points).
func TestSpanDispatchParity(t *testing.T) {
	ip := compileSrc(t, psrc.RelaxationGS)
	const m, maxK = 11, 6
	want := runGS(t, ip, m, maxK, interp.Options{Sequential: true, NoSpecialize: true, NoArena: true})
	for _, tc := range []struct {
		name        string
		opts        interp.Options
		specialized bool
	}{
		{"Seq", interp.Options{Sequential: true}, true},
		{"SeqNoArena", interp.Options{Sequential: true, NoArena: true}, true},
		{"SeqNoSpec", interp.Options{Sequential: true, NoSpecialize: true}, false},
		{"Par2", interp.Options{Workers: 2}, true},
		{"Par4NoSpec", interp.Options{Workers: 4, NoSpecialize: true}, false},
		{"Par4", interp.Options{Workers: 4}, true},
		{"StrictSeq", interp.Options{Sequential: true, Strict: true}, false},
		{"StrictPar2", interp.Options{Workers: 2, Strict: true}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var st interp.Stats
			opts := tc.opts
			opts.Stats = &st
			got := runGS(t, ip, m, maxK, opts)
			if !got.Equal(want) {
				t.Error("result diverges from the generic sequential reference")
			}
			spec := st.Specialized.Load()
			if tc.specialized && spec == 0 {
				t.Error("specialized kernels did not execute")
			}
			if !tc.specialized && spec != 0 {
				t.Errorf("Specialized = %d on a generic-only run", spec)
			}
			if eq := st.EqInstances.Load(); spec > eq {
				t.Errorf("Specialized (%d) exceeds EqInstances (%d)", spec, eq)
			}
		})
	}
}

// TestSpanParityRepeated re-runs one compiled program many times with
// the arena enabled, interleaving parallel and sequential activations:
// recycled backings must never leak one run's values into the next
// (the write-coverage zeroing decision is what is under test).
func TestSpanParityRepeated(t *testing.T) {
	ip := compileSrc(t, psrc.Wavefront2D)
	const n = 9
	ref, err := ip.Run("Wavefront2D", []any{grid(n), int64(n)}, interp.Options{Sequential: true, NoArena: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref[0].(*value.Array)
	for rep := 0; rep < 6; rep++ {
		opts := interp.Options{Sequential: rep%2 == 0}
		if !opts.Sequential {
			opts.Workers = 2 + rep%3
		}
		res, err := ip.Run("Wavefront2D", []any{grid(n), int64(n)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := res[0].(*value.Array); !got.Equal(want) {
			t.Fatalf("rep %d diverges under arena reuse", rep)
		}
	}
}

// BenchmarkKernelDispatch measures the per-point cost of the generic
// checked closure tree against the specialized span kernel on the
// 3-point stencil (psrc.Smooth), the smallest body where addressing
// overhead dominates.
func BenchmarkKernelDispatch(b *testing.B) {
	ip := compileSrc(b, psrc.Smooth)
	const n = 4096
	xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n + 1}})
	for i := int64(0); i <= n+1; i++ {
		xs.SetF([]int64{i}, float64((i*13+5)%23)/7.0)
	}
	args := []any{xs, int64(n)}
	for _, tc := range []struct {
		name string
		opts interp.Options
	}{
		{"Specialized", interp.Options{Sequential: true}},
		{"Generic", interp.Options{Sequential: true, NoSpecialize: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Run("Smooth", args, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
