package interp_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/types"
	"repro/internal/value"
)

// TestScalarEquations covers modules computing only scalars.
func TestScalarEquations(t *testing.T) {
	src := `
Scalars: module (x: real; n: int): [y: real; m: int; flag: bool];
define
    y = sqrt(x) + float(n) / 2.0;
    m = n * n - 1;
    flag = (x > 1.0) and not (n = 0);
end Scalars;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Scalars", []any{4.0, 6}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if y := res[0].(float64); y != 2.0+3.0 {
		t.Errorf("y = %g, want 5", y)
	}
	if m := res[1].(int64); m != 35 {
		t.Errorf("m = %d, want 35", m)
	}
	if flag := res[2].(bool); !flag {
		t.Error("flag = false, want true")
	}
}

// TestScalarDependencyOrder verifies scalar chains execute in dependence
// order regardless of source order.
func TestScalarDependencyOrder(t *testing.T) {
	src := `
Chain: module (x: int): [d: int];
var a, b, c: int;
define
    d = c + 1;
    c = b * 2;
    a = x + 1;
    b = a + a;
end Chain;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Chain", []any{3}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// a=4, b=8, c=16, d=17.
	if d := res[0].(int64); d != 17 {
		t.Errorf("d = %d, want 17", d)
	}
}

// TestEnumValues covers enum constants, comparisons and array storage.
func TestEnumValues(t *testing.T) {
	src := `
Lights: module (n: int): [firstRed: int];
type
    Color = (green, yellow, red);
    I = 1 .. n;
var
    Seq: array [1 .. n] of Color;
    Hits: array [1 .. n] of int;
define
    Seq[I] = if I mod 3 = 0 then red elsif I mod 3 = 1 then green else yellow;
    Hits[I] = if Seq[I] = red then I else 0;
    firstRed = Hits[3];
end Lights;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Lights", []any{9}, interp.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 3 {
		t.Errorf("firstRed = %d, want 3", got)
	}
}

// TestCharAndString covers the remaining scalar kinds.
func TestCharAndString(t *testing.T) {
	src := `
Chars: module (c: char; s: string): [up: bool; same: bool; o: int];
define
    up = (c >= 'a') and (c <= 'z');
    same = s = 'hello';
    o = ord(c);
end Chars;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Chars", []any{int64('q'), "hello"}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].(bool) || !res[1].(bool) {
		t.Errorf("up=%v same=%v", res[0], res[1])
	}
	if res[2].(int64) != int64('q') {
		t.Errorf("ord = %d", res[2])
	}
}

// TestRecordParams covers record-typed parameters and field selection.
func TestRecordParams(t *testing.T) {
	src := `
Mag: module (p: Point): [r: real];
type Point = record x, y: real end;
define
    r = sqrt(p.x * p.x + p.y * p.y);
end Mag;
`
	ip := compileSrc(t, src)
	rt := &types.Record{Fields: []*types.RecField{
		{Name: "x", Type: types.Real}, {Name: "y", Type: types.Real},
	}}
	rec := &value.Record{Type: rt, Fields: []any{3.0, 4.0}}
	res, err := ip.Run("Mag", []any{rec}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := res[0].(float64); r != 5.0 {
		t.Errorf("r = %g, want 5", r)
	}
}

// TestMultiResultCall covers multi-target equations.
func TestMultiResultCall(t *testing.T) {
	src := `
Main: module (x: real): [hi: real; lo: real];
define
    hi, lo = MinMax(x);
end Main;
MinMax: module (x: real): [a: real; b: real];
define
    a = x + 1.0;
    b = x - 1.0;
end MinMax;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Main", []any{10.0}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 11 || res[1].(float64) != 9 {
		t.Errorf("got %v, %v", res[0], res[1])
	}
}

// TestExpressionLevelModuleCall covers scalar module calls inside
// expressions (evaluated per element).
func TestExpressionLevelModuleCall(t *testing.T) {
	src := `
Caller: module (N: int): [Ys: array [I] of real];
type I = 1 .. N;
define
    Ys[I] = Square(float(I)) + 0.5;
end Caller;
Square: module (x: real): [y: real];
define
    y = x * x;
end Square;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Caller", []any{4}, interp.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ys := res[0].(*value.Array)
	for i := int64(1); i <= 4; i++ {
		want := float64(i*i) + 0.5
		if got := ys.GetF([]int64{i}); got != want {
			t.Errorf("Ys[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestBuiltinValues spot-checks builtin evaluation.
func TestBuiltinValues(t *testing.T) {
	src := `
B: module (x: real; n: int): [a: real; b: real; c: int; d: int; e: real];
define
    a = max(min(x, 10.0), -10.0);
    b = pow(2.0, float(n)) + exp(0.0) + ln(1.0) + sin(0.0) + cos(0.0);
    c = trunc(3.9) + round(3.4) + abs(-5);
    d = min(max(n, 0), 100);
    e = abs(-2.5);
end B;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("B", []any{42.0, 3}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 10 {
		t.Errorf("a = %v", res[0])
	}
	if res[1].(float64) != 8+1+0+0+1 {
		t.Errorf("b = %v", res[1])
	}
	if res[2].(int64) != 3+3+5 {
		t.Errorf("c = %v", res[2])
	}
	if res[3].(int64) != 3 {
		t.Errorf("d = %v", res[3])
	}
	if res[4].(float64) != 2.5 {
		t.Errorf("e = %v", res[4])
	}
}

// TestDivisionByZero covers runtime integer division errors.
func TestDivisionByZero(t *testing.T) {
	src := `
D: module (n: int): [y: int];
define y = 10 div n; end D;
`
	ip := compileSrc(t, src)
	if _, err := ip.Run("D", []any{0}, interp.Options{Workers: 1}); err == nil {
		t.Error("division by zero not reported")
	} else if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("unexpected error %v", err)
	}
	if res, err := ip.Run("D", []any{3}, interp.Options{Workers: 1}); err != nil || res[0].(int64) != 3 {
		t.Errorf("10 div 3: %v, %v", res, err)
	}
}

// TestArgumentValidation covers Run argument checking.
func TestArgumentValidation(t *testing.T) {
	src := `
V: module (x: real): [y: real];
define y = x; end V;
`
	ip := compileSrc(t, src)
	if _, err := ip.Run("V", []any{}, interp.Options{}); err == nil {
		t.Error("missing arguments accepted")
	}
	if _, err := ip.Run("V", []any{"nope"}, interp.Options{}); err == nil {
		t.Error("wrong-typed argument accepted")
	}
	if _, err := ip.Run("NoSuch", []any{1.0}, interp.Options{}); err == nil {
		t.Error("missing module accepted")
	}
}

// TestIntToRealWidening covers implicit widening in mixed arithmetic.
func TestIntToRealWidening(t *testing.T) {
	src := `
W: module (n: int): [y: real];
define y = n + 0.5; end W;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("W", []any{7}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(float64); math.Abs(got-7.5) > 0 {
		t.Errorf("y = %g", got)
	}
}

// TestBoolArrays covers boolean element storage end to end.
func TestBoolArrays(t *testing.T) {
	src := `
Flags: module (N: int): [Odd: array [I] of bool];
type I = 0 .. N;
define Odd[I] = I mod 2 = 1; end Flags;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Flags", []any{6}, interp.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	odd := res[0].(*value.Array)
	for i := int64(0); i <= 6; i++ {
		if odd.GetB([]int64{i}) != (i%2 == 1) {
			t.Errorf("Odd[%d] wrong", i)
		}
	}
}

// TestIntArrays covers integer element arrays and int expressions.
func TestIntArrays(t *testing.T) {
	src := `
Tri: module (N: int): [T: array [I] of int];
type I = 1 .. N; I2 = 2 .. N;
define
    T[1] = 1;
    T[I2] = T[I2-1] + I2;
end Tri;
`
	ip := compileSrc(t, src)
	res, err := ip.Run("Tri", []any{6}, interp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tri := res[0].(*value.Array)
	for i := int64(1); i <= 6; i++ {
		if got := tri.GetI([]int64{i}); got != i*(i+1)/2 {
			t.Errorf("T[%d] = %d, want %d", i, got, i*(i+1)/2)
		}
	}
}
