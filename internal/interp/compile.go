package interp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Typed evaluation functions: the compiler dispatches on the checked
// static type so the hot paths (real and integer arithmetic) never box.
type (
	evalF func(en *env, fr []int64) float64
	evalI func(en *env, fr []int64) int64
	evalB func(en *env, fr []int64) bool
	evalA func(en *env, fr []int64) any
)

// kernelFn executes one equation at the current index frame.
type kernelFn func(en *env, fr []int64)

// compiledModule is one module ready to run: equation kernels compiled
// once, the two lowered plan variants, slot-resolved bound thunks, and
// precomputed allocation descriptors.
type compiledModule struct {
	m     *sem.Module
	sched *core.Schedule
	// plans holds the lowered variants indexed [fuse][mode], where mode
	// is 0 = hyperplane off, 1 = the auto cascade, 2 = the
	// pipeline-first cascade (WithSchedule(SchedulePipeline)). Options
	// select one at activation time; all are lowered once here, not per
	// run. Variants that lower identically — a module with no
	// cascade-eligible nest has equal base and auto plans — share one
	// compiledPlan.
	plans [2][3]*compiledPlan
	// slotOf assigns every subrange type a frame slot for its index
	// value — the plan's Bounds order, shared by every variant. It is
	// consulted at compile time only; execution reads slots baked into
	// plan steps and closures.
	slotOf map[*types.Subrange]int
	nSlots int
	// bounds holds compiled lo/hi thunks per frame slot, evaluated once
	// per activation into env.bounds.
	bounds [][2]evalI
	// symIdx numbers all data symbols for the env value table.
	symIdx map[*sem.Symbol]int
	syms   []*sem.Symbol
	// ws pools per-worker execution state reused across DOALL chunks.
	ws sync.Pool
}

// variant selects the compiled plan for one (fuse, mode) pair.
func (cm *compiledModule) variant(fuse bool, mode int) *compiledPlan {
	fi := 0
	if fuse {
		fi = 1
	}
	return cm.plans[fi][mode]
}

// planMode maps plan options onto the variant mode index: 0 =
// hyperplane off, 1 = the auto cascade, 2 = the pipeline-first cascade.
func planMode(o plan.Options) int {
	switch {
	case !o.Hyperplane:
		return 0
	case o.PipelineFirst:
		return 2
	}
	return 1
}

// compiledPlan pairs one lowered plan variant with its kernel table
// (aligned index-for-index with pl.Eqs) and the allocation descriptors
// resolved against the variant's own virtual-dimension report — the
// auto-hyperplane variants drop windows on transformed subranges.
type compiledPlan struct {
	pl      *plan.Program
	kernels []kernelFn
	// spans holds each equation's span executor (specialized direct
	// kernel or generic wrapper), aligned index-for-index with pl.Eqs.
	spans []eqSpan
	// allocs describes the result and local arrays allocated per
	// activation, with §3.4 windows resolved at compile time.
	allocs []allocInfo
	// wfCost is the measured wavefront kernel cost in ns per executed
	// point, published once after wfCalibrateSamples plane timings have
	// accumulated; it calibrates the inline-plane threshold and the
	// auto barrier/doacross choice. 0 until calibrated.
	wfCost atomic.Int64
	// wfMu guards wfSamples, the pre-publication plane timings. The
	// first sample is always discarded: the first plane a fresh
	// activation executes pays arena warm-up and specialization-miss
	// costs that would bias wfCost high and flip the auto
	// barrier/doacross policy between activations.
	wfMu      sync.Mutex
	wfSamples []int64
}

// wfCalibrateSamples is the number of plane timings collected before
// wfCost publishes: the warm-up sample plus three steady-state samples
// whose median becomes the cost.
const wfCalibrateSamples = 4

// defaultInlinePlane is the uncalibrated inline-plane threshold: planes
// below it run on the sweeping goroutine instead of the pool.
const defaultInlinePlane = 32

// wfDispatchNs models the fixed cost of dispatching one plane to the
// pool (wake, chunk claims, join); the calibrated threshold is the
// plane size whose kernel work amortizes it.
const wfDispatchNs = 8000

// wavefrontGrain returns the plan's current inline-plane threshold:
// the measured-cost calibration when available, the fixed default
// before the first run.
func (cp *compiledPlan) wavefrontGrain() int64 {
	c := cp.wfCost.Load()
	if c <= 0 {
		return defaultInlinePlane
	}
	g := wfDispatchNs / c
	if g < 8 {
		g = 8
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// noteWavefrontCost accumulates one plane timing toward the
// steady-state calibration. The first sample (arena warm-up,
// specialization effects) is discarded; once wfCalibrateSamples have
// arrived, the median of the rest publishes as wfCost and the value is
// immutable from then on, so the auto barrier/doacross policy is stable
// across repeated activations.
func (cp *compiledPlan) noteWavefrontCost(points int64, elapsed time.Duration) {
	if points <= 0 || cp.wfCost.Load() != 0 {
		return
	}
	ns := elapsed.Nanoseconds() / points
	if ns < 1 {
		ns = 1
	}
	cp.wfMu.Lock()
	defer cp.wfMu.Unlock()
	if cp.wfCost.Load() != 0 {
		return
	}
	cp.wfSamples = append(cp.wfSamples, ns)
	if len(cp.wfSamples) < wfCalibrateSamples {
		return
	}
	steady := append([]int64(nil), cp.wfSamples[1:]...)
	sort.Slice(steady, func(i, j int) bool { return steady[i] < steady[j] })
	med := steady[len(steady)/2]
	if med < 1 {
		med = 1
	}
	cp.wfSamples = nil
	cp.wfCost.Store(med)
}

// WavefrontGrain reports the inline-plane threshold the named module's
// plan variant currently uses and the measured kernel cost it derives
// from (nsPerPoint is 0 before the first run calibrates it). Runner
// Explain surfaces both.
func (p *Program) WavefrontGrain(name string, opts plan.Options) (grain, nsPerPoint int64) {
	m := p.Prog.Module(name)
	if m == nil {
		return defaultInlinePlane, 0
	}
	cm := p.mods[m]
	if cm == nil {
		return defaultInlinePlane, 0
	}
	cp := cm.variant(opts.Fuse, planMode(opts))
	return cp.wavefrontGrain(), cp.wfCost.Load()
}

// allocInfo describes one array allocated at activation entry.
type allocInfo struct {
	si   int
	elem types.Kind
	dims []allocDim
	// zero means a recycled arena backing must be cleared: the write-
	// coverage analysis could not prove every element is defined before
	// being read. Fresh allocations are zero either way.
	zero bool
	// local marks module locals, whose backing returns to the arena when
	// the activation completes (results outlive it).
	local bool
}

// allocDim is one dimension of an allocated array: the frame slot whose
// bounds size it and the window (0 = physical allocation).
type allocDim struct {
	slot   int
	window int
}

// compiler compiles one module's equations.
type compiler struct {
	p  *Program
	cm *compiledModule
	m  *sem.Module
	eq *sem.Equation
}

type compileError struct{ err error }

func (c *compiler) failf(format string, args ...any) {
	panic(compileError{fmt.Errorf("interp: "+format, args...)})
}

func (p *Program) compileModule(m *sem.Module, sched *core.Schedule) (cm *compiledModule, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				err = ce.err
				return
			}
			panic(r)
		}
	}()
	// Lower the schedule once into every plan variant; everything below
	// compiles against the plan's slot assignment, which all variants
	// share (Bounds come from the module's subrange table).
	basePl := plan.Lower(m, sched, plan.Options{})
	fusedPl := plan.Lower(m, sched, plan.Options{Fuse: true})
	hyperPl := plan.Lower(m, sched, plan.Options{Hyperplane: true})
	hyperFusedPl := plan.Lower(m, sched, plan.Options{Fuse: true, Hyperplane: true})
	pipePl := plan.Lower(m, sched, plan.Options{Hyperplane: true, PipelineFirst: true})
	pipeFusedPl := plan.Lower(m, sched, plan.Options{Fuse: true, Hyperplane: true, PipelineFirst: true})
	cm = &compiledModule{
		m:      m,
		sched:  sched,
		slotOf: make(map[*types.Subrange]int, len(basePl.Bounds)),
		symIdx: make(map[*sem.Symbol]int),
	}
	p.mods[m] = cm // registered before equation compilation so calls resolve
	c := &compiler{p: p, cm: cm, m: m}
	// Symbol slots must exist before bound expressions compile: bounds
	// like M+1 read scalar parameters through the slot table.
	for _, sym := range m.DataSymbols() {
		cm.symIdx[sym] = len(cm.syms)
		cm.syms = append(cm.syms, sym)
	}
	cm.nSlots = basePl.NSlots()
	cm.bounds = make([][2]evalI, cm.nSlots)
	for i, b := range basePl.Bounds {
		cm.slotOf[b.Subrange] = i
		cm.bounds[i] = [2]evalI{c.compileI(b.Lo), c.compileI(b.Hi)}
	}
	// Equation kernels compile once and are shared by every variant; the
	// specializer runs right after each checked kernel, falling back to
	// it for shapes outside the recognized fragment.
	kernels := make(map[*sem.Equation]kernelFn, len(m.Eqs))
	specs := make(map[*sem.Equation]eqSpan, len(m.Eqs))
	for _, eq := range m.Eqs {
		c.eq = eq
		kernels[eq] = c.compileEquation(eq)
		specs[eq] = c.specializeEquation(eq, kernels[eq])
		c.eq = nil
	}
	cm.plans[0][0] = cm.bindPlan(basePl, kernels, specs)
	cm.plans[1][0] = cm.bindPlan(fusedPl, kernels, specs)
	// A module where no cascade backend fires lowers identically with
	// the cascade on; share the untransformed compiledPlan then. The
	// pipeline-first mode likewise shares the auto plan unless flipping
	// the cascade order actually changed the lowering.
	if hyperPl.HasWavefront() || hyperPl.HasPipeline() {
		cm.plans[0][1] = cm.bindPlan(hyperPl, kernels, specs)
	} else {
		cm.plans[0][1] = cm.plans[0][0]
	}
	if hyperFusedPl.HasWavefront() || hyperFusedPl.HasPipeline() {
		cm.plans[1][1] = cm.bindPlan(hyperFusedPl, kernels, specs)
	} else {
		cm.plans[1][1] = cm.plans[1][0]
	}
	if pipePl.String() == hyperPl.String() {
		cm.plans[0][2] = cm.plans[0][1]
	} else {
		cm.plans[0][2] = cm.bindPlan(pipePl, kernels, specs)
	}
	if pipeFusedPl.String() == hyperFusedPl.String() {
		cm.plans[1][2] = cm.plans[1][1]
	} else {
		cm.plans[1][2] = cm.bindPlan(pipeFusedPl, kernels, specs)
	}
	return cm, nil
}

// bindPlan aligns the shared kernel table with one plan variant's
// equation order and resolves the variant's allocation descriptors
// (windows come from the variant's own virtual report).
func (cm *compiledModule) bindPlan(pl *plan.Program, kernels map[*sem.Equation]kernelFn, specs map[*sem.Equation]eqSpan) *compiledPlan {
	cp := &compiledPlan{
		pl:      pl,
		kernels: make([]kernelFn, len(pl.Eqs)),
		spans:   make([]eqSpan, len(pl.Eqs)),
	}
	for i, eq := range pl.Eqs {
		cp.kernels[i] = kernels[eq]
		cp.spans[i] = specs[eq]
	}
	m := cm.m
	win := pl.Windows()
	for _, sym := range append(append([]*sem.Symbol{}, m.Results...), m.Locals...) {
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			continue
		}
		al := allocInfo{
			si:    cm.symIdx[sym],
			elem:  arr.Elem.Kind(),
			zero:  !writeCovered(m, sym),
			local: sym.Kind == sem.LocalSym,
		}
		for d, sr := range arr.Dims {
			al.dims = append(al.dims, allocDim{slot: cm.slotOf[sr], window: win[sym][d]})
		}
		cp.allocs = append(cp.allocs, al)
	}
	return cp
}

// --- equation compilation ---------------------------------------------------

func (c *compiler) compileEquation(eq *sem.Equation) kernelFn {
	if eq.MultiCall != nil || eq.WholeCall != nil {
		return c.compileCallEquation(eq)
	}
	target := eq.Targets[0]
	sym := target.Sym
	si := c.cm.symIdx[sym]

	// Compile explicit LHS subscripts and implicit dimension slots.
	subs := make([]evalI, len(target.Subs))
	for i, s := range target.Subs {
		subs[i] = c.compileI(s)
	}
	implicit := make([]int, len(target.Implicit))
	for i, v := range target.Implicit {
		implicit[i] = c.cm.slotOf[v]
	}
	rank := len(subs) + len(implicit)

	if rank == 0 {
		// Scalar target.
		rhs := c.compileScalarAs(eq.RHS, sym.Type)
		return func(en *env, fr []int64) {
			en.scalars[si] = rhs(en, fr)
		}
	}

	elem := sym.Type.(*types.Array).Elem
	idxOf := func(en *env, fr []int64, idx []int64) {
		for i, f := range subs {
			idx[i] = f(en, fr)
		}
		for i, slot := range implicit {
			idx[len(subs)+i] = fr[slot]
		}
	}
	switch elem.Kind() {
	case types.RealKind:
		rhs := c.compileF(eq.RHS)
		return func(en *env, fr []int64) {
			var buf [maxRank]int64
			idx := buf[:rank]
			idxOf(en, fr, idx)
			a := en.arrays[si]
			v := rhs(en, fr)
			if en.strict {
				a.SetF(idx, v)
			} else {
				a.F[arrOffset(a, idx)] = v
			}
		}
	case types.BoolKind:
		rhs := c.compileB(eq.RHS)
		return func(en *env, fr []int64) {
			var buf [maxRank]int64
			idx := buf[:rank]
			idxOf(en, fr, idx)
			a := en.arrays[si]
			v := rhs(en, fr)
			if en.strict {
				a.SetB(idx, v)
			} else {
				a.B[arrOffset(a, idx)] = v
			}
		}
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		rhs := c.compileI(eq.RHS)
		return func(en *env, fr []int64) {
			var buf [maxRank]int64
			idx := buf[:rank]
			idxOf(en, fr, idx)
			a := en.arrays[si]
			v := rhs(en, fr)
			if en.strict {
				a.SetI(idx, v)
			} else {
				a.I[arrOffset(a, idx)] = v
			}
		}
	default:
		rhs := c.compileA(eq.RHS)
		return func(en *env, fr []int64) {
			var buf [maxRank]int64
			idx := buf[:rank]
			idxOf(en, fr, idx)
			en.arrays[si].Set(idx, rhs(en, fr))
		}
	}
}

// compileCallEquation handles whole-value module calls: x = f(...) and
// multi-target a, b = f(...).
func (c *compiler) compileCallEquation(eq *sem.Equation) kernelFn {
	call := eq.WholeCall
	if eq.MultiCall != nil {
		call = eq.MultiCall
	}
	callee := c.m.Prog.Module(call.Fun.Name)
	sub, ok := c.p.mods[callee]
	if !ok {
		var err error
		sub, err = c.p.compileCallee(callee)
		if err != nil {
			c.failf("compiling callee %s: %v", callee.Name, err)
		}
	}
	args := make([]evalA, len(call.Args))
	for i, a := range call.Args {
		args[i] = c.compileA(a)
	}
	slots := make([]int, len(eq.Targets))
	isArray := make([]bool, len(eq.Targets))
	for i, t := range eq.Targets {
		if len(t.Subs) > 0 {
			c.failf("subscripted target %s of whole-call equation %s", t.Sym.Name, eq.Label)
		}
		slots[i] = c.cm.symIdx[t.Sym]
		isArray[i] = types.Rank(t.Sym.Type) > 0
	}
	return func(en *env, fr []int64) {
		argv := make([]any, len(args))
		for i, f := range args {
			argv[i] = f(en, fr)
		}
		results, err := c.p.runModule(en.rs, sub, argv, en.inParallel, en.inParallel || en.inSpan)
		if err != nil {
			panic(runtimeError{err: fmt.Errorf("call %s: %w", sub.m.Name, err)})
		}
		for i, slot := range slots {
			if isArray[i] {
				en.arrays[slot] = results[i].(*value.Array)
			} else {
				en.scalars[slot] = results[i]
			}
		}
	}
}

// --- expression compilation ---------------------------------------------------

// compileScalarAs compiles e coerced to the scalar type t.
func (c *compiler) compileScalarAs(e ast.Expr, t types.Type) evalA {
	switch t.Kind() {
	case types.RealKind:
		f := c.compileF(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		f := c.compileI(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	case types.BoolKind:
		f := c.compileB(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	default:
		return c.compileA(e)
	}
}

func (c *compiler) typeOf(e ast.Expr) types.Type {
	t := c.m.TypeOf(e)
	if t == nil {
		c.failf("expression %s has no checked type", ast.ExprString(e))
	}
	return t
}

// compileF compiles a numeric expression to a float64 evaluator, widening
// integer subexpressions. Array-typed expressions in element context
// (e.g. the RHS of A[1] = InitialA) compile to implicitly-aligned element
// reads.
func (c *compiler) compileF(e ast.Expr) evalF {
	t := c.typeOf(e)
	if types.IsInteger(t) || t.Kind() == types.CharKind || t.Kind() == types.EnumKind {
		f := c.compileI(e)
		return func(en *env, fr []int64) float64 { return float64(f(en, fr)) }
	}
	if t.Kind() == types.ArrayKind {
		si, subs, rank := c.compileElemAccess(e)
		return func(en *env, fr []int64) float64 {
			var buf [maxRank]int64
			idx := buf[:rank]
			for i, f := range subs {
				idx[i] = f(en, fr)
			}
			a := en.arrays[si]
			if en.strict {
				return a.GetF(idx)
			}
			return a.F[arrOffset(a, idx)]
		}
	}
	if t.Kind() != types.RealKind {
		c.failf("expression %s has type %s, want real", ast.ExprString(e), t)
	}
	switch x := e.(type) {
	case *ast.RealLit:
		v := x.Value
		return func(*env, []int64) float64 { return v }
	case *ast.Paren:
		return c.compileF(x.X)
	case *ast.Ident:
		si := c.scalarSlot(x.Name)
		return func(en *env, fr []int64) float64 { return en.scalars[si].(float64) }
	case *ast.Unary:
		f := c.compileF(x.X)
		if x.Op.String() == "-" {
			return func(en *env, fr []int64) float64 { return -f(en, fr) }
		}
		return f
	case *ast.Binary:
		return c.compileBinaryF(x)
	case *ast.IfExpr:
		arms := c.compileIfArms(x)
		thenF := make([]evalF, len(arms.thens))
		for i, a := range arms.thens {
			thenF[i] = c.compileF(a)
		}
		elseF := c.compileF(x.Else)
		conds := arms.conds
		return func(en *env, fr []int64) float64 {
			for i, cond := range conds {
				if cond(en, fr) {
					return thenF[i](en, fr)
				}
			}
			return elseF(en, fr)
		}
	case *ast.Index:
		return c.compileIndexF(x)
	case *ast.Field:
		g := c.compileFieldAccess(x)
		return func(en *env, fr []int64) float64 { return value.ToFloat(g(en, fr)) }
	case *ast.Call:
		return c.compileCallF(x)
	}
	c.failf("cannot compile real expression %s", ast.ExprString(e))
	return nil
}

func (c *compiler) compileBinaryF(x *ast.Binary) evalF {
	l := c.compileF(x.X)
	r := c.compileF(x.Y)
	switch x.Op.String() {
	case "+":
		return func(en *env, fr []int64) float64 { return l(en, fr) + r(en, fr) }
	case "-":
		return func(en *env, fr []int64) float64 { return l(en, fr) - r(en, fr) }
	case "*":
		return func(en *env, fr []int64) float64 { return l(en, fr) * r(en, fr) }
	case "/":
		return func(en *env, fr []int64) float64 { return l(en, fr) / r(en, fr) }
	}
	c.failf("invalid real operator %s", x.Op)
	return nil
}

// compileElemAccess compiles an array-typed expression appearing in
// element context: a whole or partially subscripted reference whose
// remaining dimensions align with the equation's implicit variables.
// Conditional arms delegate back to the typed compilers.
func (c *compiler) compileElemAccess(e ast.Expr) (int, []evalI, int) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sym := c.m.Lookup(x.Name)
		if sym == nil || !sym.IsData() {
			c.failf("unknown array %s", x.Name)
		}
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			c.failf("%s is not an array", x.Name)
		}
		imp := c.implicitSlots(len(arr.Dims))
		subs := make([]evalI, len(imp))
		for i, slot := range imp {
			s := slot
			subs[i] = func(en *env, fr []int64) int64 { return fr[s] }
		}
		return c.cm.symIdx[sym], subs, len(arr.Dims)
	case *ast.Index:
		return c.compileIndexCommon(x)
	}
	c.failf("array-valued expression %s cannot be read element-wise", ast.ExprString(e))
	return 0, nil, 0
}

// compileI compiles an integer-backed expression (int, subrange, char,
// enum ordinal).
func (c *compiler) compileI(e ast.Expr) evalI {
	// Subrange bound expressions are compiled without checked types; the
	// nil-tolerant lookup only matters for the array element case.
	if t := c.m.TypeOf(e); t != nil && t.Kind() == types.ArrayKind {
		si, subs, rank := c.compileElemAccess(e)
		return func(en *env, fr []int64) int64 {
			var buf [maxRank]int64
			idx := buf[:rank]
			for i, f := range subs {
				idx[i] = f(en, fr)
			}
			a := en.arrays[si]
			if en.strict {
				return a.GetI(idx)
			}
			return a.I[arrOffset(a, idx)]
		}
	}
	switch x := e.(type) {
	case *ast.IntLit:
		v := x.Value
		return func(*env, []int64) int64 { return v }
	case *ast.CharLit:
		v := int64(x.Value)
		return func(*env, []int64) int64 { return v }
	case *ast.Paren:
		return c.compileI(x.X)
	case *ast.Ident:
		if iv := c.m.IndexVar(x.Name); iv != nil {
			slot, ok := c.cm.slotOf[iv]
			if !ok {
				c.failf("no frame slot for index %s", x.Name)
			}
			return func(en *env, fr []int64) int64 { return fr[slot] }
		}
		sym := c.m.Lookup(x.Name)
		if sym != nil && sym.Kind == sem.EnumConstSym {
			v := int64(sym.Index)
			return func(*env, []int64) int64 { return v }
		}
		si := c.scalarSlot(x.Name)
		return func(en *env, fr []int64) int64 { return en.scalars[si].(int64) }
	case *ast.Unary:
		f := c.compileI(x.X)
		if x.Op.String() == "-" {
			return func(en *env, fr []int64) int64 { return -f(en, fr) }
		}
		return f
	case *ast.Binary:
		return c.compileBinaryI(x)
	case *ast.IfExpr:
		arms := c.compileIfArms(x)
		thenF := make([]evalI, len(arms.thens))
		for i, a := range arms.thens {
			thenF[i] = c.compileI(a)
		}
		elseF := c.compileI(x.Else)
		conds := arms.conds
		return func(en *env, fr []int64) int64 {
			for i, cond := range conds {
				if cond(en, fr) {
					return thenF[i](en, fr)
				}
			}
			return elseF(en, fr)
		}
	case *ast.Index:
		return c.compileIndexI(x)
	case *ast.Field:
		g := c.compileFieldAccess(x)
		return func(en *env, fr []int64) int64 { return value.ToInt(g(en, fr)) }
	case *ast.Call:
		return c.compileCallI(x)
	}
	c.failf("cannot compile integer expression %s", ast.ExprString(e))
	return nil
}

func (c *compiler) compileBinaryI(x *ast.Binary) evalI {
	l := c.compileI(x.X)
	r := c.compileI(x.Y)
	switch x.Op.String() {
	case "+":
		return func(en *env, fr []int64) int64 { return l(en, fr) + r(en, fr) }
	case "-":
		return func(en *env, fr []int64) int64 { return l(en, fr) - r(en, fr) }
	case "*":
		return func(en *env, fr []int64) int64 { return l(en, fr) * r(en, fr) }
	case "div":
		return func(en *env, fr []int64) int64 {
			d := r(en, fr)
			if d == 0 {
				panic(runtimeError{err: fmt.Errorf("division by zero")})
			}
			return l(en, fr) / d
		}
	case "mod":
		return func(en *env, fr []int64) int64 {
			d := r(en, fr)
			if d == 0 {
				panic(runtimeError{err: fmt.Errorf("division by zero")})
			}
			return l(en, fr) % d
		}
	}
	c.failf("invalid integer operator %s", x.Op)
	return nil
}

// compileB compiles a boolean expression.
func (c *compiler) compileB(e ast.Expr) evalB {
	if t := c.m.TypeOf(e); t != nil && t.Kind() == types.ArrayKind {
		si, subs, rank := c.compileElemAccess(e)
		return func(en *env, fr []int64) bool {
			var buf [maxRank]int64
			idx := buf[:rank]
			for i, f := range subs {
				idx[i] = f(en, fr)
			}
			a := en.arrays[si]
			if en.strict {
				return a.GetB(idx)
			}
			return a.B[arrOffset(a, idx)]
		}
	}
	switch x := e.(type) {
	case *ast.BoolLit:
		v := x.Value
		return func(*env, []int64) bool { return v }
	case *ast.Paren:
		return c.compileB(x.X)
	case *ast.Ident:
		si := c.scalarSlot(x.Name)
		return func(en *env, fr []int64) bool { return en.scalars[si].(bool) }
	case *ast.Unary:
		f := c.compileB(x.X)
		return func(en *env, fr []int64) bool { return !f(en, fr) }
	case *ast.Binary:
		return c.compileBinaryB(x)
	case *ast.IfExpr:
		arms := c.compileIfArms(x)
		thenF := make([]evalB, len(arms.thens))
		for i, a := range arms.thens {
			thenF[i] = c.compileB(a)
		}
		elseF := c.compileB(x.Else)
		conds := arms.conds
		return func(en *env, fr []int64) bool {
			for i, cond := range conds {
				if cond(en, fr) {
					return thenF[i](en, fr)
				}
			}
			return elseF(en, fr)
		}
	case *ast.Index:
		si, subs, rank := c.compileIndexCommon(x)
		return func(en *env, fr []int64) bool {
			var buf [maxRank]int64
			idx := buf[:rank]
			for i, f := range subs {
				idx[i] = f(en, fr)
			}
			a := en.arrays[si]
			if en.strict {
				return a.GetB(idx)
			}
			return a.B[arrOffset(a, idx)]
		}
	case *ast.Field:
		g := c.compileFieldAccess(x)
		return func(en *env, fr []int64) bool { return g(en, fr).(bool) }
	}
	c.failf("cannot compile boolean expression %s", ast.ExprString(e))
	return nil
}

func (c *compiler) compileBinaryB(x *ast.Binary) evalB {
	op := x.Op.String()
	switch op {
	case "and":
		l, r := c.compileB(x.X), c.compileB(x.Y)
		return func(en *env, fr []int64) bool { return l(en, fr) && r(en, fr) }
	case "or":
		l, r := c.compileB(x.X), c.compileB(x.Y)
		return func(en *env, fr []int64) bool { return l(en, fr) || r(en, fr) }
	}
	// Relational operators: compare by operand type.
	lt := c.typeOf(x.X)
	rt := c.typeOf(x.Y)
	switch {
	case lt.Kind() == types.RealKind || rt.Kind() == types.RealKind:
		l, r := c.compileF(x.X), c.compileF(x.Y)
		return compareF(op, l, r, c)
	case types.IsInteger(lt) || lt.Kind() == types.CharKind || lt.Kind() == types.EnumKind:
		l, r := c.compileI(x.X), c.compileI(x.Y)
		return compareI(op, l, r, c)
	case lt.Kind() == types.BoolKind:
		l, r := c.compileB(x.X), c.compileB(x.Y)
		switch op {
		case "=":
			return func(en *env, fr []int64) bool { return l(en, fr) == r(en, fr) }
		case "<>":
			return func(en *env, fr []int64) bool { return l(en, fr) != r(en, fr) }
		}
	case lt.Kind() == types.StringKind:
		l, r := c.compileA(x.X), c.compileA(x.Y)
		return compareS(op, l, r, c)
	}
	c.failf("cannot compile comparison %s", ast.ExprString(x))
	return nil
}

func compareF(op string, l, r evalF, c *compiler) evalB {
	switch op {
	case "=":
		return func(en *env, fr []int64) bool { return l(en, fr) == r(en, fr) }
	case "<>":
		return func(en *env, fr []int64) bool { return l(en, fr) != r(en, fr) }
	case "<":
		return func(en *env, fr []int64) bool { return l(en, fr) < r(en, fr) }
	case "<=":
		return func(en *env, fr []int64) bool { return l(en, fr) <= r(en, fr) }
	case ">":
		return func(en *env, fr []int64) bool { return l(en, fr) > r(en, fr) }
	case ">=":
		return func(en *env, fr []int64) bool { return l(en, fr) >= r(en, fr) }
	}
	c.failf("invalid comparison operator %s", op)
	return nil
}

func compareI(op string, l, r evalI, c *compiler) evalB {
	switch op {
	case "=":
		return func(en *env, fr []int64) bool { return l(en, fr) == r(en, fr) }
	case "<>":
		return func(en *env, fr []int64) bool { return l(en, fr) != r(en, fr) }
	case "<":
		return func(en *env, fr []int64) bool { return l(en, fr) < r(en, fr) }
	case "<=":
		return func(en *env, fr []int64) bool { return l(en, fr) <= r(en, fr) }
	case ">":
		return func(en *env, fr []int64) bool { return l(en, fr) > r(en, fr) }
	case ">=":
		return func(en *env, fr []int64) bool { return l(en, fr) >= r(en, fr) }
	}
	c.failf("invalid comparison operator %s", op)
	return nil
}

func compareS(op string, l, r evalA, c *compiler) evalB {
	cmp := func(en *env, fr []int64) int {
		return strings.Compare(l(en, fr).(string), r(en, fr).(string))
	}
	switch op {
	case "=":
		return func(en *env, fr []int64) bool { return cmp(en, fr) == 0 }
	case "<>":
		return func(en *env, fr []int64) bool { return cmp(en, fr) != 0 }
	case "<":
		return func(en *env, fr []int64) bool { return cmp(en, fr) < 0 }
	case "<=":
		return func(en *env, fr []int64) bool { return cmp(en, fr) <= 0 }
	case ">":
		return func(en *env, fr []int64) bool { return cmp(en, fr) > 0 }
	case ">=":
		return func(en *env, fr []int64) bool { return cmp(en, fr) >= 0 }
	}
	c.failf("invalid comparison operator %s", op)
	return nil
}

// ifArms pairs the compiled conditions of an if/elsif chain with the
// uncompiled arm expressions.
type ifArms struct {
	conds []evalB
	thens []ast.Expr
}

func (c *compiler) compileIfArms(x *ast.IfExpr) ifArms {
	arms := ifArms{conds: []evalB{c.compileB(x.Cond)}, thens: []ast.Expr{x.Then}}
	for _, e := range x.Elifs {
		arms.conds = append(arms.conds, c.compileB(e.Cond))
		arms.thens = append(arms.thens, e.Then)
	}
	return arms
}

// --- array references ----------------------------------------------------------

// maxRank bounds the subscript buffer kept on the evaluator's stack.
const maxRank = 8

// compileIndexCommon compiles an array reference's base slot and full-rank
// subscript evaluators (explicit subscripts plus implicit alignment).
func (c *compiler) compileIndexCommon(x *ast.Index) (int, []evalI, int) {
	base, ok := ast.Unparen(x.Base).(*ast.Ident)
	if !ok {
		c.failf("subscripted value %s must be a named array", ast.ExprString(x.Base))
	}
	sym := c.m.Lookup(base.Name)
	if sym == nil || !sym.IsData() {
		c.failf("unknown array %s", base.Name)
	}
	arr, isArr := sym.Type.(*types.Array)
	if !isArr {
		c.failf("%s is not an array", base.Name)
	}
	si := c.cm.symIdx[sym]
	subs := make([]evalI, 0, len(arr.Dims))
	for _, s := range x.Subs {
		subs = append(subs, c.compileI(s))
	}
	if len(subs) < len(arr.Dims) {
		// Partial reference: align the remaining dimensions with the
		// equation's implicit variables (newA = A[maxK] reads A[maxK,i,j]).
		imp := c.implicitSlots(len(arr.Dims) - len(subs))
		for _, slot := range imp {
			s := slot
			subs = append(subs, func(en *env, fr []int64) int64 { return fr[s] })
		}
	}
	if len(arr.Dims) > maxRank {
		c.failf("array %s has rank %d > %d", base.Name, len(arr.Dims), maxRank)
	}
	return si, subs, len(arr.Dims)
}

// implicitSlots returns the frame slots of the current equation's last n
// implicit dimensions, failing when alignment is impossible.
func (c *compiler) implicitSlots(n int) []int {
	if c.eq == nil {
		c.failf("array-valued expression outside an equation")
	}
	imp := c.eq.Dims[c.eq.NumExplicit:]
	if len(imp) != n {
		c.failf("cannot align %d remaining dimensions with %d implicit variables in %s", n, len(imp), c.eq.Label)
	}
	out := make([]int, n)
	for i, v := range imp {
		out[i] = c.cm.slotOf[v]
	}
	return out
}

func (c *compiler) compileIndexF(x *ast.Index) evalF {
	si, subs, rank := c.compileIndexCommon(x)
	return func(en *env, fr []int64) float64 {
		var buf [maxRank]int64
		idx := buf[:rank]
		for i, f := range subs {
			idx[i] = f(en, fr)
		}
		a := en.arrays[si]
		if en.strict {
			return a.GetF(idx)
		}
		return a.F[arrOffset(a, idx)]
	}
}

func (c *compiler) compileIndexI(x *ast.Index) evalI {
	si, subs, rank := c.compileIndexCommon(x)
	return func(en *env, fr []int64) int64 {
		var buf [maxRank]int64
		idx := buf[:rank]
		for i, f := range subs {
			idx[i] = f(en, fr)
		}
		a := en.arrays[si]
		if en.strict {
			return a.GetI(idx)
		}
		return a.I[arrOffset(a, idx)]
	}
}

// arrOffset computes the physical offset of idx in a with window
// wrap-around, panicking with a runtimeError when out of range.
func arrOffset(a *value.Array, idx []int64) int64 {
	var off int64
	for d, x := range idx {
		ax := a.Axes[d]
		if x < ax.Lo || x > ax.Hi {
			panic(runtimeError{err: fmt.Errorf("subscript %d out of range %d..%d in dimension %d", x, ax.Lo, ax.Hi, d+1)})
		}
		p := x - ax.Lo
		if ph := a.PhysDims[d]; p >= ph {
			p %= ph
		}
		off += p * a.Strides[d]
	}
	return off
}

// --- calls -------------------------------------------------------------------

func (c *compiler) compileCallF(x *ast.Call) evalF {
	name := strings.ToLower(x.Fun.Name)
	switch name {
	case "sqrt", "sin", "cos", "exp", "ln":
		f := c.compileF(x.Args[0])
		var fn func(float64) float64
		switch name {
		case "sqrt":
			fn = math.Sqrt
		case "sin":
			fn = math.Sin
		case "cos":
			fn = math.Cos
		case "exp":
			fn = math.Exp
		case "ln":
			fn = math.Log
		}
		return func(en *env, fr []int64) float64 { return fn(f(en, fr)) }
	case "pow":
		l, r := c.compileF(x.Args[0]), c.compileF(x.Args[1])
		return func(en *env, fr []int64) float64 { return math.Pow(l(en, fr), r(en, fr)) }
	case "abs":
		f := c.compileF(x.Args[0])
		return func(en *env, fr []int64) float64 { return math.Abs(f(en, fr)) }
	case "min":
		l, r := c.compileF(x.Args[0]), c.compileF(x.Args[1])
		return func(en *env, fr []int64) float64 { return math.Min(l(en, fr), r(en, fr)) }
	case "max":
		l, r := c.compileF(x.Args[0]), c.compileF(x.Args[1])
		return func(en *env, fr []int64) float64 { return math.Max(l(en, fr), r(en, fr)) }
	case "float":
		f := c.compileI(x.Args[0])
		return func(en *env, fr []int64) float64 { return float64(f(en, fr)) }
	}
	// Module call returning a real.
	g := c.compileModuleCall(x)
	return func(en *env, fr []int64) float64 { return value.ToFloat(g(en, fr)) }
}

func (c *compiler) compileCallI(x *ast.Call) evalI {
	name := strings.ToLower(x.Fun.Name)
	switch name {
	case "abs":
		f := c.compileI(x.Args[0])
		return func(en *env, fr []int64) int64 {
			v := f(en, fr)
			if v < 0 {
				return -v
			}
			return v
		}
	case "min":
		l, r := c.compileI(x.Args[0]), c.compileI(x.Args[1])
		return func(en *env, fr []int64) int64 {
			a, b := l(en, fr), r(en, fr)
			if a < b {
				return a
			}
			return b
		}
	case "max":
		l, r := c.compileI(x.Args[0]), c.compileI(x.Args[1])
		return func(en *env, fr []int64) int64 {
			a, b := l(en, fr), r(en, fr)
			if a > b {
				return a
			}
			return b
		}
	case "trunc":
		f := c.compileF(x.Args[0])
		return func(en *env, fr []int64) int64 { return int64(math.Trunc(f(en, fr))) }
	case "round":
		f := c.compileF(x.Args[0])
		return func(en *env, fr []int64) int64 { return int64(math.Round(f(en, fr))) }
	case "ord":
		return c.compileI(x.Args[0])
	}
	g := c.compileModuleCall(x)
	return func(en *env, fr []int64) int64 { return value.ToInt(g(en, fr)) }
}

// compileFieldAccess compiles a record field selection to a boxed
// evaluator, bypassing the scalar-type dispatch of compileA (which would
// bounce scalar-typed fields back to the typed compilers).
func (c *compiler) compileFieldAccess(x *ast.Field) evalA {
	g := c.compileA(x.Base)
	name := x.Sel.Name
	return func(en *env, fr []int64) any {
		return g(en, fr).(*value.Record).Field(name)
	}
}

// compileModuleCall compiles a single-result module invocation.
func (c *compiler) compileModuleCall(x *ast.Call) evalA {
	callee := c.m.Prog.Module(x.Fun.Name)
	if callee == nil {
		c.failf("unknown function %s", x.Fun.Name)
	}
	sub, ok := c.p.mods[callee]
	if !ok {
		var err error
		sub, err = c.p.compileCallee(callee)
		if err != nil {
			c.failf("compiling callee %s: %v", callee.Name, err)
		}
	}
	args := make([]evalA, len(x.Args))
	for i, a := range x.Args {
		args[i] = c.compileA(a)
	}
	p := c.p
	return func(en *env, fr []int64) any {
		argv := make([]any, len(args))
		for i, f := range args {
			argv[i] = f(en, fr)
		}
		results, err := p.runModule(en.rs, sub, argv, en.inParallel, en.inParallel || en.inSpan)
		if err != nil {
			panic(runtimeError{err: fmt.Errorf("call %s: %w", sub.m.Name, err)})
		}
		return results[0]
	}
}

// compileA compiles any expression to a boxed evaluator: whole arrays,
// records, strings, and scalars used as call arguments.
func (c *compiler) compileA(e ast.Expr) evalA {
	t := c.typeOf(e)
	switch t.Kind() {
	case types.RealKind:
		f := c.compileF(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		f := c.compileI(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	case types.BoolKind:
		f := c.compileB(e)
		return func(en *env, fr []int64) any { return f(en, fr) }
	}
	switch x := e.(type) {
	case *ast.Paren:
		return c.compileA(x.X)
	case *ast.StringLit:
		v := x.Value
		return func(*env, []int64) any { return v }
	case *ast.Ident:
		sym := c.m.Lookup(x.Name)
		if sym == nil || !sym.IsData() {
			c.failf("unknown name %s", x.Name)
		}
		si := c.cm.symIdx[sym]
		if types.Rank(sym.Type) > 0 {
			return func(en *env, fr []int64) any { return en.arrays[si] }
		}
		return func(en *env, fr []int64) any { return en.scalars[si] }
	case *ast.Field:
		return c.compileFieldAccess(x)
	case *ast.Index:
		si, subs, rank := c.compileIndexCommon(x)
		return func(en *env, fr []int64) any {
			var buf [maxRank]int64
			idx := buf[:rank]
			for i, f := range subs {
				idx[i] = f(en, fr)
			}
			return en.arrays[si].Get(idx)
		}
	case *ast.Call:
		return c.compileModuleCall(x)
	case *ast.IfExpr:
		arms := c.compileIfArms(x)
		thenF := make([]evalA, len(arms.thens))
		for i, a := range arms.thens {
			thenF[i] = c.compileA(a)
		}
		elseF := c.compileA(x.Else)
		conds := arms.conds
		return func(en *env, fr []int64) any {
			for i, cond := range conds {
				if cond(en, fr) {
					return thenF[i](en, fr)
				}
			}
			return elseF(en, fr)
		}
	}
	c.failf("cannot compile expression %s", ast.ExprString(e))
	return nil
}

func (c *compiler) scalarSlot(name string) int {
	sym := c.m.Lookup(name)
	if sym == nil || !sym.IsData() {
		c.failf("unknown name %s", name)
	}
	if types.Rank(sym.Type) > 0 {
		c.failf("array %s used as scalar", name)
	}
	return c.cm.symIdx[sym]
}
