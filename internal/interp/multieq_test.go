package interp_test

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sched"
	"repro/internal/value"
)

// runCoupled executes the CoupledGrid module under opts and returns newA.
func runCoupled(t *testing.T, ip *interp.Program, m, maxK int64, opts interp.Options) *value.Array {
	t.Helper()
	res, err := ip.Run("CoupledGrid", []any{grid(m), m, maxK}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res[0].(*value.Array)
}

// TestMultiKernelWavefrontParity runs the two-equation coupled
// recurrence — lowered to a single wavefront step with two kernels per
// plane point — under both wavefront schedules at several widths. All
// runs must be bitwise identical to the sequential reference and must
// execute exactly the same number of equation instances (the wavefront
// sweep visits exactly the original points, each running the whole
// group).
func TestMultiKernelWavefrontParity(t *testing.T) {
	ip := compileSrc(t, psrc.CoupledGrid)
	if !ip.Plan("CoupledGrid", plan.Options{Hyperplane: true}).HasWavefront() {
		t.Fatal("CoupledGrid did not lower to a wavefront plan")
	}
	const m, maxK = 13, 3
	var seqStats interp.Stats
	want := runCoupled(t, ip, m, maxK, interp.Options{Sequential: true, Stats: &seqStats})
	for _, tc := range []struct {
		name     string
		opts     interp.Options
		doacross bool
	}{
		{"BarrierPar2", interp.Options{Workers: 2, Schedule: sched.PolicyBarrier}, false},
		{"BarrierPar4", interp.Options{Workers: 4, Schedule: sched.PolicyBarrier}, false},
		{"DoacrossPar2", interp.Options{Workers: 2, Schedule: sched.PolicyDoacross}, true},
		{"DoacrossPar4Grain4", interp.Options{Workers: 4, Grain: 4, Schedule: sched.PolicyDoacross}, true},
		{"AutoPar4", interp.Options{Workers: 4}, false},
		{"StrictDoacrossPar2", interp.Options{Workers: 2, Strict: true, Schedule: sched.PolicyDoacross}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats interp.Stats
			tc.opts.Stats = &stats
			got := runCoupled(t, ip, m, maxK, tc.opts)
			if !reflect.DeepEqual(got.F, want.F) {
				t.Errorf("%s diverges from sequential reference", tc.name)
			}
			if got, want := stats.EqInstances.Load(), seqStats.EqInstances.Load(); got != want {
				t.Errorf("%s executed %d equation instances, sequential executed %d", tc.name, got, want)
			}
			if stats.Planes.Load() == 0 {
				t.Errorf("%s swept no hyperplanes", tc.name)
			}
			if tc.doacross && stats.Doacross.Tiles.Load() == 0 {
				t.Errorf("%s executed no doacross tiles", tc.name)
			}
		})
	}
}

// TestMultiKernelCalibration checks the wavefront grain calibrates over
// the combined kernel cost: the measured ns/point covers every kernel
// of the group, so the derived inline threshold stays within its clamp
// and the plan reports a positive per-point cost after one run.
func TestMultiKernelCalibration(t *testing.T) {
	ip := compileSrc(t, psrc.CoupledGrid)
	popts := plan.Options{Hyperplane: true}
	if _, cost := ip.WavefrontGrain("CoupledGrid", popts); cost != 0 {
		t.Fatalf("plan calibrated before any run: %d ns/point", cost)
	}
	// The barrier sweep calibrates from the first inline plane with at
	// least 8 candidate points (a 2-D doacross pipeline blocks its only
	// plane coordinate into single-point tiles, which the calibration's
	// noise guard skips).
	runCoupled(t, ip, 13, 3, interp.Options{Workers: 2, Schedule: sched.PolicyBarrier})
	grain, cost := ip.WavefrontGrain("CoupledGrid", popts)
	if cost <= 0 {
		t.Fatal("run did not calibrate the combined kernel cost")
	}
	if grain < 8 || grain > 4096 {
		t.Fatalf("calibrated grain %d outside [8, 4096]", grain)
	}
}
