package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/psrc"
	"repro/internal/types"
	"repro/internal/value"
)

// TestFusedExecutionEquals verifies that running the loop-fused schedule
// produces exactly the unfused results across the bundled workloads.
func TestFusedExecutionEquals(t *testing.T) {
	cases := []struct {
		name, src, module string
		args              func() []any
	}{
		{"Jacobi", psrc.Relaxation, "Relaxation", func() []any {
			return []any{grid(9), int64(9), int64(5)}
		}},
		{"GaussSeidel", psrc.RelaxationGS, "Relaxation", func() []any {
			return []any{grid(9), int64(9), int64(5)}
		}},
		{"Prefix", psrc.Prefix, "Prefix", func() []any {
			xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: 12}})
			for i := int64(1); i <= 12; i++ {
				xs.SetF([]int64{i}, float64(i%5))
			}
			return []any{xs, int64(12)}
		}},
		{"TwoPass", `
Two: module (Xs: array[I] of real; N: int): [Ys: array [I] of real; Zs: array [I] of real];
type I = 0 .. N;
define
    Ys[I] = Xs[I] * 2.0;
    Zs[I] = Ys[I] + 1.0;
end Two;
`, "Two", func() []any {
			xs := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: 20}})
			for i := int64(0); i <= 20; i++ {
				xs.SetF([]int64{i}, float64(i))
			}
			return []any{xs, int64(20)}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ip := compileSrc(t, tc.src)
			plain, err := ip.Run(tc.module, tc.args(), interp.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := ip.Run(tc.module, tc.args(), interp.Options{Workers: 2, Fuse: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range plain {
				pa, isArr := plain[i].(*value.Array)
				if !isArr {
					if plain[i] != fused[i] {
						t.Errorf("result %d: %v vs %v", i, plain[i], fused[i])
					}
					continue
				}
				if !pa.Equal(fused[i].(*value.Array)) {
					t.Errorf("result %d differs under fusion", i)
				}
			}
		})
	}
}
