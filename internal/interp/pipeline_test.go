package interp_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sched"
	"repro/internal/types"
	"repro/internal/value"
)

// seed builds an n×n input over [1,n]².
func seed(n int64) *value.Array {
	a := value.NewArray(types.RealKind, []value.Axis{{Lo: 1, Hi: n}, {Lo: 1, Hi: n}})
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a.SetF([]int64{i, j}, float64((i*7+j*3)%11)/10)
		}
	}
	return a
}

// TestPipelineParity runs the pipeline-lowered reflect workload across
// worker counts and toggles, comparing every run bitwise against the
// sequential reference and checking that the decoupled backend actually
// engaged (stages launched, same instance count).
func TestPipelineParity(t *testing.T) {
	ip := compileSrc(t, psrc.Reflect)
	pl := ip.Plan("Reflect", plan.Options{Hyperplane: true})
	if !pl.HasPipeline() {
		t.Fatalf("Reflect did not lower to a pipeline plan:\n%s", pl)
	}
	const n = 17
	args := []any{seed(n), int64(n)}
	var seqStats interp.Stats
	ref, err := ip.Run("Reflect", args, interp.Options{Sequential: true, Stats: &seqStats})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		opts    interp.Options
		coupled bool // expects the concurrent pipeline to engage
	}{
		{"Par2", interp.Options{Workers: 2}, true},
		{"Par4", interp.Options{Workers: 4}, true},
		{"Par8", interp.Options{Workers: 8}, true},
		{"StrictPar2", interp.Options{Workers: 2, Strict: true}, true},
		{"PipelineFirstPar4", interp.Options{Workers: 4, Schedule: sched.PolicyPipeline}, true},
		// One worker degenerates to the stage-ordered loop.
		{"Par1", interp.Options{Workers: 1}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats interp.Stats
			tc.opts.Stats = &stats
			got, err := ip.Run("Reflect", args, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if !reflect.DeepEqual(got[i].(*value.Array).F, ref[i].(*value.Array).F) {
					t.Errorf("result %d diverges from sequential reference", i)
				}
			}
			if got, want := stats.EqInstances.Load(), seqStats.EqInstances.Load(); got != want {
				t.Errorf("executed %d equation instances, sequential executed %d", got, want)
			}
			if engaged := stats.PipelineStages.Load() > 0; engaged != tc.coupled {
				t.Errorf("pipeline stages = %d, want engaged=%v", stats.PipelineStages.Load(), tc.coupled)
			}
			if tc.coupled && stats.PipelineStages.Load() != 3 {
				t.Errorf("pipeline stages = %d, want 3 (1 producer + 2 consumers)", stats.PipelineStages.Load())
			}
		})
	}
}

// TestPipelineFirstCascade pins the schedule-driven plan flip: mutual
// wavefronts under the auto cascade but decouples under PolicyPipeline,
// and both execute bitwise identically.
func TestPipelineFirstCascade(t *testing.T) {
	ip := compileSrc(t, psrc.Mutual)
	auto := ip.Plan("Mutual", plan.Options{Hyperplane: true})
	if !auto.HasWavefront() || auto.HasPipeline() {
		t.Fatalf("auto cascade did not wavefront the re-merged nest:\n%s", auto)
	}
	pf := ip.Plan("Mutual", plan.Options{Hyperplane: true, PipelineFirst: true})
	if !pf.HasPipeline() || pf.HasWavefront() {
		t.Fatalf("pipeline-first cascade did not decouple the nest:\n%s", pf)
	}
	// Mutual's arrays span [0, N+1]; build a matching seed.
	const n = 11
	s := value.NewArray(types.RealKind, []value.Axis{{Lo: 0, Hi: n}, {Lo: 0, Hi: n}})
	for i := int64(0); i <= n; i++ {
		for j := int64(0); j <= n; j++ {
			s.SetF([]int64{i, j}, float64((i*5+j*2)%13)/10)
		}
	}
	args := []any{s, int64(n - 1)}
	ref, err := ip.Run("Mutual", args, interp.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts interp.Options
	}{
		{"AutoPar4", interp.Options{Workers: 4}},
		{"PipelinePar2", interp.Options{Workers: 2, Schedule: sched.PolicyPipeline}},
		{"PipelinePar4", interp.Options{Workers: 4, Schedule: sched.PolicyPipeline}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats interp.Stats
			tc.opts.Stats = &stats
			got, err := ip.Run("Mutual", args, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if !reflect.DeepEqual(got[i].(*value.Array).F, ref[i].(*value.Array).F) {
					t.Errorf("result %d diverges from sequential reference", i)
				}
			}
			if tc.opts.Schedule == sched.PolicyPipeline && stats.PipelineStages.Load() == 0 {
				t.Error("pipeline-first run launched no stages")
			}
			if tc.opts.Schedule != sched.PolicyPipeline && stats.PipelineStages.Load() != 0 {
				t.Error("auto run launched pipeline stages for a wavefront plan")
			}
		})
	}
}

// TestPipelineCancellation checks a context cancelled mid-run aborts
// the decoupled pipeline and reports the context error.
func TestPipelineCancellation(t *testing.T) {
	ip := compileSrc(t, psrc.Reflect)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done: the run must refuse immediately
	_, err := ip.RunCtx(ctx, "Reflect", []any{seed(64), int64(64)}, interp.Options{Workers: 4})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
