package interp

import (
	"context"
	"fmt"
)

// RunBatchCtx executes the named module once per argument set in batch,
// as a single fused DOALL over a synthesized leading batch dimension:
// the batch index appears in no equation subscript, so every pair of
// batch elements is trivially independent under the paper's dependence
// test (the §5 fusion argument generalized to the batch axis), and the
// whole batch dispatches to the worker pool as one parallel loop — the
// same chunked claim machinery that serves collapsed DOALL steps.
// Plan lookup, bound-thunk tables and the one-shot wavefront grain
// calibration are shared across all elements, which is what makes
// batched serving cheaper than len(batch) independent activations.
//
// Each element runs with the semantics of an independent RunCtx call:
// results[i] and errs[i] mirror exactly what Run would return for
// batch[i] (bitwise identical results, same typed errors), and one
// failing element never poisons its neighbors. Inside the batch DOALL
// the per-element activations execute their inner loops sequentially —
// the batch axis carries all the parallelism, the coarsest possible
// grain — except for single-element batches, which keep full inner
// parallelism (a batch of one is just a run).
//
// The returned error is non-nil only for whole-batch failures: unknown
// module or a context that was already done; per-element failures are
// reported in errs. Cancellation mid-batch aborts in-flight elements
// (their errs wrap ctx.Err()) and marks unstarted elements with the
// same error.
func (p *Program) RunBatchCtx(ctx context.Context, name string, batch [][]any, opts Options) (results [][]any, errs []error, err error) {
	m := p.Prog.Module(name)
	if m == nil {
		return nil, nil, fmt.Errorf("interp: no module %s", name)
	}
	n := len(batch)
	if n == 0 {
		return nil, nil, nil
	}
	rs, cleanup, err := p.newRunState(ctx, opts)
	if err != nil {
		return nil, nil, &RunError{Module: m.Name, Err: err}
	}
	defer cleanup()
	cm := p.mods[m]
	results = make([][]any, n)
	errs = make([]error, n)

	if rs.pool == nil || n == 1 {
		// Sequential options or a singleton batch: run the elements on
		// the calling goroutine with inner parallelism intact. Results
		// are bitwise identical to the batch-DOALL path — every plan
		// variant computes the same values — so parity tests may compare
		// the two freely.
		for b := 0; b < n; b++ {
			if rs.cancelled() {
				errs[b] = &RunError{Module: m.Name, Err: rs.ctx.Err()}
				continue
			}
			results[b], errs[b] = p.runModule(rs, cm, batch[b], false, false)
		}
		return results, errs, nil
	}

	// The fused batch DOALL: one parallel loop over the synthesized
	// leading dimension b = 0..n-1. Grain 1 keeps elements individually
	// stealable; the pool still coalesces claims into chunks when the
	// batch is much wider than the worker count. Each element's
	// activation runs with inParallel set, exactly as it would inside
	// any other enclosing DOALL.
	completed := rs.pool.ForRangesOpts(rs.cancelChan(), 0, int64(n)-1, 1, func(start, end int64) {
		if rs.stats != nil {
			rs.stats.Chunks.Add(1)
		}
		for b := start; b <= end; b++ {
			results[b], errs[b] = p.runModule(rs, cm, batch[b], true, false)
		}
	})
	if !completed {
		cerr := rs.ctx.Err()
		for b := 0; b < n; b++ {
			if results[b] == nil && errs[b] == nil {
				errs[b] = &RunError{Module: m.Name, Err: cerr}
			}
		}
	}
	return results, errs, nil
}

// CompiledSize estimates the resident size in bytes of the compiled
// program: plan steps, kernel closures, bound thunks and symbol tables
// across every distinct plan variant of every module, plus a fixed
// per-module overhead. It is a stable, platform-independent accounting
// basis for cache eviction — not an exact heap measurement — so
// eviction order is deterministic across hosts.
func (p *Program) CompiledSize() int64 {
	const (
		moduleOverhead = 4096
		perStep        = 192
		perKernel      = 512
		perEq          = 256
		perBound       = 96
		perSym         = 128
	)
	var total int64
	for _, cm := range p.mods {
		total += moduleOverhead
		total += int64(len(cm.bounds)) * perBound
		total += int64(len(cm.syms)) * perSym
		seen := make(map[*compiledPlan]bool, 4)
		for fi := 0; fi < 2; fi++ {
			for hi := 0; hi < 2; hi++ {
				cp := cm.plans[fi][hi]
				if cp == nil || seen[cp] {
					continue
				}
				seen[cp] = true
				total += int64(len(cp.pl.Steps))*perStep +
					int64(len(cp.kernels))*perKernel +
					int64(len(cp.pl.Eqs))*perEq
			}
		}
	}
	return total
}
