package interp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/par"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Options control execution.
type Options struct {
	// Workers is the DOALL worker count; <= 0 uses all CPUs.
	Workers int
	// Sequential forces every loop — including DOALLs — to run serially
	// (the baseline an iterative-only scheduler would produce).
	Sequential bool
	// Strict enables single-assignment and undefined-read checking.
	Strict bool
	// NoVirtual disables window allocation, physically allocating every
	// dimension (the ablation baseline for §3.4).
	NoVirtual bool
	// Grain is the minimum iterations per parallel chunk.
	Grain int64
	// Fuse executes the loop-fusion variant of the schedule (the §5
	// "merge iterative loops" extension).
	Fuse bool
	// Pool, when non-nil, is a shared worker pool used for every DOALL of
	// the activation tree instead of spawning a pool per activation. The
	// run does not close it, and its worker count takes precedence over
	// Workers.
	Pool *par.Pool
	// Stats, when non-nil, accumulates execution counters for the run.
	Stats *Stats
}

// Stats accumulates per-run execution counters. The counters are updated
// atomically, so one Stats value may observe a run whose DOALLs execute
// on many workers; nested module calls accumulate into the same Stats.
type Stats struct {
	// EqInstances counts equation instances executed (one per evaluation
	// of one equation at one index point).
	EqInstances atomic.Int64
	// Chunks counts DOALL chunks dispatched to pool workers.
	Chunks atomic.Int64
}

// RunError describes a failure while executing a module: which module,
// which equation was in execution (when known), and the underlying
// cause. The cause is preserved for errors.Is/As — a cancelled run wraps
// context.Canceled or context.DeadlineExceeded.
type RunError struct {
	Module   string
	Equation string
	Err      error
}

// Error implements the error interface.
func (e *RunError) Error() string {
	if e.Equation != "" {
		return fmt.Sprintf("interp: module %s: %s: %v", e.Module, e.Equation, e.Err)
	}
	return fmt.Sprintf("interp: module %s: %v", e.Module, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *RunError) Unwrap() error { return e.Err }

// Program is a compiled, runnable PS program. It is immutable after
// Compile and safe for concurrent Run/RunCtx calls from many goroutines:
// every activation builds its own environment.
type Program struct {
	Prog   *sem.Program
	Scheds map[*sem.Module]*core.Schedule
	mods   map[*sem.Module]*compiledModule
}

// runtimeError wraps execution failures carried by panic across the
// evaluator (subscript errors, division by zero, strict violations,
// cancellation). eq is the label of the equation in execution when the
// failure was raised, filled in at the nearest point where it is known.
type runtimeError struct {
	err error
	eq  string
}

// Compile prepares every module of a checked program for execution,
// scheduling each module's dependency graph with the core scheduler.
func Compile(prog *sem.Program) (*Program, error) {
	p := &Program{
		Prog:   prog,
		Scheds: make(map[*sem.Module]*core.Schedule),
		mods:   make(map[*sem.Module]*compiledModule),
	}
	for _, m := range prog.Modules {
		if _, done := p.mods[m]; done {
			continue
		}
		if _, err := p.compileCallee(m); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// compileCallee schedules and compiles one module on demand.
func (p *Program) compileCallee(m *sem.Module) (*compiledModule, error) {
	g := depgraph.Build(m)
	sched, err := core.Build(g)
	if err != nil {
		return nil, err
	}
	p.Scheds[m] = sched
	return p.compileModule(m, sched)
}

// Schedule returns the flowchart computed for a module.
func (p *Program) Schedule(name string) *core.Schedule {
	m := p.Prog.Module(name)
	if m == nil {
		return nil
	}
	return p.Scheds[m]
}

// runState is the execution context shared by a root activation and
// every nested module call it makes: options, the worker pool, the
// cancellation signal and the statistics sink.
type runState struct {
	opts Options
	ctx  context.Context
	// canceled is set once ctx is done; nil when the context cannot be
	// cancelled. Loops poll this flag (a plain atomic load) instead of
	// calling ctx.Err() on hot paths.
	canceled *atomic.Bool
	stats    *Stats
	pool     *par.Pool
}

// cancelled reports whether the run's context has fired.
func (rs *runState) cancelled() bool { return rs.canceled != nil && rs.canceled.Load() }

// cancelChan returns the channel pool workers watch to stop claiming
// chunks, or nil when the run is not cancellable.
func (rs *runState) cancelChan() <-chan struct{} {
	if rs.canceled == nil {
		return nil
	}
	return rs.ctx.Done()
}

// env is the runtime state of one module activation.
type env struct {
	cm      *compiledModule
	scalars []any
	arrays  []*value.Array
	rs      *runState
	strict  bool
	// inParallel marks that an enclosing DOALL is already distributing
	// work, so nested DOALLs run sequentially within each worker.
	inParallel bool
	// eqCount counts equation instances executed through this env (or a
	// per-chunk copy of it); deltas are flushed into rs.stats.
	eqCount int64
	// curEq is the label of the equation currently executing, read when a
	// runtime failure needs attribution.
	curEq string
}

// Run executes the named module with the given arguments. Scalar
// arguments are Go ints/floats/bools; array arguments are *value.Array.
// It returns one value per declared result.
func (p *Program) Run(name string, args []any, opts Options) ([]any, error) {
	return p.RunCtx(context.Background(), name, args, opts)
}

// RunCtx is Run with a context: cancellation or deadline expiry aborts
// sequential loops within one iteration and in-flight DOALLs within one
// chunk, returning a *RunError wrapping ctx.Err().
func (p *Program) RunCtx(ctx context.Context, name string, args []any, opts Options) ([]any, error) {
	m := p.Prog.Module(name)
	if m == nil {
		return nil, fmt.Errorf("interp: no module %s", name)
	}
	rs := &runState{opts: opts, ctx: ctx, stats: opts.Stats}
	if ctx == nil {
		rs.ctx = context.Background()
	} else if err := ctx.Err(); err != nil {
		return nil, &RunError{Module: m.Name, Err: err}
	}
	if done := rs.ctx.Done(); done != nil {
		// One watcher goroutine flips the flag the loops poll, keeping
		// ctx.Err() calls off the per-iteration path.
		var flag atomic.Bool
		rs.canceled = &flag
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				flag.Store(true)
			case <-stop:
			}
		}()
	}
	if !opts.Sequential {
		if opts.Pool != nil {
			rs.pool = opts.Pool
		} else {
			// No shared pool injected: one persistent pool per activation
			// tree, so DOALL planes inside an iterative loop reuse parked
			// workers instead of spawning goroutines per plane.
			rs.pool = par.NewPool(opts.Workers)
			defer rs.pool.Close()
		}
	}
	return p.runModule(rs, p.mods[m], args, false)
}

func (p *Program) runModule(rs *runState, cm *compiledModule, args []any, inParallel bool) (results []any, err error) {
	var en *env
	defer func() {
		// Flush sequential instance counts whether the run completed,
		// failed or was cancelled: RunStats promises the counters
		// accumulated up to the abort.
		if rs.stats != nil && en != nil && en.eqCount != 0 {
			rs.stats.EqInstances.Add(en.eqCount)
			en.eqCount = 0
		}
		if r := recover(); r != nil {
			curEq := ""
			if en != nil {
				curEq = en.curEq
			}
			switch e := r.(type) {
			case runtimeError:
				if e.eq == "" {
					e.eq = curEq
				}
				err = &RunError{Module: cm.m.Name, Equation: e.eq, Err: e.err}
			case value.Error:
				err = &RunError{Module: cm.m.Name, Equation: curEq, Err: e}
			default:
				panic(r)
			}
		}
	}()
	m := cm.m
	if rs.cancelled() {
		return nil, &RunError{Module: m.Name, Err: rs.ctx.Err()}
	}
	if len(args) != len(m.Params) {
		return nil, &RunError{Module: m.Name, Err: fmt.Errorf("takes %d arguments, got %d", len(m.Params), len(args))}
	}
	opts := rs.opts
	en = &env{
		cm:         cm,
		scalars:    make([]any, len(cm.syms)),
		arrays:     make([]*value.Array, len(cm.syms)),
		rs:         rs,
		strict:     opts.Strict,
		inParallel: inParallel,
	}

	// Bind parameters.
	for i, sym := range m.Params {
		si := cm.symIdx[sym]
		v, cerr := coerceArg(args[i], sym.Type)
		if cerr != nil {
			return nil, &RunError{Module: m.Name, Err: fmt.Errorf("argument %d (%s): %w", i+1, sym.Name, cerr)}
		}
		if a, isArr := v.(*value.Array); isArr {
			en.arrays[si] = a
		} else {
			en.scalars[si] = v
		}
	}

	// Allocate result and local arrays, honoring virtual dimensions.
	windows := make(map[*sem.Symbol]map[int]int)
	if !opts.NoVirtual {
		for _, v := range cm.sched.Virtual {
			if windows[v.Sym] == nil {
				windows[v.Sym] = make(map[int]int)
			}
			windows[v.Sym][v.Dim] = v.Window
		}
	}
	fr := make([]int64, cm.nSlots)
	for _, sym := range append(append([]*sem.Symbol{}, m.Results...), m.Locals...) {
		si := cm.symIdx[sym]
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			continue
		}
		axes := make([]value.Axis, len(arr.Dims))
		for d, sr := range arr.Dims {
			b := cm.dimBounds[sr]
			axes[d] = value.Axis{Lo: b[0](en, fr), Hi: b[1](en, fr)}
			if w, ok := windows[sym][d]; ok {
				axes[d].Window = w
			}
		}
		a := value.NewArray(arr.Elem.Kind(), axes)
		if opts.Strict {
			a.EnableStrict()
		}
		en.arrays[si] = a
	}

	// Execute the flowchart (optionally the loop-fused variant).
	fc := cm.sched.Flowchart
	if opts.Fuse {
		fc = cm.fused
	}
	p.execFlowchart(en, fc, fr)
	if rs.cancelled() {
		return nil, &RunError{Module: m.Name, Err: rs.ctx.Err()}
	}

	// Collect results.
	results = make([]any, len(m.Results))
	for i, sym := range m.Results {
		si := cm.symIdx[sym]
		if en.arrays[si] != nil {
			results[i] = en.arrays[si]
		} else {
			results[i] = en.scalars[si]
		}
	}
	return results, nil
}

// coerceArg converts a Go argument to the runtime representation of t.
func coerceArg(v any, t types.Type) (any, error) {
	switch t.Kind() {
	case types.RealKind:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case types.BoolKind:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case types.StringKind:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case types.ArrayKind:
		if a, ok := v.(*value.Array); ok {
			if a.Rank() != types.Rank(t) {
				return nil, fmt.Errorf("array rank %d, want %d", a.Rank(), types.Rank(t))
			}
			return a, nil
		}
	case types.RecordKind:
		if r, ok := v.(*value.Record); ok {
			return r, nil
		}
	}
	return nil, fmt.Errorf("cannot use %T as %s", v, t)
}

// execFlowchart runs the descriptors in order at the current frame.
func (p *Program) execFlowchart(en *env, fc core.Flowchart, fr []int64) {
	for _, d := range fc {
		switch x := d.(type) {
		case *core.NodeDesc:
			if x.Node.Kind == depgraph.EquationNode {
				en.curEq = x.Node.Eq.Label
				en.eqCount++
				en.cm.eqs[x.Node.Eq].exec(en, fr)
			}
		case *core.LoopDesc:
			p.execLoop(en, x, fr)
		}
	}
}

func (p *Program) execLoop(en *env, loop *core.LoopDesc, fr []int64) {
	b := en.cm.dimBounds[loop.Subrange]
	lo, hi := b[0](en, fr), b[1](en, fr)
	slot := en.cm.slotOf[loop.Subrange]
	rs := en.rs

	parallel := loop.Parallel && rs.pool != nil && !en.inParallel &&
		rs.pool.Workers() != 1 && hi >= lo
	if !parallel {
		canceled := rs.canceled
		for i := lo; i <= hi; i++ {
			if canceled != nil && canceled.Load() {
				panic(runtimeError{err: rs.ctx.Err()})
			}
			fr[slot] = i
			p.execFlowchart(en, loop.Body, fr)
		}
		return
	}

	// DOALL: collapse a nest of directly nested parallel loops into one
	// linear iteration space, so a skinny outer DOALL (e.g. the plane of
	// a §4 wavefront schedule, whose outer parallel range can be much
	// shorter than the inner one) still yields enough chunks for every
	// worker. PS subrange bounds depend only on module parameters, so
	// inner bounds are loop-invariant.
	type pdim struct {
		slot int
		lo   int64
		n    int64
	}
	dims := []pdim{{slot: slot, lo: lo, n: hi - lo + 1}}
	body := loop.Body
	total := hi - lo + 1
	for len(body) == 1 {
		inner, ok := body[0].(*core.LoopDesc)
		if !ok || !inner.Parallel {
			break
		}
		b := en.cm.dimBounds[inner.Subrange]
		ilo, ihi := b[0](en, fr), b[1](en, fr)
		if ihi < ilo {
			return // empty inner range: no equation instances at all
		}
		dims = append(dims, pdim{slot: en.cm.slotOf[inner.Subrange], lo: ilo, n: ihi - ilo + 1})
		body = inner.Body
		total *= ihi - ilo + 1
	}

	// Each worker uses a private frame and runs any remaining nested
	// loops sequentially. The linear index decomposes with the innermost
	// dimension fastest, preserving row-major locality. Panics (runtime
	// failures in workers) are captured once and re-raised on the caller;
	// the pool stops claiming chunks when the run's context fires.
	var panicOnce sync.Once
	var panicked any
	base := en.eqCount
	completed := rs.pool.ForRangesOpts(rs.cancelChan(), 0, total-1, rs.opts.Grain, func(start, end int64) {
		sub := *en
		sub.inParallel = true
		defer func() {
			if rs.stats != nil {
				rs.stats.Chunks.Add(1)
				rs.stats.EqInstances.Add(sub.eqCount - base)
			}
			if r := recover(); r != nil {
				switch e := r.(type) {
				case runtimeError:
					if e.eq == "" {
						e.eq = sub.curEq
					}
					panicOnce.Do(func() { panicked = e })
				case value.Error:
					panicOnce.Do(func() { panicked = runtimeError{err: e, eq: sub.curEq} })
				default:
					panicOnce.Do(func() { panicked = r })
				}
			}
		}()
		frCopy := make([]int64, len(fr))
		copy(frCopy, fr)
		for li := start; li <= end; li++ {
			rem := li
			for d := len(dims) - 1; d >= 0; d-- {
				frCopy[dims[d].slot] = dims[d].lo + rem%dims[d].n
				rem /= dims[d].n
			}
			p.execFlowchart(&sub, body, frCopy)
		}
	})
	if panicked != nil {
		panic(panicked)
	}
	if !completed {
		panic(runtimeError{err: rs.ctx.Err()})
	}
}
