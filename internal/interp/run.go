package interp

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipe"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Options control execution.
type Options struct {
	// Workers is the DOALL worker count; <= 0 uses all CPUs.
	Workers int
	// Sequential forces every loop — including DOALLs — to run serially
	// (the baseline an iterative-only scheduler would produce).
	Sequential bool
	// Strict enables single-assignment and undefined-read checking.
	Strict bool
	// NoVirtual disables window allocation, physically allocating every
	// dimension (the ablation baseline for §3.4).
	NoVirtual bool
	// Grain is the minimum iterations per parallel chunk; under the
	// doacross wavefront schedule it also bounds the tile width on the
	// blocked plane coordinate.
	Grain int64
	// Fuse selects the loop-fused plan variant (the §5 "merge iterative
	// loops" extension), lowered once at compile time.
	Fuse bool
	// Hyperplane selects whether eligible sequential loop nests execute
	// the automatically §4-restructured (wavefront) plan variant. The
	// zero value is HyperplaneAuto: parallel runs use the wavefront
	// variant, sequential runs keep the untransformed nest (the sweep's
	// bounding box and guards only pay off when planes run on workers).
	// Selection deliberately ignores the effective worker count so the
	// variant a runner executes — and Explain reports — is deterministic
	// across hosts.
	Hyperplane HyperplaneMode
	// Schedule selects how wavefront steps execute on the pool: the
	// per-plane barrier sweep, the doacross tile pipeline, or (the zero
	// value) automatic per-activation selection — doacross when the
	// plane width per worker is small relative to the measured kernel
	// cost, where the barrier would dominate. Inert for sequential runs
	// and plans without wavefront steps.
	Schedule sched.Policy
	// Pool, when non-nil, is a shared worker pool used for every DOALL of
	// the activation tree instead of spawning a pool per activation. The
	// run does not close it, and its worker count takes precedence over
	// Workers.
	Pool *par.Pool
	// Stats, when non-nil, accumulates execution counters for the run.
	Stats *Stats
	// NoSpecialize disables the direct-kernel fast path, forcing every
	// span through the checked closure tree (the parity/ablation
	// baseline for kernel specialization).
	NoSpecialize bool
	// NoArena disables arena recycling of activation arrays; every
	// run allocates fresh zeroed backings (the allocation-trajectory
	// baseline).
	NoArena bool
	// Trace, when non-nil, records timestamped span events (activation,
	// chunks, planes, tiles, stages, stalls, ...) on per-worker rings as
	// the run executes. nil tracing costs one branch per emission site.
	Trace *obs.Recorder
	// ProfileLabels wraps dispatched work in runtime/pprof label sets
	// (ps_module, ps_step, ps_eqs) so CPU profiles attribute samples to
	// the source equations each worker was executing.
	ProfileLabels bool
}

// HyperplaneMode controls the automatic §4 restructuring of sequential
// loop nests.
type HyperplaneMode uint8

const (
	// HyperplaneAuto (the default) runs eligible nests as wavefront
	// sweeps whenever the run executes in parallel.
	HyperplaneAuto HyperplaneMode = iota
	// HyperplaneOff always runs the untransformed sequential nests.
	HyperplaneOff
)

// EffectiveHyperplane reports whether a run with these options executes
// the auto-hyperplane plan variant.
func (o *Options) EffectiveHyperplane() bool {
	return o.Hyperplane == HyperplaneAuto && !o.Sequential
}

// planMode selects the compiled plan variant column for these options:
// 0 (restructuring off), 1 (auto cascade) or 2 (pipeline-first cascade,
// the PolicyPipeline schedule). Sequential runs always take column 0 —
// the untransformed nests double as the parity reference.
func (o *Options) planMode() int {
	if !o.EffectiveHyperplane() {
		return 0
	}
	if o.Schedule == sched.PolicyPipeline {
		return 2
	}
	return 1
}

// Stats accumulates per-run execution counters. The counters are updated
// atomically, so one Stats value may observe a run whose DOALLs execute
// on many workers; nested module calls accumulate into the same Stats.
type Stats struct {
	// EqInstances counts equation instances executed (one per evaluation
	// of one equation at one index point).
	EqInstances atomic.Int64
	// Chunks counts DOALL chunks dispatched to pool workers, including
	// the chunks carved out of wavefront planes.
	Chunks atomic.Int64
	// Planes counts hyperplane launches of wavefront steps — one per
	// time step of every §4-restructured nest — so wavefront work stays
	// distinguishable from plain DOALL chunking.
	Planes atomic.Int64
	// Doacross accumulates the pipelined wavefront executor's counters:
	// tile instances, stalls (parked waits on predecessor tiles) and
	// steals. All zero when every wavefront ran the barrier schedule.
	Doacross sched.Stats
	// PipelineStages counts stages launched by PS-DSWP pipeline steps —
	// one per stage per decoupled pipeline activation — so pipelined
	// execution stays distinguishable from DOALL chunking and wavefront
	// planes. Zero when every pipeline step ran stage-ordered
	// (sequentially).
	PipelineStages atomic.Int64
	// PipelineStalls accumulates the pipeline runtime's blocking waits:
	// a stage starved on an empty input channel or backpressured on a
	// full output channel (internal/pipe).
	PipelineStalls atomic.Int64
	// Specialized counts equation instances executed through the
	// branch-free specialized kernel path (a subset of EqInstances);
	// the remainder ran the checked closure tree.
	Specialized atomic.Int64
	// ArenaReuses counts activation arrays whose backing was recycled
	// from the arena instead of freshly allocated.
	ArenaReuses atomic.Int64
}

// RunError describes a failure while executing a module: which module,
// which equation was in execution (when known), and the underlying
// cause. The cause is preserved for errors.Is/As — a cancelled run wraps
// context.Canceled or context.DeadlineExceeded.
type RunError struct {
	Module   string
	Equation string
	Err      error
}

// Error implements the error interface.
func (e *RunError) Error() string {
	if e.Equation != "" {
		return fmt.Sprintf("interp: module %s: %s: %v", e.Module, e.Equation, e.Err)
	}
	return fmt.Sprintf("interp: module %s: %v", e.Module, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *RunError) Unwrap() error { return e.Err }

// Program is a compiled, runnable PS program. It is immutable after
// Compile and safe for concurrent Run/RunCtx calls from many goroutines:
// every activation builds its own environment.
type Program struct {
	Prog   *sem.Program
	Scheds map[*sem.Module]*core.Schedule
	mods   map[*sem.Module]*compiledModule
	// arena recycles activation-array backings across runs (and across
	// concurrent runs; it is goroutine-safe). Strict-mode runs and
	// Options.NoArena bypass it.
	arena *value.Arena
}

// runtimeError wraps execution failures carried by panic across the
// evaluator (subscript errors, division by zero, strict violations,
// cancellation). eq is the label of the equation in execution when the
// failure was raised, filled in at the nearest point where it is known.
type runtimeError struct {
	err error
	eq  string
}

// Compile prepares every module of a checked program for execution:
// each module's dependency graph is scheduled with the core scheduler
// and the resulting flowchart is lowered once into the flat plan IR
// (base and fused variants) that Run executes.
func Compile(prog *sem.Program) (*Program, error) {
	p := &Program{
		Prog:   prog,
		Scheds: make(map[*sem.Module]*core.Schedule),
		mods:   make(map[*sem.Module]*compiledModule),
		arena:  &value.Arena{},
	}
	for _, m := range prog.Modules {
		if _, done := p.mods[m]; done {
			continue
		}
		if _, err := p.compileCallee(m); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// compileCallee schedules and compiles one module on demand.
func (p *Program) compileCallee(m *sem.Module) (*compiledModule, error) {
	g := depgraph.Build(m)
	sched, err := core.Build(g)
	if err != nil {
		return nil, err
	}
	p.Scheds[m] = sched
	return p.compileModule(m, sched)
}

// Schedule returns the flowchart computed for a module.
func (p *Program) Schedule(name string) *core.Schedule {
	m := p.Prog.Module(name)
	if m == nil {
		return nil
	}
	return p.Scheds[m]
}

// Plan returns the lowered loop program for a module in the requested
// variant (fusion × auto-hyperplane). It is nil for unknown modules.
func (p *Program) Plan(name string, opts plan.Options) *plan.Program {
	m := p.Prog.Module(name)
	if m == nil {
		return nil
	}
	cm := p.mods[m]
	if cm == nil {
		return nil
	}
	return cm.variant(opts.Fuse, planMode(opts)).pl
}

// runState is the execution context shared by a root activation and
// every nested module call it makes: options, the worker pool, the
// cancellation signal and the statistics sink.
type runState struct {
	opts Options
	ctx  context.Context
	// canceled is set once ctx is done; nil when the context cannot be
	// cancelled. Loops poll this flag (a plain atomic load) instead of
	// calling ctx.Err() on hot paths.
	canceled *atomic.Bool
	stats    *Stats
	pool     *par.Pool
	// rec is the run's event recorder (Options.Trace); nil disables
	// tracing. labels mirrors Options.ProfileLabels.
	rec    *obs.Recorder
	labels bool
}

// cancelled reports whether the run's context has fired.
func (rs *runState) cancelled() bool { return rs.canceled != nil && rs.canceled.Load() }

// cancelChan returns the channel pool workers watch to stop claiming
// chunks, or nil when the run is not cancellable.
func (rs *runState) cancelChan() <-chan struct{} {
	if rs.canceled == nil {
		return nil
	}
	return rs.ctx.Done()
}

// env is the runtime state of one module activation.
type env struct {
	cm *compiledModule
	// cp is the plan variant this activation executes (base or fused).
	cp      *compiledPlan
	scalars []any
	arrays  []*value.Array
	// bounds holds each subrange's lo/hi for this activation, indexed by
	// frame slot; evaluated once at activation entry (PS bounds depend
	// only on module scalars), so loops never re-evaluate bound thunks.
	bounds [][2]int64
	rs     *runState
	strict bool
	// inParallel marks that an enclosing DOALL is already distributing
	// work, so nested DOALLs run sequentially within each worker.
	inParallel bool
	// eqCount counts equation instances executed through this env (or a
	// per-chunk copy of it); deltas are flushed into rs.stats.
	eqCount int64
	// specCount counts the subset of eqCount that ran the specialized
	// branch-free kernel path.
	specCount int64
	// noSpec forces every span through the checked kernel
	// (Options.NoSpecialize).
	noSpec bool
	// curEq is the kernel index of the equation currently executing
	// (an index into cp.pl.Eqs), or -1; read when a runtime failure
	// needs attribution.
	curEq int32
	// ring is the event ring this env (activation goroutine or worker
	// chunk) emits trace spans on; nil when tracing is off. Every
	// worker-state copy of an env resets it — rings are single-writer.
	ring *obs.Ring
	// inSpan marks that an enclosing compute span (sequential DOALL,
	// inline plane, stage-ordered sweep) is already open on ring, so
	// nested sequential steps — and nested module calls — must not emit
	// their own: overlapping spans would double-count the breakdown.
	inSpan bool
}

// eqLabel resolves the executing equation's label for error reports.
func (en *env) eqLabel() string {
	if en.curEq >= 0 {
		return en.cp.pl.Eqs[en.curEq].Label
	}
	return ""
}

// workerState is pooled per-chunk execution state: a private env copy
// and index frame reused across DOALL dispatches instead of allocated
// per chunk.
type workerState struct {
	en env
	fr []int64
}

// Run executes the named module with the given arguments. Scalar
// arguments are Go ints/floats/bools; array arguments are *value.Array.
// It returns one value per declared result.
func (p *Program) Run(name string, args []any, opts Options) ([]any, error) {
	return p.RunCtx(context.Background(), name, args, opts)
}

// RunCtx is Run with a context: cancellation or deadline expiry aborts
// sequential loops within one iteration and in-flight DOALLs within one
// chunk, returning a *RunError wrapping ctx.Err().
func (p *Program) RunCtx(ctx context.Context, name string, args []any, opts Options) ([]any, error) {
	m := p.Prog.Module(name)
	if m == nil {
		return nil, fmt.Errorf("interp: no module %s", name)
	}
	rs, cleanup, err := p.newRunState(ctx, opts)
	if err != nil {
		return nil, &RunError{Module: m.Name, Err: err}
	}
	defer cleanup()
	return p.runModule(rs, p.mods[m], args, false, false)
}

// newRunState builds the shared execution context of one activation (or
// one batch of activations): the resolved context, the cancellation
// flag watcher, and the worker pool. The returned cleanup stops the
// watcher and closes a run-owned pool; call it when the run completes.
// A context that is already done is reported as an error before any
// state is created.
func (p *Program) newRunState(ctx context.Context, opts Options) (*runState, func(), error) {
	rs := &runState{opts: opts, ctx: ctx, stats: opts.Stats, rec: opts.Trace, labels: opts.ProfileLabels}
	if ctx == nil {
		rs.ctx = context.Background()
	} else if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	cleanups := make([]func(), 0, 2)
	if done := rs.ctx.Done(); done != nil {
		// One watcher goroutine flips the flag the loops poll, keeping
		// ctx.Err() calls off the per-iteration path.
		var flag atomic.Bool
		rs.canceled = &flag
		stop := make(chan struct{})
		cleanups = append(cleanups, func() { close(stop) })
		go func() {
			select {
			case <-done:
				flag.Store(true)
			case <-stop:
			}
		}()
	}
	if !opts.Sequential {
		if opts.Pool != nil {
			rs.pool = opts.Pool
		} else {
			// No shared pool injected: one persistent pool per activation
			// tree, so DOALL planes inside an iterative loop reuse parked
			// workers instead of spawning goroutines per plane.
			rs.pool = par.NewPool(opts.Workers)
			cleanups = append(cleanups, rs.pool.Close)
		}
	}
	return rs, func() {
		for _, f := range cleanups {
			f()
		}
	}, nil
}

// runModule executes one activation. covered marks a nested call whose
// caller is already inside a traced compute span (a worker chunk, tile,
// stage body or sequential span): the activation then emits no spans of
// its own — the enclosing span accounts its time.
func (p *Program) runModule(rs *runState, cm *compiledModule, args []any, inParallel, covered bool) (results []any, err error) {
	var en *env
	defer func() {
		// Flush sequential instance counts whether the run completed,
		// failed or was cancelled: RunStats promises the counters
		// accumulated up to the abort.
		if rs.stats != nil && en != nil {
			if en.eqCount != 0 {
				rs.stats.EqInstances.Add(en.eqCount)
				en.eqCount = 0
			}
			if en.specCount != 0 {
				rs.stats.Specialized.Add(en.specCount)
				en.specCount = 0
			}
		}
		if r := recover(); r != nil {
			curEq := ""
			if en != nil {
				curEq = en.eqLabel()
			}
			switch e := r.(type) {
			case runtimeError:
				if e.eq == "" {
					e.eq = curEq
				}
				err = &RunError{Module: cm.m.Name, Equation: e.eq, Err: e.err}
			case value.Error:
				err = &RunError{Module: cm.m.Name, Equation: curEq, Err: e}
			default:
				panic(r)
			}
		}
	}()
	m := cm.m
	if rs.cancelled() {
		return nil, &RunError{Module: m.Name, Err: rs.ctx.Err()}
	}
	if len(args) != len(m.Params) {
		return nil, &RunError{Module: m.Name, Err: fmt.Errorf("takes %d arguments, got %d", len(m.Params), len(args))}
	}
	opts := rs.opts
	en = &env{
		cm:         cm,
		cp:         cm.variant(opts.Fuse, opts.planMode()),
		scalars:    make([]any, len(cm.syms)),
		arrays:     make([]*value.Array, len(cm.syms)),
		rs:         rs,
		strict:     opts.Strict,
		noSpec:     opts.NoSpecialize,
		inParallel: inParallel,
		curEq:      -1,
	}
	if rs.rec != nil && !covered {
		ring := rs.rec.Acquire()
		en.ring = ring
		actStart := ring.Now()
		defer func() {
			ring.Emit(obs.KActivation, actStart, ring.Now()-actStart, 0, 0)
			rs.rec.Release(ring)
		}()
	}

	// Bind parameters.
	for i, sym := range m.Params {
		si := cm.symIdx[sym]
		v, cerr := coerceArg(args[i], sym.Type)
		if cerr != nil {
			return nil, &RunError{Module: m.Name, Err: fmt.Errorf("argument %d (%s): %w", i+1, sym.Name, cerr)}
		}
		if a, isArr := v.(*value.Array); isArr {
			en.arrays[si] = a
		} else {
			en.scalars[si] = v
		}
	}

	// Evaluate every subrange bound once for this activation: loops and
	// array allocations below read the resolved values by frame slot.
	fr := make([]int64, cm.nSlots)
	en.bounds = make([][2]int64, cm.nSlots)
	for i, b := range cm.bounds {
		en.bounds[i] = [2]int64{b[0](en, fr), b[1](en, fr)}
	}

	// Allocate result and local arrays from the plan variant's
	// precomputed descriptors, honoring virtual dimensions unless
	// ablated. Non-strict runs draw backings from the program arena,
	// zeroing recycled storage only when the write-coverage analysis
	// could not prove every element is defined before being read.
	arena := p.arena
	if opts.Strict || opts.NoArena {
		arena = nil
	}
	// One axes block serves every array of the activation: each array
	// gets a full-capped sub-slice, so the per-array descriptor
	// allocations collapse into a single make.
	nAxes := 0
	for _, al := range en.cp.allocs {
		nAxes += len(al.dims)
	}
	axesBuf := make([]value.Axis, nAxes)
	for _, al := range en.cp.allocs {
		axes := axesBuf[:len(al.dims):len(al.dims)]
		axesBuf = axesBuf[len(al.dims):]
		for d, ad := range al.dims {
			b := en.bounds[ad.slot]
			axes[d] = value.Axis{Lo: b[0], Hi: b[1]}
			if ad.window > 0 && !opts.NoVirtual {
				axes[d].Window = ad.window
			}
		}
		a, reused := arena.NewArrayIn(al.elem, axes, al.zero)
		if reused {
			if rs.stats != nil {
				rs.stats.ArenaReuses.Add(1)
			}
			if en.ring != nil {
				en.ring.Emit(obs.KArenaReuse, en.ring.Now(), 0, int64(al.si), 0)
			}
		}
		if opts.Strict {
			a.EnableStrict()
		}
		en.arrays[al.si] = a
	}

	// Execute the plan.
	if rs.labels {
		pprof.Do(rs.ctx, pprof.Labels("ps_module", m.Name), func(context.Context) {
			p.execSteps(en, fr, 0, len(en.cp.pl.Steps))
		})
	} else {
		p.execSteps(en, fr, 0, len(en.cp.pl.Steps))
	}
	if rs.cancelled() {
		return nil, &RunError{Module: m.Name, Err: rs.ctx.Err()}
	}

	// Collect results.
	results = make([]any, len(m.Results))
	for i, sym := range m.Results {
		si := cm.symIdx[sym]
		if en.arrays[si] != nil {
			results[i] = en.arrays[si]
		} else {
			results[i] = en.scalars[si]
		}
	}
	// Local arrays die with the activation: recycle their backings.
	// (A local slot holding a callee's result array is still the only
	// live reference — callee results transfer ownership.) Results are
	// never released here; their owner is the caller.
	if arena != nil {
		for _, al := range en.cp.allocs {
			if al.local {
				arena.Release(en.arrays[al.si])
			}
		}
	}
	return results, nil
}

// coerceArg converts a Go argument to the runtime representation of t.
func coerceArg(v any, t types.Type) (any, error) {
	switch t.Kind() {
	case types.RealKind:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case types.BoolKind:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case types.StringKind:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case types.ArrayKind:
		if a, ok := v.(*value.Array); ok {
			if a.Rank() != types.Rank(t) {
				return nil, fmt.Errorf("array rank %d, want %d", a.Rank(), types.Rank(t))
			}
			return a, nil
		}
	case types.RecordKind:
		if r, ok := v.(*value.Record); ok {
			return r, nil
		}
	}
	return nil, fmt.Errorf("cannot use %T as %s", v, t)
}

// execSteps runs the plan instructions [lo, hi) at the current frame.
// This is the per-iteration hot path: dispatch is a switch on a plan
// opcode, bounds are slot-indexed slice reads and kernels are direct
// slice-indexed calls — no map lookups, no flowchart descriptors.
func (p *Program) execSteps(en *env, fr []int64, lo, hi int) {
	steps := en.cp.pl.Steps
	kernels := en.cp.kernels
	for i := lo; i < hi; {
		st := &steps[i]
		switch st.Op {
		case plan.OpEq:
			en.curEq = int32(st.Eq)
			en.eqCount++
			kernels[st.Eq](en, fr)
			i++
		case plan.OpDo:
			slot := st.Dims[0]
			b := en.bounds[slot]
			canceled := en.rs.canceled
			for v := b[0]; v <= b[1]; v++ {
				if canceled != nil && canceled.Load() {
					panic(runtimeError{err: en.rs.ctx.Err()})
				}
				fr[slot] = v
				p.execSteps(en, fr, i+1, st.End)
			}
			i = st.End
		case plan.OpWavefront:
			p.execWavefront(en, fr, st, i+1)
			i = st.End
		case plan.OpPipeline:
			p.execPipeline(en, fr, st)
			i = st.End
		default: // plan.OpDoAll
			p.execDoAll(en, fr, st, i+1)
			i = st.End
		}
	}
}

// unitDir is the span direction of a DOALL row: the innermost collapsed
// dimension advances by one per point. Read-only.
var unitDir = []int64{1}

// execDoAll runs one (pre-collapsed) DOALL step: the plan has already
// flattened directly nested parallel loops into one linear iteration
// space, so execution only resolves bounds and dispatches chunks.
func (p *Program) execDoAll(en *env, fr []int64, st *plan.Step, bodyLo int) {
	rs := en.rs
	var lob, hib [plan.MaxCollapse]int64
	ndim := len(st.Dims)
	total := int64(1)
	for d, slot := range st.Dims {
		b := en.bounds[slot]
		if b[1] < b[0] {
			return // empty dimension: no equation instances at all
		}
		lob[d], hib[d] = b[0], b[1]
		total *= b[1] - b[0] + 1
	}
	bodyHi := st.End

	if rs.pool == nil || en.inParallel || rs.pool.Workers() == 1 {
		// Sequential execution of the collapsed nest: walk the linear
		// space odometer-style, innermost dimension fastest. The step is
		// recorded as one KDoAll span — only on the activation's own
		// ring: inside a parallel chunk (or an already-open sequential
		// span) the enclosing span already covers this work.
		ring := en.ring
		if en.inParallel || en.inSpan {
			ring = nil
		}
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
			en.inSpan = true
		}
		for d := 0; d < ndim; d++ {
			fr[st.Dims[d]] = lob[d]
		}
		canceled := rs.canceled
		if st.Leaf {
			// Leaf fast path: the body is equation steps only, so hand
			// each kernel a full innermost row as one span (specialized
			// kernels advance the flat offset incrementally; the generic
			// wrapper walks point-by-point — behavior unchanged).
			rowLen := hib[ndim-1] - lob[ndim-1] + 1
			rowSlots := st.Dims[ndim-1:]
			steps := en.cp.pl.Steps
			spans := en.cp.spans
			for c := int64(0); c < total; c += rowLen {
				if canceled != nil && canceled.Load() {
					panic(runtimeError{err: rs.ctx.Err()})
				}
				for k := bodyLo; k < bodyHi; k++ {
					eqi := steps[k].Eq
					en.curEq = int32(eqi)
					spans[eqi].fn(en, fr, rowSlots, unitDir, rowLen)
				}
				// The span restored the innermost coordinate; jump it to
				// the row end so advance carries into the outer dims.
				fr[st.Dims[ndim-1]] = hib[ndim-1]
				advance(fr, st.Dims, &lob, &hib)
			}
			if ring != nil {
				en.inSpan = false
				ring.Emit(obs.KDoAll, t0, ring.Now()-t0, total, 0)
			}
			return
		}
		for c := int64(0); c < total; c++ {
			if canceled != nil && canceled.Load() {
				panic(runtimeError{err: rs.ctx.Err()})
			}
			p.execSteps(en, fr, bodyLo, bodyHi)
			advance(fr, st.Dims, &lob, &hib)
		}
		if ring != nil {
			en.inSpan = false
			ring.Emit(obs.KDoAll, t0, ring.Now()-t0, total, 0)
		}
		return
	}

	// Parallel dispatch. Each chunk borrows pooled worker state (env +
	// frame) instead of allocating, decomposes its start index once, and
	// advances the frame odometer-style — no div/mod per iteration.
	// Panics (runtime failures in workers) are captured once and
	// re-raised on the caller; the pool stops claiming chunks when the
	// run's context fires.
	var panicOnce sync.Once
	var panicked any
	cm := en.cm
	leaf := st.Leaf
	work := func(start, end int64) {
		ws, _ := cm.ws.Get().(*workerState)
		if ws == nil {
			ws = &workerState{}
		}
		if cap(ws.fr) < len(fr) {
			ws.fr = make([]int64, len(fr))
		}
		wfr := ws.fr[:len(fr)]
		copy(wfr, fr)
		ws.en = *en
		sub := &ws.en
		sub.inParallel = true
		sub.eqCount = 0
		sub.specCount = 0
		// The env copy aliased the caller's ring; a chunk emits on its
		// own exclusively-owned ring (or none).
		sub.ring = nil
		var t0 int64
		if rs.rec != nil {
			sub.ring = rs.rec.Acquire()
			t0 = sub.ring.Now()
		}
		defer func() {
			if rs.stats != nil {
				rs.stats.Chunks.Add(1)
				rs.stats.EqInstances.Add(sub.eqCount)
				rs.stats.Specialized.Add(sub.specCount)
			}
			if sub.ring != nil {
				sub.ring.Emit(obs.KChunk, t0, sub.ring.Now()-t0, end-start+1, 0)
				rs.rec.Release(sub.ring)
			}
			if r := recover(); r != nil {
				switch e := r.(type) {
				case runtimeError:
					if e.eq == "" {
						e.eq = sub.eqLabel()
					}
					panicOnce.Do(func() { panicked = e })
				case value.Error:
					panicOnce.Do(func() { panicked = runtimeError{err: e, eq: sub.eqLabel()} })
				default:
					panicOnce.Do(func() { panicked = r })
				}
			}
			cm.ws.Put(ws)
		}()
		rem := start
		for d := ndim - 1; d >= 0; d-- {
			n := hib[d] - lob[d] + 1
			wfr[st.Dims[d]] = lob[d] + rem%n
			rem /= n
		}
		if leaf {
			// Leaf fast path: the body is equation steps only, so hand
			// the kernels row spans clipped to this chunk instead of
			// re-entering the step dispatcher per point.
			steps := sub.cp.pl.Steps
			spans := sub.cp.spans
			innerSlot := st.Dims[ndim-1]
			rowSlots := st.Dims[ndim-1:]
			for li := start; ; {
				seg := hib[ndim-1] - wfr[innerSlot] + 1
				if li+seg-1 > end {
					seg = end - li + 1
				}
				for k := bodyLo; k < bodyHi; k++ {
					eqi := steps[k].Eq
					sub.curEq = int32(eqi)
					spans[eqi].fn(sub, wfr, rowSlots, unitDir, seg)
				}
				li += seg
				if li > end {
					break
				}
				wfr[innerSlot] += seg - 1
				advance(wfr, st.Dims, &lob, &hib)
			}
			return
		}
		for li := start; ; li++ {
			p.execSteps(sub, wfr, bodyLo, bodyHi)
			if li == end {
				break
			}
			advance(wfr, st.Dims, &lob, &hib)
		}
	}
	if rs.labels {
		work = labeled(rs, work, pprof.Labels(
			"ps_module", cm.m.Name, "ps_step", "doall", "ps_eqs", stepEqs(en.cp, bodyLo, bodyHi)))
	}
	completed := rs.pool.ForRangesOpts(rs.cancelChan(), 0, total-1, rs.opts.Grain, work)
	if panicked != nil {
		panic(panicked)
	}
	if !completed {
		panic(runtimeError{err: rs.ctx.Err()})
	}
}

// labeled wraps a chunk function in a pprof label set so CPU samples
// taken while the chunk runs carry the executing module/step/equations.
func labeled(rs *runState, work func(start, end int64), lbls pprof.LabelSet) func(start, end int64) {
	return func(start, end int64) {
		pprof.Do(rs.ctx, lbls, func(context.Context) { work(start, end) })
	}
}

// stepEqs joins the labels of the equation steps in [lo, hi) — the
// ps_eqs pprof label value.
func stepEqs(cp *compiledPlan, lo, hi int) string {
	var sb strings.Builder
	for i := lo; i < hi; i++ {
		if cp.pl.Steps[i].Op != plan.OpEq {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(cp.pl.Eqs[cp.pl.Steps[i].Eq].Label)
	}
	return sb.String()
}

// eqsLabel joins the labels of the given kernel indices — the ps_eqs
// value for wavefront bodies, which carry their equations as indices.
func eqsLabel(cp *compiledPlan, eqis []int) string {
	var sb strings.Builder
	for _, eqi := range eqis {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(cp.pl.Eqs[eqi].Label)
	}
	return sb.String()
}

// errPipelineAbort is the sentinel a pipeline stage body returns after
// recording a panic; only the recorded panic is reported.
var errPipelineAbort = errors.New("interp: pipeline stage failed")

// execPipeline runs one PS-DSWP decoupled step: the streamed
// dimension's iterations are tokens flowing through the stage DAG of
// st.Pipe over bounded channels (internal/pipe). The sequential
// producer stage processes every token in ascending order on one
// goroutine; parallel consumer stages replicate across the worker
// count. Stage bodies execute the same kernels at the same frames as
// the untransformed plan — a stage runs token t only after every
// upstream stage finished it, which satisfies all cross-stage reads —
// so results are bitwise identical to the sequential reference.
// Sequential activations (and nested-parallel ones) degenerate to
// running the stages in order, which is exactly the original loop
// sequence the stages were carved from.
func (p *Program) execPipeline(en *env, fr []int64, st *plan.Step) {
	rs := en.rs
	pi := st.Pipe
	slot := pi.Stream
	b := en.bounds[slot]
	tokens := b[1] - b[0] + 1
	if tokens <= 0 {
		return
	}
	if rs.pool == nil || en.inParallel || rs.pool.Workers() == 1 || tokens == 1 {
		canceled := rs.canceled
		ring := en.ring
		if en.inParallel || en.inSpan {
			ring = nil // the enclosing span already covers this work
		}
		for k := range pi.Stages {
			sg := &pi.Stages[k]
			var t0 int64
			if ring != nil {
				t0 = ring.Now()
				en.inSpan = true
			}
			for v := b[0]; v <= b[1]; v++ {
				if canceled != nil && canceled.Load() {
					panic(runtimeError{err: rs.ctx.Err()})
				}
				fr[slot] = v
				p.execSteps(en, fr, sg.First, sg.End)
			}
			if ring != nil {
				// One span per stage-ordered sweep; token -1 marks the
				// degenerate (sequential) execution of all tokens.
				en.inSpan = false
				ring.Emit(obs.KStage, t0, ring.Now()-t0, int64(k), -1)
			}
		}
		return
	}

	if rs.stats != nil {
		rs.stats.PipelineStages.Add(int64(len(pi.Stages)))
	}
	stages := make([]pipe.Stage, len(pi.Stages))
	for k, sg := range pi.Stages {
		deps := make([]pipe.Dep, len(sg.Deps))
		for di, d := range sg.Deps {
			deps[di] = pipe.Dep{Stage: d.Stage, Window: int(d.Dist) + 1}
		}
		stages[k] = pipe.Stage{Parallel: sg.Parallel, Deps: deps}
	}

	// Every body invocation borrows pooled worker state (env + frame)
	// like a DOALL chunk: one token is a full sweep of the stage's
	// remaining dimensions, so the pool round-trip amortizes. Panics are
	// recorded once and re-raised after every stage goroutine stopped.
	var panicOnce sync.Once
	var panicked any
	cm := en.cm
	var stageLbls []pprof.LabelSet
	if rs.labels {
		stageLbls = make([]pprof.LabelSet, len(pi.Stages))
		for k, sg := range pi.Stages {
			stageLbls[k] = pprof.Labels("ps_module", cm.m.Name,
				"ps_step", "pipeline", "ps_eqs", stepEqs(en.cp, sg.First, sg.End))
		}
	}
	var pstats pipe.Stats
	err := pipe.Run(stages, tokens, rs.pool.Workers(), rs.cancelChan(), func(stage, _ int, token int64) (err error) {
		ws, _ := cm.ws.Get().(*workerState)
		if ws == nil {
			ws = &workerState{}
		}
		if cap(ws.fr) < len(fr) {
			ws.fr = make([]int64, len(fr))
		}
		wfr := ws.fr[:len(fr)]
		copy(wfr, fr)
		ws.en = *en
		sub := &ws.en
		sub.inParallel = true
		sub.ring = nil // pipe.Run records the stage span on its own ring
		sub.eqCount = 0
		sub.specCount = 0
		defer func() {
			if rs.stats != nil {
				rs.stats.EqInstances.Add(sub.eqCount)
				rs.stats.Specialized.Add(sub.specCount)
			}
			if r := recover(); r != nil {
				switch e := r.(type) {
				case runtimeError:
					if e.eq == "" {
						e.eq = sub.eqLabel()
					}
					panicOnce.Do(func() { panicked = e })
				case value.Error:
					panicOnce.Do(func() { panicked = runtimeError{err: e, eq: sub.eqLabel()} })
				default:
					panicOnce.Do(func() { panicked = r })
				}
				err = errPipelineAbort
			}
			cm.ws.Put(ws)
		}()
		sg := &pi.Stages[stage]
		wfr[slot] = b[0] + token
		if stageLbls != nil {
			pprof.Do(rs.ctx, stageLbls[stage], func(context.Context) {
				p.execSteps(sub, wfr, sg.First, sg.End)
			})
		} else {
			p.execSteps(sub, wfr, sg.First, sg.End)
		}
		return nil
	}, &pstats, rs.rec)
	if rs.stats != nil {
		rs.stats.PipelineStalls.Add(pstats.Stalls.Load())
	}
	if panicked != nil {
		panic(panicked)
	}
	if err != nil {
		// Only cancellation reaches here: body failures travel through
		// the recorded panic above.
		cerr := rs.ctx.Err()
		if cerr == nil {
			cerr = err
		}
		panic(runtimeError{err: cerr})
	}
}

// wfSpace is the resolved geometry of one wavefront activation: the
// original iteration box, the interval bounds of every transformed
// coordinate over it, and the π-term sums used for per-plane
// tightening of basis coordinates. Both wavefront executors — the
// barrier sweep and the doacross pipeline — work from the same space,
// which is why they are bitwise identical.
type wfSpace struct {
	st *plan.Step
	hy *plan.Hyper
	n  int
	// eqis are the kernel indices of the step's body equations in group
	// order; every in-box plane point runs all of them, so in-plane
	// zero-distance dependences between group equations are satisfied by
	// execution order. Singleton nests have exactly one.
	eqis []int
	// lo, hi is the original iteration box.
	lo, hi [plan.MaxCollapse]int64
	// tlo, thi bounds each transformed coordinate row_r(T)·x over the
	// box; row 0 is the time axis.
	tlo, thi [plan.MaxCollapse]int64
	// piLoSum, piHiSum bound Σ π_j·x_j over the box (π non-negative).
	piLoSum, piHiSum int64
	// row is the plane coordinate kernels sweep as spans: the basis
	// coordinate of the innermost original dimension when one exists
	// (unit array stride, so specialized kernels advance flat offsets
	// by ±1), else the last plane coordinate.
	row int
	// ord lists the remaining plane coordinates in increasing order;
	// the plane's linear index is decomposed ord-major, row fastest.
	ord []int
	// dcol is T⁻¹'s column for row: the per-point motion of every
	// original coordinate along a row span.
	dcol []int64
}

// resolve fills the space from the activation's bounds; false means
// some dimension is empty and the nest has no iterations.
func (w *wfSpace) resolve(en *env, st *plan.Step, bodyLo int) bool {
	w.st, w.hy = st, st.Hyper
	w.n = len(st.Dims)
	// The body is equation steps only (tryWavefront guarantees it), so
	// points invoke the kernels directly instead of re-entering the step
	// dispatcher — the wavefront analogue of the DOALL leaf fast path.
	w.eqis = w.eqis[:0]
	for b := bodyLo; b < st.End; b++ {
		w.eqis = append(w.eqis, en.cp.pl.Steps[b].Eq)
	}
	for j, slot := range st.Dims {
		b := en.bounds[slot]
		if b[1] < b[0] {
			return false
		}
		w.lo[j], w.hi[j] = b[0], b[1]
	}
	for r := 0; r < w.n; r++ {
		for j, c := range w.hy.T[r] {
			if c >= 0 {
				w.tlo[r] += c * w.lo[j]
				w.thi[r] += c * w.hi[j]
			} else {
				w.tlo[r] += c * w.hi[j]
				w.thi[r] += c * w.lo[j]
			}
		}
	}
	for j := 0; j < w.n; j++ {
		w.piLoSum += w.hy.Pi[j] * w.lo[j]
		w.piHiSum += w.hy.Pi[j] * w.hi[j]
	}
	w.row = w.n - 1
	bestJ := -1
	for r := 1; r < w.n; r++ {
		if j := w.hy.Basis[r]; j > bestJ {
			bestJ = j
			w.row = r
		}
	}
	w.ord = w.ord[:0]
	for r := 1; r < w.n; r++ {
		if r != w.row {
			w.ord = append(w.ord, r)
		}
	}
	w.dcol = w.dcol[:0]
	for j := 0; j < w.n; j++ {
		w.dcol = append(w.dcol, w.hy.TInv[j][w.row])
	}
	return true
}

// points converts an executed-instance count back into plane points:
// every in-box point runs all group kernels, so the combined kernel
// cost per point — what the grain calibration needs, since thresholds
// are in points per plane — is elapsed / (instances / len(eqis)).
func (w *wfSpace) points(instances int64) int64 {
	return instances / int64(len(w.eqis))
}

// planeBounds computes plane t's coordinate ranges: start from the box
// interval and, for plane coordinates that are original dimensions
// (basis rows of T), solve π·x = t for that coordinate's feasible
// range. This keeps the guarded slack per plane small even when the
// time axis is much longer than the other dimensions. It returns the
// plane's candidate-point count (0 for an empty plane).
func (w *wfSpace) planeBounds(t int64, plo, phi *[plan.MaxCollapse]int64) int64 {
	hy := w.hy
	planeTotal := int64(1)
	for r := 1; r < w.n; r++ {
		l, h := w.tlo[r], w.thi[r]
		if j := hy.Basis[r]; j >= 0 {
			if c := hy.Pi[j]; c > 0 {
				othersLo := w.piLoSum - c*w.lo[j]
				othersHi := w.piHiSum - c*w.hi[j]
				if q := ceilDiv(t-othersHi, c); q > l {
					l = q
				}
				if q := floorDiv(t-othersLo, c); q < h {
					h = q
				}
			}
		}
		if l > h {
			return 0
		}
		plo[r], phi[r] = l, h
		planeTotal *= h - l + 1
	}
	return planeTotal
}

// execPlaneBox runs the candidate points [start, end] (linear indices
// into the plane's bounding box, row coordinate fastest) of plane t on
// the calling goroutine. Each row of the box is handled as one segment:
// the sub-interval of points whose T⁻¹ preimage lies in the original
// iteration box is solved in closed form (the preimage moves by dcol
// per step, so each original dimension bounds a k-interval), and the
// feasible run is handed to the kernels as a single span — in-box
// filtering costs a few divisions per row instead of a branch per
// point, and specialized kernels advance flat offsets incrementally
// across the run. Exactly the original points execute, each once, in
// group order per point sequence, so results are bitwise identical to
// the per-point walk. Cancellation is polled per row.
func (p *Program) execPlaneBox(en *env, fr []int64, w *wfSpace, t int64, plo, phi *[plan.MaxCollapse]int64, start, end int64) {
	n, row := w.n, w.row
	rowLen := phi[row] - plo[row] + 1
	var xpBuf, xBuf [plan.MaxCollapse]int64
	xp, x := xpBuf[:n], xBuf[:n]
	xp[0] = t
	// Decompose start: row-fastest, then w.ord outer coordinates with
	// the last ord entry varying next-fastest.
	rem := start / rowLen
	xp[row] = plo[row] + start%rowLen
	for oi := len(w.ord) - 1; oi >= 0; oi-- {
		r := w.ord[oi]
		span := phi[r] - plo[r] + 1
		xp[r] = plo[r] + rem%span
		rem /= span
	}
	preimage(w.hy.TInv, xp, x)
	canceled := en.rs.canceled
	dcol := w.dcol
	spans := en.cp.spans
	dims := w.st.Dims
	for li := start; li <= end; {
		if canceled != nil && canceled.Load() {
			panic(runtimeError{err: en.rs.ctx.Err()})
		}
		seg := phi[row] - xp[row] + 1
		if li+seg-1 > end {
			seg = end - li + 1
		}
		// Feasible sub-interval of this segment: lo ≤ x + k·dcol ≤ hi
		// per original dimension, intersected over all of them.
		kLo, kHi := int64(0), seg-1
		for j := 0; j < n; j++ {
			switch d := dcol[j]; {
			case d == 0:
				if x[j] < w.lo[j] || x[j] > w.hi[j] {
					kLo, kHi = seg, seg-1
				}
			case d > 0:
				if q := ceilDiv(w.lo[j]-x[j], d); q > kLo {
					kLo = q
				}
				if q := floorDiv(w.hi[j]-x[j], d); q < kHi {
					kHi = q
				}
			default:
				if q := ceilDiv(x[j]-w.hi[j], -d); q > kLo {
					kLo = q
				}
				if q := floorDiv(x[j]-w.lo[j], -d); q < kHi {
					kHi = q
				}
			}
		}
		if kLo <= kHi {
			for j := 0; j < n; j++ {
				fr[dims[j]] = x[j] + kLo*dcol[j]
			}
			cnt := kHi - kLo + 1
			for _, eqi := range w.eqis {
				en.curEq = int32(eqi)
				spans[eqi].fn(en, fr, dims, dcol, cnt)
			}
		}
		li += seg
		if li > end {
			break
		}
		// Advance to the next row: rewind the row coordinate, then bump
		// the ord odometer (last entry fastest), updating the preimage
		// with T⁻¹ columns.
		if back := xp[row] - plo[row]; back != 0 {
			for j := 0; j < n; j++ {
				x[j] -= back * dcol[j]
			}
			xp[row] = plo[row]
		}
		for oi := len(w.ord) - 1; oi >= 0; oi-- {
			r := w.ord[oi]
			if xp[r]++; xp[r] <= phi[r] {
				for j := 0; j < n; j++ {
					x[j] += w.hy.TInv[j][r]
				}
				break
			}
			span := phi[r] - plo[r]
			xp[r] = plo[r]
			for j := 0; j < n; j++ {
				x[j] -= span * w.hy.TInv[j][r]
			}
		}
	}
}

// useDoacross decides the wavefront execution strategy for one
// activation. Forced policies win; auto chooses the doacross pipeline
// when the average plane width per worker is below the inline-plane
// threshold — the regime where the barrier sweep either runs most
// planes inline (serially) or pays a pool dispatch whose fixed cost
// rivals the plane's kernel work. The threshold is the calibrated
// wavefront grain, so the auto decision sharpens after the first run
// measures the kernel cost.
func (p *Program) useDoacross(en *env, w *wfSpace) bool {
	if w.hy.Window < 2 || len(w.hy.Pred) == 0 {
		return false // no cross-plane dependence metadata to pipeline on
	}
	switch en.rs.opts.Schedule {
	case sched.PolicyBarrier:
		return false
	case sched.PolicyDoacross:
		return true
	}
	nplanes := w.thi[0] - w.tlo[0] + 1
	points := int64(1)
	for j := 0; j < w.n; j++ {
		points *= w.hi[j] - w.lo[j] + 1
	}
	avgWidth := points / nplanes
	if avgWidth < 1 {
		avgWidth = 1
	}
	grain := en.cp.wavefrontGrain()
	if en.cp.wfCost.Load() != 0 && avgWidth < grain {
		// The measured kernel cost says every plane fits under the
		// inline threshold: the barrier sweep runs the whole nest on the
		// sweeping goroutine with zero dispatch, which no pipeline can
		// beat at this width. (Before calibration the default grain is
		// not evidence, so narrow planes still pipeline below.)
		return false
	}
	return avgWidth < grain*int64(en.rs.pool.Workers())
}

// execWavefront runs one §4-restructured nest: hyperplanes t = π·x
// executed in dependence order, each plane a parallel traversal of the
// bounding box of the remaining transformed coordinates. Per point the
// step's baked T⁻¹ recovers the original indices; points whose
// preimage falls outside the original iteration box are skipped, so
// exactly the original points execute, each once, with every
// dependence satisfied (π·d ≥ 1 places a point's inputs on strictly
// earlier planes, and in-plane points are independent by
// construction). Parallel activations choose between two strategies:
// the barrier sweep below (one fork/join per plane) and the doacross
// tile pipeline of execWavefrontDoacross.
func (p *Program) execWavefront(en *env, fr []int64, st *plan.Step, bodyLo int) {
	rs := en.rs
	var w wfSpace
	if !w.resolve(en, st, bodyLo) {
		return // empty dimension: the nest has no iterations
	}
	noPool := rs.pool == nil || en.inParallel || rs.pool.Workers() == 1
	if !noPool && p.useDoacross(en, &w) {
		p.execWavefrontDoacross(en, fr, &w)
		return
	}
	canceled := rs.canceled
	// Planes too small to amortize a pool dispatch run inline — the
	// narrow leading and trailing hyperplanes of every sweep. The
	// threshold starts at the fixed default and is re-read after the
	// first plane calibrates the measured kernel cost.
	inline := en.cp.wavefrontGrain()
	cm := en.cm
	// Plane spans land on the activation's ring; inside a parallel chunk
	// (or an already-open sequential span) the enclosing span covers the
	// work and nothing is emitted here.
	ring := en.ring
	if en.inParallel || en.inSpan {
		ring = nil
	}
	var wfLbls pprof.LabelSet
	if rs.labels {
		wfLbls = pprof.Labels("ps_module", cm.m.Name,
			"ps_step", "wavefront", "ps_eqs", eqsLabel(en.cp, w.eqis))
	}

	for t := w.tlo[0]; t <= w.thi[0]; t++ {
		if canceled != nil && canceled.Load() {
			panic(runtimeError{err: rs.ctx.Err()})
		}
		var plo, phi [plan.MaxCollapse]int64
		planeTotal := w.planeBounds(t, &plo, &phi)
		if planeTotal == 0 {
			continue // no candidate points on this hyperplane
		}
		if rs.stats != nil {
			rs.stats.Planes.Add(1)
		}
		if noPool || planeTotal < inline {
			var t0 int64
			if ring != nil {
				t0 = ring.Now()
				en.inSpan = true
			}
			if en.cp.wfCost.Load() == 0 && planeTotal >= 8 {
				// One-shot grain calibration: time this inline plane and
				// derive the per-plan threshold from its measured kernel
				// cost (executed points, not box slack).
				before := en.eqCount
				start := time.Now()
				p.execPlaneBox(en, fr, &w, t, &plo, &phi, 0, planeTotal-1)
				if points := w.points(en.eqCount - before); points > 0 {
					en.cp.noteWavefrontCost(points, time.Since(start))
					inline = en.cp.wavefrontGrain()
				}
			} else {
				p.execPlaneBox(en, fr, &w, t, &plo, &phi, 0, planeTotal-1)
			}
			if ring != nil {
				en.inSpan = false
				ring.Emit(obs.KPlane, t0, ring.Now()-t0, t, 0)
			}
			continue
		}

		// Parallel plane: chunked exactly like a DOALL, with pooled
		// worker state; each chunk decomposes its start index once and
		// walks the plane odometer-style, updating the T⁻¹ preimage
		// incrementally instead of remapping per point.
		var panicOnce sync.Once
		var panicked any
		work := func(start, end int64) {
			ws, _ := cm.ws.Get().(*workerState)
			if ws == nil {
				ws = &workerState{}
			}
			if cap(ws.fr) < len(fr) {
				ws.fr = make([]int64, len(fr))
			}
			wfr := ws.fr[:len(fr)]
			copy(wfr, fr)
			ws.en = *en
			sub := &ws.en
			sub.inParallel = true
			sub.ring = nil
			sub.eqCount = 0
			sub.specCount = 0
			var t0 int64
			if rs.rec != nil {
				sub.ring = rs.rec.Acquire()
				t0 = sub.ring.Now()
			}
			defer func() {
				if sub.ring != nil {
					sub.ring.Emit(obs.KChunk, t0, sub.ring.Now()-t0, end-start+1, 1)
					rs.rec.Release(sub.ring)
				}
				if rs.stats != nil {
					rs.stats.Chunks.Add(1)
					rs.stats.EqInstances.Add(sub.eqCount)
					rs.stats.Specialized.Add(sub.specCount)
				}
				if r := recover(); r != nil {
					switch e := r.(type) {
					case runtimeError:
						if e.eq == "" {
							e.eq = sub.eqLabel()
						}
						panicOnce.Do(func() { panicked = e })
					case value.Error:
						panicOnce.Do(func() { panicked = runtimeError{err: e, eq: sub.eqLabel()} })
					default:
						panicOnce.Do(func() { panicked = r })
					}
				}
				cm.ws.Put(ws)
			}()
			p.execPlaneBox(sub, wfr, &w, t, &plo, &phi, start, end)
		}
		if rs.labels {
			work = labeled(rs, work, wfLbls)
		}
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
		}
		completed := rs.pool.ForRangesOpts(rs.cancelChan(), 0, planeTotal-1, rs.opts.Grain, work)
		if ring != nil {
			// The dispatch span covers the fork/join; member chunks carry
			// the compute, so Breakdown turns this into barrier idle.
			ring.Emit(obs.KPlane, t0, ring.Now()-t0, t, 1)
		}
		if panicked != nil {
			panic(panicked)
		}
		if !completed {
			panic(runtimeError{err: rs.ctx.Err()})
		}
	}
}

// execWavefrontDoacross runs a wavefront nest as a doacross pipeline:
// the widest plane coordinate is blocked into tiles on a fixed global
// grid, each tile carries an atomic completion counter, and a tile
// entering plane t waits point-to-point only on the predecessor tiles
// the plan's dependence window implies (internal/sched) — no per-plane
// pool barrier, so successive hyperplanes overlap. Tile instances
// compute the same tightened plane bounds as the barrier sweep and run
// the same kernels at the same points, so the two schedules are
// bitwise identical.
func (p *Program) execWavefrontDoacross(en *env, fr []int64, w *wfSpace) {
	rs := en.rs
	hy := w.hy
	// Block the plane coordinate with the widest transformed span: more
	// tiles means a deeper pipeline, and every other coordinate stays
	// whole within a tile so only one shift table is consulted.
	blk := 1
	for r := 2; r < w.n; r++ {
		if w.thi[r]-w.tlo[r] > w.thi[blk]-w.tlo[blk] {
			blk = r
		}
	}
	nest := sched.Nest{
		TLo: w.tlo[0], THi: w.thi[0],
		CoordLo: w.tlo[blk], CoordHi: w.thi[blk],
		Window:  hy.Window,
		Preds:   hy.Pred[blk-1],
		Workers: rs.pool.Workers(),
		// Options.Grain is the minimum iterations per parallel chunk; for
		// the doacross schedule the chunk is a tile, so the grain bounds
		// the tile width on the blocked coordinate (0 keeps the default
		// span/(workers×TilesPerWorker) blocking).
		TileWidth: rs.opts.Grain,
	}
	var doStats *sched.Stats
	if rs.stats != nil {
		doStats = &rs.stats.Doacross
	}
	var panicOnce sync.Once
	var panicked any
	canceled := rs.canceled
	body := func(_ int, t int64, k int, blo, bhi int64) bool {
		// Most tile instances of a narrow plane are empty (the tile grid
		// is global, the tightened plane is not), so the bounds check
		// runs before any pooled-state setup.
		var plo, phi [plan.MaxCollapse]int64
		total := w.planeBounds(t, &plo, &phi)
		if total == 0 {
			return true // empty plane: the instance completes immediately
		}
		if k == 0 && rs.stats != nil {
			// Tile 0 exists on every plane, so it counts each non-empty
			// plane exactly once — keeping WavefrontPlanes comparable
			// with the barrier schedule.
			rs.stats.Planes.Add(1)
		}
		// Clamp the blocked coordinate to this tile's slice.
		if plo[blk] < blo {
			plo[blk] = blo
		}
		if phi[blk] > bhi {
			phi[blk] = bhi
		}
		if plo[blk] > phi[blk] {
			return true // tightening left nothing in this tile
		}
		total = 1
		for r := 1; r < w.n; r++ {
			total *= phi[r] - plo[r] + 1
		}
		ok := p.execDoacrossTile(en, fr, w, t, &plo, &phi, total, &panicOnce, &panicked)
		return ok && !(canceled != nil && canceled.Load())
	}
	if rs.labels {
		lbls := pprof.Labels("ps_module", en.cm.m.Name,
			"ps_step", "doacross", "ps_eqs", eqsLabel(en.cp, w.eqis))
		inner := body
		body = func(wi int, t int64, k int, blo, bhi int64) (ok bool) {
			pprof.Do(rs.ctx, lbls, func(context.Context) { ok = inner(wi, t, k, blo, bhi) })
			return ok
		}
	}
	completed := sched.Run(nest, rs.pool, rs.cancelChan(), body, doStats, rs.rec)
	if panicked != nil {
		panic(panicked)
	}
	if !completed {
		panic(runtimeError{err: rs.ctx.Err()})
	}
}

// execDoacrossTile runs one non-empty tile instance on pooled worker
// state, capturing runtime failures the way DOALL chunks do; false
// means a panic was recorded and the run must abort.
func (p *Program) execDoacrossTile(en *env, fr []int64, w *wfSpace, t int64, plo, phi *[plan.MaxCollapse]int64, total int64, panicOnce *sync.Once, panicked *any) (ok bool) {
	rs := en.rs
	cm := en.cm
	ws, _ := cm.ws.Get().(*workerState)
	if ws == nil {
		ws = &workerState{}
	}
	if cap(ws.fr) < len(fr) {
		ws.fr = make([]int64, len(fr))
	}
	wfr := ws.fr[:len(fr)]
	copy(wfr, fr)
	ws.en = *en
	sub := &ws.en
	sub.inParallel = true
	sub.ring = nil // sched.Run records the tile span on its own ring
	sub.eqCount = 0
	sub.specCount = 0
	ok = true
	defer func() {
		if rs.stats != nil {
			rs.stats.EqInstances.Add(sub.eqCount)
			rs.stats.Specialized.Add(sub.specCount)
		}
		if r := recover(); r != nil {
			switch e := r.(type) {
			case runtimeError:
				if e.eq == "" {
					e.eq = sub.eqLabel()
				}
				panicOnce.Do(func() { *panicked = e })
			case value.Error:
				panicOnce.Do(func() { *panicked = runtimeError{err: e, eq: sub.eqLabel()} })
			default:
				panicOnce.Do(func() { *panicked = r })
			}
			ok = false // stop scheduling; the panic re-raises after Run
		}
		cm.ws.Put(ws)
	}()
	// Tiles are narrow by construction, so calibration accepts any
	// instance with at least two executed points; the threshold it
	// feeds is clamped, which bounds the effect of timing noise.
	if en.cp.wfCost.Load() == 0 && total >= 2 {
		before := sub.eqCount
		start := time.Now()
		p.execPlaneBox(sub, wfr, w, t, plo, phi, 0, total-1)
		if points := w.points(sub.eqCount - before); points > 0 {
			en.cp.noteWavefrontCost(points, time.Since(start))
		}
		return ok
	}
	p.execPlaneBox(sub, wfr, w, t, plo, phi, 0, total-1)
	return ok
}

// ceilDiv and floorDiv divide with rounding toward +∞/−∞; b must be
// positive (π coefficients are non-negative by construction).
func ceilDiv(a, b int64) int64 {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -(-a / b)
}

func floorDiv(a, b int64) int64 {
	if a >= 0 {
		return a / b
	}
	return -((-a + b - 1) / b)
}

// preimage computes x = T⁻¹·xp.
func preimage(tinv [][]int64, xp, x []int64) {
	for j, row := range tinv {
		var v int64
		for r, c := range row {
			v += c * xp[r]
		}
		x[j] = v
	}
}

// advance steps the frame one point through a collapsed iteration space,
// innermost dimension fastest with carry into the outer ones. Every
// collapsed path — sequential and both chunk walkers — must move the
// frame identically, so they all share this helper.
func advance(fr []int64, dims []int, lob, hib *[plan.MaxCollapse]int64) {
	for d := len(dims) - 1; d >= 0; d-- {
		slot := dims[d]
		if fr[slot]++; fr[slot] <= hib[d] {
			return
		}
		fr[slot] = lob[d]
	}
}
