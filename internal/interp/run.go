package interp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/par"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Options control execution.
type Options struct {
	// Workers is the DOALL worker count; <= 0 uses all CPUs.
	Workers int
	// Sequential forces every loop — including DOALLs — to run serially
	// (the baseline an iterative-only scheduler would produce).
	Sequential bool
	// Strict enables single-assignment and undefined-read checking.
	Strict bool
	// NoVirtual disables window allocation, physically allocating every
	// dimension (the ablation baseline for §3.4).
	NoVirtual bool
	// Grain is the minimum iterations per parallel chunk.
	Grain int64
	// Fuse executes the loop-fusion variant of the schedule (the §5
	// "merge iterative loops" extension).
	Fuse bool
}

// Program is a compiled, runnable PS program.
type Program struct {
	Prog   *sem.Program
	Scheds map[*sem.Module]*core.Schedule
	mods   map[*sem.Module]*compiledModule
}

// runtimeError wraps execution failures carried by panic across the
// evaluator (subscript errors, division by zero, strict violations).
type runtimeError struct{ err error }

// Compile prepares every module of a checked program for execution,
// scheduling each module's dependency graph with the core scheduler.
func Compile(prog *sem.Program) (*Program, error) {
	p := &Program{
		Prog:   prog,
		Scheds: make(map[*sem.Module]*core.Schedule),
		mods:   make(map[*sem.Module]*compiledModule),
	}
	for _, m := range prog.Modules {
		if _, done := p.mods[m]; done {
			continue
		}
		if _, err := p.compileCallee(m); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// compileCallee schedules and compiles one module on demand.
func (p *Program) compileCallee(m *sem.Module) (*compiledModule, error) {
	g := depgraph.Build(m)
	sched, err := core.Build(g)
	if err != nil {
		return nil, err
	}
	p.Scheds[m] = sched
	return p.compileModule(m, sched)
}

// Schedule returns the flowchart computed for a module.
func (p *Program) Schedule(name string) *core.Schedule {
	m := p.Prog.Module(name)
	if m == nil {
		return nil
	}
	return p.Scheds[m]
}

// env is the runtime state of one module activation.
type env struct {
	cm      *compiledModule
	scalars []any
	arrays  []*value.Array
	opts    Options
	strict  bool
	pool    *par.Pool
	// inParallel marks that an enclosing DOALL is already distributing
	// work, so nested DOALLs run sequentially within each worker.
	inParallel bool
}

// Run executes the named module with the given arguments. Scalar
// arguments are Go ints/floats/bools; array arguments are *value.Array.
// It returns one value per declared result.
func (p *Program) Run(name string, args []any, opts Options) ([]any, error) {
	m := p.Prog.Module(name)
	if m == nil {
		return nil, fmt.Errorf("interp: no module %s", name)
	}
	return p.runModule(p.mods[m], args, opts)
}

func (p *Program) runModule(cm *compiledModule, args []any, opts Options) (results []any, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case runtimeError:
				err = fmt.Errorf("interp: module %s: %w", cm.m.Name, e.err)
			case value.Error:
				err = fmt.Errorf("interp: module %s: %w", cm.m.Name, e)
			default:
				panic(r)
			}
		}
	}()
	m := cm.m
	if len(args) != len(m.Params) {
		return nil, fmt.Errorf("interp: module %s takes %d arguments, got %d", m.Name, len(m.Params), len(args))
	}
	en := &env{
		cm:      cm,
		scalars: make([]any, len(cm.syms)),
		arrays:  make([]*value.Array, len(cm.syms)),
		opts:    opts,
		strict:  opts.Strict,
	}
	if !opts.Sequential {
		// One persistent worker pool per activation: DOALL planes inside
		// an iterative loop reuse the parked workers instead of spawning
		// goroutines per plane.
		en.pool = par.NewPool(opts.Workers)
		en.pool.SetGrain(opts.Grain)
		defer en.pool.Close()
	}

	// Bind parameters.
	for i, sym := range m.Params {
		si := cm.symIdx[sym]
		v, cerr := coerceArg(args[i], sym.Type)
		if cerr != nil {
			return nil, fmt.Errorf("interp: module %s argument %d (%s): %w", m.Name, i+1, sym.Name, cerr)
		}
		if a, isArr := v.(*value.Array); isArr {
			en.arrays[si] = a
		} else {
			en.scalars[si] = v
		}
	}

	// Allocate result and local arrays, honoring virtual dimensions.
	windows := make(map[*sem.Symbol]map[int]int)
	if !opts.NoVirtual {
		for _, v := range cm.sched.Virtual {
			if windows[v.Sym] == nil {
				windows[v.Sym] = make(map[int]int)
			}
			windows[v.Sym][v.Dim] = v.Window
		}
	}
	fr := make([]int64, cm.nSlots)
	for _, sym := range append(append([]*sem.Symbol{}, m.Results...), m.Locals...) {
		si := cm.symIdx[sym]
		arr, isArr := sym.Type.(*types.Array)
		if !isArr {
			continue
		}
		axes := make([]value.Axis, len(arr.Dims))
		for d, sr := range arr.Dims {
			b := cm.dimBounds[sr]
			axes[d] = value.Axis{Lo: b[0](en, fr), Hi: b[1](en, fr)}
			if w, ok := windows[sym][d]; ok {
				axes[d].Window = w
			}
		}
		a := value.NewArray(arr.Elem.Kind(), axes)
		if opts.Strict {
			a.EnableStrict()
		}
		en.arrays[si] = a
	}

	// Execute the flowchart (optionally the loop-fused variant).
	fc := cm.sched.Flowchart
	if opts.Fuse {
		fc = cm.fused
	}
	p.execFlowchart(en, fc, fr)

	// Collect results.
	results = make([]any, len(m.Results))
	for i, sym := range m.Results {
		si := cm.symIdx[sym]
		if en.arrays[si] != nil {
			results[i] = en.arrays[si]
		} else {
			results[i] = en.scalars[si]
		}
	}
	return results, nil
}

// coerceArg converts a Go argument to the runtime representation of t.
func coerceArg(v any, t types.Type) (any, error) {
	switch t.Kind() {
	case types.RealKind:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case types.IntKind, types.SubrangeKind, types.CharKind, types.EnumKind:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case types.BoolKind:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case types.StringKind:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case types.ArrayKind:
		if a, ok := v.(*value.Array); ok {
			if a.Rank() != types.Rank(t) {
				return nil, fmt.Errorf("array rank %d, want %d", a.Rank(), types.Rank(t))
			}
			return a, nil
		}
	case types.RecordKind:
		if r, ok := v.(*value.Record); ok {
			return r, nil
		}
	}
	return nil, fmt.Errorf("cannot use %T as %s", v, t)
}

// execFlowchart runs the descriptors in order at the current frame.
func (p *Program) execFlowchart(en *env, fc core.Flowchart, fr []int64) {
	for _, d := range fc {
		switch x := d.(type) {
		case *core.NodeDesc:
			if x.Node.Kind == depgraph.EquationNode {
				en.cm.eqs[x.Node.Eq].exec(en, fr)
			}
		case *core.LoopDesc:
			p.execLoop(en, x, fr)
		}
	}
}

func (p *Program) execLoop(en *env, loop *core.LoopDesc, fr []int64) {
	b := en.cm.dimBounds[loop.Subrange]
	lo, hi := b[0](en, fr), b[1](en, fr)
	slot := en.cm.slotOf[loop.Subrange]

	parallel := loop.Parallel && en.pool != nil && !en.inParallel &&
		en.pool.Workers() != 1 && hi >= lo
	if !parallel {
		for i := lo; i <= hi; i++ {
			fr[slot] = i
			p.execFlowchart(en, loop.Body, fr)
		}
		return
	}

	// DOALL: collapse a nest of directly nested parallel loops into one
	// linear iteration space, so a skinny outer DOALL (e.g. the plane of
	// a §4 wavefront schedule, whose outer parallel range can be much
	// shorter than the inner one) still yields enough chunks for every
	// worker. PS subrange bounds depend only on module parameters, so
	// inner bounds are loop-invariant.
	type pdim struct {
		slot int
		lo   int64
		n    int64
	}
	dims := []pdim{{slot: slot, lo: lo, n: hi - lo + 1}}
	body := loop.Body
	total := hi - lo + 1
	for len(body) == 1 {
		inner, ok := body[0].(*core.LoopDesc)
		if !ok || !inner.Parallel {
			break
		}
		b := en.cm.dimBounds[inner.Subrange]
		ilo, ihi := b[0](en, fr), b[1](en, fr)
		if ihi < ilo {
			return // empty inner range: no equation instances at all
		}
		dims = append(dims, pdim{slot: en.cm.slotOf[inner.Subrange], lo: ilo, n: ihi - ilo + 1})
		body = inner.Body
		total *= ihi - ilo + 1
	}

	// Each worker uses a private frame and runs any remaining nested
	// loops sequentially. The linear index decomposes with the innermost
	// dimension fastest, preserving row-major locality.
	var panicked any
	en.pool.ForRanges(0, total-1, func(start, end int64) {
		defer func() {
			if r := recover(); r != nil && panicked == nil {
				panicked = r
			}
		}()
		sub := *en
		sub.inParallel = true
		frCopy := make([]int64, len(fr))
		copy(frCopy, fr)
		for li := start; li <= end; li++ {
			rem := li
			for d := len(dims) - 1; d >= 0; d-- {
				frCopy[dims[d].slot] = dims[d].lo + rem%dims[d].n
				rem /= dims[d].n
			}
			p.execFlowchart(&sub, body, frCopy)
		}
	})
	if panicked != nil {
		panic(panicked)
	}
}
