package interp

import (
	"testing"
	"time"
)

// TestWavefrontCalibrationDiscardsWarmup pins the steady-state
// calibration contract: the first plane timing (arena warm-up,
// specialization misses) is discarded, the cost publishes as the
// median of the remaining samples, and once published it is immutable.
// Before the fix the first plane's timing alone set the cost, so a
// cold-start outlier could permanently flip the auto barrier/doacross
// policy for the plan.
func TestWavefrontCalibrationDiscardsWarmup(t *testing.T) {
	var cp compiledPlan
	// A grossly inflated warm-up plane followed by steady samples: the
	// published cost must reflect the steady state, not the outlier.
	cp.noteWavefrontCost(1, 100_000*time.Nanosecond) // warm-up: 100000 ns/pt
	if cp.wfCost.Load() != 0 {
		t.Fatalf("cost published after %d samples, want %d before publishing", 1, wfCalibrateSamples)
	}
	cp.noteWavefrontCost(1, 90*time.Nanosecond)
	cp.noteWavefrontCost(1, 110*time.Nanosecond)
	if cp.wfCost.Load() != 0 {
		t.Fatalf("cost published early: %d", cp.wfCost.Load())
	}
	cp.noteWavefrontCost(1, 100*time.Nanosecond)
	if got := cp.wfCost.Load(); got != 100 {
		t.Fatalf("calibrated cost = %d ns/pt, want the steady-state median 100", got)
	}
	// Immutable once published: later timings cannot flip the policy.
	cp.noteWavefrontCost(1, time.Millisecond)
	if got := cp.wfCost.Load(); got != 100 {
		t.Fatalf("published cost changed to %d", got)
	}
}

// TestWavefrontCalibrationStability pins the auto-policy stability
// property end to end: whatever order steady samples arrive in after
// the warm-up, the derived grain is identical — so the automatic
// barrier/doacross choice does not wobble between hosts or runs with
// reordered planes.
func TestWavefrontCalibrationStability(t *testing.T) {
	steady := [][]int64{
		{200, 400, 300},
		{400, 300, 200},
		{300, 200, 400},
	}
	var want int64
	for i, order := range steady {
		var cp compiledPlan
		cp.noteWavefrontCost(1, 5*time.Millisecond) // warm-up outlier
		for _, ns := range order {
			cp.noteWavefrontCost(1, time.Duration(ns)*time.Nanosecond)
		}
		if cp.wfCost.Load() == 0 {
			t.Fatal("cost not published after full sample set")
		}
		g := cp.wavefrontGrain()
		if i == 0 {
			want = g
			continue
		}
		if g != want {
			t.Fatalf("grain %d for sample order %v, want %d (order-independent)", g, order, want)
		}
	}
}

// TestWavefrontGrainBounds pins the clamping of the calibrated grain.
func TestWavefrontGrainBounds(t *testing.T) {
	var cp compiledPlan
	if g := cp.wavefrontGrain(); g != defaultInlinePlane {
		t.Fatalf("uncalibrated grain = %d, want default %d", g, defaultInlinePlane)
	}
	cp.wfCost.Store(1) // absurdly cheap kernel: clamp high
	if g := cp.wavefrontGrain(); g != 4096 {
		t.Fatalf("grain = %d, want upper clamp 4096", g)
	}
	cp.wfCost.Store(1 << 40) // absurdly expensive kernel: clamp low
	if g := cp.wavefrontGrain(); g != 8 {
		t.Fatalf("grain = %d, want lower clamp 8", g)
	}
}
