package interp_test

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/psrc"
	"repro/internal/sched"
	"repro/internal/value"
)

// runGS executes the Gauss–Seidel module under opts and returns newA.
func runGS(t *testing.T, ip *interp.Program, m, maxK int64, opts interp.Options) *value.Array {
	t.Helper()
	res, err := ip.Run("Relaxation", []any{grid(m), m, maxK}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res[0].(*value.Array)
}

// TestDoacrossScheduleParity runs the auto-hyperplane Gauss–Seidel nest
// under every schedule policy at several widths and grains; all must be
// bitwise identical to the sequential reference, and the doacross runs
// must actually exercise the tile pipeline (Tiles > 0).
func TestDoacrossScheduleParity(t *testing.T) {
	ip := compileSrc(t, psrc.RelaxationGS)
	const m, maxK = 13, 7
	want := runGS(t, ip, m, maxK, interp.Options{Sequential: true})
	for _, tc := range []struct {
		name     string
		opts     interp.Options
		doacross bool
	}{
		{"DoacrossPar2", interp.Options{Workers: 2, Schedule: sched.PolicyDoacross}, true},
		{"DoacrossPar4", interp.Options{Workers: 4, Schedule: sched.PolicyDoacross}, true},
		{"DoacrossPar3Grain8", interp.Options{Workers: 3, Grain: 8, Schedule: sched.PolicyDoacross}, true},
		{"BarrierPar4", interp.Options{Workers: 4, Schedule: sched.PolicyBarrier}, false},
		{"AutoPar4", interp.Options{Workers: 4}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats interp.Stats
			tc.opts.Stats = &stats
			got := runGS(t, ip, m, maxK, tc.opts)
			if !reflect.DeepEqual(got.F, want.F) {
				t.Errorf("%s diverges from sequential reference", tc.name)
			}
			if tc.doacross && stats.Doacross.Tiles.Load() == 0 {
				t.Errorf("%s executed no doacross tiles", tc.name)
			}
			if !tc.doacross && tc.opts.Schedule == sched.PolicyBarrier && stats.Doacross.Tiles.Load() != 0 {
				t.Errorf("%s executed doacross tiles under the barrier policy", tc.name)
			}
		})
	}
}

// TestWavefrontGrainCalibration checks the one-shot kernel-cost
// measurement: before any run the plan reports the fixed default, and
// a run through a wavefront nest (either schedule) calibrates a
// positive ns/point from which the threshold derives.
func TestWavefrontGrainCalibration(t *testing.T) {
	ip := compileSrc(t, psrc.RelaxationGS)
	popts := plan.Options{Hyperplane: true}
	grain, cost := ip.WavefrontGrain("Relaxation", popts)
	if cost != 0 {
		t.Fatalf("plan calibrated before any run: %d ns/point", cost)
	}
	if grain != 32 {
		t.Fatalf("uncalibrated grain = %d, want the 32-point default", grain)
	}
	runGS(t, ip, 13, 6, interp.Options{Workers: 2})
	grain, cost = ip.WavefrontGrain("Relaxation", popts)
	if cost <= 0 {
		t.Fatal("run did not calibrate the wavefront kernel cost")
	}
	if grain < 8 || grain > 4096 {
		t.Fatalf("calibrated grain %d outside [8, 4096]", grain)
	}
	// Unknown modules fall back to the default, not a panic.
	if g, c := ip.WavefrontGrain("NoSuchModule", popts); g != 32 || c != 0 {
		t.Errorf("unknown module grain = (%d, %d)", g, c)
	}
}

// TestDoacrossGrainControlsTiles checks Options.Grain reaches the
// doacross executor as the tile width: a grain covering the whole
// blocked span collapses every plane to one tile, and results stay
// identical either way.
func TestDoacrossGrainControlsTiles(t *testing.T) {
	ip := compileSrc(t, psrc.RelaxationGS)
	const m, maxK = 13, 7
	want := runGS(t, ip, m, maxK, interp.Options{Sequential: true})
	var fine, coarse interp.Stats
	gotFine := runGS(t, ip, m, maxK, interp.Options{Workers: 4, Schedule: sched.PolicyDoacross, Stats: &fine})
	gotCoarse := runGS(t, ip, m, maxK, interp.Options{Workers: 4, Grain: 1 << 20, Schedule: sched.PolicyDoacross, Stats: &coarse})
	if !reflect.DeepEqual(gotFine.F, want.F) || !reflect.DeepEqual(gotCoarse.F, want.F) {
		t.Error("grain variants diverge from sequential reference")
	}
	if fine.Doacross.Tiles.Load() <= coarse.Doacross.Tiles.Load() {
		t.Errorf("coarse grain did not reduce tile instances: fine=%d coarse=%d",
			fine.Doacross.Tiles.Load(), coarse.Doacross.Tiles.Load())
	}
	// A grain beyond the span clamps to one tile per plane: instances
	// equal the full time range of the sweep (empty planes included).
	if got := coarse.Doacross.Tiles.Load(); got < coarse.Planes.Load() {
		t.Errorf("coarse run has fewer tiles (%d) than non-empty planes (%d)", got, coarse.Planes.Load())
	}
}

// TestDoacrossAutoNarrowPlanes pins the auto decision's doacross side:
// a nest whose planes are narrow relative to grain×workers must take
// the pipelined schedule under PolicyAuto.
func TestDoacrossAutoNarrowPlanes(t *testing.T) {
	ip := compileSrc(t, psrc.RelaxationGS)
	var stats interp.Stats
	// m=4 gives ~36-point average planes; workers=4 with the default
	// 32-point grain sets the auto cutoff at 128.
	got := runGS(t, ip, 4, 6, interp.Options{Workers: 4, Stats: &stats})
	want := runGS(t, ip, 4, 6, interp.Options{Sequential: true})
	if !reflect.DeepEqual(got.F, want.F) {
		t.Error("auto doacross run diverges from sequential reference")
	}
	if stats.Doacross.Tiles.Load() == 0 {
		t.Error("auto policy did not choose doacross for narrow planes")
	}
}
