package lexer_test

import (
	"testing"

	"repro/internal/lexer"
	"repro/internal/source"
)

// FuzzLex drains the token stream for arbitrary input: the lexer must
// terminate (every Next call makes progress to EOF) and never panic,
// whatever bytes arrive.
func FuzzLex(f *testing.F) {
	for _, seed := range []string{
		"",
		"Relaxation: module (InitialA: array[I,J] of real; M: int): [newA: array [I,J] of real];",
		"(* comment *) 1.5e-3 'c' \"str\" .. <= <> := div mod",
		"(*$m+v+x+t-*)",
		"(* unterminated",
		"\"unterminated",
		"'",
		"1e999 0x 9..10",
		"\x00\xff\xfe invalid utf8 \x80",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var errs source.ErrorList
		l := lexer.New("fuzz.ps", src, &errs)
		// All drains to EOF; bound the token count to catch any
		// non-progress bug as a failure instead of a hang.
		toks := l.All()
		if len(toks) > len(src)+2 {
			t.Fatalf("lexer produced %d tokens from %d bytes", len(toks), len(src))
		}
	})
}
