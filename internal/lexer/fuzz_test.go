package lexer_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lexer"
	"repro/internal/source"
)

// FuzzLex drains the token stream for arbitrary input: the lexer must
// terminate (every Next call makes progress to EOF) and never panic,
// whatever bytes arrive. Every checked-in .ps program (testdata/ and
// the testdata/fuzz/ differential corpus) seeds the run alongside the
// hand-picked sharp edges.
func FuzzLex(f *testing.F) {
	for _, pattern := range []string{"../../testdata/*.ps", "../../testdata/fuzz/*.ps"} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	for _, seed := range []string{
		"",
		"Relaxation: module (InitialA: array[I,J] of real; M: int): [newA: array [I,J] of real];",
		"(* comment *) 1.5e-3 'c' \"str\" .. <= <> := div mod",
		"(*$m+v+x+t-*)",
		"(* unterminated",
		"\"unterminated",
		"'",
		"1e999 0x 9..10",
		"\x00\xff\xfe invalid utf8 \x80",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var errs source.ErrorList
		l := lexer.New("fuzz.ps", src, &errs)
		// All drains to EOF; bound the token count to catch any
		// non-progress bug as a failure instead of a hang.
		toks := l.All()
		if len(toks) > len(src)+2 {
			t.Fatalf("lexer produced %d tokens from %d bytes", len(toks), len(src))
		}
	})
}
