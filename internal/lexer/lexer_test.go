package lexer_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

func kinds(toks []lexer.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func scan(t *testing.T, src string) ([]lexer.Token, *source.ErrorList) {
	t.Helper()
	errs := source.NewErrorList("test")
	lx := lexer.New("test", src, errs)
	return lx.All(), errs
}

// TestBasicTokens covers the full operator and delimiter set.
func TestBasicTokens(t *testing.T) {
	toks, errs := scan(t, "+ - * / = <> < <= > >= ( ) [ ] , : ; . ..")
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.EQ,
		token.NEQ, token.LT, token.LE, token.GT, token.GE,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.COMMA, token.COLON, token.SEMI, token.DOT, token.DOTDOT,
		token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestKeywordsCaseInsensitive verifies Pascal-style keyword folding.
func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"module", "MODULE", "Module", "mOdUlE"} {
		toks, _ := scan(t, src)
		if toks[0].Kind != token.MODULE {
			t.Errorf("%q lexed as %v, want module", src, toks[0].Kind)
		}
	}
	toks, _ := scan(t, "notakeyword")
	if toks[0].Kind != token.IDENT {
		t.Errorf("identifier misclassified as %v", toks[0].Kind)
	}
}

// TestNumbers covers integer, real, exponent, and subrange adjacency.
func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want []token.Kind
	}{
		{"42", []token.Kind{token.INT, token.EOF}},
		{"3.14", []token.Kind{token.REAL, token.EOF}},
		{"1e9", []token.Kind{token.REAL, token.EOF}},
		{"2.5E-3", []token.Kind{token.REAL, token.EOF}},
		// '..' must not be swallowed by the number scanner.
		{"0..10", []token.Kind{token.INT, token.DOTDOT, token.INT, token.EOF}},
		{"1 .. maxK", []token.Kind{token.INT, token.DOTDOT, token.IDENT, token.EOF}},
		{"1.5.x", []token.Kind{token.REAL, token.DOT, token.IDENT, token.EOF}},
	}
	for _, tc := range cases {
		toks, errs := scan(t, tc.src)
		if errs.Len() != 0 {
			t.Errorf("%q: errors %v", tc.src, errs.Err())
			continue
		}
		got := kinds(toks)
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %v, want %v", tc.src, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("%q token %d: got %v, want %v", tc.src, i, got[i], tc.want[i])
			}
		}
	}
}

// TestStringsAndChars covers quoting, escapes, and the char/string split.
func TestStringsAndChars(t *testing.T) {
	toks, errs := scan(t, "'hello' 'a' 'it''s'")
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	if toks[0].Kind != token.STRING || toks[0].Lit != "hello" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Lit)
	}
	if toks[1].Kind != token.CHAR || toks[1].Lit != "a" {
		t.Errorf("got %v %q", toks[1].Kind, toks[1].Lit)
	}
	if toks[2].Kind != token.STRING || toks[2].Lit != "it's" {
		t.Errorf("got %v %q", toks[2].Kind, toks[2].Lit)
	}
}

// TestComments covers skipping, nesting, and label retention.
func TestComments(t *testing.T) {
	toks, errs := scan(t, "a (* comment (* nested *) still *) b")
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	got := kinds(toks)
	if len(got) != 3 || got[0] != token.IDENT || got[1] != token.IDENT {
		t.Errorf("comment not skipped: %v", got)
	}

	errs2 := source.NewErrorList("test")
	lx := lexer.New("test", "(*eq.1*) x", errs2, lexer.KeepComments())
	first := lx.Next()
	if first.Kind != token.COMMENT || first.Lit != "(*eq.1*)" {
		t.Errorf("KeepComments: got %v %q", first.Kind, first.Lit)
	}
}

// TestErrors covers unterminated constructs and illegal characters.
func TestErrors(t *testing.T) {
	_, errs := scan(t, "(* never closed")
	if errs.Len() == 0 {
		t.Error("unterminated comment not reported")
	}
	_, errs = scan(t, "'never closed")
	if errs.Len() == 0 {
		t.Error("unterminated string not reported")
	}
	toks, errs := scan(t, "a # b")
	if errs.Len() == 0 {
		t.Error("illegal character not reported")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("got %v, want ILLEGAL", toks[1].Kind)
	}
}

// TestPositions verifies line/column tracking across newlines.
func TestPositions(t *testing.T) {
	toks, _ := scan(t, "a\n  b\nccc")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[2].Pos.Line != 3 || toks[2].Pos.Column != 1 {
		t.Errorf("ccc at %v", toks[2].Pos)
	}
	if toks[2].End.Column != 4 {
		t.Errorf("ccc ends at col %d, want 4", toks[2].End.Column)
	}
}

// TestLexerTerminates is a property test: the lexer always reaches EOF in
// a bounded number of tokens on arbitrary input (no infinite loops, no
// panics).
func TestLexerTerminates(t *testing.T) {
	f := func(src string) bool {
		errs := source.NewErrorList("fuzz")
		lx := lexer.New("fuzz", src, errs)
		for i := 0; i <= len(src)+2; i++ {
			if lx.Next().Kind == token.EOF {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLexerCoversInput is a property test on well-formed identifier
// soup: every identifier written is returned in order.
func TestLexerCoversInput(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			id := ""
			for _, r := range w {
				if r >= 'a' && r <= 'z' {
					id += string(r)
				}
			}
			if id != "" && token.Lookup(id) == token.IDENT {
				clean = append(clean, id)
			}
		}
		src := strings.Join(clean, " ")
		errs := source.NewErrorList("fuzz")
		toks := lexer.New("fuzz", src, errs).All()
		if len(toks) != len(clean)+1 {
			return false
		}
		for i, w := range clean {
			if toks[i].Kind != token.IDENT || toks[i].Lit != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
