// Package lexer implements the scanner for PS source text.
//
// The scanner handles Pascal-style lexical conventions: case-insensitive
// keywords, (* ... *) comments (nesting allowed), integer and real literals
// with exponents, and quoted string/char literals.
package lexer

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/source"
	"repro/internal/token"
)

// Token is one lexical token with its source span and literal text.
type Token struct {
	Kind token.Kind
	Lit  string // literal text for IDENT/INT/REAL/STRING/CHAR/COMMENT/ILLEGAL
	Pos  source.Pos
	End  source.Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind.IsLiteral() || t.Kind == token.ILLEGAL || t.Kind == token.COMMENT {
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans PS source text into tokens. Create one with New.
type Lexer struct {
	src     string
	file    *source.File
	errs    *source.ErrorList
	offset  int // current reading offset
	ch      rune
	chWidth int
	keepCmt bool
}

// Option configures a Lexer.
type Option func(*Lexer)

// KeepComments makes Next return COMMENT tokens instead of skipping them.
func KeepComments() Option { return func(l *Lexer) { l.keepCmt = true } }

// New returns a Lexer for the given file name and source text. Diagnostics
// are recorded in errs (which may be nil to discard them).
func New(name, src string, errs *source.ErrorList, opts ...Option) *Lexer {
	if errs == nil {
		errs = source.NewErrorList(name)
	}
	l := &Lexer{src: src, file: source.NewFile(name, src), errs: errs}
	for _, o := range opts {
		o(l)
	}
	l.advance()
	return l
}

// File returns the indexed source file for position mapping.
func (l *Lexer) File() *source.File { return l.file }

func (l *Lexer) advance() {
	if l.offset+l.chWidth >= len(l.src)+1 && l.ch == -1 {
		return
	}
	l.offset += l.chWidth
	if l.offset >= len(l.src) {
		l.ch = -1
		l.chWidth = 0
		return
	}
	r, w := rune(l.src[l.offset]), 1
	if r >= utf8.RuneSelf {
		r, w = utf8.DecodeRuneInString(l.src[l.offset:])
	}
	l.ch = r
	l.chWidth = w
}

func (l *Lexer) peek() rune {
	if l.offset+l.chWidth >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.offset+l.chWidth:])
	return r
}

func (l *Lexer) pos() source.Pos { return l.file.PosFor(l.offset) }

func isLetter(ch rune) bool {
	return ch == '_' || unicode.IsLetter(ch)
}

func isDigit(ch rune) bool { return '0' <= ch && ch <= '9' }

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() Token {
	for {
		l.skipWhitespace()
		start := l.pos()
		switch {
		case l.ch == -1:
			return Token{Kind: token.EOF, Pos: start, End: start}
		case isLetter(l.ch):
			lit := l.scanIdent()
			kind := token.Lookup(lit)
			return Token{Kind: kind, Lit: lit, Pos: start, End: l.pos()}
		case isDigit(l.ch):
			kind, lit := l.scanNumber()
			return Token{Kind: kind, Lit: lit, Pos: start, End: l.pos()}
		case l.ch == '\'':
			kind, lit := l.scanString()
			return Token{Kind: kind, Lit: lit, Pos: start, End: l.pos()}
		case l.ch == '(' && l.peek() == '*':
			lit, ok := l.scanComment()
			if !ok {
				l.errs.Addf(start, "unterminated comment")
			}
			if l.keepCmt {
				return Token{Kind: token.COMMENT, Lit: lit, Pos: start, End: l.pos()}
			}
			continue
		default:
			return l.scanOperator(start)
		}
	}
}

// All scans the remaining input and returns every token up to and including
// EOF. It is a convenience for tests and tools.
func (l *Lexer) All() []Token {
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) skipWhitespace() {
	for l.ch == ' ' || l.ch == '\t' || l.ch == '\r' || l.ch == '\n' {
		l.advance()
	}
}

func (l *Lexer) scanIdent() string {
	start := l.offset
	for isLetter(l.ch) || isDigit(l.ch) {
		l.advance()
	}
	return l.src[start:l.offset]
}

func (l *Lexer) scanNumber() (token.Kind, string) {
	start := l.offset
	kind := token.INT
	for isDigit(l.ch) {
		l.advance()
	}
	// A '.' begins a real literal only if followed by a digit; '..' is the
	// subrange operator and must not be consumed here (e.g. "0 .. M+1" and
	// "0..10" both lex as INT DOTDOT).
	if l.ch == '.' && isDigit(l.peek()) {
		kind = token.REAL
		l.advance()
		for isDigit(l.ch) {
			l.advance()
		}
	}
	if l.ch == 'e' || l.ch == 'E' {
		// Exponent part makes it a real: 1e9, 2.5E-3.
		save, saveW := l.offset, l.chWidth
		l.advance()
		if l.ch == '+' || l.ch == '-' {
			l.advance()
		}
		if isDigit(l.ch) {
			kind = token.REAL
			for isDigit(l.ch) {
				l.advance()
			}
		} else {
			// Not an exponent after all (e.g. "3elements"); rewind.
			l.offset, l.chWidth = save, saveW
			r, w := utf8.DecodeRuneInString(l.src[l.offset:])
			l.ch, l.chWidth = r, w
			_ = saveW
		}
	}
	return kind, l.src[start:l.offset]
}

func (l *Lexer) scanString() (token.Kind, string) {
	// PS uses Pascal-style quoted literals: 'abc', with '' as an escaped
	// quote. A one-character literal is reported as CHAR.
	l.advance() // consume opening quote
	var sb strings.Builder
	for {
		if l.ch == -1 || l.ch == '\n' {
			l.errs.Addf(l.pos(), "unterminated string literal")
			break
		}
		if l.ch == '\'' {
			if l.peek() == '\'' {
				sb.WriteByte('\'')
				l.advance()
				l.advance()
				continue
			}
			l.advance()
			break
		}
		sb.WriteRune(l.ch)
		l.advance()
	}
	s := sb.String()
	if utf8.RuneCountInString(s) == 1 {
		return token.CHAR, s
	}
	return token.STRING, s
}

func (l *Lexer) scanComment() (string, bool) {
	start := l.offset
	l.advance() // (
	l.advance() // *
	depth := 1
	for depth > 0 {
		switch {
		case l.ch == -1:
			return l.src[start:l.offset], false
		case l.ch == '(' && l.peek() == '*':
			depth++
			l.advance()
			l.advance()
		case l.ch == '*' && l.peek() == ')':
			depth--
			l.advance()
			l.advance()
		default:
			l.advance()
		}
	}
	return l.src[start:l.offset], true
}

func (l *Lexer) scanOperator(start source.Pos) Token {
	ch := l.ch
	l.advance()
	mk := func(k token.Kind) Token {
		return Token{Kind: k, Pos: start, End: l.pos()}
	}
	switch ch {
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '=':
		return mk(token.EQ)
	case '<':
		switch l.ch {
		case '=':
			l.advance()
			return mk(token.LE)
		case '>':
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.LT)
	case '>':
		if l.ch == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '[':
		return mk(token.LBRACK)
	case ']':
		return mk(token.RBRACK)
	case ',':
		return mk(token.COMMA)
	case ':':
		return mk(token.COLON)
	case ';':
		return mk(token.SEMI)
	case '.':
		if l.ch == '.' {
			l.advance()
			return mk(token.DOTDOT)
		}
		return mk(token.DOT)
	}
	l.errs.Addf(start, "illegal character %q", ch)
	t := mk(token.ILLEGAL)
	t.Lit = string(ch)
	return t
}
