package types_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/types"
)

func subrange(name string, lo, hi int64) *types.Subrange {
	return &types.Subrange{
		Name: name,
		Lo:   &ast.IntLit{Value: lo, Lit: ""},
		Hi:   &ast.IntLit{Value: hi, Lit: ""},
	}
}

// TestSubrangeIdentity verifies pointer identity semantics: equal bounds
// do not make two subranges the same index domain.
func TestSubrangeIdentity(t *testing.T) {
	i := subrange("I", 0, 10)
	j := subrange("J", 0, 10)
	if i == j {
		t.Fatal("distinct subranges compare identical")
	}
	// But both are integer-compatible.
	if !types.Equal(i, j) || !types.Equal(i, types.Int) {
		t.Error("integer subranges must be type-compatible with int and each other")
	}
}

// TestEqualBasics covers the compatibility lattice.
func TestEqualBasics(t *testing.T) {
	if types.Equal(types.Int, types.Real) {
		t.Error("int and real must not be Equal")
	}
	if !types.Equal(types.Real, types.Real) || !types.Equal(types.Bool, types.Bool) {
		t.Error("basic identity failed")
	}
	if types.Equal(types.Char, types.String) {
		t.Error("char and string must differ")
	}
	if types.Equal(nil, types.Int) || types.Equal(types.Int, nil) {
		t.Error("nil comparisons must be false")
	}
}

// TestAssignable covers the int→real widening and array compatibility.
func TestAssignable(t *testing.T) {
	if !types.AssignableTo(types.Int, types.Real) {
		t.Error("int must widen to real")
	}
	if types.AssignableTo(types.Real, types.Int) {
		t.Error("real must not narrow to int")
	}
	a2 := &types.Array{Dims: []*types.Subrange{subrange("I", 0, 5), subrange("J", 0, 5)}, Elem: types.Real}
	b2 := &types.Array{Dims: []*types.Subrange{subrange("X", 1, 9), subrange("Y", 1, 9)}, Elem: types.Real}
	c1 := &types.Array{Dims: []*types.Subrange{subrange("I", 0, 5)}, Elem: types.Real}
	intArr := &types.Array{Dims: []*types.Subrange{subrange("I", 0, 5), subrange("J", 0, 5)}, Elem: types.Int}
	if !types.AssignableTo(a2, b2) {
		t.Error("same-rank real arrays must be assignable (extents are runtime)")
	}
	if types.AssignableTo(a2, c1) {
		t.Error("rank-mismatched arrays must not be assignable")
	}
	if !types.AssignableTo(intArr, a2) {
		t.Error("int array must widen element-wise to real array")
	}
	if types.AssignableTo(a2, intArr) {
		t.Error("real array must not narrow to int array")
	}
}

// TestArraySlice covers partial subscripting types.
func TestArraySlice(t *testing.T) {
	a := &types.Array{
		Dims: []*types.Subrange{subrange("K", 1, 4), subrange("I", 0, 5), subrange("J", 0, 5)},
		Elem: types.Real,
	}
	if got := a.Slice(0); types.Rank(got) != 3 {
		t.Errorf("Slice(0) rank %d", types.Rank(got))
	}
	if got := a.Slice(1); types.Rank(got) != 2 {
		t.Errorf("Slice(1) rank %d", types.Rank(got))
	}
	if got := a.Slice(3); got != types.Real {
		t.Errorf("Slice(3) = %s, want real", got)
	}
	if got := a.Slice(7); got != types.Real {
		t.Errorf("over-slice = %s, want real", got)
	}
	if types.Elem(a) != types.Real {
		t.Error("Elem failed")
	}
	if types.Elem(types.Int) != nil {
		t.Error("Elem of scalar must be nil")
	}
}

// TestPredicates covers the classification helpers.
func TestPredicates(t *testing.T) {
	sr := subrange("I", 0, 3)
	if !types.IsInteger(types.Int) || !types.IsInteger(sr) || types.IsInteger(types.Real) {
		t.Error("IsInteger misclassifies")
	}
	if !types.IsNumeric(types.Real) || !types.IsNumeric(sr) || types.IsNumeric(types.Bool) {
		t.Error("IsNumeric misclassifies")
	}
	for _, ord := range []types.Type{types.Int, types.Real, types.Char, types.String, sr} {
		if !types.IsOrdered(ord) {
			t.Errorf("%s should be ordered", ord)
		}
	}
	if types.IsOrdered(&types.Record{}) {
		t.Error("records must not be ordered")
	}
}

// TestStrings covers display forms used in diagnostics and C generation.
func TestStrings(t *testing.T) {
	sr := subrange("K", 2, 9)
	if sr.String() != "K" {
		t.Errorf("named subrange prints %q", sr.String())
	}
	if sr.BoundsString() != "2 .. 9" {
		t.Errorf("bounds print %q", sr.BoundsString())
	}
	anon := subrange("_r1", 1, 5)
	anon.Anonymous = true
	if anon.String() != "1 .. 5" {
		t.Errorf("anonymous subrange prints %q", anon.String())
	}
	arr := &types.Array{Dims: []*types.Subrange{sr}, Elem: types.Real}
	if arr.String() != "array [K] of real" {
		t.Errorf("array prints %q", arr.String())
	}
	rec := &types.Record{Fields: []*types.RecField{{Name: "x", Type: types.Real}}}
	if rec.String() != "record x: real end" {
		t.Errorf("record prints %q", rec.String())
	}
	en := &types.Enum{Consts: []string{"red", "green"}}
	if en.String() != "(red, green)" {
		t.Errorf("anonymous enum prints %q", en.String())
	}
	en.Name = "Color"
	if en.String() != "Color" {
		t.Errorf("named enum prints %q", en.String())
	}
}

// TestEnumOrdinal covers constant lookup.
func TestEnumOrdinal(t *testing.T) {
	en := &types.Enum{Name: "C", Consts: []string{"a", "b", "c"}}
	if ord, ok := en.Ordinal("b"); !ok || ord != 1 {
		t.Errorf("ordinal(b) = %d, %v", ord, ok)
	}
	if _, ok := en.Ordinal("z"); ok {
		t.Error("missing constant found")
	}
}

// TestRecordField covers field lookup.
func TestRecordField(t *testing.T) {
	rec := &types.Record{Fields: []*types.RecField{
		{Name: "x", Type: types.Real}, {Name: "tag", Type: types.Int},
	}}
	if f := rec.Field("tag"); f == nil || f.Type != types.Int {
		t.Error("field lookup failed")
	}
	if rec.Field("nope") != nil {
		t.Error("phantom field found")
	}
}
