// Package types defines the PS type system: the standard Pascal-like data
// types the paper lists in §2 — primitive types, enumerations, arrays and
// records — plus integer subrange types, which double as the loop index
// domains the scheduler reasons about.
//
// Subrange identity matters: `I, J = 0 .. M+1` declares two distinct
// subrange types with equal bounds, and an equation subscripted A[K,I,J]
// iterates the *specific* subranges K, I and J. Subranges are therefore
// compared by pointer, never structurally.
package types

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Kind discriminates the type representations.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	IntKind
	RealKind
	BoolKind
	CharKind
	StringKind
	SubrangeKind
	ArrayKind
	RecordKind
	EnumKind
)

// Type is the interface implemented by all PS types.
type Type interface {
	Kind() Kind
	String() string
}

// Basic is a primitive type: int, real, bool, char, string.
type Basic struct {
	kind Kind
	name string
}

// The singleton basic types.
var (
	Int    = &Basic{IntKind, "int"}
	Real   = &Basic{RealKind, "real"}
	Bool   = &Basic{BoolKind, "bool"}
	Char   = &Basic{CharKind, "char"}
	String = &Basic{StringKind, "string"}
)

// Kind returns the basic type's kind.
func (b *Basic) Kind() Kind { return b.kind }

// String returns the PS spelling of the basic type.
func (b *Basic) String() string { return b.name }

// Subrange is an integer subrange lo .. hi. Bounds are expressions over
// integer literals and scalar module parameters (e.g. 0 .. M+1), so their
// concrete extent is generally known only at run time.
type Subrange struct {
	// Name is the declared type name ("K", "I"); synthesized subranges for
	// anonymous array dimensions get a generated name like "_d1".
	Name string
	Lo   ast.Expr
	Hi   ast.Expr
	// Anonymous records that the subrange was written inline in an array
	// declaration rather than declared in a type section.
	Anonymous bool
}

// Kind returns SubrangeKind.
func (s *Subrange) Kind() Kind { return SubrangeKind }

// String renders the subrange as "Name" or "lo .. hi" when anonymous.
func (s *Subrange) String() string {
	if s.Name != "" && !s.Anonymous {
		return s.Name
	}
	return fmt.Sprintf("%s .. %s", ast.ExprString(s.Lo), ast.ExprString(s.Hi))
}

// BoundsString always renders the explicit bounds.
func (s *Subrange) BoundsString() string {
	return fmt.Sprintf("%s .. %s", ast.ExprString(s.Lo), ast.ExprString(s.Hi))
}

// Array is a (possibly multi-dimensional) array type. Nested array
// declarations are flattened: `array [K] of array [I,J] of real` has three
// dimensions, matching the paper's treatment of A[K,I,J] as a node with
// three node labels (§3.1).
type Array struct {
	Dims []*Subrange
	Elem Type // non-array element type
}

// Kind returns ArrayKind.
func (a *Array) Kind() Kind { return ArrayKind }

// String renders the array type in PS syntax.
func (a *Array) String() string {
	var sb strings.Builder
	sb.WriteString("array [")
	for i, d := range a.Dims {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteString("] of ")
	sb.WriteString(a.Elem.String())
	return sb.String()
}

// Slice returns the type of the array after applying n leading subscripts:
// the element type if all dimensions are consumed, else an array of the
// remaining dimensions.
func (a *Array) Slice(n int) Type {
	if n >= len(a.Dims) {
		return a.Elem
	}
	return &Array{Dims: a.Dims[n:], Elem: a.Elem}
}

// RecField is one field of a record type.
type RecField struct {
	Name string
	Type Type
}

// Record is a record (struct) type.
type Record struct {
	Fields []*RecField
}

// Kind returns RecordKind.
func (r *Record) Kind() Kind { return RecordKind }

// String renders the record type in PS syntax.
func (r *Record) String() string {
	var sb strings.Builder
	sb.WriteString("record ")
	for i, f := range r.Fields {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(f.Name)
		sb.WriteString(": ")
		sb.WriteString(f.Type.String())
	}
	sb.WriteString(" end")
	return sb.String()
}

// Field returns the named field, or nil.
func (r *Record) Field(name string) *RecField {
	for _, f := range r.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Enum is an enumeration type; values are the ordinals of its constants.
type Enum struct {
	Name   string
	Consts []string
}

// Kind returns EnumKind.
func (e *Enum) Kind() Kind { return EnumKind }

// String renders the enum as its name, or its constant list if anonymous.
func (e *Enum) String() string {
	if e.Name != "" {
		return e.Name
	}
	return "(" + strings.Join(e.Consts, ", ") + ")"
}

// Ordinal returns the 0-based ordinal of the named constant and whether it
// belongs to the enum.
func (e *Enum) Ordinal(name string) (int, bool) {
	for i, c := range e.Consts {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// IsInteger reports whether t is int or an integer subrange.
func IsInteger(t Type) bool {
	return t != nil && (t.Kind() == IntKind || t.Kind() == SubrangeKind)
}

// IsNumeric reports whether t is usable in arithmetic.
func IsNumeric(t Type) bool {
	return IsInteger(t) || (t != nil && t.Kind() == RealKind)
}

// IsOrdered reports whether values of t can be compared with < <= > >=.
func IsOrdered(t Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind() {
	case IntKind, RealKind, SubrangeKind, CharKind, StringKind, EnumKind:
		return true
	}
	return false
}

// Equal reports type compatibility for assignment and comparison purposes.
// Integer subranges are compatible with int and with each other; arrays are
// compatible when their ranks agree and element types are compatible
// (dimension extents are checked at run time, since bounds may be symbolic);
// records and enums compare by identity.
func Equal(a, b Type) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	if IsInteger(a) && IsInteger(b) {
		return true
	}
	ka, kb := a.Kind(), b.Kind()
	if ka != kb {
		return false
	}
	switch ka {
	case ArrayKind:
		aa, ba := a.(*Array), b.(*Array)
		return len(aa.Dims) == len(ba.Dims) && Equal(aa.Elem, ba.Elem)
	case RealKind, BoolKind, CharKind, StringKind:
		return true
	}
	return false
}

// AssignableTo reports whether a value of type src may define a target of
// type dst. It is Equal plus the implicit int→real widening.
func AssignableTo(src, dst Type) bool {
	if Equal(src, dst) {
		return true
	}
	if dst != nil && dst.Kind() == RealKind && IsInteger(src) {
		return true
	}
	if dst != nil && src != nil && dst.Kind() == ArrayKind && src.Kind() == ArrayKind {
		da, sa := dst.(*Array), src.(*Array)
		return len(da.Dims) == len(sa.Dims) && AssignableTo(sa.Elem, da.Elem)
	}
	return false
}

// Elem returns the element type of an array type, or nil.
func Elem(t Type) Type {
	if a, ok := t.(*Array); ok {
		return a.Elem
	}
	return nil
}

// Rank returns the number of array dimensions of t (0 for scalars).
func Rank(t Type) int {
	if a, ok := t.(*Array); ok {
		return len(a.Dims)
	}
	return 0
}
