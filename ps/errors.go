package ps

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/source"
)

// Phase identifies the pipeline stage a diagnostic originated from.
type Phase string

// The pipeline phases, in order.
const (
	PhaseParse    Phase = "parse"
	PhaseCheck    Phase = "check"
	PhaseSchedule Phase = "schedule"
	PhaseRun      Phase = "run"
)

// Error is the typed diagnostic returned by every entry point of the
// package: it records which phase failed, the module and equation
// involved (when known), and the source position of the first
// diagnostic (for parse and check failures). The underlying cause is
// preserved for errors.Is/As — a cancelled run, for example, satisfies
// errors.Is(err, context.Canceled).
type Error struct {
	// Phase is the pipeline stage that failed.
	Phase Phase
	// Module is the module being compiled or run, when known.
	Module string
	// Equation is the label (e.g. "eq.3") of the equation in execution
	// or under analysis, when known.
	Equation string
	// File, Line and Column locate the first diagnostic in the source
	// text for parse and check failures; Line is 0 when no position is
	// available.
	File   string
	Line   int
	Column int
	// Err is the underlying cause.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString("ps: ")
	b.WriteString(string(e.Phase))
	if e.Line > 0 && !selfPositioned(e.Err) {
		fmt.Fprintf(&b, " %s:%d:%d", e.File, e.Line, e.Column)
	}
	if e.Module != "" {
		fmt.Fprintf(&b, " module %s", e.Module)
	}
	if e.Equation != "" {
		fmt.Fprintf(&b, " (%s)", e.Equation)
	}
	b.WriteString(": ")
	b.WriteString(e.cause().Error())
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// selfPositioned reports whether the cause renders its own
// file:line:col prefix, so the header should not repeat it.
func selfPositioned(err error) bool {
	switch err.(type) {
	case *source.ErrorList, *source.Diagnostic:
		return true
	}
	return false
}

// cause strips one interp.RunError layer for display, so the message
// does not repeat the module and equation already rendered in the
// header.
func (e *Error) cause() error {
	if re, ok := e.Err.(*interp.RunError); ok && re.Module == e.Module && re.Equation == e.Equation {
		return re.Err
	}
	return e.Err
}

// compileError classifies a front-end failure into a typed Error,
// lifting the first diagnostic's position and — for scheduling
// failures — the module name.
func compileError(phase Phase, file string, err error) *Error {
	e := &Error{Phase: phase, File: file, Err: err}
	var el *source.ErrorList
	var diag *source.Diagnostic
	var un *core.UnschedulableError
	switch {
	case errors.As(err, &el):
		if ds := el.Diagnostics(); len(ds) > 0 {
			if ds[0].File != "" {
				e.File = ds[0].File
			}
			e.Line, e.Column = ds[0].Pos.Line, ds[0].Pos.Column
		}
	case errors.As(err, &diag):
		if diag.File != "" {
			e.File = diag.File
		}
		e.Line, e.Column = diag.Pos.Line, diag.Pos.Column
	case errors.As(err, &un):
		e.Module = un.Module
	}
	return e
}

// runError wraps an execution failure, lifting module and equation
// attribution from the interpreter's typed error.
func runError(module string, err error) *Error {
	e := &Error{Phase: PhaseRun, Module: module, Err: err}
	var re *interp.RunError
	if errors.As(err, &re) {
		e.Module = re.Module
		e.Equation = re.Equation
	}
	return e
}
