package ps_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

// seedGrid builds an (n+2)×(n+2) seed for the wavefront modules.
func seedGrid(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1}, ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		for j := int64(0); j <= n+1; j++ {
			a.SetF([]int64{i, j}, float64((i*7+j*3)%5))
		}
	}
	return a
}

// TestWavefrontStats checks the new RunStats attribution on a module
// whose recurrence auto-lowers to a wavefront: WavefrontPlanes counts
// exactly the hyperplanes of the sweep (for Wavefront2D with pi=(1,1)
// over [0,N+1]² that is 2(N+1)+1 time steps), plane chunks land in
// DOALLChunks, and the counter stays zero when the transform is off or
// the run is sequential — so the stats distinguish wavefront work from
// plain DOALL chunking.
func TestWavefrontStats(t *testing.T) {
	const n = 40 // large enough that planes exceed the inline threshold
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("wf2d.ps", psrc.Wavefront2D)
	if err != nil {
		t.Fatal(err)
	}
	args := []any{seedGrid(n), int64(n)}
	points := int64((n + 2) * (n + 2))

	run, err := prog.Prepare("Wavefront2D")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	wantPlanes := int64(2*(n+1) + 1)
	if stats.WavefrontPlanes != wantPlanes {
		t.Errorf("WavefrontPlanes = %d, want %d", stats.WavefrontPlanes, wantPlanes)
	}
	if stats.DOALLChunks == 0 {
		t.Error("wavefront planes dispatched no chunks")
	}
	// eq.1 runs once per in-box point (bounding-box slack is skipped
	// before the kernel), eq.2 once per point of the output DOALL.
	if stats.EquationInstances != 2*points {
		t.Errorf("EquationInstances = %d, want %d", stats.EquationInstances, 2*points)
	}
	if !strings.Contains(stats.String(), "wavefront_planes=") {
		t.Errorf("stats string missing wavefront counter: %s", stats)
	}

	for _, tc := range []struct {
		name string
		opts []ps.RunOption
	}{
		{"HyperOff", []ps.RunOption{ps.WithHyperplane(ps.HyperplaneOff)}},
		{"Sequential", []ps.RunOption{ps.Sequential()}},
	} {
		r, err := prog.Prepare("Wavefront2D", tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Run(context.Background(), args)
		if err != nil {
			t.Fatal(err)
		}
		if st.WavefrontPlanes != 0 {
			t.Errorf("%s: WavefrontPlanes = %d, want 0", tc.name, st.WavefrontPlanes)
		}
	}
}

// TestDoacrossStats pins the doacross counters on a forced pipelined
// run: tiles execute (and are attributed to the run), results match the
// barrier schedule bitwise, and the counters stay zero under the
// barrier policy and for sequential runs — so RunStats cleanly tells
// the two wavefront strategies apart.
func TestDoacrossStats(t *testing.T) {
	const n = 40
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("wf2d.ps", psrc.Wavefront2D)
	if err != nil {
		t.Fatal(err)
	}
	args := []any{seedGrid(n), int64(n)}

	barrier, err := prog.Prepare("Wavefront2D", ps.WithSchedule(ps.ScheduleBarrier))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, bStats, err := barrier.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if bStats.DoacrossTiles != 0 || bStats.DoacrossStalls != 0 || bStats.DoacrossSteals != 0 {
		t.Errorf("barrier run reports doacross counters: %s", bStats)
	}
	want, err := ps.ResultsToJSON(prog, "Wavefront2D", wantRes)
	if err != nil {
		t.Fatal(err)
	}

	run, err := prog.Prepare("Wavefront2D", ps.WithSchedule(ps.ScheduleDoacross))
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ps.ResultsToJSON(prog, "Wavefront2D", res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("doacross run diverges from the barrier schedule")
	}
	if stats.DoacrossTiles == 0 {
		t.Error("doacross run executed no tiles")
	}
	// The sweep still counts hyperplanes: pi=(1,1) over [0,N+1]² has
	// 2(N+1)+1 non-empty planes regardless of schedule.
	if want := int64(2*(n+1) + 1); stats.WavefrontPlanes != want {
		t.Errorf("WavefrontPlanes = %d, want %d", stats.WavefrontPlanes, want)
	}
	for _, probe := range []string{"doacross_tiles=", "doacross_stalls=", "doacross_steals="} {
		if !strings.Contains(stats.String(), probe) {
			t.Errorf("stats string missing %q: %s", probe, stats)
		}
	}

	seq, err := prog.Prepare("Wavefront2D", ps.Sequential(), ps.WithSchedule(ps.ScheduleDoacross))
	if err != nil {
		t.Fatal(err)
	}
	_, sStats, err := seq.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if sStats.DoacrossTiles != 0 {
		t.Errorf("sequential run executed doacross tiles: %s", sStats)
	}
}

// TestDoacrossStalls checks the residual-synchronization counters are
// actually wired end to end: a pipeline with many more tiles than
// workers forces workers off their home spans (steals) and, when a
// predecessor tile is still in flight past the spin window, parks them
// (stalls). Which of the two fires on a given run depends on scheduler
// timing, so the test accumulates over a serialized-pipeline shape
// until either counter is non-zero — if the sched package stopped
// reporting both, every attempt returns zero and the test fails.
func TestDoacrossStalls(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	// Grain 13 over the I span of 26 gives two fat tiles; window 3 makes
	// tile 1 wait on tile 0's in-flight planes, the shape most likely to
	// exhaust the spin window and park.
	run, err := prog.Prepare("Relaxation", ps.WithSchedule(ps.ScheduleDoacross), ps.Grain(13))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := prog.Prepare("Relaxation", ps.WithSchedule(ps.ScheduleDoacross))
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 24, 12
	args := []any{seedGrid(m), int64(m), int64(maxK)}
	var stalls, steals int64
	for attempt := 0; attempt < 25 && stalls+steals == 0; attempt++ {
		for _, r := range []*ps.Runner{run, wide} {
			_, stats, err := r.Run(context.Background(), args)
			if err != nil {
				t.Fatal(err)
			}
			if stats.DoacrossTiles == 0 {
				t.Fatal("doacross schedule did not engage")
			}
			if stats.DoacrossTiles < stats.WavefrontPlanes {
				t.Errorf("fewer tiles than planes (%d < %d): planes were not blocked",
					stats.DoacrossTiles, stats.WavefrontPlanes)
			}
			stalls += stats.DoacrossStalls
			steals += stats.DoacrossSteals
		}
	}
	if stalls+steals == 0 {
		t.Error("50 pipelined runs recorded neither stalls nor steals: residual-sync counters are not wired")
	}
	t.Logf("accumulated stalls=%d steals=%d", stalls, steals)
}

// TestDoacrossCancellation aborts a long forced-doacross sweep
// mid-flight: per-tile cancellation polling must notice the context
// within a few tiles and return the typed cancellation error.
func TestDoacrossCancellation(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation", ps.WithSchedule(ps.ScheduleDoacross))
	if err != nil {
		t.Fatal(err)
	}
	// maxK is sized so the uncancelled sweep runs for seconds yet the
	// unwindowed (maxK+1)×(m+2)² recurrence array stays well under
	// 100 MB: a multi-gigabyte backing can spend minutes in first-touch
	// page faults on a slow VM, swamping the latency being measured.
	const m, maxK = 64, 1 << 11
	in := seedGrid(m)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := run.Run(ctx, []any{in, int64(m), int64(maxK)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("doacross cancellation took %v", elapsed)
	}
	// The sweep has ~2·maxK+m planes; a run that ignored the abort would
	// execute them all, so finishing with under half proves the executor
	// bailed mid-flight even if the wall clock is too noisy to.
	if stats == nil {
		t.Fatal("cancelled run did not report stats")
	}
	if total := int64(2*maxK + m); stats.WavefrontPlanes >= total/2 {
		t.Fatalf("cancelled run executed %d of ~%d planes: not aborted mid-flight",
			stats.WavefrontPlanes, total)
	}
}

// TestWavefrontCancellation aborts a long wavefront sweep mid-flight:
// the plane loop must notice the context within a few planes and return
// a typed cancellation error.
func TestWavefrontCancellation(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	// Sized like TestDoacrossCancellation: seconds of sweep, a
	// recurrence array small enough that first-touch faults cannot
	// dominate the measured latency.
	const m, maxK = 64, 1 << 11
	in := seedGrid(m)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := run.Run(ctx, []any{in, int64(m), int64(maxK)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wavefront cancellation took %v", elapsed)
	}
	if stats == nil {
		t.Fatal("cancelled run did not report stats")
	}
	if total := int64(2*maxK + m); stats.WavefrontPlanes >= total/2 {
		t.Fatalf("cancelled run executed %d of ~%d planes: not aborted mid-flight",
			stats.WavefrontPlanes, total)
	}
}
