package ps_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

// seedGrid builds an (n+2)×(n+2) seed for the wavefront modules.
func seedGrid(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1}, ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		for j := int64(0); j <= n+1; j++ {
			a.SetF([]int64{i, j}, float64((i*7+j*3)%5))
		}
	}
	return a
}

// TestWavefrontStats checks the new RunStats attribution on a module
// whose recurrence auto-lowers to a wavefront: WavefrontPlanes counts
// exactly the hyperplanes of the sweep (for Wavefront2D with pi=(1,1)
// over [0,N+1]² that is 2(N+1)+1 time steps), plane chunks land in
// DOALLChunks, and the counter stays zero when the transform is off or
// the run is sequential — so the stats distinguish wavefront work from
// plain DOALL chunking.
func TestWavefrontStats(t *testing.T) {
	const n = 40 // large enough that planes exceed the inline threshold
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("wf2d.ps", psrc.Wavefront2D)
	if err != nil {
		t.Fatal(err)
	}
	args := []any{seedGrid(n), int64(n)}
	points := int64((n + 2) * (n + 2))

	run, err := prog.Prepare("Wavefront2D")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	wantPlanes := int64(2*(n+1) + 1)
	if stats.WavefrontPlanes != wantPlanes {
		t.Errorf("WavefrontPlanes = %d, want %d", stats.WavefrontPlanes, wantPlanes)
	}
	if stats.DOALLChunks == 0 {
		t.Error("wavefront planes dispatched no chunks")
	}
	// eq.1 runs once per in-box point (bounding-box slack is skipped
	// before the kernel), eq.2 once per point of the output DOALL.
	if stats.EquationInstances != 2*points {
		t.Errorf("EquationInstances = %d, want %d", stats.EquationInstances, 2*points)
	}
	if !strings.Contains(stats.String(), "wavefront_planes=") {
		t.Errorf("stats string missing wavefront counter: %s", stats)
	}

	for _, tc := range []struct {
		name string
		opts []ps.RunOption
	}{
		{"HyperOff", []ps.RunOption{ps.WithHyperplane(ps.HyperplaneOff)}},
		{"Sequential", []ps.RunOption{ps.Sequential()}},
	} {
		r, err := prog.Prepare("Wavefront2D", tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Run(context.Background(), args)
		if err != nil {
			t.Fatal(err)
		}
		if st.WavefrontPlanes != 0 {
			t.Errorf("%s: WavefrontPlanes = %d, want 0", tc.name, st.WavefrontPlanes)
		}
	}
}

// TestWavefrontCancellation aborts a long wavefront sweep mid-flight:
// the plane loop must notice the context within a few planes and return
// a typed cancellation error.
func TestWavefrontCancellation(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 64, 1 << 18
	in := seedGrid(m)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = run.Run(ctx, []any{in, int64(m), int64(maxK)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wavefront cancellation took %v", elapsed)
	}
}
