package ps_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// batchWorkload is one corpus module with a generator of distinct
// per-element arguments, so batched elements cannot accidentally agree
// by all computing the same thing.
type batchWorkload struct {
	name   string
	src    string
	module string
	args   func(i int) ps.Args
}

func batchGrid(m int64, salt int) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			a.SetF([]int64{i, j}, float64((i*13+j*7+int64(salt)*3)%11)/11.0)
		}
	}
	return a
}

func batchWorkloads() []batchWorkload {
	return []batchWorkload{
		{"smooth", psrc.Smooth, "Smooth", func(i int) ps.Args {
			const n = 24
			xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
			for k := int64(0); k <= n+1; k++ {
				xs.SetF([]int64{k}, float64((int(k)*5+i*3)%13)/13.0)
			}
			return ps.Args{xs, int64(n)}
		}},
		{"gauss_seidel", psrc.RelaxationGS, "Relaxation", func(i int) ps.Args {
			return ps.Args{batchGrid(10, i), int64(10), int64(3 + i%2)}
		}},
		{"coupled", psrc.CoupledGrid, "CoupledGrid", func(i int) ps.Args {
			return ps.Args{batchGrid(12, i), int64(12), int64(2 + i%3)}
		}},
		{"pipeline", psrc.Pipeline, "Pipeline", func(i int) ps.Args {
			const n = 16
			xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
			for k := int64(0); k <= n+1; k++ {
				xs.SetF([]int64{k}, float64((int(k)*7+i)%9))
			}
			return ps.Args{xs, int64(n)}
		}},
	}
}

// valuesEqualBitwise compares one result list bitwise (NaN == NaN).
func valuesEqualBitwise(t *testing.T, label string, got, want []any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		switch w := want[i].(type) {
		case *ps.Array:
			g, ok := got[i].(*ps.Array)
			if !ok || !g.Equal(w) {
				t.Errorf("%s: result %d differs", label, i)
			}
		case float64:
			g, ok := got[i].(float64)
			if !ok || math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("%s: result %d = %v, want %v", label, i, got[i], w)
			}
		default:
			if got[i] != want[i] {
				t.Errorf("%s: result %d = %v, want %v", label, i, got[i], w)
			}
		}
	}
}

// TestRunBatchParity pins the batch-DOALL contract: RunBatch over N
// distinct activations returns, per element, exactly what N sequential
// Runner.Run calls return — bitwise, under every wavefront schedule.
// The batch axis appears in no subscript, so the §5 fusion test admits
// it trivially; this test is the empirical half of that argument. Run
// with -race: batch elements execute concurrently on the pool.
func TestRunBatchParity(t *testing.T) {
	const batchN = 7
	schedules := []struct {
		name string
		opts []ps.RunOption
	}{
		{"barrier", []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.ScheduleBarrier)}},
		{"doacross", []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"auto", []ps.RunOption{ps.Workers(4)}},
		{"sequential", []ps.RunOption{ps.Sequential()}},
	}
	for _, wl := range batchWorkloads() {
		prog, err := ps.CompileProgram(wl.name+".ps", wl.src)
		if err != nil {
			t.Fatalf("%s: %v", wl.name, err)
		}
		// Reference: element-by-element sequential runs.
		refRun, err := prog.Prepare(wl.module, ps.Sequential())
		if err != nil {
			t.Fatal(err)
		}
		refs := make([][]any, batchN)
		for i := range refs {
			out, _, err := refRun.Run(context.Background(), wl.args(i))
			if err != nil {
				t.Fatalf("%s ref %d: %v", wl.name, i, err)
			}
			refs[i] = out
		}
		for _, sc := range schedules {
			t.Run(wl.name+"/"+sc.name, func(t *testing.T) {
				run, err := prog.Prepare(wl.module, sc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				batch := make([]ps.Args, batchN)
				for i := range batch {
					batch[i] = wl.args(i)
				}
				out, stats, err := run.RunBatch(context.Background(), batch)
				if err != nil {
					t.Fatal(err)
				}
				if len(out) != batchN {
					t.Fatalf("%d batch results, want %d", len(out), batchN)
				}
				if stats == nil || stats.EquationInstances == 0 {
					t.Error("batch run reported no equation instances")
				}
				for i, br := range out {
					if br.Err != nil {
						t.Fatalf("element %d: %v", i, br.Err)
					}
					valuesEqualBitwise(t, fmt.Sprintf("element %d", i), br.Values, refs[i])
				}
			})
		}
	}
}

// TestRunBatchEdgeCases pins the degenerate shapes: empty batch,
// singleton batch, per-element error isolation, and cancellation.
func TestRunBatchEdgeCases(t *testing.T) {
	prog, err := ps.CompileProgram("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Smooth", ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		out, _, err := run.RunBatch(context.Background(), nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("empty batch: out=%v err=%v", out, err)
		}
	})

	goodArgs := batchWorkloads()[0].args
	t.Run("singleton", func(t *testing.T) {
		out, _, err := run.RunBatch(context.Background(), []ps.Args{goodArgs(0)})
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := run.Run(context.Background(), goodArgs(0))
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Err != nil {
			t.Fatal(out[0].Err)
		}
		valuesEqualBitwise(t, "singleton", out[0].Values, ref)
	})

	t.Run("error isolation", func(t *testing.T) {
		// Element 1 passes an array whose bounds contradict N; its
		// failure must not disturb elements 0 and 2.
		bad := ps.Args{ps.NewRealArray(ps.Axis{Lo: 0, Hi: 3}), int64(24)}
		out, _, err := run.RunBatch(context.Background(), []ps.Args{goodArgs(0), bad, goodArgs(2)})
		if err != nil {
			t.Fatal(err)
		}
		if out[1].Err == nil {
			t.Error("mismatched array bounds accepted")
		}
		for _, i := range []int{0, 2} {
			if out[i].Err != nil {
				t.Errorf("element %d failed alongside bad element: %v", i, out[i].Err)
			}
			ref, _, _ := run.Run(context.Background(), goodArgs(i))
			valuesEqualBitwise(t, fmt.Sprintf("element %d", i), out[i].Values, ref)
		}
	})

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err := run.RunBatch(ctx, []ps.Args{goodArgs(0), goodArgs(1)})
		if err == nil {
			t.Fatal("pre-cancelled context accepted")
		}
		if !strings.Contains(err.Error(), "cancel") {
			t.Errorf("unexpected cancellation error: %v", err)
		}
	})
}
