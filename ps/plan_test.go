package ps_test

import (
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// TestModulePlan checks the public plan surface: the listing exposes the
// collapsed DOALL structure, slots and kernel indices of the lowered IR.
func TestModulePlan(t *testing.T) {
	prog, err := ps.CompileProgram("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Module("Relaxation")
	listing := m.Plan()
	for _, want := range []string{
		"plan Relaxation",
		"doall I, J collapse(2) leaf",
		"do K",
		"eq.3 -> A",
		"[kernel",
		"virtual A dim 1 window 2 (K)",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("Plan() missing %q:\n%s", want, listing)
		}
	}
	if got, want := m.PlanCompact(), "DOALL I×J (eq.1); DO K (DOALL I×J (eq.3)); DOALL I×J (eq.2)"; got != want {
		t.Errorf("PlanCompact() = %q, want %q", got, want)
	}
	// The fused variant is lowered separately and marked as such.
	if !strings.Contains(m.PlanFused(), "fused") {
		t.Errorf("PlanFused() not marked fused:\n%s", m.PlanFused())
	}
}

// TestRunnerExplain checks Explain reflects the runner's options: the
// execution mode header and the plan variant actually executed.
func TestRunnerExplain(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(3))
	defer eng.Close()
	prog, err := eng.Compile("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation", ps.Grain(64))
	if err != nil {
		t.Fatal(err)
	}
	out := run.Explain()
	for _, want := range []string{"runner Relaxation: 3 workers, grain 64, base plan", "do K"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain() missing %q:\n%s", want, out)
		}
	}
	fused, err := prog.Prepare("Relaxation", ps.Sequential(), ps.Fused())
	if err != nil {
		t.Fatal(err)
	}
	out = fused.Explain()
	for _, want := range []string{"sequential", "fused plan", "plan Relaxation"} {
		if !strings.Contains(out, want) {
			t.Errorf("fused Explain() missing %q:\n%s", want, out)
		}
	}
}
