package ps_test

import (
	"fmt"
	"testing"

	"repro/ps"
)

// cacheSource returns structurally identical single-module programs
// whose sources differ only in one digit, so every compiled program has
// the same accounted size and eviction arithmetic is exact.
func cacheSource(i int) (name, src string) {
	return fmt.Sprintf("c%d", i), fmt.Sprintf(`
M: module (X: real): [Y: real];
define
    Y = X + %d.0;
end M;
`, i)
}

// oneSize measures the accounted size of one cached program.
func oneSize(t *testing.T) int64 {
	t.Helper()
	eng := ps.NewEngine(ps.EngineWorkers(1))
	defer eng.Close()
	name, src := cacheSource(0)
	if _, err := eng.Compile(name+".ps", src); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CacheBytes <= 0 {
		t.Fatalf("accounted size %d, want > 0", st.CacheBytes)
	}
	return st.CacheBytes
}

// TestEngineCacheLRU pins the eviction policy: a budget of three
// program-sizes holds exactly three programs, evicts in LRU order, and
// a cache hit refreshes recency.
func TestEngineCacheLRU(t *testing.T) {
	size := oneSize(t)
	eng := ps.NewEngine(ps.EngineWorkers(1), ps.WithCacheLimit(3*size))
	defer eng.Close()

	compile := func(i int) {
		t.Helper()
		name, src := cacheSource(i)
		if _, err := eng.Compile(name+".ps", src); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 3; i++ {
		compile(i)
	}
	if st := eng.Stats(); st.CachedPrograms != 3 || st.CacheEvictions != 0 {
		t.Fatalf("after 3 compiles: %+v", st)
	}

	// Touch c0 (hit → most recent), then add c3: c1 is now LRU and goes.
	compile(0)
	if st := eng.Stats(); st.CacheHits != 1 {
		t.Fatalf("recompile of cached program missed: %+v", st)
	}
	compile(3)
	st := eng.Stats()
	if st.CachedPrograms != 3 || st.CacheEvictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}

	// c1 was evicted: compiling it again must miss; c0 must still hit.
	missesBefore := st.CacheMisses
	compile(1)
	if st := eng.Stats(); st.CacheMisses != missesBefore+1 {
		t.Fatalf("evicted program did not miss: %+v", st)
	}
	compile(0)
	if st := eng.Stats(); st.CacheHits != 2 {
		t.Fatalf("surviving program did not hit: %+v", st)
	}
	if st := eng.Stats(); st.CacheBytes > st.CacheLimit {
		t.Fatalf("cache over budget: %+v", st)
	}
}

// TestEngineCacheOversized pins the safety valve: one program larger
// than the whole budget still caches (the most-recent entry is never
// evicted), and the next compile displaces it.
func TestEngineCacheOversized(t *testing.T) {
	size := oneSize(t)
	eng := ps.NewEngine(ps.EngineWorkers(1), ps.WithCacheLimit(size/2))
	defer eng.Close()

	name0, src0 := cacheSource(0)
	if _, err := eng.Compile(name0+".ps", src0); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CachedPrograms != 1 {
		t.Fatalf("oversized program not cached: %+v", st)
	}
	// Immediately recompiling the oversized program is still a hit.
	if _, err := eng.Compile(name0+".ps", src0); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheHits != 1 {
		t.Fatalf("oversized program did not hit: %+v", st)
	}

	name1, src1 := cacheSource(1)
	if _, err := eng.Compile(name1+".ps", src1); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CachedPrograms != 1 || st.CacheEvictions != 1 {
		t.Fatalf("oversized entry not displaced: %+v", st)
	}
}

// TestEngineCacheUnbounded pins the default: no limit, no evictions.
func TestEngineCacheUnbounded(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(1))
	defer eng.Close()
	for i := 0; i < 8; i++ {
		name, src := cacheSource(i)
		if _, err := eng.Compile(name+".ps", src); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.CachedPrograms != 8 || st.CacheEvictions != 0 || st.CacheLimit != 0 {
		t.Fatalf("unbounded cache: %+v", st)
	}
	if st.CacheMisses != 8 || st.CacheHits != 0 {
		t.Fatalf("unbounded counters: %+v", st)
	}
}
