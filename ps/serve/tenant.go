package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// tenant is one traffic source's admission state: a token bucket for
// rate quota and a queued-request count for the backpressure bound.
// Tenants are identified by the request's tenant field (or the
// X-PS-Tenant header); unidentified traffic shares the "default"
// tenant.
type tenant struct {
	name string

	mu     sync.Mutex
	tokens float64
	last   time.Time
	// rejected counts quota rejections since the last admitted request.
	// Each rejected client is presumed to retry, so the next arrival
	// needs the bucket to accrue one token per client ahead of it plus
	// its own — the Retry-After hint scales with the backlog instead of
	// always quoting the sub-second single-token refill.
	rejected int

	// queued counts requests admitted but not yet taken into a batch,
	// across every batcher. It is the /metrics queue-depth gauge and
	// the value bounded by Config.QueueDepth.
	queued atomic.Int64
}

// takeToken consumes one quota token, refilling the bucket first.
// rate <= 0 disables the quota. When the bucket is empty it reports
// how long until the caller's token accrues — the Retry-After hint.
// The hint accounts for every client already turned away since the
// last admission: a drained bucket under contention quotes the time
// for the whole backlog to clear, not just one token's refill.
func (t *tenant) takeToken(rate float64, burst int, now time.Time) (ok bool, retryAfter time.Duration) {
	if rate <= 0 {
		return true, 0
	}
	if burst < 1 {
		burst = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.tokens = float64(burst)
	} else {
		t.tokens += now.Sub(t.last).Seconds() * rate
		if t.tokens > float64(burst) {
			t.tokens = float64(burst)
		}
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		t.rejected = 0
		return true, 0
	}
	deficit := (1 - t.tokens) + float64(t.rejected)
	t.rejected++
	return false, time.Duration(math.Ceil(deficit/rate*1000)) * time.Millisecond
}

// tryEnqueue reserves one queue slot under the per-tenant bound; the
// batcher releases it when the request is taken into a batch. depth
// <= 0 disables the bound.
func (t *tenant) tryEnqueue(depth int) bool {
	if depth <= 0 {
		t.queued.Add(1)
		return true
	}
	for {
		q := t.queued.Load()
		if q >= int64(depth) {
			return false
		}
		if t.queued.CompareAndSwap(q, q+1) {
			return true
		}
	}
}

// release returns a queue slot (request taken into a batch, or
// admission rolled back).
func (t *tenant) release() { t.queued.Add(-1) }
