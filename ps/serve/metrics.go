package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/ps"
)

// metrics is the server's counter set, rendered in Prometheus text
// exposition format (version 0.0.4) by render. Everything is stdlib:
// counters are atomics, labeled counters a mutex-guarded map, and the
// batch-size histogram a fixed bucket ladder. Gauges that mirror live
// state (queue depths, cache occupancy) are sampled at scrape time
// from the server rather than double-booked here.
type metrics struct {
	requests *labeledCounter // by HTTP status code
	rejected *labeledCounter // by admission reason

	activations atomic.Int64 // batch elements completed successfully
	runErrors   atomic.Int64 // batch elements that failed at run time
	batches     atomic.Int64 // fused batch dispatches
	batchSize   *histogram   // elements per dispatched batch
	reloads     atomic.Int64 // successful /reload sweeps

	// Run counters aggregated from every batch's RunStats — the same
	// counters Runner.Run reports per activation.
	eqInstances     atomic.Int64
	doallChunks     atomic.Int64
	wavefrontPlanes atomic.Int64
	doacrossTiles   atomic.Int64
	doacrossStalls  atomic.Int64
	doacrossSteals  atomic.Int64
	pipelineStages  atomic.Int64
	stageStalls     atomic.Int64
	specialized     atomic.Int64
	arenaReuses     atomic.Int64

	// runWall is the fused-dispatch wall time in microseconds — the
	// run-timing histogram scrapes see without tracing.
	runWall *histogram
	// httpLatency is per-endpoint request latency in microseconds.
	httpLatency *labeledHistogram
	// tracedRuns counts ?trace=1 activations served.
	tracedRuns atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  newLabeledCounter(),
		rejected:  newLabeledCounter(),
		batchSize: newHistogram(1, 2, 4, 8, 16, 32, 64, 128),
		runWall:   newHistogram(100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000),
		httpLatency: newLabeledHistogram(
			100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000),
	}
}

// noteRunStats folds one batch's RunStats into the aggregate run
// counters.
func (m *metrics) noteRunStats(st *ps.RunStats) {
	if st == nil {
		return
	}
	m.eqInstances.Add(st.EquationInstances)
	m.doallChunks.Add(st.DOALLChunks)
	m.wavefrontPlanes.Add(st.WavefrontPlanes)
	m.doacrossTiles.Add(st.DoacrossTiles)
	m.doacrossStalls.Add(st.DoacrossStalls)
	m.doacrossSteals.Add(st.DoacrossSteals)
	m.pipelineStages.Add(st.PipelineStages)
	m.stageStalls.Add(st.StageStalls)
	m.specialized.Add(st.SpecializedKernels)
	m.arenaReuses.Add(st.ArenaReuses)
	m.runWall.observe(st.WallTime.Microseconds())
}

// labeledCounter is a counter family with one string label value per
// series.
type labeledCounter struct {
	mu sync.Mutex
	v  map[string]*atomic.Int64
}

func newLabeledCounter() *labeledCounter {
	return &labeledCounter{v: make(map[string]*atomic.Int64)}
}

func (c *labeledCounter) add(label string, n int64) {
	c.mu.Lock()
	ctr, ok := c.v[label]
	if !ok {
		ctr = new(atomic.Int64)
		c.v[label] = ctr
	}
	c.mu.Unlock()
	ctr.Add(n)
}

// snapshot returns the series sorted by label for deterministic
// rendering.
func (c *labeledCounter) snapshot() []labeledValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]labeledValue, 0, len(c.v))
	for label, ctr := range c.v {
		out = append(out, labeledValue{label, ctr.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

type labeledValue struct {
	label string
	value int64
}

// histogram is a cumulative-bucket histogram over int64 observations.
type histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // one per bound, plus +Inf at the end
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds ...int64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// labeledHistogram is a histogram family sharing one bucket ladder,
// one series per label value (here: per endpoint).
type labeledHistogram struct {
	bounds []int64
	mu     sync.Mutex
	v      map[string]*histogram
}

func newLabeledHistogram(bounds ...int64) *labeledHistogram {
	return &labeledHistogram{bounds: bounds, v: make(map[string]*histogram)}
}

func (l *labeledHistogram) observe(label string, v int64) {
	l.mu.Lock()
	h, ok := l.v[label]
	if !ok {
		h = newHistogram(l.bounds...)
		l.v[label] = h
	}
	l.mu.Unlock()
	h.observe(v)
}

// labeledSeries is one labeled histogram in a snapshot.
type labeledSeries struct {
	label string
	h     *histogram
}

// snapshot returns the series sorted by label.
func (l *labeledHistogram) snapshot() []labeledSeries {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]labeledSeries, 0, len(l.v))
	for label, h := range l.v {
		out = append(out, labeledSeries{label, h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// render writes the full exposition. The live gauge values come from
// the server: per-tenant queue depths and the engine cache snapshot.
func (m *metrics) render(sb *strings.Builder, queueDepths []labeledValue, es ps.EngineStats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(sb, "# HELP ps_serve_requests_total Activation requests by HTTP status code.\n# TYPE ps_serve_requests_total counter\n")
	for _, lv := range m.requests.snapshot() {
		fmt.Fprintf(sb, "ps_serve_requests_total{code=%q} %d\n", lv.label, lv.value)
	}
	fmt.Fprintf(sb, "# HELP ps_serve_rejected_total Requests rejected at admission, by reason.\n# TYPE ps_serve_rejected_total counter\n")
	for _, lv := range m.rejected.snapshot() {
		fmt.Fprintf(sb, "ps_serve_rejected_total{reason=%q} %d\n", lv.label, lv.value)
	}

	counter("ps_serve_activations_total", "Batch elements executed successfully.", m.activations.Load())
	counter("ps_serve_run_errors_total", "Batch elements that failed at run time.", m.runErrors.Load())
	counter("ps_serve_batches_total", "Fused batch dispatches.", m.batches.Load())
	counter("ps_serve_reloads_total", "Successful program reload sweeps.", m.reloads.Load())

	fmt.Fprintf(sb, "# HELP ps_serve_batch_size Elements per dispatched batch.\n# TYPE ps_serve_batch_size histogram\n")
	var cum int64
	for i, bound := range m.batchSize.bounds {
		cum += m.batchSize.buckets[i].Load()
		fmt.Fprintf(sb, "ps_serve_batch_size_bucket{le=\"%d\"} %d\n", bound, cum)
	}
	cum += m.batchSize.buckets[len(m.batchSize.bounds)].Load()
	fmt.Fprintf(sb, "ps_serve_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(sb, "ps_serve_batch_size_sum %d\n", m.batchSize.sum.Load())
	fmt.Fprintf(sb, "ps_serve_batch_size_count %d\n", m.batchSize.count.Load())

	fmt.Fprintf(sb, "# HELP ps_serve_queue_depth Requests queued per tenant, awaiting a batch.\n# TYPE ps_serve_queue_depth gauge\n")
	for _, lv := range queueDepths {
		fmt.Fprintf(sb, "ps_serve_queue_depth{tenant=%q} %d\n", lv.label, lv.value)
	}

	fmt.Fprintf(sb, "# HELP ps_serve_http_latency_us Request latency in microseconds, by endpoint.\n# TYPE ps_serve_http_latency_us histogram\n")
	for _, ls := range m.httpLatency.snapshot() {
		var cum int64
		for i, bound := range ls.h.bounds {
			cum += ls.h.buckets[i].Load()
			fmt.Fprintf(sb, "ps_serve_http_latency_us_bucket{endpoint=%q,le=\"%d\"} %d\n", ls.label, bound, cum)
		}
		cum += ls.h.buckets[len(ls.h.bounds)].Load()
		fmt.Fprintf(sb, "ps_serve_http_latency_us_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ls.label, cum)
		fmt.Fprintf(sb, "ps_serve_http_latency_us_sum{endpoint=%q} %d\n", ls.label, ls.h.sum.Load())
		fmt.Fprintf(sb, "ps_serve_http_latency_us_count{endpoint=%q} %d\n", ls.label, ls.h.count.Load())
	}

	counter("ps_serve_traced_runs_total", "Activations executed with ?trace=1 recording.", m.tracedRuns.Load())

	counter("ps_run_eq_instances_total", "Equation instances executed.", m.eqInstances.Load())
	counter("ps_run_doall_chunks_total", "DOALL chunks dispatched to workers.", m.doallChunks.Load())
	counter("ps_run_wavefront_planes_total", "Hyperplane launches of wavefront steps.", m.wavefrontPlanes.Load())
	counter("ps_run_doacross_tiles_total", "Doacross tile instances executed.", m.doacrossTiles.Load())
	counter("ps_run_doacross_stalls_total", "Doacross workers parked on predecessor tiles.", m.doacrossStalls.Load())
	counter("ps_run_doacross_steals_total", "Doacross tile instances run by non-home workers.", m.doacrossSteals.Load())
	counter("ps_run_pipeline_stages_total", "PS-DSWP stages launched by decoupled pipeline steps.", m.pipelineStages.Load())
	counter("ps_run_stage_stalls_total", "Pipeline stages blocked on starved or backpressured channels.", m.stageStalls.Load())
	counter("ps_run_specialized_total", "Equation instances executed by specialized kernels.", m.specialized.Load())
	counter("ps_run_arena_reuses_total", "Activation arrays recycled from the arena.", m.arenaReuses.Load())

	fmt.Fprintf(sb, "# HELP ps_run_wall_us Fused-dispatch wall time in microseconds.\n# TYPE ps_run_wall_us histogram\n")
	var cumWall int64
	for i, bound := range m.runWall.bounds {
		cumWall += m.runWall.buckets[i].Load()
		fmt.Fprintf(sb, "ps_run_wall_us_bucket{le=\"%d\"} %d\n", bound, cumWall)
	}
	cumWall += m.runWall.buckets[len(m.runWall.bounds)].Load()
	fmt.Fprintf(sb, "ps_run_wall_us_bucket{le=\"+Inf\"} %d\n", cumWall)
	fmt.Fprintf(sb, "ps_run_wall_us_sum %d\n", m.runWall.sum.Load())
	fmt.Fprintf(sb, "ps_run_wall_us_count %d\n", m.runWall.count.Load())

	counter("ps_engine_cache_hits_total", "Compile calls served from the program cache.", es.CacheHits)
	counter("ps_engine_cache_misses_total", "Compile calls that missed the program cache.", es.CacheMisses)
	counter("ps_engine_cache_evictions_total", "Programs evicted from the cache by the LRU budget.", es.CacheEvictions)
	gauge("ps_engine_cache_programs", "Programs currently cached.", int64(es.CachedPrograms))
	gauge("ps_engine_cache_bytes", "Compiled-size accounting of cached programs.", es.CacheBytes)
}
