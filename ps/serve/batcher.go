package serve

import (
	"context"
	"sync"
	"time"

	"repro/ps"
)

// pending is one admitted activation waiting for a batch. outcome is
// buffered so the batcher never blocks on a handler that stopped
// listening (client disconnect): delivery is a non-blocking send into
// the buffer.
type pending struct {
	tenant  *tenant
	args    ps.Args
	outcome chan outcome
}

// outcome is what the batch execution resolved one request to.
type outcome struct {
	values    []any
	batchSize int
	err       error
}

// batcher coalesces pending activations of one (program, module) pair
// into fused batches: requests accumulate for at most BatchWindow (or
// until MaxBatch are waiting), then drain round-robin across tenants
// into a single Runner.RunBatch call — the batch axis is the §5 fusion
// argument applied to serving. One goroutine per batcher executes
// batches in arrival order; distinct (program, module) pairs batch and
// run independently.
type batcher struct {
	srv    *Server
	runner *ps.Runner

	mu      sync.Mutex
	queues  map[string][]*pending // per-tenant FIFO
	order   []string              // tenants with pending requests, round-robin ring
	cursor  int                   // next ring position to drain
	total   int
	closed  bool
	wake    chan struct{} // buffered 1: "state changed"
	stopped chan struct{} // closed when the loop exits
}

func newBatcher(srv *Server, runner *ps.Runner) *batcher {
	b := &batcher{
		srv:     srv,
		runner:  runner,
		queues:  make(map[string][]*pending),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	go b.loop()
	return b
}

// enqueue admits one request into its tenant's FIFO. false means the
// batcher is closed (server draining or program reloaded) and the
// caller must not expect an outcome.
func (b *batcher) enqueue(p *pending) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	name := p.tenant.name
	if len(b.queues[name]) == 0 {
		b.order = append(b.order, name)
	}
	b.queues[name] = append(b.queues[name], p)
	b.total++
	b.mu.Unlock()
	b.signal()
	return true
}

// close stops admission and wakes the loop to flush what is queued;
// already-admitted requests still execute (drain semantics).
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.signal()
}

func (b *batcher) signal() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// takeLocked drains up to max requests, one per tenant per ring pass,
// so a tenant with a deep backlog cannot starve the others out of a
// batch. Callers hold b.mu.
func (b *batcher) takeLocked(max int) []*pending {
	if max <= 0 {
		max = b.total
	}
	var out []*pending
	for len(out) < max && b.total > 0 {
		if b.cursor >= len(b.order) {
			b.cursor = 0
		}
		name := b.order[b.cursor]
		q := b.queues[name]
		p := q[0]
		if len(q) == 1 {
			delete(b.queues, name)
			b.order = append(b.order[:b.cursor], b.order[b.cursor+1:]...)
			// cursor now points at the next tenant already.
		} else {
			b.queues[name] = q[1:]
			b.cursor++
		}
		b.total--
		p.tenant.release()
		out = append(out, p)
	}
	return out
}

// loop is the batcher goroutine: wait for the first pending request,
// hold the batch window open (unless the batch fills or the batcher
// closes first), then drain and execute fused batches until empty.
func (b *batcher) loop() {
	defer close(b.stopped)
	for {
		b.mu.Lock()
		for b.total == 0 && !b.closed {
			b.mu.Unlock()
			<-b.wake
			b.mu.Lock()
		}
		if b.total == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		window := b.srv.cfg.BatchWindow
		full := b.total >= b.srv.cfg.MaxBatch || b.closed
		b.mu.Unlock()

		if window > 0 && !full {
			timer := time.NewTimer(window)
		wait:
			for {
				select {
				case <-timer.C:
					break wait
				case <-b.wake:
					b.mu.Lock()
					full = b.total >= b.srv.cfg.MaxBatch || b.closed
					b.mu.Unlock()
					if full {
						timer.Stop()
						break wait
					}
				}
			}
		}

		for {
			b.mu.Lock()
			reqs := b.takeLocked(b.srv.cfg.MaxBatch)
			b.mu.Unlock()
			if len(reqs) == 0 {
				break
			}
			b.execute(reqs)
		}
	}
}

// execute runs one fused batch and delivers per-request outcomes.
func (b *batcher) execute(reqs []*pending) {
	args := make([]ps.Args, len(reqs))
	for i, p := range reqs {
		args[i] = p.args
	}
	ctx := context.Background()
	if t := b.srv.cfg.RunTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	out, stats, err := b.runner.RunBatch(ctx, args)

	m := b.srv.metrics
	m.batches.Add(1)
	m.batchSize.observe(int64(len(reqs)))
	m.noteRunStats(stats)
	for i, p := range reqs {
		o := outcome{batchSize: len(reqs)}
		switch {
		case err != nil:
			o.err = err
		case out[i].Err != nil:
			o.err = out[i].Err
		default:
			o.values = out[i].Values
		}
		if o.err != nil {
			m.runErrors.Add(1)
		} else {
			m.activations.Add(1)
		}
		select {
		case p.outcome <- o:
		default:
		}
	}
}
