package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

// corpus served by the stress test: a pure DOALL and a hyperplane
// wavefront, so batches cross both schedule shapes.
var testPrograms = map[string]struct {
	src    string
	module string
}{
	"smooth":       {psrc.Smooth, "Smooth"},
	"gauss_seidel": {psrc.RelaxationGS, "Relaxation"},
}

// testInputs builds the i-th JSON input set for a program.
func testInputs(prog string, i int) map[string]any {
	switch prog {
	case "smooth":
		n := 16 + 4*i
		xs := make([]float64, n+2)
		for k := range xs {
			xs[k] = float64((k*7+i*3)%13) / 13.0
		}
		return map[string]any{"Xs": xs, "N": n}
	case "gauss_seidel":
		m := 8
		grid := make([][]float64, m+2)
		for r := range grid {
			grid[r] = make([]float64, m+2)
			for c := range grid[r] {
				if r > 0 && r <= m && c > 0 && c <= m {
					grid[r][c] = float64((r*13+c*7+i*5)%11) / 11.0
				}
			}
		}
		return map[string]any{"InitialA": grid, "M": m, "maxK": 3 + i%2}
	}
	panic("unknown program " + prog)
}

// referenceJSON runs one activation directly (sequential Runner.Run on
// an independent compilation) and returns the canonical JSON encoding
// of its results — the bitwise-parity oracle for the served response.
func referenceJSON(t *testing.T, progName string, i int) string {
	t.Helper()
	tp := testPrograms[progName]
	prog, err := ps.CompileProgram(progName+".ps", tp.src)
	if err != nil {
		t.Fatal(err)
	}
	raw := make(map[string]json.RawMessage)
	for k, v := range testInputs(progName, i) {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		raw[k] = data
	}
	args, err := ps.ArgsFromJSON(prog, tp.module, raw)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare(tp.module, ps.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ps.ResultsToJSON(prog, tp.module, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, tp := range testPrograms {
		if err := srv.AddProgram(name, tp.src); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// postRun issues one /v1/run and returns status, headers and body.
func postRun(t *testing.T, ts *httptest.Server, tenant, prog, module string, i int) (int, http.Header, []byte) {
	t.Helper()
	payload := map[string]any{"program": prog, "module": module, "inputs": testInputs(prog, i)}
	if tenant != "" {
		payload["tenant"] = tenant
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// rawResponse decodes just enough of a /v1/run reply to compare the
// results field byte-for-byte against the reference encoding.
type rawResponse struct {
	Results   json.RawMessage `json:"results"`
	BatchSize int             `json:"batch_size"`
}

// TestServeBatchParityStress is the acceptance stress: several tenants
// hammer two programs concurrently, responses are coalesced into fused
// batches, and every response must equal — bitwise, via the canonical
// JSON encoding — a direct sequential Runner.Run of the same
// activation. Run with -race.
func TestServeBatchParityStress(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:     4,
		BatchWindow: 500 * time.Microsecond,
		MaxBatch:    16,
		QueueDepth:  1024,
	})

	const inputsPerProgram = 3
	refs := make(map[string]string)
	for name := range testPrograms {
		for i := 0; i < inputsPerProgram; i++ {
			refs[fmt.Sprintf("%s/%d", name, i)] = referenceJSON(t, name, i)
		}
	}
	progNames := []string{"smooth", "gauss_seidel"}

	const goroutines, runsEach = 8, 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", g%3)
			for r := 0; r < runsEach; r++ {
				prog := progNames[(g+r)%len(progNames)]
				i := (g * r) % inputsPerProgram
				code, _, body := postRun(t, ts, tenant, prog, testPrograms[prog].module, i)
				if code != http.StatusOK {
					errc <- fmt.Errorf("%s/%d: status %d: %s", prog, i, code, body)
					continue
				}
				var rr rawResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					errc <- err
					continue
				}
				if got, want := string(rr.Results), refs[fmt.Sprintf("%s/%d", prog, i)]; got != want {
					errc <- fmt.Errorf("%s/%d: served results differ from direct run:\n got %s\nwant %s", prog, i, got, want)
				}
				if rr.BatchSize < 1 {
					errc <- fmt.Errorf("%s/%d: batch_size %d", prog, i, rr.BatchSize)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The stress must have produced real batching state: every request
	// accounted, queue drained back to zero.
	if got := srv.metrics.activations.Load(); got != goroutines*runsEach {
		t.Errorf("activations counter = %d, want %d", got, goroutines*runsEach)
	}
	if srv.metrics.batches.Load() < 1 {
		t.Error("no batches dispatched")
	}
	srv.mu.Lock()
	for name, tn := range srv.tenants {
		if q := tn.queued.Load(); q != 0 {
			t.Errorf("tenant %s queue depth %d after drain-to-idle", name, q)
		}
	}
	srv.mu.Unlock()
}

// TestServeQuota pins the token-bucket rejection: burst 1 admits one
// request, the next gets 429 with Retry-After, and an unrelated tenant
// is unaffected.
func TestServeQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    2,
		TenantRate: 0.001, // one token per ~17 minutes: no refill mid-test
	})
	if code, _, body := postRun(t, ts, "alice", "smooth", "Smooth", 0); code != http.StatusOK {
		t.Fatalf("first request: %d: %s", code, body)
	}
	code, hdr, body := postRun(t, ts, "alice", "smooth", "Smooth", 0)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d: %s", code, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q", hdr.Get("Retry-After"))
	}
	var er struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "quota") || er.RetryAfter < 1 {
		t.Errorf("quota rejection body: %s", body)
	}
	if code, _, body := postRun(t, ts, "bob", "smooth", "Smooth", 0); code != http.StatusOK {
		t.Errorf("other tenant rejected: %d: %s", code, body)
	}
}

// TestServeQuotaRetryAfterGrows pins the end-to-end Retry-After hint on
// a drained bucket: repeated rejections quote growing waits derived from
// the bucket's actual refill rate — and far above the momentary
// batch-window hint a full queue quotes — instead of a constant ~1s
// that would stampede every backed-off client at once.
func TestServeQuotaRetryAfterGrows(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    2,
		TenantRate: 0.001, // one token per ~17 minutes: no refill mid-test
	})
	if code, _, body := postRun(t, ts, "alice", "smooth", "Smooth", 0); code != http.StatusOK {
		t.Fatalf("first request: %d: %s", code, body)
	}
	prev := 0
	for i := 0; i < 3; i++ {
		code, hdr, body := postRun(t, ts, "alice", "smooth", "Smooth", 0)
		if code != http.StatusTooManyRequests {
			t.Fatalf("rejection %d: %d: %s", i+1, code, body)
		}
		ra, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil {
			t.Fatalf("rejection %d: Retry-After = %q", i+1, hdr.Get("Retry-After"))
		}
		// One token accrues per ~1000s: each rejection joins the backlog
		// and the hint must step up by about that much.
		if ra <= prev || ra < (i+1)*900 {
			t.Errorf("rejection %d: Retry-After = %d, want growing (prev %d) and >= %d", i+1, ra, prev, (i+1)*900)
		}
		prev = ra
	}
	// The drained-bucket wait dwarfs a queue-full hint, which quotes at
	// most the batch window (whole seconds, minimum 1).
	if queueHint := retrySeconds(time.Second); prev <= queueHint {
		t.Errorf("drained-bucket Retry-After %d not above queue-full hint %d", prev, queueHint)
	}
}

// TestServeQueueFull pins backpressure: with a queue depth of 1 and a
// long batch window, a second concurrent request is rejected with 429
// while the first is still waiting for its batch.
func TestServeQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:     2,
		BatchWindow: 400 * time.Millisecond,
		QueueDepth:  1,
	})
	type result struct {
		code int
		body []byte
	}
	first := make(chan result, 1)
	go func() {
		code, _, body := postRun(t, ts, "", "smooth", "Smooth", 0)
		first <- result{code, body}
	}()
	// Wait until the first request holds the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.tenantFor("default").queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr, body := postRun(t, ts, "", "smooth", "Smooth", 1)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-depth request: %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue-full rejection missing Retry-After")
	}
	if !strings.Contains(string(body), "queue is full") {
		t.Errorf("queue-full body: %s", body)
	}
	if r := <-first; r.code != http.StatusOK {
		t.Fatalf("queued request: %d: %s", r.code, r.body)
	}
}

// TestServeDrain pins graceful shutdown: a request waiting in a batch
// window completes when Drain flushes it, and the drained server
// answers 503 (run) / 503 (healthz) afterwards.
func TestServeDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:     2,
		BatchWindow: 10 * time.Second, // only drain can flush this
	})
	want := referenceJSON(t, "smooth", 0)
	type result struct {
		code int
		body []byte
	}
	first := make(chan result, 1)
	go func() {
		code, _, body := postRun(t, ts, "", "smooth", "Smooth", 0)
		first <- result{code, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.tenantFor("default").queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d: %s", r.code, r.body)
	}
	var rr rawResponse
	if err := json.Unmarshal(r.body, &rr); err != nil {
		t.Fatal(err)
	}
	if string(rr.Results) != want {
		t.Errorf("drained request results differ:\n got %s\nwant %s", rr.Results, want)
	}

	if code, hdr, _ := postRun(t, ts, "", "smooth", "Smooth", 0); code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("post-drain run: %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz: %d", resp.StatusCode)
	}
}

// TestServeMetrics runs a little traffic and checks the exposition
// carries the acceptance counters: activations, batch-size histogram,
// queue depth, rejections and engine cache stats.
func TestServeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TenantRate: 0.001})
	for i := 0; i < 2; i++ {
		postRun(t, ts, "m"+strconv.Itoa(i), "smooth", "Smooth", i)
	}
	postRun(t, ts, "m0", "smooth", "Smooth", 0) // quota-rejected

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	metricValue := func(line string) (int64, bool) {
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(l, line+" ") {
				v, err := strconv.ParseInt(strings.TrimPrefix(l, line+" "), 10, 64)
				return v, err == nil
			}
		}
		return 0, false
	}
	if v, ok := metricValue("ps_serve_activations_total"); !ok || v != 2 {
		t.Errorf("ps_serve_activations_total = %d (found %v)", v, ok)
	}
	if v, ok := metricValue("ps_serve_batch_size_count"); !ok || v < 1 {
		t.Errorf("ps_serve_batch_size_count = %d (found %v)", v, ok)
	}
	if v, ok := metricValue(`ps_serve_rejected_total{reason="quota"}`); !ok || v != 1 {
		t.Errorf("quota rejection counter = %d (found %v)", v, ok)
	}
	if v, ok := metricValue(`ps_serve_requests_total{code="200"}`); !ok || v != 2 {
		t.Errorf("200 request counter = %d (found %v)", v, ok)
	}
	for _, series := range []string{
		`ps_serve_queue_depth{tenant="m0"}`,
		"ps_run_eq_instances_total",
		"ps_run_doall_chunks_total",
		"ps_engine_cache_misses_total",
		"ps_engine_cache_programs",
		`ps_serve_batch_size_bucket{le="+Inf"}`,
	} {
		if _, ok := metricValue(series); !ok {
			t.Errorf("metrics missing series %s", series)
		}
	}
}

// TestServeReloadExplain pins the directory lifecycle: LoadDir serves
// *.ps files by base name, /reload picks up edits (content-hash makes
// unchanged files free) and drops deleted programs, /explain prints the
// lowered plan.
func TestServeReloadExplain(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("smooth.ps", psrc.Smooth)
	write("gauss_seidel.ps", psrc.RelaxationGS)

	srv, err := New(Config{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	if got := srv.Programs(); len(got) != 2 {
		t.Fatalf("programs after LoadDir: %v", got)
	}
	if code, _, body := postRun(t, ts, "", "smooth", "Smooth", 0); code != http.StatusOK {
		t.Fatalf("run from loaded dir: %d: %s", code, body)
	}

	// Unchanged reload is a no-op; an edit counts as changed and a
	// deleted file drops its program.
	reload := func() map[string]int {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("reload: %d: %s", resp.StatusCode, body)
		}
		var out map[string]int
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := reload(); out["changed"] != 0 || out["programs"] != 2 {
		t.Errorf("no-op reload: %v", out)
	}
	write("smooth.ps", psrc.Smooth+"\n(* edited *)\n")
	if out := reload(); out["changed"] != 1 {
		t.Errorf("edit reload: %v", out)
	}
	if code, _, body := postRun(t, ts, "", "smooth", "Smooth", 0); code != http.StatusOK {
		t.Fatalf("run after edit reload: %d: %s", code, body)
	}
	if err := os.Remove(filepath.Join(dir, "gauss_seidel.ps")); err != nil {
		t.Fatal(err)
	}
	if out := reload(); out["programs"] != 1 {
		t.Errorf("delete reload: %v", out)
	}
	if code, _, _ := postRun(t, ts, "", "gauss_seidel", "Relaxation", 0); code != http.StatusNotFound {
		t.Errorf("deleted program still served: %d", code)
	}

	// Explain renders the plan of a served module.
	resp, err := ts.Client().Get(ts.URL + "/explain?program=smooth&module=Smooth")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(strings.ToLower(string(data)), "doall") {
		t.Errorf("explain: %d: %s", resp.StatusCode, data)
	}
	if resp, err := ts.Client().Get(ts.URL + "/explain?program=nope&module=Nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("explain of unknown program: %d", resp.StatusCode)
		}
	}
}

// TestServeBadRequests pins the 4xx surface.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"missing fields", `{"inputs":{}}`, http.StatusBadRequest},
		{"unknown program", `{"program":"nope","module":"Nope","inputs":{}}`, http.StatusNotFound},
		{"unknown module", `{"program":"smooth","module":"Nope","inputs":{}}`, http.StatusNotFound},
		{"missing inputs", `{"program":"smooth","module":"Smooth","inputs":{}}`, http.StatusBadRequest},
		{"bad input type", `{"program":"smooth","module":"Smooth","inputs":{"Xs":"zap","N":2}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := post(c.body); code != c.want {
			t.Errorf("%s: status %d (want %d): %s", c.name, code, c.want, body)
		}
	}
	// Reload without a configured directory is a 400.
	resp, err := ts.Client().Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dirless reload: %d", resp.StatusCode)
	}
	// Healthz is fine on a healthy server.
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz: %d", resp.StatusCode)
		}
	}
}

// TestBatcherRoundRobin pins drain fairness at the unit level: one
// request per tenant per ring pass, so a deep backlog from one tenant
// cannot fill the whole batch.
func TestBatcherRoundRobin(t *testing.T) {
	b := &batcher{
		queues:  make(map[string][]*pending),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	tn := func(name string) *tenant { return &tenant{name: name} }
	a, c, d := tn("a"), tn("c"), tn("d")
	for _, p := range []*pending{
		{tenant: a}, {tenant: a}, {tenant: a}, {tenant: a},
		{tenant: c}, {tenant: c},
		{tenant: d},
	} {
		p.tenant.queued.Add(1)
		if !b.enqueue(p) {
			t.Fatal("enqueue failed")
		}
	}
	b.mu.Lock()
	got := b.takeLocked(5)
	b.mu.Unlock()
	var order []string
	for _, p := range got {
		order = append(order, p.tenant.name)
	}
	// Pass 1 takes one from each of a, c, d; pass 2 wraps back to a, c.
	want := []string{"a", "c", "d", "a", "c"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("drain order %v, want %v", order, want)
	}
	b.mu.Lock()
	rest := b.takeLocked(0) // 0 = take everything
	b.mu.Unlock()
	if len(rest) != 2 || b.total != 0 {
		t.Errorf("second drain took %d, total %d", len(rest), b.total)
	}
	for _, x := range []*tenant{a, c, d} {
		if q := x.queued.Load(); q != 0 {
			t.Errorf("tenant %s queued %d after full drain", x.name, q)
		}
	}
}

// TestTenantTokenBucket pins the quota arithmetic with synthetic time.
func TestTenantTokenBucket(t *testing.T) {
	tn := &tenant{name: "x"}
	t0 := time.Unix(1000, 0)
	// First touch fills to burst.
	for i := 0; i < 2; i++ {
		if ok, _ := tn.takeToken(1, 2, t0); !ok {
			t.Fatalf("token %d denied at burst 2", i)
		}
	}
	ok, retry := tn.takeToken(1, 2, t0)
	if ok || retry != time.Second {
		t.Fatalf("empty bucket: ok=%v retry=%v", ok, retry)
	}
	// Half a second refills half a token, but the client rejected above
	// is ahead in line: the hint covers its token plus the caller's.
	ok, retry = tn.takeToken(1, 2, t0.Add(500*time.Millisecond))
	if ok || retry != 1500*time.Millisecond {
		t.Fatalf("half refill behind one rejection: ok=%v retry=%v", ok, retry)
	}
	if ok, _ := tn.takeToken(1, 2, t0.Add(3*time.Second)); !ok {
		t.Fatal("full refill denied")
	}
	// rate <= 0 disables the quota entirely.
	if ok, _ := tn.takeToken(0, 0, t0); !ok {
		t.Fatal("unlimited tenant denied")
	}
}

// TestTenantRetryAfterBacklog pins the contention-aware Retry-After:
// every rejection since the last admission adds one token of deficit,
// so concurrent clients hammering a drained bucket are spread out
// across successive refill intervals instead of all being told the
// same sub-second hint (which stampedes them back at once). Admission
// clears the backlog.
func TestTenantRetryAfterBacklog(t *testing.T) {
	tn := &tenant{name: "x"}
	t0 := time.Unix(1000, 0)
	if ok, _ := tn.takeToken(1, 1, t0); !ok {
		t.Fatal("burst token denied")
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		ok, retry := tn.takeToken(1, 1, t0)
		if ok || retry != want {
			t.Fatalf("rejection %d: ok=%v retry=%v, want %v", i+1, ok, retry, want)
		}
	}
	// A successful take resets the backlog: the next rejection quotes a
	// single token again.
	if ok, _ := tn.takeToken(1, 1, t0.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	ok, retry := tn.takeToken(1, 1, t0.Add(time.Second))
	if ok || retry != time.Second {
		t.Fatalf("post-admission rejection: ok=%v retry=%v, want 1s", ok, retry)
	}
}
