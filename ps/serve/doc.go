// Package serve is a batched multi-tenant HTTP/JSON serving layer
// over ps.Engine.
//
// The core idea is the paper's §5 fusion argument turned sideways:
// when N independent activations of the same module are pending, the
// batch index appears in no subscript expression, so the dependence
// test trivially admits a fused batch DOALL over the batch axis. The
// server's batcher coalesces pending activations per (program, module)
// pair within a configurable window and dispatches them as one
// Runner.RunBatch call — results are bitwise identical to N sequential
// Runner.Run calls, because every plan variant in this repository
// computes identical values by construction.
//
// Around that core the package provides the operational surface a
// shared engine needs:
//
//   - Admission control: per-tenant token-bucket rate quotas and
//     bounded queues, answered with 429 + Retry-After; fair
//     round-robin draining across tenants into each batch.
//   - Graceful drain: Drain stops admission (503), flushes every
//     queued activation, and waits for in-flight responses.
//   - Plan-cache management: the engine's compiled-program cache is
//     LRU-bounded (ps.WithCacheLimit) with compiled-size accounting;
//     /reload re-reads the program directory, and the content-hash
//     cache key makes unchanged programs free.
//   - Observability: /metrics exposes Prometheus text-format counters
//     (requests, rejections, batch-size histogram, queue depths, the
//     run counters from RunStats, and engine cache stats), /explain
//     prints a module's lowered plan, /healthz reports liveness.
//
// See cmd/psserve for the standalone binary.
package serve
