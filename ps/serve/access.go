package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// requestIDHeader carries the request correlation ID: propagated from
// the client when present (so a caller's ID follows the request through
// logs and trace handles), generated otherwise, and always echoed on
// the response.
const requestIDHeader = "X-PS-Request-ID"

// newRequestID returns a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The system randomness source failing is not worth 500ing a
		// run request over; fall back to a timestamp-derived ID.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size for the access
// log and the latency histogram's endpoint label.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// endpointLabel normalizes a request path to its route for bounded
// metric cardinality.
func endpointLabel(path string) string {
	switch {
	case path == "/v1/run":
		return "run"
	case path == "/v1/trace":
		return "trace"
	case path == "/metrics":
		return "metrics"
	case path == "/healthz":
		return "healthz"
	case path == "/explain":
		return "explain"
	case path == "/reload":
		return "reload"
	case strings.HasPrefix(path, "/v1/"):
		return "v1_other"
	default:
		return "other"
	}
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time      string  `json:"time"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMs     float64 `json:"dur_ms"`
	Tenant    string  `json:"tenant,omitempty"`
}

// accessLogger serializes access-log writes; lines are complete JSON
// objects, one per request.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(e accessEntry) {
	if l == nil || l.w == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.w.Write(append(line, '\n'))
	l.mu.Unlock()
}

// withAccess wraps the route mux with the observability envelope every
// request passes through: request-ID propagation (header in, header
// out, readable by handlers via the request header), per-endpoint
// latency observation, and one structured access-log line.
func (s *Server) withAccess(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
			// Handlers read the ID from the request header either way.
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			// Nothing was written (e.g. an abandoned run request whose
			// handler returned without a response).
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		s.metrics.httpLatency.observe(endpointLabel(r.URL.Path), dur.Microseconds())
		s.access.log(accessEntry{
			Time:      start.UTC().Format(time.RFC3339Nano),
			RequestID: id,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    sw.status,
			Bytes:     sw.bytes,
			DurMs:     float64(dur.Microseconds()) / 1000,
			Tenant:    r.Header.Get("X-PS-Tenant"),
		})
	})
}
