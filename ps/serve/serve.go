package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/ps"
)

// Config parameterizes a Server. The zero value is usable: an owned
// engine with all CPUs, a 2ms batch window, batches of up to 64, a
// 256-deep per-tenant queue and no rate quota.
type Config struct {
	// Engine, when non-nil, is the execution engine to serve from; the
	// server does not close it. When nil the server creates (and owns)
	// one with Workers and CacheLimit.
	Engine *ps.Engine
	// Workers is the owned engine's pool width (<= 0 = all CPUs).
	// Ignored when Engine is set.
	Workers int
	// CacheLimit bounds the owned engine's compiled-program cache in
	// compiled-size bytes (0 = unbounded). Ignored when Engine is set.
	CacheLimit int64
	// RunOptions apply to every prepared Runner (schedule, hyperplane
	// mode, grain, ...).
	RunOptions []ps.RunOption

	// BatchWindow is how long the batcher holds the first pending
	// activation open for coalescing (default 2ms; negative disables
	// the window, batching only what is already queued).
	BatchWindow time.Duration
	// MaxBatch closes a batch early when this many activations are
	// pending (default 64).
	MaxBatch int
	// QueueDepth bounds each tenant's queued-but-unbatched requests
	// (default 256; negative disables the bound).
	QueueDepth int
	// TenantRate is each tenant's token-bucket refill rate in requests
	// per second (0 = no quota); TenantBurst is the bucket capacity
	// (default: ceil(TenantRate), at least 1).
	TenantRate  float64
	TenantBurst int
	// RunTimeout bounds one fused batch execution (0 = unbounded).
	RunTimeout time.Duration

	// Dir is the program directory served by LoadDir/-based reload:
	// every *.ps file compiles to a program named after its base name.
	Dir string

	// EnableTrace allows ?trace=1 on /v1/run: the activation runs
	// un-batched under a recording Runner.TraceRun, the response carries
	// the timing breakdown, and GET /v1/trace?id= exports the retained
	// Chrome trace JSON. Off by default — tracing is opt-in per server.
	EnableTrace bool
	// AccessLog, when non-nil, receives one JSON line per request:
	// request ID, method, path, status, bytes, duration, tenant.
	AccessLog io.Writer
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.TenantBurst <= 0 && c.TenantRate > 0 {
		c.TenantBurst = int(c.TenantRate + 0.999)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	return c
}

// Server is the batched multi-tenant HTTP front end over a ps.Engine.
// Activations POSTed to /v1/run are admitted per tenant (token-bucket
// quota, bounded queue), coalesced per (program, module) into fused
// batch DOALLs, and executed on the engine's shared pool; /metrics
// exposes the Prometheus counters, /explain the lowered plan,
// /healthz liveness, and /reload re-reads the program directory.
//
// Construct with New, serve s.Handler(), and stop with Drain (finish
// queued and in-flight work, reject new) followed by Close.
type Server struct {
	cfg     Config
	eng     *ps.Engine
	ownEng  bool
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the access/request-ID envelope

	metrics  *metrics
	access   *accessLogger
	traces   *traceStore
	draining atomic.Bool
	// inflight counts handleRun calls that have not yet written their
	// response. A plain atomic (Drain polls it) rather than a
	// WaitGroup: requests keep arriving during drain — each gets a
	// quick 503 — and WaitGroup forbids Add racing Wait across zero.
	inflight atomic.Int64

	mu       sync.Mutex
	programs map[string]*servedProgram
	tenants  map[string]*tenant
	batchers map[string]*batcher
}

// servedProgram is one compiled source with its prepared runners.
type servedProgram struct {
	name   string
	source string
	prog   *ps.Program

	mu      sync.Mutex
	runners map[string]*ps.Runner
}

// runner prepares (once) and returns the module's Runner.
func (sp *servedProgram) runner(module string, opts []ps.RunOption) (*ps.Runner, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if r, ok := sp.runners[module]; ok {
		return r, nil
	}
	r, err := sp.prog.Prepare(module, opts...)
	if err != nil {
		return nil, err
	}
	sp.runners[module] = r
	return r, nil
}

// New builds a Server. When cfg.Dir is set the directory is loaded
// immediately; programs can also be added programmatically with
// AddProgram.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		metrics:  newMetrics(),
		access:   &accessLogger{w: cfg.AccessLog},
		traces:   newTraceStore(),
		programs: make(map[string]*servedProgram),
		tenants:  make(map[string]*tenant),
		batchers: make(map[string]*batcher),
	}
	if s.eng == nil {
		s.eng = ps.NewEngine(ps.EngineWorkers(cfg.Workers), ps.WithCacheLimit(cfg.CacheLimit))
		s.ownEng = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("POST /reload", s.handleReload)
	s.mux = mux
	s.handler = s.withAccess(mux)
	if cfg.Dir != "" {
		if _, _, err := s.LoadDir(cfg.Dir); err != nil {
			if s.ownEng {
				s.eng.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the server's HTTP handler: the routes wrapped in the
// observability envelope (request-ID propagation, per-endpoint latency
// histograms, structured access logging).
func (s *Server) Handler() http.Handler { return s.handler }

// Engine returns the engine the server executes on.
func (s *Server) Engine() *ps.Engine { return s.eng }

// AddProgram compiles and registers (or replaces) one program. A
// changed source closes the program's batchers — queued requests still
// run against the old compilation — and later requests batch against
// the new one; an unchanged source is a no-op thanks to the engine's
// content-hash cache.
func (s *Server) AddProgram(name, source string) error {
	prog, err := s.eng.Compile(name+".ps", source)
	if err != nil {
		return err
	}
	sp := &servedProgram{name: name, source: source, prog: prog, runners: make(map[string]*ps.Runner)}
	s.mu.Lock()
	old, existed := s.programs[name]
	if existed && old.source == source {
		s.mu.Unlock()
		return nil
	}
	s.programs[name] = sp
	var stale []*batcher
	for key, b := range s.batchers {
		if progName, _, _ := strings.Cut(key, "\x00"); progName == name {
			stale = append(stale, b)
			delete(s.batchers, key)
		}
	}
	s.mu.Unlock()
	for _, b := range stale {
		b.close()
	}
	return nil
}

// RemoveProgram unregisters a program and closes its batchers.
func (s *Server) RemoveProgram(name string) {
	s.mu.Lock()
	delete(s.programs, name)
	var stale []*batcher
	for key, b := range s.batchers {
		if progName, _, _ := strings.Cut(key, "\x00"); progName == name {
			stale = append(stale, b)
			delete(s.batchers, key)
		}
	}
	s.mu.Unlock()
	for _, b := range stale {
		b.close()
	}
}

// LoadDir compiles every *.ps file in dir, registering each under its
// base name, and removes served programs whose file disappeared. It
// reports how many programs are now served and how many were added or
// replaced by this sweep.
func (s *Server) LoadDir(dir string) (loaded, changed int, err error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.ps"))
	if err != nil {
		return 0, 0, err
	}
	sort.Strings(files)
	seen := make(map[string]bool, len(files))
	for _, f := range files {
		src, rerr := os.ReadFile(f)
		if rerr != nil {
			return loaded, changed, rerr
		}
		name := strings.TrimSuffix(filepath.Base(f), ".ps")
		seen[name] = true
		s.mu.Lock()
		old, existed := s.programs[name]
		unchanged := existed && old.source == string(src)
		s.mu.Unlock()
		if !unchanged {
			if aerr := s.AddProgram(name, string(src)); aerr != nil {
				return loaded, changed, fmt.Errorf("%s: %w", f, aerr)
			}
			changed++
		}
		loaded++
	}
	s.mu.Lock()
	var gone []string
	for name := range s.programs {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	s.mu.Unlock()
	for _, name := range gone {
		s.RemoveProgram(name)
		changed++
	}
	return loaded, changed, nil
}

// Programs lists the served program names, sorted.
func (s *Server) Programs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.programs))
	for name := range s.programs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// tenantFor returns (creating on first use) the named tenant.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name}
		s.tenants[name] = t
	}
	return t
}

// batcherFor returns (creating on first use) the batcher of one
// (program, module) pair.
func (s *Server) batcherFor(progName, module string, runner *ps.Runner) *batcher {
	key := progName + "\x00" + module
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batchers[key]
	if !ok {
		b = newBatcher(s, runner)
		s.batchers[key] = b
	}
	return b
}

// Drain gracefully stops the server: new requests are rejected with
// 503, every queued activation is batched and executed, and Drain
// returns when all in-flight requests have their responses (or ctx
// expires; the error is then ctx.Err()). The engine stays usable —
// call Close afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
	for _, b := range bs {
		select {
		case <-b.stopped:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Close releases the server's resources: batchers stop (without
// waiting for queued work — call Drain first for graceful shutdown)
// and an owned engine is closed.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchers = make(map[string]*batcher)
	s.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
	for _, b := range bs {
		<-b.stopped
	}
	if s.ownEng {
		s.eng.Close()
	}
}

// runRequest is the /v1/run payload.
type runRequest struct {
	Program string                     `json:"program"`
	Module  string                     `json:"module"`
	Tenant  string                     `json:"tenant,omitempty"`
	Inputs  map[string]json.RawMessage `json:"inputs"`
}

// runResponse is the /v1/run success payload. TraceID and Timing are
// present only on ?trace=1 runs: the ID retrieves the Chrome trace via
// GET /v1/trace, the breakdown summarizes where worker time went.
type runResponse struct {
	Program   string              `json:"program"`
	Module    string              `json:"module"`
	Results   map[string]any      `json:"results"`
	BatchSize int                 `json:"batch_size"`
	WallMs    float64             `json:"wall_ms"`
	TraceID   string              `json:"trace_id,omitempty"`
	Timing    *ps.TimingBreakdown `json:"timing,omitempty"`
}

// errorResponse is every non-2xx payload.
type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// maxBody bounds request payloads (arrays travel as JSON).
const maxBody = 64 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	if s.draining.Load() {
		s.metrics.rejected.add("draining", 1)
		s.reject(w, http.StatusServiceUnavailable, 1, "server is draining")
		return
	}

	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Program == "" || req.Module == "" {
		s.fail(w, http.StatusBadRequest, "program and module are required")
		return
	}
	tenantName := req.Tenant
	if tenantName == "" {
		tenantName = r.Header.Get("X-PS-Tenant")
	}
	if tenantName == "" {
		tenantName = "default"
	}

	s.mu.Lock()
	sp, ok := s.programs[req.Program]
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("no program %q", req.Program))
		return
	}
	runner, err := sp.runner(req.Module, s.cfg.RunOptions)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	args, err := ps.ArgsFromJSON(sp.prog, req.Module, req.Inputs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	// Admission: quota first (cheap, no state to roll back), then the
	// queue-depth reservation the batcher releases on drain.
	t := s.tenantFor(tenantName)
	if ok, retry := t.takeToken(s.cfg.TenantRate, s.cfg.TenantBurst, time.Now()); !ok {
		s.metrics.rejected.add("quota", 1)
		s.reject(w, http.StatusTooManyRequests, retrySeconds(retry), fmt.Sprintf("tenant %q over rate quota", tenantName))
		return
	}
	if s.cfg.EnableTrace && r.URL.Query().Get("trace") == "1" {
		// Traced runs bypass the batcher (a trace wants its own
		// timeline, not a fused batch's) but paid the quota above.
		s.runTraced(w, r, sp, req, runner, args, start)
		return
	}
	if !t.tryEnqueue(s.cfg.QueueDepth) {
		s.metrics.rejected.add("queue_full", 1)
		s.reject(w, http.StatusTooManyRequests, retrySeconds(s.cfg.BatchWindow), fmt.Sprintf("tenant %q queue is full", tenantName))
		return
	}

	p := &pending{tenant: t, args: args, outcome: make(chan outcome, 1)}
	// The batcher can close underfoot (drain or reload); re-resolve
	// once before giving up.
	enqueued := false
	for attempt := 0; attempt < 2 && !enqueued; attempt++ {
		enqueued = s.batcherFor(req.Program, req.Module, runner).enqueue(p)
		if !enqueued && s.draining.Load() {
			break
		}
	}
	if !enqueued {
		t.release()
		s.metrics.rejected.add("draining", 1)
		s.reject(w, http.StatusServiceUnavailable, 1, "server is draining")
		return
	}

	select {
	case out := <-p.outcome:
		if out.err != nil {
			s.fail(w, http.StatusInternalServerError, out.err.Error())
			return
		}
		results, err := ps.ResultsToJSON(sp.prog, req.Module, out.values)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.metrics.requests.add("200", 1)
		writeJSON(w, http.StatusOK, runResponse{
			Program:   req.Program,
			Module:    req.Module,
			Results:   results,
			BatchSize: out.batchSize,
			WallMs:    float64(time.Since(start).Microseconds()) / 1000,
		})
	case <-r.Context().Done():
		// Client gone: the batch still runs (results are discarded via
		// the buffered outcome channel); account the abandonment.
		s.metrics.requests.add("499", 1)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	depths := make([]labeledValue, 0, len(s.tenants))
	for name, t := range s.tenants {
		depths = append(depths, labeledValue{name, t.queued.Load()})
	}
	s.mu.Unlock()
	sort.Slice(depths, func(i, j int) bool { return depths[i].label < depths[j].label })
	var sb strings.Builder
	s.metrics.render(&sb, depths, s.eng.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	progName := r.URL.Query().Get("program")
	module := r.URL.Query().Get("module")
	if progName == "" || module == "" {
		s.fail(w, http.StatusBadRequest, "program and module query parameters are required")
		return
	}
	s.mu.Lock()
	sp, ok := s.programs[progName]
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("no program %q", progName))
		return
	}
	runner, err := sp.runner(module, s.cfg.RunOptions)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, runner.Explain())
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Dir == "" {
		s.fail(w, http.StatusBadRequest, "server has no program directory configured")
		return
	}
	loaded, changed, err := s.LoadDir(s.cfg.Dir)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.reloads.Add(1)
	writeJSON(w, http.StatusOK, map[string]int{"programs": loaded, "changed": changed})
}

// reject answers an admission failure with Retry-After guidance.
func (s *Server) reject(w http.ResponseWriter, code, retryAfter int, msg string) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	s.metrics.requests.add(strconv.Itoa(code), 1)
	writeJSON(w, code, errorResponse{Error: msg, RetryAfter: retryAfter})
}

// fail answers a non-retryable failure.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.metrics.requests.add(strconv.Itoa(code), 1)
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are out; nothing more to do.
		_ = err
	}
}

// retrySeconds converts a wait hint to whole Retry-After seconds.
func retrySeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}
