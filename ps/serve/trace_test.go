package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// syncBuffer lets the access-log tests read what concurrent handlers
// wrote without racing the logger.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// postTraced issues one /v1/run?trace=1 with an explicit request ID.
func postTraced(t *testing.T, ts *httptest.Server, reqID, prog, module string, i int) (int, http.Header, []byte) {
	t.Helper()
	payload := map[string]any{"program": prog, "module": module, "inputs": testInputs(prog, i)}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-PS-Request-ID", reqID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestServeRequestID pins the correlation contract: a client-supplied
// X-PS-Request-ID is echoed back verbatim; an absent one is generated
// and still echoed.
func TestServeRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-PS-Request-ID", "client-abc-123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-PS-Request-ID"); got != "client-abc-123" {
		t.Errorf("propagated request ID = %q, want client-abc-123", got)
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-PS-Request-ID"); got == "" {
		t.Error("no request ID generated for a bare request")
	}
}

// tracedResponse decodes the trace-specific fields of a ?trace=1 reply.
type tracedResponse struct {
	Results   json.RawMessage `json:"results"`
	BatchSize int             `json:"batch_size"`
	TraceID   string          `json:"trace_id"`
	Timing    *struct {
		Workers   int   `json:"Workers"`
		WallNs    int64 `json:"WallNs"`
		ComputeNs int64 `json:"ComputeNs"`
	} `json:"timing"`
}

// TestServeTraceRun exercises the full traced-request flow: ?trace=1
// bypasses the batcher, the response carries the trace handle and the
// timing breakdown, results stay bitwise-identical to a direct run,
// and GET /v1/trace exports a valid Chrome timeline under the same ID.
func TestServeTraceRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, EnableTrace: true})

	const reqID = "trace-req-7"
	code, hdr, body := postTraced(t, ts, reqID, "gauss_seidel", "Relaxation", 0)
	if code != http.StatusOK {
		t.Fatalf("traced run: status %d: %s", code, body)
	}
	if got := hdr.Get("X-PS-Request-ID"); got != reqID {
		t.Errorf("request ID on traced response = %q", got)
	}
	var tr tracedResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != reqID {
		t.Errorf("trace_id = %q, want %q", tr.TraceID, reqID)
	}
	if tr.BatchSize != 1 {
		t.Errorf("batch_size = %d, want 1 (traced runs are never batched)", tr.BatchSize)
	}
	if tr.Timing == nil {
		t.Fatal("traced response has no timing breakdown")
	}
	if tr.Timing.ComputeNs <= 0 || tr.Timing.WallNs <= 0 {
		t.Errorf("degenerate breakdown: compute=%d wall=%d", tr.Timing.ComputeNs, tr.Timing.WallNs)
	}
	if want := referenceJSON(t, "gauss_seidel", 0); string(tr.Results) != want {
		t.Errorf("traced results diverge from direct run:\n got %s\nwant %s", tr.Results, want)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/trace?id=" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace export: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("trace export content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("exported trace has no spans")
	}

	if resp, err := ts.Client().Get(ts.URL + "/v1/trace?id=no-such-trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace ID: status %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("missing trace ID: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestServeTraceDisabled: without EnableTrace, ?trace=1 is ignored and
// the request takes the normal batched path with no trace handle.
func TestServeTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, _, body := postTraced(t, ts, "untraced-1", "smooth", "Smooth", 0)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var tr tracedResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "" {
		t.Errorf("trace_id = %q on a server without -trace", tr.TraceID)
	}
	if tr.Timing != nil {
		t.Error("timing breakdown present on an untraced run")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/trace?id=untraced-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace export without tracing: status %d, want 404", resp.StatusCode)
	}
}

// TestServeAccessLog checks the structured access log: one JSON object
// per request with the correlation ID, route, status and latency.
func TestServeAccessLog(t *testing.T) {
	logbuf := &syncBuffer{}
	_, ts := newTestServer(t, Config{Workers: 2, AccessLog: logbuf})

	postRun(t, ts, "t0", "smooth", "Smooth", 0)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-PS-Request-ID", "log-check-9")
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	lines := strings.Split(strings.TrimSpace(logbuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2: %q", len(lines), logbuf.String())
	}
	type entry struct {
		Time      string  `json:"time"`
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Bytes     int64   `json:"bytes"`
		DurMs     float64 `json:"dur_ms"`
	}
	var run, health entry
	if err := json.Unmarshal([]byte(lines[0]), &run); err != nil {
		t.Fatalf("access line is not JSON: %v: %s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &health); err != nil {
		t.Fatalf("access line is not JSON: %v: %s", err, lines[1])
	}
	if run.Method != "POST" || run.Path != "/v1/run" || run.Status != 200 {
		t.Errorf("run entry = %+v", run)
	}
	if run.RequestID == "" || run.Time == "" || run.Bytes <= 0 || run.DurMs < 0 {
		t.Errorf("run entry missing fields: %+v", run)
	}
	if health.Path != "/healthz" || health.RequestID != "log-check-9" {
		t.Errorf("health entry = %+v", health)
	}
}

// TestServeObsMetrics pins the observability series added alongside
// tracing: execution counters fed from RunStats, the per-endpoint HTTP
// latency histogram, the run wall-time histogram, and the traced-run
// counter.
func TestServeObsMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, EnableTrace: true})
	postRun(t, ts, "t0", "gauss_seidel", "Relaxation", 0)
	if code, _, body := postTraced(t, ts, "m-trace", "smooth", "Smooth", 1); code != http.StatusOK {
		t.Fatalf("traced run: status %d: %s", code, body)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	for _, series := range []string{
		"ps_run_pipeline_stages_total ",
		"ps_run_stage_stalls_total ",
		"ps_run_specialized_total ",
		"ps_run_arena_reuses_total ",
		"ps_run_wall_us_count ",
		`ps_serve_http_latency_us_bucket{endpoint="run",le="+Inf"}`,
		`ps_serve_http_latency_us_count{endpoint="run"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing series %s", series)
		}
	}
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "ps_serve_traced_runs_total ") {
			if !strings.HasSuffix(l, " 1") {
				t.Errorf("ps_serve_traced_runs_total = %q, want 1", l)
			}
			return
		}
	}
	t.Error("metrics missing ps_serve_traced_runs_total")
}

// TestEndpointLabel pins route normalization for latency-metric
// cardinality.
func TestEndpointLabel(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/run":    "run",
		"/v1/trace":  "trace",
		"/v1/future": "v1_other",
		"/metrics":   "metrics",
		"/healthz":   "healthz",
		"/explain":   "explain",
		"/reload":    "reload",
		"/favicon":   "other",
	} {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
