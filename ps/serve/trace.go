package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/ps"
)

// maxStoredTraces bounds the retained trace handles; the oldest is
// evicted when a new traced run lands.
const maxStoredTraces = 32

// traceStore retains the most recent traced runs' handles, keyed by
// request ID, for later export through GET /v1/trace.
type traceStore struct {
	mu    sync.Mutex
	byID  map[string]*ps.Trace
	order []string // insertion order, oldest first
}

func newTraceStore() *traceStore {
	return &traceStore{byID: make(map[string]*ps.Trace)}
}

func (ts *traceStore) put(id string, tr *ps.Trace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.byID[id]; !ok {
		ts.order = append(ts.order, id)
		if len(ts.order) > maxStoredTraces {
			delete(ts.byID, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.byID[id] = tr
}

func (ts *traceStore) get(id string) (*ps.Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr, ok := ts.byID[id]
	return tr, ok
}

// runTraced executes one ?trace=1 activation: a direct TraceRun on the
// runner, bypassing the batcher — a traced request wants its own
// timeline, not a fused batch's — with the trace handle retained under
// the request ID for GET /v1/trace export. The response carries the
// handle ID and the aggregated timing breakdown inline.
func (s *Server) runTraced(w http.ResponseWriter, r *http.Request, sp *servedProgram, req runRequest, runner *ps.Runner, args ps.Args, start time.Time) {
	ctx := r.Context()
	if t := s.cfg.RunTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	values, stats, tr, err := runner.TraceRun(ctx, args)
	m := s.metrics
	m.tracedRuns.Add(1)
	m.noteRunStats(stats)
	if err != nil {
		m.runErrors.Add(1)
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	m.activations.Add(1)
	results, err := ps.ResultsToJSON(sp.prog, req.Module, values)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	id := r.Header.Get(requestIDHeader)
	s.traces.put(id, tr)
	m.requests.add("200", 1)
	writeJSON(w, http.StatusOK, runResponse{
		Program:   req.Program,
		Module:    req.Module,
		Results:   results,
		BatchSize: 1,
		WallMs:    float64(time.Since(start).Microseconds()) / 1000,
		TraceID:   id,
		Timing:    stats.Timing,
	})
}

// handleTrace exports a retained trace as Chrome trace-event JSON,
// loadable in Perfetto and chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.fail(w, http.StatusBadRequest, "id query parameter is required")
		return
	}
	tr, ok := s.traces.get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("no retained trace %q (the server keeps the most recent %d)", id, maxStoredTraces))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := tr.WriteChrome(w); err != nil {
		// Headers are out; nothing more to do.
		_ = err
	}
}
