package ps

import (
	"fmt"
	"time"
)

// RunStats reports per-run execution counters for capacity planning:
// how much work a run represented, how it was carved into parallel
// chunks, and how long it took. Every Runner.Run returns one, including
// failed and cancelled runs (with the counters accumulated up to the
// abort).
type RunStats struct {
	// EquationInstances is the number of equation instances executed —
	// one per evaluation of one equation at one index point, the
	// paper's unit of schedulable work.
	EquationInstances int64
	// DOALLChunks is the number of parallel chunks dispatched to
	// workers across all DOALL loops of the run, including the chunks
	// carved out of wavefront planes.
	DOALLChunks int64
	// WavefrontPlanes is the number of hyperplane launches performed by
	// §4 auto-restructured (wavefront) steps — one per time step of each
	// transformed nest, distinguishing wavefront sweeps from plain DOALL
	// chunking. Zero when no wavefront step executed.
	WavefrontPlanes int64
	// DoacrossTiles is the number of tile instances executed by the
	// doacross (pipelined) wavefront schedule — one per tile per
	// hyperplane. Zero when every wavefront ran the barrier schedule.
	DoacrossTiles int64
	// DoacrossStalls counts the times a doacross worker found no ready
	// tile instance and parked until a predecessor completed — the
	// schedule's residual synchronization cost (a barrier sweep instead
	// pays workers×planes joins).
	DoacrossStalls int64
	// DoacrossSteals counts tile instances executed by a worker other
	// than the tile's home worker: how often work stealing rebalanced
	// the pipeline.
	DoacrossSteals int64
	// PipelineStages is the number of PS-DSWP stages launched by
	// decoupled pipeline steps — one per stage per pipeline activation.
	// Zero when no nest ran the pipeline backend concurrently (including
	// sequential runs, where pipeline steps degenerate to stage-ordered
	// loops).
	PipelineStages int64
	// StageStalls counts blocking waits inside pipeline runs: a stage
	// starved on an empty input channel or backpressured on a full
	// output channel — the decoupled schedule's residual
	// synchronization cost.
	StageStalls int64
	// SpecializedKernels is the number of equation instances executed
	// by a specialized (strength-reduced, bounds-certified) kernel
	// rather than the generic checked evaluator. At most
	// EquationInstances; zero under Strict or NoSpecialize.
	SpecializedKernels int64
	// ArenaReuses is the number of activation arrays whose backing
	// store was recycled from the arena instead of freshly allocated.
	// Zero on a first run (nothing pooled yet), under Strict, or with
	// NoArena.
	ArenaReuses int64
	// Workers is the worker count the run was configured with (1 for
	// sequential runs).
	Workers int
	// WallTime is the elapsed time of the activation.
	WallTime time.Duration
	// Timing is the per-schedule timing breakdown of the run — compute,
	// stall, barrier-idle and idle time summed across workers. Only
	// traced runs (Runner.TraceRun, `psrun -trace`/-stats, serve's
	// ?trace=1) populate it; plain Run leaves it nil, keeping the
	// untraced hot path free of recording overhead.
	Timing *TimingBreakdown
}

// String renders the stats on one line.
func (s *RunStats) String() string {
	return fmt.Sprintf("eq_instances=%d specialized=%d doall_chunks=%d wavefront_planes=%d doacross_tiles=%d doacross_stalls=%d doacross_steals=%d pipeline_stages=%d stage_stalls=%d arena_reuses=%d workers=%d wall=%s",
		s.EquationInstances, s.SpecializedKernels, s.DOALLChunks, s.WavefrontPlanes,
		s.DoacrossTiles, s.DoacrossStalls, s.DoacrossSteals, s.PipelineStages, s.StageStalls,
		s.ArenaReuses, s.Workers, s.WallTime)
}
