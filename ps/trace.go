package ps

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/interp"
	"repro/internal/obs"
)

// TimingBreakdown is the aggregated per-schedule timing of one traced
// run: compute, stall, barrier-idle and idle nanoseconds summed across
// workers, plus specialization-fallback and arena counters. See
// obs.Breakdown for the per-worker accounting identity.
type TimingBreakdown = obs.Breakdown

// Trace is the recorded timeline of one TraceRun: per-worker spans of
// every schedule step (activations, DOALL chunks, wavefront planes,
// doacross tiles and waits, pipeline stage bodies and channel stalls).
// It is immutable once returned.
type Trace struct {
	rec     *obs.Recorder
	process string
	workers int
	wall    time.Duration
}

// WriteChrome renders the trace as Chrome trace-event JSON, loadable
// in Perfetto (https://ui.perfetto.dev) and chrome://tracing. Each
// worker ring is one thread row; spans carry their schedule category
// and payload (plane t, tile coordinates, stage/token, point counts).
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.rec.WriteChrome(w, t.process)
}

// Breakdown aggregates the trace into the per-schedule timing split
// TraceRun also attaches to its RunStats.
func (t *Trace) Breakdown() *TimingBreakdown {
	b := t.rec.Breakdown(t.workers, t.wall)
	return &b
}

// Events reports the number of recorded span events; Dropped the
// events lost to ring wraparound (long runs overwrite oldest first).
func (t *Trace) Events() int64  { return t.rec.Events() }
func (t *Trace) Dropped() int64 { return t.rec.Dropped() }

// TraceRun executes the module like Run while recording a full
// execution trace: timestamped per-worker spans on lock-free ring
// buffers (bounded memory — long runs drop oldest events, reported by
// Trace.Dropped). The returned RunStats carries the aggregated
// TimingBreakdown in its Timing field, and the Trace renders the
// timeline via WriteChrome. The traced run also becomes the "timing
// (last traced run)" line of Explain.
//
// Tracing costs one branch per span boundary plus two clock reads per
// recorded span — typically a few percent on span-dense runs and
// unmeasurable on kernel-bound ones; the untraced path is unaffected.
func (r *Runner) TraceRun(ctx context.Context, args []any) ([]any, *RunStats, *Trace, error) {
	o := r.opts
	var st interp.Stats
	o.Stats = &st
	rec := obs.NewRecorder(0)
	o.Trace = rec
	if eng := r.prog.eng; eng != nil {
		if eng.closed.Load() {
			return nil, &RunStats{Workers: 1}, nil, &Error{Phase: PhaseRun, Module: r.mod.Name(), Err: errors.New("engine is closed")}
		}
		o.Pool = r.pool
	}
	start := time.Now()
	results, err := r.prog.ip.RunCtx(ctx, r.mod.Name(), args, o)
	wall := time.Since(start)
	workers := effectiveWorkers(o)
	stats := &RunStats{
		EquationInstances:  st.EqInstances.Load(),
		DOALLChunks:        st.Chunks.Load(),
		WavefrontPlanes:    st.Planes.Load(),
		DoacrossTiles:      st.Doacross.Tiles.Load(),
		DoacrossStalls:     st.Doacross.Stalls.Load(),
		DoacrossSteals:     st.Doacross.Steals.Load(),
		PipelineStages:     st.PipelineStages.Load(),
		StageStalls:        st.PipelineStalls.Load(),
		SpecializedKernels: st.Specialized.Load(),
		ArenaReuses:        st.ArenaReuses.Load(),
		Workers:            workers,
		WallTime:           wall,
	}
	tr := &Trace{rec: rec, process: "ps/" + r.mod.Name(), workers: workers, wall: wall}
	stats.Timing = tr.Breakdown()
	r.lastTiming.Store(stats.Timing)
	if err != nil {
		return nil, stats, tr, runError(r.mod.Name(), err)
	}
	return results, stats, tr, nil
}
