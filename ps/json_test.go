package ps_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/ps"
)

// jsonTypes exercises every JSON-convertible parameter and result
// type: real/int/bool scalars and arrays, with the identity dataflow
// so values survive a round trip bit-for-bit.
const jsonTypes = `
Types: module (R: real; N: int; B: bool;
               Xs: array[I] of real; Ks: array[I] of int; Fs: array[I] of bool):
       [S: real; Q: int; C: bool;
        Ys: array [I] of real; Ms: array[I] of int; Gs: array[I] of bool];
type I = 1 .. N;
define
    S = R;
    Q = N;
    C = B;
    Ys[I] = Xs[I];
    Ms[I] = Ks[I];
    Gs[I] = Fs[I];
end Types;
`

// TestJSONAllTypesRoundTrip pushes every value type through ArgsFromJSON → Run
// → ResultsToJSON → json.Marshal and back, including the non-finite
// reals JSON cannot natively encode: NaN and ±Inf travel as the
// strings "NaN"/"Infinity"/"-Infinity" in both directions (this was a
// real gap — json.Marshal fails outright on non-finite float64s).
func TestJSONAllTypesRoundTrip(t *testing.T) {
	prog, err := ps.CompileProgram("types.ps", jsonTypes)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]json.RawMessage{
		"R":  json.RawMessage(`"NaN"`),
		"N":  json.RawMessage(`4`),
		"B":  json.RawMessage(`true`),
		"Xs": json.RawMessage(`[1.5, "NaN", "Infinity", "-Infinity"]`),
		"Ks": json.RawMessage(`[1, -2, 3, -4]`),
		"Fs": json.RawMessage(`[true, false, true, false]`),
	}
	args, err := ps.ArgsFromJSON(prog, "Types", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := args[0].(float64); !math.IsNaN(r) {
		t.Fatalf("scalar NaN input decoded as %v", args[0])
	}
	xs := args[3].(*ps.Array)
	if v := xs.GetF([]int64{3}); !math.IsInf(v, 1) {
		t.Fatalf("Xs[3] = %v, want +Inf", v)
	}
	if v := xs.GetF([]int64{4}); !math.IsInf(v, -1) {
		t.Fatalf("Xs[4] = %v, want -Inf", v)
	}

	results, err := prog.Run("Types", args, ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ps.ResultsToJSON(prog, "Types", results)
	if err != nil {
		t.Fatal(err)
	}
	// The encodable map must actually encode — the NaN/Inf gap fails
	// here without the string spelling.
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("json.Marshal of results: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["S"] != "NaN" {
		t.Errorf("S encoded as %v, want \"NaN\"", decoded["S"])
	}
	if decoded["Q"] != float64(4) || decoded["C"] != true {
		t.Errorf("scalar results Q=%v C=%v", decoded["Q"], decoded["C"])
	}
	ys := decoded["Ys"].([]any)
	if ys[0] != 1.5 || ys[1] != "NaN" || ys[2] != "Infinity" || ys[3] != "-Infinity" {
		t.Errorf("Ys encoded as %v", ys)
	}
	ms := decoded["Ms"].([]any)
	if ms[1] != float64(-2) {
		t.Errorf("Ms encoded as %v", ms)
	}
	gs := decoded["Gs"].([]any)
	if gs[0] != true || gs[1] != false {
		t.Errorf("Gs encoded as %v", gs)
	}

	// Close the loop: the encoded results, renamed to the parameter
	// names, must decode back into identical arguments.
	back := map[string]json.RawMessage{
		"N": json.RawMessage(`4`),
		"B": mustRaw(t, decoded["C"]),
		"R": mustRaw(t, decoded["S"]),
	}
	back["Xs"] = mustRaw(t, decoded["Ys"])
	back["Ks"] = mustRaw(t, decoded["Ms"])
	back["Fs"] = mustRaw(t, decoded["Gs"])
	args2, err := ps.ArgsFromJSON(prog, "Types", back)
	if err != nil {
		t.Fatal(err)
	}
	xs2 := args2[3].(*ps.Array)
	for i := int64(1); i <= 4; i++ {
		a, b := xs.GetF([]int64{i}), xs2.GetF([]int64{i})
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("round-trip Xs[%d]: %v != %v", i, a, b)
		}
	}
	if !args2[4].(*ps.Array).Equal(args[4].(*ps.Array)) {
		t.Error("round-trip int array differs")
	}
	if !args2[5].(*ps.Array).Equal(args[5].(*ps.Array)) {
		t.Error("round-trip bool array differs")
	}
}

// TestJSONAllTypesErrors pins the error paths: missing inputs, shape
// mismatches, and non-numeric garbage (a string that is not one of the
// non-finite spellings must still be rejected).
func TestJSONAllTypesErrors(t *testing.T) {
	prog, err := ps.CompileProgram("types.ps", jsonTypes)
	if err != nil {
		t.Fatal(err)
	}
	base := func() map[string]json.RawMessage {
		return map[string]json.RawMessage{
			"R":  json.RawMessage(`1.0`),
			"N":  json.RawMessage(`2`),
			"B":  json.RawMessage(`false`),
			"Xs": json.RawMessage(`[1, 2]`),
			"Ks": json.RawMessage(`[1, 2]`),
			"Fs": json.RawMessage(`[true, true]`),
		}
	}

	in := base()
	delete(in, "Ks")
	if _, err := ps.ArgsFromJSON(prog, "Types", in); err == nil {
		t.Error("missing array input accepted")
	}

	in = base()
	in["Xs"] = json.RawMessage(`[1, 2, 3]`)
	if _, err := ps.ArgsFromJSON(prog, "Types", in); err == nil {
		t.Error("wrong-length array accepted")
	}

	in = base()
	in["Xs"] = json.RawMessage(`[1, "bogus"]`)
	if _, err := ps.ArgsFromJSON(prog, "Types", in); err == nil {
		t.Error("non-finite spelling \"bogus\" accepted")
	}

	in = base()
	in["R"] = json.RawMessage(`"bogus"`)
	if _, err := ps.ArgsFromJSON(prog, "Types", in); err == nil {
		t.Error("scalar string \"bogus\" accepted as real")
	}

	if _, err := ps.ArgsFromJSON(prog, "NoSuch", base()); err == nil {
		t.Error("unknown module accepted")
	}
}

func mustRaw(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
