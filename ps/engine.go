package ps

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Engine is a long-lived, concurrency-safe execution service for PS
// programs: one shared worker pool serves the DOALLs of every
// activation, compiled programs are cached by source hash with LRU
// eviction under a configurable compiled-size budget, and engine-level
// default options apply to every Runner prepared from its programs. An
// Engine is the substrate for serving many concurrent requests; the
// package-level CompileProgram/Run entry points remain as one-shot
// conveniences on top of the same pipeline.
//
//	eng := ps.NewEngine(ps.EngineWorkers(8), ps.WithCacheLimit(64<<20))
//	defer eng.Close()
//	prog, err := eng.Compile("relax.ps", source)
//	run, err := prog.Prepare("Relaxation")
//	out, stats, err := run.Run(ctx, []any{grid, 256, 64})
type Engine struct {
	pool     *par.Pool
	defaults []RunOption
	closed   atomic.Bool

	mu sync.Mutex
	// cache maps source hashes to their LRU list elements; lru orders
	// entries most-recently-used first, and cacheBytes totals their
	// compiled-size accounting. With cacheLimit 0 the cache is
	// unbounded (the library default — services set a budget).
	cache      map[[sha256.Size]byte]*list.Element
	lru        *list.List
	cacheBytes int64
	cacheLimit int64
	// runnerPools are dedicated pools created for Runners prepared with
	// a worker count different from the shared pool's; Close shuts them
	// down with the engine.
	runnerPools []*par.Pool

	hits, misses, evictions atomic.Int64
}

// cacheEntry is one cached compiled program with its accounted size.
type cacheEntry struct {
	key  [sha256.Size]byte
	prog *Program
	size int64
}

// engineConfig collects construction options.
type engineConfig struct {
	workers    int
	cacheLimit int64
	defaults   []RunOption
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// EngineWorkers sets the shared pool's worker count (<= 0 uses all
// CPUs).
func EngineWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// WithCacheLimit bounds the compiled-program cache: when the summed
// compiled size of cached programs exceeds limit bytes, least recently
// used entries are evicted until it fits again. The most recently
// compiled program is never evicted, so a single oversized program
// still caches (with everything else evicted around it). limit <= 0
// keeps the cache unbounded. Evicted programs keep working — eviction
// only drops the cache's reference, so the next Compile of that source
// pays a fresh compilation.
func WithCacheLimit(limit int64) EngineOption {
	return func(c *engineConfig) { c.cacheLimit = limit }
}

// EngineDefaults sets run options applied to every Runner prepared from
// this engine's programs, before per-Prepare options.
func EngineDefaults(opts ...RunOption) EngineOption {
	return func(c *engineConfig) { c.defaults = append(c.defaults, opts...) }
}

// NewEngine starts an engine. Close it when no more runs are needed;
// until then its worker pool stays parked between activations.
func NewEngine(opts ...EngineOption) *Engine {
	var c engineConfig
	for _, f := range opts {
		f(&c)
	}
	return &Engine{
		pool:       par.NewPool(c.workers),
		defaults:   c.defaults,
		cache:      make(map[[sha256.Size]byte]*list.Element),
		lru:        list.New(),
		cacheLimit: c.cacheLimit,
	}
}

// Workers returns the shared pool's worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Compile parses, checks and schedules a PS source text, returning a
// cached Program when the same (name, source) pair was compiled before.
// Programs are immutable and safe for concurrent use, so one cached
// Program may serve many goroutines. The cache key is the content
// hash, which is what makes hot reload natural: recompiling an
// unchanged source is a cache hit, a changed source compiles fresh and
// the stale entry ages out of the LRU.
func (e *Engine) Compile(name, source string) (*Program, error) {
	if e.closed.Load() {
		return nil, &Error{Phase: PhaseCheck, File: name, Err: errors.New("engine is closed")}
	}
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(source))
	var key [sha256.Size]byte
	h.Sum(key[:0])

	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.lru.MoveToFront(el)
		p := el.Value.(*cacheEntry).prog
		e.mu.Unlock()
		e.hits.Add(1)
		return p, nil
	}
	e.mu.Unlock()
	// Compile outside the lock so a slow compilation never blocks cache
	// hits; concurrent misses on the same key race benignly and the
	// first store wins, preserving pointer identity for all callers.
	e.misses.Add(1)
	p, err := compileProgram(e, name, source)
	if err != nil {
		return nil, err
	}
	size := int64(len(name)+len(source)) + p.ip.CompiledSize()

	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[key]; ok {
		e.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).prog, nil
	}
	e.cache[key] = e.lru.PushFront(&cacheEntry{key: key, prog: p, size: size})
	e.cacheBytes += size
	e.evictLocked()
	return p, nil
}

// evictLocked drops least recently used entries until the cache fits
// its limit again, always keeping the most recent entry. Callers hold
// e.mu.
func (e *Engine) evictLocked() {
	if e.cacheLimit <= 0 {
		return
	}
	for e.cacheBytes > e.cacheLimit && e.lru.Len() > 1 {
		el := e.lru.Back()
		ent := el.Value.(*cacheEntry)
		e.lru.Remove(el)
		delete(e.cache, ent.key)
		e.cacheBytes -= ent.size
		e.evictions.Add(1)
	}
}

// CachedPrograms returns the number of programs in the compile cache.
func (e *Engine) CachedPrograms() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// EngineStats is a snapshot of the engine's cache counters, the raw
// material of a service's cache metrics.
type EngineStats struct {
	// CachedPrograms and CacheBytes describe the cache's current
	// contents (CacheBytes in compiled-size accounting units).
	CachedPrograms int
	CacheBytes     int64
	// CacheLimit is the configured budget (0 = unbounded).
	CacheLimit int64
	// CacheHits and CacheMisses count Compile calls served from /
	// missing the cache; CacheEvictions counts entries dropped by the
	// LRU to stay within the budget.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	n, bytes := len(e.cache), e.cacheBytes
	e.mu.Unlock()
	return EngineStats{
		CachedPrograms: n,
		CacheBytes:     bytes,
		CacheLimit:     e.cacheLimit,
		CacheHits:      e.hits.Load(),
		CacheMisses:    e.misses.Load(),
		CacheEvictions: e.evictions.Load(),
	}
}

// trackPool registers a Runner-owned pool for shutdown with the
// engine. It returns false when the engine is already closed.
func (e *Engine) trackPool(p *par.Pool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return false
	}
	e.runnerPools = append(e.runnerPools, p)
	return true
}

// Close shuts the shared pool — and every Runner-owned pool — down.
// All in-flight runs must have completed; subsequent runs on this
// engine's programs fail with a typed error.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		e.pool.Close()
		e.mu.Lock()
		pools := e.runnerPools
		e.runnerPools = nil
		e.mu.Unlock()
		for _, p := range pools {
			p.Close()
		}
	}
}
