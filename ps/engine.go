package ps

import (
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Engine is a long-lived, concurrency-safe execution service for PS
// programs: one shared worker pool serves the DOALLs of every
// activation, compiled programs are cached by source hash, and
// engine-level default options apply to every Runner prepared from its
// programs. An Engine is the substrate for serving many concurrent
// requests; the package-level CompileProgram/Run entry points remain as
// one-shot conveniences on top of the same pipeline.
//
//	eng := ps.NewEngine(ps.EngineWorkers(8))
//	defer eng.Close()
//	prog, err := eng.Compile("relax.ps", source)
//	run, err := prog.Prepare("Relaxation")
//	out, stats, err := run.Run(ctx, []any{grid, 256, 64})
type Engine struct {
	pool     *par.Pool
	defaults []RunOption
	closed   atomic.Bool

	mu    sync.Mutex
	cache map[[sha256.Size]byte]*Program
	// runnerPools are dedicated pools created for Runners prepared with
	// a worker count different from the shared pool's; Close shuts them
	// down with the engine.
	runnerPools []*par.Pool
}

// engineConfig collects construction options.
type engineConfig struct {
	workers  int
	defaults []RunOption
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// EngineWorkers sets the shared pool's worker count (<= 0 uses all
// CPUs).
func EngineWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// EngineDefaults sets run options applied to every Runner prepared from
// this engine's programs, before per-Prepare options.
func EngineDefaults(opts ...RunOption) EngineOption {
	return func(c *engineConfig) { c.defaults = append(c.defaults, opts...) }
}

// NewEngine starts an engine. Close it when no more runs are needed;
// until then its worker pool stays parked between activations.
func NewEngine(opts ...EngineOption) *Engine {
	var c engineConfig
	for _, f := range opts {
		f(&c)
	}
	return &Engine{
		pool:     par.NewPool(c.workers),
		defaults: c.defaults,
		cache:    make(map[[sha256.Size]byte]*Program),
	}
}

// Workers returns the shared pool's worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Compile parses, checks and schedules a PS source text, returning a
// cached Program when the same (name, source) pair was compiled before.
// Programs are immutable and safe for concurrent use, so one cached
// Program may serve many goroutines.
func (e *Engine) Compile(name, source string) (*Program, error) {
	if e.closed.Load() {
		return nil, &Error{Phase: PhaseCheck, File: name, Err: errors.New("engine is closed")}
	}
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(source))
	var key [sha256.Size]byte
	h.Sum(key[:0])

	e.mu.Lock()
	p, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return p, nil
	}
	// Compile outside the lock so a slow compilation never blocks cache
	// hits; concurrent misses on the same key race benignly and the
	// first store wins, preserving pointer identity for all callers.
	p, err := compileProgram(e, name, source)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.cache[key]; ok {
		return existing, nil
	}
	e.cache[key] = p
	return p, nil
}

// CachedPrograms returns the number of programs in the compile cache.
func (e *Engine) CachedPrograms() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// trackPool registers a Runner-owned pool for shutdown with the
// engine. It returns false when the engine is already closed.
func (e *Engine) trackPool(p *par.Pool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return false
	}
	e.runnerPools = append(e.runnerPools, p)
	return true
}

// Close shuts the shared pool — and every Runner-owned pool — down.
// All in-flight runs must have completed; subsequent runs on this
// engine's programs fail with a typed error.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		e.pool.Close()
		e.mu.Lock()
		pools := e.runnerPools
		e.runnerPools = nil
		e.mu.Unlock()
		for _, p := range pools {
			p.Close()
		}
	}
}
