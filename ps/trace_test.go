package ps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// reflectSeed builds the N×N seed for the Reflect pipeline workload.
func reflectSeed(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 1, Hi: n}, ps.Axis{Lo: 1, Hi: n})
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a.SetF([]int64{i, j}, float64((i*7+j*3)%11)/10)
		}
	}
	return a
}

// checkBreakdown asserts the per-worker accounting identity of one
// traced run: compute + stall + barrier idle + idle = workers × wall,
// exact whenever the idle clamp did not fire (idle > 0 means no clamp).
func checkBreakdown(t *testing.T, b *ps.TimingBreakdown) {
	t.Helper()
	if b == nil {
		t.Fatal("traced run returned no timing breakdown")
	}
	if b.ComputeNs <= 0 {
		t.Errorf("ComputeNs = %d, want > 0", b.ComputeNs)
	}
	budget := int64(b.Workers) * b.WallNs
	sum := b.ComputeNs + b.StallNs() + b.BarrierIdleNs + b.IdleNs
	if b.IdleNs > 0 && sum != budget {
		t.Errorf("accounting identity broken: compute+stall+barrier+idle = %d, workers×wall = %d", sum, budget)
	}
	if sum < budget {
		t.Errorf("attributed time %d under workers×wall %d with idle clamped", sum, budget)
	}
}

// chromeOf renders and re-parses the trace, returning the span names.
func chromeOf(t *testing.T, tr *ps.Trace) map[string]int {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		names[ev.Name]++
	}
	return names
}

// TestTraceRunWavefront traces the Gauss-Seidel wavefront workload:
// results must match the untraced run bitwise, the Chrome export must
// be valid JSON with activation and wavefront spans, the breakdown
// must reconcile with workers × wall, and the traced run must surface
// in Explain.
func TestTraceRunWavefront(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 20, 10
	args := []any{seedGrid(m), int64(m), int64(maxK)}

	ref, _, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, tr, err := run.TraceRun(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("traced results diverge from the untraced run")
	}
	if tr == nil {
		t.Fatal("TraceRun returned no trace")
	}
	checkBreakdown(t, stats.Timing)
	// The auto cascade may execute the wavefront as barrier planes or as
	// doacross tiles depending on calibration, so compute can land in
	// either bucket.
	if stats.Timing.WavefrontNs+stats.Timing.DoacrossNs <= 0 {
		t.Errorf("WavefrontNs+DoacrossNs = %d+%d, want > 0 for a wavefront workload",
			stats.Timing.WavefrontNs, stats.Timing.DoacrossNs)
	}
	if stats.WavefrontPlanes == 0 {
		t.Fatal("wavefront schedule did not engage")
	}
	if tr.Events() == 0 {
		t.Error("trace recorded no events")
	}

	names := chromeOf(t, tr)
	if names["activation"] == 0 {
		t.Error("trace has no activation span")
	}
	if names["plane"] == 0 && names["tile"] == 0 {
		t.Errorf("trace has neither plane nor tile spans: %v", names)
	}

	if exp := run.Explain(); !strings.Contains(exp, "timing (last traced run)") {
		t.Error("Explain does not surface the traced run's timing")
	}
}

// TestTraceRunPipeline traces the Reflect pipeline workload under the
// pipeline-first schedule and checks stage spans and stall attribution
// land in the breakdown.
func TestTraceRunPipeline(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("reflect.ps", psrc.Reflect)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Reflect", ps.WithSchedule(ps.SchedulePipeline))
	if err != nil {
		t.Fatal(err)
	}
	const n = 17
	args := []any{reflectSeed(n), int64(n)}

	ref, _, err := run.Run(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, tr, err := run.TraceRun(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("traced results diverge from the untraced run")
	}
	if stats.PipelineStages == 0 {
		t.Fatal("pipeline schedule did not engage")
	}
	checkBreakdown(t, stats.Timing)
	if stats.Timing.PipelineNs <= 0 {
		t.Errorf("PipelineNs = %d, want > 0 for a pipeline workload", stats.Timing.PipelineNs)
	}
	if stats.StageStalls > 0 && stats.Timing.PipelineStallNs <= 0 {
		t.Errorf("StageStalls = %d but PipelineStallNs = %d", stats.StageStalls, stats.Timing.PipelineStallNs)
	}
	if names := chromeOf(t, tr); names["stage"] == 0 {
		t.Errorf("trace has no stage spans: %v", names)
	}
}

// TestTraceRunSequential traces a sequential activation: the whole
// nest runs on the activation goroutine, so compute lands in the
// sequential span kinds and the trace still reconciles.
func TestTraceRunSequential(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation", ps.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 12, 6
	args := []any{seedGrid(m), int64(m), int64(maxK)}
	_, stats, tr, err := run.TraceRun(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timing == nil {
		t.Fatal("no timing breakdown")
	}
	if stats.Timing.Workers != 1 {
		t.Errorf("Workers = %d, want 1 for sequential", stats.Timing.Workers)
	}
	checkBreakdown(t, stats.Timing)
	if names := chromeOf(t, tr); names["activation"] == 0 {
		t.Error("sequential trace has no activation span")
	}
}

// TestPlainRunHasNoTiming pins the fast path: an untraced Run carries
// no breakdown and pays no recording.
func TestPlainRunHasNoTiming(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := run.Run(context.Background(), []any{seedGrid(8), int64(8), int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timing != nil {
		t.Error("plain Run populated Timing; recording must be opt-in")
	}
	if exp := run.Explain(); strings.Contains(exp, "timing (last traced run)") {
		t.Error("Explain shows a timing line before any traced run")
	}
}
