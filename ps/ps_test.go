package ps_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// TestPipelineEndToEnd exercises the public API: compile, inspect,
// execute, transform.
func TestPipelineEndToEnd(t *testing.T) {
	prog, err := ps.CompileProgram("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Module("Relaxation")
	if m == nil {
		t.Fatal("module lookup failed")
	}
	if m.Name() != "Relaxation" {
		t.Errorf("Name = %s", m.Name())
	}
	if got := m.FlowchartCompact(); !strings.Contains(got, "DO K (DOALL I (DOALL J (eq.3)))") {
		t.Errorf("flowchart %q", got)
	}
	if len(m.Components()) != 7 {
		t.Errorf("components: %v", m.Components())
	}
	vd := m.VirtualDims()
	if len(vd) != 1 || vd[0].Array != "A" || vd[0].Window != 2 || vd[0].Dim != 1 {
		t.Errorf("virtual dims %+v", vd)
	}
	if !strings.Contains(m.GraphListing(), "A -[K-1,I,J]-> eq.3") {
		t.Error("graph listing missing labeled edge")
	}
	if !strings.Contains(m.GraphDOT(), "digraph") {
		t.Error("DOT output broken")
	}
	c, err := m.GenerateC(ps.CGenOptions{})
	if err != nil || !strings.Contains(c, "Relaxation_result") {
		t.Errorf("GenerateC: %v", err)
	}
	if !strings.Contains(m.Source(), "A[K,I,J]") {
		t.Error("Source output broken")
	}

	// Execute.
	const mm = 8
	in := ps.NewRealArray(ps.Axis{Lo: 0, Hi: mm + 1}, ps.Axis{Lo: 0, Hi: mm + 1})
	for i := int64(1); i <= mm; i++ {
		for j := int64(1); j <= mm; j++ {
			in.SetF([]int64{i, j}, 1.0)
		}
	}
	out, err := prog.Run("Relaxation", []any{in, mm, 5}, ps.Workers(2), ps.Strict())
	if err != nil {
		t.Fatal(err)
	}
	grid := out[0].(*ps.Array)
	if grid.Rank() != 2 {
		t.Errorf("result rank %d", grid.Rank())
	}
}

// TestHyperplaneAPI exercises the §4 entry point.
func TestHyperplaneAPI(t *testing.T) {
	prog, err := ps.CompileProgram("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := prog.Module("Relaxation").Hyperplane("eq.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.TimeVector) != 3 || hp.TimeVector[0] != 2 {
		t.Errorf("time vector %v", hp.TimeVector)
	}
	if hp.Window != 3 {
		t.Errorf("window %d", hp.Window)
	}
	if hp.TransformedModule != "RelaxationH" {
		t.Errorf("transformed module %s", hp.TransformedModule)
	}
	if _, err := ps.CompileProgram("gsh.ps", hp.TransformedSource); err != nil {
		t.Errorf("transformed source does not compile: %v", err)
	}
	if _, err := prog.Module("Relaxation").Hyperplane("eq.9"); err == nil {
		t.Error("missing equation accepted")
	}
}

// TestJSONRoundTrip exercises the psrun conversion layer.
func TestJSONRoundTrip(t *testing.T) {
	prog, err := ps.CompileProgram("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]json.RawMessage{
		"Xs": json.RawMessage(`[0, 1, 4, 9, 16, 25]`),
		"N":  json.RawMessage(`4`),
	}
	args, err := ps.ArgsFromJSON(prog, "Smooth", inputs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := prog.Run("Smooth", args, ps.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ps.ResultsToJSON(prog, "Smooth", results)
	if err != nil {
		t.Fatal(err)
	}
	ys, ok := out["Ys"].([]any)
	if !ok || len(ys) != 6 {
		t.Fatalf("Ys = %#v", out["Ys"])
	}
	if ys[0].(float64) != 0 || ys[5].(float64) != 25 {
		t.Error("boundary values wrong")
	}
	if got := ys[1].(float64); got != (0.0+1+4)/3 {
		t.Errorf("Ys[1] = %v", got)
	}

	// Error paths.
	if _, err := ps.ArgsFromJSON(prog, "Smooth", map[string]json.RawMessage{"N": json.RawMessage(`4`)}); err == nil {
		t.Error("missing array input accepted")
	}
	bad := map[string]json.RawMessage{
		"Xs": json.RawMessage(`[0, 1]`), // wrong extent for N=4
		"N":  json.RawMessage(`4`),
	}
	if _, err := ps.ArgsFromJSON(prog, "Smooth", bad); err == nil {
		t.Error("wrong-extent array accepted")
	}
}

// TestModulesListing covers multi-module programs.
func TestModulesListing(t *testing.T) {
	prog, err := ps.CompileProgram("pipe.ps", psrc.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	mods := prog.Modules()
	if len(mods) != 2 || mods[0] != "Smooth" || mods[1] != "Pipeline" {
		t.Errorf("Modules = %v", mods)
	}
	if prog.Module("smooth") == nil {
		t.Error("case-insensitive module lookup failed")
	}
	if prog.Module("nosuch") != nil {
		t.Error("phantom module found")
	}
}

// TestCompileErrors surfaces front-end diagnostics through the API.
func TestCompileErrors(t *testing.T) {
	if _, err := ps.CompileProgram("bad.ps", "Bad: module"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := ps.CompileProgram("bad.ps",
		"Bad: module (x: int): [y: int]; define y = nosuch; end Bad;"); err == nil {
		t.Error("check error not surfaced")
	}
	// Unschedulable programs fail at compile time.
	src := `
Bad: module (N: int): [R: array [I] of real];
type I = 0 .. N;
var B: array [0 .. N] of real;
define
    B[I] = if (I = 0) or (I = N) then 1.0 else (B[I-1] + B[I+1]) / 2.0;
    R[I] = B[I];
end Bad;`
	if _, err := ps.CompileProgram("bad.ps", src); err == nil {
		t.Error("unschedulable program accepted")
	} else if !strings.Contains(err.Error(), "cannot schedule") {
		t.Errorf("unexpected error %v", err)
	}
}
