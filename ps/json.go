package ps

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/token"
	"repro/internal/types"
	"repro/internal/value"
)

// JSON has no encoding for non-finite floats — encoding/json fails on
// them — so the wire format spells them as the strings below, in both
// directions. This is the same convention most scientific JSON APIs
// settle on, and it keeps NaN results (e.g. reads of FillNaN-seeded
// debug arrays) servable instead of a 500.
const (
	jsonNaN    = "NaN"
	jsonInf    = "Infinity"
	jsonNegInf = "-Infinity"
)

// floatToJSON boxes a real for JSON encoding, spelling non-finite
// values as strings.
func floatToJSON(f float64) any {
	switch {
	case math.IsNaN(f):
		return jsonNaN
	case math.IsInf(f, 1):
		return jsonInf
	case math.IsInf(f, -1):
		return jsonNegInf
	}
	return f
}

// floatFromJSONString maps the non-finite spellings back to floats.
func floatFromJSONString(s string) (float64, bool) {
	switch s {
	case jsonNaN:
		return math.NaN(), true
	case jsonInf:
		return math.Inf(1), true
	case jsonNegInf:
		return math.Inf(-1), true
	}
	return 0, false
}

// ArgsFromJSON converts a map of JSON parameter values into the argument
// list for the named module: scalars as numbers/booleans/strings, arrays
// as nested lists shaped to the declared dimensions (whose bounds may
// reference the scalar parameters in the same map).
func ArgsFromJSON(p *Program, module string, inputs map[string]json.RawMessage) ([]any, error) {
	m := p.Module(module)
	if m == nil {
		return nil, &Error{Phase: PhaseRun, Module: module, Err: fmt.Errorf("no module %q", module)}
	}
	sm := m.sem
	inputErr := func(sym string, err error) *Error {
		return &Error{Phase: PhaseRun, Module: sm.Name, Err: fmt.Errorf("input %s: %w", sym, err)}
	}

	// First pass: scalar parameters, needed to evaluate array bounds.
	env := make(map[string]int64)
	args := make([]any, len(sm.Params))
	for i, sym := range sm.Params {
		raw, ok := inputs[sym.Name]
		if !ok {
			return nil, &Error{Phase: PhaseRun, Module: sm.Name, Err: fmt.Errorf("missing input %s", sym.Name)}
		}
		if types.Rank(sym.Type) > 0 {
			continue
		}
		var err error
		args[i], err = scalarFromJSON(raw, sym.Type)
		if err != nil {
			return nil, inputErr(sym.Name, err)
		}
		if v, isInt := args[i].(int64); isInt {
			env[sym.Name] = v
		}
	}

	// Second pass: arrays, with bounds evaluated against the scalars.
	for i, sym := range sm.Params {
		arrT, isArr := sym.Type.(*types.Array)
		if !isArr {
			continue
		}
		axes := make([]value.Axis, len(arrT.Dims))
		for d, sr := range arrT.Dims {
			lo, err := evalBound(sr.Lo, env)
			if err != nil {
				return nil, inputErr(sym.Name, fmt.Errorf("bounds: %w", err))
			}
			hi, err := evalBound(sr.Hi, env)
			if err != nil {
				return nil, inputErr(sym.Name, fmt.Errorf("bounds: %w", err))
			}
			axes[d] = value.Axis{Lo: lo, Hi: hi}
		}
		arr, err := arrayFromJSON(inputs[sym.Name], arrT.Elem, axes)
		if err != nil {
			return nil, inputErr(sym.Name, err)
		}
		args[i] = arr
	}
	return args, nil
}

// ResultsToJSON converts module results into JSON-encodable values keyed
// by result name.
func ResultsToJSON(p *Program, module string, results []any) (map[string]any, error) {
	m := p.Module(module)
	if m == nil {
		return nil, &Error{Phase: PhaseRun, Module: module, Err: fmt.Errorf("no module %q", module)}
	}
	out := make(map[string]any, len(results))
	for i, sym := range m.sem.Results {
		switch v := results[i].(type) {
		case *value.Array:
			out[sym.Name] = arrayToJSON(v, make([]int64, 0, v.Rank()))
		case float64:
			out[sym.Name] = floatToJSON(v)
		default:
			out[sym.Name] = results[i]
		}
	}
	return out, nil
}

func scalarFromJSON(raw json.RawMessage, t types.Type) (any, error) {
	switch t.Kind() {
	case types.RealKind:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			var s string
			if serr := json.Unmarshal(raw, &s); serr == nil {
				if f, ok := floatFromJSONString(s); ok {
					return f, nil
				}
			}
			return nil, err
		}
		return v, nil
	case types.IntKind, types.SubrangeKind:
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	case types.BoolKind:
		var v bool
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	case types.StringKind:
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, fmt.Errorf("unsupported parameter type %s", t)
}

func arrayFromJSON(raw json.RawMessage, elem types.Type, axes []value.Axis) (*value.Array, error) {
	if raw == nil {
		return nil, fmt.Errorf("missing array input")
	}
	var nested any
	if err := json.Unmarshal(raw, &nested); err != nil {
		return nil, err
	}
	arr := value.NewArray(elem.Kind(), axes)
	idx := make([]int64, len(axes))
	var fill func(v any, d int) error
	fill = func(v any, d int) error {
		list, ok := v.([]any)
		if !ok {
			return fmt.Errorf("expected a list at depth %d", d)
		}
		n := axes[d].Extent()
		if int64(len(list)) != n {
			return fmt.Errorf("dimension %d has %d elements, want %d", d+1, len(list), n)
		}
		for k, item := range list {
			idx[d] = axes[d].Lo + int64(k)
			if d == len(axes)-1 {
				num, ok := item.(float64)
				if !ok {
					if b, isB := item.(bool); isB && elem.Kind() == types.BoolKind {
						arr.Set(idx, b)
						continue
					}
					if s, isS := item.(string); isS && elem.Kind() == types.RealKind {
						if f, isFin := floatFromJSONString(s); isFin {
							arr.Set(idx, f)
							continue
						}
					}
					return fmt.Errorf("element %v is not a number", idx)
				}
				switch elem.Kind() {
				case types.RealKind:
					arr.Set(idx, num)
				default:
					arr.Set(idx, int64(num))
				}
			} else if err := fill(item, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fill(nested, 0); err != nil {
		return nil, err
	}
	return arr, nil
}

func arrayToJSON(a *value.Array, prefix []int64) any {
	d := len(prefix)
	ax := a.Axes[d]
	out := make([]any, 0, ax.Extent())
	for x := ax.Lo; x <= ax.Hi; x++ {
		idx := append(prefix, x)
		if d == a.Rank()-1 {
			v := a.Get(idx)
			if f, isF := v.(float64); isF {
				v = floatToJSON(f)
			}
			out = append(out, v)
		} else {
			out = append(out, arrayToJSON(a, idx))
		}
	}
	return out
}

// evalBound evaluates a subrange bound expression over scalar parameter
// values.
func evalBound(e ast.Expr, env map[string]int64) (int64, error) {
	if v, ok := sem.EvalConstInt(e); ok {
		return v, nil
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("bound references %s, which is not a scalar input", x.Name)
	case *ast.Unary:
		v, err := evalBound(x.X, env)
		if err != nil {
			return 0, err
		}
		if x.Op == token.MINUS {
			return -v, nil
		}
		return v, nil
	case *ast.Binary:
		l, err := evalBound(x.X, env)
		if err != nil {
			return 0, err
		}
		r, err := evalBound(x.Y, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.PLUS:
			return l + r, nil
		case token.MINUS:
			return l - r, nil
		case token.STAR:
			return l * r, nil
		case token.DIV:
			if r == 0 {
				return 0, fmt.Errorf("division by zero in bound")
			}
			return l / r, nil
		case token.MOD:
			if r == 0 {
				return 0, fmt.Errorf("division by zero in bound")
			}
			return l % r, nil
		}
	}
	return 0, fmt.Errorf("cannot evaluate bound %s", ast.ExprString(e))
}
