package ps

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/interp"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/types"
)

// Runner is a prepared activation of one module: the module is
// resolved, options are merged (engine defaults first, then Prepare's),
// and every Run reuses that state. A Runner is immutable and safe for
// concurrent Run calls from many goroutines — the intended shape for a
// service handling simultaneous requests over one compiled program.
type Runner struct {
	prog *Program
	mod  *Module
	opts interp.Options
	// pool is the persistent pool serving this runner's DOALLs: the
	// engine's shared pool, or a dedicated engine-tracked pool when the
	// runner was prepared with a different worker count. nil for
	// engine-less programs (each Run then spawns a transient pool) and
	// for sequential runners.
	pool *par.Pool
	// lastTiming holds the breakdown of the most recent TraceRun, for
	// the timing line of Explain; nil until a traced run completes.
	lastTiming atomic.Pointer[TimingBreakdown]
}

// Prepare resolves the named module and fixes its execution options,
// returning a reusable Runner. Engine default options (for programs
// compiled through an Engine) are applied before opts.
//
// For engine programs the runner is bound to a persistent pool at
// Prepare time: the engine's shared pool, or — when a Workers option
// asks for a different width — a dedicated pool created once here and
// closed with the engine, so the per-Run path never pays pool setup.
func (p *Program) Prepare(module string, opts ...RunOption) (*Runner, error) {
	m := p.Module(module)
	if m == nil {
		return nil, &Error{Phase: PhaseRun, Module: module, Err: fmt.Errorf("no module %q", module)}
	}
	var o interp.Options
	if p.eng != nil {
		for _, f := range p.eng.defaults {
			f(&o)
		}
	}
	for _, f := range opts {
		f(&o)
	}
	r := &Runner{prog: p, mod: m, opts: o}
	if eng := p.eng; eng != nil && !o.Sequential {
		if o.Workers <= 0 || o.Workers == eng.pool.Workers() {
			r.pool = eng.pool
		} else {
			pool := par.NewPool(o.Workers)
			if !eng.trackPool(pool) {
				pool.Close()
				return nil, &Error{Phase: PhaseRun, Module: module, Err: errors.New("engine is closed")}
			}
			r.pool = pool
		}
	}
	return r, nil
}

// Module returns the module this runner activates.
func (r *Runner) Module() *Module { return r.mod }

// Explain renders the exact loop program this runner executes: a header
// with the execution mode (workers, grain, strictness, variant) followed
// by the lowered plan listing. It is the API form of `psrun -explain`.
func (r *Runner) Explain() string {
	var sb strings.Builder
	o := r.opts
	o.Pool = r.pool // mirror Run's pool binding for the worker count
	mode := fmt.Sprintf("%d workers", effectiveWorkers(o))
	if r.opts.Sequential {
		mode = "sequential"
	}
	if r.opts.Grain > 0 {
		mode += fmt.Sprintf(", grain %d", r.opts.Grain)
	}
	if r.opts.Strict {
		mode += ", strict"
	}
	if r.opts.NoVirtual {
		mode += ", no-virtual"
	}
	if r.opts.Hyperplane == HyperplaneOff {
		mode += ", hyperplane off"
	}
	planOpts := plan.Options{
		Fuse:          o.Fuse,
		Hyperplane:    o.EffectiveHyperplane(),
		PipelineFirst: o.EffectiveHyperplane() && o.Schedule == SchedulePipeline,
	}
	pl := r.prog.ip.Plan(r.mod.sem.Name, planOpts)
	variant := "base plan"
	if r.opts.Fuse {
		variant = "fused plan"
	}
	switch {
	case pl.HasPipeline() && pl.HasWavefront():
		variant = "auto-cascade (wavefront+pipeline) " + variant
	case pl.HasPipeline():
		variant = "auto-pipeline " + variant
	case pl.HasWavefront():
		variant = "auto-hyperplane " + variant
	}
	if pl.HasPipeline() || pl.HasWavefront() {
		mode += ", schedule " + r.opts.Schedule.String()
	}
	fmt.Fprintf(&sb, "runner %s: %s, %s\n", r.mod.Name(), mode, variant)
	// The cascade report: per eligible nest, which backend won and why
	// the earlier stages of the DOALL → wavefront → pipeline cascade
	// (reordered under SchedulePipeline) were rejected.
	if planOpts.Hyperplane {
		sb.WriteString(pl.CascadeReport())
	}
	if pl.HasWavefront() && !r.opts.Sequential {
		// The inline-plane threshold starts at the fixed default and is
		// calibrated once from the measured kernel cost; after this
		// runner (or any runner sharing the compiled plan) has run, the
		// calibration shows up here.
		grain, cost := r.prog.ip.WavefrontGrain(r.mod.sem.Name, planOpts)
		if cost > 0 {
			fmt.Fprintf(&sb, "wavefront grain: %d points/plane (calibrated: %d ns/point)\n", grain, cost)
		} else {
			fmt.Fprintf(&sb, "wavefront grain: %d points/plane default (calibrated from measured kernel cost at first run)\n", grain)
		}
	}
	for _, ks := range r.prog.ip.Kernels(r.mod.sem.Name, planOpts) {
		if ks.Specialized {
			fmt.Fprintf(&sb, "kernel %s (%s): specialized\n", ks.Eq, ks.Target)
		} else {
			fmt.Fprintf(&sb, "kernel %s (%s): generic (%s)\n", ks.Eq, ks.Target, ks.Reason)
		}
	}
	if tb := r.lastTiming.Load(); tb != nil {
		// Present only after a TraceRun: where the workers' time went,
		// per schedule, on the most recent traced activation.
		fmt.Fprintf(&sb, "timing (last traced run): %s\n", tb)
	}
	sb.WriteString(pl.String())
	return sb.String()
}

// Run executes the module with positional arguments. Scalar arguments
// are Go ints, float64s, bools or strings; array arguments are
// *ps.Array. One value is returned per declared module result, along
// with populated RunStats (also on failure, with the counters
// accumulated up to the abort).
//
// ctx cancellation or deadline expiry aborts sequential loops within
// one iteration and in-flight DOALLs within one chunk; the returned
// error then satisfies errors.Is(err, ctx.Err()).
func (r *Runner) Run(ctx context.Context, args []any) ([]any, *RunStats, error) {
	o := r.opts
	var st interp.Stats
	o.Stats = &st
	if eng := r.prog.eng; eng != nil {
		if eng.closed.Load() {
			return nil, &RunStats{Workers: 1}, &Error{Phase: PhaseRun, Module: r.mod.Name(), Err: errors.New("engine is closed")}
		}
		o.Pool = r.pool
	}
	start := time.Now()
	results, err := r.prog.ip.RunCtx(ctx, r.mod.Name(), args, o)
	stats := &RunStats{
		EquationInstances:  st.EqInstances.Load(),
		DOALLChunks:        st.Chunks.Load(),
		WavefrontPlanes:    st.Planes.Load(),
		DoacrossTiles:      st.Doacross.Tiles.Load(),
		DoacrossStalls:     st.Doacross.Stalls.Load(),
		DoacrossSteals:     st.Doacross.Steals.Load(),
		PipelineStages:     st.PipelineStages.Load(),
		StageStalls:        st.PipelineStalls.Load(),
		SpecializedKernels: st.Specialized.Load(),
		ArenaReuses:        st.ArenaReuses.Load(),
		Workers:            effectiveWorkers(o),
		WallTime:           time.Since(start),
	}
	if err != nil {
		return nil, stats, runError(r.mod.Name(), err)
	}
	return results, stats, nil
}

// Args is one activation's positional argument list — the element type
// of a batch.
type Args = []any

// BatchResult is one batch element's outcome: exactly what Run would
// have returned for the same argument list. Values is nil when Err is
// non-nil.
type BatchResult struct {
	Values []any
	Err    error
}

// RunBatch executes the module once per argument set, fused into a
// single batch DOALL: the batch index becomes a synthesized outermost
// parallel dimension (it appears in no equation subscript, so batch
// elements are trivially independent under the paper's dependence
// test), and the whole batch dispatches to the worker pool as one
// parallel loop. Results are bitwise identical to len(batch)
// sequential Run calls — per element, out[i] mirrors Run(ctx,
// batch[i]) including its typed error — while plan lookup and the
// one-shot wavefront grain calibration are paid once for the batch.
// This is the serving layer's execution primitive: N pending requests
// for one prepared Runner become one activation batch.
//
// The returned RunStats aggregates the whole batch (counters summed
// over all elements, wall time for the fused dispatch). The error is
// non-nil only for whole-batch failures — a closed engine or a context
// that was already done; per-element failures land in their
// BatchResult. An empty batch returns (nil, stats, nil).
func (r *Runner) RunBatch(ctx context.Context, batch []Args) ([]BatchResult, *RunStats, error) {
	o := r.opts
	var st interp.Stats
	o.Stats = &st
	if eng := r.prog.eng; eng != nil {
		if eng.closed.Load() {
			return nil, &RunStats{Workers: 1}, &Error{Phase: PhaseRun, Module: r.mod.Name(), Err: errors.New("engine is closed")}
		}
		o.Pool = r.pool
	}
	start := time.Now()
	results, errs, err := r.prog.ip.RunBatchCtx(ctx, r.mod.Name(), batch, o)
	stats := &RunStats{
		EquationInstances:  st.EqInstances.Load(),
		DOALLChunks:        st.Chunks.Load(),
		WavefrontPlanes:    st.Planes.Load(),
		DoacrossTiles:      st.Doacross.Tiles.Load(),
		DoacrossStalls:     st.Doacross.Stalls.Load(),
		DoacrossSteals:     st.Doacross.Steals.Load(),
		PipelineStages:     st.PipelineStages.Load(),
		StageStalls:        st.PipelineStalls.Load(),
		SpecializedKernels: st.Specialized.Load(),
		ArenaReuses:        st.ArenaReuses.Load(),
		Workers:            effectiveWorkers(o),
		WallTime:           time.Since(start),
	}
	if err != nil {
		return nil, stats, runError(r.mod.Name(), err)
	}
	out := make([]BatchResult, len(batch))
	for i := range out {
		if errs[i] != nil {
			out[i].Err = runError(r.mod.Name(), errs[i])
		} else {
			out[i].Values = results[i]
		}
	}
	return out, stats, nil
}

// RunNamed executes the module with arguments keyed by parameter name,
// the natural shape for service payloads. Every declared parameter must
// be present; unknown names are rejected.
func (r *Runner) RunNamed(ctx context.Context, args map[string]any) ([]any, *RunStats, error) {
	argv, err := r.positional(args)
	if err != nil {
		return nil, &RunStats{Workers: effectiveWorkers(r.opts)}, err
	}
	return r.Run(ctx, argv)
}

// positional maps named arguments onto the module's declared parameter
// order.
func (r *Runner) positional(args map[string]any) ([]any, error) {
	params := r.mod.sem.Params
	byName := make(map[string]int, len(params))
	for i, sym := range params {
		byName[sym.Name] = i
	}
	for name := range args {
		if _, ok := byName[name]; !ok {
			return nil, &Error{Phase: PhaseRun, Module: r.mod.Name(),
				Err: fmt.Errorf("unknown argument %q", name)}
		}
	}
	argv := make([]any, len(params))
	for i, sym := range params {
		v, ok := args[sym.Name]
		if !ok {
			return nil, &Error{Phase: PhaseRun, Module: r.mod.Name(),
				Err: fmt.Errorf("missing argument %q (%s)", sym.Name, sym.Type)}
		}
		argv[i] = v
	}
	return argv, nil
}

// effectiveWorkers reports the worker count a run with these options
// uses.
func effectiveWorkers(o interp.Options) int {
	switch {
	case o.Sequential:
		return 1
	case o.Pool != nil:
		return o.Pool.Workers()
	case o.Workers > 0:
		return o.Workers
	default:
		return par.DefaultWorkers()
	}
}

// Params describes the module's declared parameters as (name, type)
// pairs in positional order — the contract RunNamed checks against.
func (r *Runner) Params() []ParamInfo {
	params := r.mod.sem.Params
	out := make([]ParamInfo, len(params))
	for i, sym := range params {
		out[i] = ParamInfo{Name: sym.Name, Type: sym.Type.String(), IsArray: types.Rank(sym.Type) > 0}
	}
	return out
}

// ParamInfo describes one declared module parameter.
type ParamInfo struct {
	Name    string
	Type    string
	IsArray bool
}
