// Package ps is the public API of the PS dataflow compiler reproduction
// (Gokhale, "Exploiting Loop Level Parallelism in Nonprocedural Dataflow
// Programs", ICPP 1987). It wires the full pipeline together:
//
//	source → parse → check → dependency graph → schedule (DO/DOALL
//	flowchart + virtual dimensions) → lower to the loop-plan IR (§5
//	fusion; automatic §4 hyperplane restructuring of eligible sequential
//	nests into wavefront steps) → {execute in parallel | generate C |
//	hyperplane-transform}
//
// The service entry point is the Engine: a long-lived, concurrency-safe
// runtime with one shared worker pool, a compiled-program cache keyed by
// source hash, and engine-level default options. Programs prepare
// modules into Runners, whose Run accepts a context for cancellation
// and returns per-run statistics:
//
//	eng := ps.NewEngine(ps.EngineWorkers(8))
//	defer eng.Close()
//	prog, err := eng.Compile("relax.ps", source)
//	m := prog.Module("Relaxation")
//	fmt.Println(m.Flowchart())           // Figure 6-style schedule
//	run, err := prog.Prepare("Relaxation")
//	out, stats, err := run.Run(ctx, []any{grid, 256, 64})
//	out, stats, err = run.RunNamed(ctx,
//	    map[string]any{"InitialA": grid, "M": 256, "maxK": 64})
//
// Failures at every phase are *ps.Error values carrying the phase
// (parse, check, schedule, run), the module, the equation label, and —
// for front-end diagnostics — the source position.
//
// The one-shot CompileProgram/Program.Run entry points remain as thin
// wrappers over the same pipeline for scripts and tests that do not
// need a shared runtime.
//
// The hyperplane restructuring of §4 is applied automatically during
// lowering (HyperplaneAuto, the default for parallel runs): sequential
// recurrence nests with constant dependence vectors and a valid time
// vector execute as wavefront sweeps, inspectable through Runner.Explain
// and Module.Plan and controllable per Runner with WithHyperplane. It
// also remains available as an explicit source-to-source transformation:
//
//	hp, err := m.Hyperplane("eq.3")      // analysis: π, T, T⁻¹, window
//	prog2, err := ps.CompileProgram("t.ps", hp.TransformedSource)
package ps

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/hyperplane"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Array is a runtime PS array value (see NewRealArray and friends).
type Array = value.Array

// Axis describes one array dimension: inclusive bounds and an optional
// window size for virtual allocation.
type Axis = value.Axis

// Program is a compiled PS compilation unit, ready to inspect, prepare
// and run. Programs are immutable after compilation and safe for
// concurrent use from many goroutines.
type Program struct {
	checked *sem.Program
	ip      *interp.Program
	mods    map[string]*Module
	// eng is the engine this program was compiled through, or nil for
	// the one-shot CompileProgram path; it supplies the shared pool and
	// default options to prepared Runners.
	eng *Engine
}

// Module exposes one module's analyses.
type Module struct {
	prog  *Program
	sem   *sem.Module
	graph *depgraph.Graph
	sched *core.Schedule
	// pl is the base lowered loop plan — the artifact both the
	// interpreter and the C generator execute.
	pl *plan.Program
}

// CompileProgram parses, checks and schedules every module of a PS source
// text. The name is used in diagnostics only. Programs compiled this way
// have no shared engine pool: each Run spawns (and closes) its own
// worker pool. Services should compile through an Engine instead.
func CompileProgram(name, source string) (*Program, error) {
	return compileProgram(nil, name, source)
}

// compileProgram runs the front half of the pipeline, attributing
// failures to their phase.
func compileProgram(eng *Engine, name, source string) (*Program, error) {
	parsed, err := parser.ParseProgram(name, source)
	if err != nil {
		return nil, compileError(PhaseParse, name, err)
	}
	checked, err := sem.CheckNamed(name, parsed)
	if err != nil {
		return nil, compileError(PhaseCheck, name, err)
	}
	ip, err := interp.Compile(checked)
	if err != nil {
		return nil, compileError(PhaseSchedule, name, err)
	}
	p := &Program{checked: checked, ip: ip, mods: make(map[string]*Module), eng: eng}
	for _, m := range checked.Modules {
		p.mods[m.Name] = &Module{
			prog:  p,
			sem:   m,
			graph: ip.Scheds[m].Graph,
			sched: ip.Scheds[m],
			pl:    ip.Plan(m.Name, plan.Options{Hyperplane: true}),
		}
	}
	return p, nil
}

// Module returns a compiled module by name, or nil.
func (p *Program) Module(name string) *Module {
	if m := p.mods[name]; m != nil {
		return m
	}
	// Case-insensitive fallback, PS names being Pascal-like.
	sm := p.checked.Module(name)
	if sm == nil {
		return nil
	}
	return p.mods[sm.Name]
}

// Modules lists the program's module names in declaration order.
func (p *Program) Modules() []string {
	out := make([]string, len(p.checked.Modules))
	for i, m := range p.checked.Modules {
		out[i] = m.Name
	}
	return out
}

// RunOption configures execution.
type RunOption func(*interp.Options)

// Workers sets the DOALL worker count (default: all CPUs).
func Workers(n int) RunOption { return func(o *interp.Options) { o.Workers = n } }

// Sequential forces serial execution of every loop, DOALLs included.
func Sequential() RunOption { return func(o *interp.Options) { o.Sequential = true } }

// Strict enables single-assignment and undefined-read checking.
func Strict() RunOption { return func(o *interp.Options) { o.Strict = true } }

// NoVirtual disables §3.4 window allocation (every dimension physical).
func NoVirtual() RunOption { return func(o *interp.Options) { o.NoVirtual = true } }

// NoSpecialize disables the specialized recurrence kernels and runs
// every equation through the generic checked evaluator — a debugging
// and benchmarking control; results are identical either way.
func NoSpecialize() RunOption { return func(o *interp.Options) { o.NoSpecialize = true } }

// NoArena disables arena pooling of activation arrays, allocating fresh
// zeroed storage for every run (the pre-pooling behaviour). Strict runs
// imply it.
func NoArena() RunOption { return func(o *interp.Options) { o.NoArena = true } }

// Grain sets the minimum iterations per parallel chunk; under the
// doacross wavefront schedule it also sets the tile width on the
// blocked plane coordinate.
func Grain(n int64) RunOption { return func(o *interp.Options) { o.Grain = n } }

// WithProfileLabels tags worker execution with runtime/pprof labels
// (ps_module, ps_step, ps_eqs), so CPU profiles taken during runs
// attribute samples to the module, schedule step and equations
// executing when each sample hit. Costs one label-set install per
// parallel dispatch — negligible next to any profiled workload.
func WithProfileLabels() RunOption { return func(o *interp.Options) { o.ProfileLabels = true } }

// Fused executes the loop-fused schedule variant (§5 extension).
func Fused() RunOption { return func(o *interp.Options) { o.Fuse = true } }

// HyperplaneMode controls the automatic §4 restructuring of sequential
// loop nests (see WithHyperplane).
type HyperplaneMode = interp.HyperplaneMode

const (
	// HyperplaneAuto (the default) analyzes every fully sequential
	// recurrence nest at compile time and, when a valid time vector
	// exists, executes it as a wavefront: a sequential sweep over
	// hyperplanes with each plane run as a DOALL. Sequential runs keep
	// the untransformed nest.
	HyperplaneAuto = interp.HyperplaneAuto
	// HyperplaneOff always executes the untransformed sequential nests.
	HyperplaneOff = interp.HyperplaneOff
)

// WithHyperplane selects the automatic §4 wavefront scheduling mode for
// a Runner (or, via EngineDefaults, for every Runner of an engine).
func WithHyperplane(mode HyperplaneMode) RunOption {
	return func(o *interp.Options) { o.Hyperplane = mode }
}

// Schedule selects how wavefront steps execute on the worker pool (see
// WithSchedule).
type Schedule = sched.Policy

const (
	// ScheduleAuto (the default) picks per activation: doacross when
	// the plane width per worker is small relative to the measured
	// kernel cost — the regime where the barrier sweep's per-plane
	// fork/join dominates — and barrier otherwise.
	ScheduleAuto = sched.PolicyAuto
	// ScheduleBarrier always sweeps hyperplanes with one pool-wide
	// fork/join barrier per plane.
	ScheduleBarrier = sched.PolicyBarrier
	// ScheduleDoacross always runs the pipelined tile schedule: the
	// plane is blocked into tiles with atomic completion counters, and
	// workers wait point-to-point only on the predecessor tiles implied
	// by the dependence window, so successive hyperplanes overlap.
	ScheduleDoacross = sched.PolicyDoacross
	// SchedulePipeline reorders the lowering cascade to prefer the
	// PS-DSWP pipeline backend over the wavefront restructuring:
	// sequential recurrence nests with downstream DOALL consumers run as
	// decoupled stages over bounded channels, and only nests the
	// pipeline recognizer rejects fall back to wavefront analysis.
	// Wavefront steps that remain execute with automatic per-activation
	// barrier/doacross selection. Results are bitwise identical to every
	// other schedule.
	SchedulePipeline = sched.PolicyPipeline
)

// WithSchedule selects the backend-preference and wavefront execution
// strategy for a Runner (or, via EngineDefaults, for every Runner of an
// engine): automatic per-activation selection, barrier, doacross, or
// pipeline-first lowering. All strategies are bitwise identical; the
// choice is purely about synchronization cost. Inert for sequential
// runs and modules with neither wavefront nor pipeline steps.
func WithSchedule(s Schedule) RunOption {
	return func(o *interp.Options) { o.Schedule = s }
}

// ParseSchedule resolves a -schedule flag value ("auto", "barrier",
// "doacross" or "pipeline") to the Schedule the CLIs pass to
// WithSchedule.
func ParseSchedule(s string) (Schedule, error) { return sched.ParsePolicy(s) }

// Run executes the named module. Scalar arguments are Go ints, float64s,
// bools or strings; array arguments are *ps.Array. One value is returned
// per declared module result.
//
// Run is the one-shot convenience over Prepare/Runner.Run: it uses a
// background context and discards the run statistics. Services holding
// a module hot should Prepare once and reuse the Runner.
func (p *Program) Run(module string, args []any, opts ...RunOption) ([]any, error) {
	r, err := p.Prepare(module, opts...)
	if err != nil {
		return nil, err
	}
	results, _, err := r.Run(context.Background(), args)
	return results, err
}

// Name returns the module's declared name.
func (m *Module) Name() string { return m.sem.Name }

// Source returns the module pretty-printed as PS text.
func (m *Module) Source() string { return ast.ModuleString(m.sem.AST) }

// Flowchart returns the schedule in the paper's indented Figure 6 form.
func (m *Module) Flowchart() string { return m.sched.Flowchart.String() }

// FlowchartCompact returns the schedule on one line, e.g.
// "DO K (DOALL I (DOALL J (eq.3)))".
func (m *Module) FlowchartCompact() string { return m.sched.Flowchart.Compact() }

// FlowchartFused returns the loop-fused schedule variant (§5 extension):
// loops over the same subrange merged when dependences permit.
func (m *Module) FlowchartFused() string { return core.Fuse(m.sched.Flowchart).Compact() }

// PlanOptions select a lowered plan variant for inspection and C
// generation.
type PlanOptions struct {
	// Fused selects the §5 loop-fused variant.
	Fused bool
	// Hyperplane selects whether the automatic restructuring cascade
	// (§4 wavefront and PS-DSWP pipeline lowering) is applied; the zero
	// value (HyperplaneAuto) matches the plan parallel runs execute by
	// default.
	Hyperplane HyperplaneMode
	// Schedule mirrors WithSchedule for plan selection: SchedulePipeline
	// selects the pipeline-first cascade variant the same runner option
	// executes. Other schedules share the default (auto-cascade) plan.
	Schedule Schedule
}

// planFor resolves a plan variant.
func (m *Module) planFor(o PlanOptions) *plan.Program {
	hyper := o.Hyperplane == HyperplaneAuto
	return m.prog.ip.Plan(m.sem.Name, plan.Options{
		Fuse:          o.Fused,
		Hyperplane:    hyper,
		PipelineFirst: hyper && o.Schedule == SchedulePipeline,
	})
}

// Plan returns the lowered loop program — the flat, slot-resolved IR
// both the interpreter and the C generator consume — rendered as an
// indented listing (`psrun -explain` prints the same artifact). Loops
// are resolved to frame slots, directly nested DOALLs are collapsed,
// §4-eligible sequential nests appear as wavefront steps annotated with
// their time vector π and window, and every equation carries its kernel
// index. It shows the variant parallel runs execute by default; use
// PlanWith to inspect others.
func (m *Module) Plan() string { return m.pl.String() }

// PlanWith returns the listing of a specific plan variant.
func (m *Module) PlanWith(o PlanOptions) string { return m.planFor(o).String() }

// PlanCompact returns the lowered loop program on one line, e.g.
// "DOALL I×J (eq.1); WAVEFRONT[pi=(2,1,1)] K×I×J (eq.3); DOALL I×J (eq.2)".
func (m *Module) PlanCompact() string { return m.pl.Compact() }

// PlanCompactWith returns the one-line form of a specific plan variant.
func (m *Module) PlanCompactWith(o PlanOptions) string { return m.planFor(o).Compact() }

// PlanFused returns the loop-fused plan variant's listing.
func (m *Module) PlanFused() string {
	return m.PlanWith(PlanOptions{Fused: true})
}

// GraphListing returns the dependency graph as text (Figure 3).
func (m *Module) GraphListing() string { return m.graph.Listing() }

// GraphDOT returns the dependency graph in Graphviz format.
func (m *Module) GraphDOT() string { return m.graph.DOT() }

// Components describes the MSCC decomposition and per-component
// flowcharts (Figure 5): one entry per component, "{nodes} => flowchart".
func (m *Module) Components() []string {
	out := make([]string, len(m.sched.Components))
	for i, c := range m.sched.Components {
		fc := c.Flowchart.Compact()
		if fc == "" {
			fc = "null"
		}
		out[i] = fmt.Sprintf("{%s} => %s", c.NodeNames(), fc)
	}
	return out
}

// VirtualDim reports one window-allocatable array dimension (§3.4).
type VirtualDim struct {
	Array    string
	Dim      int // 1-based dimension index
	Window   int
	Subrange string
}

// VirtualDims lists the virtual dimensions the scheduler found.
func (m *Module) VirtualDims() []VirtualDim {
	out := make([]VirtualDim, len(m.sched.Virtual))
	for i, v := range m.sched.Virtual {
		out[i] = VirtualDim{
			Array:    v.Sym.Name,
			Dim:      v.Dim + 1,
			Window:   v.Window,
			Subrange: v.Subrange.Name,
		}
	}
	return out
}

// CGenOptions configure C code generation.
type CGenOptions = cgen.Options

// GenerateC emits the module as a C translation unit with annotated
// DO/DOALL loops, the paper's output artifact. The generator consumes
// the same lowered plan parallel interpretation executes by default —
// §4-eligible nests emit the skewed wavefront nest with the plane loop
// under the OpenMP pragma. Use GenerateCWith to emit another variant.
func (m *Module) GenerateC(opts CGenOptions) (string, error) {
	return cgen.Generate(m.sem, m.pl, opts)
}

// GenerateCWith emits C for a specific plan variant.
func (m *Module) GenerateCWith(o PlanOptions, opts CGenOptions) (string, error) {
	return cgen.Generate(m.sem, m.planFor(o), opts)
}

// Hyperplane is the result of the §4 analysis and transformation of one
// recurrence equation.
type Hyperplane struct {
	// TimeVector is the least integer π with π·d ≥ 1 for every
	// dependence d (the paper's a=2, b=c=1).
	TimeVector []int64
	// TimeEquation renders π as t(A[K,I,J]) = 2K + I + J.
	TimeEquation string
	// Inequalities are the strict dependence inequalities in coefficient
	// form ("a > 0", "a > c", ...).
	Inequalities []string
	// Dependences and TransformedDeps are the offset vectors before and
	// after the coordinate change.
	Dependences     []string
	TransformedDeps []string
	// T and TInv render the unimodular transformation and its inverse.
	T, TInv string
	// Window is the §3.4 window of the transformed array's first
	// dimension (3 for the paper's example).
	Window int
	// TransformedSource is the rewritten module as PS source; compile it
	// with CompileProgram to schedule and run the wavefront version. Its
	// module name is the original name with an "H" suffix.
	TransformedSource string
	// TransformedModule is the rewritten module's name.
	TransformedModule string
}

// Hyperplane runs the §4 restructuring on the named recurrence equation
// (e.g. "eq.3").
func (m *Module) Hyperplane(eqLabel string) (*Hyperplane, error) {
	var eq *sem.Equation
	for _, e := range m.sem.Eqs {
		if e.Label == eqLabel {
			eq = e
			break
		}
	}
	if eq == nil {
		return nil, &Error{Phase: PhaseSchedule, Module: m.sem.Name, Equation: eqLabel,
			Err: fmt.Errorf("module has no equation %s", eqLabel)}
	}
	an, err := hyperplane.Analyze(m.sem, eq)
	if err != nil {
		return nil, err
	}
	res, err := hyperplane.Transform(an)
	if err != nil {
		return nil, err
	}
	h := &Hyperplane{
		TimeVector:        an.Pi,
		TimeEquation:      an.TimeEquation(),
		Inequalities:      an.Inequalities(),
		T:                 an.T.String(),
		TInv:              an.TInv.String(),
		Window:            an.Window,
		TransformedSource: res.Source,
		TransformedModule: res.Module.Name.Name,
	}
	for _, d := range an.Deps {
		h.Dependences = append(h.Dependences, d.String())
	}
	for _, d := range an.TransformedDeps {
		h.TransformedDeps = append(h.TransformedDeps, d.String())
	}
	return h, nil
}

// NewRealArray allocates a real-valued array with the given axes.
func NewRealArray(axes ...Axis) *Array {
	return value.NewArray(types.RealKind, axes)
}

// NewIntArray allocates an integer-valued array with the given axes.
func NewIntArray(axes ...Axis) *Array {
	return value.NewArray(types.IntKind, axes)
}

// NewBoolArray allocates a boolean array with the given axes.
func NewBoolArray(axes ...Axis) *Array {
	return value.NewArray(types.BoolKind, axes)
}
