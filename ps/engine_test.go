package ps_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

func relaxInput(m int64) *ps.Array {
	in := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			in.SetF([]int64{i, j}, float64((i*13+j*7)%11)/11.0)
		}
	}
	return in
}

// TestEngineConcurrentRunners drives one shared Engine/Program/Runner
// from many goroutines at once — the service shape — and checks every
// run produces the reference result with identical work counters. Run
// with -race.
func TestEngineConcurrentRunners(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()
	prog, err := eng.Compile("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 16, 5
	in := relaxInput(m)

	refOut, refStats, err := run.Run(context.Background(), []any{in, int64(m), int64(maxK)})
	if err != nil {
		t.Fatal(err)
	}
	ref := refOut[0].(*ps.Array)
	if refStats.EquationInstances == 0 {
		t.Fatal("reference run reported zero equation instances")
	}

	const goroutines, runsEach = 8, 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				out, stats, err := run.Run(context.Background(), []any{in, int64(m), int64(maxK)})
				if err != nil {
					errc <- err
					return
				}
				if !out[0].(*ps.Array).Equal(ref) {
					errc <- errors.New("concurrent run produced a different grid")
					return
				}
				if stats.EquationInstances != refStats.EquationInstances {
					errc <- errors.New("concurrent run counted different equation instances")
					return
				}
				if stats.WallTime <= 0 {
					errc <- errors.New("stats missing wall time")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEngineConcurrentCompile hammers the compile cache from many
// goroutines; every caller must get the same cached Program.
func TestEngineConcurrentCompile(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	progs := make([]*ps.Program, 16)
	var wg sync.WaitGroup
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := eng.Compile("smooth.ps", psrc.Smooth)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(progs); i++ {
		if progs[i] != progs[0] {
			t.Fatal("cache returned distinct programs for identical source")
		}
	}
	if n := eng.CachedPrograms(); n != 1 {
		t.Errorf("cache holds %d programs, want 1", n)
	}
}

// TestRunCancellation cancels a long run mid-flight: Run must return
// promptly with context.Canceled.
func TestRunCancellation(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()
	prog, err := eng.Compile("relax.ps", psrc.Relaxation)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		t.Fatal(err)
	}
	// Big enough to run for many seconds uncancelled: the outer DO K
	// loop dispatches one DOALL grid sweep per iteration.
	const m, maxK = 64, 1 << 20
	in := relaxInput(m)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := run.Run(ctx, []any{in, int64(m), int64(maxK)})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *ps.Error
	if !errors.As(err, &pe) || pe.Phase != ps.PhaseRun || pe.Module != "Relaxation" {
		t.Fatalf("error not typed as run-phase ps.Error: %#v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if stats == nil || stats.WallTime <= 0 {
		t.Error("cancelled run did not report stats")
	}
}

// TestRunDeadline covers deadline expiry and pre-cancelled contexts,
// including the all-sequential (Figure 7) schedule, whose loops are
// aborted between iterations rather than between chunks.
func TestRunDeadline(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation", ps.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	const m, maxK = 48, 1 << 20
	in := relaxInput(m)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = run.Run(ctx, []any{in, int64(m), int64(maxK)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, _, err := run.Run(pre, []any{in, int64(m), int64(maxK)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunStats checks the counters of a known workload: Smooth over
// 0..N+1 executes exactly N+2 equation instances.
func TestRunStats(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	run, err := prog.Prepare("Smooth")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := run.Run(context.Background(), []any{xs, int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EquationInstances != n+2 {
		t.Errorf("EquationInstances = %d, want %d", stats.EquationInstances, n+2)
	}
	if stats.DOALLChunks == 0 {
		t.Error("DOALLChunks = 0, want > 0 for a parallel DOALL")
	}
	if stats.Workers != 2 {
		t.Errorf("Workers = %d, want 2", stats.Workers)
	}
	if stats.WallTime <= 0 {
		t.Error("WallTime not populated")
	}
	if s := stats.String(); !strings.Contains(s, "eq_instances=4098") {
		t.Errorf("stats string %q", s)
	}

	// A sequential run of the same module dispatches no chunks.
	seqRun, err := prog.Prepare("Smooth", ps.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	_, seqStats, err := seqRun.Run(context.Background(), []any{xs, int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.DOALLChunks != 0 || seqStats.Workers != 1 {
		t.Errorf("sequential stats %+v", seqStats)
	}
	if seqStats.EquationInstances != n+2 {
		t.Errorf("sequential EquationInstances = %d, want %d", seqStats.EquationInstances, n+2)
	}
}

// TestRunNamed checks the named-argument form against positional, plus
// its error paths.
func TestRunNamed(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	defer eng.Close()
	prog, err := eng.Compile("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Smooth")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		xs.SetF([]int64{i}, float64(i*i))
	}
	posOut, _, err := run.Run(context.Background(), []any{xs, int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	namedOut, _, err := run.RunNamed(context.Background(), map[string]any{"Xs": xs, "N": int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	if !posOut[0].(*ps.Array).Equal(namedOut[0].(*ps.Array)) {
		t.Error("named and positional runs differ")
	}

	_, _, err = run.RunNamed(context.Background(), map[string]any{"Xs": xs})
	if err == nil || !strings.Contains(err.Error(), `missing argument "N"`) {
		t.Errorf("missing-argument error = %v", err)
	}
	_, _, err = run.RunNamed(context.Background(), map[string]any{"Xs": xs, "N": int64(n), "Bogus": 1})
	if err == nil || !strings.Contains(err.Error(), `unknown argument "Bogus"`) {
		t.Errorf("unknown-argument error = %v", err)
	}

	params := run.Params()
	if len(params) != 2 || params[0].Name != "Xs" || !params[0].IsArray || params[1].Name != "N" {
		t.Errorf("Params() = %+v", params)
	}
}

// TestTypedErrors walks one failure through each phase and checks the
// structured fields.
func TestTypedErrors(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(1))
	defer eng.Close()

	// Parse: truncated module.
	_, err := eng.Compile("bad.ps", "Bad: module")
	var pe *ps.Error
	if !errors.As(err, &pe) || pe.Phase != ps.PhaseParse {
		t.Fatalf("parse error = %#v", err)
	}
	if pe.Line == 0 || pe.File != "bad.ps" {
		t.Errorf("parse error position = %s:%d:%d", pe.File, pe.Line, pe.Column)
	}

	// Check: undefined name.
	_, err = eng.Compile("bad.ps", "Bad: module (x: int): [y: int]; define y = nosuch; end Bad;")
	if !errors.As(err, &pe) || pe.Phase != ps.PhaseCheck || pe.Line == 0 {
		t.Fatalf("check error = %v", err)
	}

	// Schedule: irreducible cycle.
	const unsched = `
Bad: module (N: int): [R: array [I] of real];
type I = 0 .. N;
var B: array [0 .. N] of real;
define
    B[I] = if (I = 0) or (I = N) then 1.0 else (B[I-1] + B[I+1]) / 2.0;
    R[I] = B[I];
end Bad;`
	_, err = eng.Compile("bad.ps", unsched)
	if !errors.As(err, &pe) || pe.Phase != ps.PhaseSchedule {
		t.Fatalf("schedule error = %v", err)
	}
	if pe.Module != "Bad" {
		t.Errorf("schedule error module = %q, want Bad", pe.Module)
	}
	if !strings.Contains(err.Error(), "cannot schedule") {
		t.Errorf("schedule error text %q", err)
	}

	// Run: division by zero, attributed to module and equation.
	const divByZero = `
Bad: module (N: int): [Y: array [I] of int];
type I = 1 .. N;
define
    Y[I] = I div (N - N);
end Bad;`
	prog, err := eng.Compile("bad.ps", divByZero)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range [][]ps.RunOption{{ps.Sequential()}, {ps.Workers(4)}} {
		run, err := prog.Prepare("Bad", opt...)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = run.Run(context.Background(), []any{int64(64)})
		if !errors.As(err, &pe) || pe.Phase != ps.PhaseRun {
			t.Fatalf("run error = %v", err)
		}
		if pe.Module != "Bad" || pe.Equation != "eq.1" {
			t.Errorf("run error attribution: module %q equation %q", pe.Module, pe.Equation)
		}
		if !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("run error text %q", err)
		}
	}
}

// TestEngineClosed verifies post-Close behavior is a typed error, not a
// panic.
func TestEngineClosed(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	prog, err := eng.Compile("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Smooth")
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent

	if _, err := eng.Compile("smooth.ps", psrc.Smooth); err == nil {
		t.Error("Compile on closed engine succeeded")
	}
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: 3})
	if _, _, err := run.Run(context.Background(), []any{xs, int64(2)}); err == nil {
		t.Error("Run on closed engine succeeded")
	}
}

// TestEngineDefaults verifies engine-level options reach prepared
// runners and per-Prepare options override them.
func TestEngineDefaults(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2), ps.EngineDefaults(ps.Sequential()))
	defer eng.Close()
	prog, err := eng.Compile("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: 9})
	run, err := prog.Prepare("Smooth")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := run.Run(context.Background(), []any{xs, int64(8)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 || stats.DOALLChunks != 0 {
		t.Errorf("engine default Sequential not applied: %+v", stats)
	}
}

// TestRunnerDedicatedPool covers a Runner prepared with a worker count
// different from the engine pool's: it gets a persistent dedicated
// pool (created once at Prepare), and Prepare fails typed after Close.
func TestRunnerDedicatedPool(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(2))
	prog, err := eng.Compile("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Smooth", ps.Workers(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := 0; i < 2; i++ {
		_, stats, err := run.Run(context.Background(), []any{xs, int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Workers != 3 {
			t.Errorf("Workers = %d, want 3", stats.Workers)
		}
	}
	eng.Close() // must also close the dedicated pool without panicking
	if _, err := prog.Prepare("Smooth", ps.Workers(5)); err == nil {
		t.Error("Prepare with dedicated pool on closed engine succeeded")
	}
}

// TestProgramRunWrapper keeps the legacy one-shot entry point honest:
// it must produce the same results as the Runner path.
func TestProgramRunWrapper(t *testing.T) {
	prog, err := ps.CompileProgram("smooth.ps", psrc.Smooth)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		xs.SetF([]int64{i}, float64(i))
	}
	legacy, err := prog.Run("Smooth", []any{xs, int64(n)}, ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Prepare("Smooth", ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	modern, _, err := run.Run(context.Background(), []any{xs, int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	if !legacy[0].(*ps.Array).Equal(modern[0].(*ps.Array)) {
		t.Error("legacy Run and Runner.Run differ")
	}
}
