// Gauss–Seidel reproduces paper §4: the revised relaxation (Equation 2)
// schedules as the all-iterative nest of Figure 7; the hyperplane
// analysis solves the five dependence inequalities for the least time
// vector (a=2, b=c=1), builds the unimodular coordinate change
// K'=2K+I+J, I'=K, J'=I, rewrites the module, reschedules it to the
// Figure 6 shape, and runs both versions to show the recovered
// parallelism and identical results. Both versions run under a context
// deadline through prepared Runners on one shared engine.
//
//	go run ./examples/gauss_seidel [-m 256] [-k 16] [-workers 0] [-timeout 1m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

func main() {
	m := flag.Int64("m", 256, "grid size M (interior M×M)")
	k := flag.Int64("k", 16, "iterations maxK")
	workers := flag.Int("workers", 0, "DOALL workers (0 = all CPUs)")
	timeout := flag.Duration("timeout", time.Minute, "overall deadline covering both executions")
	flag.Parse()

	eng := ps.NewEngine(ps.EngineWorkers(*workers))
	defer eng.Close()
	prog, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		log.Fatal(err)
	}
	mod := prog.Module("Relaxation")

	fmt.Println("== schedule before transformation (Figure 7) ==")
	fmt.Print(mod.Flowchart())
	fmt.Println("   (the K, I and J loops are all iterative: no loop parallelism)")

	hp, err := mod.Hyperplane("eq.3")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== hyperplane analysis (§4) ==")
	fmt.Printf("  dependences:            %v\n", hp.Dependences)
	fmt.Printf("  dependence inequalities: %v\n", hp.Inequalities)
	fmt.Printf("  least time vector:      %v   (%s)\n", hp.TimeVector, hp.TimeEquation)
	fmt.Printf("  transformation T:       %s\n", hp.T)
	fmt.Printf("  inverse T⁻¹:            %s\n", hp.TInv)
	fmt.Printf("  transformed offsets:    %v\n", hp.TransformedDeps)
	fmt.Printf("  window after transform: %d planes\n", hp.Window)

	fmt.Println("\n== transformed module ==")
	fmt.Print(hp.TransformedSource)

	prog2, err := eng.Compile("gsh.ps", hp.TransformedSource)
	if err != nil {
		log.Fatal(err)
	}
	mod2 := prog2.Module(hp.TransformedModule)
	fmt.Println("\n== schedule after transformation (identical shape to Figure 6) ==")
	fmt.Print(mod2.Flowchart())

	// Execute both versions under one deadline.
	in := ps.NewRealArray(ps.Axis{Lo: 0, Hi: *m + 1}, ps.Axis{Lo: 0, Hi: *m + 1})
	for i := int64(1); i <= *m; i++ {
		for j := int64(1); j <= *m; j++ {
			in.SetF([]int64{i, j}, float64((i*31+j*17)%19)/19.0)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Printf("\n== execution (M=%d, maxK=%d, NumCPU=%d) ==\n", *m, *k, runtime.NumCPU())
	seqRun, err := prog.Prepare("Relaxation", ps.Sequential())
	if err != nil {
		log.Fatal(err)
	}
	seqOut, seqStats, err := seqRun.Run(ctx, []any{in, *m, *k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-36s %10v   (%s)\n", "original (sequential, Figure 7):", seqStats.WallTime, seqStats)

	parRun, err := prog2.Prepare(hp.TransformedModule)
	if err != nil {
		log.Fatal(err)
	}
	parOut, parStats, err := parRun.Run(ctx, []any{in, *m, *k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-36s %10v   (%s)\n", "transformed (parallel wavefront):", parStats.WallTime, parStats)

	// The compiler also applies §4 automatically: a parallel runner on
	// the *original* module lowers the Figure 7 nest to a wavefront plan
	// (visible in Explain), with no source rewrite at all.
	autoRun, err := prog.Prepare("Relaxation")
	if err != nil {
		log.Fatal(err)
	}
	autoOut, autoStats, err := autoRun.Run(ctx, []any{in, *m, *k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-36s %10v   (%s)\n", "original (auto-hyperplane):", autoStats.WallTime, autoStats)

	a, b := seqOut[0].(*ps.Array), parOut[0].(*ps.Array)
	if !a.Equal(b) {
		log.Fatalf("results differ (max diff %g)", a.MaxAbsDiff(b))
	}
	if !a.Equal(autoOut[0].(*ps.Array)) {
		log.Fatalf("auto-hyperplane result differs (max diff %g)", a.MaxAbsDiff(autoOut[0].(*ps.Array)))
	}
	fmt.Println("  identical results ✓")
	fmt.Println("\n== the automatic decision, as the runner reports it ==")
	fmt.Print(autoRun.Explain())
}
