// Relaxation reproduces the paper's worked example (Figures 1, 3, 5, 6
// and §3.4): the Jacobi-style relaxation module is compiled, its
// dependency graph and component decomposition printed, the Figure 6
// schedule derived, the §3.4 window-2 virtual dimension reported, and the
// module executed both sequentially and in parallel with timings and
// per-run statistics from the prepared-Runner API.
//
//	go run ./examples/relaxation [-m 256] [-k 32] [-workers 0] [-c]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/psrc"
	"repro/ps"
)

func main() {
	m := flag.Int64("m", 256, "grid size M (interior M×M)")
	k := flag.Int64("k", 32, "iterations maxK")
	workers := flag.Int("workers", 0, "DOALL workers (0 = all CPUs)")
	emitC := flag.Bool("c", false, "print the generated C instead of running")
	flag.Parse()

	eng := ps.NewEngine(ps.EngineWorkers(*workers))
	defer eng.Close()
	prog, err := eng.Compile("relaxation.ps", psrc.Relaxation)
	if err != nil {
		log.Fatal(err)
	}
	mod := prog.Module("Relaxation")

	fmt.Println("== module (Figure 1) ==")
	fmt.Print(mod.Source())

	fmt.Println("\n== dependency graph (Figure 3) ==")
	fmt.Print(mod.GraphListing())

	fmt.Println("\n== components and per-component flowcharts (Figure 5) ==")
	for i, c := range mod.Components() {
		fmt.Printf("  component %d: %s\n", i+1, c)
	}

	fmt.Println("\n== schedule (Figure 6) ==")
	fmt.Print(mod.Flowchart())

	fmt.Println("\n== virtual dimensions (§3.4) ==")
	for _, v := range mod.VirtualDims() {
		fmt.Printf("  array %s, dimension %d: window of %d planes (subrange %s)\n",
			v.Array, v.Dim, v.Window, v.Subrange)
	}

	if *emitC {
		c, err := mod.GenerateC(ps.CGenOptions{OpenMP: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n== generated C ==")
		fmt.Print(c)
		return
	}

	// Build an input grid: zero boundary, deterministic interior.
	in := ps.NewRealArray(ps.Axis{Lo: 0, Hi: *m + 1}, ps.Axis{Lo: 0, Hi: *m + 1})
	for i := int64(1); i <= *m; i++ {
		for j := int64(1); j <= *m; j++ {
			in.SetF([]int64{i, j}, float64((i*31+j*17)%19)/19.0)
		}
	}

	ctx := context.Background()
	args := []any{in, *m, *k}
	run := func(label string, opts ...ps.RunOption) *ps.Array {
		r, err := prog.Prepare("Relaxation", opts...)
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := r.Run(ctx, args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %10v   (%s)\n", label, stats.WallTime, stats)
		return out[0].(*ps.Array)
	}

	fmt.Printf("\n== execution (M=%d, maxK=%d, NumCPU=%d) ==\n", *m, *k, runtime.NumCPU())
	seq := run("sequential (DO everything):", ps.Sequential())
	par := run("parallel DOALL:", ps.Workers(*workers))
	phys := run("parallel, no window (§3.4 off):", ps.Workers(*workers), ps.NoVirtual())

	if !seq.Equal(par) || !seq.Equal(phys) {
		log.Fatal("results differ between execution modes")
	}
	fmt.Println("  all three runs produced identical grids ✓")

	center := []int64{(*m + 1) / 2, (*m + 1) / 2}
	fmt.Printf("  newA[center] = %.6f\n", seq.GetF(center))
}
