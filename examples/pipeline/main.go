// Pipeline demonstrates multi-module PS programs: a driver module invokes
// the Smooth module twice (module calls are an extension beyond the
// paper's single-module examples, following its description of modules as
// functional units). It also shows strict mode, which enforces the
// single-assignment discipline at run time.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/psrc"
	"repro/ps"
)

func main() {
	prog, err := ps.CompileProgram("pipeline.ps", psrc.Pipeline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("modules:", prog.Modules())
	for _, name := range prog.Modules() {
		m := prog.Module(name)
		fmt.Printf("\n== %s schedule ==\n", name)
		fmt.Print(m.Flowchart())
	}

	n := int64(12)
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		// A noisy ramp: i plus an alternating perturbation.
		v := float64(i)
		if i%2 == 0 {
			v += 0.5
		} else {
			v -= 0.5
		}
		xs.SetF([]int64{i}, v)
	}

	// Strict mode verifies single assignment while executing.
	out, err := prog.Run("Pipeline", []any{xs, n}, ps.Workers(4), ps.Strict())
	if err != nil {
		log.Fatal(err)
	}
	zs := out[0].(*ps.Array)

	fmt.Println("\n== input vs doubly-smoothed output ==")
	for i := int64(0); i <= n+1; i++ {
		fmt.Printf("  x[%2d] = %6.2f   z[%2d] = %6.3f\n",
			i, xs.GetF([]int64{i}), i, zs.GetF([]int64{i}))
	}
}
