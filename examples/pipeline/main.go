// Pipeline demonstrates multi-module PS programs: a driver module invokes
// the Smooth module twice (module calls are an extension beyond the
// paper's single-module examples, following its description of modules as
// functional units). It also shows strict mode as an engine-level
// default, and named arguments through Runner.RunNamed — nested module
// activations share the engine's worker pool and accumulate into the
// same RunStats.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/psrc"
	"repro/ps"
)

func main() {
	// Strict mode (single-assignment verification) is applied to every
	// Runner prepared from this engine's programs.
	eng := ps.NewEngine(ps.EngineWorkers(4), ps.EngineDefaults(ps.Strict()))
	defer eng.Close()
	prog, err := eng.Compile("pipeline.ps", psrc.Pipeline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("modules:", prog.Modules())
	for _, name := range prog.Modules() {
		m := prog.Module(name)
		fmt.Printf("\n== %s schedule ==\n", name)
		fmt.Print(m.Flowchart())
	}

	n := int64(12)
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		// A noisy ramp: i plus an alternating perturbation.
		v := float64(i)
		if i%2 == 0 {
			v += 0.5
		} else {
			v -= 0.5
		}
		xs.SetF([]int64{i}, v)
	}

	run, err := prog.Prepare("Pipeline")
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := run.RunNamed(context.Background(),
		map[string]any{"Xs": xs, "N": n})
	if err != nil {
		log.Fatal(err)
	}
	zs := out[0].(*ps.Array)

	fmt.Println("\n== input vs doubly-smoothed output ==")
	for i := int64(0); i <= n+1; i++ {
		fmt.Printf("  x[%2d] = %6.2f   z[%2d] = %6.3f\n",
			i, xs.GetF([]int64{i}), i, zs.GetF([]int64{i}))
	}
	// The two nested Smooth activations count into the same stats.
	fmt.Printf("\n== stats (driver + 2 nested Smooth calls) ==\n%s\n", stats)
}
