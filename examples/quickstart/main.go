// Quickstart: start an Engine, compile a tiny PS module, inspect the
// schedule the compiler derives, and run it in parallel through a
// prepared Runner with per-run statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ps"
)

// A one-pass smoothing filter: no recurrence, so the scheduler emits a
// single parallel (DOALL) loop.
const source = `
Smooth: module (Xs: array[I] of real; N: int): [Ys: array [I] of real];
type
    I = 0 .. N+1;
define
    Ys[I] = if (I = 0) or (I = N+1)
            then Xs[I]
            else (Xs[I-1] + Xs[I] + Xs[I+1]) / 3.0;
end Smooth;
`

func main() {
	// One Engine serves every activation: its worker pool is shared
	// across runs and compiled programs are cached by source hash.
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()

	prog, err := eng.Compile("smooth.ps", source)
	if err != nil {
		log.Fatal(err)
	}
	m := prog.Module("Smooth")

	fmt.Println("== schedule (flowchart) ==")
	fmt.Print(m.Flowchart())

	// The schedule is lowered once into the flat loop plan both the
	// interpreter and the C generator consume (psrun -explain prints
	// the same artifact).
	fmt.Println("== lowered loop plan ==")
	fmt.Print(m.Plan())

	// Build an input signal 0², 1², 2², ...
	n := int64(10)
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		xs.SetF([]int64{i}, float64(i*i))
	}

	// Prepare once, run many times (and from many goroutines, if
	// needed): the Runner carries the resolved module and options.
	run, err := prog.Prepare("Smooth")
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := run.RunNamed(context.Background(),
		map[string]any{"Xs": xs, "N": n})
	if err != nil {
		log.Fatal(err)
	}
	ys := out[0].(*ps.Array)

	fmt.Println("== result ==")
	for i := int64(0); i <= n+1; i++ {
		fmt.Printf("Ys[%2d] = %8.3f\n", i, ys.GetF([]int64{i}))
	}
	fmt.Printf("== stats ==\n%s\n", stats)
}
