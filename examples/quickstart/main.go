// Quickstart: compile a tiny PS module, inspect the schedule the
// compiler derives, and run it in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ps"
)

// A one-pass smoothing filter: no recurrence, so the scheduler emits a
// single parallel (DOALL) loop.
const source = `
Smooth: module (Xs: array[I] of real; N: int): [Ys: array [I] of real];
type
    I = 0 .. N+1;
define
    Ys[I] = if (I = 0) or (I = N+1)
            then Xs[I]
            else (Xs[I-1] + Xs[I] + Xs[I+1]) / 3.0;
end Smooth;
`

func main() {
	prog, err := ps.CompileProgram("smooth.ps", source)
	if err != nil {
		log.Fatal(err)
	}
	m := prog.Module("Smooth")

	fmt.Println("== schedule (flowchart) ==")
	fmt.Print(m.Flowchart())

	// Build an input signal 0², 1², 2², ...
	n := int64(10)
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n + 1})
	for i := int64(0); i <= n+1; i++ {
		xs.SetF([]int64{i}, float64(i*i))
	}

	out, err := prog.Run("Smooth", []any{xs, n}, ps.Workers(4))
	if err != nil {
		log.Fatal(err)
	}
	ys := out[0].(*ps.Array)

	fmt.Println("== result ==")
	for i := int64(0); i <= n+1; i++ {
		fmt.Printf("Ys[%2d] = %8.3f\n", i, ys.GetF([]int64{i}))
	}
}
