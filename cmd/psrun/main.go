// Command psrun executes a PS module with JSON inputs and prints its
// results as JSON.
//
// Usage:
//
//	psrun [-module name] [-workers N] [-seq] [-strict] [-grain N]
//	      [-fused] [-timeout d] [-stats] [-in inputs.json] file.ps
//
// The input file maps parameter names to values: scalars as JSON numbers
// or booleans, arrays as (nested) JSON lists. Array parameter bounds are
// taken from the declared dimensions, so scalar size parameters must be
// consistent with the array data, e.g. for the relaxation module:
//
//	{"InitialA": [[0,0,0,0],[0,1,2,0],[0,3,4,0],[0,0,0,0]], "M": 2, "maxK": 8}
//
// -timeout bounds the run with a context deadline; -stats prints the
// run's counters (equation instances, DOALL chunks, workers, wall time)
// to standard error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/ps"
)

func main() {
	module := flag.String("module", "", "module to run (default: last in file)")
	workers := flag.Int("workers", 0, "DOALL workers (0 = all CPUs)")
	seq := flag.Bool("seq", false, "force sequential execution")
	strict := flag.Bool("strict", false, "enable single-assignment checking")
	grain := flag.Int64("grain", 0, "minimum iterations per parallel chunk")
	fused := flag.Bool("fused", false, "execute the loop-fused schedule variant (§5)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	inFile := flag.String("in", "", "JSON file with parameter values (default: {} )")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psrun [flags] file.ps")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	eng := ps.NewEngine(ps.EngineWorkers(*workers))
	defer eng.Close()
	prog, err := eng.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	names := prog.Modules()
	name := *module
	if name == "" {
		name = names[len(names)-1]
	}

	opts := []ps.RunOption{ps.Workers(*workers)}
	if *seq {
		opts = append(opts, ps.Sequential())
	}
	if *strict {
		opts = append(opts, ps.Strict())
	}
	if *grain > 0 {
		opts = append(opts, ps.Grain(*grain))
	}
	if *fused {
		opts = append(opts, ps.Fused())
	}
	run, err := prog.Prepare(name, opts...)
	if err != nil {
		fatal(fmt.Errorf("psrun: no module %s (have %v)", name, names))
	}

	inputs := map[string]json.RawMessage{}
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &inputs); err != nil {
			fatal(fmt.Errorf("psrun: parsing %s: %w", *inFile, err))
		}
	}
	args, err := ps.ArgsFromJSON(prog, name, inputs)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	results, runStats, err := run.Run(ctx, args)
	if *stats && runStats != nil {
		fmt.Fprintf(os.Stderr, "psrun: %s\n", runStats)
	}
	if err != nil {
		fatal(err)
	}

	out, err := ps.ResultsToJSON(prog, name, results)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
