// Command psrun executes a PS module with JSON inputs and prints its
// results as JSON.
//
// Usage:
//
//	psrun [-module name] [-workers N] [-seq] [-strict] [-grain N]
//	      [-fused] [-hyperplane auto|off]
//	      [-schedule auto|barrier|doacross|pipeline]
//	      [-timeout d] [-stats] [-trace out.json] [-explain]
//	      [-in inputs.json] [-cpuprofile f] [-memprofile f] file.ps
//
// The input file maps parameter names to values: scalars as JSON numbers
// or booleans, arrays as (nested) JSON lists. Array parameter bounds are
// taken from the declared dimensions, so scalar size parameters must be
// consistent with the array data, e.g. for the relaxation module:
//
//	{"InitialA": [[0,0,0,0],[0,1,2,0],[0,3,4,0],[0,0,0,0]], "M": 2, "maxK": 8}
//
// -timeout bounds the run with a context deadline; -stats prints the
// run's counters (equation instances, DOALL chunks, workers, wall time)
// plus a per-schedule timing breakdown (compute/stall/barrier-idle per
// worker) to standard error. -trace records the run and writes a Chrome
// trace-event JSON timeline (loadable in Perfetto or chrome://tracing)
// to the named file; -stats and -trace share one traced execution.
// -cpuprofile and -memprofile write pprof profiles covering the run
// (CPU sampled across it, heap captured at exit); CPU samples are
// tagged with ps_module/ps_step/ps_eqs pprof labels. -explain prints
// the lowered loop plan the selected options would execute — the flat
// IR shared by the interpreter and the C generator — without running
// the module.
//
// Failures are reported as typed diagnostics (phase, module, equation,
// source position). Exit status is 1 for program diagnostics (parse,
// check, schedule and run failures) and 2 for usage errors (bad flags,
// unreadable files, unknown module).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/ps"
)

func main() {
	module := flag.String("module", "", "module to run (default: last in file)")
	workers := flag.Int("workers", 0, "DOALL workers (0 = all CPUs)")
	seq := flag.Bool("seq", false, "force sequential execution")
	strict := flag.Bool("strict", false, "enable single-assignment checking")
	grain := flag.Int64("grain", 0, "minimum iterations per parallel chunk")
	fused := flag.Bool("fused", false, "execute the loop-fused plan variant (§5)")
	hyper := flag.String("hyperplane", "auto", "automatic §4 wavefront restructuring of eligible sequential nests: auto or off")
	schedule := flag.String("schedule", "auto", "scheduling strategy: auto, barrier (per-plane fork/join), doacross (pipelined tiles) or pipeline (prefer PS-DSWP decoupled stages over wavefronts)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	stats := flag.Bool("stats", false, "print run statistics and a timing breakdown to stderr")
	trace := flag.String("trace", "", "record the run and write Chrome trace-event JSON to this file")
	explain := flag.Bool("explain", false, "print the lowered loop plan and exit without running")
	inFile := flag.String("in", "", "JSON file with parameter values (default: {} )")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fatalUsage(errors.New("usage: psrun [flags] file.ps"))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalUsage(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalUsage(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psrun:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "psrun:", err)
			}
		}()
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalUsage(err)
	}

	eng := ps.NewEngine(ps.EngineWorkers(*workers))
	defer eng.Close()
	prog, err := eng.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	names := prog.Modules()
	name := *module
	if name == "" {
		name = names[len(names)-1]
	}

	opts := []ps.RunOption{ps.Workers(*workers)}
	if *cpuprofile != "" {
		// Tag CPU samples with the executing module/step/equations.
		opts = append(opts, ps.WithProfileLabels())
	}
	if *seq {
		opts = append(opts, ps.Sequential())
	}
	if *strict {
		opts = append(opts, ps.Strict())
	}
	if *grain > 0 {
		opts = append(opts, ps.Grain(*grain))
	}
	if *fused {
		opts = append(opts, ps.Fused())
	}
	switch *hyper {
	case "auto":
	case "off":
		opts = append(opts, ps.WithHyperplane(ps.HyperplaneOff))
	default:
		fatalUsage(fmt.Errorf("invalid -hyperplane %q (want auto or off)", *hyper))
	}
	sch, err := ps.ParseSchedule(*schedule)
	if err != nil {
		fatalUsage(err)
	}
	opts = append(opts, ps.WithSchedule(sch))
	run, err := prog.Prepare(name, opts...)
	if err != nil {
		if prog.Module(name) == nil {
			fatalUsage(fmt.Errorf("no module %s (have %v)", name, names))
		}
		fatal(err)
	}

	if *explain {
		fmt.Print(run.Explain())
		return
	}

	inputs := map[string]json.RawMessage{}
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatalUsage(err)
		}
		if err := json.Unmarshal(data, &inputs); err != nil {
			fatalUsage(fmt.Errorf("parsing %s: %w", *inFile, err))
		}
	}
	args, err := ps.ArgsFromJSON(prog, name, inputs)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// -stats and -trace both want the recorded timeline; one TraceRun
	// serves both. A plain run stays on the unrecorded fast path.
	var results []any
	var runStats *ps.RunStats
	if *stats || *trace != "" {
		var tr *ps.Trace
		results, runStats, tr, err = run.TraceRun(ctx, args)
		if *trace != "" && tr != nil {
			f, ferr := os.Create(*trace)
			if ferr != nil {
				fatalUsage(ferr)
			}
			if werr := tr.WriteChrome(f); werr == nil {
				werr = f.Close()
				if werr != nil {
					fmt.Fprintln(os.Stderr, "psrun:", werr)
				}
			} else {
				f.Close()
				fmt.Fprintln(os.Stderr, "psrun:", werr)
			}
		}
	} else {
		results, runStats, err = run.Run(ctx, args)
	}
	if *stats && runStats != nil {
		fmt.Fprintf(os.Stderr, "psrun: %s\n", runStats)
		if runStats.Timing != nil {
			fmt.Fprintf(os.Stderr, "psrun: timing: %s\n", runStats.Timing)
		}
	}
	if err != nil {
		fatal(err)
	}

	out, err := ps.ResultsToJSON(prog, name, results)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// fatal reports a program diagnostic and exits 1. Typed *ps.Error values
// are rendered field by field: the failing phase, the module and
// equation involved, and the source position when the front end has one.
func fatal(err error) {
	var pe *ps.Error
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "psrun: %v\n", err)
		fmt.Fprintf(os.Stderr, "  phase:    %s\n", pe.Phase)
		if pe.Module != "" {
			fmt.Fprintf(os.Stderr, "  module:   %s\n", pe.Module)
		}
		if pe.Equation != "" {
			fmt.Fprintf(os.Stderr, "  equation: %s\n", pe.Equation)
		}
		if pe.Line > 0 {
			fmt.Fprintf(os.Stderr, "  position: %s:%d:%d\n", pe.File, pe.Line, pe.Column)
		}
	} else {
		fmt.Fprintln(os.Stderr, "psrun:", err)
	}
	os.Exit(1)
}

// fatalUsage reports a command-usage error and exits 2.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "psrun:", err)
	os.Exit(2)
}
