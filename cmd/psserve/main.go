// Command psserve runs the batched multi-tenant HTTP serving layer
// (package ps/serve) over a directory of PS programs.
//
// Usage:
//
//	psserve -programs ./testdata -addr :8080
//
// Every *.ps file in the program directory is compiled and served
// under its base name. POST /v1/run executes a module activation
// (coalesced into fused batch DOALLs across concurrent requests),
// GET /metrics exposes Prometheus counters, GET /explain?program=&module=
// prints a lowered plan, GET /healthz reports liveness, and POST
// /reload re-reads the program directory. SIGINT/SIGTERM drain
// gracefully: new requests get 503, queued activations finish.
//
// Every request carries an X-PS-Request-ID (propagated from the client
// or generated) echoed on the response; -access-log writes one JSON
// line per request. With -trace, POST /v1/run?trace=1 runs the
// activation under the execution recorder and GET /v1/trace?id=
// exports its Chrome trace-event timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/ps"
	"repro/ps/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		programs    = flag.String("programs", "", "directory of *.ps programs to serve (required)")
		workers     = flag.Int("workers", 0, "worker pool width (0 = all CPUs)")
		cacheLimit  = flag.Int64("cache-limit", 64<<20, "compiled-program cache budget in bytes (0 = unbounded)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long to hold a batch open for coalescing")
		maxBatch    = flag.Int("max-batch", 64, "dispatch a batch early at this many pending activations")
		queueDepth  = flag.Int("queue-depth", 256, "per-tenant bound on queued activations")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant token-bucket rate in requests/s (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (default: ceil(rate))")
		runTimeout  = flag.Duration("run-timeout", 0, "bound on one fused batch execution (0 = unbounded)")
		schedule    = flag.String("schedule", "auto", "wavefront schedule: auto, barrier or doacross")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		trace       = flag.Bool("trace", false, "allow ?trace=1 traced runs and GET /v1/trace export")
		accessLog   = flag.String("access-log", "", "write JSON access-log lines to this file (- for stderr)")
	)
	flag.Parse()
	if *programs == "" {
		fmt.Fprintln(os.Stderr, "psserve: -programs is required")
		flag.Usage()
		os.Exit(2)
	}
	sched, err := ps.ParseSchedule(*schedule)
	if err != nil {
		log.Fatalf("psserve: %v", err)
	}
	var logw io.Writer
	switch *accessLog {
	case "":
	case "-":
		logw = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("psserve: %v", err)
		}
		defer f.Close()
		logw = f
	}

	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		CacheLimit:  *cacheLimit,
		RunOptions:  []ps.RunOption{ps.WithSchedule(sched)},
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		QueueDepth:  *queueDepth,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
		RunTimeout:  *runTimeout,
		Dir:         *programs,
		EnableTrace: *trace,
		AccessLog:   logw,
	})
	if err != nil {
		log.Fatalf("psserve: %v", err)
	}
	defer srv.Close()
	log.Printf("psserve: serving %d program(s) from %s on %s", len(srv.Programs()), *programs, *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("psserve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("psserve: draining (up to %v)...", *drainWait)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("psserve: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("psserve: shutdown: %v", err)
	}
	log.Printf("psserve: done")
}
