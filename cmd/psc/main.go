// Command psc is the PS compiler driver: it parses and schedules a PS
// source file and emits generated C (the paper's output artifact) or any
// of the intermediate analyses.
//
// Usage:
//
//	psc [-module name] [-dump c|flowchart|plan|components|graph|dot|virtual|source]
//	    [-openmp] [-no-virtual] [-hyperplane auto|off]
//	    [-schedule auto|barrier|doacross|pipeline] [-transform eq.N] file.ps
//
// Examples:
//
//	psc -dump flowchart relaxation.ps      # Figure 6
//	psc -dump plan relaxation.ps           # lowered loop plan (shared IR)
//	psc -dump plan gs.ps                   # §4 auto-hyperplane wavefront step (π, window)
//	psc -dump plan -hyperplane off gs.ps   # the untransformed DO nest
//	psc -dump c -openmp relaxation.ps      # annotated C with OpenMP pragmas
//	psc -dump c -openmp -schedule doacross gs.ps  # omp ordered/depend doacross nest
//	psc -transform eq.3 gs.ps              # §4 hyperplane-transformed source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/ps"
)

func main() {
	module := flag.String("module", "", "module to operate on (default: last in file)")
	dump := flag.String("dump", "c", "what to emit: c, flowchart, plan, components, graph, dot, virtual, source")
	openmp := flag.Bool("openmp", false, "emit #pragma omp parallel for above DOALL loops")
	noVirtual := flag.Bool("no-virtual", false, "allocate every dimension physically")
	hyper := flag.String("hyperplane", "auto", "automatic §4 wavefront restructuring of eligible sequential nests: auto or off")
	schedule := flag.String("schedule", "auto", "scheduling strategy: auto/barrier (per-plane parallel sweep), doacross (omp ordered/depend pipelining) or pipeline (prefer PS-DSWP stage decoupling in the lowering cascade)")
	transform := flag.String("transform", "", "apply the §4 hyperplane transformation to the named equation and emit the rewritten PS source")
	flag.Parse()

	var planOpts ps.PlanOptions
	switch *hyper {
	case "auto":
		planOpts.Hyperplane = ps.HyperplaneAuto
	case "off":
		planOpts.Hyperplane = ps.HyperplaneOff
	default:
		fmt.Fprintf(os.Stderr, "psc: invalid -hyperplane %q (want auto or off)\n", *hyper)
		os.Exit(2)
	}
	sch, err := ps.ParseSchedule(*schedule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psc: %v\n", err)
		os.Exit(2)
	}
	planOpts.Schedule = sch

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psc [flags] file.ps")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// The engine compile path yields typed *ps.Error diagnostics with
	// phase and source position; psc never executes, so its pool idles.
	eng := ps.NewEngine(ps.EngineWorkers(1))
	defer eng.Close()
	prog, err := eng.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	names := prog.Modules()
	name := *module
	if name == "" {
		name = names[len(names)-1]
	}
	m := prog.Module(name)
	if m == nil {
		fatal(fmt.Errorf("psc: no module %s in %s (have %v)", name, flag.Arg(0), names))
	}

	if *transform != "" {
		hp, err := m.Hyperplane(*transform)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(* time vector %v; %s; window %d *)\n", hp.TimeVector, hp.TimeEquation, hp.Window)
		fmt.Print(hp.TransformedSource)
		return
	}

	switch *dump {
	case "c":
		c, err := m.GenerateCWith(planOpts, ps.CGenOptions{OpenMP: *openmp, NoVirtual: *noVirtual, Schedule: sch})
		if err != nil {
			fatal(err)
		}
		fmt.Print(c)
	case "flowchart":
		fmt.Print(m.Flowchart())
	case "plan":
		fmt.Print(m.PlanWith(planOpts))
	case "components":
		for i, c := range m.Components() {
			fmt.Printf("component %d: %s\n", i+1, c)
		}
	case "graph":
		fmt.Print(m.GraphListing())
	case "dot":
		fmt.Print(m.GraphDOT())
	case "virtual":
		for _, v := range m.VirtualDims() {
			fmt.Printf("array %s, dimension %d: window %d (subrange %s)\n",
				v.Array, v.Dim, v.Window, v.Subrange)
		}
	case "source":
		fmt.Print(m.Source())
	default:
		fatal(fmt.Errorf("psc: unknown -dump mode %q", *dump))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
