// Command psrepro regenerates every artifact of the paper's evaluation:
// the Figure 1 module, the Figure 3 dependency graph, the Figure 5
// component table, the Figure 6 and Figure 7 flowcharts, the §3.4
// virtual-dimension report, and the complete §4 hyperplane analysis
// (inequalities, time vector, transformation, rewritten recurrence,
// rescheduled flowchart, window). It is the source of record for
// EXPERIMENTS.md.
//
// Usage:
//
//	psrepro            # everything
//	psrepro -only fig5 # one artifact: fig1|fig3|fig5|fig6|fig7|sec3.4|sec4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/psrc"
	"repro/ps"
)

func main() {
	only := flag.String("only", "", "artifact to print (default: all)")
	flag.Parse()

	eng := ps.NewEngine()
	defer eng.Close()
	jac, err := eng.Compile("relaxation.ps", psrc.Relaxation)
	if err != nil {
		log.Fatal(err)
	}
	gs, err := eng.Compile("gs.ps", psrc.RelaxationGS)
	if err != nil {
		log.Fatal(err)
	}
	jm := jac.Module("Relaxation")
	gm := gs.Module("Relaxation")

	want := func(id string) bool { return *only == "" || strings.EqualFold(*only, id) }
	shown := false

	if want("fig1") {
		shown = true
		section("Figure 1: the Relaxation module (parsed and pretty-printed)")
		fmt.Print(jm.Source())
	}
	if want("fig3") {
		shown = true
		section("Figure 3: dependency graph for the Relaxation module")
		fmt.Print(jm.GraphListing())
	}
	if want("fig5") {
		shown = true
		section("Figure 5: component graph and corresponding flowcharts")
		fmt.Printf("%-4s %-22s %s\n", "#", "node(s)", "flowchart")
		for i, c := range jm.Components() {
			parts := strings.SplitN(c, "} => ", 2)
			nodes := strings.TrimPrefix(parts[0], "{")
			fmt.Printf("%-4d %-22s %s\n", i+1, nodes, parts[1])
		}
	}
	if want("fig6") {
		shown = true
		section("Figure 6: flowchart for the Relaxation module (Equation 1)")
		fmt.Print(jm.Flowchart())
	}
	if want("fig7") {
		shown = true
		section("Figure 7: flowchart with revised eq.3 (Equation 2)")
		fmt.Print(gm.Flowchart())
	}
	if want("sec3.4") {
		shown = true
		section("§3.4: virtual dimensions")
		for _, v := range jm.VirtualDims() {
			fmt.Printf("Equation 1 version: array %s, dimension %d virtual, window %d (subrange %s)\n",
				v.Array, v.Dim, v.Window, v.Subrange)
		}
		for _, v := range gm.VirtualDims() {
			fmt.Printf("Equation 2 version: array %s, dimension %d virtual, window %d (subrange %s)\n",
				v.Array, v.Dim, v.Window, v.Subrange)
		}
	}
	if want("sec4") {
		shown = true
		section("§4: restructuring transformation of the Equation 2 recurrence")
		hp, err := gm.Hyperplane("eq.3")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dependences (LHS - RHS):   %v\n", hp.Dependences)
		fmt.Printf("dependence inequalities:   %v\n", hp.Inequalities)
		fmt.Printf("least integer solution:    %v  =>  %s\n", hp.TimeVector, hp.TimeEquation)
		fmt.Printf("transformation T:          %s\n", hp.T)
		fmt.Printf("inverse T^-1:              %s\n", hp.TInv)
		fmt.Printf("transformed dependences:   %v\n", hp.TransformedDeps)
		fmt.Printf("window of transformed dim: %d\n", hp.Window)
		fmt.Println("\ntransformed module:")
		fmt.Print(hp.TransformedSource)

		prog2, err := eng.Compile("gsh.ps", hp.TransformedSource)
		if err != nil {
			log.Fatal(err)
		}
		m2 := prog2.Module(hp.TransformedModule)
		fmt.Println("\nschedule after transformation (cf. Figure 6):")
		fmt.Print(m2.Flowchart())
	}
	if !shown {
		fmt.Fprintf(os.Stderr, "psrepro: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
