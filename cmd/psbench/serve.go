package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/psrc"
	"repro/ps/serve"
)

// serveLevel is one measured concurrency level of the serving layer.
type serveLevel struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	ReqPerSec   float64 `json:"req_per_sec"`
	MeanBatch   float64 `json:"mean_batch"`
}

// serveFile is the JSON document the -serve mode writes.
type serveFile struct {
	Workers  int          `json:"workers"`
	NumCPU   int          `json:"num_cpu"`
	Duration string       `json:"duration"`
	Module   string       `json:"module"`
	N        int64        `json:"n"`
	Levels   []serveLevel `json:"levels"`
}

// serveResponse is the slice of the /v1/run reply the bench reads.
type serveResponse struct {
	BatchSize int `json:"batch_size"`
}

// runServeBench measures end-to-end requests/s through the HTTP
// serving layer at client concurrencies 1, 8 and 64 — the coalescing
// window turns concurrency into fused batch size, so the levels trace
// the batch-DOALL throughput curve of the serving path.
func runServeBench(out string, workers int, per time.Duration) error {
	const n = 2048
	srv, err := serve.New(serve.Config{
		Workers:     workers,
		CacheLimit:  64 << 20,
		BatchWindow: time.Millisecond,
		MaxBatch:    64,
		QueueDepth:  4096,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.AddProgram("smooth", psrc.Smooth); err != nil {
		return err
	}

	xs := make([]float64, n+2)
	for i := range xs {
		xs[i] = float64((i*31)%17) / 17.0
	}
	body, err := json.Marshal(map[string]any{
		"program": "smooth",
		"module":  "Smooth",
		"inputs":  map[string]any{"Xs": xs, "N": n},
	})
	if err != nil {
		return err
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 128

	post := func() (int, error) {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return 0, fmt.Errorf("POST /v1/run: %s: %s", resp.Status, msg)
		}
		var sr serveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return 0, err
		}
		return sr.BatchSize, nil
	}
	// Warm: compile, prepare, pool spin-up.
	if _, err := post(); err != nil {
		return err
	}

	doc := serveFile{Workers: workers, NumCPU: runtime.NumCPU(), Duration: per.String(), Module: "Smooth", N: n}
	for _, conc := range []int{1, 8, 64} {
		var (
			requests  atomic.Int64
			batchSum  atomic.Int64
			errMu     sync.Mutex
			firstErr  error
			wg        sync.WaitGroup
			deadline  = time.Now().Add(per)
			stopped   atomic.Bool
			startGate = make(chan struct{})
		)
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-startGate
				for !stopped.Load() && time.Now().Before(deadline) {
					bs, err := post()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						stopped.Store(true)
						return
					}
					requests.Add(1)
					batchSum.Add(int64(bs))
				}
			}()
		}
		start := time.Now()
		close(startGate)
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return firstErr
		}
		reqs := requests.Load()
		lvl := serveLevel{Concurrency: conc, Requests: reqs}
		if elapsed > 0 {
			lvl.ReqPerSec = float64(reqs) / elapsed.Seconds()
		}
		if reqs > 0 {
			lvl.MeanBatch = float64(batchSum.Load()) / float64(reqs)
		}
		doc.Levels = append(doc.Levels, lvl)
		fmt.Fprintf(os.Stderr, "psbench: serve conc=%-3d %10.1f req/s (mean batch %.1f, n=%d)\n",
			conc, lvl.ReqPerSec, lvl.MeanBatch, reqs)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(out, data, 0o644)
}
