package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// gate is the flag-default configuration CI runs with.
var gate = compareOptions{Threshold: 0.10, NoiseFloor: 100 * time.Microsecond, MinRuns: 5}

func bf(results ...benchResult) *benchFile { return &benchFile{Benchmarks: results} }

// TestCompareRegression pins the basic gate: a slowdown past the
// threshold regresses, one inside it does not, and speedups pass.
func TestCompareRegression(t *testing.T) {
	old := bf(
		benchResult{Name: "a/Seq", NsPerOp: 1_000_000, Runs: 100},
		benchResult{Name: "a/Par4", NsPerOp: 1_000_000, Runs: 100},
		benchResult{Name: "a/Doacross", NsPerOp: 1_000_000, Runs: 100},
	)
	cur := bf(
		benchResult{Name: "a/Seq", NsPerOp: 1_200_000, Runs: 100},    // +20%: regressed
		benchResult{Name: "a/Par4", NsPerOp: 1_050_000, Runs: 100},   // +5%: inside threshold
		benchResult{Name: "a/Doacross", NsPerOp: 600_000, Runs: 100}, // -40%: improvement
	)
	lines, regressed := compareFiles(old, cur, gate)
	if !reflect.DeepEqual(regressed, []string{"a/Seq"}) {
		t.Fatalf("regressed = %v, want [a/Seq]", regressed)
	}
	verdicts := map[string]compareVerdict{}
	for _, l := range lines {
		verdicts[l.Name] = l.Verdict
	}
	want := map[string]compareVerdict{
		"a/Seq": verdictRegressed, "a/Par4": verdictOK, "a/Doacross": verdictOK,
	}
	if !reflect.DeepEqual(verdicts, want) {
		t.Fatalf("verdicts = %v, want %v", verdicts, want)
	}
}

// TestCompareNoiseFloor pins the flakiness fix: a 3x blowup between two
// sub-floor timings is jitter and must not fail the gate, but the same
// ratio above the floor must.
func TestCompareNoiseFloor(t *testing.T) {
	old := bf(
		benchResult{Name: "tiny", NsPerOp: 20_000, Runs: 100}, // 20µs
		benchResult{Name: "big", NsPerOp: 20_000_000, Runs: 100},
	)
	cur := bf(
		benchResult{Name: "tiny", NsPerOp: 60_000, Runs: 100}, // 3x, still under 100µs
		benchResult{Name: "big", NsPerOp: 60_000_000, Runs: 100},
	)
	lines, regressed := compareFiles(old, cur, gate)
	if !reflect.DeepEqual(regressed, []string{"big"}) {
		t.Fatalf("regressed = %v, want [big]", regressed)
	}
	for _, l := range lines {
		if l.Name == "tiny" && l.Verdict != verdictNoiseFloor {
			t.Errorf("tiny verdict = %s, want %s", l.Verdict, verdictNoiseFloor)
		}
	}
	// A measurement that grew past the floor is gated: only both-sides-
	// small pairs are exempt.
	cur2 := bf(benchResult{Name: "tiny", NsPerOp: 200_000, Runs: 100})
	if _, regressed := compareFiles(old, cur2, gate); len(regressed) != 1 {
		t.Fatalf("crossing the floor did not gate: %v", regressed)
	}
}

// TestCompareMinRuns pins the iteration-count guard: a benchmark that
// only managed a handful of iterations on either side is too noisy to
// gate on.
func TestCompareMinRuns(t *testing.T) {
	old := bf(benchResult{Name: "slow", NsPerOp: 1_000_000_000, Runs: 2})
	cur := bf(benchResult{Name: "slow", NsPerOp: 2_000_000_000, Runs: 100})
	lines, regressed := compareFiles(old, cur, gate)
	if len(regressed) != 0 {
		t.Fatalf("few-runs baseline gated: %v", regressed)
	}
	if len(lines) != 1 || lines[0].Verdict != verdictFewRuns {
		t.Fatalf("lines = %+v, want one few-runs verdict", lines)
	}
	// Flip the sparse side: the guard is symmetric.
	if lines, _ := compareFiles(cur, old, gate); len(lines) != 1 || lines[0].Verdict != verdictFewRuns {
		t.Fatalf("reversed lines = %+v, want one few-runs verdict", lines)
	}
}

// TestCompareTracedExempt pins the recording-on exemption: a Traced
// variant is reported but never gates, no matter how far it moved —
// instrumentation growth must not fail CI. The untraced variant next
// to it still gates.
func TestCompareTracedExempt(t *testing.T) {
	old := bf(
		benchResult{Name: "a/TracedAutoPar4", NsPerOp: 1_000_000, Runs: 100},
		benchResult{Name: "a/AutoPar4", NsPerOp: 1_000_000, Runs: 100},
	)
	cur := bf(
		benchResult{Name: "a/TracedAutoPar4", NsPerOp: 3_000_000, Runs: 100}, // 3x: exempt
		benchResult{Name: "a/AutoPar4", NsPerOp: 1_500_000, Runs: 100},       // +50%: gated
	)
	lines, regressed := compareFiles(old, cur, gate)
	if !reflect.DeepEqual(regressed, []string{"a/AutoPar4"}) {
		t.Fatalf("regressed = %v, want [a/AutoPar4]", regressed)
	}
	for _, l := range lines {
		if l.Name == "a/TracedAutoPar4" && l.Verdict != verdictTraced {
			t.Errorf("traced verdict = %s, want %s", l.Verdict, verdictTraced)
		}
	}
}

// TestCompareDisjointCorpus pins corpus-growth tolerance: benchmarks
// present in only one file never appear in the report.
func TestCompareDisjointCorpus(t *testing.T) {
	old := bf(
		benchResult{Name: "removed", NsPerOp: 1_000_000, Runs: 100},
		benchResult{Name: "kept", NsPerOp: 1_000_000, Runs: 100},
	)
	cur := bf(
		benchResult{Name: "kept", NsPerOp: 1_000_000, Runs: 100},
		benchResult{Name: "added", NsPerOp: 9_000_000, Runs: 100},
	)
	lines, regressed := compareFiles(old, cur, gate)
	if len(regressed) != 0 {
		t.Fatalf("disjoint names gated: %v", regressed)
	}
	if len(lines) != 1 || lines[0].Name != "kept" {
		t.Fatalf("lines = %+v, want only the shared benchmark", lines)
	}
}

// TestPrintCompare smoke-checks the rendering marks: "!" flags a
// regression, "~" flags an exemption.
func TestPrintCompare(t *testing.T) {
	var sb strings.Builder
	printCompare(&sb, []compareLine{
		{Name: "x", Old: 100_000_000, New: 200_000_000, Verdict: verdictRegressed},
		{Name: "y", Old: 10_000, New: 30_000, Verdict: verdictNoiseFloor},
		{Name: "z", Old: 100_000_000, New: 100_000_000, Verdict: verdictOK},
	})
	out := sb.String()
	for _, want := range []string{"! x", "~ y", "[regressed]", "[noise-floor]", "[ok]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
