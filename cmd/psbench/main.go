// Command psbench measures the wavefront execution variants on the
// dependence-carrying corpus modules and writes the results as
// machine-readable JSON, so the performance trajectory of the §4
// schedules (sequential baseline, untransformed nest, barrier sweep,
// doacross pipeline, auto selection) can be tracked across commits
// without parsing `go test -bench` text.
//
// Usage:
//
//	psbench [-out BENCH_wavefront.json] [-workers N] [-benchtime 200ms]
//	        [-samples N] [-compare old.json] [-compare-threshold 0.10]
//	        [-compare-noise 100us] [-compare-min-runs 5]
//	        [-cpuprofile f] [-memprofile f]
//
// The output maps benchmark names (module/Variant) to ns/op and
// allocations per run:
//
//	{"workers": 4, "benchmarks": [
//	  {"name": "gauss_seidel/Seq", "ns_per_op": 1842003, "allocs_per_op": 12, "runs": 8},
//	  {"name": "gauss_seidel/DoacrossPar4", "ns_per_op": 612345, "allocs_per_op": 90, "runs": 21},
//	  ...]}
//
// Each variant is measured -samples times and the fastest sample is
// reported: benchmark noise is additive, so min-of-runs rejects it.
// The TracedAutoPar variant runs under the execution recorder
// (Runner.TraceRun) so the recording-on cost is tracked alongside the
// untraced schedules; -compare reports it but never gates on it.
//
// -compare reads a previous psbench output and fails (exit 1) when any
// benchmark present in both files regressed past -compare-threshold
// ns/op — the CI guard against performance backsliding. Pairs where
// both sides sit under -compare-noise, or where either side ran fewer
// than -compare-min-runs iterations, are reported but never fail the
// gate: such measurements are jitter, not signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

// benchResult is one measured variant.
type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Runs        int    `json:"runs"`
}

// benchFile is the JSON document psbench writes.
type benchFile struct {
	Workers    int           `json:"workers"`
	NumCPU     int           `json:"num_cpu"`
	BenchTime  string        `json:"bench_time"`
	Samples    int           `json:"samples,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// workload is one module with concrete arguments.
type workload struct {
	name   string
	src    string
	module string
	args   func() []any
}

// activationChain is the repeated-activation workload: a pipeline of
// local stage arrays whose allocation (not computation) dominates the
// run, so the arena's effect on allocs/op is directly visible in the
// Seq vs SeqNoArena pair.
const activationChain = `
ActChain: module (X: array[I,J] of real; N: int): [Out: array[I,J] of real];
type
    I, J = 1 .. N;
var
    S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, S12: array[I,J] of real;
define
    S1[I,J] = X[I,J] + 1.0;
    S2[I,J] = S1[I,J] * 0.5;
    S3[I,J] = S2[I,J] + S1[I,J];
    S4[I,J] = S3[I,J] * 0.25;
    S5[I,J] = S4[I,J] - S2[I,J];
    S6[I,J] = S5[I,J] * S3[I,J];
    S7[I,J] = S6[I,J] + S4[I,J];
    S8[I,J] = S7[I,J] * 0.125;
    S9[I,J] = S8[I,J] + S6[I,J];
    S10[I,J] = S9[I,J] * S7[I,J];
    S11[I,J] = S10[I,J] - S8[I,J];
    S12[I,J] = S11[I,J] * 0.5;
    Out[I,J] = S12[I,J] + S1[I,J];
end ActChain;
`

// seedGrid builds an (m+2)×(m+2) grid with zero boundary.
func seedGrid(m int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			a.SetF([]int64{i, j}, float64((i*31+j*17)%19)/19.0)
		}
	}
	return a
}

// seedCube builds an (n+1)³ grid over [0,n]³ (the Heat3D domain).
func seedCube(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n}, ps.Axis{Lo: 0, Hi: n}, ps.Axis{Lo: 0, Hi: n})
	for i := int64(0); i <= n; i++ {
		for j := int64(0); j <= n; j++ {
			for k := int64(0); k <= n; k++ {
				a.SetF([]int64{i, j, k}, float64((i*31+j*17+k*7)%19)/19.0)
			}
		}
	}
	return a
}

// seedSymbols builds a 1-D int array over [1,n] with a small alphabet,
// so the edit-distance comparisons hit both matches and mismatches.
func seedSymbols(n int64) *ps.Array {
	a := ps.NewIntArray(ps.Axis{Lo: 1, Hi: n})
	for i := int64(1); i <= n; i++ {
		a.SetI([]int64{i}, (i*5+3)%4)
	}
	return a
}

// seedSquare builds an n×n grid over [1,n]² (the Reflect domain).
func seedSquare(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 1, Hi: n}, ps.Axis{Lo: 1, Hi: n})
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a.SetF([]int64{i, j}, float64((i*7+j*3)%11)/11.0)
		}
	}
	return a
}

func main() {
	// testing.Init registers the -test.* flags so testing.Benchmark can
	// be steered; -benchtime below maps onto -test.benchtime.
	testing.Init()
	out := flag.String("out", "BENCH_wavefront.json", "output JSON path (- for stdout)")
	workers := flag.Int("workers", 0, "parallel worker count (0 = all CPUs, min 2)")
	benchtime := flag.Duration("benchtime", 200*time.Millisecond, "minimum measuring time per variant")
	serveMode := flag.Bool("serve", false, "benchmark the HTTP serving layer (requests/s at client concurrency 1/8/64) instead of the wavefront variants")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output JSON path for -serve (- for stdout)")
	samples := flag.Int("samples", 3, "measurements per variant; the fastest is reported (min-of-runs noise rejection)")
	compare := flag.String("compare", "", "previous psbench JSON to compare against; exit 1 on regression past -compare-threshold")
	compareThreshold := flag.Float64("compare-threshold", 0.10, "relative ns/op slowdown that fails -compare (0.10 = +10%)")
	compareNoise := flag.Duration("compare-noise", 100*time.Microsecond, "ns/op below which both sides of a -compare pair are treated as jitter, never a regression")
	compareMinRuns := flag.Int("compare-min-runs", 5, "benchmark iteration count below which either side of a -compare pair is too noisy to gate on")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w < 2 {
		// One worker never exercises the parallel schedules; measure the
		// dispatch overhead at minimal width instead of skipping them.
		w = 2
	}

	if *serveMode {
		if err := runServeBench(*serveOut, w, *benchtime*3); err != nil {
			fatal(err)
		}
		return
	}

	workloads := []workload{
		{"gauss_seidel", psrc.RelaxationGS, "Relaxation",
			func() []any { return []any{seedGrid(96), int64(96), int64(6)} }},
		{"wavefront2d", psrc.Wavefront2D, "Wavefront2D",
			func() []any { return []any{seedGrid(128), int64(128)} }},
		// The 3-D wavefront: pi = (1,1,1) planes grow and shrink across
		// the cube, stressing plane-size-dependent dispatch.
		{"heat3d", psrc.Heat3D, "Heat3D",
			func() []any { return []any{seedCube(40), int64(40)} }},
		// The boundary-equation DP wavefront: two boundary DOALLs ahead
		// of an anti-diagonal interior with integer-sequence reads.
		{"edit_distance", psrc.EditDistance, "EditDistance",
			func() []any { return []any{seedSymbols(192), seedSymbols(224), int64(192), int64(224)} }},
		// The two pipeline-cascade workloads: reflect decouples under the
		// auto cascade (its reflected-column read defeats the wavefront),
		// mutual wavefronts under auto and decouples under PipelinePar.
		{"reflect", psrc.Reflect, "Reflect",
			func() []any { return []any{seedSquare(128), int64(128)} }},
		{"mutual", psrc.Mutual, "Mutual",
			func() []any { return []any{seedGrid(128), int64(128)} }},
		{"activation_chain", activationChain, "ActChain",
			func() []any {
				const n = 32
				a := ps.NewRealArray(ps.Axis{Lo: 1, Hi: n}, ps.Axis{Lo: 1, Hi: n})
				for i := int64(1); i <= n; i++ {
					for j := int64(1); j <= n; j++ {
						a.SetF([]int64{i, j}, float64((i*7+j)%13)/13.0)
					}
				}
				return []any{a, int64(n)}
			}},
	}
	variants := []struct {
		name   string
		opts   []ps.RunOption
		traced bool
	}{
		{"Seq", []ps.RunOption{ps.Sequential()}, false},
		// SeqNoArena isolates the arena's contribution: identical
		// execution with activation-array pooling disabled.
		{"SeqNoArena", []ps.RunOption{ps.Sequential(), ps.NoArena()}, false},
		{fmt.Sprintf("HyperOffPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithHyperplane(ps.HyperplaneOff)}, false},
		{fmt.Sprintf("AutoPar%d", w), []ps.RunOption{ps.Workers(w)}, false},
		{fmt.Sprintf("BarrierPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithSchedule(ps.ScheduleBarrier)}, false},
		{fmt.Sprintf("DoacrossPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithSchedule(ps.ScheduleDoacross)}, false},
		{fmt.Sprintf("PipelinePar%d", w), []ps.RunOption{ps.Workers(w), ps.WithSchedule(ps.SchedulePipeline)}, false},
		// TracedAutoPar measures the recording-on cost of the execution
		// recorder (TraceRun vs the AutoPar baseline). It is recorded
		// for the trajectory but exempt from the -compare gate: tracing
		// overhead is allowed to move as instrumentation grows.
		{fmt.Sprintf("TracedAutoPar%d", w), []ps.RunOption{ps.Workers(w)}, true},
	}

	doc := benchFile{Workers: w, NumCPU: runtime.NumCPU(), BenchTime: benchtime.String(), Samples: *samples}
	eng := ps.NewEngine(ps.EngineWorkers(w))
	defer eng.Close()
	for _, wl := range workloads {
		prog, err := eng.Compile(wl.name+".ps", wl.src)
		if err != nil {
			fatal(err)
		}
		args := wl.args()
		for _, v := range variants {
			run, err := prog.Prepare(wl.module, v.opts...)
			if err != nil {
				fatal(err)
			}
			// Warm once: allocations, pool spin-up, and the one-shot
			// wavefront grain calibration all land outside the timing.
			if _, _, err := run.Run(nil, args); err != nil {
				fatal(err)
			}
			res := minBenchmark(*samples, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if v.traced {
						if _, _, _, err := run.TraceRun(nil, args); err != nil {
							b.Fatal(err)
						}
					} else if _, _, err := run.Run(nil, args); err != nil {
						b.Fatal(err)
					}
				}
			})
			doc.Benchmarks = append(doc.Benchmarks, benchResult{
				Name:        wl.name + "/" + v.name,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Runs:        res.N,
			})
			fmt.Fprintf(os.Stderr, "psbench: %-32s %12d ns/op %8d allocs/op (n=%d)\n",
				wl.name+"/"+v.name, res.NsPerOp(), res.AllocsPerOp(), res.N)
		}
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *compare != "" {
		err := compareAgainst(*compare, &doc, compareOptions{
			Threshold:  *compareThreshold,
			NoiseFloor: *compareNoise,
			MinRuns:    *compareMinRuns,
		})
		if err != nil {
			fatal(err)
		}
	}
}

// readBenchFile parses a previous psbench output.
func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var old benchFile
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &old, nil
}

// minBenchmark measures fn samples times and keeps the fastest result.
// Benchmark noise is strictly additive (scheduler preemption, GC
// pauses, frequency transitions all slow an iteration, never speed it
// up), so the minimum across repeated measurements is the standard
// low-variance estimator — a single sample can be unlucky and trip the
// -compare gate on a quiet-vs-noisy-host pairing.
func minBenchmark(samples int, fn func(*testing.B)) testing.BenchmarkResult {
	if samples < 1 {
		samples = 1
	}
	best := testing.Benchmark(fn)
	for i := 1; i < samples; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psbench:", err)
	os.Exit(1)
}
