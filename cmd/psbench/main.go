// Command psbench measures the wavefront execution variants on the
// dependence-carrying corpus modules and writes the results as
// machine-readable JSON, so the performance trajectory of the §4
// schedules (sequential baseline, untransformed nest, barrier sweep,
// doacross pipeline, auto selection) can be tracked across commits
// without parsing `go test -bench` text.
//
// Usage:
//
//	psbench [-out BENCH_wavefront.json] [-workers N] [-benchtime 200ms]
//
// The output maps benchmark names (module/Variant) to ns/op:
//
//	{"workers": 4, "benchmarks": [
//	  {"name": "gauss_seidel/Seq", "ns_per_op": 1842003, "runs": 8},
//	  {"name": "gauss_seidel/DoacrossPar4", "ns_per_op": 612345, "runs": 21},
//	  ...]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/psrc"
	"repro/ps"
)

// benchResult is one measured variant.
type benchResult struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Runs    int    `json:"runs"`
}

// benchFile is the JSON document psbench writes.
type benchFile struct {
	Workers    int           `json:"workers"`
	NumCPU     int           `json:"num_cpu"`
	BenchTime  string        `json:"bench_time"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// workload is one module with concrete arguments.
type workload struct {
	name   string
	src    string
	module string
	args   func() []any
}

// seedGrid builds an (m+2)×(m+2) grid with zero boundary.
func seedGrid(m int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			a.SetF([]int64{i, j}, float64((i*31+j*17)%19)/19.0)
		}
	}
	return a
}

func main() {
	// testing.Init registers the -test.* flags so testing.Benchmark can
	// be steered; -benchtime below maps onto -test.benchtime.
	testing.Init()
	out := flag.String("out", "BENCH_wavefront.json", "output JSON path (- for stdout)")
	workers := flag.Int("workers", 0, "parallel worker count (0 = all CPUs, min 2)")
	benchtime := flag.Duration("benchtime", 200*time.Millisecond, "minimum measuring time per variant")
	serveMode := flag.Bool("serve", false, "benchmark the HTTP serving layer (requests/s at client concurrency 1/8/64) instead of the wavefront variants")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output JSON path for -serve (- for stdout)")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w < 2 {
		// One worker never exercises the parallel schedules; measure the
		// dispatch overhead at minimal width instead of skipping them.
		w = 2
	}

	if *serveMode {
		if err := runServeBench(*serveOut, w, *benchtime*3); err != nil {
			fatal(err)
		}
		return
	}

	workloads := []workload{
		{"gauss_seidel", psrc.RelaxationGS, "Relaxation",
			func() []any { return []any{seedGrid(96), int64(96), int64(6)} }},
		{"wavefront2d", psrc.Wavefront2D, "Wavefront2D",
			func() []any { return []any{seedGrid(128), int64(128)} }},
	}
	variants := []struct {
		name string
		opts []ps.RunOption
	}{
		{"Seq", []ps.RunOption{ps.Sequential()}},
		{fmt.Sprintf("HyperOffPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithHyperplane(ps.HyperplaneOff)}},
		{fmt.Sprintf("AutoPar%d", w), []ps.RunOption{ps.Workers(w)}},
		{fmt.Sprintf("BarrierPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithSchedule(ps.ScheduleBarrier)}},
		{fmt.Sprintf("DoacrossPar%d", w), []ps.RunOption{ps.Workers(w), ps.WithSchedule(ps.ScheduleDoacross)}},
	}

	doc := benchFile{Workers: w, NumCPU: runtime.NumCPU(), BenchTime: benchtime.String()}
	eng := ps.NewEngine(ps.EngineWorkers(w))
	defer eng.Close()
	for _, wl := range workloads {
		prog, err := eng.Compile(wl.name+".ps", wl.src)
		if err != nil {
			fatal(err)
		}
		args := wl.args()
		for _, v := range variants {
			run, err := prog.Prepare(wl.module, v.opts...)
			if err != nil {
				fatal(err)
			}
			// Warm once: allocations, pool spin-up, and the one-shot
			// wavefront grain calibration all land outside the timing.
			if _, _, err := run.Run(nil, args); err != nil {
				fatal(err)
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := run.Run(nil, args); err != nil {
						b.Fatal(err)
					}
				}
			})
			doc.Benchmarks = append(doc.Benchmarks, benchResult{
				Name:    wl.name + "/" + v.name,
				NsPerOp: res.NsPerOp(),
				Runs:    res.N,
			})
			fmt.Fprintf(os.Stderr, "psbench: %-32s %12d ns/op (n=%d)\n",
				wl.name+"/"+v.name, res.NsPerOp(), res.N)
		}
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psbench:", err)
	os.Exit(1)
}
