package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// compareOptions tunes the regression gate. The zero value gates on any
// slowdown with no noise handling; main wires the flag defaults.
type compareOptions struct {
	// Threshold is the relative ns/op slowdown that fails the gate
	// (0.10 = +10%).
	Threshold float64
	// NoiseFloor exempts benchmarks whose ns/op is tiny on both sides:
	// a sub-floor measurement is dominated by dispatch jitter and a
	// large ratio between two such numbers carries no signal.
	NoiseFloor time.Duration
	// MinRuns exempts results measured with fewer benchmark iterations
	// than this on either side — the benchtime was too short for the
	// iteration count to average the noise out.
	MinRuns int
}

// compareVerdict classifies one benchmark's old-vs-new comparison.
type compareVerdict string

const (
	verdictOK         compareVerdict = "ok"
	verdictRegressed  compareVerdict = "regressed"
	verdictNoiseFloor compareVerdict = "noise-floor" // both sides under NoiseFloor
	verdictFewRuns    compareVerdict = "few-runs"    // either side under MinRuns iterations
	verdictTraced     compareVerdict = "traced"      // recording-on variant, tracked but never gated
)

// compareLine is one benchmark's comparison outcome.
type compareLine struct {
	Name     string
	Old, New int64 // ns/op
	Verdict  compareVerdict
}

// ratio is the relative change, 1.0 = unchanged.
func (l compareLine) ratio() float64 { return float64(l.New) / float64(l.Old) }

// compareFiles checks cur against old benchmark by benchmark and
// returns a line per benchmark present in both, plus the names that
// fail the gate. Benchmarks appearing in only one file (renamed or
// newly added variants) are ignored, so the gate survives corpus
// growth. Noise-floor and few-runs exemptions are reported but never
// regress: a flaky sub-millisecond variant cannot fail CI on jitter.
func compareFiles(old, cur *benchFile, o compareOptions) (lines []compareLine, regressed []string) {
	base := make(map[string]benchResult, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		base[b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		was, ok := base[b.Name]
		if !ok || was.NsPerOp <= 0 {
			continue
		}
		l := compareLine{Name: b.Name, Old: was.NsPerOp, New: b.NsPerOp, Verdict: verdictOK}
		switch {
		case strings.Contains(b.Name, "/Traced"):
			// Recording-on benchmarks track the recorder's cost over
			// time but never gate: instrumentation is allowed to grow.
			// The disabled-path guarantee is enforced by the untraced
			// variants alongside them.
			l.Verdict = verdictTraced
		case was.NsPerOp < int64(o.NoiseFloor) && b.NsPerOp < int64(o.NoiseFloor):
			l.Verdict = verdictNoiseFloor
		case was.Runs < o.MinRuns || b.Runs < o.MinRuns:
			l.Verdict = verdictFewRuns
		case l.ratio() > 1+o.Threshold:
			l.Verdict = verdictRegressed
			regressed = append(regressed, b.Name)
		}
		lines = append(lines, l)
	}
	return lines, regressed
}

// printCompare renders the comparison in the psbench stderr format.
func printCompare(w io.Writer, lines []compareLine) {
	for _, l := range lines {
		mark := " "
		switch l.Verdict {
		case verdictRegressed:
			mark = "!"
		case verdictNoiseFloor, verdictFewRuns, verdictTraced:
			mark = "~"
		}
		fmt.Fprintf(w, "psbench: compare %s %-32s %12d -> %12d ns/op (%+.1f%%) [%s]\n",
			mark, l.Name, l.Old, l.New, (l.ratio()-1)*100, l.Verdict)
	}
}

// compareAgainst checks the fresh results against a previous psbench
// output and errors when any benchmark fails the gate.
func compareAgainst(path string, doc *benchFile, o compareOptions) error {
	old, err := readBenchFile(path)
	if err != nil {
		return err
	}
	lines, regressed := compareFiles(old, doc, o)
	printCompare(os.Stderr, lines)
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%% vs %s: %v",
			len(regressed), o.Threshold*100, path, regressed)
	}
	return nil
}
