// Command psfuzz runs a seeded differential-fuzzing campaign: it
// generates random well-typed PS programs across every scheduler
// eligibility class, runs each one under the full variant matrix (and,
// when a C compiler is given, against the emitted C), minimizes any
// divergence with the built-in shrinker, and writes reproducible
// artifacts to -out.
//
// Exit status: 0 clean, 1 if any program diverged, 2 if -coverage was
// requested and a backend counter stayed at zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"time"

	"repro/internal/psgen"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of programs to generate")
		seed     = flag.Uint64("seed", 1, "campaign seed (program i uses seed+i)")
		cc       = flag.String("cc", "", `C compiler for the parity leg ("auto" probes for cc; "" skips)`)
		openmp   = flag.Bool("openmp", true, "also compile the C leg with -fopenmp")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-run watchdog")
		out      = flag.String("out", "testdata/fuzz", "directory for minimized repro artifacts")
		quick    = flag.Bool("quick", false, "use the reduced variant matrix")
		coverage = flag.Bool("coverage", false, "fail if any cascade backend was never reached")
		verbose  = flag.Bool("v", false, "print every generated program's class and backends")
	)
	flag.Parse()

	if *cc == "auto" {
		if path, err := exec.LookPath("cc"); err == nil {
			*cc = path
		} else {
			fmt.Fprintln(os.Stderr, "psfuzz: no cc found, skipping C parity leg")
			*cc = ""
		}
	}
	opts := psgen.Options{CC: *cc, OpenMP: *openmp, Timeout: *timeout, Quick: *quick}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	report := psgen.NewReport()
	for i := 0; i < *n && ctx.Err() == nil; i++ {
		sp := psgen.RandomSpec(*seed + uint64(i))
		o := psgen.Check(ctx, sp, opts)
		report.Add(o)
		if *verbose || o.Failed() {
			fmt.Printf("[%d/%d] seed=%d class=%s escape=%s backends=%v findings=%d\n",
				i+1, *n, sp.Seed, sp.Class, sp.Escape, keys(o.Backends), len(o.Findings))
		}
		if o.Failed() {
			for _, f := range o.Findings {
				fmt.Printf("  %s\n", f)
			}
			min := psgen.Shrink(ctx, sp, opts, 0)
			path, err := min.WriteRepro(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psfuzz: writing repro: %v\n", err)
			} else {
				fmt.Printf("  minimized repro written to %s\n", path)
			}
		}
	}

	fmt.Print(report.String())
	if len(report.Failed) > 0 {
		os.Exit(1)
	}
	if *coverage {
		if gaps := report.CoverageGaps(); len(gaps) > 0 {
			for _, g := range gaps {
				fmt.Fprintf(os.Stderr, "psfuzz: coverage gap: %s never reached\n", g)
			}
			os.Exit(2)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for _, b := range psgen.AllBackends {
		if m[b] {
			out = append(out, b)
		}
	}
	return out
}
